package pccheck_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pccheck"
)

// The basic lifecycle: create, save, read back, recover after a restart.
func Example() {
	dir, _ := os.MkdirTemp("", "pccheck-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "state.pcc")

	ck, err := pccheck.Create(path, pccheck.Config{MaxBytes: 1 << 16, Concurrent: 2})
	if err != nil {
		log.Fatal(err)
	}
	counter, err := ck.Save(context.Background(), []byte("model state v1"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("saved checkpoint", counter)
	ck.Close()

	state, counter, err := pccheck.RecoverFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered checkpoint %d: %s\n", counter, state)
	// Output:
	// saved checkpoint 1
	// recovered checkpoint 1: model state v1
}

// Periodic checkpointing of a training loop: the Loop snapshots every
// interval iterations and persists concurrently with the workload.
func ExampleLoop() {
	ck, _, err := pccheck.CreateVolatile(pccheck.Config{MaxBytes: 1 << 12, Concurrent: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer ck.Close()

	version := 0
	loop, err := pccheck.NewLoop(ck, 25, func() []byte {
		version++
		return fmt.Appendf(nil, "state after %d checkpoints", version)
	})
	if err != nil {
		log.Fatal(err)
	}
	for it := 0; it < 100; it++ {
		// ... train one iteration ...
		loop.Tick(context.Background(), it)
	}
	if err := loop.Drain(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoints initiated:", loop.Saves())
	// Concurrent saves may publish in any order; the newest counter always
	// wins.
	_, counter, _ := ck.LoadLatest()
	fmt.Println("latest counter:", counter)
	// Output:
	// checkpoints initiated: 4
	// latest counter: 4
}

// Crash injection with the volatile device: anything not durably persisted
// is gone; the latest published checkpoint survives.
func ExampleMemory_Crash() {
	ck, mem, err := pccheck.CreateVolatile(pccheck.Config{MaxBytes: 1 << 12})
	if err != nil {
		log.Fatal(err)
	}
	defer ck.Close()
	if _, err := ck.Save(context.Background(), []byte("durable")); err != nil {
		log.Fatal(err)
	}
	mem.Crash() // power failure
	state, counter, err := mem.ForkCrashed()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash: checkpoint %d = %s\n", counter, state)
	// Output:
	// after crash: checkpoint 1 = durable
}

// Distributed agreement: three same-process workers checkpoint their
// partitions and agree on the globally consistent checkpoint.
func ExampleWorker_SaveConsistent() {
	transports := pccheck.NewLocalTransports(3)
	results := make(chan uint64, 3)
	for rank := 0; rank < 3; rank++ {
		go func(rank int) {
			ck, _, err := pccheck.CreateVolatile(pccheck.Config{MaxBytes: 256})
			if err != nil {
				log.Fatal(err)
			}
			defer ck.Close()
			w, err := pccheck.NewWorker(ck, transports[rank])
			if err != nil {
				log.Fatal(err)
			}
			agreed, err := w.SaveConsistent(context.Background(), fmt.Appendf(nil, "partition %d", rank))
			if err != nil {
				log.Fatal(err)
			}
			results <- agreed
		}(rank)
	}
	for i := 0; i < 3; i++ {
		fmt.Println("agreed:", <-results)
	}
	// Output:
	// agreed: 1
	// agreed: 1
	// agreed: 1
}

// Archiving every checkpoint for monitoring and post-mortem debugging.
func ExampleHistory() {
	dir, _ := os.MkdirTemp("", "pccheck-history")
	defer os.RemoveAll(dir)
	h, err := pccheck.OpenHistory(filepath.Join(dir, "history.pcar"))
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	for c := uint64(1); c <= 3; c++ {
		if err := h.Append(c, fmt.Appendf(nil, "state@%d", c)); err != nil {
			log.Fatal(err)
		}
	}
	for _, e := range h.List() {
		state, _ := h.Load(e.Counter)
		fmt.Printf("checkpoint %d: %s\n", e.Counter, state)
	}
	// Output:
	// checkpoint 1: state@1
	// checkpoint 2: state@2
	// checkpoint 3: state@3
}
