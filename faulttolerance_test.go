package pccheck

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pccheck/internal/core"
	"pccheck/internal/storage"
)

// Root-API fault-tolerance tests: the RetryPolicy, the per-failure OnError
// callbacks, first-error-faithful Drain, and the LoadLatest re-size retry.

// faultyCheckpointer builds a Checkpointer over a fault-injecting RAM device.
func faultyCheckpointer(t *testing.T, cfg Config) (*Checkpointer, *storage.FaultDevice) {
	t.Helper()
	cfg = cfg.withDefaults()
	dev := storage.NewFaultDevice(storage.NewRAM(core.DeviceBytes(cfg.Concurrent, cfg.MaxBytes)))
	engine, err := core.New(dev, cfg.engineConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.Close() })
	return &Checkpointer{engine: engine, dev: dev}, dev
}

func fastRetryConfig(maxBytes int64, attempts int) Config {
	return Config{
		MaxBytes: maxBytes,
		Verify:   true,
		Retry: RetryPolicy{
			MaxAttempts: attempts,
			BaseBackoff: 50 * time.Microsecond,
			MaxBackoff:  time.Millisecond,
		},
	}
}

// The acceptance scenario through the public API: a Save scheduled to hit
// k < MaxAttempts transient faults succeeds, Stats.Retries goes up by
// exactly k, and the checkpoint loads back byte-identical.
func TestSaveSurvivesTransientFaults(t *testing.T) {
	const k = 2
	ck, dev := faultyCheckpointer(t, fastRetryConfig(8192, k+2))
	want := bytes.Repeat([]byte{0xA5}, 6000)
	dev.FailTransient(storage.OpWrite, 1, k)
	if _, err := ck.Save(context.Background(), want); err != nil {
		t.Fatalf("Save died on transient faults: %v", err)
	}
	s := ck.Stats()
	if s.Retries != k {
		t.Fatalf("Stats.Retries = %d, want %d", s.Retries, k)
	}
	if s.TransientFaults != k {
		t.Fatalf("Stats.TransientFaults = %d, want %d", s.TransientFaults, k)
	}
	if s.FailedSaves != 0 {
		t.Fatalf("Stats.FailedSaves = %d, want 0", s.FailedSaves)
	}
	got, _, err := ck.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("loaded checkpoint not byte-identical")
	}
}

// A permanent fault fails the Save, fires the Loop's OnError, leaks no slot
// and leaves the previously published checkpoint recoverable.
func TestPermanentFaultFailsLoopSaveObservably(t *testing.T) {
	ck, dev := faultyCheckpointer(t, fastRetryConfig(4096, 5))
	payloads := [][]byte{bytes.Repeat([]byte{1}, 3000), bytes.Repeat([]byte{2}, 3000)}
	next := 0
	loop, err := NewLoop(ck, 1, func() []byte { p := payloads[next]; next++; return p })
	if err != nil {
		t.Fatal(err)
	}
	var callbacks atomic.Int64
	var cbErr atomic.Value
	loop.OnError = func(err error) {
		callbacks.Add(1)
		cbErr.Store(err)
	}

	loop.Tick(context.Background(), 0)
	if err := loop.Drain(); err != nil {
		t.Fatalf("clean save failed: %v", err)
	}
	dev.FailAfter(storage.OpWrite, 1, nil) // permanent
	loop.Tick(context.Background(), 1)
	if err := loop.Drain(); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("Drain = %v, want injected", err)
	}
	if callbacks.Load() != 1 {
		t.Fatalf("OnError fired %d times, want 1", callbacks.Load())
	}
	if err, _ := cbErr.Load().(error); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("OnError got %v", err)
	}
	if loop.FailedSaves() != 1 {
		t.Fatalf("FailedSaves = %d, want 1", loop.FailedSaves())
	}
	s := ck.Stats()
	if s.FailedSaves != 1 || s.Retries != 0 {
		t.Fatalf("stats after permanent fault: failed=%d retries=%d", s.FailedSaves, s.Retries)
	}
	// No slot leaked, previous checkpoint still loadable.
	got, _, err := ck.LoadLatest()
	if err != nil || !bytes.Equal(got, payloads[0]) {
		t.Fatalf("previous checkpoint lost: %v", err)
	}
	if _, err := ck.Save(context.Background(), payloads[1]); err != nil {
		t.Fatalf("engine wedged after permanent fault: %v", err)
	}
}

// Drain documents "the first error" — a later failure must not overwrite an
// earlier one, and the count of failed saves is exposed separately.
func TestDrainKeepsFirstError(t *testing.T) {
	ck, dev := faultyCheckpointer(t, fastRetryConfig(4096, 1))
	loop, err := NewLoop(ck, 1, func() []byte { return make([]byte, 1024) })
	if err != nil {
		t.Fatal(err)
	}
	err1 := errors.New("first failure")
	err2 := errors.New("second failure")

	dev.FailAfter(storage.OpWrite, 1, err1)
	loop.Tick(context.Background(), 0)
	if err := loop.Drain(); !errors.Is(err, err1) {
		t.Fatalf("Drain = %v, want err1", err)
	}
	dev.FailAfter(storage.OpWrite, 1, err2)
	loop.Tick(context.Background(), 1)
	if err := loop.Drain(); !errors.Is(err, err1) {
		t.Fatalf("Drain after second failure = %v, want first error kept", err)
	}
	if loop.FailedSaves() != 2 {
		t.Fatalf("FailedSaves = %d, want 2", loop.FailedSaves())
	}
	// Idempotent: another Drain with nothing in flight returns the same.
	if err := loop.Drain(); !errors.Is(err, err1) {
		t.Fatalf("repeated Drain = %v", err)
	}
}

// The Tick/Drain interaction must be clean under the race detector: a
// single producer keeps Ticking while other goroutines Drain concurrently.
func TestDrainConcurrentWithTicks(t *testing.T) {
	ck, _ := faultyCheckpointer(t, fastRetryConfig(2048, 1))
	loop, err := NewLoop(ck, 2, func() []byte { return make([]byte, 512) })
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := loop.Drain(); err != nil {
					t.Errorf("Drain: %v", err)
					return
				}
			}
		}()
	}
	for it := 0; it < 400; it++ {
		loop.Tick(context.Background(), it)
	}
	close(stop)
	wg.Wait()
	if err := loop.Drain(); err != nil {
		t.Fatal(err)
	}
	if loop.Saves() != 200 {
		t.Fatalf("Saves = %d, want 200", loop.Saves())
	}
}

// AdaptiveLoop shares the failure semantics: first error kept, OnError per
// failure, concurrent Drain safe.
func TestAdaptiveLoopFailureSemantics(t *testing.T) {
	ck, dev := faultyCheckpointer(t, fastRetryConfig(4096, 1))
	loop, err := NewAdaptiveLoop(ck, AdaptiveConfig{MaxOverhead: 1.05, InitialInterval: 1}, func() []byte {
		return make([]byte, 1024)
	})
	if err != nil {
		t.Fatal(err)
	}
	var callbacks atomic.Int64
	loop.OnError = func(error) { callbacks.Add(1) }

	err1 := errors.New("adaptive first failure")
	dev.FailAfter(storage.OpWrite, 1, err1)
	loop.Tick(context.Background())
	if err := loop.Drain(); !errors.Is(err, err1) {
		t.Fatalf("Drain = %v", err)
	}
	dev.FailAfter(storage.OpWrite, 1, nil)
	loop.Tick(context.Background())
	if err := loop.Drain(); !errors.Is(err, err1) {
		t.Fatalf("first error not kept: %v", err)
	}
	if loop.FailedSaves() != 2 || callbacks.Load() != 2 {
		t.Fatalf("failed=%d callbacks=%d, want 2/2", loop.FailedSaves(), callbacks.Load())
	}
	// Recovers once the device behaves.
	loop.Tick(context.Background())
	if loop.Saves() != 3 {
		t.Fatalf("Saves = %d", loop.Saves())
	}
	if err := loop.Drain(); !errors.Is(err, err1) {
		t.Fatalf("Drain after clean save = %v (first error must persist)", err)
	}
}

// LoadLatest must not surface "buffer too small" when a larger checkpoint
// publishes between its Latest() sizing and the read — the TOCTOU the
// re-size retry closes. Alternating small/large saves race a hot reader.
func TestLoadLatestResizesUnderConcurrentGrowth(t *testing.T) {
	ck, _ := faultyCheckpointer(t, fastRetryConfig(64<<10, 1))
	small := bytes.Repeat([]byte{3}, 1<<10)
	large := bytes.Repeat([]byte{4}, 60<<10)
	if _, err := ck.Save(context.Background(), small); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := small
			if i%2 == 1 {
				p = large
			}
			if _, err := ck.Save(context.Background(), p); err != nil {
				t.Errorf("Save: %v", err)
				return
			}
		}
	}()
	deadline := time.Now().Add(500 * time.Millisecond)
	reads := 0
	for time.Now().Before(deadline) {
		got, _, err := ck.LoadLatest()
		if err != nil {
			t.Fatalf("LoadLatest after %d reads: %v", reads, err)
		}
		if n := len(got); n != len(small) && n != len(large) {
			t.Fatalf("loaded %d bytes", n)
		}
		reads++
	}
	close(stop)
	wg.Wait()
	if reads < 10 {
		t.Fatalf("reader starved: %d reads", reads)
	}
}
