package pccheck

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestCreateTieredFilesRecoverAny(t *testing.T) {
	dir := t.TempDir()
	primary := filepath.Join(dir, "tier0.ckpt")
	replica := filepath.Join(dir, "tier1.ckpt")
	cfg := Config{MaxBytes: 4096, Verify: true}

	c, err := CreateTieredFiles(cfg, primary, replica)
	if err != nil {
		t.Fatalf("CreateTieredFiles: %v", err)
	}
	var want []byte
	const saves = 5
	for i := 1; i <= saves; i++ {
		want = bytes.Repeat([]byte{byte(i)}, 2000+i)
		if _, err := c.Save(context.Background(), want); err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
	}
	if !c.WaitDrained(5 * time.Second) {
		t.Fatal("replica tier did not converge")
	}
	st := c.TierStatus()
	if len(st) != 2 {
		t.Fatalf("TierStatus returned %d tiers, want 2", len(st))
	}
	if st[1].DurableCounter != saves {
		t.Fatalf("replica durable counter %d, want %d", st[1].DurableCounter, saves)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Lose the primary entirely; RecoverAny restores from the replica.
	if err := os.Remove(primary); err != nil {
		t.Fatalf("remove primary: %v", err)
	}
	p, ctr, err := RecoverAny(primary, replica)
	if err != nil {
		t.Fatalf("RecoverAny after primary loss: %v", err)
	}
	if ctr != saves {
		t.Fatalf("recovered counter %d, want %d", ctr, saves)
	}
	if !bytes.Equal(p, want) {
		t.Fatal("recovered payload mismatch")
	}

	// A truncated replica is skipped as corrupt; with nothing left, the
	// open failure surfaces instead of a silent empty success.
	if err := os.Truncate(replica, 100); err != nil {
		t.Fatalf("truncate replica: %v", err)
	}
	if _, _, err := RecoverAny(primary, replica); err == nil {
		t.Fatal("RecoverAny with no recoverable tier succeeded")
	}
}

func TestTierStatusNilOnFlatCheckpointer(t *testing.T) {
	c, _, err := CreateVolatile(Config{MaxBytes: 1024})
	if err != nil {
		t.Fatalf("CreateVolatile: %v", err)
	}
	defer c.Close()
	if st := c.TierStatus(); st != nil {
		t.Fatalf("TierStatus on flat checkpointer = %+v, want nil", st)
	}
	if !c.WaitDrained(time.Millisecond) {
		t.Fatal("WaitDrained on flat checkpointer must be immediate true")
	}
}
