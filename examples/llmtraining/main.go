// LLM training with adaptive checkpoint frequency: trains a small
// Transformer language model (embedding → self-attention → MLP, the
// pure-Go stand-in for the paper's OPT/BLOOM workloads) while the
// AdaptiveLoop re-derives the checkpoint interval f* = Tw/(N·q·t) from live
// measurements — the extension §3.4 of the paper sketches as future work.
// Midway through, the "storage device" degrades (its bandwidth is cut 4×);
// the controller widens the interval to hold the overhead budget.
//
//	go run ./examples/llmtraining
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pccheck"
	"pccheck/internal/train"
)

func main() {
	model, err := train.NewTransformerLM(3, 64, 32, 64)
	if err != nil {
		log.Fatal(err)
	}
	data, err := train.NewTextData(4, 64, 24)
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := train.NewLMTrainer(model, train.NewAdam(model.Params(), 0.005), data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Transformer LM: %d parameter tensors, %d-byte checkpoints\n",
		len(model.Params()), trainer.StateSize())

	// The device: per-writer throttled so checkpoints take measurable time.
	// Mid-run the bandwidth is cut 4× to emulate storage contention
	// (another tenant hammering the disk — the situation §3.4 says should
	// trigger adaptation).
	stateBytes := int64(trainer.StateSize())
	healthyBW := float64(stateBytes) / 0.020 // ≈20 ms per checkpoint when healthy
	ck, _, err := pccheck.CreateVolatile(pccheck.Config{
		MaxBytes:    stateBytes,
		Concurrent:  2,
		Writers:     1,
		PerWriterBW: healthyBW,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ck.Close()

	loop, err := pccheck.NewAdaptiveLoop(ck, pccheck.AdaptiveConfig{
		MaxOverhead:     1.10,
		InitialInterval: 50,
		Smoothing:       0.4,
	}, func() []byte {
		buf := make([]byte, trainer.StateSize())
		if _, err := trainer.Snapshot(buf); err != nil {
			log.Fatal(err)
		}
		return buf
	})
	if err != nil {
		log.Fatal(err)
	}

	const steps = 1200
	ctx := context.Background()
	var healthyInterval int
	for it := 0; it < steps; it++ {
		if _, err := trainer.Step(); err != nil {
			log.Fatal(err)
		}
		loop.Tick(ctx)
		switch it {
		case steps / 2:
			healthyInterval = loop.Interval()
			ck.SetWriterBandwidth(healthyBW / 4)
			fmt.Printf("iteration %d: storage degraded 4× (interval was %d)\n", it, healthyInterval)
		}
		if (it+1)%200 == 0 {
			iterT, tw := loop.Measurements()
			fmt.Printf("iteration %4d: interval f=%3d  (t≈%v, Tw≈%v, %d checkpoints so far)\n",
				it+1, loop.Interval(), iterT.Round(10*time.Microsecond), tw.Round(time.Millisecond), loop.Saves())
		}
	}
	if err := loop.Drain(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nafter degradation the controller widened the interval: %d → %d\n",
		healthyInterval, loop.Interval())
	if loop.Interval() <= healthyInterval {
		log.Fatal("adaptive controller failed to react to the slower device")
	}
	st := ck.Stats()
	fmt.Printf("checkpoints: %d published, %d superseded, %.1f MB written\n",
		st.Published, st.Obsolete, float64(st.BytesWritten)/1e6)

	// And of course the latest checkpoint restores exactly.
	state, counter, err := ck.LoadLatest()
	if err != nil {
		log.Fatal(err)
	}
	probe, _ := train.NewTransformerLM(3, 64, 32, 64)
	probeTr, _ := train.NewLMTrainer(probe, train.NewAdam(probe.Params(), 0.005), data)
	if err := probeTr.Restore(state); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint %d restores cleanly at iteration %d ✓\n", counter, probeTr.Iteration())
}
