// Distributed checkpointing: six pipeline-parallel workers (goroutines
// standing in for the paper's six-VM BLOOM-7B deployment, §3.1) each
// checkpoint their model partition to their own device, then agree through
// the rank-0 coordination protocol (§4.1) on the latest *globally
// consistent* checkpoint — the newest ID every worker has durably persisted.
// A straggler and a crash demonstrate why the agreement matters: restoring
// each worker's own latest checkpoint would mix iterations.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"pccheck"
	"pccheck/internal/dist"
)

const (
	workers    = 6
	partition  = 256 << 10 // bytes of model state per pipeline stage
	iterations = 60
	interval   = 10
)

// worker owns one pipeline stage: a slice of "model state" it updates every
// iteration and checkpoints every `interval`.
type worker struct {
	rank  int
	state []byte
	ck    *pccheck.Checkpointer
	mem   *pccheck.Memory
	coord *dist.Coordinator
}

func (w *worker) run(ctx context.Context, slowRank int) error {
	for it := 1; it <= iterations; it++ {
		// "Train": evolve this stage's partition deterministically.
		for i := range w.state {
			w.state[i] = byte(int(w.state[i]) + it + w.rank)
		}
		if slowRank == w.rank {
			time.Sleep(2 * time.Millisecond) // a straggling stage
		}
		if it%interval != 0 {
			continue
		}
		snapshot := append([]byte(nil), w.state...)
		counter, err := w.ck.Save(ctx, snapshot)
		if err != nil {
			return fmt.Errorf("rank %d save: %w", w.rank, err)
		}
		// §4.1: after the successful local publish, agree on the globally
		// consistent checkpoint through rank 0.
		agreed, err := w.coord.Commit(ctx, counter)
		if err != nil {
			return fmt.Errorf("rank %d commit: %w", w.rank, err)
		}
		if w.rank == 0 {
			fmt.Printf("  iteration %2d: local checkpoint %d, globally consistent %d\n",
				it, counter, agreed)
		}
	}
	return nil
}

func main() {
	transports := dist.NewLocalGroup(workers)
	ws := make([]*worker, workers)
	for rank := 0; rank < workers; rank++ {
		ck, mem, err := pccheck.CreateVolatile(pccheck.Config{
			MaxBytes:   partition,
			Concurrent: 2,
			Writers:    2,
			Verify:     true,
		})
		if err != nil {
			log.Fatal(err)
		}
		ws[rank] = &worker{
			rank:  rank,
			state: make([]byte, partition),
			ck:    ck,
			mem:   mem,
			coord: dist.NewCoordinator(transports[rank]),
		}
	}
	defer func() {
		for _, w := range ws {
			w.ck.Close()
		}
	}()

	fmt.Printf("training %d pipeline stages, checkpointing every %d iterations\n", workers, interval)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if err := w.run(ctx, 3 /* rank 3 straggles */); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatal(err)
	}

	// Cluster-wide power failure: every node crashes at once (the "bulky
	// preemption" case that just-in-time checkpointing cannot survive,
	// §2.2).
	fmt.Println("\nsimulating cluster-wide preemption…")
	agreed := ws[0].coord.LatestConsistent()
	for _, w := range ws {
		w.mem.Crash()
	}

	// Restore: every worker loads the globally consistent checkpoint. A
	// worker's own device may hold something newer — it must not use it.
	for _, w := range ws {
		payload, counter, err := w.mem.ForkCrashed()
		if err != nil {
			log.Fatalf("rank %d: %v", w.rank, err)
		}
		if counter < agreed {
			log.Fatalf("rank %d recovered %d, older than the agreed %d — coordination broken",
				w.rank, counter, agreed)
		}
		// In PCcheck each device keeps the last N+1 checkpoints, so the
		// agreed one is recoverable even when a newer local one exists; the
		// demo keeps one durable version per worker and checks the common
		// case counter == agreed.
		if counter != agreed {
			fmt.Printf("  rank %d holds newer local checkpoint %d; restoring agreed %d semantics\n",
				w.rank, counter, agreed)
		}
		copy(w.state, payload)
	}
	fmt.Printf("all %d workers restored at globally consistent checkpoint %d ✓\n", workers, agreed)

	// Verify consistency: every stage's restored state corresponds to the
	// same iteration (the deterministic update lets us recompute it).
	iterOf := func(rank int, state []byte) int {
		// state[0] = Σ_{it=1..k}(it + rank) mod 256 for checkpointed k.
		for k := interval; k <= iterations; k += interval {
			sum := 0
			for it := 1; it <= k; it++ {
				sum += it + rank
			}
			if byte(sum) == state[0] {
				return k
			}
		}
		return -1
	}
	base := iterOf(0, ws[0].state)
	for _, w := range ws {
		if got := iterOf(w.rank, w.state); got != base {
			log.Fatalf("rank %d restored iteration %d, rank 0 has %d — inconsistent restore", w.rank, got, base)
		}
	}
	fmt.Printf("every stage restored the state of iteration %d — globally consistent ✓\n", base)
}
