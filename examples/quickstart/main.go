// Quickstart: checkpoint arbitrary application state with PCcheck and get it
// back after a crash.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
)

import "pccheck"

func main() {
	dir, err := os.MkdirTemp("", "pccheck-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "state.pcc")

	// 1. Create a checkpointer sized for our state. Two checkpoints may be
	//    in flight at once; three writer goroutines persist each one.
	ck, err := pccheck.Create(path, pccheck.Config{
		MaxBytes:   1 << 20,
		Concurrent: 2,
		Writers:    3,
		Verify:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run an "application" that periodically saves its state. Saves for
	//    different versions can overlap; the library guarantees the newest
	//    fully persisted version survives any crash.
	ctx := context.Background()
	for version := 1; version <= 5; version++ {
		state := fmt.Appendf(nil, "application state at version %d", version)
		counter, err := ck.Save(ctx, state)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved version %d as checkpoint %d\n", version, counter)
	}

	// 3. Read the latest state back while running…
	state, counter, err := ck.LoadLatest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latest in-process: checkpoint %d: %q\n", counter, state)

	st := ck.Stats()
	fmt.Printf("stats: %d published, %d superseded, %d bytes written\n",
		st.Published, st.Obsolete, st.BytesWritten)
	if err := ck.Close(); err != nil {
		log.Fatal(err)
	}

	// 4. …and after a "restart", recover from the file alone.
	recovered, counter, err := pccheck.RecoverFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered after restart: checkpoint %d: %q\n", counter, recovered)
}
