// Spot training: train a real model on "preemptible" resources. A synthetic
// spot-VM trace (matching the statistics of the André et al. trace the paper
// replays, §5.2.3) injects crashes; every crash drops all volatile state and
// the job resumes from the newest durable checkpoint. The example reports
// goodput — useful iterations per second after subtracting recomputed work —
// and verifies the final model equals an uninterrupted run bit for bit.
//
//	go run ./examples/spottraining
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pccheck"
	"pccheck/internal/trace"
	"pccheck/internal/train"
)

const (
	totalSteps = 4000
	interval   = 25 // checkpoint every 25 iterations
)

func newTrainer() *train.Trainer {
	m, err := train.NewMLP(11, []int{24, 48, 6})
	if err != nil {
		log.Fatal(err)
	}
	data, err := train.NewSynthetic(13, 24, 6, 12)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := train.NewTrainer(m, train.NewAdam(m.Params(), 0.004), data)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func main() {
	// Reference run with no failures, for the bit-exactness check.
	ref := newTrainer()
	for i := 0; i < totalSteps; i++ {
		if _, err := ref.Step(); err != nil {
			log.Fatal(err)
		}
	}

	// Map the 3.5-hour / 26-event trace onto our short run: failures land
	// at trace-proportional iteration counts.
	tr := trace.Synthetic(trace.SyntheticConfig{Seed: 1})
	var crashIters []int
	for _, e := range tr.Events {
		frac := float64(e.At) / float64(tr.Duration)
		crashIters = append(crashIters, int(frac*totalSteps))
	}
	fmt.Printf("replaying %d preemptions over %d iterations, checkpointing every %d\n",
		len(crashIters), totalSteps, interval)

	trainer := newTrainer()
	ck, mem, err := pccheck.CreateVolatile(pccheck.Config{
		MaxBytes:   int64(trainer.StateSize()),
		Concurrent: 2,
		Writers:    2,
		Verify:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ck.Close()

	ctx := context.Background()
	usefulIters := 0 // iterations that were never rolled back
	wastedIters := 0
	crashes := 0
	start := time.Now()

	nextCrash := 0
	for trainer.Iteration() < totalSteps {
		it := trainer.Iteration()
		if nextCrash < len(crashIters) && it >= crashIters[nextCrash] {
			nextCrash++
			crashes++
			// Power failure: volatile state — including in-flight
			// checkpoints — is gone.
			mem.Crash()
			state, counter, err := mem.ForkCrashed()
			if pccheck.IsNoCheckpoint(err) {
				// Crashed before the first checkpoint: start over.
				trainer = newTrainer()
				wastedIters += it
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			resumed := newTrainer()
			if err := resumed.Restore(state); err != nil {
				log.Fatal(err)
			}
			wastedIters += it - resumed.Iteration()
			fmt.Printf("  preemption at iter %4d → resumed from checkpoint %d (iter %d)\n",
				it, counter, resumed.Iteration())
			trainer = resumed
			continue
		}
		if _, err := trainer.Step(); err != nil {
			log.Fatal(err)
		}
		usefulIters++
		if (it+1)%interval == 0 {
			buf := make([]byte, trainer.StateSize())
			if _, err := trainer.Snapshot(buf); err != nil {
				log.Fatal(err)
			}
			// Concurrent save: training continues while it persists.
			go ck.Save(ctx, buf) //nolint:errcheck // failures surface via recovery
		}
	}

	elapsed := time.Since(start)
	fmt.Printf("\nsurvived %d preemptions; %d useful + %d recomputed iterations in %v\n",
		crashes, totalSteps, wastedIters, elapsed.Round(time.Millisecond))
	fmt.Printf("goodput: %.0f useful iters/s (%.1f%% of work was recomputation)\n",
		float64(totalSteps)/elapsed.Seconds(),
		100*float64(wastedIters)/float64(totalSteps+wastedIters))

	// The punchline: a run that crashed 26 times produced the *identical*
	// model to a run that never crashed.
	pa, pb := ref.Model.Params(), trainer.Model.Params()
	for i := range pa {
		if !pa[i].Equal(pb[i]) {
			log.Fatalf("model diverged from uninterrupted run at tensor %d", i)
		}
	}
	fmt.Println("final parameters are bit-identical to an uninterrupted run ✓")
}
