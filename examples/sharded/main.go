// Sharded checkpointing (§3.1, last paragraph): with combined data and
// pipeline parallelism, "the checkpoint state of each pipeline stage is
// partitioned among the data parallel replicas of this stage, reducing the
// overall checkpointing overhead." Four data-parallel replicas train the
// same model deterministically; each persists only its quarter of the
// snapshot — 4× less data per worker per checkpoint. After a cluster-wide
// crash, the shards are gathered from the four devices, reassembled, and
// training resumes bit-exactly.
//
//	go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"pccheck"
	"pccheck/internal/train"
)

const (
	replicas = 4
	steps    = 300
	interval = 25
)

func newTrainer() *train.Trainer {
	m, err := train.NewMLP(17, []int{32, 64, 8})
	if err != nil {
		log.Fatal(err)
	}
	data, err := train.NewSynthetic(18, 32, 8, 16)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := train.NewTrainer(m, train.NewAdam(m.Params(), 0.004), data)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

// replica is one data-parallel worker: a full trainer (replicas stay in
// sync by determinism, standing in for gradient all-reduce) plus a
// checkpointer for its shard of the state.
type replica struct {
	rank    int
	trainer *train.Trainer
	worker  *pccheck.Worker
	mem     *pccheck.Memory
	off, n  int64
}

func main() {
	probe := newTrainer()
	stateBytes := int64(probe.StateSize())
	shardBytes := stateBytes/replicas + replicas // upper bound incl. remainder

	transports := pccheck.NewLocalTransports(replicas)
	reps := make([]*replica, replicas)
	for rank := 0; rank < replicas; rank++ {
		off, n, err := pccheck.PartitionRange(stateBytes, rank, replicas)
		if err != nil {
			log.Fatal(err)
		}
		ck, mem, err := pccheck.CreateVolatile(pccheck.Config{
			MaxBytes:   shardBytes,
			Concurrent: 2,
			Writers:    2,
			Verify:     true,
		})
		if err != nil {
			log.Fatal(err)
		}
		w, err := pccheck.NewWorker(ck, transports[rank])
		if err != nil {
			log.Fatal(err)
		}
		reps[rank] = &replica{rank: rank, trainer: newTrainer(), worker: w, mem: mem, off: off, n: n}
	}
	defer func() {
		for _, r := range reps {
			r.worker.Checkpointer().Close()
		}
	}()
	fmt.Printf("state %d bytes; each of %d replicas persists only its %d-byte shard (%.0f%% of a full checkpoint)\n",
		stateBytes, replicas, reps[0].n, 100*float64(reps[0].n)/float64(stateBytes))

	// Train with sharded coordinated checkpoints.
	ctx := context.Background()
	var wg sync.WaitGroup
	for _, r := range reps {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			for it := 0; it < steps; it++ {
				if _, err := r.trainer.Step(); err != nil {
					log.Fatal(err)
				}
				if (it+1)%interval != 0 {
					continue
				}
				full := make([]byte, r.trainer.StateSize())
				if _, err := r.trainer.Snapshot(full); err != nil {
					log.Fatal(err)
				}
				shard := full[r.off : r.off+r.n]
				if _, err := r.worker.SaveConsistent(ctx, shard); err != nil {
					log.Fatalf("rank %d: %v", r.rank, err)
				}
			}
		}(r)
	}
	wg.Wait()
	agreed := reps[0].worker.LatestConsistent()
	fmt.Printf("trained %d iterations; globally consistent checkpoint %d\n", steps, agreed)

	// Cluster-wide power failure.
	for _, r := range reps {
		r.mem.Crash()
	}

	// Gather: reassemble the full state from the four crashed devices.
	full := make([]byte, stateBytes)
	for _, r := range reps {
		shard, counter, err := r.mem.ForkCrashed()
		if err != nil {
			log.Fatalf("rank %d: %v", r.rank, err)
		}
		if counter != agreed {
			log.Fatalf("rank %d recovered checkpoint %d, agreed was %d", r.rank, counter, agreed)
		}
		if int64(len(shard)) != r.n {
			log.Fatalf("rank %d shard %d bytes, want %d", r.rank, len(shard), r.n)
		}
		copy(full[r.off:], shard)
	}
	resumed := newTrainer()
	if err := resumed.Restore(full); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gathered %d shards; resumed at iteration %d\n", replicas, resumed.Iteration())

	// Finish and verify against an uninterrupted reference run.
	ref := newTrainer()
	for i := 0; i < steps+100; i++ {
		if _, err := ref.Step(); err != nil {
			log.Fatal(err)
		}
	}
	for resumed.Iteration() < steps+100 {
		if _, err := resumed.Step(); err != nil {
			log.Fatal(err)
		}
	}
	pa, pb := ref.Model.Params(), resumed.Model.Params()
	for i := range pa {
		if !pa[i].Equal(pb[i]) {
			log.Fatalf("sharded restore diverged at tensor %d", i)
		}
	}
	fmt.Println("resumed model is bit-identical to an uninterrupted run ✓")
}
