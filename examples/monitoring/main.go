// Monitoring: the paper's second use case for frequent checkpoints (§2.1) —
// debugging training dynamics. The example trains a model whose learning
// rate is deliberately too high, checkpoints every iteration with negligible
// stall (saves overlap training), and then post-mortems the checkpoint
// stream offline: it walks the captured states, recomputes parameter norms
// and losses, and pinpoints the iteration where training derailed.
//
//	go run ./examples/monitoring
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"pccheck"
	"pccheck/internal/train"
)

const steps = 120

func newTrainer(lr float32) *train.Trainer {
	m, err := train.NewMLP(5, []int{16, 32, 4})
	if err != nil {
		log.Fatal(err)
	}
	data, err := train.NewSynthetic(6, 16, 4, 8)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := train.NewTrainer(m, train.NewSGD(m.Params(), lr, 0.95), data)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func main() {
	// An unstable configuration: SGD with momentum and an aggressive
	// learning rate — loss will explode somewhere mid-run.
	trainer := newTrainer(1.9)

	// Keep every checkpoint: a snapshot per iteration goes to (a) the
	// concurrent checkpointer for fault tolerance and (b) a durable History
	// archive, the SageMaker-Debugger-style retention of §2.1.
	dir, err := os.MkdirTemp("", "pccheck-monitoring")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ck, _, err := pccheck.CreateVolatile(pccheck.Config{
		MaxBytes:   int64(trainer.StateSize()),
		Concurrent: 4,
		Writers:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ck.Close()
	hist, err := pccheck.OpenHistory(filepath.Join(dir, "history.pcar"))
	if err != nil {
		log.Fatal(err)
	}
	defer hist.Close()

	ctx := context.Background()
	for it := 0; it < steps; it++ {
		if _, err := trainer.Step(); err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, trainer.StateSize())
		if _, err := trainer.Snapshot(buf); err != nil {
			log.Fatal(err)
		}
		if err := hist.Append(uint64(it+1), buf); err != nil {
			log.Fatal(err)
		}
		// Checkpoint every single iteration; concurrent saves keep the
		// training loop from waiting on storage.
		go ck.Save(ctx, buf) //nolint:errcheck // demo: durability probed at the end
	}
	fmt.Printf("trained %d iterations, capturing a checkpoint each — latest durable: ", steps)
	if counter, _, ok := ck.Latest(); ok {
		fmt.Printf("#%d\n", counter)
	} else {
		fmt.Println("none")
	}

	// Post-mortem: replay the durable archive, tracking the parameter norm.
	fmt.Printf("\npost-mortem over %d archived checkpoints:\n", hist.Len())
	derailed := -1
	var norm0 float64
	for _, entry := range hist.List() {
		it := int(entry.Counter) - 1
		state, err := hist.Load(entry.Counter)
		if err != nil {
			log.Fatalf("checkpoint %d unreadable: %v", entry.Counter, err)
		}
		probe := newTrainer(1.9)
		if err := probe.Restore(state); err != nil {
			log.Fatalf("checkpoint %d corrupt: %v", it, err)
		}
		var norm float64
		for _, p := range probe.Model.Params() {
			n := p.L2Norm()
			norm += n * n
		}
		norm = math.Sqrt(norm)
		if it == 0 {
			norm0 = norm
		}
		if it%20 == 0 {
			fmt.Printf("  iter %3d: ‖θ‖ = %8.2f\n", it+1, norm)
		}
		// A healthy run's parameter norm stays within a small factor of its
		// starting value; flag the first state that blows past 20×.
		if derailed < 0 && (math.IsNaN(norm) || math.IsInf(norm, 0) || norm > 20*norm0) {
			derailed = it + 1
		}
	}
	if derailed < 0 {
		fmt.Println("no divergence found (try a higher learning rate)")
		return
	}
	fmt.Printf("\ntraining derailed at iteration %d — the per-iteration checkpoint stream\n", derailed)
	fmt.Printf("lets you restart from iteration %d with a safer configuration instead of\nretraining from scratch (§2.1 of the paper).\n", derailed-1)

	// Demonstrate exactly that: restore the last healthy state from the
	// archive and continue with a sane learning rate.
	healthy, err := hist.Load(uint64(derailed - 1))
	if err != nil {
		log.Fatal(err)
	}
	rescue := newTrainer(0.05)
	if err := rescue.Restore(healthy); err != nil {
		log.Fatal(err)
	}
	var last float64
	for i := 0; i < 100; i++ {
		l, err := rescue.Step()
		if err != nil {
			log.Fatal(err)
		}
		last = l
	}
	if math.IsNaN(last) || math.IsInf(last, 0) {
		log.Fatal("rescued run still diverging")
	}
	fmt.Printf("rescued run converges again: loss %.4f after 100 more iterations ✓\n", last)
}
