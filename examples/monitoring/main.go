// Monitoring: the paper's second use case for frequent checkpoints (§2.1) —
// debugging training dynamics. The example trains a model whose learning
// rate is deliberately too high, checkpoints every iteration with negligible
// stall (saves overlap training), and then post-mortems the checkpoint
// stream offline: it walks the captured states, recomputes parameter norms
// and losses, and pinpoints the iteration where training derailed.
//
// It also demonstrates the live observability surface: a flight recorder
// attached to the checkpointer records every phase of every save, a
// /metrics endpoint exposes the latency distributions while the run is
// alive, and the ring is dumped as a Perfetto-loadable trace at the end.
//
//	go run ./examples/monitoring
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"pccheck"
	"pccheck/internal/train"
)

const steps = 120

func newTrainer(lr float32) *train.Trainer {
	m, err := train.NewMLP(5, []int{16, 32, 4})
	if err != nil {
		log.Fatal(err)
	}
	data, err := train.NewSynthetic(6, 16, 4, 8)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := train.NewTrainer(m, train.NewSGD(m.Params(), lr, 0.95), data)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func main() {
	// An unstable configuration: SGD with momentum and an aggressive
	// learning rate — loss will explode somewhere mid-run.
	trainer := newTrainer(1.9)

	// Keep every checkpoint: a snapshot per iteration goes to (a) the
	// concurrent checkpointer for fault tolerance and (b) a durable History
	// archive, the SageMaker-Debugger-style retention of §2.1.
	dir, err := os.MkdirTemp("", "pccheck-monitoring")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	// A flight recorder observes every save; ServeMetrics makes its latency
	// histograms scrapeable while the run is alive.
	rec := pccheck.NewFlightRecorder(0)
	ck, _, err := pccheck.CreateVolatile(pccheck.Config{
		MaxBytes:   int64(trainer.StateSize()),
		Concurrent: 4,
		Writers:    2,
		Observer:   rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ck.Close()
	srv, metricsAddr, err := pccheck.ServeMetrics("127.0.0.1:0", rec)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	hist, err := pccheck.OpenHistory(filepath.Join(dir, "history.pcar"))
	if err != nil {
		log.Fatal(err)
	}
	defer hist.Close()

	ctx := context.Background()
	for it := 0; it < steps; it++ {
		if _, err := trainer.Step(); err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, trainer.StateSize())
		if _, err := trainer.Snapshot(buf); err != nil {
			log.Fatal(err)
		}
		if err := hist.Append(uint64(it+1), buf); err != nil {
			log.Fatal(err)
		}
		// Checkpoint every single iteration; concurrent saves keep the
		// training loop from waiting on storage.
		go ck.Save(ctx, buf) //nolint:errcheck // demo: durability probed at the end
	}
	fmt.Printf("trained %d iterations, capturing a checkpoint each — latest durable: ", steps)
	if counter, _, ok := ck.Latest(); ok {
		fmt.Printf("#%d\n", counter)
	} else {
		fmt.Println("none")
	}

	// What an operator's Prometheus would see: scrape the live endpoint and
	// show the save-latency summary plus the outcome counters.
	fmt.Printf("\nlive metrics (scraped from http://%s/metrics):\n", metricsAddr)
	resp, err := http.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "pccheck_save_seconds") ||
			strings.HasPrefix(line, "pccheck_published_total") ||
			strings.HasPrefix(line, "pccheck_obsolete_total") {
			fmt.Println("  " + line)
		}
	}
	save := rec.Snapshot().Phase(pccheck.PhaseSave)
	fmt.Printf("save latency: p50=%v p95=%v p99=%v over %d saves\n", save.P50, save.P95, save.P99, save.Count)

	// Dump the flight-recorder ring as a Perfetto trace. It goes to the OS
	// temp dir (not the archive dir deleted below) so it survives the run.
	tracePath := filepath.Join(os.TempDir(), "pccheck-monitoring-trace.json")
	tf, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.WriteTrace(tf); err != nil {
		log.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint trace written to %s (open at https://ui.perfetto.dev)\n", tracePath)

	// Post-mortem: replay the durable archive, tracking the parameter norm.
	fmt.Printf("\npost-mortem over %d archived checkpoints:\n", hist.Len())
	derailed := -1
	var norm0 float64
	for _, entry := range hist.List() {
		it := int(entry.Counter) - 1
		state, err := hist.Load(entry.Counter)
		if err != nil {
			log.Fatalf("checkpoint %d unreadable: %v", entry.Counter, err)
		}
		probe := newTrainer(1.9)
		if err := probe.Restore(state); err != nil {
			log.Fatalf("checkpoint %d corrupt: %v", it, err)
		}
		var norm float64
		for _, p := range probe.Model.Params() {
			n := p.L2Norm()
			norm += n * n
		}
		norm = math.Sqrt(norm)
		if it == 0 {
			norm0 = norm
		}
		if it%20 == 0 {
			fmt.Printf("  iter %3d: ‖θ‖ = %8.2f\n", it+1, norm)
		}
		// A healthy run's parameter norm stays within a small factor of its
		// starting value; flag the first state that blows past 20×.
		if derailed < 0 && (math.IsNaN(norm) || math.IsInf(norm, 0) || norm > 20*norm0) {
			derailed = it + 1
		}
	}
	if derailed < 0 {
		fmt.Println("no divergence found (try a higher learning rate)")
		return
	}
	fmt.Printf("\ntraining derailed at iteration %d — the per-iteration checkpoint stream\n", derailed)
	fmt.Printf("lets you restart from iteration %d with a safer configuration instead of\nretraining from scratch (§2.1 of the paper).\n", derailed-1)

	// Demonstrate exactly that: restore the last healthy state from the
	// archive and continue with a sane learning rate.
	healthy, err := hist.Load(uint64(derailed - 1))
	if err != nil {
		log.Fatal(err)
	}
	rescue := newTrainer(0.05)
	if err := rescue.Restore(healthy); err != nil {
		log.Fatal(err)
	}
	var last float64
	for i := 0; i < 100; i++ {
		l, err := rescue.Step()
		if err != nil {
			log.Fatal(err)
		}
		last = l
	}
	if math.IsNaN(last) || math.IsInf(last, 0) {
		log.Fatal("rescued run still diverging")
	}
	fmt.Printf("rescued run converges again: loss %.4f after 100 more iterations ✓\n", last)
}
