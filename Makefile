GO ?= go

.PHONY: build vet test race verify bench-faults bench-crash bench-chaos bench-delta bench-tiers bench-json bench-decisions metrics-lint fmt-check staticcheck trace-smoke scrub-sweep

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI gate: everything must compile, pass vet, and pass the full test
# suite under the race detector.
verify: build vet race

bench-faults:
	$(GO) run ./cmd/pccheck-bench -faults

# Crash-point exploration sweep: simulated power cuts at every persist
# boundary of the full workload matrix, adversarial write-cache loss,
# real recovery against every image. Exits non-zero on any violation.
bench-crash:
	$(GO) run ./cmd/pccheck-bench -crash

# Network chaos sweep: seeded drops/dups/reorders, rank kills with
# restart+rejoin, and one-way partitions over a real multi-rank training
# loop, checking the global-consistency invariants (§4.1). Exits non-zero
# on any violation.
bench-chaos:
	$(GO) run ./cmd/pccheck-disttrain -chaos -chaos-seed 7

# Delta-checkpoint sweep: full vs delta bytes persisted across the sparse
# update pattern zoo, with recovery equivalence checked per pattern. Exits
# non-zero if any pattern's recovery diverges.
bench-delta:
	$(GO) run ./cmd/pccheck-bench -delta

# Tiered-durability sweep: drain bandwidth vs per-tier staleness over a
# DRAM→remote device, then the chaos phase — the slow tier torn down
# mid-run, asserting the cross-tier durability floor (everything the
# drainer acked recovers from the slow tier alone) and post-heal
# convergence. Exits non-zero on any violation.
bench-tiers:
	$(GO) run ./cmd/pccheck-bench -tiers -tier-teardown -json BENCH_tiers.json

# Benchmarks with machine-readable exports for run-to-run comparison — CI
# uploads the BENCH_*.json files as build artifacts (goodput ratio, stall
# attribution, slowdown vs budget; per-pattern delta reduction).
bench-json:
	$(GO) run ./cmd/pccheck-bench -goodput -json BENCH_goodput.json
	$(GO) run ./cmd/pccheck-bench -delta -json BENCH_delta.json

# Decision-trace gate: a seeded adaptive goodput run with the decision
# recorder attached, then pccheck-decisions asserting the log is
# non-empty, every regret is finite, the measurement join covers ≥95% of
# decisions, and every retune carries ≥2 scored alternatives.
bench-decisions:
	$(GO) run ./cmd/pccheck-bench -goodput -adaptive -goodput-iters 200 -decisions BENCH_decisions.jsonl
	$(GO) run ./cmd/pccheck-decisions -top 5 \
	  -assert-nonempty -assert-finite -assert-coverage 0.95 -assert-alternatives 2 \
	  BENCH_decisions.jsonl

# Latent-fault scrub sweep: seeded silent corruption (bit flips, zeroed
# sectors, unreadable-poisoned ranges) injected into committed slots,
# pointer records, the superblock, delta chains and replica tiers across
# the full scenario × damage-mode × layout matrix, then a scrub sweep
# asserting every injection is detected, healed (repaired, quarantined or
# resynced), never served, and that recovery still lands on the durable
# floor. 720 cases inject ~1080 corruptions. Exits non-zero on any
# violation.
scrub-sweep:
	PCCHECK_SCRUB_SWEEP=720 $(GO) test ./internal/core/ -run TestScrubSweepMatrix -count=1 -v

# Strict Prometheus text-exposition lint of everything /metrics serves
# (recorder + decision recorder + goodput ledger), scraped from a live
# in-process ServeMetrics endpoint.
metrics-lint:
	$(GO) run ./cmd/pccheck-metrics-lint

# Fault scenario with the flight recorder attached; validates the exported
# Chrome trace carries every pipeline phase.
trace-smoke:
	$(GO) run ./cmd/pccheck-bench -faults -trace-out /tmp/pccheck-trace.json
	python3 -c "import json; \
	  doc = json.load(open('/tmp/pccheck-trace.json')); \
	  names = {e['name'] for e in doc['traceEvents']}; \
	  need = {'save', 'slot-wait', 'copy', 'persist', 'barrier', 'publish'}; \
	  missing = need - names; \
	  assert not missing, f'trace missing spans: {missing}'; \
	  print('trace OK:', len(doc['traceEvents']), 'events')"

# Requires staticcheck on PATH (go install honnef.co/go/tools/cmd/staticcheck@latest).
staticcheck:
	staticcheck ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
