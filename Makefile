GO ?= go

.PHONY: build vet test race verify bench-faults fmt-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI gate: everything must compile, pass vet, and pass the full test
# suite under the race detector.
verify: build vet race

bench-faults:
	$(GO) run ./cmd/pccheck-bench -faults

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
