package pccheck

import (
	"io"

	"pccheck/internal/archive"
	"pccheck/internal/core"
	"pccheck/internal/storage"
)

// History is a durable, append-only archive of checkpoints — the monitoring
// and debugging companion to the fault-tolerance Checkpointer (§2.1 of the
// paper): where the Checkpointer guarantees the *newest* state survives a
// crash, a History retains *every* state you hand it, for post-mortem
// analysis of training dynamics. See examples/monitoring.
type History struct {
	a *archive.Archive
}

// HistoryEntry describes one archived checkpoint.
type HistoryEntry struct {
	// Counter is the checkpoint's counter (the value Save returned).
	Counter uint64
	// Size is the payload length in bytes.
	Size int64
}

// OpenHistory opens (or creates) an archive file. A torn tail from a crash
// mid-append is detected and truncated away.
func OpenHistory(path string) (*History, error) {
	a, err := archive.Open(path)
	if err != nil {
		return nil, err
	}
	return &History{a: a}, nil
}

// Append archives a checkpoint payload under its counter. Durable when it
// returns. Counters must be strictly increasing.
func (h *History) Append(counter uint64, payload []byte) error {
	return h.a.Append(counter, payload)
}

// List returns all archived checkpoints in order.
func (h *History) List() []HistoryEntry {
	entries := h.a.List()
	out := make([]HistoryEntry, len(entries))
	for i, e := range entries {
		out[i] = HistoryEntry{Counter: e.Counter, Size: e.Size}
	}
	return out
}

// Load returns the payload archived under counter.
func (h *History) Load(counter uint64) ([]byte, error) { return h.a.Load(counter) }

// Len returns the number of archived checkpoints.
func (h *History) Len() int { return h.a.Len() }

// Compact keeps only the newest keep checkpoints, reclaiming disk space.
func (h *History) Compact(keep int) error { return h.a.Compact(keep) }

// Close closes the archive file.
func (h *History) Close() error { return h.a.Close() }

// RecoveryStream streams the latest checkpoint out of a checkpoint file
// with durable progress — the "persistent iterator" of §4.2. For
// multi-gigabyte states the restore itself can be interrupted; reopening
// the stream resumes at the last logged position instead of byte zero.
//
// It implements io.ReadCloser; Read returns io.EOF once the payload is
// fully delivered.
type RecoveryStream struct {
	it  *core.RecoveryIterator
	dev storage.Device
}

// OpenRecoveryStream opens a resumable restore of the newest checkpoint in
// the file at path. chunkBytes sets read/logging granularity (0 = 1 MiB).
func OpenRecoveryStream(path string, chunkBytes int) (*RecoveryStream, error) {
	dev, err := storage.ReopenSSD(path)
	if err != nil {
		return nil, err
	}
	it, err := core.NewRecoveryIterator(dev, chunkBytes, 0)
	if err != nil {
		dev.Close()
		return nil, err
	}
	return &RecoveryStream{it: it, dev: dev}, nil
}

// Read implements io.Reader.
func (s *RecoveryStream) Read(p []byte) (int, error) {
	if s.it.Done() {
		return 0, io.EOF
	}
	return s.it.Next(p)
}

// Counter returns the checkpoint being restored.
func (s *RecoveryStream) Counter() uint64 { return s.it.Counter() }

// Size returns the checkpoint's full payload length.
func (s *RecoveryStream) Size() int64 { return s.it.Size() }

// Position returns bytes delivered so far, including resumed progress.
func (s *RecoveryStream) Position() int64 { return s.it.Position() }

// Restart rewinds the stream and its durable cursor to the beginning.
func (s *RecoveryStream) Restart() error { return s.it.Reset() }

// Close finalizes the stream. A completed restore clears the durable
// cursor; an interrupted one leaves it for the next OpenRecoveryStream.
func (s *RecoveryStream) Close() error {
	var err error
	if s.it.Done() {
		err = s.it.ClearCursor()
	}
	if cerr := s.dev.Close(); err == nil {
		err = cerr
	}
	return err
}

var _ io.ReadCloser = (*RecoveryStream)(nil)
