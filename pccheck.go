// Package pccheck is a concurrent checkpointing library for iterative
// workloads such as ML training, reproducing the system described in
// "PCcheck: Persistent Concurrent Checkpointing for ML" (ASPLOS'25).
//
// Unlike conventional checkpointers that admit one checkpoint at a time and
// stall the workload whenever a new checkpoint is due before the previous
// one has persisted, PCcheck keeps up to N checkpoints in flight
// concurrently. Each checkpoint streams through a bounded pool of DRAM
// staging chunks and is persisted by p parallel writers; a lock-free
// pointer protocol guarantees that a crash at any instant leaves the newest
// fully persisted checkpoint recoverable.
//
// # Quick start
//
//	ck, err := pccheck.Create("ckpt.pcc", pccheck.Config{
//		MaxBytes:   int64(len(state)),
//		Concurrent: 2,
//		Writers:    3,
//	})
//	...
//	for iter := 0; ; iter++ {
//		trainStep()
//		if iter%10 == 0 {
//			go ck.Save(ctx, snapshotBytes()) // training does not wait
//		}
//	}
//
// After a crash:
//
//	state, counter, err := pccheck.RecoverFile("ckpt.pcc")
//
// See examples/ for complete programs, including crash/resume of a real
// training loop, spot-instance trace replay, and multi-worker coordination.
package pccheck

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pccheck/internal/core"
	"pccheck/internal/pmem"
	"pccheck/internal/storage"
)

// Errors surfaced by the library.
var (
	// ErrNoCheckpoint means the target holds no fully persisted checkpoint.
	ErrNoCheckpoint = core.ErrNoCheckpoint
	// ErrTooLarge means a payload exceeds Config.MaxBytes.
	ErrTooLarge = core.ErrTooLarge
	// ErrNotFormatted means the target is not a PCcheck checkpoint file.
	ErrNotFormatted = core.ErrNotFormatted
	// ErrClosed means the Checkpointer has been closed.
	ErrClosed = core.ErrClosed
)

// Config tunes the checkpointer. MaxBytes is required; everything else has
// serviceable defaults. Tune (or the pccheck-tune command) derives a
// configuration from measurements per §3.4 of the paper.
type Config struct {
	// MaxBytes is the maximum checkpoint payload size m. The checkpoint
	// file occupies about (Concurrent+1+Delta.Keyframe)·MaxBytes on disk.
	MaxBytes int64
	// Concurrent is N, how many checkpoints may be in flight at once.
	// Default 2.
	Concurrent int
	// Writers is p, parallel persist goroutines per checkpoint. Default 3.
	Writers int
	// ChunkBytes is b, the DRAM staging chunk size; 0 disables pipelining
	// (whole-checkpoint staging).
	ChunkBytes int
	// DRAMBudget is M, the total staging DRAM; 0 defaults to 2·MaxBytes.
	DRAMBudget int64
	// Verify adds payload checksums, validated on load. Default off adds
	// zero read overhead; Create with Verify on is recommended whenever the
	// device may corrupt data silently.
	Verify bool
	// PerWriterBW throttles each writer goroutine (bytes/sec; 0 = unpaced).
	// Used to emulate per-thread device limits in experiments.
	PerWriterBW float64
	// Retry governs how transient device faults (classified
	// storage.ClassTransient — interrupted syscalls, throttle spikes,
	// injected transient faults) are retried on the persist path. The
	// zero value enables the default policy of 3 attempts; set
	// RetryPolicy{MaxAttempts: 1} to fail on the first fault.
	Retry RetryPolicy
	// Delta enables incremental checkpointing: only the chunks that changed
	// since the previous checkpoint are persisted, with a full keyframe
	// every Delta.Keyframe saves bounding recovery depth. Leave zero for
	// full checkpoints. See the "Delta checkpoints" section of the README.
	Delta DeltaConfig
	// Observer, when non-nil, receives a structured event for every phase
	// of every Save — slot wait, staging copies, per-writer persists, the
	// pointer-record barrier, publish/obsolete outcomes, retries. Attach a
	// *Recorder (NewFlightRecorder) to get bounded in-memory tracing,
	// latency histograms, and the /metrics endpoint, or chain a *Ledger
	// (NewLedger) in front of it for goodput/SLO accounting — Loop and
	// AdaptiveLoop detect a Ledger here and feed it iteration timings.
	// See the Observability section of the README. A nil Observer costs
	// one predictable branch per probe and zero allocations —
	// observability off is free.
	Observer Observer
	// BlackBox, when enabled (Bytes > 0), reserves a black-box telemetry
	// region in the checkpoint file and starts a background flusher that
	// periodically persists the flight-ring tail, the goodput report and
	// the decision-trace tail into torn-write-tolerant frames. After a
	// crash, PostMortemFile (or pccheck-inspect -post-mortem) reads back
	// what the process was doing. Requires a Recorder somewhere in the
	// Observer chain; it never touches the Emit hot path. See the
	// "Post-mortem forensics" section of docs/OBSERVABILITY.md.
	BlackBox BlackBoxConfig
	// Scrub tunes the background integrity scrubber. With Interval > 0 a
	// background goroutine periodically re-reads every committed checkpoint
	// slot, the pointer records, the superblock, the black-box header and
	// each replica tier, verifies every checksum, and repairs what it can
	// from the newest healthy copy (quarantining what it cannot). Leave
	// zero to scrub only on demand via ScrubNow. See the "Scrubbing &
	// self-healing" section of docs/CRASH_CONSISTENCY.md.
	Scrub ScrubConfig
}

// ScrubConfig tunes the background integrity scrubber (Config.Scrub).
type ScrubConfig = core.ScrubConfig

// ScrubStatus is a snapshot of cumulative scrubber activity, returned by
// Checkpointer.ScrubStatus.
type ScrubStatus = core.ScrubStatus

// ScrubRecord is one detect/repair finding in ScrubStatus.Findings.
type ScrubRecord = core.ScrubRecord

// DeltaConfig tunes incremental (delta) checkpointing. With either field
// set, Save diffs each payload against the previous checkpoint at chunk
// granularity and persists only the changed chunks; every Keyframe-th save
// is a full checkpoint, so recovery reads one keyframe plus at most
// Keyframe delta records. The checkpoint file grows by Keyframe extra
// slots to pin the chain.
type DeltaConfig struct {
	// Every selects which saves may be deltas: a save is a delta candidate
	// when its sequence number is a multiple of Every (1 or 0 = every
	// save). Setting Every alone defaults Keyframe to 8.
	Every int
	// Keyframe is K, the maximum delta-chain length before a forced full
	// checkpoint. Setting Keyframe alone defaults Every to 1.
	Keyframe int
}

// RetryPolicy bounds transient-fault retries per persist-path I/O
// operation: exponential backoff with jitter between attempts, permanent
// and corrupt errors always fail fast. See the "Failure semantics" section
// of the README.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per I/O, including the
	// first. 0 selects the default (3); 1 disables retry.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 1ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 100ms).
	MaxBackoff time.Duration
	// Multiplier grows the backoff between attempts (default 2).
	Multiplier float64
	// Jitter randomizes each backoff by ±Jitter fraction (default 0.2;
	// negative disables jitter).
	Jitter float64
}

func (c Config) withDefaults() Config {
	if c.Concurrent <= 0 {
		c.Concurrent = 2
	}
	if c.Writers <= 0 {
		c.Writers = 3
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry.MaxAttempts = 3
	}
	return c
}

func (c Config) engineConfig() core.Config {
	return core.Config{
		Concurrent:    c.Concurrent,
		SlotBytes:     c.MaxBytes,
		Writers:       c.Writers,
		ChunkBytes:    c.ChunkBytes,
		DRAMBudget:    c.DRAMBudget,
		VerifyPayload: c.Verify,
		PerWriterBW:   c.PerWriterBW,
		DeltaEvery:    c.Delta.Every,
		DeltaKeyframe: c.Delta.Keyframe,
		Retry: core.RetryPolicy{
			MaxAttempts: c.Retry.MaxAttempts,
			BaseBackoff: c.Retry.BaseBackoff,
			MaxBackoff:  c.Retry.MaxBackoff,
			Multiplier:  c.Retry.Multiplier,
			Jitter:      c.Retry.Jitter,
		},
		Observer: c.Observer,
		BlackBox: c.BlackBox,
		Scrub:    c.Scrub,
	}
}

// Stats reports cumulative checkpointer activity.
type Stats struct {
	// Published counts checkpoints that became the latest durable state.
	Published int64
	// Obsolete counts checkpoints completed but superseded by a newer
	// concurrent checkpoint before publishing — their work still made the
	// system strictly safer in the interim.
	Obsolete int64
	// BytesWritten is the total logical payload volume checkpointed;
	// BytesPersisted is what actually hit the device. They are equal for
	// full checkpoints; with delta mode on, Persisted/Written is the
	// bytes-per-save reduction the deltas bought.
	BytesWritten   int64
	BytesPersisted int64
	// DeltaSaves and KeyframeSaves split published checkpoints by kind in
	// delta mode (both zero otherwise).
	DeltaSaves    int64
	KeyframeSaves int64
	// PersistTime is the cumulative wall time spent inside Save.
	PersistTime time.Duration
	// SlotWaits counts Saves that had to wait for a free slot — a signal
	// that Concurrent is too small for the checkpoint cadence.
	SlotWaits int64
	// Retries counts persist-path I/O retries taken after transient
	// device faults — each one is a fault the retry policy absorbed
	// without failing the Save.
	Retries int64
	// CASRetries counts publish CAS attempts retried against older
	// registered values — harmless contention on the in-memory pointer,
	// distinct from the I/O Retries above.
	CASRetries int64
	// TransientFaults counts transient device faults observed on the
	// persist path (absorbed or not). TransientFaults > Retries means
	// some Saves exhausted their attempt budget.
	TransientFaults int64
	// FailedSaves counts Saves that returned an error after starting —
	// the rollback-window widenings an operator should alert on.
	FailedSaves int64
}

// Checkpointer persists checkpoints onto a single device. All methods are
// safe for concurrent use.
type Checkpointer struct {
	engine *core.Checkpointer
	dev    storage.Device
	ownDev bool
}

// Create formats path as a new checkpoint file sized for cfg and returns a
// ready Checkpointer. Existing contents are destroyed.
func Create(path string, cfg Config) (*Checkpointer, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxBytes <= 0 {
		return nil, fmt.Errorf("pccheck: Config.MaxBytes must be positive, got %d", cfg.MaxBytes)
	}
	dev, err := storage.OpenSSD(path, core.DeviceBytesFor(cfg.engineConfig()))
	if err != nil {
		return nil, err
	}
	engine, err := core.New(dev, cfg.engineConfig())
	if err != nil {
		dev.Close()
		return nil, err
	}
	return &Checkpointer{engine: engine, dev: dev, ownDev: true}, nil
}

// Open attaches to an existing checkpoint file, recovering the latest
// persisted checkpoint pointer. Geometry (MaxBytes, Concurrent) comes from
// the file; cfg supplies the runtime knobs (Writers, ChunkBytes, …).
func Open(path string, cfg Config) (*Checkpointer, error) {
	dev, err := storage.ReopenSSD(path)
	if err != nil {
		return nil, err
	}
	engine, err := core.Open(dev, cfg.withDefaults().engineConfig())
	if err != nil {
		dev.Close()
		return nil, err
	}
	return &Checkpointer{engine: engine, dev: dev, ownDev: true}, nil
}

// CreateVolatile builds a Checkpointer over emulated persistent memory —
// useful for tests, experiments and the examples in this repository. The
// returned Memory handle can inject crashes and fork post-crash replicas.
func CreateVolatile(cfg Config) (*Checkpointer, *Memory, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxBytes <= 0 {
		return nil, nil, fmt.Errorf("pccheck: Config.MaxBytes must be positive, got %d", cfg.MaxBytes)
	}
	region := pmem.NewRegion(int(core.DeviceBytesFor(cfg.engineConfig())))
	dev := storage.NewPMEM(region)
	engine, err := core.New(dev, cfg.engineConfig())
	if err != nil {
		return nil, nil, err
	}
	return &Checkpointer{engine: engine, dev: dev}, &Memory{region: region}, nil
}

// Save persists payload as a new checkpoint and returns its counter. Save
// blocks until the checkpoint is durable (or durably superseded by a newer
// concurrent checkpoint); run it in a goroutine to overlap with the
// workload — up to Config.Concurrent Saves proceed in parallel, additional
// ones wait for a slot. The payload must not be mutated until Save returns.
func (c *Checkpointer) Save(ctx context.Context, payload []byte) (uint64, error) {
	return c.engine.Checkpoint(ctx, core.BytesSource(payload))
}

// SaveFrom persists a checkpoint pulled from an arbitrary source, enabling
// zero-copy pipelines (e.g. staged reads from accelerator memory). size is
// the payload length; read fills p with payload bytes starting at off and
// must support concurrent calls on disjoint ranges.
func (c *Checkpointer) SaveFrom(ctx context.Context, size int64, read func(p []byte, off int64) error) (uint64, error) {
	return c.engine.Checkpoint(ctx, funcSource{size: size, read: read})
}

type funcSource struct {
	size int64
	read func(p []byte, off int64) error
}

func (s funcSource) Size() int64                        { return s.size }
func (s funcSource) ReadInto(p []byte, off int64) error { return s.read(p, off) }

// Latest returns the newest published checkpoint's counter and size.
func (c *Checkpointer) Latest() (counter uint64, size int64, ok bool) {
	return c.engine.Latest()
}

// LoadLatest returns a copy of the newest published checkpoint.
//
// Sizing the buffer from Latest() and then reading is inherently racy — a
// larger checkpoint can publish in between — so a too-small read retries
// with a buffer re-sized from the fresh metadata instead of surfacing the
// transient mismatch to the caller.
func (c *Checkpointer) LoadLatest() ([]byte, uint64, error) {
	for attempt := 0; ; attempt++ {
		_, size, ok := c.engine.Latest()
		if !ok {
			return nil, 0, ErrNoCheckpoint
		}
		buf := make([]byte, size)
		counter, n, err := c.engine.ReadLatest(buf)
		if err != nil {
			if errors.Is(err, core.ErrBufferTooSmall) && attempt < 100 {
				continue // a bigger checkpoint published mid-load; re-size
			}
			return nil, 0, err
		}
		return buf[:n], counter, nil
	}
}

// DirtyTracker is the trainer-facing dirty-range feed for delta mode; see
// its methods for the coherence contract.
type DirtyTracker = core.DirtyTracker

// DirtyTracker returns the dirty-range tracker when delta mode is on, nil
// otherwise. Feeding it the exact byte ranges mutated between Saves lets
// the engine skip content hashing; an unfed tracker is always safe — the
// engine falls back to hashing each payload chunk.
func (c *Checkpointer) DirtyTracker() *DirtyTracker {
	return c.engine.DirtyTracker()
}

// SetWriterBandwidth changes the per-writer pacing rate at runtime
// (bytes/sec; 0 unpaces). Experiments use it to model device contention;
// production deployments normally leave writes unpaced and let the device
// arbitrate.
func (c *Checkpointer) SetWriterBandwidth(bytesPerSec float64) {
	c.engine.SetPerWriterBW(bytesPerSec)
}

// LoadVersion returns the checkpoint saved under counter, if one of the
// (Concurrent+1) retained slots still holds it intact. Only the *latest*
// checkpoint is guaranteed to be retained; older ones are best-effort
// (ErrNoCheckpoint when already overwritten).
func (c *Checkpointer) LoadVersion(counter uint64) ([]byte, error) {
	return c.engine.ReadVersion(counter)
}

// Stats returns cumulative activity counters.
func (c *Checkpointer) Stats() Stats {
	s := c.engine.Stats()
	return Stats{
		Published:       s.Checkpoints,
		Obsolete:        s.Obsolete,
		BytesWritten:    s.BytesWritten,
		BytesPersisted:  s.BytesPersisted,
		DeltaSaves:      s.DeltaSaves,
		KeyframeSaves:   s.KeyframeSaves,
		PersistTime:     s.Persist,
		SlotWaits:       s.SlotWaits,
		Retries:         s.IORetries,
		CASRetries:      s.CASRetries,
		TransientFaults: s.TransientFaults,
		FailedSaves:     s.FailedSaves,
	}
}

// ScrubNow runs one synchronous integrity sweep over everything committed —
// slots, pointer records, superblock, black-box header, replica tiers —
// independent of the background cadence. It returns how many corruptions
// were found and how many of those were healed (repaired in place,
// re-replicated from a healthy tier, or quarantined so they can never be
// served); found > healed means latent damage survived the sweep and
// ScrubStatus().Unrepaired says where.
func (c *Checkpointer) ScrubNow() (found, healed int, err error) {
	return c.engine.ScrubNow()
}

// ScrubStatus returns cumulative scrubber activity: sweeps completed, bytes
// verified, corruptions found, and how each one was resolved, with a bounded
// audit trail of the most recent findings.
func (c *Checkpointer) ScrubStatus() ScrubStatus {
	return c.engine.ScrubStatus()
}

// Close stops the checkpointer. In-flight Saves finish first.
func (c *Checkpointer) Close() error {
	err := c.engine.Close()
	if c.ownDev {
		if cerr := c.dev.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// RecoverFile loads the latest fully persisted checkpoint from a checkpoint
// file without constructing a Checkpointer — the restart path.
func RecoverFile(path string) (payload []byte, counter uint64, err error) {
	dev, err := storage.ReopenSSD(path)
	if err != nil {
		return nil, 0, err
	}
	defer dev.Close()
	return core.Recover(dev)
}

// TierStatus is one tier's durability standing (see Checkpointer.TierStatus).
type TierStatus = storage.TierStatus

// CreateTiered builds a Checkpointer over an N-level durability hierarchy
// composed from levels, fastest first — e.g. a DRAM device in front of an
// SSD in front of a remote store. Saves complete at tier 0 (so persist
// latency is tier 0's); a background drainer replicates committed
// checkpoints into the lower levels with bounded staleness, and recovery
// prefers the newest reachable tier. The Checkpointer owns the levels.
func CreateTiered(cfg Config, levels ...storage.Device) (*Checkpointer, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxBytes <= 0 {
		return nil, fmt.Errorf("pccheck: Config.MaxBytes must be positive, got %d", cfg.MaxBytes)
	}
	tiered, err := storage.NewTiered(levels, storage.WithTierObserver(cfg.Observer))
	if err != nil {
		return nil, err
	}
	engine, err := core.New(tiered, cfg.engineConfig())
	if err != nil {
		tiered.Close()
		return nil, err
	}
	return &Checkpointer{engine: engine, dev: tiered, ownDev: true}, nil
}

// CreateTieredFiles is the file-backed convenience over CreateTiered:
// primary and every replica path are formatted as checkpoint files of
// identical geometry and composed into tiers in argument order. Losing the
// primary later costs at most the drain lag: RecoverAny over the replica
// paths restores the newest checkpoint the drainer acknowledged there.
func CreateTieredFiles(cfg Config, primary string, replicas ...string) (*Checkpointer, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxBytes <= 0 {
		return nil, fmt.Errorf("pccheck: Config.MaxBytes must be positive, got %d", cfg.MaxBytes)
	}
	size := core.DeviceBytesFor(cfg.engineConfig())
	var levels []storage.Device
	for _, path := range append([]string{primary}, replicas...) {
		dev, err := storage.OpenSSD(path, size)
		if err != nil {
			for _, l := range levels {
				l.Close()
			}
			return nil, err
		}
		levels = append(levels, dev)
	}
	return CreateTiered(cfg, levels...)
}

// TierStatus reports per-tier durability standing — which checkpoint
// counter each tier would recover to if everything above it were lost, and
// the drainer's per-tier accounting. It returns nil for a non-tiered
// Checkpointer.
func (c *Checkpointer) TierStatus() []TierStatus {
	if tiered, ok := c.dev.(*storage.Tiered); ok {
		return tiered.Status()
	}
	return nil
}

// WaitDrained blocks until every tier has caught up with tier 0 (or the
// timeout passes), reporting whether they converged. On a non-tiered
// Checkpointer it returns true immediately. Call it before an orderly
// teardown when the replicas must hold the final state.
func (c *Checkpointer) WaitDrained(timeout time.Duration) bool {
	if tiered, ok := c.dev.(*storage.Tiered); ok {
		return tiered.WaitDrained(timeout)
	}
	return true
}

// RecoverAny loads the newest recoverable checkpoint across a set of
// checkpoint files — the restart path when some tiers may be truncated,
// corrupt, or missing entirely. Files that cannot be opened or hold no
// intact checkpoint are skipped; the highest checkpoint counter across the
// remaining tiers wins. Only if no path yields a checkpoint does it return
// an error (the first open failure, or ErrNoCheckpoint).
func RecoverAny(paths ...string) (payload []byte, counter uint64, err error) {
	if len(paths) == 0 {
		return nil, 0, fmt.Errorf("pccheck: RecoverAny needs at least one path")
	}
	var (
		devs     []storage.Device
		firstErr error
	)
	for _, path := range paths {
		dev, oerr := storage.ReopenSSD(path)
		if oerr != nil {
			if firstErr == nil {
				firstErr = oerr
			}
			continue
		}
		defer dev.Close()
		devs = append(devs, dev)
	}
	payload, counter, err = core.RecoverTiered(devs...)
	if err != nil && len(devs) == 0 && firstErr != nil {
		return nil, 0, firstErr
	}
	return payload, counter, err
}

// Memory is the crash-injection handle of a CreateVolatile checkpointer.
type Memory struct {
	region *pmem.Region
}

// Crash drops everything that was not durably persisted, emulating a power
// failure with the most adversarial timing.
func (m *Memory) Crash() { m.region.Crash(pmem.DropAll) }

// ForkCrashed returns the payload and counter that recovery would find if
// the machine crashed right now, without disturbing the live checkpointer.
func (m *Memory) ForkCrashed() ([]byte, uint64, error) {
	return core.Recover(storage.NewPMEM(m.region.CloneDurable()))
}

// IsNoCheckpoint reports whether err indicates an empty checkpoint target.
func IsNoCheckpoint(err error) bool { return errors.Is(err, ErrNoCheckpoint) }

// IsTransient reports whether err is a transient device fault — one the
// retry policy would absorb, worth retrying at the Save granularity too.
func IsTransient(err error) bool { return storage.IsTransient(err) }

// IsCorrupt reports whether err is an integrity failure: the device returned
// bytes that fail their checksum. Corrupt checkpoints are never retried and
// never recovered from; recovery falls back to an older intact checkpoint.
func IsCorrupt(err error) bool { return storage.IsCorrupt(err) }
