// Benchmark harness: one benchmark per table and figure of the paper
// (regenerating the artefact from the calibrated simulator and reporting its
// headline numbers as metrics), plus real-engine microbenchmarks that
// exercise the actual checkpointing code path at MB scale — the laptop-sized
// counterpart of Figure 11's persist-latency and Figures 12/13's sensitivity
// sweeps.
//
// Regenerate everything:
//
//	go test -bench=. -benchmem
//	go test -bench=Figure8            # one artefact
//	go run ./cmd/pccheck-bench -all   # the same data as CSV files
package pccheck

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"pccheck/internal/baselines"
	"pccheck/internal/core"
	"pccheck/internal/figures"
	"pccheck/internal/perfmodel"
	"pccheck/internal/pmem"
	"pccheck/internal/sim"
	"pccheck/internal/storage"
	"pccheck/internal/workload"
)

// reportCell parses one figure cell into a benchmark metric.
func reportCell(b *testing.B, fig figures.Figure, row int, col, metric string) {
	b.Helper()
	for i, c := range fig.Columns {
		if c == col {
			v, err := strconv.ParseFloat(fig.Rows[row][i], 64)
			if err != nil {
				b.Fatalf("%s[%d].%s: %v", fig.ID, row, col, err)
			}
			b.ReportMetric(v, metric)
			return
		}
	}
	b.Fatalf("%s has no column %s", fig.ID, col)
}

// BenchmarkFigure1 regenerates Figure 1 (BLOOM-7B slowdown of CheckFreq and
// Gemini vs checkpoint interval) and reports the f=10 slowdowns.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportCell(b, fig, 1, "checkfreq_slowdown", "cf-slowdown@f10")
			reportCell(b, fig, 1, "gemini_slowdown", "gem-slowdown@f10")
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2 (BLOOM-7B goodput on the spot trace)
// and reports PCcheck's and CheckFreq's goodput at f=10.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportCell(b, fig, 1, "pccheck", "pccheck-goodput@f10")
			reportCell(b, fig, 1, "checkfreq", "cf-goodput@f10")
			reportCell(b, fig, 1, "ideal", "ideal-goodput@f10")
		}
	}
}

// BenchmarkFigure8 regenerates every panel of Figure 8 (throughput vs
// checkpoint interval on SSD); sub-benchmarks report PCcheck's and
// CheckFreq's throughput at f=10.
func BenchmarkFigure8(b *testing.B) {
	for _, model := range figures.Figure8Models {
		b.Run(model, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fig, err := figures.Figure8(model)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					reportCell(b, fig, 1, "pccheck_iters_per_sec", "pccheck-iters/s@f10")
					reportCell(b, fig, 1, "checkfreq_iters_per_sec", "cf-iters/s@f10")
				}
			}
		})
	}
}

// BenchmarkFigure9 regenerates every panel of Figure 9 (goodput on the spot
// trace).
func BenchmarkFigure9(b *testing.B) {
	for _, model := range figures.Figure8Models {
		b.Run(model, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fig, err := figures.Figure9(model)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					reportCell(b, fig, 1, "pccheck_goodput", "pccheck-goodput@f10")
					reportCell(b, fig, 1, "checkfreq_goodput", "cf-goodput@f10")
				}
			}
		})
	}
}

// BenchmarkFigure10 regenerates Figure 10 (BERT on PMEM).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportCell(b, fig, 1, "pccheck_iters_per_sec", "pccheck-iters/s@f10")
			reportCell(b, fig, 1, "checkfreq_iters_per_sec", "cf-iters/s@f10")
		}
	}
}

// BenchmarkFigure11 regenerates Figure 11 (time to persist one checkpoint vs
// size) and reports the 16 GB persist times.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := len(fig.Rows) - 1
			reportCell(b, fig, last, "pccheck_s", "pccheck-s@16GB")
			reportCell(b, fig, last, "checkfreq_s", "cf-s@16GB")
			reportCell(b, fig, last, "gpm_s", "gpm-s@16GB")
			reportCell(b, fig, last, "gemini_s", "gemini-s@16GB")
		}
	}
}

// BenchmarkFigure12 regenerates Figure 12 (concurrent-checkpoint
// sensitivity, VGG-16) and reports N=1 vs N=4 slowdown at f=10.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportCell(b, fig, 1, "slowdown_N1", "slowdown-N1@f10")
			reportCell(b, fig, 1, "slowdown_N4", "slowdown-N4@f10")
		}
	}
}

// BenchmarkFigure13 regenerates Figure 13 (writer-thread sensitivity,
// OPT-350M at f=10).
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportCell(b, fig, 0, "slowdown_N1", "slowdown-p1-N1")
			reportCell(b, fig, 2, "slowdown_N1", "slowdown-p3-N1")
		}
	}
}

// BenchmarkFigure14 regenerates Figure 14 (DRAM budget and pipelining,
// OPT-1.3B at f=15).
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Figure14()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportCell(b, fig, 0, "p6", "iters/s@DRAM=m")
			reportCell(b, fig, 2, "p6", "iters/s@DRAM=2m")
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (memory footprints).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Table1(3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (the model zoo).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- real-engine microbenchmarks ---------------------------------------------

// BenchmarkRealEngineSave measures the actual engine's end-to-end Save
// throughput on an in-memory device across the paper's configuration axes
// (N concurrent checkpoints × p writers). This is the real-code counterpart
// of Figures 12/13.
func BenchmarkRealEngineSave(b *testing.B) {
	const payloadBytes = 4 << 20
	payload := make([]byte, payloadBytes)
	for _, n := range []int{1, 2, 4} {
		for _, p := range []int{1, 3} {
			b.Run(fmt.Sprintf("N%d-p%d", n, p), func(b *testing.B) {
				dev := storage.NewRAM(core.DeviceBytes(n, payloadBytes))
				eng, err := core.New(dev, core.Config{
					Concurrent: n, SlotBytes: payloadBytes,
					Writers: p, ChunkBytes: 1 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(payloadBytes)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, err := eng.Checkpoint(context.Background(), core.BytesSource(payload)); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkRealPersistLatency is the real-code Figure 11: one isolated
// checkpoint persisted by each mechanism onto a bandwidth-throttled file
// device (50 MB/s "SSD", 8 MB payload), reporting seconds per checkpoint.
func BenchmarkRealPersistLatency(b *testing.B) {
	const payloadBytes = 8 << 20
	payload := make([]byte, payloadBytes)
	newDev := func(b *testing.B) *storage.SSD {
		dev, err := storage.OpenSSD(b.TempDir()+"/dev", core.DeviceBytes(1, payloadBytes),
			storage.WithSSDThrottle(storage.NewThrottle(50<<20)))
		if err != nil {
			b.Fatal(err)
		}
		return dev
	}
	b.Run("pccheck", func(b *testing.B) {
		dev := newDev(b)
		defer dev.Close()
		eng, err := core.New(dev, core.Config{
			Concurrent: 1, SlotBytes: payloadBytes, Writers: 4, ChunkBytes: 1 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(payloadBytes)
		for i := 0; i < b.N; i++ {
			if _, err := eng.Checkpoint(context.Background(), core.BytesSource(payload)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("checkfreq", func(b *testing.B) {
		dev := newDev(b)
		defer dev.Close()
		cf, err := baselines.NewCheckFreq(dev, payloadBytes, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer cf.Close()
		b.SetBytes(payloadBytes)
		for i := 0; i < b.N; i++ {
			if _, err := cf.Checkpoint(context.Background(), core.BytesSource(payload)); err != nil {
				b.Fatal(err)
			}
			if err := cf.WaitIdle(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gpm", func(b *testing.B) {
		dev := newDev(b)
		defer dev.Close()
		g, err := baselines.NewGPM(dev, payloadBytes)
		if err != nil {
			b.Fatal(err)
		}
		defer g.Close()
		b.SetBytes(payloadBytes)
		for i := 0; i < b.N; i++ {
			if _, err := g.Checkpoint(context.Background(), core.BytesSource(payload)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSaveLatencyDistribution runs concurrent saves with the flight
// recorder attached and reports the latency percentiles the histograms
// collected — the latency-distribution counterpart of the mean-throughput
// numbers above (Figure 11 reports means; operators alert on tails).
func BenchmarkSaveLatencyDistribution(b *testing.B) {
	const payloadBytes = 1 << 20
	payload := make([]byte, payloadBytes)
	rec := NewFlightRecorder(1 << 12)
	dev := storage.NewRAM(core.DeviceBytes(2, payloadBytes))
	eng, err := core.New(dev, core.Config{
		Concurrent: 2, SlotBytes: payloadBytes,
		Writers: 2, ChunkBytes: 256 << 10, Observer: rec,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(payloadBytes)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := eng.Checkpoint(context.Background(), core.BytesSource(payload)); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	snap := rec.Snapshot()
	save := snap.Phase(PhaseSave)
	b.ReportMetric(float64(save.P50.Microseconds())/1e3, "save-p50-ms")
	b.ReportMetric(float64(save.P99.Microseconds())/1e3, "save-p99-ms")
	b.ReportMetric(float64(snap.Phase(PhaseSlotWait).P99.Microseconds())/1e3, "slot-wait-p99-ms")
}

// BenchmarkObserverOverhead measures the same save path with observability
// off (nil observer — the zero-overhead claim) and on (flight recorder
// attached); the two sub-benchmarks should be within noise of each other.
func BenchmarkObserverOverhead(b *testing.B) {
	const payloadBytes = 1 << 20
	payload := make([]byte, payloadBytes)
	run := func(b *testing.B, obsv Observer) {
		dev := storage.NewRAM(core.DeviceBytes(2, payloadBytes))
		eng, err := core.New(dev, core.Config{
			Concurrent: 2, SlotBytes: payloadBytes,
			Writers: 2, ChunkBytes: 256 << 10, Observer: obsv,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(payloadBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Checkpoint(context.Background(), core.BytesSource(payload)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, NewFlightRecorder(1<<12)) })
}

// BenchmarkRecovery measures the real cold-start recovery path: open a
// formatted device, locate the newest valid pointer record, validate the
// slot, and read the payload back.
func BenchmarkRecovery(b *testing.B) {
	const payloadBytes = 4 << 20
	dev := storage.NewRAM(core.DeviceBytes(2, payloadBytes))
	eng, err := core.New(dev, core.Config{Concurrent: 2, SlotBytes: payloadBytes, VerifyPayload: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Checkpoint(context.Background(), core.BytesSource(make([]byte, payloadBytes))); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(payloadBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Recover(dev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorSpeed measures the simulator itself: one full PCcheck
// BLOOM-7B run at f=10 (the cost of regenerating a single figure point).
func BenchmarkSimulatorSpeed(b *testing.B) {
	model, err := workload.ByName("BLOOM-7B")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{
			Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
			Interval: 10, Concurrent: 2, Writers: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks ------------------------------------------------------
//
// DESIGN.md calls out the design choices below; each ablation isolates one.

// BenchmarkAblationPMEMWritePath compares the two PMEM persist instruction
// sequences of §3.3 — non-temporal stores + sfence vs cached stores + clwb +
// sfence — on the emulated device with bandwidth calibrated to the paper's
// measurements (4.01 vs 2.46 GB/s, scaled 1000× down to keep the bench
// fast). PCcheck picks the nt-store path.
func BenchmarkAblationPMEMWritePath(b *testing.B) {
	const payloadBytes = 1 << 20
	payload := make([]byte, payloadBytes)
	cases := []struct {
		name string
		mode storage.PMEMMode
		bw   float64
	}{
		{"ntstore", storage.NTStore, 4.01e6}, // calibrated ratio, scaled
		{"clwb", storage.CLWB, 2.46e6},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			region := pmem.NewRegion(int(core.DeviceBytes(1, payloadBytes)))
			dev := storage.NewPMEM(region,
				storage.WithPMEMMode(tc.mode),
				storage.WithPMEMThrottle(storage.NewThrottle(tc.bw)))
			eng, err := core.New(dev, core.Config{Concurrent: 1, SlotBytes: payloadBytes, Writers: 2, ChunkBytes: 256 << 10})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(payloadBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Checkpoint(context.Background(), core.BytesSource(payload)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPipelining compares whole-checkpoint staging against
// chunked pipelining on a throttled device (§4.1 "Pipelining and Using
// Chunks" / Figure 14's mechanism) in the real engine.
func BenchmarkAblationPipelining(b *testing.B) {
	const payloadBytes = 8 << 20
	payload := make([]byte, payloadBytes)
	for _, tc := range []struct {
		name       string
		chunkBytes int
	}{
		{"staged", payloadBytes},
		{"pipelined-8chunks", payloadBytes / 8},
	} {
		b.Run(tc.name, func(b *testing.B) {
			dev, err := storage.OpenSSD(b.TempDir()+"/dev", core.DeviceBytes(1, payloadBytes),
				storage.WithSSDThrottle(storage.NewThrottle(100<<20)))
			if err != nil {
				b.Fatal(err)
			}
			defer dev.Close()
			eng, err := core.New(dev, core.Config{
				Concurrent: 1, SlotBytes: payloadBytes,
				Writers: 2, ChunkBytes: tc.chunkBytes,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(payloadBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Checkpoint(context.Background(), core.BytesSource(payload)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVerify measures the cost of payload checksumming
// (Config.Verify): a CRC32 folded on the staging path plus a check on read.
func BenchmarkAblationVerify(b *testing.B) {
	const payloadBytes = 4 << 20
	payload := make([]byte, payloadBytes)
	for _, verify := range []bool{false, true} {
		name := "off"
		if verify {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			dev := storage.NewRAM(core.DeviceBytes(1, payloadBytes))
			eng, err := core.New(dev, core.Config{
				Concurrent: 1, SlotBytes: payloadBytes,
				Writers: 2, ChunkBytes: 1 << 20, VerifyPayload: verify,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(payloadBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Checkpoint(context.Background(), core.BytesSource(payload)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationProtocolOverhead isolates the coordination protocol
// itself: 64-byte checkpoints make the counter/queue/CAS/pointer-record
// machinery dominate.
func BenchmarkAblationProtocolOverhead(b *testing.B) {
	payload := make([]byte, 64)
	dev := storage.NewRAM(core.DeviceBytes(4, 64))
	eng, err := core.New(dev, core.Config{Concurrent: 4, SlotBytes: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := eng.Checkpoint(context.Background(), core.BytesSource(payload)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
