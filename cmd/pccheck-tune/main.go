// Command pccheck-tune is the configuration tool of §3.4: given a workload
// (iteration time, checkpoint size) and constraints (acceptable overhead,
// budgets), it picks the number of concurrent checkpoints N*, the writer
// count p, and the minimum checkpoint interval f* = ceil(Tw/(N·q·t)).
//
// Two modes:
//
//	-profile path     measure a real device by writing scratch checkpoints
//	-platform name    evaluate the analytic model with a calibrated platform
//	                  (a100-gcp-ssd, rtx-pmem, h100-azure-nvme)
//
// Examples:
//
//	pccheck-tune -profile /mnt/ssd/scratch.pcc -size 64MB -iter 5ms -overhead 1.05
//	pccheck-tune -platform a100-gcp-ssd -model OPT-1.3B -overhead 1.05
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"pccheck"
	"pccheck/internal/cliutil"
	"pccheck/internal/tuner"
	"pccheck/internal/workload"
)

func main() {
	var (
		profile  = flag.String("profile", "", "path of a scratch file on the target device to profile")
		platform = flag.String("platform", "", "analytic mode: platform name (a100-gcp-ssd, rtx-pmem, h100-azure-nvme)")
		model    = flag.String("model", "", "analytic mode: model name from Table 3 (e.g. OPT-1.3B)")
		sizeStr  = flag.String("size", "", "checkpoint size for -profile mode (e.g. 64MB, 1GB)")
		iterStr  = flag.Duration("iter", 0, "iteration time for -profile mode (e.g. 250ms)")
		overhead = flag.Float64("overhead", 1.05, "acceptable slowdown q (> 1)")
		dram     = flag.String("dram", "", "staging DRAM budget M (default 2× checkpoint size)")
		storage  = flag.String("storage", "", "persistent storage budget S (default unlimited)")
	)
	flag.Parse()

	switch {
	case *profile != "":
		size, err := cliutil.ParseBytes(*sizeStr)
		if err != nil || size <= 0 {
			fail("need -size for profile mode: %v", err)
		}
		if *iterStr <= 0 {
			fail("need -iter for profile mode")
		}
		in := pccheck.TuneInput{
			IterTime:        *iterStr,
			CheckpointBytes: size,
			MaxOverhead:     *overhead,
		}
		if *dram != "" {
			if in.DRAMBudget, err = cliutil.ParseBytes(*dram); err != nil {
				fail("bad -dram: %v", err)
			}
		}
		if *storage != "" {
			if in.StorageBudget, err = cliutil.ParseBytes(*storage); err != nil {
				fail("bad -storage: %v", err)
			}
		}
		res, err := pccheck.Tune(*profile, in)
		if err != nil {
			fail("%v", err)
		}
		fmt.Println("profiled configuration:")
		fmt.Printf("  concurrent checkpoints N* = %d\n", res.Config.Concurrent)
		fmt.Printf("  writer threads p          = %d\n", res.Config.Writers)
		fmt.Printf("  chunk size b              = %s\n", cliutil.FormatBytes(int64(res.Config.ChunkBytes)))
		fmt.Printf("  checkpoint interval f*    = %d iterations\n", res.Interval)
		fmt.Printf("  measured Tw               = %v\n", res.Tw.Round(time.Microsecond))
		printProfile(res.Profile)

	case *platform != "":
		p, err := workload.PlatformByName(*platform)
		if err != nil {
			fail("%v", err)
		}
		m, err := workload.ByName(*model)
		if err != nil {
			fail("need -model in analytic mode: %v", err)
		}
		t := m.IterTimeOn(p)
		if t <= 0 {
			fail("model %s does not run on platform %s", m.Name, p.Name)
		}
		res, err := tuner.Analyze(tuner.Input{
			IterTime:        t,
			CheckpointBytes: m.PartitionBytes(),
			MaxOverhead:     *overhead,
		}, p.StorageWriteBW, p.PerThreadWriteBW)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("analytic configuration for %s on %s (q = %.2f):\n", m.Name, p.Name, *overhead)
		fmt.Printf("  concurrent checkpoints N* = %d\n", res.N)
		fmt.Printf("  writer threads p          = %d\n", res.Writers)
		fmt.Printf("  checkpoint interval f*    = %d iterations\n", res.Interval)
		fmt.Printf("  worst-case Tw             = %v\n", res.Tw.Round(time.Millisecond))
		printProfile(res.Profile)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printProfile(profile map[int]time.Duration) {
	ns := make([]int, 0, len(profile))
	for n := range profile {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	fmt.Println("  Tw per candidate N:")
	for _, n := range ns {
		fmt.Printf("    N=%d: %v (Tw/N = %v)\n", n,
			profile[n].Round(time.Microsecond),
			(profile[n] / time.Duration(n)).Round(time.Microsecond))
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pccheck-tune: "+format+"\n", args...)
	os.Exit(1)
}
