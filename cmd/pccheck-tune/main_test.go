package main

import (
	"testing"

	"pccheck/internal/workload"
)

func TestPlatformByName(t *testing.T) {
	for _, name := range []string{"a100-gcp-ssd", "rtx-pmem", "h100-azure-nvme"} {
		p, err := workload.PlatformByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("PlatformByName(%q): %v", name, err)
		}
	}
	if _, err := workload.PlatformByName("tpu-v9"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}
