// Command pccheck-train trains a real (pure-Go) neural network with PCcheck
// checkpointing every f iterations, and demonstrates crash recovery: run it
// once with -crash-at to die mid-training, then run it again with the same
// -ckpt path and it resumes from the latest durable checkpoint, finishing
// with parameters bit-identical to an uninterrupted run.
//
// Examples:
//
//	pccheck-train -ckpt /tmp/run.pcc -steps 500 -interval 10
//	pccheck-train -ckpt /tmp/run.pcc -steps 500 -interval 10 -crash-at 230
//	pccheck-train -ckpt /tmp/run.pcc -steps 500 -interval 10   # resumes at 230
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"pccheck"
	"pccheck/internal/cliutil"
	"pccheck/internal/train"
)

func main() {
	var (
		ckptPath   = flag.String("ckpt", "train.pcc", "checkpoint file")
		steps      = flag.Int("steps", 500, "total training iterations")
		interval   = flag.Int("interval", 10, "checkpoint every f iterations")
		concurrent = flag.Int("concurrent", 2, "concurrent checkpoints N")
		writers    = flag.Int("writers", 3, "writer goroutines per checkpoint")
		crashAt    = flag.Int("crash-at", 0, "exit abruptly after this iteration (0 = run to completion)")
		seed       = flag.Int64("seed", 42, "model/data seed")
		hidden     = flag.Int("hidden", 64, "hidden layer width")

		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON of every checkpoint phase on exit (view at ui.perfetto.dev)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus) and /debug/vars on this address while training")
		budget      = flag.Float64("q", 0, "slowdown budget for the goodput ledger (e.g. 1.05; 0 = ledger attached without SLO tracking)")
	)
	flag.Parse()

	// With -trace-out or -metrics-addr a flight recorder observes every
	// checkpoint phase, and a goodput ledger rides in front of it for
	// stall attribution and SLO tracking (-q sets the budget). Without
	// either flag the observer stays nil and checkpointing runs with zero
	// observability overhead.
	var rec *pccheck.Recorder
	var led *pccheck.Ledger
	var obsv pccheck.Observer
	if *traceOut != "" || *metricsAddr != "" || *budget > 0 {
		rec = pccheck.NewFlightRecorder(0)
		led = pccheck.NewLedger(pccheck.LedgerConfig{SlowdownBudget: *budget}, rec)
		obsv = led
	}
	if *metricsAddr != "" {
		srv, bound, err := pccheck.ServeMetrics(*metricsAddr, rec, led)
		if err != nil {
			fail("metrics endpoint: %v", err)
		}
		defer srv.Close()
		fmt.Printf("metrics at http://%s/metrics (watch live with pccheck-top -addr %s)\n", bound, bound)
	}

	trainer, err := buildTrainer(*seed, *hidden)
	if err != nil {
		fail("%v", err)
	}

	// Attach or create the checkpoint file; resume if it has state.
	var ck *pccheck.Checkpointer
	recoveryStart := time.Now()
	if state, counter, err := pccheck.RecoverFile(*ckptPath); err == nil {
		if err := trainer.Restore(state); err != nil {
			fail("restoring checkpoint %d: %v", counter, err)
		}
		led.AddRecovery(time.Since(recoveryStart))
		fmt.Printf("resumed from checkpoint %d at iteration %d\n", counter, trainer.Iteration())
		ck, err = pccheck.Open(*ckptPath, pccheck.Config{Writers: *writers, Observer: obsv})
		if err != nil {
			fail("%v", err)
		}
	} else if pccheck.IsNoCheckpoint(err) || os.IsNotExist(underlying(err)) {
		ck, err = pccheck.Create(*ckptPath, pccheck.Config{
			MaxBytes:   int64(trainer.StateSize()),
			Concurrent: *concurrent,
			Writers:    *writers,
			Verify:     true,
			Observer:   obsv,
		})
		if err != nil {
			fail("%v", err)
		}
		fmt.Println("starting fresh run")
	} else {
		fail("opening %s: %v", *ckptPath, err)
	}
	defer ck.Close()

	loop, err := pccheck.NewLoop(ck, *interval, func() []byte {
		buf := make([]byte, trainer.StateSize())
		if _, err := trainer.Snapshot(buf); err != nil {
			fail("snapshot: %v", err)
		}
		return buf
	})
	if err != nil {
		fail("%v", err)
	}

	ctx := context.Background()
	start := time.Now()
	var lastLoss float64
	for trainer.Iteration() < *steps {
		it := trainer.Iteration()
		loss, err := trainer.Step()
		if err != nil {
			fail("training step %d: %v", it, err)
		}
		lastLoss = loss
		loop.Tick(ctx, it)
		if (it+1)%100 == 0 {
			fmt.Printf("iteration %4d  loss %.4f\n", it+1, loss)
		}
		if *crashAt > 0 && it+1 >= *crashAt {
			// Die without flushing anything — like a spot preemption with
			// no grace period. In-flight checkpoints are simply cut off;
			// the on-disk pointer still references the last durable one.
			fmt.Printf("simulating crash at iteration %d\n", it+1)
			os.Exit(137)
		}
	}
	if err := loop.Drain(); err != nil {
		fail("draining checkpoints: %v", err)
	}
	st := ck.Stats()
	fmt.Printf("done: %d iterations in %v, final loss %.4f\n", *steps, time.Since(start).Round(time.Millisecond), lastLoss)
	fmt.Printf("checkpoints: %d published, %d superseded, %s written, %d slot waits\n",
		st.Published, st.Obsolete, cliutil.FormatBytes(st.BytesWritten), st.SlotWaits)
	if rec != nil {
		save := rec.Snapshot().Phase(pccheck.PhaseSave)
		fmt.Printf("save latency: p50=%v p95=%v p99=%v over %d saves\n", save.P50, save.P95, save.P99, save.Count)
	}
	if led != nil {
		fmt.Println()
		pccheck.FormatGoodputReport(os.Stdout, led.Report())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail("trace-out: %v", err)
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			fail("trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("trace-out: %v", err)
		}
		fmt.Printf("wrote checkpoint trace to %s (open at https://ui.perfetto.dev)\n", *traceOut)
	}
}

func buildTrainer(seed int64, hidden int) (*train.Trainer, error) {
	const features, classes, batch = 32, 8, 16
	m, err := train.NewMLP(seed, []int{features, hidden, classes})
	if err != nil {
		return nil, err
	}
	data, err := train.NewSynthetic(seed+1, features, classes, batch)
	if err != nil {
		return nil, err
	}
	return train.NewTrainer(m, train.NewAdam(m.Params(), 0.003), data)
}

func underlying(err error) error { return err }

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pccheck-train: "+format+"\n", args...)
	os.Exit(1)
}
