// pccheck-top is a live terminal dashboard for a running pccheck
// process: it polls the /metrics endpoint a Recorder+Ledger serve (see
// ServeMetrics / -metrics-addr on the commands) and renders goodput,
// slowdown-budget headroom, checkpoint staleness, per-phase stall bars,
// save latency percentiles, the scrubber's detect/repair counters (with a
// tier-failover alert), the per-kind policy-decision regret panel (when a
// decision recorder is attached) and the per-rank straggler table.
//
//	pccheck-top -addr 127.0.0.1:9090
//	pccheck-top -addr 127.0.0.1:9090 -once   # one frame, no screen control
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"pccheck/internal/promtext"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "host:port of the pccheck metrics endpoint")
	interval := flag.Duration("interval", 2*time.Second, "refresh period")
	frames := flag.Int("frames", 0, "stop after this many frames (0 = run until interrupted)")
	once := flag.Bool("once", false, "print a single frame without screen control and exit")
	flag.Parse()

	url := "http://" + *addr + "/metrics"
	for n := 0; ; n++ {
		fams, err := fetch(url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccheck-top:", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // home + clear
		}
		renderFrame(os.Stdout, *addr, fams)
		if *once || (*frames > 0 && n+1 >= *frames) {
			return
		}
		time.Sleep(*interval)
	}
}

// fetch scrapes and parses one exposition, keyed by family name.
func fetch(url string) (map[string]promtext.Family, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	list, err := promtext.Parse(resp.Body)
	if err != nil {
		return nil, err
	}
	fams := make(map[string]promtext.Family, len(list))
	for _, f := range list {
		fams[f.Name] = f
	}
	return fams, nil
}

// value returns the plain (unlabelled) sample of a family, 0 when absent.
func value(fams map[string]promtext.Family, name string) float64 {
	f, ok := fams[name]
	if !ok {
		return 0
	}
	v, _ := f.Value()
	return v
}

// quantile reads one quantile sample of a summary family.
func quantile(fams map[string]promtext.Family, name, q string) float64 {
	f, ok := fams[name]
	if !ok {
		return 0
	}
	if s := f.Sample(name, "quantile", q); s != nil {
		return s.Value
	}
	return 0
}

// bar renders frac ∈ [0,1] as a width-cell block bar.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	full := int(frac*float64(width) + 0.5)
	out := make([]rune, width)
	for i := range out {
		if i < full {
			out[i] = '█'
		} else {
			out[i] = '░'
		}
	}
	return string(out)
}

// renderFrame draws one dashboard frame from a parsed exposition. It is
// pure output — tested against a canned scrape.
func renderFrame(w io.Writer, addr string, fams map[string]promtext.Family) {
	goodput := value(fams, "pccheck_goodput_ratio")
	slow := value(fams, "pccheck_observed_slowdown")
	budget := value(fams, "pccheck_slowdown_budget")
	breaches := value(fams, "pccheck_slowdown_budget_breaches_total")
	staleness := value(fams, "pccheck_checkpoint_staleness_seconds")
	iters := value(fams, "pccheck_iterations_total")

	fmt.Fprintf(w, "pccheck-top  %s\n\n", addr)
	fmt.Fprintf(w, "goodput    %6.4f  %s\n", goodput, bar(goodput, 30))
	if budget > 1 {
		headroom := budget - slow
		status := "OK"
		if headroom < 0 {
			status = "BREACH"
		}
		fmt.Fprintf(w, "slowdown   %6.4f  budget q=%.4f  headroom %+.4f  [%s]  breaches %d\n",
			slow, budget, headroom, status, int64(breaches))
	} else if slow > 0 {
		fmt.Fprintf(w, "slowdown   %6.4f  (no budget configured)\n", slow)
	}
	fmt.Fprintf(w, "staleness  %6.2fs since last durable checkpoint   iterations %d\n",
		staleness, int64(iters))

	fmt.Fprintf(w, "\nsaves      total %d  published %d  obsolete %d  failed %d\n",
		int64(value(fams, "pccheck_saves_total")),
		int64(value(fams, "pccheck_published_total")),
		int64(value(fams, "pccheck_obsolete_total")),
		int64(value(fams, "pccheck_failed_saves_total")))
	fmt.Fprintf(w, "save lat   p50 %s  p95 %s  p99 %s\n",
		fmtSec(quantile(fams, "pccheck_save_seconds", "0.5")),
		fmtSec(quantile(fams, "pccheck_save_seconds", "0.95")),
		fmtSec(quantile(fams, "pccheck_save_seconds", "0.99")))
	dropped := value(fams, "pccheck_flight_dropped_events_total")
	if _, ok := fams["pccheck_flight_dropped_events_total"]; !ok {
		// Pre-forensics expositions only had the old name.
		dropped = value(fams, "pccheck_trace_dropped_events_total")
	}
	fmt.Fprintf(w, "flight     ring occupancy %d  dropped %d\n",
		int64(value(fams, "pccheck_flight_ring_occupancy")),
		int64(dropped))

	if _, ok := fams["pccheck_blackbox_flushes_total"]; ok {
		fmt.Fprintf(w, "black box  flushes %d  errors %d  last seq %d  %s persisted\n",
			int64(value(fams, "pccheck_blackbox_flushes_total")),
			int64(value(fams, "pccheck_blackbox_flush_errors_total")),
			int64(value(fams, "pccheck_blackbox_last_seq")),
			fmtBytes(value(fams, "pccheck_blackbox_flushed_bytes_total")))
	}

	if _, ok := fams["pccheck_scrub_sweeps_total"]; ok {
		line := fmt.Sprintf("scrub      sweeps %d  verified %s  corruptions %d  repairs %d  quarantines %d",
			int64(value(fams, "pccheck_scrub_sweeps_total")),
			fmtBytes(value(fams, "pccheck_scrub_bytes_total")),
			int64(value(fams, "pccheck_scrub_corruptions_total")),
			int64(value(fams, "pccheck_repairs_total")),
			int64(value(fams, "pccheck_scrub_quarantines_total")))
		if fo := value(fams, "pccheck_tier_failover_total"); fo > 0 {
			line += fmt.Sprintf("  TIER FAILOVERS %d", int64(fo))
		}
		fmt.Fprintln(w, line)
	}

	if f, ok := fams["pccheck_stall_seconds_total"]; ok && len(f.Samples) > 0 {
		maxV := 0.0
		for _, s := range f.Samples {
			if s.Value > maxV {
				maxV = s.Value
			}
		}
		fmt.Fprintf(w, "\nstalls (cumulative)\n")
		for _, s := range f.Samples {
			frac := 0.0
			if maxV > 0 {
				frac = s.Value / maxV
			}
			fmt.Fprintf(w, "  %-10s %10.3fs  %s\n", s.Label("phase"), s.Value, bar(frac, 24))
		}
	}

	if f, ok := fams["pccheck_decision_total"]; ok && len(f.Samples) > 0 {
		scored := fams["pccheck_decision_scored_total"]
		regret := fams["pccheck_decision_regret_seconds_total"]
		total := 0.0
		for _, s := range f.Samples {
			total += s.Value
		}
		if total > 0 {
			fmt.Fprintf(w, "\ndecisions  regret mean %s  max %s  pending %d  dropped %d\n",
				fmtSec(value(fams, "pccheck_regret_seconds_mean")),
				fmtSec(value(fams, "pccheck_regret_seconds_max")),
				int64(value(fams, "pccheck_decision_pending")),
				int64(value(fams, "pccheck_decision_dropped_total")))
			for _, s := range f.Samples {
				if s.Value == 0 {
					continue
				}
				kind := s.Label("kind")
				var sc, rg float64
				if ss := scored.Sample("pccheck_decision_scored_total", "kind", kind); ss != nil {
					sc = ss.Value
				}
				if rs := regret.Sample("pccheck_decision_regret_seconds_total", "kind", kind); rs != nil {
					rg = rs.Value
				}
				fmt.Fprintf(w, "  %-16s %5d recorded  %5d scored  regret %10.4fs\n",
					kind, int64(s.Value), int64(sc), rg)
			}
		}
	}

	if f, ok := fams["pccheck_tier_durable_checkpoint"]; ok && len(f.Samples) > 0 {
		stale := fams["pccheck_tier_staleness_seconds"]
		lag := fams["pccheck_tier_drain_lag_checkpoints"]
		errs := fams["pccheck_tier_drain_errors_total"]
		resyncs := fams["pccheck_tier_resyncs_total"]
		drained := fams["pccheck_tier_drained_bytes_total"]
		tierSample := func(f promtext.Family, name, tier string) float64 {
			if s := f.Sample(name, "tier", tier); s != nil {
				return s.Value
			}
			return 0
		}
		rows := append([]promtext.Sample(nil), f.Samples...)
		sort.Slice(rows, func(i, j int) bool { return rows[i].Label("tier") < rows[j].Label("tier") })
		fmt.Fprintf(w, "\ntiers (per-level durability)\n")
		for _, s := range rows {
			tier := s.Label("tier")
			health := ""
			if e := tierSample(errs, "pccheck_tier_drain_errors_total", tier); e > 0 {
				health = fmt.Sprintf("  errors %d", int64(e))
			}
			if r := tierSample(resyncs, "pccheck_tier_resyncs_total", tier); r > 0 {
				health += fmt.Sprintf("  resyncs %d", int64(r))
			}
			fmt.Fprintf(w, "  tier %-3s  durable ckpt %-8d lag %-4d stale %7.2fs  drained %s%s\n",
				tier, int64(s.Value),
				int64(tierSample(lag, "pccheck_tier_drain_lag_checkpoints", tier)),
				tierSample(stale, "pccheck_tier_staleness_seconds", tier),
				fmtBytes(tierSample(drained, "pccheck_tier_drained_bytes_total", tier)),
				health)
		}
	}

	if f, ok := fams["pccheck_rank_gated_rounds_total"]; ok && len(f.Samples) > 0 {
		lag := fams["pccheck_rank_agree_lag_seconds"]
		type row struct {
			rank  int
			gated float64
			lagS  float64
		}
		rows := make([]row, 0, len(f.Samples))
		for _, s := range f.Samples {
			r, _ := strconv.Atoi(s.Label("rank"))
			var lg float64
			if ls := lag.Sample("pccheck_rank_agree_lag_seconds", "rank", s.Label("rank")); ls != nil {
				lg = ls.Value
			}
			rows = append(rows, row{rank: r, gated: s.Value, lagS: lg})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].gated > rows[j].gated })
		fmt.Fprintf(w, "\nstragglers (who gates global consistency)\n")
		for _, r := range rows {
			fmt.Fprintf(w, "  rank %-3d   gated %4d round(s)   held rounds open %.3fs\n", r.rank, int64(r.gated), r.lagS)
		}
	}
}

func fmtSec(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1f KiB", v/(1<<10))
	default:
		return fmt.Sprintf("%d B", int64(v))
	}
}
