// Command pccheck-inspect dumps a checkpoint file's on-disk structures —
// superblock geometry, both pointer records, each slot's header (optionally
// verifying payload checksums), the keyframe→delta chain on delta-formatted
// devices, and any pending recovery cursor — without modifying anything.
// The ops tool for "what exactly is on this device?".
//
//	pccheck-inspect /mnt/ssd/ckpt.pcc
//	pccheck-inspect -verify /mnt/ssd/ckpt.pcc
//
// Exit status: 0 healthy, 1 read/decode failure, 2 usage, 3 the device
// renders but is unhealthy (a pointer record recovery rejects, or a
// published/chain payload fails its checksum) — so scripts and monitors can
// alert on corruption without parsing the output.
package main

import (
	"flag"
	"fmt"
	"os"

	"pccheck/internal/cliutil"
	"pccheck/internal/core"
	"pccheck/internal/storage"
)

func main() {
	verify := flag.Bool("verify", false, "read payloads and validate checksums (slow for large slots)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pccheck-inspect [-verify] <checkpoint-file>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	dev, err := storage.ReopenSSD(path)
	if err != nil {
		fail("%v", err)
	}
	defer dev.Close()
	rep, err := core.Inspect(dev, *verify)
	if err != nil {
		fail("%v", err)
	}

	render(path, rep)
	if !rep.Healthy() {
		fmt.Fprintln(os.Stderr, "pccheck-inspect: device is UNHEALTHY (see above)")
		os.Exit(3)
	}
}

func render(path string, rep core.Report) {
	mode := ""
	if rep.DeltaKeyframe > 0 {
		mode = fmt.Sprintf(", delta mode K=%d", rep.DeltaKeyframe)
	}
	fmt.Printf("%s: %d slots × %s (N = %d concurrent checkpoints, format epoch %d%s)\n",
		path, rep.Slots, cliutil.FormatBytes(rep.SlotBytes), rep.Slots-1-rep.DeltaKeyframe, rep.Epoch, mode)

	for i, r := range rep.Records {
		name := string(rune('A' + i))
		if !r.Valid {
			fmt.Printf("  record %s: empty/invalid\n", name)
			continue
		}
		fmt.Printf("  record %s: checkpoint %d → slot %d (%s)\n", name, r.Counter, r.Slot, cliutil.FormatBytes(r.Size))
	}
	if rep.Recoverable {
		logical := ""
		if rep.LatestFullSize != rep.Latest.Size {
			logical = fmt.Sprintf(", %s reconstructed", cliutil.FormatBytes(rep.LatestFullSize))
		}
		fmt.Printf("  recoverable: checkpoint %d in slot %d (%s%s)\n",
			rep.Latest.Counter, rep.Latest.Slot, cliutil.FormatBytes(rep.Latest.Size), logical)
	} else {
		fmt.Println("  recoverable: none")
		if rep.Records[0].Valid || rep.Records[1].Valid {
			fmt.Println("  WARNING: a pointer record claims a checkpoint recovery cannot serve")
		}
	}
	if len(rep.Chain) > 0 {
		fmt.Printf("  chain: %d link(s), keyframe %d", len(rep.Chain), rep.Chain[0].Counter)
		for _, l := range rep.Chain[1:] {
			fmt.Printf(" → +%d", l.Counter)
		}
		fmt.Println()
	}
	for _, s := range rep.SlotInfos {
		status := "empty/invalid header"
		if s.HeaderValid {
			status = fmt.Sprintf("checkpoint %d, %s", s.Counter, cliutil.FormatBytes(s.Size))
			if s.Kind == 1 {
				status += fmt.Sprintf(", delta base=%d (%s full)", s.BaseCounter, cliutil.FormatBytes(s.FullSize))
			} else if rep.DeltaKeyframe > 0 {
				status += ", keyframe"
			}
			if s.EpochStale {
				status += fmt.Sprintf(", STALE (format epoch %d)", s.Epoch)
			}
			if s.HasChecksum {
				switch {
				case s.PayloadOK == nil:
					status += ", checksummed"
				case *s.PayloadOK:
					status += ", payload OK"
				default:
					status += ", PAYLOAD CORRUPT"
				}
			}
		}
		marker := " "
		if s.InChain {
			marker = "+"
		}
		if s.Published {
			marker = "*"
		}
		fmt.Printf("  %s slot %d: %s\n", marker, s.Index, status)
	}
	if rep.Cursor != nil {
		fmt.Printf("  pending restore: checkpoint %d at byte %d\n", rep.Cursor.Counter, rep.Cursor.Position)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pccheck-inspect: "+format+"\n", args...)
	os.Exit(1)
}
