// Command pccheck-inspect dumps a checkpoint file's on-disk structures —
// superblock geometry, both pointer records, each slot's header (optionally
// verifying payload checksums), the keyframe→delta chain on delta-formatted
// devices, and any pending recovery cursor — without modifying anything.
// The ops tool for "what exactly is on this device?".
//
//	pccheck-inspect /mnt/ssd/ckpt.pcc
//	pccheck-inspect -verify /mnt/ssd/ckpt.pcc
//
// With multiple paths the arguments are read as durability tiers, fastest
// first (the layout CreateTieredFiles writes): each tier renders its own
// section, unreachable or corrupt tiers are reported and skipped, and a
// summary names the newest checkpoint reachable across tiers — what
// RecoverAny would restore.
//
//	pccheck-inspect /mnt/ssd/tier0.pcc /mnt/hdd/tier1.pcc
//
// With -post-mortem the tool reads the black-box telemetry region instead
// of the slot structures: the last flushed flight-recorder events, the
// final goodput report, and the last policy decisions — what the process
// was doing when it died. -events bounds the printed event tail. With
// multiple paths the newest tier's black box wins (a wire replica can
// answer forensics after tier 0 vanished). Files created without
// Config.BlackBox report "no black box region" and exit 0.
//
//	pccheck-inspect -post-mortem /mnt/ssd/ckpt.pcc
//	pccheck-inspect -post-mortem -events 32 tier0.pcc tier1.pcc
//
// With -scrub the tool runs one offline integrity sweep per path instead of
// rendering: every committed structure (superblock, both pointer records,
// the published slot or keyframe→delta chain, the black-box header) is
// re-read and checksum-verified, repairable damage is rewritten in place,
// and a corrupt published payload with no intact sibling copy is
// quarantined so no future recovery can serve it. Cross-tier re-replication
// needs the live drainer, so each tier scrubs independently; RecoverAny
// afterwards still prefers the newest intact tier.
//
//	pccheck-inspect -scrub /mnt/ssd/ckpt.pcc
//	pccheck-inspect -scrub tier0.pcc tier1.pcc
//
// Exit status: 0 healthy, 1 read/decode failure, 2 usage, 3 the device
// renders but is unhealthy (a pointer record recovery rejects, or a
// published/chain payload fails its checksum). With multiple tiers, 3 means
// *no* tier holds a recoverable checkpoint — a stale-but-intact replica
// behind a dead primary is degraded durability, not an outage. With -scrub,
// 0 means clean or fully healed and 3 means damage survived the sweep.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"pccheck/internal/cliutil"
	"pccheck/internal/core"
	"pccheck/internal/obs"
	"pccheck/internal/obs/blackbox"
	"pccheck/internal/obs/decision"
	"pccheck/internal/storage"
)

func main() {
	verify := flag.Bool("verify", false, "read payloads and validate checksums (slow for large slots)")
	postMortem := flag.Bool("post-mortem", false, "read the black-box telemetry region instead of the slot structures")
	eventTail := flag.Int("events", 16, "post-mortem: how many trailing events to print")
	scrub := flag.Bool("scrub", false, "run an offline integrity sweep: verify every committed structure, repair or quarantine damage")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pccheck-inspect [-verify] [-scrub] [-post-mortem [-events N]] <checkpoint-file> [tier-1-file ...]")
		os.Exit(2)
	}
	if *postMortem {
		inspectPostMortem(flag.Args(), *eventTail)
		return
	}
	if *scrub {
		scrubPaths(flag.Args())
		return
	}
	if flag.NArg() == 1 {
		inspectSingle(flag.Arg(0), *verify)
		return
	}
	inspectTiers(flag.Args(), *verify)
}

// inspectPostMortem decodes the black box of the given file (or across
// tier files — newest telemetry wins, so a replica answers when tier 0
// is gone) and renders the forensic summary.
func inspectPostMortem(paths []string, eventTail int) {
	var devs []storage.Device
	for _, path := range paths {
		dev, err := storage.ReopenSSD(path)
		if err != nil {
			if len(paths) == 1 {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "pccheck-inspect: %s: UNREACHABLE (%v)\n", path, err)
			continue
		}
		defer dev.Close()
		devs = append(devs, dev)
	}
	if len(devs) == 0 {
		fail("no tier could be opened")
	}
	pm, err := core.PostMortemTiered(devs...)
	if errors.Is(err, blackbox.ErrNoRegion) {
		// Pre-forensics image or BlackBox disabled: a clean answer, not an
		// error — there is simply nothing recorded to read back.
		fmt.Println("no black box region (file created without Config.BlackBox, or predates forensics)")
		return
	}
	if err != nil {
		fail("%v", err)
	}
	renderPostMortem(pm, eventTail)
}

func renderPostMortem(pm *blackbox.PostMortem, eventTail int) {
	fmt.Printf("black box: %d frame(s) survived, last seq %d, format epoch %d, %d × %s slots\n",
		len(pm.Frames), pm.LastSeq(), pm.Epoch, pm.Layout.Slots, cliutil.FormatBytes(pm.Layout.FrameBytes))
	if newest := pm.Newest(); newest != nil && newest.TS > 0 {
		fmt.Printf("last flush: %s\n", time.Unix(0, newest.TS).Format(time.RFC3339Nano))
	}

	events := pm.Events()
	if eventTail > 0 && len(events) > eventTail {
		events = events[len(events)-eventTail:]
	}
	fmt.Printf("\nlast %d event(s):\n", len(events))
	for _, ev := range events {
		line := fmt.Sprintf("  %s  %-11s", time.Unix(0, ev.TS).Format("15:04:05.000000"), ev.Phase)
		if ev.Dur > 0 {
			line += fmt.Sprintf("  %-12v", time.Duration(ev.Dur))
		} else {
			line += fmt.Sprintf("  %-12s", "-")
		}
		if ev.Counter != 0 {
			line += fmt.Sprintf("  ckpt %d", ev.Counter)
		}
		if ev.Slot >= 0 {
			line += fmt.Sprintf("  slot %d", ev.Slot)
		}
		if ev.Writer >= 0 {
			line += fmt.Sprintf("  writer %d", ev.Writer)
		}
		if ev.Bytes > 0 {
			line += "  " + cliutil.FormatBytes(ev.Bytes)
		}
		fmt.Println(line)
	}

	if rep, ok := pm.LastReport(); ok {
		fmt.Println("\nfinal goodput report:")
		obs.FormatReport(os.Stdout, rep)
	} else {
		fmt.Println("\nno goodput report captured (no ledger in the observer chain)")
	}

	if ds := pm.LastDecisions(); len(ds) > 0 {
		fmt.Println("\nlast policy decisions:")
		decision.FormatTable(os.Stdout, ds, 0)
	}
}

// scrubPaths opens each path, runs one synchronous scrub sweep through the
// live engine's repair machinery, and reports every finding. A slot the
// sweep had to quarantine still exits 0 — the damage is contained and
// recovery falls back to an older intact checkpoint — whereas damage that
// could be neither repaired nor quarantined exits 3.
func scrubPaths(paths []string) {
	var unrepaired uint64
	opened := 0
	for i, path := range paths {
		label := path
		if len(paths) > 1 {
			label = fmt.Sprintf("tier %d (%s)", i, path)
		}
		dev, err := storage.ReopenSSD(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pccheck-inspect: %s: UNREACHABLE (%v)\n", label, err)
			continue
		}
		eng, err := core.Open(dev, core.Config{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pccheck-inspect: %s: UNREADABLE (%v)\n", label, err)
			dev.Close()
			unrepaired++
			continue
		}
		opened++
		found, healed, serr := eng.ScrubNow()
		st := eng.ScrubStatus()
		eng.Close()
		dev.Close()
		if serr != nil {
			fmt.Fprintf(os.Stderr, "pccheck-inspect: %s: scrub failed: %v\n", label, serr)
			unrepaired++
			continue
		}
		fmt.Printf("%s: scrubbed %s: %d corruption(s), %d healed (%d repaired, %d quarantined)\n",
			label, cliutil.FormatBytes(int64(st.BytesVerified)), found, healed, st.Repairs, st.Quarantines)
		for _, f := range st.Findings {
			fmt.Printf("  %s\n", f)
		}
		unrepaired += st.Unrepaired
	}
	if opened == 0 {
		fail("no path could be opened")
	}
	if unrepaired > 0 {
		fmt.Fprintf(os.Stderr, "pccheck-inspect: %d finding(s) could not be repaired or quarantined\n", unrepaired)
		os.Exit(3)
	}
}

func inspectSingle(path string, verify bool) {
	dev, err := storage.ReopenSSD(path)
	if err != nil {
		fail("%v", err)
	}
	defer dev.Close()
	rep, err := core.Inspect(dev, verify)
	if err != nil {
		fail("%v", err)
	}

	render(path, rep)
	if !rep.Healthy() {
		fmt.Fprintln(os.Stderr, "pccheck-inspect: device is UNHEALTHY (see above)")
		os.Exit(3)
	}
}

// inspectTiers renders each path as one durability tier and summarizes the
// newest checkpoint reachable across them. A tier that cannot be opened or
// decoded degrades the report, not the exit status — as long as one tier
// recovers, the checkpoint survives.
func inspectTiers(paths []string, verify bool) {
	type tierResult struct {
		recoverable bool
		counter     uint64
		healthy     bool
	}
	results := make([]tierResult, len(paths))
	for i, path := range paths {
		fmt.Printf("tier %d: ", i)
		dev, err := storage.ReopenSSD(path)
		if err != nil {
			fmt.Printf("%s: UNREACHABLE (%v)\n", path, err)
			continue
		}
		rep, err := core.Inspect(dev, verify)
		if err != nil {
			fmt.Printf("%s: UNREADABLE (%v)\n", path, err)
			dev.Close()
			continue
		}
		render(path, rep)
		dev.Close()
		results[i] = tierResult{
			recoverable: rep.Recoverable,
			counter:     rep.Latest.Counter,
			healthy:     rep.Healthy(),
		}
	}

	best := -1
	for i, r := range results {
		if r.recoverable && (best < 0 || r.counter > results[best].counter) {
			best = i
		}
	}
	if best < 0 {
		fmt.Println("newest reachable: none — no tier holds a recoverable checkpoint")
		os.Exit(3)
	}
	fmt.Printf("newest reachable: checkpoint %d at tier %d (%s)", results[best].counter, best, paths[best])
	for i, r := range results {
		if i != best && r.recoverable && r.counter < results[best].counter {
			fmt.Printf("; tier %d lags by %d checkpoint(s)", i, results[best].counter-r.counter)
		}
	}
	fmt.Println()
	for i, r := range results {
		if r.recoverable && !r.healthy {
			fmt.Fprintf(os.Stderr, "pccheck-inspect: tier %d (%s) is UNHEALTHY (see above)\n", i, paths[i])
		}
	}
}

func render(path string, rep core.Report) {
	mode := ""
	if rep.DeltaKeyframe > 0 {
		mode = fmt.Sprintf(", delta mode K=%d", rep.DeltaKeyframe)
	}
	fmt.Printf("%s: %d slots × %s (N = %d concurrent checkpoints, format epoch %d%s)\n",
		path, rep.Slots, cliutil.FormatBytes(rep.SlotBytes), rep.Slots-1-rep.DeltaKeyframe, rep.Epoch, mode)

	for i, r := range rep.Records {
		name := string(rune('A' + i))
		if !r.Valid {
			fmt.Printf("  record %s: empty/invalid\n", name)
			continue
		}
		fmt.Printf("  record %s: checkpoint %d → slot %d (%s)\n", name, r.Counter, r.Slot, cliutil.FormatBytes(r.Size))
	}
	if rep.Recoverable {
		logical := ""
		if rep.LatestFullSize != rep.Latest.Size {
			logical = fmt.Sprintf(", %s reconstructed", cliutil.FormatBytes(rep.LatestFullSize))
		}
		fmt.Printf("  recoverable: checkpoint %d in slot %d (%s%s)\n",
			rep.Latest.Counter, rep.Latest.Slot, cliutil.FormatBytes(rep.Latest.Size), logical)
	} else {
		fmt.Println("  recoverable: none")
		if rep.Records[0].Valid || rep.Records[1].Valid {
			fmt.Println("  WARNING: a pointer record claims a checkpoint recovery cannot serve")
		}
	}
	if len(rep.Chain) > 0 {
		fmt.Printf("  chain: %d link(s), keyframe %d", len(rep.Chain), rep.Chain[0].Counter)
		for _, l := range rep.Chain[1:] {
			fmt.Printf(" → +%d", l.Counter)
		}
		fmt.Println()
	}
	for _, s := range rep.SlotInfos {
		status := "empty/invalid header"
		if s.Quarantined {
			status = fmt.Sprintf("QUARANTINED (checkpoint %d tombstoned by the scrubber; recovery skips it)", s.Counter)
		} else if s.HeaderValid {
			status = fmt.Sprintf("checkpoint %d, %s", s.Counter, cliutil.FormatBytes(s.Size))
			if s.Kind == 1 {
				status += fmt.Sprintf(", delta base=%d (%s full)", s.BaseCounter, cliutil.FormatBytes(s.FullSize))
			} else if rep.DeltaKeyframe > 0 {
				status += ", keyframe"
			}
			if s.EpochStale {
				status += fmt.Sprintf(", STALE (format epoch %d)", s.Epoch)
			}
			if s.HasChecksum {
				switch {
				case s.PayloadOK == nil:
					status += ", checksummed"
				case *s.PayloadOK:
					status += ", payload OK"
				default:
					status += ", PAYLOAD CORRUPT"
				}
			}
		}
		marker := " "
		if s.InChain {
			marker = "+"
		}
		if s.Published {
			marker = "*"
		}
		fmt.Printf("  %s slot %d: %s\n", marker, s.Index, status)
	}
	if rep.Cursor != nil {
		fmt.Printf("  pending restore: checkpoint %d at byte %d\n", rep.Cursor.Counter, rep.Cursor.Position)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pccheck-inspect: "+format+"\n", args...)
	os.Exit(1)
}
