package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunTiersTeardown drives the full -tiers -tier-teardown scenario at a
// small scale: every sweep invariant and the chaos phase's cross-tier
// durability floor must hold, and the JSON summary must round-trip.
func TestRunTiersTeardown(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "tiers.json")
	var out bytes.Buffer
	err := runTiers(&out, tiersConfig{
		saves:    12,
		payload:  16 << 10,
		seed:     1,
		teardown: true,
		jsonOut:  jsonPath,
		bwsMiB:   []int64{8, 128},
	})
	if err != nil {
		t.Fatalf("runTiers: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verdict  OK") {
		t.Fatalf("no OK verdict in report:\n%s", out.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read json: %v", err)
	}
	var sum tiersSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("decode json: %v", err)
	}
	if len(sum.Sweep) != 2 {
		t.Fatalf("json has %d sweep points, want 2", len(sum.Sweep))
	}
	for _, pt := range sum.Sweep {
		if pt.DrainedBytes == 0 || pt.Drains == 0 {
			t.Fatalf("sweep point %+v shows no drain progress", pt)
		}
	}
	td := sum.Teardown
	if td == nil {
		t.Fatal("json summary has no teardown section")
	}
	if td.FloorAtTeardown == 0 || td.RecoveredBehind < td.FloorAtTeardown {
		t.Fatalf("teardown floor violated: %+v", td)
	}
	if td.FinalDurable != 12 {
		t.Fatalf("healed replica converged to %d, want 12", td.FinalDurable)
	}
}
