package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"pccheck/internal/core"
	"pccheck/internal/obs"
	"pccheck/internal/storage"
)

// faultsConfig parameterizes the -faults mode.
type faultsConfig struct {
	transients  int    // k: scheduled consecutive transient faults per burst
	saves       int    // soak length in checkpoints
	seed        int64  // rng seed for the soak phase
	traceOut    string // write a Chrome trace of the scenario here ("" = off)
	metricsAddr string // serve /metrics here while the scenario runs ("" = off)
}

// runFaults exercises the fault-tolerant persist path end to end against a
// fault-injecting device and prints a report: (1) a Save must survive k
// scheduled transient faults and recover byte-identical, (2) a permanent
// fault must fail the Save fast, leak no slot and leave the previous
// checkpoint recoverable, (3) a soak of concurrent saves under periodic
// transient bursts must end with slot accounting balanced. A non-nil error
// means an invariant was violated.
func runFaults(w io.Writer, cfg faultsConfig) error {
	if cfg.transients < 0 {
		cfg.transients = 0
	}
	if cfg.saves < 0 {
		cfg.saves = 0
	}
	const slotBytes = 64 << 10
	retry := core.RetryPolicy{
		MaxAttempts: cfg.transients + 2, // survive k faults with headroom
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  5 * time.Millisecond,
	}
	// Observability: with -trace-out or -metrics-addr a flight recorder
	// rides along, capturing every phase of every save plus the injected
	// faults themselves.
	var rec *obs.Recorder
	if cfg.traceOut != "" || cfg.metricsAddr != "" {
		rec = obs.NewRecorder(obs.DefaultCapacity)
	}
	ram := storage.NewRAM(core.DeviceBytes(3, slotBytes))
	dev := storage.NewFaultDevice(ram)
	if rec != nil {
		dev.SetObserver(rec)
	}
	eng, err := core.New(dev, core.Config{
		Concurrent: 3, SlotBytes: slotBytes, Writers: 2, ChunkBytes: 8 << 10,
		VerifyPayload: true, Retry: retry, Observer: observerOrNil(rec),
	})
	if err != nil {
		return err
	}
	if cfg.metricsAddr != "" {
		srv, bound, err := obs.Serve(cfg.metricsAddr, rec)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(w, "metrics  http://%s/metrics (and /debug/vars)\n", bound)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(cfg.seed))

	fmt.Fprintf(w, "fault-injection scenario (k=%d transient faults, retry budget %d attempts)\n\n",
		cfg.transients, retry.MaxAttempts)

	// Phase 1: a Save rides out k consecutive transient write faults.
	payload := make([]byte, 48<<10)
	rng.Read(payload)
	if cfg.transients > 0 {
		dev.FailTransient(storage.OpWrite, 2, int64(cfg.transients))
	}
	before := eng.Stats()
	if _, err := eng.Checkpoint(ctx, core.BytesSource(payload)); err != nil {
		return fmt.Errorf("phase 1: save died on transient faults: %w", err)
	}
	after := eng.Stats()
	got, _, err := core.Recover(ram)
	if err != nil {
		return fmt.Errorf("phase 1: recover: %w", err)
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("phase 1: recovered payload differs from saved payload")
	}
	fmt.Fprintf(w, "phase 1  transient burst   absorbed %d faults with %d retries; checkpoint byte-identical\n",
		after.TransientFaults-before.TransientFaults, after.IORetries-before.IORetries)

	// Phase 2: a permanent fault fails the Save fast, leaks nothing, and
	// the previously published checkpoint stays recoverable.
	dev.FailAfter(storage.OpWrite, 1, nil) // ErrInjected classifies permanent
	before = eng.Stats()
	if _, err := eng.Checkpoint(ctx, core.BytesSource(make([]byte, 32<<10))); err == nil {
		return fmt.Errorf("phase 2: permanent fault did not fail the save")
	}
	after = eng.Stats()
	if after.IORetries != before.IORetries {
		return fmt.Errorf("phase 2: permanent fault was retried")
	}
	if free, want := eng.FreeSlots(), eng.TotalSlots()-1; free != want {
		return fmt.Errorf("phase 2: slot leaked: %d free, want %d", free, want)
	}
	if got, _, err = core.Recover(ram); err != nil || !bytes.Equal(got, payload) {
		return fmt.Errorf("phase 2: previous checkpoint lost after permanent fault (err=%v)", err)
	}
	fmt.Fprintf(w, "phase 2  permanent fault   failed fast (0 retries), no slot leaked, previous checkpoint intact\n")

	// Phase 3: soak — concurrent saves under periodic transient bursts.
	dev.Clear()
	before = eng.Stats()
	errs := 0
	for i := 0; i < cfg.saves; i++ {
		if i%17 == 5 && cfg.transients > 0 {
			dev.FailTransient(storage.OpWrite, int64(1+rng.Intn(4)), int64(1+rng.Intn(cfg.transients)))
		}
		p := make([]byte, 16<<10+rng.Intn(32<<10))
		rng.Read(p)
		if _, err := eng.Checkpoint(ctx, core.BytesSource(p)); err != nil {
			errs++
		}
	}
	after = eng.Stats()
	if free, want := eng.FreeSlots(), eng.TotalSlots()-1; free != want {
		return fmt.Errorf("phase 3: slot accounting broken after soak: %d free, want %d", free, want)
	}
	if _, _, err := core.Recover(ram); err != nil {
		return fmt.Errorf("phase 3: device unrecoverable after soak: %w", err)
	}
	fmt.Fprintf(w, "phase 3  soak              %d saves, %d failed, %d transient faults absorbed, %d retries, slots balanced\n\n",
		cfg.saves, errs, after.TransientFaults-before.TransientFaults, after.IORetries-before.IORetries)

	fmt.Fprintf(w, "totals   published=%d obsolete=%d failed=%d transient_faults=%d io_retries=%d cas_retries=%d\n",
		after.Checkpoints, after.Obsolete, after.FailedSaves, after.TransientFaults, after.IORetries, after.CASRetries)
	if rec != nil {
		snap := rec.Snapshot()
		save := snap.Phase(obs.PhaseSave)
		slotWait := snap.Phase(obs.PhaseSlotWait)
		persist := snap.Phase(obs.PhasePersist)
		fmt.Fprintf(w, "latency  save p50=%v p95=%v p99=%v   slot-wait p99=%v   persist p99=%v (%d spans)\n",
			save.P50, save.P95, save.P99, slotWait.P99, persist.P99, save.Count)
	}
	fmt.Fprintf(w, "verdict  OK — durability invariant held under every injected fault\n")

	if cfg.traceOut != "" {
		f, err := os.Create(cfg.traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Fprintf(w, "trace    wrote %s (open at https://ui.perfetto.dev)\n", cfg.traceOut)
	}
	return nil
}

// observerOrNil avoids the typed-nil-interface trap: a nil *Recorder must
// become a nil Observer so the engine's off-path stays free.
func observerOrNil(r *obs.Recorder) obs.Observer {
	if r == nil {
		return nil
	}
	return r
}
