package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"

	"pccheck"
	"pccheck/internal/workload"
)

// deltaConfig parameterizes the -delta mode: for each sparse update pattern,
// the same deterministic mutation sequence is checkpointed twice — once with
// full checkpoints, once with delta mode on — and the bytes-persisted
// reduction, save kinds, and recovery equivalence are reported side by side.
type deltaConfig struct {
	iters    int    // checkpoints per run
	keyframe int    // Delta.Keyframe K (keyframe every K deltas)
	pattern  string // one pattern name, or "" for the whole SparseZoo
	stateB   int64  // checkpointable state size
	seed     int64  // rng seed for the mutation sequence
	jsonOut  string // write the machine-readable summary here ("" = off)
}

// deltaPatternResult is one pattern's row in the BENCH_delta.json output.
type deltaPatternResult struct {
	Pattern       string  `json:"pattern"`
	DirtyFraction float64 `json:"dirty_fraction"`
	Ranges        int     `json:"ranges"`
	LogicalBytes  int64   `json:"logical_bytes"`
	FullPersisted int64   `json:"full_bytes_persisted"`
	DeltaBytes    int64   `json:"delta_bytes_persisted"`
	Reduction     float64 `json:"reduction"`
	DeltaSaves    int64   `json:"delta_saves"`
	KeyframeSaves int64   `json:"keyframe_saves"`
	RecoveredOK   bool    `json:"recovered_ok"`
}

// deltaBenchJSON is the BENCH_delta.json shape.
type deltaBenchJSON struct {
	Bench  string `json:"bench"`
	Config struct {
		Iterations int   `json:"iterations"`
		Keyframe   int   `json:"keyframe"`
		StateBytes int64 `json:"state_bytes"`
		Seed       int64 `json:"seed"`
	} `json:"config"`
	Patterns []deltaPatternResult `json:"patterns"`
}

// runDeltaOnce drives one checkpointer through the pattern's mutation
// sequence, saving synchronously from the driver goroutine (the tracker's
// coherence contract: marks must come from the same serialization domain as
// the saves). It returns the stats and the final recovered payload.
func runDeltaOnce(cfg deltaConfig, p workload.SparsePattern, delta bool) (pccheck.Stats, []byte, []byte, error) {
	ck, _, err := pccheck.CreateVolatile(pccheck.Config{
		MaxBytes:   cfg.stateB,
		Concurrent: 1,
		Delta: func() pccheck.DeltaConfig {
			if delta {
				return pccheck.DeltaConfig{Every: 1, Keyframe: cfg.keyframe}
			}
			return pccheck.DeltaConfig{}
		}(),
	})
	if err != nil {
		return pccheck.Stats{}, nil, nil, err
	}
	defer ck.Close()

	// Both runs replay the identical mutation sequence: same seed, same
	// rnd stream, same state evolution.
	rng := rand.New(rand.NewSource(cfg.seed))
	rnd := func(n int) int { return rng.Intn(n) }
	state := make([]byte, cfg.stateB)
	rng.Read(state)

	var tracker *pccheck.DirtyTracker
	if delta {
		tracker = ck.DirtyTracker()
	}
	for it := 0; it < cfg.iters; it++ {
		ranges := p.Mutate(state, rnd)
		if tracker != nil {
			for _, r := range ranges {
				tracker.MarkRange(r[0], r[1])
			}
		}
		if _, err := ck.Save(context.Background(), state); err != nil {
			return pccheck.Stats{}, nil, nil, fmt.Errorf("save %d: %w", it, err)
		}
	}
	got, _, err := ck.LoadLatest()
	if err != nil {
		return pccheck.Stats{}, nil, nil, fmt.Errorf("load latest: %w", err)
	}
	return ck.Stats(), got, state, nil
}

// runDelta compares full vs delta checkpointing over the sparse workload zoo
// and prints (and optionally exports) the per-pattern reduction table.
func runDelta(w io.Writer, cfg deltaConfig) error {
	patterns := workload.SparseZoo
	if cfg.pattern != "" {
		p, err := workload.SparseByName(cfg.pattern)
		if err != nil {
			return err
		}
		patterns = []workload.SparsePattern{p}
	}

	fmt.Fprintf(w, "delta scenario: %d checkpoints × %d-byte state, keyframe every %d deltas (seed %d)\n\n",
		cfg.iters, cfg.stateB, cfg.keyframe, cfg.seed)
	fmt.Fprintf(w, "%-18s %8s %8s %12s %12s %8s %7s %5s %s\n",
		"pattern", "dirty", "ranges", "full B", "delta B", "reduce", "deltas", "keys", "recover")

	var out deltaBenchJSON
	out.Bench = "delta"
	out.Config.Iterations = cfg.iters
	out.Config.Keyframe = cfg.keyframe
	out.Config.StateBytes = cfg.stateB
	out.Config.Seed = cfg.seed

	for _, p := range patterns {
		fullStats, fullGot, fullWant, err := runDeltaOnce(cfg, p, false)
		if err != nil {
			return fmt.Errorf("pattern %s (full): %w", p.Name, err)
		}
		if !bytes.Equal(fullGot, fullWant) {
			return fmt.Errorf("pattern %s: full-checkpoint recovery diverged from final state", p.Name)
		}
		deltaStats, got, want, err := runDeltaOnce(cfg, p, true)
		if err != nil {
			return fmt.Errorf("pattern %s (delta): %w", p.Name, err)
		}
		ok := bytes.Equal(got, want)

		res := deltaPatternResult{
			Pattern:       p.Name,
			DirtyFraction: p.DirtyFraction,
			Ranges:        p.Ranges,
			LogicalBytes:  deltaStats.BytesWritten,
			FullPersisted: fullStats.BytesPersisted,
			DeltaBytes:    deltaStats.BytesPersisted,
			DeltaSaves:    deltaStats.DeltaSaves,
			KeyframeSaves: deltaStats.KeyframeSaves,
			RecoveredOK:   ok,
		}
		if res.DeltaBytes > 0 {
			res.Reduction = float64(res.FullPersisted) / float64(res.DeltaBytes)
		}
		out.Patterns = append(out.Patterns, res)

		recov := "OK"
		if !ok {
			recov = "DIVERGED"
		}
		fmt.Fprintf(w, "%-18s %7.0f%% %8d %12d %12d %7.1f× %7d %5d %s\n",
			p.Name, p.DirtyFraction*100, p.Ranges,
			res.FullPersisted, res.DeltaBytes, res.Reduction,
			res.DeltaSaves, res.KeyframeSaves, recov)
		if !ok {
			return fmt.Errorf("pattern %s: delta recovery diverged from final state", p.Name)
		}
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "full B / delta B: bytes persisted to the device across the run; reduce = full/delta.")

	if cfg.jsonOut != "" {
		f, err := os.Create(cfg.jsonOut)
		if err != nil {
			return fmt.Errorf("json out: %w", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			f.Close()
			return fmt.Errorf("json out: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("json out: %w", err)
		}
		fmt.Fprintf(w, "json      wrote %s\n", cfg.jsonOut)
	}
	return nil
}
