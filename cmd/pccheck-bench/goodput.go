package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"pccheck"
)

// goodputConfig parameterizes the -goodput mode: a deterministic training
// loop over a bandwidth-throttled volatile device, with the goodput
// ledger attached, reporting the paper's headline quantities (goodput
// ratio, slowdown vs q, staleness, stall attribution).
type goodputConfig struct {
	iters        int           // training iterations
	interval     int           // checkpoint every f iterations
	iterTime     time.Duration // simulated per-iteration compute
	snapTime     time.Duration // simulated snapshot capture stall (the D2H copy)
	payload      int64         // checkpoint bytes m
	bw           float64       // per-writer device bandwidth throttle (bytes/sec, 0 = unthrottled)
	q            float64       // slowdown budget
	adaptive     bool          // drive an AdaptiveLoop (Eq. (3) retuning) instead of a fixed interval
	decisionsOut string        // attach the decision recorder; write its JSONL log here ("-" = stdout, "" = off)
	jsonOut      string        // write the machine-readable summary here ("" = off)
	metricsAddr  string        // serve /metrics while the scenario runs ("" = off)
}

// benchJSON is the BENCH_*.json shape: enough context to compare runs
// across PRs plus the full goodput report and the save-latency summary.
type benchJSON struct {
	Bench  string `json:"bench"`
	Config struct {
		Iterations int     `json:"iterations"`
		Interval   int     `json:"interval"`
		IterTimeMS float64 `json:"iter_time_ms"`
		SnapTimeMS float64 `json:"snap_time_ms"`
		PayloadB   int64   `json:"payload_bytes"`
		WriterBW   float64 `json:"writer_bw_bytes_per_sec"`
		Q          float64 `json:"q"`
	} `json:"config"`
	Report    pccheck.GoodputReport    `json:"report"`
	Decisions *pccheck.DecisionSummary `json:"decisions,omitempty"`
	Latency   struct {
		SaveP50Sec float64 `json:"save_p50_sec"`
		SaveP95Sec float64 `json:"save_p95_sec"`
		SaveP99Sec float64 `json:"save_p99_sec"`
		Saves      uint64  `json:"saves"`
	} `json:"latency"`
}

// runGoodput drives a simulated training loop with the ledger attached
// and prints (and optionally exports) the goodput report.
func runGoodput(w io.Writer, cfg goodputConfig) error {
	rec := pccheck.NewFlightRecorder(0)
	// With -decisions the recorder chains between the ledger and the
	// flight recorder: the ledger discovers it downstream and feeds it the
	// slowdown blocks that score retune decisions with measured regret.
	var dec *pccheck.DecisionRecorder
	var next pccheck.Observer = rec
	if cfg.decisionsOut != "" {
		dec = pccheck.NewDecisionRecorder(pccheck.DecisionConfig{}, rec)
		next = dec
	}
	led := pccheck.NewLedger(pccheck.LedgerConfig{SlowdownBudget: cfg.q}, next)

	ck, _, err := pccheck.CreateVolatile(pccheck.Config{
		MaxBytes:    cfg.payload,
		Concurrent:  2,
		Writers:     2,
		PerWriterBW: cfg.bw,
		Observer:    led,
	})
	if err != nil {
		return err
	}
	defer ck.Close()

	if cfg.metricsAddr != "" {
		writers := []pccheck.MetricsWriter{led}
		if dec != nil {
			writers = append(writers, dec)
		}
		srv, bound, err := pccheck.ServeMetrics(cfg.metricsAddr, rec, writers...)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(w, "metrics  http://%s/metrics (and /debug/vars)\n", bound)
	}

	state := make([]byte, cfg.payload)
	snapshot := func() []byte {
		// The snapshot stall stands in for the GPU→host copy: the only part
		// of a checkpoint that blocks training (§3.1).
		time.Sleep(cfg.snapTime)
		return state
	}
	ctx := context.Background()
	mode := fmt.Sprintf("checkpoint every %d", cfg.interval)
	if cfg.adaptive {
		mode = fmt.Sprintf("adaptive interval (Eq. (3), seed %d)", cfg.interval)
	}
	fmt.Fprintf(w, "goodput scenario: %d iterations × %v, %s (snapshot stall %v, %d-byte payload, q=%.3f)\n\n",
		cfg.iters, cfg.iterTime, mode, cfg.snapTime, cfg.payload, cfg.q)
	if cfg.adaptive {
		loop, err := pccheck.NewAdaptiveLoop(ck, pccheck.AdaptiveConfig{
			MaxOverhead:     cfg.q,
			InitialInterval: cfg.interval,
		}, snapshot)
		if err != nil {
			return err
		}
		for it := 0; it < cfg.iters; it++ {
			time.Sleep(cfg.iterTime)
			loop.Tick(ctx)
		}
		if err := loop.Drain(); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		iter, tw := loop.Measurements()
		fmt.Fprintf(w, "adaptive  interval=%d after %d adjustments (ewma t=%v tw=%v)\n",
			loop.Interval(), loop.Adjustments(), iter, tw)
	} else {
		loop, err := pccheck.NewLoop(ck, cfg.interval, snapshot)
		if err != nil {
			return err
		}
		for it := 0; it < cfg.iters; it++ {
			time.Sleep(cfg.iterTime) // the training step
			loop.Tick(ctx, it)
		}
		if err := loop.Drain(); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
	}

	rep := led.Report()
	pccheck.FormatGoodputReport(w, rep)

	snap := rec.Snapshot()
	save := snap.Phase(pccheck.PhaseSave)
	fmt.Fprintf(w, "latency   save p50=%v p95=%v p99=%v (%d spans)\n", save.P50, save.P95, save.P99, save.Count)

	var decSum pccheck.DecisionSummary
	if dec != nil {
		// AdaptiveLoop.Drain already finalized its pending retunes; this
		// covers the fixed-interval mode (idempotent otherwise).
		dec.Finalize()
		decSum = dec.Summary()
		if err := writeDecisions(w, dec, cfg.decisionsOut); err != nil {
			return err
		}
		fmt.Fprintf(w, "\ndecisions %d recorded, %d scored (%.0f%% joined), regret mean %.4gs max %.4gs\n",
			decSum.Total, decSum.Scored, 100*decSum.Coverage, decSum.RegretMean, decSum.RegretMax)
		fmt.Fprintln(w, "\nworst-regret decisions:")
		pccheck.FormatDecisionTable(w, dec.Decisions(), 5)
	}

	if cfg.jsonOut != "" {
		var out benchJSON
		out.Bench = "goodput"
		out.Config.Iterations = cfg.iters
		out.Config.Interval = cfg.interval
		out.Config.IterTimeMS = float64(cfg.iterTime) / float64(time.Millisecond)
		out.Config.SnapTimeMS = float64(cfg.snapTime) / float64(time.Millisecond)
		out.Config.PayloadB = cfg.payload
		out.Config.WriterBW = cfg.bw
		out.Config.Q = cfg.q
		out.Report = rep
		if dec != nil {
			out.Decisions = &decSum
		}
		out.Latency.SaveP50Sec = save.P50.Seconds()
		out.Latency.SaveP95Sec = save.P95.Seconds()
		out.Latency.SaveP99Sec = save.P99.Seconds()
		out.Latency.Saves = save.Count
		f, err := os.Create(cfg.jsonOut)
		if err != nil {
			return fmt.Errorf("json out: %w", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			f.Close()
			return fmt.Errorf("json out: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("json out: %w", err)
		}
		fmt.Fprintf(w, "json      wrote %s\n", cfg.jsonOut)
	}
	return nil
}

// writeDecisions exports the decision log as JSONL to path ("-" = stdout).
func writeDecisions(w io.Writer, dec *pccheck.DecisionRecorder, path string) error {
	if path == "-" {
		return dec.WriteJSONL(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("decisions out: %w", err)
	}
	if err := dec.WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("decisions out: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("decisions out: %w", err)
	}
	fmt.Fprintf(w, "decisions wrote %s\n", path)
	return nil
}
