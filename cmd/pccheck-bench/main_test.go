package main

import "testing"

func TestCollectSelections(t *testing.T) {
	// Single figure.
	figs, err := collect(false, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 {
		t.Fatalf("figure 12 selection produced %d artefacts", len(figs))
	}
	if _, ok := figs["figure12"]; !ok {
		t.Fatal("figure12 missing")
	}
	// Figure 8 expands to six panels.
	figs, err = collect(false, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("figure 8 selection produced %d panels, want 6", len(figs))
	}
	// Table only.
	figs, err = collect(false, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := figs["table1"]; !ok || len(figs) != 1 {
		t.Fatalf("table 1 selection wrong: %v", figs)
	}
	// Figure and table combine.
	figs, err = collect(false, 14, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("combined selection produced %d", len(figs))
	}
	// Nothing selected.
	figs, err = collect(false, 0, 0)
	if err != nil || len(figs) != 0 {
		t.Fatalf("empty selection: %d, %v", len(figs), err)
	}
}

func TestCollectRejectsUnknown(t *testing.T) {
	if _, err := collect(false, 7, 0); err == nil {
		t.Fatal("figure 7 accepted (the paper has no figure 7 artefact)")
	}
	if _, err := collect(false, 0, 2); err == nil {
		t.Fatal("table 2 accepted (table 2 is the parameter glossary)")
	}
}

func TestCollectAll(t *testing.T) {
	figs, err := collect(true, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) < 20 {
		t.Fatalf("-all produced only %d artefacts", len(figs))
	}
}
