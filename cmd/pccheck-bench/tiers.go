package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"pccheck/internal/cliutil"
	"pccheck/internal/core"
	"pccheck/internal/storage"
)

// tiersConfig parameterizes the -tiers mode.
type tiersConfig struct {
	saves    int     // checkpoints per sweep point
	payload  int64   // bytes per checkpoint
	seed     int64   // rng seed for payloads
	teardown bool    // also run the mid-run tier-teardown chaos phase
	jsonOut  string  // write the machine-readable summary here ("" = off)
	bwsMiB   []int64 // drain-bandwidth sweep points, MiB/s
}

// tierSweepPoint is one row of the bandwidth-vs-staleness sweep.
type tierSweepPoint struct {
	DrainMiBps     int64   `json:"drain_mibps"`
	Saves          int     `json:"saves"`
	MaxLag         int64   `json:"max_drain_lag_checkpoints"`
	MeanLag        float64 `json:"mean_drain_lag_checkpoints"`
	ConvergeMillis float64 `json:"converge_ms"`
	DrainedBytes   int64   `json:"drained_bytes"`
	Drains         uint64  `json:"drains"`
}

// tierTeardownResult summarizes the chaos phase: the slow tier is torn
// down mid-run, training keeps checkpointing against tier 0, and after
// the heal the drainer must converge the replica to the final counter.
type tierTeardownResult struct {
	Saves           int    `json:"saves"`
	FloorAtTeardown uint64 `json:"floor_at_teardown"`
	ErrorsDuring    uint64 `json:"drain_errors_during_outage"`
	FinalDurable    uint64 `json:"final_durable"`
	RecoveredBehind uint64 `json:"recovered_counter_from_slow_tier"`
}

type tiersSummary struct {
	Scenario string              `json:"scenario"`
	Sweep    []tierSweepPoint    `json:"sweep"`
	Teardown *tierTeardownResult `json:"teardown,omitempty"`
}

// runTiers exercises the tiered device end to end: (1) a drain-bandwidth
// sweep quantifying the staleness a slow lower tier costs — how far the
// replica's durable watermark trails the published counter at each
// bandwidth — and (2, with teardown) a chaos phase that tears the slow
// tier down mid-run and demands the cross-tier durability floor still
// holds: checkpoints the drainer acknowledged before the outage stay
// recoverable from the slow tier alone, and after the heal the drainer
// converges it to the final counter. A non-nil error means an invariant
// was violated.
func runTiers(w io.Writer, cfg tiersConfig) error {
	if cfg.saves <= 0 {
		cfg.saves = 40
	}
	if cfg.payload <= 0 {
		cfg.payload = 64 << 10
	}
	if len(cfg.bwsMiB) == 0 {
		cfg.bwsMiB = []int64{4, 16, 64, 256}
	}
	sum := tiersSummary{Scenario: "tiers"}

	fmt.Fprintf(w, "tiered-durability sweep (%d saves × %s per point; tier 0 = DRAM, tier 1 = throttled remote)\n\n",
		cfg.saves, cliutil.FormatBytes(cfg.payload))
	fmt.Fprintf(w, "%-12s %-10s %-10s %-14s %-14s %s\n",
		"drain bw", "max lag", "mean lag", "converge", "drained", "drains")
	for _, bw := range cfg.bwsMiB {
		pt, err := runTierSweepPoint(cfg, bw)
		if err != nil {
			return fmt.Errorf("sweep @%d MiB/s: %w", bw, err)
		}
		sum.Sweep = append(sum.Sweep, pt)
		fmt.Fprintf(w, "%-12s %-10d %-10.1f %-14s %-14s %d\n",
			fmt.Sprintf("%d MiB/s", pt.DrainMiBps), pt.MaxLag, pt.MeanLag,
			fmt.Sprintf("%.1fms", pt.ConvergeMillis), cliutil.FormatBytes(pt.DrainedBytes), pt.Drains)
	}
	for i := 1; i < len(sum.Sweep); i++ {
		if sum.Sweep[i].DrainedBytes == 0 {
			return fmt.Errorf("sweep @%d MiB/s drained zero bytes", sum.Sweep[i].DrainMiBps)
		}
	}

	if cfg.teardown {
		td, err := runTierTeardown(w, cfg)
		if err != nil {
			return err
		}
		sum.Teardown = &td
	}

	fmt.Fprintf(w, "\nverdict  OK — per-tier durability floor held at every sweep point\n")
	if cfg.jsonOut != "" {
		f, err := os.Create(cfg.jsonOut)
		if err != nil {
			return fmt.Errorf("json: %w", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			f.Close()
			return fmt.Errorf("json: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("json: %w", err)
		}
		fmt.Fprintf(w, "json     wrote %s\n", cfg.jsonOut)
	}
	return nil
}

// runTierSweepPoint runs one bandwidth point: saves checkpoints against a
// DRAM + throttled-remote tiered device, sampling the replica's drain lag
// after every save, then times the post-run convergence.
func runTierSweepPoint(cfg tiersConfig, bwMiB int64) (tierSweepPoint, error) {
	pt := tierSweepPoint{DrainMiBps: bwMiB, Saves: cfg.saves}
	ecfg := core.Config{Concurrent: 2, SlotBytes: cfg.payload + 512, VerifyPayload: true}
	size := core.DeviceBytesFor(ecfg)
	remote := storage.NewRemoteStore(size,
		storage.WithRemoteThrottle(storage.NewThrottle(float64(bwMiB)*float64(1<<20))))
	tiered, err := storage.NewTiered(
		[]storage.Device{storage.NewRAM(size), remote},
		storage.WithDrainInterval(200*time.Microsecond))
	if err != nil {
		return pt, err
	}
	defer tiered.Close()
	eng, err := core.New(tiered, ecfg)
	if err != nil {
		return pt, err
	}

	rng := rand.New(rand.NewSource(cfg.seed))
	p := make([]byte, cfg.payload)
	var lagSum int64
	for i := 1; i <= cfg.saves; i++ {
		rng.Read(p)
		if _, err := eng.Checkpoint(context.Background(), core.BytesSource(p)); err != nil {
			return pt, fmt.Errorf("save %d: %w", i, err)
		}
		// Simulated training iteration between checkpoints: the drainer
		// races this think time, so the sampled lag reflects bandwidth
		// rather than the tightness of the save loop.
		time.Sleep(2 * time.Millisecond)
		st := tiered.Status()
		if lag := int64(st[0].DurableCounter) - int64(st[1].DurableCounter); lag > 0 {
			lagSum += lag
			if lag > pt.MaxLag {
				pt.MaxLag = lag
			}
		}
	}
	pt.MeanLag = float64(lagSum) / float64(cfg.saves)

	start := time.Now()
	if !tiered.WaitDrained(time.Minute) {
		return pt, fmt.Errorf("replica did not converge within a minute")
	}
	pt.ConvergeMillis = float64(time.Since(start).Microseconds()) / 1e3
	st := tiered.Status()
	if st[1].DurableCounter != uint64(cfg.saves) {
		return pt, fmt.Errorf("replica durable %d after drain, want %d", st[1].DurableCounter, cfg.saves)
	}
	pt.DrainedBytes = st[1].DrainedBytes
	pt.Drains = st[1].Drains
	return pt, nil
}

// runTierTeardown is the chaos phase: partition the remote tier mid-run,
// keep checkpointing, heal, and verify both halves of the durability
// contract — the pre-outage drain floor recovers from the slow tier
// alone, and the healed drainer converges it to the final counter.
func runTierTeardown(w io.Writer, cfg tiersConfig) (tierTeardownResult, error) {
	td := tierTeardownResult{Saves: cfg.saves}
	ecfg := core.Config{Concurrent: 2, SlotBytes: cfg.payload + 512, VerifyPayload: true}
	size := core.DeviceBytesFor(ecfg)
	remote := storage.NewRemoteStore(size)
	tiered, err := storage.NewTiered(
		[]storage.Device{storage.NewRAM(size), remote},
		storage.WithDrainInterval(200*time.Microsecond),
		storage.WithTierRetry(2, 100*time.Microsecond, time.Millisecond))
	if err != nil {
		return td, err
	}
	defer tiered.Close()
	eng, err := core.New(tiered, ecfg)
	if err != nil {
		return td, err
	}

	rng := rand.New(rand.NewSource(cfg.seed + 1))
	p := make([]byte, cfg.payload)
	save := func(i int) ([]byte, error) {
		rng.Read(p)
		_, err := eng.Checkpoint(context.Background(), core.BytesSource(p))
		return append([]byte(nil), p...), err
	}

	// Phase A: healthy run up to the teardown point; the drainer must have
	// made real progress before we cut the cord.
	cut := cfg.saves / 2
	for i := 1; i <= cut; i++ {
		if _, err := save(i); err != nil {
			return td, fmt.Errorf("teardown phase A save %d: %w", i, err)
		}
	}
	if !tiered.WaitDrained(time.Minute) {
		return td, fmt.Errorf("teardown: replica did not converge before the cut")
	}
	td.FloorAtTeardown = tiered.Status()[1].DurableCounter
	if td.FloorAtTeardown == 0 {
		return td, fmt.Errorf("teardown: no drain progress before the cut")
	}

	// Phase B: tier 1 unreachable. Saves must keep completing at tier 0;
	// the drainer classifies the outage transient, retries, goes stale.
	remote.SetReachable(false)
	var want []byte
	for i := cut + 1; i <= cfg.saves; i++ {
		wp, err := save(i)
		if err != nil {
			return td, fmt.Errorf("teardown phase B save %d failed during outage: %w", i, err)
		}
		want = wp
	}
	time.Sleep(5 * time.Millisecond) // let the drainer hit the partition
	stale := tiered.Status()[1]
	td.ErrorsDuring = stale.Errors
	if stale.Errors == 0 {
		return td, fmt.Errorf("teardown: outage produced no classified drain errors")
	}
	if stale.DurableCounter > uint64(cut) {
		return td, fmt.Errorf("teardown: replica watermark advanced to %d during the outage", stale.DurableCounter)
	}

	// The durability floor: what the drainer acknowledged before the cut
	// must recover from the slow tier alone, right now.
	remote.SetReachable(true)
	if _, ctr, err := core.Recover(remote); err != nil {
		return td, fmt.Errorf("teardown: slow tier unrecoverable at the floor: %w", err)
	} else if ctr < td.FloorAtTeardown {
		return td, fmt.Errorf("teardown: slow tier recovered counter %d below the acked floor %d", ctr, td.FloorAtTeardown)
	} else {
		td.RecoveredBehind = ctr
	}

	// Phase C: healed. The drainer must converge the replica to the final
	// counter and the newest payload must round-trip through it.
	tiered.Kick()
	if !tiered.WaitDrained(time.Minute) {
		return td, fmt.Errorf("teardown: replica did not converge after the heal")
	}
	td.FinalDurable = tiered.Status()[1].DurableCounter
	if td.FinalDurable != uint64(cfg.saves) {
		return td, fmt.Errorf("teardown: healed replica durable %d, want %d", td.FinalDurable, cfg.saves)
	}
	got, ctr, err := core.Recover(remote)
	if err != nil {
		return td, fmt.Errorf("teardown: healed slow tier unrecoverable: %w", err)
	}
	if ctr != uint64(cfg.saves) || !bytes.Equal(got, want) {
		return td, fmt.Errorf("teardown: healed slow tier serves checkpoint %d, want byte-identical %d", ctr, cfg.saves)
	}

	fmt.Fprintf(w, "\nteardown chaos   floor %d acked before the cut, %d drain error(s) during the outage,\n",
		td.FloorAtTeardown, td.ErrorsDuring)
	fmt.Fprintf(w, "                 slow tier alone recovered checkpoint %d ≥ floor; healed replica converged to %d\n",
		td.RecoveredBehind, td.FinalDurable)
	return td, nil
}
