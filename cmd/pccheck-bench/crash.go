package main

import (
	"fmt"
	"io"
	"text/tabwriter"

	"pccheck/internal/core"
)

// crashConfig parameterizes the -crash mode.
type crashConfig struct {
	samples int   // sampled torn/reordered schedules per workload
	seed    int64 // workload + schedule seed
}

// runCrash sweeps simulated power cuts over the full workload matrix (device
// kind × N × chunking × verify): every op boundary under the pessimistic
// drop-all-unsynced schedule, plus sampled schedules that keep, drop, tear,
// and reorder un-synced writes. Recovery runs against every materialized
// post-crash image, checking the §4.1 durability invariant. A non-nil error
// means at least one case violated it.
func runCrash(w io.Writer, cfg crashConfig) error {
	if cfg.samples < 1 {
		cfg.samples = 1
	}
	configs := core.CrashSweepConfigs(cfg.seed)
	fmt.Fprintf(w, "crash-point exploration: %d workloads, every op boundary + %d sampled cache-loss schedules each\n\n",
		len(configs), cfg.samples)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tops\tboundaries\tcases\trecovered\tempty\treattached\tviolations")
	var totalCases, totalViolations int
	var failures []string
	for _, wl := range configs {
		res, err := core.ExploreCrashes(core.CrashExploreOptions{Workload: wl, Samples: cfg.samples})
		if err != nil {
			return fmt.Errorf("%s: %w", wl, err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			wl, res.Ops, res.CrashPoints, res.Cases, res.Recovered, res.Empty, res.Reattached, len(res.Violations))
		totalCases += res.Cases
		totalViolations += len(res.Violations)
		failures = append(failures, res.Violations...)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(w, "\ntotals   %d cases, %d violations\n", totalCases, totalViolations)
	if totalViolations > 0 {
		for _, v := range failures {
			fmt.Fprintln(w, "  VIOLATION:", v)
		}
		return fmt.Errorf("%w: %d of %d cases", core.ErrCrashInvariantViolated, totalViolations, totalCases)
	}
	fmt.Fprintf(w, "verdict  OK — a fully persisted checkpoint was recoverable at every crash point\n")
	return nil
}
