// Command pccheck-bench regenerates the paper's evaluation artefacts
// (Figures 1, 2, 8a–f, 9a–f, 10–14 and Tables 1, 3) from the calibrated
// simulator, writing one CSV per artefact.
//
// Usage:
//
//	pccheck-bench -all -out results/
//	pccheck-bench -figure 8 -out results/       # all six panels
//	pccheck-bench -figure 12                    # print to stdout
//	pccheck-bench -table 1
//	pccheck-bench -faults                       # fault-injection scenario
//	pccheck-bench -crash                        # crash-point exploration sweep
//	pccheck-bench -delta                        # full vs delta bytes-persisted sweep
//	pccheck-bench -tiers                        # drain-bandwidth vs staleness sweep
//	pccheck-bench -tiers -tier-teardown         # + tear the slow tier down mid-run
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"pccheck/internal/figures"
)

func main() {
	var (
		all    = flag.Bool("all", false, "regenerate every figure and table")
		figure = flag.Int("figure", 0, "regenerate one figure (1, 2, 8, 9, 10, 11, 12, 13, 14)")
		table  = flag.Int("table", 0, "regenerate one table (1 or 3)")
		claims = flag.Bool("claims", false, "check the paper's headline claims and print the verdicts")
		out    = flag.String("out", "", "directory for CSV output (default: stdout)")

		faults          = flag.Bool("faults", false, "run the fault-injection scenario and print the report")
		faultTransients = flag.Int("fault-transients", 2, "with -faults: consecutive transient faults per injected burst")
		faultSaves      = flag.Int("fault-saves", 200, "with -faults: checkpoints in the soak phase")
		faultSeed       = flag.Int64("fault-seed", 1, "with -faults: rng seed for the soak phase")

		traceOut    = flag.String("trace-out", "", "with -faults: write a Chrome trace-event JSON of every checkpoint phase (view at ui.perfetto.dev)")
		metricsAddr = flag.String("metrics-addr", "", "with -faults or -goodput: serve /metrics (Prometheus) and /debug/vars on this address while the scenario runs")

		crash        = flag.Bool("crash", false, "run the crash-point exploration sweep and print the per-workload summary")
		crashSamples = flag.Int("crash-samples", 100, "with -crash: sampled torn/reordered cache-loss schedules per workload")
		crashSeed    = flag.Int64("crash-seed", 1, "with -crash: seed for workload payloads and sampled schedules")

		goodput         = flag.Bool("goodput", false, "run the goodput-ledger scenario: a simulated training loop with stall attribution and SLO tracking")
		goodputIters    = flag.Int("goodput-iters", 300, "with -goodput: training iterations")
		goodputInterval = flag.Int("goodput-interval", 10, "with -goodput: checkpoint every f iterations")
		goodputQ        = flag.Float64("goodput-q", 1.25, "with -goodput: slowdown budget q")
		adaptive        = flag.Bool("adaptive", false, "with -goodput: drive an AdaptiveLoop (Eq. (3) retuning) instead of a fixed interval")
		decisionsOut    = flag.String("decisions", "", "with -goodput: attach the decision recorder and write the JSONL decision log to this path (\"-\" = stdout)")
		jsonOut         = flag.String("json", "", "with -goodput, -delta or -tiers: write the machine-readable summary (BENCH_*.json shape) to this path")

		delta         = flag.Bool("delta", false, "run the delta-checkpoint scenario: full vs delta bytes persisted per sparse update pattern")
		deltaIters    = flag.Int("delta-iters", 120, "with -delta: checkpoints per run")
		deltaKeyframe = flag.Int("delta-keyframe", 10, "with -delta: full keyframe every K deltas")
		deltaPattern  = flag.String("delta-pattern", "", "with -delta: run one sparse pattern by name (default: the whole zoo)")
		deltaState    = flag.Int64("delta-state", 256<<10, "with -delta: checkpointable state bytes")
		deltaSeed     = flag.Int64("delta-seed", 1, "with -delta: rng seed for the mutation sequence")

		tiers        = flag.Bool("tiers", false, "run the tiered-durability scenario: drain-bandwidth vs staleness sweep over a DRAM→remote device")
		tierSaves    = flag.Int("tier-saves", 40, "with -tiers: checkpoints per sweep point")
		tierPayload  = flag.Int64("tier-payload", 64<<10, "with -tiers: bytes per checkpoint")
		tierSeed     = flag.Int64("tier-seed", 1, "with -tiers: rng seed for payloads")
		tierTeardown = flag.Bool("tier-teardown", false, "with -tiers: also tear the slow tier down mid-run and assert the cross-tier durability floor")
	)
	flag.Parse()

	if *tiers {
		err := runTiers(os.Stdout, tiersConfig{
			saves:    *tierSaves,
			payload:  *tierPayload,
			seed:     *tierSeed,
			teardown: *tierTeardown,
			jsonOut:  *jsonOut,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccheck-bench: TIER SCENARIO FAILED:", err)
			os.Exit(1)
		}
		return
	}

	if *delta {
		err := runDelta(os.Stdout, deltaConfig{
			iters:    *deltaIters,
			keyframe: *deltaKeyframe,
			pattern:  *deltaPattern,
			stateB:   *deltaState,
			seed:     *deltaSeed,
			jsonOut:  *jsonOut,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccheck-bench: DELTA SCENARIO FAILED:", err)
			os.Exit(1)
		}
		return
	}

	if *goodput {
		err := runGoodput(os.Stdout, goodputConfig{
			iters:        *goodputIters,
			interval:     *goodputInterval,
			iterTime:     2 * time.Millisecond,
			snapTime:     4 * time.Millisecond,
			payload:      256 << 10,
			bw:           64 << 20, // 64 MiB/s per writer: persists visibly overlap training
			q:            *goodputQ,
			adaptive:     *adaptive,
			decisionsOut: *decisionsOut,
			jsonOut:      *jsonOut,
			metricsAddr:  *metricsAddr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccheck-bench: GOODPUT SCENARIO FAILED:", err)
			os.Exit(1)
		}
		return
	}

	if *crash {
		if err := runCrash(os.Stdout, crashConfig{samples: *crashSamples, seed: *crashSeed}); err != nil {
			fmt.Fprintln(os.Stderr, "pccheck-bench: CRASH SWEEP FAILED:", err)
			os.Exit(1)
		}
		return
	}

	if *faults {
		err := runFaults(os.Stdout, faultsConfig{
			transients:  *faultTransients,
			saves:       *faultSaves,
			seed:        *faultSeed,
			traceOut:    *traceOut,
			metricsAddr: *metricsAddr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccheck-bench: FAULT SCENARIO FAILED:", err)
			os.Exit(1)
		}
		return
	}

	if *claims {
		cs, err := figures.CheckClaims()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccheck-bench:", err)
			os.Exit(1)
		}
		fmt.Print(figures.FormatClaims(cs))
		for _, c := range cs {
			if !c.OK {
				os.Exit(1)
			}
		}
		return
	}

	figs, err := collect(*all, *figure, *table)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pccheck-bench:", err)
		os.Exit(1)
	}
	if len(figs) == 0 {
		fmt.Fprintln(os.Stderr, "pccheck-bench: nothing selected; use -all, -figure N or -table N")
		flag.Usage()
		os.Exit(2)
	}
	ids := make([]string, 0, len(figs))
	for id := range figs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fig := figs[id]
		if *out == "" {
			fmt.Printf("# %s — %s\n", fig.ID, fig.Title)
			if err := fig.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "pccheck-bench:", err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "pccheck-bench:", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, fig.ID+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pccheck-bench:", err)
			os.Exit(1)
		}
		if err := fig.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "pccheck-bench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pccheck-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", path, fig.Title)
	}
}

func collect(all bool, figure, table int) (map[string]figures.Figure, error) {
	if all {
		return figures.All()
	}
	out := make(map[string]figures.Figure)
	add := func(f figures.Figure, err error) error {
		if err != nil {
			return err
		}
		out[f.ID] = f
		return nil
	}
	switch figure {
	case 0:
	case 1:
		if err := add(figures.Figure1()); err != nil {
			return nil, err
		}
	case 2:
		if err := add(figures.Figure2()); err != nil {
			return nil, err
		}
	case 8:
		for _, m := range figures.Figure8Models {
			if err := add(figures.Figure8(m)); err != nil {
				return nil, err
			}
		}
	case 9:
		for _, m := range figures.Figure8Models {
			if err := add(figures.Figure9(m)); err != nil {
				return nil, err
			}
		}
	case 10:
		if err := add(figures.Figure10()); err != nil {
			return nil, err
		}
	case 11:
		if err := add(figures.Figure11()); err != nil {
			return nil, err
		}
	case 12:
		if err := add(figures.Figure12()); err != nil {
			return nil, err
		}
	case 13:
		if err := add(figures.Figure13()); err != nil {
			return nil, err
		}
	case 14:
		if err := add(figures.Figure14()); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown figure %d (have 1, 2, 8, 9, 10, 11, 12, 13, 14)", figure)
	}
	switch table {
	case 0:
	case 1:
		if err := add(figures.Table1(3)); err != nil {
			return nil, err
		}
	case 3:
		if err := add(figures.Table3()); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown table %d (have 1 and 3)", table)
	}
	return out, nil
}
