// Command pccheck-decisions analyzes a decision log (JSONL, as exported by
// the decision recorder / pccheck-bench -decisions): it renders the
// decisions worst-regret-first — which policy calls cost the most against
// the alternatives the model rejected — prints the aggregate regret
// summary, and can counterfactually replay a retune decision's candidate
// intervals through the discrete-event simulator.
//
//	pccheck-decisions BENCH_decisions.jsonl
//	pccheck-decisions -kind retune -top 5 BENCH_decisions.jsonl
//	pccheck-decisions -replay BENCH_decisions.jsonl
//	pccheck-bench -goodput -adaptive -decisions - | pccheck-decisions -json -
//
// CI mode: the -assert-* flags turn the tool into a gate — a seeded run's
// log must be non-empty, carry finite regret, join ≥ a coverage fraction of
// decisions against measurements, and give every retune decision a minimum
// number of scored alternatives.
//
// Exit status: 0 ok, 1 read/decode failure, 2 usage, 3 an -assert-* check
// failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"pccheck/internal/obs/decision"
)

func main() {
	top := flag.Int("top", 10, "rows in the regret table (0 = all)")
	kind := flag.String("kind", "", "only this decision kind (retune, tune, slot-admission, retry, degraded-commit)")
	jsonOut := flag.Bool("json", false, "print the aggregate summary as JSON instead of the table")
	replay := flag.Bool("replay", false, "re-run the worst-regret retune decision's candidates through internal/sim")
	replayWriters := flag.Int("replay-writers", 3, "writer threads p for -replay")
	assertNonempty := flag.Bool("assert-nonempty", false, "fail (exit 3) when the log holds no decisions")
	assertFinite := flag.Bool("assert-finite", false, "fail (exit 3) on non-finite or negative regret")
	assertCoverage := flag.Float64("assert-coverage", 0, "fail (exit 3) when the measurement-join coverage is below this fraction")
	assertAlts := flag.Int("assert-alternatives", 0, "fail (exit 3) when any retune decision carries fewer scored alternatives")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pccheck-decisions [flags] <decisions.jsonl | ->")
		flag.PrintDefaults()
		os.Exit(2)
	}

	ds, err := read(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	if *kind != "" {
		k, ok := decision.KindFromString(*kind)
		if !ok {
			fail("unknown kind %q", *kind)
		}
		kept := ds[:0]
		for _, d := range ds {
			if d.Kind == k {
				kept = append(kept, d)
			}
		}
		ds = kept
	}
	sum := decision.Summarize(ds)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fail("%v", err)
		}
	} else {
		decision.FormatTable(os.Stdout, ds, *top)
		fmt.Printf("\n%d decisions, %d scored (%.0f%% coverage), regret mean %.4gs max %.4gs total %.4gs\n",
			sum.Total, sum.Scored, 100*sum.Coverage, sum.RegretMean, sum.RegretMax, sum.RegretTotal)
		for _, ks := range sum.Kinds {
			fmt.Printf("  %-16s %4d recorded %4d scored  regret %.4gs (max %.4gs)\n",
				ks.Kind, ks.Total, ks.Scored, ks.RegretTotal, ks.RegretMax)
		}
	}

	if *replay {
		if err := replayWorst(ds, *replayWriters); err != nil {
			fail("%v", err)
		}
	}

	if code := assert(ds, sum, *assertNonempty, *assertFinite, *assertCoverage, *assertAlts); code != 0 {
		os.Exit(code)
	}
}

func read(path string) ([]decision.Decision, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return decision.ReadJSONL(r)
}

// replayWorst picks the scored retune decision with the largest regret and
// re-runs its whole candidate set through the simulator, printing the
// model's analytic prediction next to the simulated outcome per candidate.
func replayWorst(ds []decision.Decision, writers int) error {
	var worst *decision.Decision
	for i := range ds {
		d := &ds[i]
		if d.Kind != decision.KindRetune || !d.Scored {
			continue
		}
		if worst == nil || d.Regret > worst.Regret {
			worst = d
		}
	}
	if worst == nil {
		fmt.Println("\nreplay: no scored retune decisions in the log")
		return nil
	}
	outs, err := decision.ReplayRetune(*worst, writers)
	if err != nil {
		return err
	}
	fmt.Printf("\ncounterfactual replay of seq %d (chose %s, regret %.4gs, tw=%.4gs t=%.4gs N=%d):\n",
		worst.Seq, worst.Chosen.Action, worst.Regret,
		worst.Inputs.TwSeconds, worst.Inputs.IterSeconds, worst.Inputs.N)
	fmt.Printf("%-8s %-7s %12s %14s %14s\n", "action", "chosen", "sim-slowdown", "sim-stall", "mean-lag-iters")
	for _, o := range outs {
		mark := ""
		if o.Chosen {
			mark = "*"
		}
		fmt.Printf("%-8s %-7s %12.4f %13.4gs %14.2f\n",
			o.Action, mark, o.SimSlowdown, o.SimStallSeconds, o.MeanLagIters)
	}
	return nil
}

func assert(ds []decision.Decision, sum decision.Summary, nonempty, finite bool, coverage float64, alts int) int {
	bad := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "pccheck-decisions: ASSERT FAILED: "+format+"\n", args...)
		return 3
	}
	if nonempty && len(ds) == 0 {
		return bad("decision log is empty")
	}
	if finite {
		for _, d := range ds {
			if math.IsNaN(d.Regret) || math.IsInf(d.Regret, 0) || d.Regret < 0 {
				return bad("seq %d (%s) has non-finite/negative regret %v", d.Seq, d.Kind, d.Regret)
			}
		}
	}
	if coverage > 0 && sum.Coverage < coverage {
		return bad("join coverage %.2f below required %.2f (%d/%d scored)",
			sum.Coverage, coverage, sum.Scored, sum.Total)
	}
	if alts > 0 {
		for _, d := range ds {
			if d.Kind == decision.KindRetune && len(d.Rejected) < alts {
				return bad("retune seq %d carries %d alternatives, want ≥ %d", d.Seq, len(d.Rejected), alts)
			}
		}
	}
	return 0
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pccheck-decisions: "+format+"\n", args...)
	os.Exit(1)
}
