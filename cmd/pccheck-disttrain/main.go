// Command pccheck-disttrain runs multi-process distributed training with
// coordinated checkpointing: each rank is a separate OS process training its
// own pipeline-stage model (a deterministic MLP standing in for a model
// partition, §3.1), checkpointing to its own file, and agreeing with the
// group — over TCP through rank 0 — on the globally consistent checkpoint
// after every save (§4.1).
//
// One-command demo (rank 0 spawns the other ranks as subprocesses):
//
//	pccheck-disttrain -world 3 -spawn -ckpt-dir /tmp/dist -steps 200 -interval 20
//
// Manual deployment (one command per machine):
//
//	pccheck-disttrain -world 3 -rank 0 -listen :7070 -ckpt stage0.pcc
//	pccheck-disttrain -world 3 -rank 1 -leader host0:7070 -ckpt stage1.pcc
//	pccheck-disttrain -world 3 -rank 2 -leader host0:7070 -ckpt stage2.pcc
//
// Crash recovery: kill any subset of ranks (or use -crash-at), restart the
// same commands; on startup the group re-agrees on the newest checkpoint
// every rank still holds and resumes from exactly there.
//
// Chaos sweep (no training; exercises the failure-detection, degraded-mode
// commit, and rejoin machinery under seeded network faults, exiting
// non-zero if any distributed-consistency invariant is violated):
//
//	pccheck-disttrain -chaos -chaos-seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"pccheck"
	"pccheck/internal/dist"
	"pccheck/internal/train"
)

func main() {
	var (
		world     = flag.Int("world", 2, "number of ranks")
		rank      = flag.Int("rank", 0, "this process's rank")
		listen    = flag.String("listen", "127.0.0.1:0", "rank 0: listen address")
		leader    = flag.String("leader", "", "ranks ≥ 1: rank 0's address")
		ckpt      = flag.String("ckpt", "", "checkpoint file for this rank")
		ckptDir   = flag.String("ckpt-dir", "", "spawn mode: directory for per-rank checkpoint files")
		steps     = flag.Int("steps", 200, "training iterations")
		interval  = flag.Int("interval", 20, "checkpoint every f iterations")
		crashAt   = flag.Int("crash-at", 0, "exit abruptly after this iteration (0 = run to completion)")
		spawn     = flag.Bool("spawn", false, "rank 0 spawns ranks 1..world-1 as subprocesses")
		budget    = flag.Float64("q", 0, "attach a goodput ledger with this slowdown budget; rank 0 also prints the per-rank straggler table (0 = off)")
		degraded  = flag.String("degraded", "stall", "dead-rank policy: stall (paper default: a dead rank halts global commits) or excludedead (survivors keep committing); must match on every rank")
		chaos     = flag.Bool("chaos", false, "run the seeded chaos sweep (network faults, rank kills, partitions) instead of training; non-zero exit on invariant violation")
		chaosSeed = flag.Int64("chaos-seed", 1, "base seed for the chaos sweep")
	)
	flag.Parse()

	if *chaos {
		if err := runChaos(*chaosSeed); err != nil {
			fail("%v", err)
		}
		return
	}
	policy, err := parsePolicy(*degraded)
	if err != nil {
		fail("%v", err)
	}
	if *spawn {
		if err := runSpawner(*world, *ckptDir, *steps, *interval, *budget, *degraded); err != nil {
			fail("%v", err)
		}
		return
	}
	if *ckpt == "" {
		fail("need -ckpt")
	}
	if err := runRank(*world, *rank, *listen, *leader, *ckpt, *steps, *interval, *crashAt, *budget, policy); err != nil {
		fail("rank %d: %v", *rank, err)
	}
}

func parsePolicy(s string) (pccheck.DegradedPolicy, error) {
	switch s {
	case "stall", "":
		return pccheck.Stall, nil
	case "excludedead":
		return pccheck.ExcludeDead, nil
	default:
		return pccheck.Stall, fmt.Errorf("unknown -degraded policy %q (want stall or excludedead)", s)
	}
}

// runChaos runs the seeded fault-injection sweep: every case drives a real
// multi-rank training loop through network chaos and checks the §4.1
// global-consistency invariants (monotone agreement, durable floor,
// convergence, liveness).
func runChaos(seed int64) error {
	cases := dist.ChaosSweepCases(seed)
	bad := 0
	for _, cs := range cases {
		res, err := dist.ExploreChaos(dist.ChaosExploreOptions{Case: cs})
		if err != nil {
			return fmt.Errorf("chaos case %q: %w", cs.Name, err)
		}
		status := "ok  "
		if !res.Ok() {
			status = "FAIL"
			bad++
		}
		fmt.Printf("%s %-20s world=%d rounds=%-3d policy=%-11s commits=%-3d kills=%d rejoins=%d final=%d\n",
			status, cs.Name, res.Case.World, res.Rounds, res.Case.Policy, res.Commits, res.Kills, res.Rejoins, res.FinalID)
		for _, v := range res.Violations {
			fmt.Printf("      violation: %s\n", v)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d chaos cases violated distributed-consistency invariants", bad, len(cases))
	}
	fmt.Printf("all %d chaos cases held the consistency invariants (seed %d)\n", len(cases), seed)
	return nil
}

// runSpawner is the one-command demo: listen, launch the other ranks
// pointing at us, then run rank 0 in-process.
func runSpawner(world int, dir string, steps, interval int, budget float64, degraded string) error {
	if dir == "" {
		dir = os.TempDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	addr := ln.Addr().String()
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	var procs []*exec.Cmd
	for r := 1; r < world; r++ {
		cmd := exec.Command(exe,
			"-world", strconv.Itoa(world),
			"-rank", strconv.Itoa(r),
			"-leader", addr,
			"-ckpt", filepath.Join(dir, fmt.Sprintf("stage%d.pcc", r)),
			"-steps", strconv.Itoa(steps),
			"-interval", strconv.Itoa(interval),
			"-q", strconv.FormatFloat(budget, 'g', -1, 64),
			"-degraded", degraded,
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		procs = append(procs, cmd)
	}
	policy, err := parsePolicy(degraded)
	if err != nil {
		return err
	}
	err = runRankWithListener(world, 0, ln, filepath.Join(dir, "stage0.pcc"), steps, interval, 0, budget, policy)
	for _, p := range procs {
		if werr := p.Wait(); err == nil {
			err = werr
		}
	}
	return err
}

func runRank(world, rank int, listen, leader, ckptPath string, steps, interval, crashAt int, budget float64, policy pccheck.DegradedPolicy) error {
	if rank == 0 {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Printf("rank 0 listening on %s\n", ln.Addr())
		return runRankWithListener(world, 0, ln, ckptPath, steps, interval, crashAt, budget, policy)
	}
	if leader == "" {
		return fmt.Errorf("ranks ≥ 1 need -leader")
	}
	// The leader may come up after us; DialWorkerWith retries with backoff.
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Second)
	tr, err := pccheck.DialWorkerWith(ctx, leader, rank, world, pccheck.DialOptions{
		Retry: pccheck.DialRetryPolicy{MaxAttempts: 150, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second},
	})
	cancel()
	if err != nil {
		return err
	}
	defer tr.Close()
	return trainLoop(tr, ckptPath, rank, steps, interval, crashAt, budget, policy)
}

func runRankWithListener(world, rank int, ln net.Listener, ckptPath string, steps, interval, crashAt int, budget float64, policy pccheck.DegradedPolicy) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	tr, err := pccheck.ListenLeader(ctx, ln, world)
	cancel()
	if err != nil {
		return err
	}
	defer tr.Close()
	return trainLoop(tr, ckptPath, rank, steps, interval, crashAt, budget, policy)
}

// trainLoop is the per-rank body: restore or start fresh, agree on the
// common resume point, train with coordinated checkpoints. With budget >
// 0 a goodput ledger rides along: every rank prints its own attribution
// report and rank 0 — whose coordinator sees when each rank's report
// arrives — additionally gets the straggler table.
func trainLoop(tr pccheck.Transport, ckptPath string, rank, steps, interval, crashAt int, budget float64, policy pccheck.DegradedPolicy) error {
	// Each rank's "pipeline stage" is its own deterministic model.
	makeTrainer := func() (*train.Trainer, error) {
		m, err := train.NewMLP(1000+int64(rank), []int{24, 48, 6})
		if err != nil {
			return nil, err
		}
		data, err := train.NewSynthetic(2000+int64(rank), 24, 6, 8)
		if err != nil {
			return nil, err
		}
		return train.NewTrainer(m, train.NewAdam(m.Params(), 0.004), data)
	}
	trainer, err := makeTrainer()
	if err != nil {
		return err
	}

	// Startup agreement: everyone reports the iteration of its newest
	// recovered checkpoint; the group resumes from the minimum (the newest
	// state every rank still has). Using the snapshot's iteration rather
	// than the engine counter keeps the agreement meaningful even when
	// engine counters diverge across restarts.
	var recovered []byte
	recoveredIter := 0
	if state, _, err := pccheck.RecoverFile(ckptPath); err == nil {
		if it, err := train.SnapshotIteration(state); err == nil {
			recovered, recoveredIter = state, it
		}
	}
	bootCk := mustVolatileBootstrap()
	boot, err := pccheck.NewWorkerWith(bootCk, tr, pccheck.DistConfig{Degraded: policy})
	if err != nil {
		bootCk.Close()
		return err
	}
	agreedIter, err := bootstrapAgree(boot, uint64(recoveredIter)+1)
	// The bootstrap coordinator carried iteration numbers, which must not
	// leak into the training epoch's counter-based agreement: retire it and
	// discard any frames left over from its era before the training
	// coordinator attaches to the same transport.
	boot.Close()
	bootCk.Close()
	if err != nil {
		return fmt.Errorf("startup agreement: %w", err)
	}
	drainTransport(tr, 150*time.Millisecond)
	resumeIter := int(agreedIter) - 1
	switch {
	case resumeIter <= 0:
		fmt.Printf("rank %d: starting fresh\n", rank)
	case resumeIter == recoveredIter:
		if err := trainer.Restore(recovered); err != nil {
			return err
		}
		fmt.Printf("rank %d: resuming at iteration %d\n", rank, resumeIter)
	default:
		// This rank is ahead of the group: deterministic training means
		// re-deriving the agreed iteration is just re-running to it.
		fmt.Printf("rank %d: ahead (%d); re-deriving group state at %d\n", rank, recoveredIter, resumeIter)
		for trainer.Iteration() < resumeIter {
			if _, err := trainer.Step(); err != nil {
				return err
			}
		}
	}

	// Fresh engine for this epoch so checkpoint counters align across the
	// group again.
	var led *pccheck.Ledger
	var obsv pccheck.Observer
	if budget > 0 {
		led = pccheck.NewLedger(pccheck.LedgerConfig{SlowdownBudget: budget}, nil)
		obsv = led
	}
	ck, err := pccheck.Create(ckptPath, pccheck.Config{
		MaxBytes:   int64(trainer.StateSize()),
		Concurrent: 2,
		Writers:    2,
		Verify:     true,
		Observer:   obsv,
	})
	if err != nil {
		return err
	}
	defer ck.Close()
	worker, err := pccheck.NewWorkerWith(ck, tr, pccheck.DistConfig{Degraded: policy})
	if err != nil {
		return err
	}
	defer worker.Close()

	ctx := context.Background()
	var lastIter time.Time
	ckptThis := false
	for trainer.Iteration() < steps {
		// Here a checkpoint (snapshot + SaveConsistent + agreement) runs
		// inside the iteration, so the flag applies to the same gap.
		if led != nil {
			now := time.Now()
			if !lastIter.IsZero() {
				led.IterDone(now.Sub(lastIter), ckptThis)
			}
			lastIter = now
			ckptThis = false
		}
		it := trainer.Iteration()
		loss, err := trainer.Step()
		if err != nil {
			return err
		}
		if crashAt > 0 && it+1 >= crashAt {
			fmt.Printf("rank %d: simulating crash at iteration %d\n", rank, it+1)
			os.Exit(137)
		}
		if (it+1)%interval != 0 {
			continue
		}
		buf := make([]byte, trainer.StateSize())
		if _, err := trainer.Snapshot(buf); err != nil {
			return err
		}
		agreed, err := worker.SaveConsistent(ctx, buf)
		if err != nil {
			return err
		}
		ckptThis = true
		if rank == 0 {
			fmt.Printf("iteration %4d  loss %.4f  globally consistent checkpoint %d\n", it+1, loss, agreed)
		}
	}
	fmt.Printf("rank %d: done at iteration %d\n", rank, trainer.Iteration())
	if led != nil {
		fmt.Printf("rank %d goodput report:\n", rank)
		pccheck.FormatGoodputReport(os.Stdout, led.Report())
	}
	return nil
}

// bootstrapAgree runs one coordination round carrying iteration numbers
// instead of engine counters, returning the group minimum.
func bootstrapAgree(w *pccheck.Worker, iterPlusOne uint64) (uint64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// The Worker API couples Commit to Save; for the bootstrap round we
	// save a tiny marker payload and coordinate on the iteration number by
	// reporting it through the payload-independent agreement: saving
	// iterPlusOne marker saves under engine counters, so instead use the
	// raw coordinator via SaveConsistentRaw.
	return w.AgreeRaw(ctx, iterPlusOne)
}

// drainTransport discards frames left over from a retired coordinator's
// era (duplicate commit echoes, stray heartbeats): it keeps reading until
// the transport has been quiet for the given window. Anything a live peer
// genuinely needs delivered is retransmitted by the protocol, so an
// over-eager drain self-heals.
func drainTransport(tr pccheck.Transport, quiet time.Duration) {
	for {
		ctx, cancel := context.WithTimeout(context.Background(), quiet)
		_, err := tr.Recv(ctx)
		cancel()
		if err != nil {
			return
		}
	}
}

// mustVolatileBootstrap builds a throwaway checkpointer for the bootstrap
// worker (its engine is never used; AgreeRaw goes straight to the
// coordinator).
func mustVolatileBootstrap() *pccheck.Checkpointer {
	ck, _, err := pccheck.CreateVolatile(pccheck.Config{MaxBytes: 64})
	if err != nil {
		panic(err)
	}
	return ck
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pccheck-disttrain: "+format+"\n", args...)
	os.Exit(1)
}
