// pccheck-metrics-lint validates Prometheus text exposition.
//
// With no flags it runs a self-check: it builds a Recorder and a goodput
// Ledger, emits at least one event of every pipeline phase (so every
// metric family the exporters can produce is present), serves /metrics on
// a loopback port, scrapes it, and parses every line — rejecting
// duplicate or malformed families. CI runs this so an exporter regression
// fails the build before a real scraper trips over it.
//
// With -url it lints a live endpoint instead:
//
//	pccheck-metrics-lint -url http://127.0.0.1:9090/metrics
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"pccheck/internal/obs"
	"pccheck/internal/promtext"
)

func main() {
	url := flag.String("url", "", "lint a live /metrics endpoint instead of the built-in self-check")
	flag.Parse()

	var err error
	if *url != "" {
		err = lintURL(*url)
	} else {
		err = selfCheck()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics-lint FAILED:", err)
		os.Exit(1)
	}
}

func lintURL(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	n, err := promtext.Lint(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("metrics-lint OK: %s, %d families\n", url, n)
	return nil
}

// selfCheck exercises every family the exporters can emit and lints the
// combined exposition.
func selfCheck() error {
	rec := obs.NewRecorder(0)
	led := obs.NewLedger(obs.LedgerConfig{SlowdownBudget: 1.05}, rec)

	// One event per phase so every per-phase summary and counter family
	// materialises, including the rank-labelled straggler families.
	now := time.Now().UnixNano()
	for p := obs.Phase(0); p < obs.PhaseCount; p++ {
		ev := obs.Event{
			TS: now, Phase: p, Counter: 1, Bytes: 1 << 20, Value: 1,
			Slot: 0, Writer: 0, Rank: 0, Attempt: 1,
		}
		if p.IsSpan() {
			ev.Dur = int64(time.Millisecond)
		}
		led.Emit(ev)
	}
	// Iteration hooks so the goodput/SLO gauges carry real values.
	for i := 0; i < 64; i++ {
		led.IterDone(time.Millisecond, i%8 == 0)
	}
	led.DrainDone(2 * time.Millisecond)
	led.AddRecovery(3 * time.Millisecond)

	srv, addr, err := obs.Serve("127.0.0.1:0", rec, led)
	if err != nil {
		return err
	}
	defer srv.Close()
	return lintURL("http://" + addr + "/metrics")
}
