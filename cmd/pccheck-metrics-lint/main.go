// pccheck-metrics-lint validates Prometheus text exposition.
//
// With no flags it runs a self-check: it builds a Recorder, a decision
// recorder and a goodput Ledger (chained ledger → decisions → recorder,
// the production order), emits at least one event of every pipeline phase
// and records one decision of every kind (so every metric family the
// exporters can produce is present), serves /metrics on a loopback port,
// scrapes it, and parses every line — rejecting duplicate or malformed
// families. CI runs this so an exporter regression fails the build before
// a real scraper trips over it.
//
// With -url it lints a live endpoint instead:
//
//	pccheck-metrics-lint -url http://127.0.0.1:9090/metrics
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"pccheck/internal/obs"
	"pccheck/internal/obs/blackbox"
	"pccheck/internal/obs/decision"
	"pccheck/internal/promtext"
	"pccheck/internal/storage"
)

func main() {
	url := flag.String("url", "", "lint a live /metrics endpoint instead of the built-in self-check")
	flag.Parse()

	var err error
	if *url != "" {
		err = lintURL(*url)
	} else {
		err = selfCheck()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics-lint FAILED:", err)
		os.Exit(1)
	}
}

func lintURL(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	n, err := promtext.Lint(resp.Body)
	if err != nil {
		return err
	}
	fmt.Printf("metrics-lint OK: %s, %d families\n", url, n)
	return nil
}

// selfCheck exercises every family the exporters can emit and lints the
// combined exposition.
func selfCheck() error {
	rec := obs.NewRecorder(0)
	dec := decision.New(decision.Config{}, rec)
	led := obs.NewLedger(obs.LedgerConfig{SlowdownBudget: 1.05}, dec)

	// One event per phase so every per-phase summary and counter family
	// materialises, including the rank-labelled straggler families.
	now := time.Now().UnixNano()
	for p := obs.Phase(0); p < obs.PhaseCount; p++ {
		ev := obs.Event{
			TS: now, Phase: p, Counter: 1, Bytes: 1 << 20, Value: 1,
			Slot: 0, Writer: 0, Rank: 0, Attempt: 1,
		}
		if p.IsSpan() {
			ev.Dur = int64(time.Millisecond)
		}
		led.Emit(ev)
	}
	// Iteration hooks so the goodput/SLO gauges carry real values.
	for i := 0; i < 64; i++ {
		led.IterDone(time.Millisecond, i%8 == 0)
	}
	led.DrainDone(2 * time.Millisecond)
	led.AddRecovery(3 * time.Millisecond)

	// One decision of every kind, so all pccheck_decision_* and
	// pccheck_regret_* families carry non-trivial values. The retune pends
	// until the next ledger block closes (scored via the measurement join);
	// the rest score immediately, exercising every RecordScored path.
	chosen := decision.Alternative{Action: "f=2", PredictedCost: 0.01, Feasible: true}
	alts := []decision.Alternative{
		{Action: "f=1", PredictedCost: 0.02, Feasible: true},
		{Action: "f=4", PredictedCost: 0.03, Feasible: false},
	}
	in := decision.Inputs{TwSeconds: 0.02, IterSeconds: 0.001, Q: 1.05, N: 2}
	dec.RecordRetune(in, chosen, alts)
	for i := 0; i < 64; i++ {
		led.IterDone(time.Millisecond, false)
	}
	dec.RecordScored(decision.KindTune, decision.Outcome{
		Inputs: in, Chosen: chosen, Rejected: alts,
		Measured: 0.011, Regret: 0.001, Outcome: "modeled", Rank: -1,
	})
	dec.RecordScored(decision.KindSlotAdmission, decision.Outcome{
		Inputs: in, Chosen: decision.Alternative{Action: "wait-for-slot", Feasible: true},
		Measured: 0.002, Regret: 0.002, Outcome: "admitted", Counter: 1,
	})
	dec.RecordScored(decision.KindRetry, decision.Outcome{
		Inputs: in, Chosen: decision.Alternative{Action: "retry(max=5)", Feasible: true},
		Measured: 0.004, Regret: 0.004, Outcome: "recovered", Counter: 2,
	})
	dec.RecordScored(decision.KindRepair, decision.Outcome{
		Inputs: in, Chosen: decision.Alternative{Action: "republish-from-tier-1", Feasible: true},
		Rejected: []decision.Alternative{{Action: "quarantine", Feasible: true}},
		Measured: 0.003, Outcome: "repaired", Counter: 2, Rank: -1,
	})
	dec.OpenDegraded(3, in, decision.Alternative{Action: "stall", Feasible: true},
		[]decision.Alternative{{Action: "exclude-dead", Feasible: true}})
	dec.ResolveDegraded(3, 0.005, "stalled-then-committed")
	dec.Finalize()

	// A black-box flusher over an in-memory region, flushed once, so the
	// pccheck_blackbox_* families are linted too.
	layout := blackbox.LayoutFor(64<<10, 4096)
	bbDev := storage.NewRAM(layout.RegionBytes())
	if err := blackbox.Format(bbDev, 0, 1, layout); err != nil {
		return err
	}
	journal, err := blackbox.OpenJournal(bbDev, 0, layout.RegionBytes(), 1)
	if err != nil {
		return err
	}
	flusher, err := blackbox.NewFlusher(journal, led, blackbox.Config{FlushEvery: -1})
	if err != nil {
		return err
	}
	if _, err := flusher.Flush(); err != nil {
		return err
	}

	srv, addr, err := obs.Serve("127.0.0.1:0", rec, led, dec, flusher)
	if err != nil {
		return err
	}
	defer srv.Close()
	url := "http://" + addr + "/metrics"
	if err := lintURL(url); err != nil {
		return err
	}
	return requireFamilies(url,
		"pccheck_flight_dropped_events_total",
		"pccheck_blackbox_flushes_total",
		"pccheck_blackbox_flush_errors_total",
		"pccheck_blackbox_flushed_bytes_total",
		"pccheck_blackbox_events_snapshotted_total",
		"pccheck_blackbox_last_seq",
		"pccheck_scrub_sweeps_total",
		"pccheck_scrub_bytes_total",
		"pccheck_scrub_corruptions_total",
		"pccheck_repairs_total",
		"pccheck_scrub_quarantines_total",
		"pccheck_tier_failover_total",
	)
}

// requireFamilies re-scrapes the endpoint and fails if any of the named
// metric families is missing — the forensics families must not silently
// drop out of the exposition.
func requireFamilies(url string, names ...string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	fams, err := promtext.Parse(resp.Body)
	if err != nil {
		return err
	}
	present := make(map[string]bool, len(fams))
	for _, f := range fams {
		present[f.Name] = true
	}
	for _, name := range names {
		if !present[name] {
			return fmt.Errorf("family %s missing from exposition", name)
		}
	}
	return nil
}
