// Command pccheck-trace generates and inspects spot-VM preemption traces,
// and replays them to compute training goodput for a given checkpointing
// configuration (§5.2.3).
//
// Examples:
//
//	pccheck-trace -seed 1                       # show the default trace
//	pccheck-trace -seed 1 -events 40 -hours 8   # a denser, longer trace
//	pccheck-trace -seed 1 -export trace.json    # persist for exact replay
//	pccheck-trace -load trace.json -replay -model BLOOM-7B -algo pccheck -interval 10
//
// With -forensics the command switches to post-mortem timeline mode: it
// decodes the black-box telemetry of a crashed checkpoint file into a
// Perfetto-loadable Chrome trace, with a "crash" instant marking the last
// pre-crash event. Passing -resumed with the (re-opened and since
// flushed) file — or a replica that kept running — appends the
// post-recovery events after the marker, giving one continuous timeline
// across the crash boundary; events already present pre-crash are
// deduplicated away.
//
//	pccheck-trace -forensics crashed.pcc -export timeline.json
//	pccheck-trace -forensics crashed-copy.pcc -resumed ckpt.pcc -export timeline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pccheck/internal/core"
	"pccheck/internal/figures"
	"pccheck/internal/obs"
	"pccheck/internal/perfmodel"
	"pccheck/internal/sim"
	"pccheck/internal/storage"
	"pccheck/internal/trace"
	"pccheck/internal/workload"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "trace generator seed")
		events    = flag.Int("events", 26, "number of availability changes")
		hours     = flag.Float64("hours", 3.5, "trace window in hours")
		cluster   = flag.Int("cluster", 64, "requested VM count")
		export    = flag.String("export", "", "write the trace as JSON to this file")
		load      = flag.String("load", "", "load a previously exported JSON trace instead of generating one")
		replay    = flag.Bool("replay", false, "replay the trace for a checkpointing configuration")
		model     = flag.String("model", "BLOOM-7B", "replay: model name from Table 3")
		algo      = flag.String("algo", "pccheck", "replay: pccheck, checkfreq, gpm or gemini")
		interval  = flag.Int("interval", 10, "replay: checkpoint interval f")
		forensics = flag.String("forensics", "", "crashed checkpoint file: export its black-box telemetry as a Perfetto timeline")
		resumed   = flag.String("resumed", "", "forensics: checkpoint file holding the post-recovery telemetry to merge after the crash marker")
	)
	flag.Parse()

	if *forensics != "" {
		exportForensics(*forensics, *resumed, *export)
		return
	}
	if *resumed != "" {
		fail("-resumed requires -forensics")
	}

	var tr trace.Trace
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fail("%v", err)
		}
		tr, err = trace.ReadJSON(f)
		f.Close()
		if err != nil {
			fail("%v", err)
		}
	} else {
		tr = trace.Synthetic(trace.SyntheticConfig{
			Seed:        *seed,
			Events:      *events,
			Duration:    time.Duration(*hours * float64(time.Hour)),
			ClusterSize: *cluster,
		})
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fail("%v", err)
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("wrote %s (%d events over %v)\n", *export, tr.Failures(), tr.Duration)
	}

	if !*replay {
		fmt.Printf("trace: %d VMs over %v, %d availability changes\n", tr.ClusterSize, tr.Duration, tr.Failures())
		avail := tr.ClusterSize
		for _, e := range tr.Events {
			avail += e.VMs
			kind := "preempted"
			n := -e.VMs
			if e.VMs > 0 {
				kind = "returned"
				n = e.VMs
			}
			fmt.Printf("  %8v  %2d VMs %-9s  →  %2d available\n", e.At.Round(time.Second), n, kind, avail)
		}
		return
	}

	m, err := workload.ByName(*model)
	if err != nil {
		fail("%v", err)
	}
	a, err := algoByName(*algo)
	if err != nil {
		fail("%v", err)
	}
	var cfg sim.Config
	if a == perfmodel.PCcheck {
		cfg = sim.Config{Algo: a, Model: m, Platform: workload.A100GCP, Interval: *interval, Concurrent: 2, Writers: 3}
	} else {
		cfg = sim.Config{Algo: a, Model: m, Platform: workload.A100GCP, Interval: *interval}
	}
	res, err := sim.Run(cfg)
	if err != nil {
		fail("%v", err)
	}
	g, err := figures.GoodputOf(a, m, workload.A100GCP, res, tr)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("%s / %s / f=%d on the trace:\n", m.Name, a, *interval)
	fmt.Printf("  failure-free throughput: %.4f iters/s (slowdown %.2f×)\n", res.Throughput, res.Slowdown)
	fmt.Printf("  mean rollback:           %.1f iterations\n", res.MeanLagIters)
	fmt.Printf("  goodput:                 %.4f iters/s over %d failures\n", g, tr.Failures())
}

// exportForensics merges pre-crash black-box events (from crashedPath)
// and post-recovery events (from resumedPath, optional) into one Chrome
// trace with a PhaseCrashMark instant between them.
func exportForensics(crashedPath, resumedPath, exportPath string) {
	preCrash := blackBoxEvents(crashedPath)
	if len(preCrash) == 0 {
		fail("%s: black box holds no events — nothing to export", crashedPath)
	}
	merged := make([]obs.Event, 0, len(preCrash)+1)
	merged = append(merged, preCrash...)

	// The crash marker lands right after the newest pre-crash event: the
	// gap between it and the first post-recovery event is the outage.
	lastTS := preCrash[len(preCrash)-1].TS
	merged = append(merged, obs.Event{
		Phase: obs.PhaseCrashMark, TS: lastTS + 1,
		Slot: -1, Writer: -1, Rank: -1,
	})

	if resumedPath != "" {
		seen := make(map[obs.Event]struct{}, len(preCrash))
		for _, ev := range preCrash {
			seen[ev] = struct{}{}
		}
		added := 0
		for _, ev := range blackBoxEvents(resumedPath) {
			// The resumed file usually *is* the crashed file re-opened, so
			// its box holds the pre-crash frames too; keep only what is new.
			if _, dup := seen[ev]; dup {
				continue
			}
			merged = append(merged, ev)
			added++
		}
		if added == 0 {
			fmt.Fprintf(os.Stderr, "pccheck-trace: warning: %s added no events beyond the crash point\n", resumedPath)
		}
	}

	out := os.Stdout
	if exportPath != "" {
		f, err := os.Create(exportPath)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		out = f
	}
	if err := obs.WriteTraceEvents(out, merged); err != nil {
		fail("%v", err)
	}
	if exportPath != "" {
		fmt.Printf("wrote %s (%d events, crash marker at +%v)\n",
			exportPath, len(merged), time.Duration(lastTS+1-preCrash[0].TS))
	}
}

// blackBoxEvents decodes a file's black box into its merged event
// timeline (sorted, deduplicated across overlapping frames).
func blackBoxEvents(path string) []obs.Event {
	dev, err := storage.ReopenSSD(path)
	if err != nil {
		fail("%v", err)
	}
	defer dev.Close()
	pm, err := core.PostMortem(dev)
	if err != nil {
		fail("%s: %v", path, err)
	}
	return pm.Events()
}

func algoByName(name string) (perfmodel.Algorithm, error) {
	for _, a := range []perfmodel.Algorithm{perfmodel.PCcheck, perfmodel.CheckFreq, perfmodel.GPM, perfmodel.Gemini, perfmodel.Traditional, perfmodel.Ideal} {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q", name)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pccheck-trace: "+format+"\n", args...)
	os.Exit(1)
}
