// Command pccheck-plan is a what-if planner for checkpoint configuration:
// given a workload and a failure regime (mean time between failures), it
// tabulates analytic goodput over a grid of checkpoint intervals and reports
// the optimum — the operator-facing face of Eq. (3) (§3.4) combined with the
// goodput accounting of §5.2.3.
//
// Examples:
//
//	pccheck-plan -model OPT-1.3B -mtbf 8m                  # spot-cluster regime
//	pccheck-plan -model BLOOM-7B -mtbf 45m -overhead 1.03  # Microsoft's MTBF
//	pccheck-plan -size 16GB -iter 650ms -mtbf 8m           # custom workload
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pccheck/internal/cliutil"
	"pccheck/internal/perfmodel"
	"pccheck/internal/workload"
)

func main() {
	var (
		model    = flag.String("model", "", "model name from Table 3 (or use -size/-iter)")
		sizeStr  = flag.String("size", "", "checkpoint size for custom workloads (e.g. 16GB)")
		iterDur  = flag.Duration("iter", 0, "iteration time for custom workloads (e.g. 650ms)")
		platform = flag.String("platform", "a100-gcp-ssd", "platform (a100-gcp-ssd, rtx-pmem, h100-azure-nvme)")
		mtbf     = flag.Duration("mtbf", 8*time.Minute, "mean time between failures")
		overhead = flag.Float64("overhead", 1.05, "overhead budget q for the f* line (> 1)")
		n        = flag.Int("n", 2, "concurrent checkpoints N")
		writers  = flag.Int("writers", 3, "writer threads p")
		maxF     = flag.Int("max-interval", 500, "largest interval to evaluate")
	)
	flag.Parse()

	p, err := workload.PlatformByName(*platform)
	if err != nil {
		fail("%v", err)
	}
	var m int64
	var t time.Duration
	var name string
	switch {
	case *model != "":
		w, err := workload.ByName(*model)
		if err != nil {
			fail("%v", err)
		}
		m = w.PartitionBytes()
		t = w.IterTimeOn(p)
		name = w.Name
		if t <= 0 {
			fail("model %s does not run on platform %s", name, p.Name)
		}
	case *sizeStr != "" && *iterDur > 0:
		if m, err = cliutil.ParseBytes(*sizeStr); err != nil {
			fail("bad -size: %v", err)
		}
		t = *iterDur
		name = "custom"
	default:
		fail("need -model, or -size together with -iter")
	}

	params := perfmodel.Params{
		IterTime:        t,
		CheckpointBytes: m,
		StorageBW:       p.StorageWriteBW,
		PerThreadBW:     p.PerThreadWriteBW,
		ReadBW:          p.StorageReadBW,
		N:               *n, P: *writers, Interval: 1,
	}

	fmt.Printf("%s on %s: m = %s, t = %v, N = %d, p = %d, MTBF = %v\n\n",
		name, p.Name, cliutil.FormatBytes(m), t, *n, *writers, *mtbf)

	if fstar, err := params.FStar(*overhead); err == nil {
		fmt.Printf("Eq. (3) minimum interval for ≤%.0f%% overhead: f* = %d iterations\n\n",
			(*overhead-1)*100, fstar)
	}

	fmt.Printf("%10s %12s %14s %16s\n", "interval", "slowdown", "recovery (s)", "goodput (it/s)")
	bestF, bestG, err := params.OptimalInterval(perfmodel.PCcheck, *mtbf, p.DiskAttach, *maxF)
	if err != nil {
		fail("%v", err)
	}
	for _, f := range []int{1, 5, 10, 25, 50, 100, 250, bestF} {
		if f > *maxF {
			continue
		}
		q := params
		q.Interval = f
		s, err := q.Slowdown()
		if err != nil {
			fail("%v", err)
		}
		rec, err := q.MeanRecovery(perfmodel.PCcheck)
		if err != nil {
			fail("%v", err)
		}
		g, err := q.GoodputAt(perfmodel.PCcheck, *mtbf, p.DiskAttach)
		if err != nil {
			fail("%v", err)
		}
		marker := ""
		if f == bestF {
			marker = "  ← optimum"
		}
		fmt.Printf("%10d %11.2f× %14.1f %16.4f%s\n", f, s, rec.Seconds(), g, marker)
	}
	fmt.Printf("\nbest goodput %.4f it/s at interval %d\n", bestG, bestF)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pccheck-plan: "+format+"\n", args...)
	os.Exit(1)
}
