package pccheck

import (
	"context"
	"math"
	"sync"
	"time"

	"pccheck/internal/obs/decision"
)

// AdaptiveLoop is the frequency-adaptation extension sketched at the end of
// §3.4 of the paper: "the optimal checkpoint frequency might vary throughout
// training due to contention for shared resources … We plan to extend
// PCcheck by monitoring training throughput and traffic between GPU, CPU,
// and storage, and adapt (3) accordingly."
//
// The loop continuously measures the iteration time t (from the cadence of
// Tick calls) and the per-checkpoint write time Tw (from completed Saves),
// both as exponentially weighted moving averages, and re-derives the
// checkpoint interval from Eq. (3):
//
//	f* = ceil(Tw / (N · q · t))
//
// so that the checkpointing overhead tracks the target q even as iteration
// times drift (input pipeline contention, activation offload) or the device
// slows under external load.
//
// Delta checkpointing (Config.Delta) folds in automatically: Tw is
// measured from completed Saves, so when deltas shrink the bytes persisted
// per save, the observed Tw drops and Eq. (3) re-derives a proportionally
// higher checkpoint frequency — the §3.4 model sees the effective
// bytes-per-save, not the logical checkpoint size.
type AdaptiveLoop struct {
	ck       *Checkpointer
	snapshot func() []byte
	obsv     Observer // cached from ck at construction; nil when off

	// ledger is set when the configured observer is a *Ledger: the loop
	// feeds it iteration timings and — closing the §3.4 loop — retunes
	// Eq. (3) from the ledger's engine-measured write time (queueing
	// excluded) instead of the goroutine-observed Save duration. lastIter
	// and pendCkpt are Tick-goroutine-only (single-producer contract).
	ledger   *Ledger
	lastIter time.Time
	pendCkpt bool

	// dec is the decision recorder found in the observer chain (nil when
	// none): every retune is recorded with the Eq. (3) candidate set it
	// rejected, and scored against the ledger's next measured block.
	dec *decision.Recorder

	q     float64 // overhead budget (> 1)
	n     int     // concurrent checkpoints
	alpha float64 // EWMA smoothing

	minInterval, maxInterval int

	// OnError, when non-nil, is invoked from the save goroutine with the
	// error of every failed Save, as it happens. Set it before the first
	// Tick; callbacks for concurrent Saves may run concurrently.
	OnError func(err error)

	mu       sync.Mutex
	idle     *sync.Cond // signalled when inflight returns to zero
	inflight int
	firstErr error
	failed   int
	lastTick time.Time
	ewmaIter float64 // seconds per iteration
	ewmaTw   float64 // seconds per checkpoint
	interval int     // current f
	sinceCkp int     // iterations since the last checkpoint
	saves    int
	adjusts  int
}

// AdaptiveConfig tunes the controller.
type AdaptiveConfig struct {
	// MaxOverhead is q, the target slowdown budget (e.g. 1.05). Required.
	MaxOverhead float64
	// InitialInterval seeds f before any measurement (default 10).
	InitialInterval int
	// MinInterval / MaxInterval clamp the adaptation (defaults 1 / 10000).
	MinInterval, MaxInterval int
	// Smoothing is the EWMA coefficient in (0, 1]; larger reacts faster
	// (default 0.2).
	Smoothing float64
}

// NewAdaptiveLoop builds the controller over a checkpointer. snapshot has
// the same contract as in NewLoop.
func NewAdaptiveLoop(ck *Checkpointer, cfg AdaptiveConfig, snapshot func() []byte) (*AdaptiveLoop, error) {
	if snapshot == nil {
		return nil, errRequired("snapshot function")
	}
	if cfg.MaxOverhead <= 1 {
		return nil, errRequired("MaxOverhead > 1")
	}
	if cfg.InitialInterval <= 0 {
		cfg.InitialInterval = 10
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = 1
	}
	if cfg.MaxInterval <= 0 {
		cfg.MaxInterval = 10000
	}
	if cfg.MaxInterval < cfg.MinInterval {
		return nil, errRequired("MaxInterval ≥ MinInterval")
	}
	if cfg.Smoothing <= 0 || cfg.Smoothing > 1 {
		cfg.Smoothing = 0.2
	}
	n := ck.engine.Config().Concurrent
	if n < 1 {
		n = 1
	}
	l := &AdaptiveLoop{
		ck:          ck,
		snapshot:    snapshot,
		obsv:        ck.Observer(),
		q:           cfg.MaxOverhead,
		n:           n,
		alpha:       cfg.Smoothing,
		minInterval: cfg.MinInterval,
		maxInterval: cfg.MaxInterval,
		interval:    clampInt(cfg.InitialInterval, cfg.MinInterval, cfg.MaxInterval),
	}
	l.ledger, _ = l.obsv.(*Ledger)
	l.dec = decision.Find(l.obsv)
	l.idle = sync.NewCond(&l.mu)
	return l, nil
}

type requiredError string

func (e requiredError) Error() string { return "pccheck: " + string(e) + " required" }

func errRequired(what string) error { return requiredError(what) }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Tick records the completion of one iteration; when the adaptive interval
// elapses it captures a snapshot and persists it concurrently, folding the
// measured persist time back into the interval. Tick is single-producer: it
// must be called from one goroutine (the training loop); Drain and the
// accessors may be called from any goroutine concurrently.
func (l *AdaptiveLoop) Tick(ctx context.Context) {
	now := time.Now()
	if l.ledger != nil {
		// The checkpointed flag rides one Tick behind the snapshot: the
		// capture of Tick n lands inside the n→n+1 gap (see Loop.Tick).
		if !l.lastIter.IsZero() {
			l.ledger.IterDone(now.Sub(l.lastIter), l.pendCkpt)
		}
		l.lastIter = now
		l.pendCkpt = false
	}
	l.mu.Lock()
	if !l.lastTick.IsZero() {
		dt := now.Sub(l.lastTick).Seconds()
		if l.ewmaIter == 0 {
			l.ewmaIter = dt
		} else {
			l.ewmaIter = l.alpha*dt + (1-l.alpha)*l.ewmaIter
		}
	}
	l.lastTick = now
	l.sinceCkp++
	due := l.sinceCkp >= l.interval
	if due {
		l.sinceCkp = 0
		l.saves++
		l.inflight++
	}
	l.mu.Unlock()
	if !due {
		return
	}

	var snapStart int64
	if l.obsv != nil {
		snapStart = time.Now().UnixNano()
	}
	payload := l.snapshot()
	if l.obsv != nil {
		l.obsv.Emit(Event{
			TS: snapStart, Dur: time.Now().UnixNano() - snapStart,
			Phase: PhaseSnapshot, Bytes: int64(len(payload)),
			Slot: -1, Writer: -1, Rank: -1,
		})
	}
	l.pendCkpt = true
	go func() {
		start := time.Now()
		_, err := l.ck.Save(ctx, payload)
		tw := time.Since(start).Seconds()
		l.mu.Lock()
		if err != nil {
			if l.firstErr == nil {
				l.firstErr = err
			}
			l.failed++
		} else {
			if l.ewmaTw == 0 {
				l.ewmaTw = tw
			} else {
				l.ewmaTw = l.alpha*tw + (1-l.alpha)*l.ewmaTw
			}
			l.retuneLocked()
		}
		l.inflight--
		if l.inflight == 0 {
			l.idle.Broadcast()
		}
		l.mu.Unlock()
		if err != nil {
			if cb := l.OnError; cb != nil {
				cb(err)
			}
		}
	}()
}

// retuneLocked applies Eq. (3) with the current measurements. When a
// goodput ledger is attached, its engine-measured write time (the Save
// span minus slot queueing) replaces the goroutine-observed Tw: queueing
// behind the N in-flight checkpoints is already paid for by the N in the
// denominator, so folding it into Tw would double-count and over-widen
// the interval.
func (l *AdaptiveLoop) retuneLocked() {
	tw := l.ewmaTw
	if l.ledger != nil {
		if m := l.ledger.ObservedTw(); m > 0 {
			tw = m.Seconds()
		}
	}
	if l.ewmaIter <= 0 || tw <= 0 {
		return
	}
	f := int(math.Ceil(tw / (float64(l.n) * l.q * l.ewmaIter)))
	prev := l.interval
	l.interval = clampInt(f, l.minInterval, l.maxInterval)
	l.adjusts++
	if l.dec != nil {
		l.recordRetuneLocked(tw, prev)
	}
	if l.obsv != nil && l.interval != prev {
		// Instant on the loop track: the controller re-derived f. Value
		// carries the new interval so traces show the adaptation trajectory.
		l.obsv.Emit(Event{
			TS: time.Now().UnixNano(), Phase: PhaseRetune,
			Value: int64(l.interval), Slot: -1, Writer: -1, Rank: -1,
		})
	}
}

// recordRetuneLocked logs the retune just applied — the measured Eq. (3)
// inputs, the chosen interval, and the candidate intervals the model scored
// worse — as a pending decision the ledger's next slowdown block will join
// into measured regret. q (MaxOverhead) is already a slowdown bound > 1,
// matching the candidate feasibility test directly.
func (l *AdaptiveLoop) recordRetuneLocked(tw float64, prev int) {
	chosen, rejected := decision.RetuneCandidates(
		tw, l.ewmaIter, l.q, l.n, l.interval, prev,
		l.minInterval, l.maxInterval, l.dec.FailureRate())
	in := decision.Inputs{
		TwSeconds:   tw,
		IterSeconds: l.ewmaIter,
		Q:           l.q,
		N:           l.n,
	}
	if cfg := l.ck.engine.Config(); cfg.SlotBytes > 0 {
		in.PayloadBytes = cfg.SlotBytes
	}
	if l.ledger != nil {
		_, in.InBreach = l.ledger.Breach()
	}
	l.dec.RecordRetune(in, chosen, rejected)
}

// Interval returns the current checkpoint interval f.
func (l *AdaptiveLoop) Interval() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.interval
}

// Measurements returns the current EWMA iteration time and checkpoint write
// time, for monitoring.
func (l *AdaptiveLoop) Measurements() (iterTime, tw time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Duration(l.ewmaIter * float64(time.Second)),
		time.Duration(l.ewmaTw * float64(time.Second))
}

// Saves returns how many checkpoints were initiated; Adjustments how often
// the interval was re-derived.
func (l *AdaptiveLoop) Saves() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.saves
}

// Adjustments returns the number of interval re-derivations so far.
func (l *AdaptiveLoop) Adjustments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.adjusts
}

// Drain waits for all in-flight Saves and returns the first error any Save
// has hit since the loop was created. Like Loop.Drain it is idempotent and
// safe to call from any goroutine while Ticks continue.
func (l *AdaptiveLoop) Drain() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Close out pending decisions (retunes still waiting for a ledger
	// block) so a post-Drain export covers every decision made.
	defer l.dec.Finalize()
	if l.inflight > 0 && l.ledger != nil {
		start := time.Now()
		for l.inflight > 0 {
			l.idle.Wait()
		}
		l.ledger.DrainDone(time.Since(start))
		return l.firstErr
	}
	for l.inflight > 0 {
		l.idle.Wait()
	}
	return l.firstErr
}

// FailedSaves returns how many initiated Saves failed.
func (l *AdaptiveLoop) FailedSaves() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}
