module pccheck

go 1.22
