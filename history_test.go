package pccheck

import (
	"bytes"
	"context"
	"io"
	"path/filepath"
	"testing"
)

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.pcar")
	h, err := OpenHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[uint64][]byte{}
	for c := uint64(1); c <= 4; c++ {
		p := randomPayload(int64(c), 256)
		payloads[c] = p
		if err := h.Append(c, p); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 4 {
		t.Fatalf("Len = %d", h.Len())
	}
	for _, e := range h.List() {
		got, err := h.Load(e.Counter)
		if err != nil || !bytes.Equal(got, payloads[e.Counter]) {
			t.Fatalf("entry %d: %v", e.Counter, err)
		}
	}
	if err := h.Compact(2); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("Len after compact = %d", h.Len())
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Survives reopen.
	h2, err := OpenHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if h2.Len() != 2 {
		t.Fatalf("reopened Len = %d", h2.Len())
	}
}

// The History composes with the Checkpointer: every published checkpoint
// teed into the archive remains loadable even after the engine has
// overwritten its slot.
func TestHistoryWithCheckpointer(t *testing.T) {
	dir := t.TempDir()
	ck, err := Create(filepath.Join(dir, "ckpt.pcc"), Config{MaxBytes: 1024, Concurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	h, err := OpenHistory(filepath.Join(dir, "hist.pcar"))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	var payloads [][]byte
	for i := 0; i < 6; i++ {
		p := randomPayload(int64(i), 500)
		payloads = append(payloads, p)
		counter, err := ck.Save(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Append(counter, p); err != nil {
			t.Fatal(err)
		}
	}
	// The engine's two slots only retain the newest checkpoint; the
	// archive retains all six.
	for c := uint64(1); c <= 6; c++ {
		got, err := h.Load(c)
		if err != nil || !bytes.Equal(got, payloads[c-1]) {
			t.Fatalf("history entry %d: %v", c, err)
		}
	}
}

func TestRecoveryStreamFull(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.pcc")
	ck, err := Create(path, Config{MaxBytes: 64 << 10, Concurrent: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	want := randomPayload(3, 64<<10)
	if _, err := ck.Save(context.Background(), want); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenRecoveryStream(path, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 64<<10 || s.Counter() != 1 {
		t.Fatalf("stream geometry: %d/%d", s.Size(), s.Counter())
	}
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("streamed restore mismatch")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryStreamResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.pcc")
	ck, err := Create(path, Config{MaxBytes: 40 << 10, Concurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := randomPayload(4, 40<<10)
	if _, err := ck.Save(context.Background(), want); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	// First attempt restores a quarter, then "crashes" (Close without
	// completing keeps the cursor).
	s1, err := OpenRecoveryStream(path, 5<<10)
	if err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 10<<10)
	if _, err := io.ReadFull(s1, head); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second attempt resumes past the restored prefix.
	s2, err := OpenRecoveryStream(path, 5<<10)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Position() != 10<<10 {
		t.Fatalf("resumed at %d, want %d", s2.Position(), 10<<10)
	}
	rest, err := io.ReadAll(s2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := append(head, rest...); !bytes.Equal(got, want) {
		t.Fatal("resumed restore mismatch")
	}

	// Completed restore cleared the cursor: a third stream starts fresh.
	s3, err := OpenRecoveryStream(path, 5<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Position() != 0 {
		t.Fatalf("cursor not cleared: %d", s3.Position())
	}
	// Restart also rewinds mid-flight.
	chunk := make([]byte, 5<<10)
	if _, err := s3.Read(chunk); err != nil {
		t.Fatal(err)
	}
	if err := s3.Restart(); err != nil {
		t.Fatal(err)
	}
	if s3.Position() != 0 {
		t.Fatalf("Restart left position %d", s3.Position())
	}
}

func TestRecoveryStreamEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.pcc")
	ck, err := Create(path, Config{MaxBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRecoveryStream(path, 0); !IsNoCheckpoint(err) {
		t.Fatalf("err = %v", err)
	}
}
