package pccheck

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pccheck/internal/train"
)

func randomPayload(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestCreateSaveRecoverFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.pcc")
	ck, err := Create(path, Config{MaxBytes: 4096, Concurrent: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	want := randomPayload(1, 3000)
	counter, err := ck.Save(context.Background(), want)
	if err != nil {
		t.Fatal(err)
	}
	if counter != 1 {
		t.Fatalf("counter = %d", counter)
	}
	got, gc, err := ck.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if gc != 1 || !bytes.Equal(got, want) {
		t.Fatal("LoadLatest mismatch")
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	// Cold-start recovery.
	p, rc, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rc != 1 || !bytes.Equal(p, want) {
		t.Fatal("RecoverFile mismatch")
	}
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "x"), Config{}); err == nil {
		t.Fatal("MaxBytes=0 accepted")
	}
	if _, _, err := CreateVolatile(Config{}); err == nil {
		t.Fatal("volatile MaxBytes=0 accepted")
	}
}

func TestOpenContinuesSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.pcc")
	ck, err := Create(path, Config{MaxBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ck.Save(context.Background(), randomPayload(int64(i), 500)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	ck2, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	counter, _, ok := ck2.Latest()
	if !ok || counter != 3 {
		t.Fatalf("recovered counter %d", counter)
	}
	next, err := ck2.Save(context.Background(), randomPayload(9, 100))
	if err != nil {
		t.Fatal(err)
	}
	if next != 4 {
		t.Fatalf("next counter %d, want 4", next)
	}
}

func TestSaveFrom(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 2048, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	want := randomPayload(5, 2000)
	_, err = ck.SaveFrom(context.Background(), int64(len(want)), func(p []byte, off int64) error {
		copy(p, want[off:])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ck.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("SaveFrom mismatch")
	}
}

func TestVolatileCrashSemantics(t *testing.T) {
	ck, mem, err := CreateVolatile(Config{MaxBytes: 1024, Concurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if _, _, err := mem.ForkCrashed(); !IsNoCheckpoint(err) {
		t.Fatalf("empty fork err = %v", err)
	}
	want := randomPayload(2, 900)
	if _, err := ck.Save(context.Background(), want); err != nil {
		t.Fatal(err)
	}
	p, counter, err := mem.ForkCrashed()
	if err != nil {
		t.Fatal(err)
	}
	if counter != 1 || !bytes.Equal(p, want) {
		t.Fatal("ForkCrashed mismatch")
	}
	// A hard crash preserves the checkpoint on the live region too.
	mem.Crash()
	p2, c2, err := mem.ForkCrashed()
	if err != nil {
		t.Fatal(err)
	}
	if c2 != 1 || !bytes.Equal(p2, want) {
		t.Fatal("post-Crash recovery mismatch")
	}
}

func TestConcurrentSaves(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 4096, Concurrent: 3, Writers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				if _, err := ck.Save(context.Background(), randomPayload(int64(w*100+r), 2048)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := ck.Stats()
	if st.Published+st.Obsolete != 120 {
		t.Fatalf("stats %+v", st)
	}
	if st.BytesWritten == 0 || st.PersistTime == 0 {
		t.Fatalf("counters not recorded: %+v", st)
	}
}

func TestLoopCadence(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 1024, Concurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	var snaps int
	loop, err := NewLoop(ck, 10, func() []byte {
		snaps++
		return randomPayload(int64(snaps), 512)
	})
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 100; it++ {
		loop.Tick(context.Background(), it)
	}
	if err := loop.Drain(); err != nil {
		t.Fatal(err)
	}
	if snaps != 10 || loop.Saves() != 10 {
		t.Fatalf("snapshots %d, saves %d; want 10 each", snaps, loop.Saves())
	}
	counter, _, ok := ck.Latest()
	if !ok || counter != 10 {
		t.Fatalf("latest counter %d", counter)
	}
}

func TestLoopValidation(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if _, err := NewLoop(ck, 0, func() []byte { return nil }); err == nil {
		t.Fatal("interval 0 accepted")
	}
	if _, err := NewLoop(ck, 1, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

func TestTuneProducesUsableConfig(t *testing.T) {
	dir := t.TempDir()
	res, err := Tune(filepath.Join(dir, "profile.pcc"), TuneInput{
		IterTime:        2 * time.Millisecond,
		CheckpointBytes: 64 << 10,
		MaxOverhead:     1.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Concurrent < 1 || res.Config.Writers < 1 || res.Interval < 1 {
		t.Fatalf("degenerate tune result: %+v", res)
	}
	ck, err := Create(filepath.Join(dir, "ckpt.pcc"), res.Config)
	if err != nil {
		t.Fatalf("tuned config unusable: %v", err)
	}
	defer ck.Close()
	if _, err := ck.Save(context.Background(), randomPayload(1, 64<<10)); err != nil {
		t.Fatal(err)
	}
}

func TestTuneValidation(t *testing.T) {
	if _, err := Tune(filepath.Join(t.TempDir(), "x"), TuneInput{}); err == nil {
		t.Fatal("zero input accepted")
	}
}

// TestEndToEndTrainingCrashResume is the flagship integration test: train a
// real model with periodic concurrent checkpointing, crash, restore from the
// recovered bytes, finish training, and require bit-identical parameters to
// an uninterrupted run.
func TestEndToEndTrainingCrashResume(t *testing.T) {
	const interval, crashAfter, total = 5, 23, 60

	makeTrainer := func() *train.Trainer {
		m, err := train.NewMLP(42, []int{16, 32, 4})
		if err != nil {
			t.Fatal(err)
		}
		data, err := train.NewSynthetic(7, 16, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := train.NewTrainer(m, train.NewAdam(m.Params(), 0.005), data)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	// Reference: uninterrupted run.
	ref := makeTrainer()
	for i := 0; i < total; i++ {
		if _, err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}

	// Crashing run with concurrent checkpointing every `interval` steps.
	tr := makeTrainer()
	ck, mem, err := CreateVolatile(Config{
		MaxBytes:   int64(tr.StateSize()),
		Concurrent: 2,
		Writers:    2,
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	loop, err := NewLoop(ck, interval, func() []byte {
		buf := make([]byte, tr.StateSize())
		if _, err := tr.Snapshot(buf); err != nil {
			t.Error(err)
		}
		return buf
	})
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < crashAfter; it++ {
		if _, err := tr.Step(); err != nil {
			t.Fatal(err)
		}
		loop.Tick(context.Background(), it)
	}
	if err := loop.Drain(); err != nil {
		t.Fatal(err)
	}
	// Power failure.
	state, counter, err := mem.ForkCrashed()
	if err != nil {
		t.Fatal(err)
	}
	if counter == 0 {
		t.Fatal("no checkpoint survived")
	}

	// Restart in a "new process".
	resumed := makeTrainer()
	if err := resumed.Restore(state); err != nil {
		t.Fatal(err)
	}
	// The recovered iteration must be a multiple of the interval ≤ crashAfter.
	if got := resumed.Iteration(); got%interval != 0 || got == 0 || got > crashAfter {
		t.Fatalf("recovered at iteration %d", got)
	}
	for resumed.Iteration() < total {
		if _, err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	pa, pb := ref.Model.Params(), resumed.Model.Params()
	for i := range pa {
		if !pa[i].Equal(pb[i]) {
			t.Fatalf("resumed training diverged from uninterrupted run at tensor %d", i)
		}
	}
}

func TestCreateOpenErrorPaths(t *testing.T) {
	if _, err := Create("/nonexistent-dir/x.pcc", Config{MaxBytes: 64}); err == nil {
		t.Fatal("Create in missing directory succeeded")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing.pcc"), Config{}); err == nil {
		t.Fatal("Open of missing file succeeded")
	}
	// Open of a non-checkpoint file fails with ErrNotFormatted.
	junk := filepath.Join(t.TempDir(), "junk")
	if err := osWrite(junk, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(junk, Config{}); err == nil {
		t.Fatal("Open of junk file succeeded")
	}
	if _, _, err := RecoverFile(junk); err == nil {
		t.Fatal("RecoverFile of junk succeeded")
	}
}

func TestSaveTooLargeAndAfterClose(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Save(context.Background(), make([]byte, 256)); err == nil {
		t.Fatal("oversize Save succeeded")
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Save(context.Background(), make([]byte, 64)); err == nil {
		t.Fatal("Save after Close succeeded")
	}
}

func TestLoadVersionPublicAPI(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 256, Concurrent: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	first := randomPayload(1, 200)
	if _, err := ck.Save(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Save(context.Background(), randomPayload(2, 200)); err != nil {
		t.Fatal(err)
	}
	got, err := ck.LoadVersion(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, first) {
		t.Fatal("LoadVersion(1) mismatch")
	}
	if _, err := ck.LoadVersion(42); !IsNoCheckpoint(err) {
		t.Fatalf("LoadVersion(42) err = %v", err)
	}
}

func TestSetWriterBandwidthPublicAPI(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 1 << 20, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	ck.SetWriterBandwidth(4 << 20) // 4 MB/s ⇒ 1 MB takes ~250 ms
	start := time.Now()
	if _, err := ck.Save(context.Background(), make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	paced := time.Since(start)
	if paced < 100*time.Millisecond {
		t.Fatalf("paced save finished in %v", paced)
	}
	ck.SetWriterBandwidth(-5) // negative unpaces rather than breaking
	// Compare the best of three unpaced saves against the paced run rather
	// than an absolute wall-clock bound: machine load (e.g. the race
	// detector running the whole suite) can stall any single save, but a
	// repeated stall past the deliberately slow paced floor is a real bug.
	unpaced := time.Hour
	for i := 0; i < 3; i++ {
		start = time.Now()
		if _, err := ck.Save(context.Background(), make([]byte, 1<<20)); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < unpaced {
			unpaced = d
		}
	}
	if unpaced >= paced {
		t.Fatalf("unpaced save took %v, not faster than paced save (%v)", unpaced, paced)
	}
}

func osWrite(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
