package pccheck

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	"pccheck/internal/promtext"
)

// runLedgerTraining drives a deterministic training loop — fixed-duration
// iterations with a sleeping snapshot standing in for the D2H copy — with a
// goodput ledger attached, and returns the ledger plus the external
// stopwatch measurement of the measured window.
func runLedgerTraining(t *testing.T, cfg LedgerConfig, iters, interval int, iterTime, snapTime time.Duration) (*Ledger, *Recorder, time.Duration) {
	t.Helper()
	rec := NewFlightRecorder(0)
	led := NewLedger(cfg, rec)
	payload := make([]byte, 64<<10)
	ck, _, err := CreateVolatile(Config{
		MaxBytes:    int64(len(payload)),
		Concurrent:  2,
		Writers:     2,
		PerWriterBW: 32 << 20,
		Observer:    led,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ck.Close() })

	loop, err := NewLoop(ck, interval, func() []byte {
		time.Sleep(snapTime)
		return payload
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	start := time.Now()
	for it := 0; it < iters; it++ {
		time.Sleep(iterTime)
		loop.Tick(ctx, it)
	}
	if err := loop.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return led, rec, time.Since(start)
}

// TestGoodputLedgerAcceptance is the PR's headline acceptance test: on a
// deterministic run the ledger's attribution must sum to wall-clock within
// 5%, the observed slowdown must sit inside a generous budget with no
// breaches, and the /metrics endpoint must expose plausible goodput and
// staleness gauges.
func TestGoodputLedgerAcceptance(t *testing.T) {
	const (
		iters    = 150
		interval = 10
		iterTime = 2 * time.Millisecond
		snapTime = 4 * time.Millisecond
	)
	led, rec, stopwatch := runLedgerTraining(t, LedgerConfig{
		SlowdownBudget:   3.0,
		BaselineIterTime: iterTime,
	}, iters, interval, iterTime, snapTime)
	rep := led.Report()

	// (a) Attribution closes the books: the buckets must reconstruct the
	// ledger's wall-clock exactly, and the ledger's wall-clock must track
	// the external stopwatch within 5% (the first iteration falls before
	// the first Tick boundary and is legitimately unmeasured).
	buckets := rep.ComputeSeconds + rep.Stall(StallSnapshot) + rep.DrainSeconds + rep.RecoverySeconds
	if math.Abs(buckets-rep.WallSeconds) > 0.01*rep.WallSeconds {
		t.Errorf("buckets %.4fs do not reconstruct ledger wall %.4fs", buckets, rep.WallSeconds)
	}
	if diff := math.Abs(rep.WallSeconds - stopwatch.Seconds()); diff > 0.05*stopwatch.Seconds() {
		t.Errorf("ledger wall %.4fs vs stopwatch %.4fs: off by %.4fs (> 5%%)",
			rep.WallSeconds, stopwatch.Seconds(), diff)
	}
	if rep.Iterations < iters-1 {
		t.Errorf("iterations = %d, want ≥ %d", rep.Iterations, iters-1)
	}
	wantCkpt := uint64(iters / interval)
	if rep.CheckpointIterations < wantCkpt-2 || rep.CheckpointIterations > wantCkpt {
		t.Errorf("checkpoint iterations = %d, want ≈ %d", rep.CheckpointIterations, wantCkpt)
	}
	if rep.Stall(StallSnapshot) <= 0 {
		t.Error("sleeping snapshot produced no snapshot stall")
	}

	// (b) A generous budget holds: expected slowdown ≈ (t + Tsnap/f)/t =
	// 1.2, far below q = 3 even with scheduler noise.
	if rep.ObservedSlowdown <= 0 || rep.ObservedSlowdown > 3.0 {
		t.Errorf("observed slowdown %.3f outside (0, 3.0]", rep.ObservedSlowdown)
	}
	if rep.BudgetBreaches != 0 || rep.InBreach {
		t.Errorf("breaches = %d (in breach %v) under generous budget", rep.BudgetBreaches, rep.InBreach)
	}
	if rep.GoodputRatio <= 0 || rep.GoodputRatio > 1 {
		t.Errorf("goodput ratio %.3f outside (0, 1]", rep.GoodputRatio)
	}

	// (c) The gauges on /metrics agree with the report.
	srv, bound, err := ServeMetrics("127.0.0.1:0", rec, led)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", bound))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatalf("metrics exposition does not lint: %v", err)
	}
	byName := map[string]promtext.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	goodput := byName["pccheck_goodput_ratio"]
	if v, ok := goodput.Value(); !ok || v <= 0 || v > 1 {
		t.Errorf("pccheck_goodput_ratio = %v (present %v), want in (0, 1]", v, ok)
	}
	staleness := byName["pccheck_checkpoint_staleness_seconds"]
	if v, ok := staleness.Value(); !ok || v < 0 || v > 60 {
		t.Errorf("pccheck_checkpoint_staleness_seconds = %v (present %v), want in [0, 60)", v, ok)
	}
}

// TestGoodputLedgerBreachInRealRun sets the budget below what the workload
// can achieve — every checkpoint block runs ≥ 1.6× baseline — and expects
// the breach counter to fire during a real training loop.
func TestGoodputLedgerBreachInRealRun(t *testing.T) {
	const iterTime = 2 * time.Millisecond
	led, _, _ := runLedgerTraining(t, LedgerConfig{
		SlowdownBudget:   1.01,
		BaselineIterTime: iterTime,
		Smoothing:        1, // each block sets the EWMA directly
		Window:           5,
	}, 40, 5, iterTime, 3*iterTime)
	rep := led.Report()
	if rep.BudgetBreaches == 0 {
		t.Errorf("no breach fired with q=1.01 and slowdown %.3f", rep.ObservedSlowdown)
	}
	if rep.ObservedSlowdown <= 1.01 {
		t.Errorf("observed slowdown %.3f, want > budget 1.01", rep.ObservedSlowdown)
	}
}

// TestGoodputSaveAllocParity: attaching a ledger (chained into a recorder)
// must not add a single allocation to Save relative to the nil-observer
// baseline — the acceptance gate for the zero-overhead hot path.
func TestGoodputSaveAllocParity(t *testing.T) {
	payload := make([]byte, 4<<10)
	mk := func(o Observer) *Checkpointer {
		ck, _, err := CreateVolatile(Config{MaxBytes: int64(len(payload)), Concurrent: 1, Writers: 1, Observer: o})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ck.Close() })
		return ck
	}
	ctx := context.Background()
	measure := func(ck *Checkpointer) float64 {
		for i := 0; i < 3; i++ {
			if _, err := ck.Save(ctx, payload); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := ck.Save(ctx, payload); err != nil {
				t.Fatal(err)
			}
		})
	}
	baseline := measure(mk(nil))
	withLedger := measure(mk(NewLedger(LedgerConfig{SlowdownBudget: 1.05}, NewFlightRecorder(0))))
	if withLedger > baseline {
		t.Errorf("ledger path allocates %.1f/save vs %.1f baseline", withLedger, baseline)
	}
}

// TestGoodputStragglerTable runs a world of 3 in-process workers where rank
// 2 is artificially delayed before every save; rank 0's coordinator sees
// every rank's report arrive, so rank 0's ledger must name rank 2 as the
// dominant straggler.
func TestGoodputStragglerTable(t *testing.T) {
	const world, rounds = 3, 6
	transports := NewLocalTransports(world)
	led := NewLedger(LedgerConfig{SlowdownBudget: 1.1}, nil)
	workers := make([]*Worker, world)
	for rank := 0; rank < world; rank++ {
		var obsv Observer
		if rank == 0 {
			obsv = led
		}
		ck, _, err := CreateVolatile(Config{MaxBytes: 1024, Concurrent: 2, Writers: 2, Observer: obsv})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ck.Close() })
		w, err := NewWorker(ck, transports[rank])
		if err != nil {
			t.Fatal(err)
		}
		workers[rank] = w
	}

	ctx := context.Background()
	payload := make([]byte, 512)
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for rank, w := range workers {
			wg.Add(1)
			go func(rank int, w *Worker) {
				defer wg.Done()
				if rank == 2 {
					time.Sleep(15 * time.Millisecond)
				}
				if _, err := w.SaveConsistent(ctx, payload); err != nil {
					t.Errorf("rank %d round %d: %v", rank, round, err)
				}
			}(rank, w)
		}
		wg.Wait()
	}

	rep := led.Report()
	if len(rep.Stragglers) == 0 {
		t.Fatal("straggler table empty on rank 0")
	}
	top := rep.Stragglers[0]
	if top.Rank != 2 {
		t.Fatalf("top straggler = rank %d (%+v), want rank 2", top.Rank, rep.Stragglers)
	}
	if top.GatedRounds < rounds-2 {
		t.Errorf("rank 2 gated %d rounds, want ≥ %d of %d", top.GatedRounds, rounds-2, rounds)
	}
	if top.GateLagSeconds <= 0 {
		t.Errorf("rank 2 gate lag = %.4fs, want > 0", top.GateLagSeconds)
	}
}
