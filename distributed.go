package pccheck

import (
	"context"
	"fmt"
	"net"
	"time"

	"pccheck/internal/dist"
)

// Distributed checkpointing (§3.1, §4.1 of the paper): in pipeline-parallel
// or fully-sharded training every worker owns a partition of the model state
// and checkpoints it to its own device. Because checkpoints complete at
// different times on different workers, a restore must not mix iterations:
// the workers agree — through rank 0 — on the latest *globally consistent*
// checkpoint, the newest ID that every worker has durably persisted.
//
// Worker wraps a local Checkpointer with that agreement: SaveConsistent
// persists the partition locally, reports the publication to rank 0, and
// returns the round's agreed ID. On restore, LoadConsistent rejects local
// checkpoints newer than the cluster-wide agreement.

// Transport moves coordination messages between workers. Obtain one from
// NewLocalTransports (same-process workers) or ListenLeader/DialWorker
// (TCP).
type Transport = dist.Transport

// NewLocalTransports wires n same-process workers (rank i gets element i).
func NewLocalTransports(n int) []Transport {
	locals := dist.NewLocalGroup(n)
	out := make([]Transport, n)
	for i, l := range locals {
		out[i] = l
	}
	return out
}

// ListenLeader starts rank 0's side of a TCP worker group: it blocks until
// world−1 workers have dialed in.
func ListenLeader(ctx context.Context, ln net.Listener, world int) (Transport, error) {
	return dist.ListenTCP(ctx, ln, world)
}

// DialWorker connects rank (1 ≤ rank < world) to rank 0 at addr, retrying
// with backoff while the leader comes up (see dist.RetryPolicy defaults).
func DialWorker(ctx context.Context, addr string, rank, world int) (Transport, error) {
	return dist.DialTCP(ctx, addr, rank, world)
}

// DialOptions tunes DialWorkerWith: the session epoch presented in the
// handshake (a restarted worker presents a fresh one, which is how rank 0
// tells a rejoin from a duplicate) and the connect retry policy.
type DialOptions = dist.DialOptions

// DialRetryPolicy bounds DialWorker's connect retries (distinct from the
// persist path's RetryPolicy, which governs I/O retries).
type DialRetryPolicy = dist.RetryPolicy

// DialWorkerWith is DialWorker with explicit session epoch and retry policy.
func DialWorkerWith(ctx context.Context, addr string, rank, world int, opts DialOptions) (Transport, error) {
	return dist.DialTCPWith(ctx, addr, rank, world, opts)
}

// DegradedPolicy selects what a round does when a rank is dead (§4.1: the
// paper's protocol blocks on every rank; ExcludeDead trades global coverage
// for availability).
type DegradedPolicy = dist.DegradedPolicy

const (
	// Stall is the paper-faithful default: a round completes only when every
	// rank reports, so a dead rank halts global progress (checkpoints still
	// persist locally) until it returns.
	Stall = dist.Stall
	// ExcludeDead lets rank 0 commit the minimum over live ranks once dead
	// ranks are detected, keeping goodput nonzero through a failure. A
	// revived rank must resync before its local state counts again.
	ExcludeDead = dist.ExcludeDead
)

// DistConfig tunes failure detection and degraded-mode commit for a worker
// group. The zero value gives 1s heartbeats, 5s death-by-silence, no commit
// deadline, and the Stall policy.
type DistConfig = dist.CoordConfig

// PartitionRange splits total bytes of model state into per-worker shards:
// worker rank owns [off, off+n).
func PartitionRange(total int64, rank, world int) (off, n int64, err error) {
	return dist.PartitionRange(total, rank, world)
}

// Worker is one rank's distributed checkpointer.
type Worker struct {
	ck    *Checkpointer
	tr    Transport
	coord *dist.Coordinator
}

// NewWorker binds a local checkpointer to a coordination transport. The
// caller keeps ownership of both (Close them after the worker). The
// checkpointer's observer, when set, also receives the coordination
// events: per-rank agree spans from this worker and — on rank 0 — one
// PhaseAgreeGate straggler record per committed round.
func NewWorker(ck *Checkpointer, tr Transport) (*Worker, error) {
	return NewWorkerWith(ck, tr, DistConfig{})
}

// NewWorkerWith is NewWorker with explicit failure-detection and
// degraded-commit configuration. Every rank in a group must use the same
// DistConfig — in particular the same Degraded policy, since rank 0 decides
// when a round commits.
func NewWorkerWith(ck *Checkpointer, tr Transport, cfg DistConfig) (*Worker, error) {
	if ck == nil || tr == nil {
		return nil, fmt.Errorf("pccheck: NewWorker needs a checkpointer and a transport")
	}
	w := &Worker{ck: ck, tr: tr, coord: dist.NewCoordinatorWith(tr, cfg)}
	if obsv := ck.Observer(); obsv != nil {
		w.coord.SetObserver(obsv)
	}
	return w, nil
}

// Rank returns this worker's rank.
func (w *Worker) Rank() int { return w.tr.Rank() }

// WorldSize returns the number of workers in the group.
func (w *Worker) WorldSize() int { return w.tr.WorldSize() }

// SaveConsistent persists this worker's partition and completes the
// coordination round, returning the globally consistent checkpoint ID the
// group agreed on (≤ the local ID if some peer lags). Every worker must
// call SaveConsistent the same number of times; like the local Save, calls
// may run concurrently up to the checkpointer's Concurrent limit, and the
// coordination adds a network round trip that is negligible against the
// persist (§3.1).
func (w *Worker) SaveConsistent(ctx context.Context, payload []byte) (agreed uint64, err error) {
	counter, err := w.ck.Save(ctx, payload)
	if err != nil {
		return 0, err
	}
	return w.agree(ctx, counter)
}

// agree runs one coordination round, recording it as a per-rank span when
// the local checkpointer has an observer. Value carries the publish lag —
// how far this rank's local counter ran ahead of the group agreement — the
// signal for which rank is the straggler of a round.
func (w *Worker) agree(ctx context.Context, counter uint64) (uint64, error) {
	obsv := w.ck.Observer()
	var start int64
	if obsv != nil {
		start = time.Now().UnixNano()
	}
	agreed, err := w.coord.Commit(ctx, counter)
	if obsv != nil && err == nil {
		var lag int64
		if counter > agreed {
			lag = int64(counter - agreed)
		}
		obsv.Emit(Event{
			TS: start, Dur: time.Now().UnixNano() - start,
			Phase: PhaseAgree, Counter: counter, Value: lag,
			Slot: -1, Writer: -1, Rank: int32(w.Rank()),
		})
	}
	return agreed, err
}

// AgreeRaw runs one coordination round on an arbitrary ID without saving
// anything, returning the group minimum. Restarted groups use it to
// re-agree on a common resume point before fresh engines are created (the
// IDs can then be iteration numbers rather than engine counters).
func (w *Worker) AgreeRaw(ctx context.Context, id uint64) (uint64, error) {
	return w.agree(ctx, id)
}

// LatestConsistent returns the newest globally consistent checkpoint ID
// this worker has observed (0 = none).
func (w *Worker) LatestConsistent() uint64 { return w.coord.LatestConsistent() }

// LoadConsistent loads this worker's copy of the globally consistent
// checkpoint. It fails if the local device's newest checkpoint is *older*
// than the agreement (this worker must resync from peers). When the local
// latest has advanced past the agreement — this worker published a
// checkpoint whose round never completed — the engine's N+1 retained slots
// usually still hold the agreed version, which is read directly.
func (w *Worker) LoadConsistent() ([]byte, uint64, error) {
	agreed := w.coord.LatestConsistent()
	if agreed == 0 {
		return nil, 0, ErrNoCheckpoint
	}
	payload, counter, err := w.ck.LoadLatest()
	if err != nil {
		return nil, 0, err
	}
	if counter < agreed {
		return nil, 0, fmt.Errorf("pccheck: rank %d holds checkpoint %d, older than agreed %d", w.Rank(), counter, agreed)
	}
	if counter > agreed {
		old, err := w.ck.LoadVersion(agreed)
		if err != nil {
			return nil, 0, fmt.Errorf("pccheck: rank %d is at checkpoint %d and no longer retains the agreed %d: %w",
				w.Rank(), counter, agreed, err)
		}
		return old, agreed, nil
	}
	return payload, counter, nil
}

// Rejoin re-attaches a restarted worker to a live group: it announces
// itself to rank 0, adopts the group's current consistent ID, and lines its
// round numbering up with the leader's, so the next SaveConsistent lands in
// a live round. Call it after reconnecting the transport (DialWorkerWith
// with a fresh epoch) and re-opening the local engine; the returned ID is
// what LoadConsistent will serve against — if the local device is behind
// it, resync state from peers before training resumes.
func (w *Worker) Rejoin(ctx context.Context) (uint64, error) {
	return w.coord.Rejoin(ctx)
}

// DeadRanks returns the ranks rank 0 currently considers dead (leader only;
// empty elsewhere).
func (w *Worker) DeadRanks() []int { return w.coord.DeadRanks() }

// Close stops the worker's coordination (heartbeats, background receive).
// The caller still owns the transport and checkpointer.
func (w *Worker) Close() error { w.coord.Close(); return nil }

// Checkpointer exposes the underlying local checkpointer (stats, Close).
func (w *Worker) Checkpointer() *Checkpointer { return w.ck }
