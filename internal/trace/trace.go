// Package trace provides spot-VM preemption traces and the goodput replay
// methodology of §5.2.3.
//
// The paper replays a resource-availability trace collected by André et al.
// on a 64×A100 spot cluster in Google Cloud: 26 preemption events over
// 3.5 hours, with "bulky" preemptions (several VMs at once) common. That
// trace is not public, so Synthetic generates a statistically matched one —
// same event rate, bulky multi-VM events, fixed seed for reproducibility —
// and the replay logic is identical either way: whenever the allocation
// changes, training stops, rolls back to the newest globally persisted
// checkpoint, pays the recovery cost, and resumes.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Event is one change in resource availability.
type Event struct {
	// At is the offset from the start of the trace.
	At time.Duration
	// VMs is how many VMs were preempted (negative) or returned (positive).
	VMs int
}

// Trace is an ordered sequence of preemption/restore events over a window.
type Trace struct {
	// Duration is the observation window.
	Duration time.Duration
	// ClusterSize is the requested number of VMs.
	ClusterSize int
	// Events holds the availability changes, ordered by time.
	Events []Event
}

// Failures counts the events that interrupt training (any preemption; the
// paper's elastic framework restarts all workers from the latest checkpoint
// whenever the allocation changes, and returns also trigger a
// reconfiguration restart).
func (tr Trace) Failures() int { return len(tr.Events) }

// Validate checks ordering and bounds.
func (tr Trace) Validate() error {
	if tr.Duration <= 0 {
		return fmt.Errorf("trace: non-positive duration %v", tr.Duration)
	}
	if tr.ClusterSize <= 0 {
		return fmt.Errorf("trace: non-positive cluster size %d", tr.ClusterSize)
	}
	last := time.Duration(-1)
	for i, e := range tr.Events {
		if e.At < 0 || e.At > tr.Duration {
			return fmt.Errorf("trace: event %d at %v outside window %v", i, e.At, tr.Duration)
		}
		if e.At < last {
			return fmt.Errorf("trace: event %d out of order", i)
		}
		last = e.At
	}
	return nil
}

// SyntheticConfig shapes a generated trace.
type SyntheticConfig struct {
	// Duration of the window (default 3.5 h, matching André et al.).
	Duration time.Duration
	// ClusterSize (default 64).
	ClusterSize int
	// Events is the number of availability changes (default 26).
	Events int
	// BulkFraction is the share of events that hit multiple VMs at once
	// (default 0.3; spot capacity reclaims are bursty).
	BulkFraction float64
	// Seed fixes the generator.
	Seed int64
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.Duration <= 0 {
		c.Duration = 3*time.Hour + 30*time.Minute
	}
	if c.ClusterSize <= 0 {
		c.ClusterSize = 64
	}
	if c.Events <= 0 {
		c.Events = 26
	}
	if c.BulkFraction <= 0 {
		c.BulkFraction = 0.3
	}
	return c
}

// Synthetic generates a reproducible preemption trace with the configured
// statistics. Preemptions and returns alternate in bursts, as observed on
// real spot clusters.
func Synthetic(cfg SyntheticConfig) Trace {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := Trace{Duration: cfg.Duration, ClusterSize: cfg.ClusterSize}
	available := cfg.ClusterSize
	times := make([]time.Duration, cfg.Events)
	for i := range times {
		times[i] = time.Duration(rng.Int63n(int64(cfg.Duration)))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, at := range times {
		bulk := 1
		if rng.Float64() < cfg.BulkFraction {
			bulk = 2 + rng.Intn(6) // bulky event: 2–7 VMs
		}
		var delta int
		if available <= cfg.ClusterSize/2 || (available < cfg.ClusterSize && rng.Float64() < 0.4) {
			// Capacity returns.
			delta = bulk
			if available+delta > cfg.ClusterSize {
				delta = cfg.ClusterSize - available
			}
		} else {
			delta = -bulk
			if available+delta < 1 {
				delta = 1 - available
			}
		}
		if delta == 0 {
			delta = -1
			if available <= 1 {
				delta = 1
			}
		}
		available += delta
		tr.Events = append(tr.Events, Event{At: at, VMs: delta})
	}
	return tr
}

// ReplayInput parameterizes a goodput replay for one checkpointing
// mechanism on one workload (§5.2.3).
type ReplayInput struct {
	// EffIterTime is the average iteration time including checkpointing
	// overhead (from the simulator or a real run).
	EffIterTime time.Duration
	// MeanRecovery is the mechanism's average recovery time per failure:
	// checkpoint load plus re-execution of lost iterations (§4.2).
	MeanRecovery time.Duration
	// DiskAttach is the per-failure time to reattach the persistent disk
	// (≈5.5 s on GCP; zero for Gemini, which recovers from remote DRAM).
	DiskAttach time.Duration
}

// ReplayResult is the outcome of replaying a trace.
type ReplayResult struct {
	// Goodput is useful iterations per second over the whole window.
	Goodput float64
	// UsefulIterations is the number of non-recomputed iterations.
	UsefulIterations float64
	// RecoverySeconds is the total time lost to recovery (load + rollback
	// re-execution + disk attach), across all failures.
	RecoverySeconds float64
	// Failures is the number of interruptions replayed.
	Failures int
}

// Replay computes goodput over the trace following the paper's accounting:
// total time T, r failures, recovery time rec = r×(MeanRecovery+attach);
// progress time prog = T − rec; useful batches = prog / EffIterTime;
// goodput = batches / T.
func Replay(tr Trace, in ReplayInput) (ReplayResult, error) {
	if err := tr.Validate(); err != nil {
		return ReplayResult{}, err
	}
	if in.EffIterTime <= 0 {
		return ReplayResult{}, fmt.Errorf("trace: non-positive iteration time %v", in.EffIterTime)
	}
	if in.MeanRecovery < 0 || in.DiskAttach < 0 {
		return ReplayResult{}, fmt.Errorf("trace: negative recovery parameters")
	}
	r := tr.Failures()
	rec := time.Duration(r) * (in.MeanRecovery + in.DiskAttach)
	total := tr.Duration
	prog := total - rec
	if prog < 0 {
		prog = 0
	}
	useful := prog.Seconds() / in.EffIterTime.Seconds()
	return ReplayResult{
		Goodput:          useful / total.Seconds(),
		UsefulIterations: useful,
		RecoverySeconds:  rec.Seconds(),
		Failures:         r,
	}, nil
}

// WriteJSON persists the trace for sharing and exact replay.
func (tr Trace) WriteJSON(w io.Writer) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// ReadJSON loads a trace previously written with WriteJSON, validating it.
func ReadJSON(r io.Reader) (Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return Trace{}, fmt.Errorf("trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}
