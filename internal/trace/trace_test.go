package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSyntheticMatchesAndreStatistics(t *testing.T) {
	tr := Synthetic(SyntheticConfig{Seed: 1})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// André et al.: 26 preemption events over 3.5 h on a 64-VM cluster.
	if tr.Failures() != 26 {
		t.Fatalf("events = %d, want 26", tr.Failures())
	}
	if tr.Duration != 3*time.Hour+30*time.Minute {
		t.Fatalf("duration = %v", tr.Duration)
	}
	if tr.ClusterSize != 64 {
		t.Fatalf("cluster = %d", tr.ClusterSize)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(SyntheticConfig{Seed: 7})
	b := Synthetic(SyntheticConfig{Seed: 7})
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed produced different event counts")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs between identical seeds", i)
		}
	}
	c := Synthetic(SyntheticConfig{Seed: 8})
	same := len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSyntheticAvailabilityBounds(t *testing.T) {
	tr := Synthetic(SyntheticConfig{Seed: 3, Events: 200})
	avail := tr.ClusterSize
	bulky := 0
	for _, e := range tr.Events {
		avail += e.VMs
		if avail < 1 || avail > tr.ClusterSize {
			t.Fatalf("availability left bounds: %d", avail)
		}
		if e.VMs > 1 || e.VMs < -1 {
			bulky++
		}
	}
	if bulky == 0 {
		t.Fatal("no bulky events generated; spot reclaims should be bursty")
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	bad := []Trace{
		{Duration: 0, ClusterSize: 4},
		{Duration: time.Hour, ClusterSize: 0},
		{Duration: time.Hour, ClusterSize: 4, Events: []Event{{At: 2 * time.Hour}}},
		{Duration: time.Hour, ClusterSize: 4, Events: []Event{{At: 30 * time.Minute}, {At: 10 * time.Minute}}},
		{Duration: time.Hour, ClusterSize: 4, Events: []Event{{At: -time.Minute}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Fatalf("bad trace %d accepted", i)
		}
	}
}

func TestReplayAccounting(t *testing.T) {
	tr := Trace{
		Duration:    time.Hour,
		ClusterSize: 4,
		Events: []Event{
			{At: 10 * time.Minute, VMs: -1},
			{At: 30 * time.Minute, VMs: 1},
		},
	}
	res, err := Replay(tr, ReplayInput{
		EffIterTime:  time.Second,
		MeanRecovery: 50 * time.Second,
		DiskAttach:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 failures × 60 s recovery = 120 s lost; 3480 s of progress at 1
	// iter/s ⇒ goodput = 3480/3600.
	if res.Failures != 2 {
		t.Fatalf("failures = %d", res.Failures)
	}
	if res.RecoverySeconds != 120 {
		t.Fatalf("recovery = %v", res.RecoverySeconds)
	}
	if res.UsefulIterations != 3480 {
		t.Fatalf("useful = %v", res.UsefulIterations)
	}
	want := 3480.0 / 3600.0
	if diff := res.Goodput - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("goodput = %v, want %v", res.Goodput, want)
	}
}

func TestReplayDegenerate(t *testing.T) {
	tr := Synthetic(SyntheticConfig{Seed: 1})
	// Recovery so long that nothing gets done.
	res, err := Replay(tr, ReplayInput{
		EffIterTime:  time.Second,
		MeanRecovery: 2 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput != 0 {
		t.Fatalf("goodput = %v, want 0 when recovery swamps the window", res.Goodput)
	}
}

func TestReplayValidation(t *testing.T) {
	tr := Synthetic(SyntheticConfig{Seed: 1})
	if _, err := Replay(tr, ReplayInput{}); err == nil {
		t.Fatal("zero iteration time accepted")
	}
	if _, err := Replay(tr, ReplayInput{EffIterTime: time.Second, MeanRecovery: -time.Second}); err == nil {
		t.Fatal("negative recovery accepted")
	}
	if _, err := Replay(Trace{}, ReplayInput{EffIterTime: time.Second}); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

// Goodput shape over checkpoint interval: too-frequent checkpointing wastes
// time on overhead, too-infrequent wastes it on rollback — the optimum lies
// between (Figure 2/9's inverted U).
func TestGoodputInvertedU(t *testing.T) {
	tr := Synthetic(SyntheticConfig{Seed: 1})
	// Construct eff iteration time and recovery as simple functions of f
	// (the real pipeline feeds simulator outputs here; this test checks the
	// replay arithmetic produces the U shape).
	goodput := func(f int) float64 {
		overhead := 1.0 + 20.0/float64(f) // checkpoint cost shrinks with f
		eff := time.Duration(float64(650*time.Millisecond) * overhead)
		rec := time.Duration(f) * 650 * time.Millisecond / 2 // rollback grows with f
		res, err := Replay(tr, ReplayInput{EffIterTime: eff, MeanRecovery: 13*time.Second + rec, DiskAttach: 5500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return res.Goodput
	}
	g1, g25, g1000 := goodput(1), goodput(25), goodput(1000)
	if g25 <= g1 {
		t.Fatalf("f=25 (%v) should beat f=1 (%v): overhead dominates at f=1", g25, g1)
	}
	if g25 <= g1000 {
		t.Fatalf("f=25 (%v) should beat f=1000 (%v): rollback dominates at f=1000", g25, g1000)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := Synthetic(SyntheticConfig{Seed: 5, Events: 12})
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != orig.Duration || got.ClusterSize != orig.ClusterSize {
		t.Fatal("header mismatch")
	}
	if len(got.Events) != len(orig.Events) {
		t.Fatalf("events %d vs %d", len(got.Events), len(orig.Events))
	}
	for i := range got.Events {
		if got.Events[i] != orig.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid JSON, invalid trace (out-of-order events).
	bad := `{"Duration": 3600000000000, "ClusterSize": 4,
	         "Events": [{"At": 200, "VMs": -1}, {"At": 100, "VMs": 1}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid trace accepted")
	}
	// WriteJSON refuses invalid traces too.
	var buf bytes.Buffer
	if err := (Trace{}).WriteJSON(&buf); err == nil {
		t.Fatal("invalid trace written")
	}
}
