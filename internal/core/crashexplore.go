package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"pccheck/internal/obs"
	"pccheck/internal/obs/blackbox"
	"pccheck/internal/obs/decision"
	"pccheck/internal/storage"
)

// Crash-point exploration: the machine-checked version of the paper's §4.1
// invariant — "at any instant, at least one fully persisted checkpoint
// exists and is recoverable".
//
// A workload of concurrent checkpoints runs once against a journaling
// storage.CrashDevice. The recorded op journal then serves as a replayable
// history: for every operation boundary (every point at which power could be
// cut) the explorer materializes the post-crash device image — first under
// the pessimistic cache-loss schedule (all un-synced writes dropped), then
// under sampled adversarial schedules that keep, drop, tear, and reorder
// un-synced writes — and runs real recovery against it. Each image must
// satisfy:
//
//  1. Recovery succeeds whenever any Checkpoint call had returned nil before
//     the cut, and the recovered counter is ≥ the newest such counter.
//  2. The recovered payload is internally consistent (self-verifying), and
//     byte-identical to what was saved when its counter was acknowledged.
//  3. Re-attaching with Open on the crashed image yields a working engine:
//     subsequent checkpoints publish with fresh counters and slot accounting
//     balances (slot conservation holds across the crash).
//  4. Recovery never panics and never returns garbage — at worst
//     ErrNoCheckpoint (or ErrNotFormatted for a cut mid-format).

// CrashWorkload describes the concurrent-checkpoint run recorded for
// exploration.
type CrashWorkload struct {
	// Kind selects the device semantics the engine sees (KindPMEM routes
	// per-writer fences, anything else the single covering sync).
	Kind storage.Kind
	// Concurrent is the engine's N; the device holds N+1 slots.
	Concurrent int
	// SlotBytes is the slot capacity (default 4096).
	SlotBytes int64
	// Writers is the engine's parallel writer count (default 2).
	Writers int
	// ChunkBytes pipelines the payload through DRAM chunks; 0 = unchunked.
	ChunkBytes int
	// VerifyPayload enables the payload CRC.
	VerifyPayload bool
	// Goroutines is how many savers checkpoint concurrently (default N+1,
	// so slot contention occurs). Delta workloads force 1: each save is
	// diffed against the one before it, so the recorded history must be a
	// single evolving state.
	Goroutines int
	// Checkpoints is how many checkpoints each saver runs (default 4).
	Checkpoints int
	// DeltaEvery / DeltaKeyframe switch the workload to delta mode (the
	// engine's Config knobs). The recorded history is then a single sparse
	// payload evolving step by step, so crash cuts land mid-delta,
	// mid-keyframe, and across chain boundaries.
	DeltaEvery    int
	DeltaKeyframe int
	// Tracker feeds the engine's DirtyTracker with the exact mutated
	// ranges (trusted-marks mode); false leaves the content-hash fallback.
	Tracker bool
	// BlackBox attaches a full observer chain (flight recorder → decision
	// recorder → goodput ledger) and a black-box telemetry region, with an
	// explicit flush after every acknowledged checkpoint. Each crash cut
	// then additionally asserts the telemetry invariants: the region
	// decodes without panicking, every surviving frame is CRC-valid and
	// the tail strictly sequence-monotonic, the newest frame belongs to a
	// flush that started before the cut (no fabricated or resurrected
	// telemetry), and whenever a flush fully completed before the cut the
	// box is non-empty and at least that fresh.
	BlackBox bool
	// Seed drives payload contents and sizes.
	Seed int64
}

func (w CrashWorkload) withDefaults() CrashWorkload {
	if w.Concurrent < 1 {
		w.Concurrent = 1
	}
	if w.SlotBytes <= 0 {
		w.SlotBytes = 4096
	}
	if w.Writers < 1 {
		w.Writers = 2
	}
	if w.DeltaKeyframe > 0 {
		w.Goroutines = 1
	}
	if w.Goroutines < 1 {
		w.Goroutines = w.Concurrent + 1
	}
	if w.Checkpoints < 1 {
		w.Checkpoints = 4
	}
	return w
}

// String names the workload in reports: kind/N/chunking/verify[/delta].
func (w CrashWorkload) String() string {
	chunk := "unchunked"
	if w.ChunkBytes > 0 {
		chunk = fmt.Sprintf("chunk=%d", w.ChunkBytes)
	}
	verify := "verify=off"
	if w.VerifyPayload {
		verify = "verify=on"
	}
	s := fmt.Sprintf("%s N=%d %s %s", w.Kind, w.Concurrent, chunk, verify)
	if w.DeltaKeyframe > 0 {
		s += fmt.Sprintf(" delta=%d/K=%d", w.DeltaEvery, w.DeltaKeyframe)
		if w.Tracker {
			s += " tracked"
		}
	}
	if w.BlackBox {
		s += " blackbox"
	}
	return s
}

// CrashExploreOptions bounds one exploration.
type CrashExploreOptions struct {
	Workload CrashWorkload
	// Samples is how many additional (crash point, cache-loss schedule)
	// cases to draw beyond the per-boundary pessimistic sweep. Each sample
	// picks a uniform boundary and a seeded drop/keep/tear schedule.
	Samples int
	// Stride visits every Stride-th op boundary in the pessimistic sweep
	// (1 = every boundary; the bounded fast mode in go test uses a larger
	// stride to stay within its op budget).
	Stride int
	// ReattachEvery runs the full Open + keep-checkpointing probe on every
	// k-th case (it is the expensive part of a case). 0 defaults to 8;
	// negative disables re-attach probing.
	ReattachEvery int
}

// CrashExploreResult summarizes one exploration.
type CrashExploreResult struct {
	Workload    CrashWorkload
	Ops         int // recorded journal length
	CrashPoints int // op boundaries visited by the pessimistic sweep
	Cases       int // total (boundary, schedule) cases checked
	Recovered   int // cases where recovery returned a checkpoint
	Empty       int // cases with no checkpoint (legal only before the first ack)
	Reattached  int // cases that ran the re-attach probe
	Acked       int // checkpoints acknowledged by the workload
	Violations  []string
}

// Ok reports whether the invariant held in every case.
func (r CrashExploreResult) Ok() bool { return len(r.Violations) == 0 }

// crashPayload builds a self-verifying payload: the seed and length are
// embedded, the rest is a pure function of them, so any recovered payload
// can be validated without knowing which checkpoint survived.
func crashPayload(seed uint64, n int) []byte {
	if n < 16 {
		n = 16
	}
	b := make([]byte, n)
	binary.LittleEndian.PutUint64(b, seed)
	binary.LittleEndian.PutUint64(b[8:], uint64(n))
	rng := rand.New(rand.NewSource(int64(seed)))
	rng.Read(b[16:])
	return b
}

// checkCrashPayload validates a payload against its embedded seed+length.
func checkCrashPayload(p []byte) error {
	if len(p) < 16 {
		return fmt.Errorf("payload too short: %d bytes", len(p))
	}
	seed := binary.LittleEndian.Uint64(p)
	n := binary.LittleEndian.Uint64(p[8:])
	if n != uint64(len(p)) {
		return fmt.Errorf("payload claims %d bytes, has %d", n, len(p))
	}
	if want := crashPayload(seed, len(p)); !bytes.Equal(p, want) {
		return fmt.Errorf("payload for seed %d is corrupted", seed)
	}
	return nil
}

// sparseMagic tags the sparse payload family used by delta workloads. The
// high byte makes it impossible to collide with a crashPayload, whose first
// eight bytes are a seed always < 2^40.
const sparseMagic = 0xC0DE5EED5EEDC0DE

// sparsePayload builds the self-verifying evolving payload delta workloads
// checkpoint: magic u64 @0, seed u64 @8, step u64 @16, length u64 @24, then
// an rng body. Step s is reached by applying mutateSparse s times, so any
// recovered payload can be regenerated from its embedded fields alone.
func sparsePayload(seed, step uint64, n int) []byte {
	if n < 128 {
		n = 128
	}
	b := make([]byte, n)
	binary.LittleEndian.PutUint64(b, sparseMagic)
	binary.LittleEndian.PutUint64(b[8:], seed)
	binary.LittleEndian.PutUint64(b[24:], uint64(n))
	rng := rand.New(rand.NewSource(int64(seed)))
	rng.Read(b[32:])
	for s := uint64(1); s <= step; s++ {
		mutateSparse(b, seed, s)
	}
	return b
}

// mutateSparse evolves b in place to the given step, touching the step
// field and a handful of small scattered ranges — the access pattern delta
// encoding exists for. It returns the exact mutated ranges so tracked
// workloads can feed them to the DirtyTracker.
func mutateSparse(b []byte, seed, step uint64) [][2]int64 {
	binary.LittleEndian.PutUint64(b[16:], step)
	ranges := [][2]int64{{16, 8}}
	rng := rand.New(rand.NewSource(int64(seed*1_000_003 + step)))
	for r := 0; r < 4; r++ {
		span := 16 + rng.Intn(48)
		if len(b)-32-span < 1 {
			continue
		}
		off := 32 + rng.Intn(len(b)-32-span)
		rng.Read(b[off : off+span])
		ranges = append(ranges, [2]int64{int64(off), int64(span)})
	}
	return ranges
}

// checkSparsePayload validates a sparse payload by regenerating it from its
// embedded seed, step and length.
func checkSparsePayload(p []byte) error {
	if len(p) < 32 {
		return fmt.Errorf("sparse payload too short: %d bytes", len(p))
	}
	seed := binary.LittleEndian.Uint64(p[8:])
	step := binary.LittleEndian.Uint64(p[16:])
	n := binary.LittleEndian.Uint64(p[24:])
	if n != uint64(len(p)) {
		return fmt.Errorf("sparse payload claims %d bytes, has %d", n, len(p))
	}
	if step > 1<<20 {
		return fmt.Errorf("sparse payload claims implausible step %d", step)
	}
	if want := sparsePayload(seed, step, len(p)); !bytes.Equal(p, want) {
		return fmt.Errorf("sparse payload for seed %d step %d is corrupted", seed, step)
	}
	return nil
}

// checkAnyCrashPayload dispatches on the payload family tag.
func checkAnyCrashPayload(p []byte) error {
	if len(p) >= 8 && binary.LittleEndian.Uint64(p) == sparseMagic {
		return checkSparsePayload(p)
	}
	return checkCrashPayload(p)
}

// ExploreCrashes records one concurrent workload and sweeps simulated power
// cuts over it. A non-empty Violations list (or a non-nil error for setup
// failures) means the §4.1 durability invariant does not hold.
func ExploreCrashes(opts CrashExploreOptions) (CrashExploreResult, error) {
	w := opts.Workload.withDefaults()
	res := CrashExploreResult{Workload: w}
	if opts.Stride < 1 {
		opts.Stride = 1
	}
	if opts.ReattachEvery == 0 {
		opts.ReattachEvery = 8
	}

	cfg := Config{
		Concurrent:    w.Concurrent,
		SlotBytes:     w.SlotBytes,
		Writers:       w.Writers,
		ChunkBytes:    w.ChunkBytes,
		VerifyPayload: w.VerifyPayload,
		DeltaEvery:    w.DeltaEvery,
		DeltaKeyframe: w.DeltaKeyframe,
	}
	if w.BlackBox {
		// Full observer chain plus a manually-flushed telemetry region,
		// sized so the sweep's flushes never wrap (one frame slot per
		// acknowledged checkpoint, with headroom) — a completed flush must
		// therefore survive every later cut.
		cfg.Observer = obs.NewLedger(obs.LedgerConfig{SlowdownBudget: 1.05},
			decision.New(decision.Config{}, obs.NewRecorder(512)))
		cfg.BlackBox = blackbox.Config{
			Bytes:        blackbox.SectorBytes + 64*4096,
			FrameBytes:   4096,
			FlushEvery:   -1, // explicit flushes only: the journal stays deterministic
			EventTail:    32,
			DecisionTail: 8,
		}
	}
	dev := storage.NewCrashDevice(DeviceBytesFor(cfg), w.Kind)
	eng, err := New(dev, cfg)
	if err != nil {
		return res, err
	}

	// Black-box flush bookkeeping: each flush is bracketed by journal op
	// counts so any cut can be classified — a flush with endOp <= cut is
	// fully durable in the image; one with startOp >= cut contributed
	// nothing to it.
	var (
		bbMu      sync.Mutex
		bbFlushes []bbFlushMark
	)
	flushBB := func() error {
		if !w.BlackBox {
			return nil
		}
		bbMu.Lock()
		defer bbMu.Unlock()
		start := dev.Ops()
		seq, err := eng.FlushBlackBox()
		if err != nil {
			return fmt.Errorf("black box flush: %w", err)
		}
		bbFlushes = append(bbFlushes, bbFlushMark{seq: seq, startOp: start, endOp: dev.Ops()})
		return nil
	}

	// Record phase. Each ack is marked in the journal at a point no earlier
	// than its durable record, and the payload is remembered for byte-exact
	// comparison.
	var (
		ackedMu  sync.Mutex
		acked    = make(map[uint64][]byte)
		saveErr  error
		saveOnce sync.Once
		wg       sync.WaitGroup
	)
	if w.DeltaKeyframe > 0 {
		// Delta mode: a single sparse payload evolves step by step, so the
		// journal holds keyframes and deltas interleaved and crash cuts land
		// mid-delta, mid-keyframe, and across chain boundaries.
		rng := rand.New(rand.NewSource(w.Seed))
		pseed := uint64(w.Seed)<<20 + 1
		n := 1024 + rng.Intn(int(w.SlotBytes)-1024)
		p := sparsePayload(pseed, 0, n)
		tracker := eng.DirtyTracker()
		for i := 0; i < w.Checkpoints; i++ {
			if i > 0 {
				ranges := mutateSparse(p, pseed, uint64(i))
				if w.Tracker {
					for _, r := range ranges {
						tracker.MarkRange(r[0], r[1])
					}
				}
			}
			ctr, err := eng.Checkpoint(context.Background(), BytesSource(p))
			if err != nil {
				return res, fmt.Errorf("delta ckpt %d: %w", i, err)
			}
			// p mutates in place next iteration — remember a copy.
			acked[ctr] = append([]byte(nil), p...)
			dev.Mark(ctr)
			if err := flushBB(); err != nil {
				return res, err
			}
		}
	} else {
		// Concurrent mode: Goroutines savers race Checkpoint calls.
		for g := 0; g < w.Goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(w.Seed + int64(g)*7919))
				for i := 0; i < w.Checkpoints; i++ {
					seed := uint64(w.Seed)<<20 + uint64(g)<<10 + uint64(i) + 1
					n := 16 + rng.Intn(int(w.SlotBytes)-15)
					p := crashPayload(seed, n)
					ctr, err := eng.Checkpoint(context.Background(), BytesSource(p))
					if err != nil {
						saveOnce.Do(func() { saveErr = fmt.Errorf("saver %d ckpt %d: %w", g, i, err) })
						return
					}
					ackedMu.Lock()
					acked[ctr] = p
					ackedMu.Unlock()
					dev.Mark(ctr)
					if err := flushBB(); err != nil {
						saveOnce.Do(func() { saveErr = err })
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
	if saveErr != nil {
		return res, saveErr
	}
	res.Ops = dev.Ops()
	res.Acked = len(acked)

	// Explore phase. The pessimistic sweep visits op boundaries; samples
	// add torn/reordered cache-loss schedules at random boundaries.
	rng := rand.New(rand.NewSource(w.Seed ^ 0x5cc))
	runCase := func(cut int, choose storage.CrashChooser, desc string, reattach bool) {
		res.Cases++
		defer func() {
			if p := recover(); p != nil {
				res.Violations = append(res.Violations,
					fmt.Sprintf("%s: cut %d (%s): recovery PANICKED: %v", w, cut, desc, p))
			}
		}()
		img, err := dev.CrashImage(cut, choose)
		if err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("%s: cut %d (%s): %v", w, cut, desc, err))
			return
		}
		ackedMin := dev.HighestMark(cut)
		rdev := storage.NewRAMFromBytes(img)
		if w.BlackBox {
			// Telemetry invariants hold at every cut, independent of
			// whether a checkpoint is recoverable from this image.
			if msg := checkCrashBlackBox(rdev, bbFlushes, cut); msg != "" {
				res.Violations = append(res.Violations,
					fmt.Sprintf("%s: cut %d (%s): %s", w, cut, desc, msg))
			}
		}
		p, rc, err := Recover(rdev)
		if err != nil {
			if ackedMin > 0 {
				res.Violations = append(res.Violations,
					fmt.Sprintf("%s: cut %d (%s): checkpoint %d acknowledged but recovery failed: %v", w, cut, desc, ackedMin, err))
			} else {
				res.Empty++ // crashed before anything completed — legal
			}
			return
		}
		res.Recovered++
		if rc < ackedMin {
			res.Violations = append(res.Violations,
				fmt.Sprintf("%s: cut %d (%s): recovered counter %d older than acknowledged %d", w, cut, desc, rc, ackedMin))
			return
		}
		if err := checkAnyCrashPayload(p); err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("%s: cut %d (%s): recovered checkpoint %d is garbage: %v", w, cut, desc, rc, err))
			return
		}
		if want, ok := acked[rc]; ok && !bytes.Equal(p, want) {
			res.Violations = append(res.Violations,
				fmt.Sprintf("%s: cut %d (%s): recovered checkpoint %d differs from its acknowledged payload", w, cut, desc, rc))
			return
		}
		if reattach {
			if err := reattachProbe(rdev, rc); err != nil {
				res.Violations = append(res.Violations,
					fmt.Sprintf("%s: cut %d (%s): re-attach after crash: %v", w, cut, desc, err))
				return
			}
			res.Reattached++
		}
	}

	caseNo := 0
	probe := func() bool {
		caseNo++
		return opts.ReattachEvery > 0 && caseNo%opts.ReattachEvery == 0
	}
	for cut := 0; cut <= res.Ops; cut += opts.Stride {
		res.CrashPoints++
		runCase(cut, storage.DropAllWrites, "drop-all", probe())
	}
	for s := 0; s < opts.Samples; s++ {
		cut := rng.Intn(res.Ops + 1)
		seed := rng.Int63()
		runCase(cut, storage.SeededChooser(seed), fmt.Sprintf("sampled seed=%d", seed), probe())
	}
	return res, nil
}

// bbFlushMark brackets one explicit black-box flush in the recorded
// journal: seq is the frame written, startOp/endOp the journal lengths
// sampled immediately before and after the flush.
type bbFlushMark struct {
	seq     uint64
	startOp int
	endOp   int
}

// checkCrashBlackBox asserts the black-box telemetry invariants on one
// post-crash image. It returns a violation description, or "" when the
// invariants hold:
//
//   - the region decodes (or is legally absent when no flush completed
//     before the cut — e.g. a cut during format);
//   - the surviving frames form a strictly monotonic sequence tail
//     (Decode already dropped torn and stale-epoch frames via CRC and
//     epoch checks);
//   - the newest frame belongs to a flush that started before the cut:
//     telemetry is never fabricated or resurrected from the future;
//   - when at least one flush fully completed (covering sync included)
//     before the cut, the box is non-empty and at least that fresh.
func checkCrashBlackBox(dev storage.Device, flushes []bbFlushMark, cut int) string {
	var maxStarted, maxCompleted uint64
	for _, f := range flushes {
		if f.startOp < cut && f.seq > maxStarted {
			maxStarted = f.seq
		}
		if f.endOp <= cut && f.seq > maxCompleted {
			maxCompleted = f.seq
		}
	}
	pm, err := PostMortem(dev)
	if err != nil {
		if maxCompleted > 0 {
			return fmt.Sprintf("flush %d completed before the cut but the black box is unreadable: %v", maxCompleted, err)
		}
		return "" // nothing durable yet — an absent or torn region is legal
	}
	var last uint64
	for _, f := range pm.Frames {
		if f.Seq <= last {
			return fmt.Sprintf("black box tail not strictly monotonic: frame %d after %d", f.Seq, last)
		}
		last = f.Seq
	}
	if pm.LastSeq() > maxStarted {
		return fmt.Sprintf("black box holds frame %d but no flush that fresh had started before the cut (fabricated telemetry, newest legal %d)", pm.LastSeq(), maxStarted)
	}
	if maxCompleted > 0 && pm.LastSeq() < maxCompleted {
		return fmt.Sprintf("black box newest frame %d is older than completed flush %d (durable telemetry lost)", pm.LastSeq(), maxCompleted)
	}
	return ""
}

// reattachProbe is invariant (3): Open the crashed image, keep
// checkpointing, and verify counters advance past the recovered one and
// slot accounting balances — a crash must not cost the engine a slot.
func reattachProbe(dev storage.Device, recovered uint64) error {
	eng, err := Open(dev, Config{})
	if err != nil {
		return fmt.Errorf("Open: %w", err)
	}
	ctx := context.Background()
	var last uint64
	for i := 0; i < 2; i++ {
		p := crashPayload(recovered<<8+uint64(i)+1, 256)
		ctr, err := eng.Checkpoint(ctx, BytesSource(p))
		if err != nil {
			return fmt.Errorf("post-crash checkpoint %d: %w", i, err)
		}
		if ctr <= recovered || ctr <= last {
			return fmt.Errorf("post-crash counter %d did not advance past %d", ctr, recovered)
		}
		last = ctr
	}
	if free, want := eng.FreeSlots(), eng.TotalSlots()-eng.PinnedSlots(); free != want {
		return fmt.Errorf("slot conservation broken: %d free slots, want %d", free, want)
	}
	got, rc, err := Recover(dev)
	if err != nil {
		return fmt.Errorf("recover after re-attach: %w", err)
	}
	if rc != last {
		return fmt.Errorf("recover after re-attach returned counter %d, want %d", rc, last)
	}
	if err := checkAnyCrashPayload(got); err != nil {
		return fmt.Errorf("recover after re-attach: %v", err)
	}
	return nil
}

// CrashSweepConfigs returns the full workload matrix of the crash sweep:
// device kind × N ∈ {1,2,4} × {chunked, unchunked} × verify {on, off},
// plus delta workloads per kind covering keyframe-only chains, tracked
// sparse marks, and an every-other-save delta cadence. The delta entries
// run enough checkpoints to cross at least one keyframe boundary, so the
// sweep asserts the durable floor never regresses past the last complete
// keyframe+chain.
func CrashSweepConfigs(seed int64) []CrashWorkload {
	var out []CrashWorkload
	for _, kind := range []storage.Kind{storage.KindPMEM, storage.KindSSD} {
		for _, n := range []int{1, 2, 4} {
			for _, chunk := range []int{0, 1024} {
				for _, verify := range []bool{true, false} {
					out = append(out, CrashWorkload{
						Kind:          kind,
						Concurrent:    n,
						ChunkBytes:    chunk,
						VerifyPayload: verify,
						Seed:          seed,
					})
				}
			}
		}
		out = append(out,
			CrashWorkload{Kind: kind, Concurrent: 1, DeltaEvery: 1, DeltaKeyframe: 2, Checkpoints: 7, Seed: seed},
			CrashWorkload{Kind: kind, Concurrent: 1, DeltaEvery: 1, DeltaKeyframe: 3, Tracker: true, VerifyPayload: true, Checkpoints: 8, Seed: seed},
			CrashWorkload{Kind: kind, Concurrent: 2, DeltaEvery: 2, DeltaKeyframe: 2, ChunkBytes: 1024, Checkpoints: 6, Seed: seed},
			// Black-box workloads: every cut additionally asserts the
			// crash-surviving telemetry invariants (see CrashWorkload.BlackBox).
			CrashWorkload{Kind: kind, Concurrent: 1, BlackBox: true, Seed: seed},
			CrashWorkload{Kind: kind, Concurrent: 2, ChunkBytes: 1024, VerifyPayload: true, BlackBox: true, Seed: seed},
			CrashWorkload{Kind: kind, Concurrent: 1, DeltaEvery: 1, DeltaKeyframe: 2, Checkpoints: 6, BlackBox: true, Seed: seed},
		)
	}
	return out
}

// ErrCrashInvariantViolated is returned by callers that surface a failed
// exploration as a single error.
var ErrCrashInvariantViolated = errors.New("core: crash durability invariant violated")
