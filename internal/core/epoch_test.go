package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"pccheck/internal/storage"
)

// TestReformatDoesNotResurrectOldVersions is the regression test for the
// reformat-resurrection bug: New zeroed the pointer records but left the old
// image's slot headers intact, so RecoverVersion/ReadVersion on a
// reformatted device could serve payloads from the previous image. The
// per-format epoch must reject them.
func TestReformatDoesNotResurrectOldVersions(t *testing.T) {
	const slotBytes = 1024
	dev := storage.NewRAM(DeviceBytes(2, slotBytes))
	c, err := New(dev, Config{Concurrent: 2, SlotBytes: slotBytes, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var counters []uint64
	for i := int64(1); i <= 3; i++ {
		ctr, err := c.Checkpoint(ctx, BytesSource(payload(i, 700)))
		if err != nil {
			t.Fatal(err)
		}
		counters = append(counters, ctr)
	}
	// Sanity: before the reformat the versions are resident.
	if _, err := RecoverVersion(dev, counters[len(counters)-1]); err != nil {
		t.Fatalf("pre-reformat RecoverVersion: %v", err)
	}

	// Reformat. Old slot headers survive on the device; only the epoch
	// stamp distinguishes them from live data.
	c2, err := New(dev, Config{Concurrent: 2, SlotBytes: slotBytes, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dev); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Recover on reformatted device = %v, want ErrNoCheckpoint", err)
	}
	for _, ctr := range counters {
		if p, err := RecoverVersion(dev, ctr); !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("RecoverVersion(%d) resurrected %d bytes from the previous image (err=%v)", ctr, len(p), err)
		}
		if _, err := c2.ReadVersion(ctr); !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("ReadVersion(%d) resurrected data from the previous image (err=%v)", ctr, err)
		}
	}

	// The reformatted engine checkpoints normally, and only its own versions
	// are visible afterwards.
	fresh := payload(99, 500)
	ctr, err := c2.Checkpoint(ctx, BytesSource(fresh))
	if err != nil {
		t.Fatal(err)
	}
	got, err := RecoverVersion(dev, ctr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("fresh checkpoint unreadable after reformat")
	}
	// Counters restart after a reformat: counter 2 existed in the OLD image
	// only. Its stale header must stay invisible even though the counter
	// value is plausible for the new image.
	if _, err := RecoverVersion(dev, 2); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("RecoverVersion(2) served the old image's checkpoint 2: %v", err)
	}
}

// TestFormatEpochMonotonic: every reformat advances the epoch, and Inspect
// reports stale-epoch slot headers.
func TestFormatEpochMonotonic(t *testing.T) {
	const slotBytes = 512
	dev := storage.NewRAM(DeviceBytes(1, slotBytes))
	if _, err := New(dev, Config{Concurrent: 1, SlotBytes: slotBytes}); err != nil {
		t.Fatal(err)
	}
	rep, err := Inspect(dev, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 1 {
		t.Fatalf("first format epoch = %d, want 1", rep.Epoch)
	}
	c, err := Open(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 256))); err != nil {
		t.Fatal(err)
	}
	if _, err := New(dev, Config{Concurrent: 1, SlotBytes: slotBytes}); err != nil {
		t.Fatal(err)
	}
	rep, err = Inspect(dev, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 2 {
		t.Fatalf("second format epoch = %d, want 2", rep.Epoch)
	}
	stale := 0
	for _, s := range rep.SlotInfos {
		if s.HeaderValid && s.EpochStale {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("expected Inspect to flag the old image's slot header as epoch-stale")
	}
}

// TestLegacyEpochZeroImageRecovers: images written before the epoch existed
// carry 0 in both superblock and headers — they must keep recovering.
func TestLegacyEpochZeroImageRecovers(t *testing.T) {
	const slotBytes = 512
	dev := storage.NewRAM(DeviceBytes(1, slotBytes))
	sb := superblock{slots: 2, slotBytes: slotBytes} // epoch 0, as legacy images have
	if err := dev.Persist(sb.encode(), superOff); err != nil {
		t.Fatal(err)
	}
	want := payload(7, 300)
	hdr := slotHeader{counter: 1, size: int64(len(want))} // epoch 0
	if err := dev.Persist(want, payloadBase(sb, 0)); err != nil {
		t.Fatal(err)
	}
	if err := dev.Persist(encodeSlotHeader(hdr), slotBase(sb, 0)); err != nil {
		t.Fatal(err)
	}
	if err := dev.Persist(encodeRecord(checkMeta{slot: 0, counter: 1, size: int64(len(want))}), recordAOff); err != nil {
		t.Fatal(err)
	}
	got, ctr, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if ctr != 1 || !bytes.Equal(got, want) {
		t.Fatal("legacy epoch-0 image did not recover")
	}
}

// TestCrashMidReformatNeverResurrects cuts power at every op boundary of a
// reformat over a populated device: recovery must yield either the old
// image's latest checkpoint (format not yet effective) or no checkpoint at
// all — never an older resurrected version.
func TestCrashMidReformatNeverResurrects(t *testing.T) {
	const slotBytes = 1024
	dev := storage.NewCrashDevice(DeviceBytes(1, slotBytes), storage.KindSSD)
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: slotBytes, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	old1 := payload(1, 600)
	old2 := payload(2, 600)
	ctx := context.Background()
	if _, err := c.Checkpoint(ctx, BytesSource(old1)); err != nil {
		t.Fatal(err)
	}
	last, err := c.Checkpoint(ctx, BytesSource(old2))
	if err != nil {
		t.Fatal(err)
	}
	preFormatOps := dev.Ops()
	if _, err := New(dev, Config{Concurrent: 1, SlotBytes: slotBytes, VerifyPayload: true}); err != nil {
		t.Fatal(err)
	}
	for cut := preFormatOps; cut <= dev.Ops(); cut++ {
		for _, choose := range []storage.CrashChooser{storage.DropAllWrites, storage.KeepAllWrites, storage.SeededChooser(int64(cut))} {
			img, err := dev.CrashImage(cut, choose)
			if err != nil {
				t.Fatal(err)
			}
			got, ctr, err := Recover(storage.NewRAMFromBytes(img))
			if err != nil {
				continue // no checkpoint / not formatted — legal mid-format
			}
			if ctr != last || !bytes.Equal(got, old2) {
				t.Fatalf("cut %d: recovered counter %d (%d bytes) — neither the old latest nor nothing", cut, ctr, len(got))
			}
		}
	}
}
