package core

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pccheck/internal/chunkpool"
	"pccheck/internal/lfqueue"
	"pccheck/internal/obs"
	"pccheck/internal/obs/blackbox"
	"pccheck/internal/obs/decision"
	"pccheck/internal/storage"
)

// Source supplies a checkpoint payload. The engine pulls it range by range
// so that device→DRAM copies (the GPU snapshot) pipeline with DRAM→storage
// persists. Implementations must allow concurrent ReadInto calls on disjoint
// ranges.
type Source interface {
	// Size returns the payload length in bytes.
	Size() int64
	// ReadInto fills p with payload bytes starting at off.
	ReadInto(p []byte, off int64) error
}

// bytesSource adapts an in-memory payload.
type bytesSource struct{ b []byte }

// BytesSource wraps an in-memory payload as a Source. The engine reads the
// slice during Checkpoint; the caller must not mutate it until Checkpoint
// returns (the paper's equivalent: the GPU must not update weights being
// snapshotted, §3.1).
func BytesSource(b []byte) Source { return bytesSource{b} }

func (s bytesSource) Size() int64 { return int64(len(s.b)) }

func (s bytesSource) ReadInto(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(s.b)) {
		return fmt.Errorf("core: source range [%d,%d) outside payload of %d bytes", off, off+int64(len(p)), len(s.b))
	}
	copy(p, s.b[off:])
	return nil
}

// Checkpointer orchestrates concurrent checkpoints on one device. It is safe
// for concurrent use; up to Config.Concurrent Checkpoint calls proceed in
// parallel and additional calls wait for a free slot.
type Checkpointer struct {
	dev storage.Device
	cfg Config
	sb  superblock

	// committer is dev's optional tiered-durability hook (probed once at
	// attach): after each pointer record lands durably, the engine reports
	// the committed counter so a storage.Tiered can stamp its drain journal
	// and propagate per-tier durability watermarks.
	committer storage.CheckpointCommitter

	gCounter  atomic.Uint64
	checkAddr atomic.Pointer[checkMeta] // latest *persisted* checkpoint
	freeSpace *lfqueue.Queue[int]
	pool      *chunkpool.Pool
	closed    atomic.Bool

	// perWriterBW holds the float64 bits of the current per-writer pacing
	// rate; mutable at runtime via SetPerWriterBW so operators (or the
	// adaptive controller) can model or react to device contention.
	perWriterBW atomic.Uint64

	// slotSeq is a per-slot seqlock: odd while a checkpoint is writing the
	// slot, even when quiescent. Readers (ReadLatest/ReadVersion) use it to
	// detect that the slot they were reading was recycled and overwritten
	// mid-read — a published checkpoint's slot can be freed by a newer
	// publication and immediately reused while a stale reader still holds
	// its metadata.
	slotSeq []atomic.Uint64

	// recordMu serializes persistent pointer-record writes. Under it,
	// recordHighest enforces that records are persisted in strictly
	// increasing counter order (a delayed writer whose counter was already
	// superseded skips the write — the newer durable record subsumes it),
	// and recordSeq alternates the two on-device record locations so the
	// previous durable record is always intact while the next one is being
	// written, even when published counters share parity. pendingFree
	// parks slots that may still be referenced by the durable record after
	// a record-persist failure; they rejoin the free queue once a newer
	// record lands durably.
	recordMu      sync.Mutex
	recordHighest uint64
	recordSeq     uint64
	pendingFree   []int

	// obsv receives lifecycle events when observability is on. Every
	// probe is guarded by a nil check so a disabled observer costs one
	// predictable branch and no clock reads or allocations.
	obsv obs.Observer
	// dec is the decision recorder found in the observer chain (nil when
	// none); probed only on slow paths (contended admissions, faulted
	// I/O), each probe a single nil check. dec non-nil implies obsv
	// non-nil: it is discovered by walking obsv.
	dec *decision.Recorder
	// bbox is the black-box flusher persisting telemetry snapshots into
	// the device's reserved region (nil when the device has no region or
	// the observer chain has no flight recorder). It runs entirely off
	// the Emit hot path.
	bbox *blackbox.Flusher
	// scrub is the background integrity scrubber (see scrub.go); always
	// constructed by attach so ScrubNow works even when the periodic
	// goroutine is disabled.
	scrub *scrubber

	// Delta-mode state (sb.deltaKeyframe > 0), all under deltaMu: saves are
	// serialized because each delta is diffed against the save before it.
	// chain holds the pinned keyframe→delta slots, keyframe first, with the
	// tip also published through checkAddr; those slots stay out of the
	// free queue until the next keyframe supersedes the whole chain. hashes
	// is the per-chunk hash state of the tip (nil forces the next save to
	// be a keyframe, e.g. right after Open), lastSize the tip's logical
	// size, saveSeq the DeltaEvery cadence counter.
	deltaMu     sync.Mutex
	chain       []checkMeta
	deltasSince int
	hashes      []uint64
	lastSize    int64
	saveSeq     uint64
	tracker     *DirtyTracker

	stats Stats
}

// emit forwards an event to the observer, if any.
func (c *Checkpointer) emit(ev obs.Event) {
	if c.obsv != nil {
		c.obsv.Emit(ev)
	}
}

// obsNow samples the wall clock only when an observer is attached; with
// observability off it is a nil check returning 0.
func (c *Checkpointer) obsNow() int64 {
	if c.obsv == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// span emits a completed span that started at ts (an obsNow sample).
func (c *Checkpointer) span(phase obs.Phase, ts int64, counter uint64, slot int, bytes, value int64) {
	if c.obsv == nil {
		return
	}
	c.obsv.Emit(obs.Event{
		TS: ts, Dur: time.Now().UnixNano() - ts,
		Counter: counter, Bytes: bytes, Value: value,
		Phase: phase, Slot: int32(slot), Writer: -1, Rank: -1,
	})
}

// instant emits a point event.
func (c *Checkpointer) instant(phase obs.Phase, counter uint64, slot int, bytes, value int64) {
	if c.obsv == nil {
		return
	}
	c.obsv.Emit(obs.Event{
		TS: time.Now().UnixNano(), Counter: counter, Bytes: bytes, Value: value,
		Phase: phase, Slot: int32(slot), Writer: -1, Rank: -1,
	})
}

// Stats exposes engine counters. All fields are cumulative.
type Stats struct {
	Checkpoints atomic.Int64 // published checkpoints (won the CAS)
	Obsolete    atomic.Int64 // completed but superseded before publishing
	// CASRetries counts publish CAS attempts retried against older
	// registered values — contention on CHECK_ADDR, a different signal
	// from IORetries (device faults absorbed by the retry policy).
	CASRetries atomic.Int64
	// BytesWritten counts logical checkpoint bytes (payload sizes);
	// BytesPersisted counts what actually hit the device — equal for full
	// checkpoints, smaller for deltas. Persisted/written is the delta ratio.
	BytesWritten    atomic.Int64
	BytesPersisted  atomic.Int64
	DeltaSaves      atomic.Int64 // published checkpoints stored as delta records
	KeyframeSaves   atomic.Int64 // published full checkpoints in delta mode
	PersistNanos    atomic.Int64 // total wall time inside Checkpoint
	SlotWaits       atomic.Int64 // times a checkpoint had to wait for a slot
	TransientFaults atomic.Int64 // transient device faults absorbed on the persist path
	IORetries       atomic.Int64 // persist-path I/O retries taken after transient faults
	FailedSaves     atomic.Int64 // Checkpoint calls that returned an error after starting
}

// StatsSnapshot is a point-in-time plain-struct copy of Stats.
type StatsSnapshot struct {
	Checkpoints     int64
	Obsolete        int64
	CASRetries      int64
	BytesWritten    int64
	BytesPersisted  int64
	DeltaSaves      int64
	KeyframeSaves   int64
	Persist         time.Duration
	SlotWaits       int64
	TransientFaults int64
	IORetries       int64
	FailedSaves     int64
}

// Stats returns a point-in-time copy of the counters.
func (c *Checkpointer) Stats() StatsSnapshot {
	return StatsSnapshot{
		Checkpoints:     c.stats.Checkpoints.Load(),
		Obsolete:        c.stats.Obsolete.Load(),
		CASRetries:      c.stats.CASRetries.Load(),
		BytesWritten:    c.stats.BytesWritten.Load(),
		BytesPersisted:  c.stats.BytesPersisted.Load(),
		DeltaSaves:      c.stats.DeltaSaves.Load(),
		KeyframeSaves:   c.stats.KeyframeSaves.Load(),
		Persist:         time.Duration(c.stats.PersistNanos.Load()),
		SlotWaits:       c.stats.SlotWaits.Load(),
		TransientFaults: c.stats.TransientFaults.Load(),
		IORetries:       c.stats.IORetries.Load(),
		FailedSaves:     c.stats.FailedSaves.Load(),
	}
}

// New formats dev for the given configuration and returns a ready engine.
// Any previous contents are destroyed. Use Open to attach to a formatted
// device after a restart.
func New(dev storage.Device, cfg Config) (*Checkpointer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	need := DeviceBytesFor(cfg)
	if dev.Size() < need {
		return nil, fmt.Errorf("core: device holds %d bytes, need %d for N=%d, m=%d, K=%d",
			dev.Size(), need, cfg.Concurrent, cfg.SlotBytes, cfg.DeltaKeyframe)
	}
	sb := superblock{
		slots:         cfg.Concurrent + 1 + cfg.DeltaKeyframe,
		slotBytes:     cfg.SlotBytes,
		epoch:         nextEpoch(dev),
		deltaKeyframe: cfg.DeltaKeyframe,
	}
	if cfg.BlackBox.Enabled() {
		sb.blackBoxBytes = cfg.BlackBox.Layout().RegionBytes()
	}
	// The new-epoch superblock goes durable FIRST: from that instant every
	// slot header still on the device carries a stale epoch and is rejected
	// by recovery, so neither a completed reformat nor a crash mid-format
	// can resurrect checkpoints from the previous image.
	if err := dev.Persist(sb.encode(), superOff); err != nil {
		return nil, err
	}
	// Then invalidate both pointer records — belt and suspenders on top of
	// the epoch check, and what keeps Open from chasing stale slots.
	zero := make([]byte, recordSize)
	if err := dev.Persist(zero, recordAOff); err != nil {
		return nil, err
	}
	if err := dev.Persist(zero, recordBOff); err != nil {
		return nil, err
	}
	if sb.blackBoxBytes > 0 {
		// The telemetry region header carries the same fresh epoch: frames
		// surviving from the previous image fail the epoch check, so a
		// reformat can no more resurrect stale telemetry than stale slots.
		if err := blackbox.Format(dev, blackBoxBase(sb), sb.epoch, cfg.BlackBox.Layout()); err != nil {
			return nil, err
		}
	}
	return attach(dev, cfg, sb, nil, 0)
}

// nextEpoch picks the format generation for a fresh image: one past the
// previous superblock's epoch when the device already carried one, else 1.
// Deterministic (no clock or randomness), never 0 (the legacy value), and
// guaranteed to differ from every epoch the old image's slot headers carry.
func nextEpoch(dev storage.Device) uint64 {
	head := make([]byte, 64)
	if err := dev.ReadAt(head, superOff); err == nil {
		if old, err := decodeSuperblock(head); err == nil {
			e := old.epoch + 1
			if e == 0 {
				e = 1
			}
			return e
		}
	}
	return 1
}

// Open attaches to a previously formatted device, recovering the latest
// persisted checkpoint pointer (§4.2). The returned engine continues the
// counter sequence past the recovered checkpoint.
func Open(dev storage.Device, cfg Config) (*Checkpointer, error) {
	head := make([]byte, 64)
	if err := dev.ReadAt(head, superOff); err != nil {
		return nil, err
	}
	sb, err := decodeSuperblock(head)
	if err != nil {
		return nil, err
	}
	// Geometry comes from the superblock, not the caller: a delta-formatted
	// device reserves K of its slots for the pinned chain.
	cfg.DeltaKeyframe = sb.deltaKeyframe
	cfg.Concurrent = sb.slots - 1 - sb.deltaKeyframe
	cfg.SlotBytes = sb.slotBytes
	cfg = cfg.withDefaults()
	latest, loc, err := recoverPointer(dev, sb)
	if err != nil && err != ErrNoCheckpoint {
		return nil, err
	}
	return attach(dev, cfg, sb, latest, loc)
}

func attach(dev storage.Device, cfg Config, sb superblock, latest *checkMeta, latestLoc int) (*Checkpointer, error) {
	pool, err := chunkpool.ForBudget(cfg.DRAMBudget, int64(cfg.ChunkBytes))
	if err != nil {
		return nil, err
	}
	c := &Checkpointer{
		dev:       dev,
		cfg:       cfg,
		sb:        sb,
		freeSpace: lfqueue.New[int](),
		pool:      pool,
		slotSeq:   make([]atomic.Uint64, sb.slots),
		obsv:      cfg.Observer,
		dec:       decision.Find(cfg.Observer),
	}
	c.committer, _ = dev.(storage.CheckpointCommitter)
	c.perWriterBW.Store(math.Float64bits(cfg.PerWriterBW))
	pinned := make(map[int]bool)
	if latest != nil {
		pinned[latest.slot] = true // the published slot is never free (§4.1 invariant)
		if sb.deltaKeyframe > 0 {
			// Rebuild the keyframe→delta chain the recovered tip sits on;
			// recoverPointer already validated it, so a failure here is real
			// on-device damage. Every chain slot stays out of the free queue.
			chain, err := chainMetas(dev, sb, *latest)
			if err != nil {
				return nil, err
			}
			for _, m := range chain {
				pinned[m.slot] = true
			}
			c.chain = chain
			c.deltasSince = len(chain) - 1
		}
	}
	for i := 0; i < sb.slots; i++ {
		if !pinned[i] {
			c.freeSpace.Enq(i)
		}
	}
	if sb.deltaKeyframe > 0 {
		// hashes stays nil: the first save after attach is always a keyframe
		// (there is no in-memory hash state to diff against).
		c.tracker = &DirtyTracker{}
	}
	if latest != nil {
		c.checkAddr.Store(latest)
		c.gCounter.Store(latest.counter)
		c.recordHighest = latest.counter
		// Resume the location ping-pong so the next record does not
		// overwrite the one just recovered.
		c.recordSeq = uint64(latestLoc) + 1
	}
	if sb.blackBoxBytes > 0 && obs.FindRecorder(cfg.Observer) != nil {
		// The flusher appends after the newest surviving frame, so
		// telemetry written post-restart extends the pre-crash tail.
		j, err := blackbox.OpenJournal(dev, blackBoxBase(sb), sb.blackBoxBytes, sb.epoch)
		if err != nil {
			return nil, fmt.Errorf("core: open black box: %w", err)
		}
		fl, err := blackbox.NewFlusher(j, cfg.Observer, cfg.BlackBox)
		if err != nil {
			return nil, err
		}
		c.bbox = fl
		fl.Start()
	}
	c.scrub = newScrubber(c, cfg.Scrub)
	c.scrub.start()
	return c, nil
}

// Config returns the engine's effective configuration.
func (c *Checkpointer) Config() Config { return c.cfg }

// Observer returns the configured lifecycle observer (nil when
// observability is off).
func (c *Checkpointer) Observer() obs.Observer { return c.obsv }

// SetPerWriterBW changes the per-writer pacing rate (bytes/sec; 0 unpaces).
// It applies to checkpoints started after the call.
func (c *Checkpointer) SetPerWriterBW(bytesPerSec float64) {
	if bytesPerSec < 0 {
		bytesPerSec = 0
	}
	c.perWriterBW.Store(math.Float64bits(bytesPerSec))
}

// Close marks the engine closed. In-flight checkpoints finish; new ones
// fail. The device is not closed (the caller owns it). An attached
// black-box flusher is stopped after one final frame, so the telemetry
// tail at clean shutdown is durable.
func (c *Checkpointer) Close() error {
	c.closed.Store(true)
	if c.scrub != nil {
		c.scrub.stopWait()
	}
	if c.bbox != nil {
		c.bbox.Stop()
	}
	return nil
}

// FlushBlackBox forces one black-box frame now and returns its sequence
// number. It returns 0, nil when the engine has no black box attached.
func (c *Checkpointer) FlushBlackBox() (uint64, error) {
	if c.bbox == nil {
		return 0, nil
	}
	return c.bbox.Flush()
}

// BlackBox returns the attached black-box flusher (nil when the device
// has no telemetry region or no flight recorder is configured); useful
// for mounting its pccheck_blackbox_* metrics families.
func (c *Checkpointer) BlackBox() *blackbox.Flusher { return c.bbox }

// Checkpoint persists one checkpoint from src and returns its counter. It
// implements Listing 1 of the paper plus the chunked pipelining of §4.1.
//
// On return with nil error the checkpoint is either durably published, or
// was durably superseded by a concurrent checkpoint with a higher counter —
// in both cases the state at this counter or newer survives a crash.
func (c *Checkpointer) Checkpoint(ctx context.Context, src Source) (uint64, error) {
	if c.closed.Load() {
		return 0, ErrClosed
	}
	size := src.Size()
	if size > c.sb.slotBytes {
		return 0, fmt.Errorf("%w: %d > %d", ErrTooLarge, size, c.sb.slotBytes)
	}
	if c.sb.deltaKeyframe > 0 {
		return c.checkpointDelta(ctx, src)
	}
	start := time.Now()
	obsStart := c.obsNow()

	// Listing 1, line 3: sample the last published checkpoint BEFORE taking
	// a counter — this ordering is what makes every CAS attempt legal.
	lastCheck := c.checkAddr.Load()

	// Line 5: order this checkpoint.
	counter := c.gCounter.Add(1)

	// Lines 6–11: obtain a free slot, spinning like the paper's deq loop.
	slot, waited, err := c.acquireSlot(ctx)
	if err != nil {
		c.stats.FailedSaves.Add(1)
		c.instant(obs.PhaseSaveFailed, counter, -1, 0, 0)
		return 0, err
	}
	if waited {
		c.stats.SlotWaits.Add(1)
		if c.dec != nil {
			c.recordSlotWait(counter, time.Since(start))
		}
	}
	var didWait int64
	if waited {
		didWait = 1
	}
	c.span(obs.PhaseSlotWait, obsStart, counter, slot, 0, didWait)
	c.slotSeq[slot].Add(1) // odd: slot contents unstable

	// Lines 12–15: move the payload through DRAM chunks to the device with
	// p parallel writers, then make it durable.
	payloadCRC, err := c.writePayload(ctx, slot, src, counter)
	if err != nil {
		c.failSlot(slot, counter)
		return 0, err
	}

	// Lines 16–18: persist this slot's header before publishing.
	hdrStart := c.obsNow()
	hdr := slotHeader{counter: counter, size: size, payloadCRC: payloadCRC, hasCRC: c.cfg.VerifyPayload, epoch: c.sb.epoch}
	if err := c.retryIO(ctx, func() error {
		return c.dev.Persist(encodeSlotHeader(hdr), slotBase(c.sb, slot))
	}); err != nil {
		c.failSlot(slot, counter)
		return 0, err
	}
	c.span(obs.PhaseHeader, hdrStart, counter, slot, slotHeaderSize, 0)
	c.slotSeq[slot].Add(1) // even: slot stable until recycled

	// Lines 19–34: publish via CAS on CHECK_ADDR.
	cur := &checkMeta{slot: slot, counter: counter, size: size}
	for {
		if c.checkAddr.CompareAndSwap(lastCheck, cur) {
			// Success: persist the pointer (BARRIER), then free the old slot.
			barrierStart := c.obsNow()
			err := c.persistRecord(ctx, *cur)
			c.span(obs.PhaseBarrier, barrierStart, counter, slot, 0, 0)
			if lastCheck != nil {
				if err != nil {
					// The durable on-device record may still reference the
					// slot we were about to free; park it until a newer
					// record lands so recovery never chases a recycled slot.
					c.deferFree(lastCheck.slot)
				} else {
					c.freeSpace.Enq(lastCheck.slot)
				}
			}
			if err != nil {
				c.stats.FailedSaves.Add(1)
				c.instant(obs.PhaseSaveFailed, counter, slot, 0, 0)
				return 0, err
			}
			c.stats.Checkpoints.Add(1)
			c.stats.BytesWritten.Add(size)
			c.stats.BytesPersisted.Add(size)
			c.stats.PersistNanos.Add(int64(time.Since(start)))
			c.instant(obs.PhasePublish, counter, slot, size, size)
			c.span(obs.PhaseSave, obsStart, counter, slot, size, 0)
			return counter, nil
		}
		check := c.checkAddr.Load()
		if check == nil || check.counter < counter {
			// The registered checkpoint is older than ours: retry the CAS
			// with the fresher expected value.
			lastCheck = check
			c.stats.CASRetries.Add(1)
			c.instant(obs.PhaseCASRetry, counter, slot, 0, 0)
			continue
		}
		// A more recent checkpoint was registered (lines 29–31): make sure
		// its pointer is durable, then recycle our never-published slot.
		barrierStart := c.obsNow()
		if err := c.persistRecord(ctx, *check); err != nil {
			// Our slot was never published, so it is always safe to
			// recycle — failing the barrier must not leak it.
			c.freeSpace.Enq(slot)
			c.stats.FailedSaves.Add(1)
			c.instant(obs.PhaseSaveFailed, counter, slot, 0, 0)
			return 0, err
		}
		c.span(obs.PhaseBarrier, barrierStart, counter, slot, 0, 0)
		c.freeSpace.Enq(slot)
		c.stats.Obsolete.Add(1)
		c.stats.BytesWritten.Add(size)
		c.stats.BytesPersisted.Add(size)
		c.stats.PersistNanos.Add(int64(time.Since(start)))
		c.instant(obs.PhaseObsolete, counter, slot, size, size)
		c.span(obs.PhaseSave, obsStart, counter, slot, size, 0)
		return counter, nil
	}
}

// failSlot abandons an unpublished slot after a persist failure: the seqlock
// returns to even (contents settled, albeit garbage), the slot rejoins the
// free queue, and the failure is counted. Slot accounting must balance on
// every error path — a leaked slot permanently lowers the engine's effective
// concurrency.
func (c *Checkpointer) failSlot(slot int, counter uint64) {
	c.slotSeq[slot].Add(1)
	c.freeSpace.Enq(slot)
	c.stats.FailedSaves.Add(1)
	c.instant(obs.PhaseSaveFailed, counter, slot, 0, 0)
}

// deferFree parks a slot that the durable pointer record may still
// reference. It is released by the next successful persistRecord, whose
// newer record subsumes any stale reference.
func (c *Checkpointer) deferFree(slot int) {
	c.recordMu.Lock()
	c.pendingFree = append(c.pendingFree, slot)
	c.recordMu.Unlock()
}

// acquireSlot dequeues a free slot, spinning until one appears (the paper's
// while-true deq loop) or ctx is cancelled. An empty queue can also mean a
// slot is parked behind a failed pointer-record barrier; in that case the
// barrier is re-driven so the spin either frees a slot or fails fast.
func (c *Checkpointer) acquireSlot(ctx context.Context) (slot int, waited bool, err error) {
	if s, ok := c.freeSpace.Deq(); ok {
		return s, false, nil
	}
	for spin := 0; ; spin++ {
		if s, ok := c.freeSpace.Deq(); ok {
			return s, true, nil
		}
		if err := ctx.Err(); err != nil {
			return 0, true, err
		}
		if err := c.redriveRecord(ctx); err != nil {
			return 0, true, err
		}
		if spin < 100 {
			runtime.Gosched()
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// redriveRecord retries the pointer-record barrier for the currently
// published checkpoint when earlier failures left slots parked in
// pendingFree. Success releases those slots back to the free queue (via
// persistRecord); a device that still cannot persist records returns the
// error so a waiting Save fails fast instead of spinning forever —
// essential at Concurrent=1, where the parked slot is the only spare.
func (c *Checkpointer) redriveRecord(ctx context.Context) error {
	c.recordMu.Lock()
	parked := len(c.pendingFree) > 0
	c.recordMu.Unlock()
	if !parked {
		return nil
	}
	m := c.checkAddr.Load()
	if m == nil {
		return nil
	}
	return c.persistRecord(ctx, *m)
}

// writePayload streams src into the slot's payload area through the DRAM
// chunk pool, persisting with the configured number of writer goroutines,
// and returns the payload CRC (0 when verification is disabled).
//
// Pipelining (§4.1 "Pipelining and Using Chunks"): the source fill of chunk
// k+1 overlaps the device persist of chunk k, bounded by pool capacity — a
// full pool is exactly the "checkpoint waits for free chunks in DRAM"
// condition of §3.2. The producer fills chunks in payload order, so the
// payload CRC folds incrementally there, off the device critical path.
func (c *Checkpointer) writePayload(ctx context.Context, slot int, src Source, counter uint64) (uint32, error) {
	size := src.Size()
	base := payloadBase(c.sb, slot)

	type task struct {
		chunk *chunkpool.Chunk
		off   int64 // offset within the payload
		n     int
	}

	writers := c.cfg.Writers
	tasks := make(chan task, writers)
	errCh := make(chan error, writers)
	var persisted atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup

	// p writer goroutines persist chunks to the device. Each paces itself
	// at the per-thread bandwidth, mirroring that one OS thread cannot
	// saturate a storage device (§3.3/§5.4.2). Transient device faults are
	// absorbed per the retry policy right here at the chunk granularity —
	// rewriting one chunk is idempotent and far cheaper than restarting
	// the whole checkpoint (the FastPersist lesson: per-write failure
	// handling belongs in the parallel-writer path).
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(writer int32) {
			defer wg.Done()
			lane := storage.NewThrottle(math.Float64frombits(c.perWriterBW.Load()))
			for t := range tasks {
				// The per-writer lane and the device's own pacing overlap:
				// reserve the lane, let the device pace the write, then
				// sleep out whatever lane budget remains. The chunk's
				// effective rate is min(laneBW, device share), as on real
				// hardware — not the series of the two.
				laneDeadline := lane.Reserve(t.n)
				persistStart := c.obsNow()
				err := c.retryIO(ctx, func() error {
					if err := c.dev.WriteAt(t.chunk.Bytes()[:t.n], base+t.off); err != nil {
						return err
					}
					if c.dev.Kind() == storage.KindPMEM {
						// PMEM path: each writer fences its own stores (§4.1).
						return c.dev.Sync(base+t.off, int64(t.n))
					}
					return nil
				})
				if c.obsv != nil {
					c.obsv.Emit(obs.Event{
						TS: persistStart, Dur: time.Now().UnixNano() - persistStart,
						Counter: counter, Bytes: int64(t.n), Value: t.off,
						Phase: obs.PhasePersist, Slot: int32(slot), Writer: writer, Rank: -1,
					})
				}
				if wait := time.Until(laneDeadline); wait > 0 {
					time.Sleep(wait)
				}
				c.pool.Release(t.chunk)
				if err != nil {
					failed.Store(true)
					select {
					case errCh <- err:
					default:
					}
					continue
				}
				persisted.Add(int64(t.n))
			}
		}(int32(w))
	}

	crc := crc32.NewIEEE()
	var produceErr error
	for off := int64(0); off < size; {
		if failed.Load() {
			// A writer already failed past its retry budget; producing
			// more chunks would only burn device bandwidth. errCh carries
			// the error out.
			break
		}
		waitStart := c.obsNow()
		chunk, err := c.pool.Acquire(ctx)
		if err != nil {
			produceErr = err
			break
		}
		c.span(obs.PhaseChunkWait, waitStart, counter, slot, 0, off)
		n := chunk.Cap()
		if int64(n) > size-off {
			n = int(size - off)
		}
		// The paper's step ③: the copy engine moves the range into the DRAM
		// chunk (for a GPU source this is the paced D2H copy).
		copyStart := c.obsNow()
		if err := src.ReadInto(chunk.Bytes()[:n], off); err != nil {
			c.pool.Release(chunk)
			produceErr = err
			break
		}
		if c.cfg.VerifyPayload {
			crc.Write(chunk.Bytes()[:n]) //nolint:errcheck // hash.Write never fails
		}
		c.span(obs.PhaseCopy, copyStart, counter, slot, int64(n), off)
		tasks <- task{chunk: chunk, off: off, n: n}
		off += int64(n)
	}
	close(tasks)
	wg.Wait()

	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	if produceErr != nil {
		return 0, produceErr
	}
	if got := persisted.Load(); got != size {
		return 0, fmt.Errorf("core: persisted %d of %d bytes", got, size)
	}

	// SSD path: a single sync covers all writers' chunks (§4.1: "the main
	// thread can call a single msync"). PMEM writers already fenced.
	if c.dev.Kind() != storage.KindPMEM {
		syncStart := c.obsNow()
		if err := c.retryIO(ctx, func() error { return c.dev.Sync(base, size) }); err != nil {
			return 0, err
		}
		c.span(obs.PhaseSync, syncStart, counter, slot, size, 0)
	}
	if !c.cfg.VerifyPayload {
		return 0, nil
	}
	return crc.Sum32(), nil
}

// persistRecord durably writes the pointer record for meta. Records are
// written in strictly increasing counter order, alternating between the two
// on-device locations; a call whose counter is already superseded by a
// durable record returns immediately (the newer record subsumes it). This is
// the BARRIER(CHECK_ADDR) of Listing 1: when it returns with nil, a pointer
// with counter ≥ meta.counter is durable. Transient device faults are
// retried per the policy; on success, slots parked by earlier record
// failures rejoin the free queue — the newer durable record subsumes any
// stale reference to them.
func (c *Checkpointer) persistRecord(ctx context.Context, meta checkMeta) error {
	c.recordMu.Lock()
	defer c.recordMu.Unlock()
	if meta.counter <= c.recordHighest {
		return nil
	}
	return c.persistRecordLocked(ctx, meta)
}

// forceRecord persists a pointer record even when its counter is already
// durable — the scrubber's repair path repoints an existing counter at a
// freshly rewritten slot. Only a strictly newer durable record makes the
// write unnecessary (it no longer references the repaired checkpoint).
func (c *Checkpointer) forceRecord(ctx context.Context, meta checkMeta) error {
	c.recordMu.Lock()
	defer c.recordMu.Unlock()
	if meta.counter < c.recordHighest {
		return nil
	}
	return c.persistRecordLocked(ctx, meta)
}

// persistRecordLocked is the shared record-write body; recordMu held.
func (c *Checkpointer) persistRecordLocked(ctx context.Context, meta checkMeta) error {
	off := int64(recordAOff)
	if c.recordSeq%2 == 1 {
		off = recordBOff
	}
	if err := c.retryIO(ctx, func() error {
		return c.dev.Persist(encodeRecord(meta), off)
	}); err != nil {
		return err
	}
	c.recordSeq++
	c.recordHighest = meta.counter
	for _, s := range c.pendingFree {
		c.freeSpace.Enq(s)
	}
	c.pendingFree = c.pendingFree[:0]
	// Commit notification: on tiered devices the drainer can only advance a
	// lower tier's durable counter past checkpoints whose pointer record is
	// durable at tier 0 — which is exactly now, still under recordMu so
	// marks land in counter order.
	if c.committer != nil {
		c.committer.CommitCheckpoint(meta.counter)
	}
	return nil
}

// FreeSlots reports how many checkpoint slots are currently in the free
// queue. With no checkpoint in flight it must equal
// TotalSlots()-PinnedSlots() — the slot-conservation invariant the fault
// tests and the bench's -faults mode check after every failure.
func (c *Checkpointer) FreeSlots() int { return c.freeSpace.Len() }

// TotalSlots reports the device's slot count: N+1, plus K in delta mode.
func (c *Checkpointer) TotalSlots() int { return c.sb.slots }

// PinnedSlots reports how many slots are held out of the free queue by
// published state: the keyframe→delta chain in delta mode, the single
// published slot otherwise (0 when nothing has been published).
func (c *Checkpointer) PinnedSlots() int {
	if c.sb.deltaKeyframe > 0 {
		c.deltaMu.Lock()
		defer c.deltaMu.Unlock()
		return len(c.chain)
	}
	if c.checkAddr.Load() != nil {
		return 1
	}
	return 0
}

// Latest returns the newest published checkpoint's counter and logical
// (reconstructed) size.
func (c *Checkpointer) Latest() (counter uint64, size int64, ok bool) {
	m := c.checkAddr.Load()
	if m == nil {
		return 0, 0, false
	}
	return m.counter, m.logicalSize(), true
}

// ReadLatest copies the newest published checkpoint's payload into dst and
// returns its counter and length. dst must be at least the checkpoint size.
//
// Reads are safe against concurrent checkpointing: the published slot can be
// recycled by newer publications while the read is in flight, so the read
// validates the slot's seqlock and retries with fresh metadata when the
// contents moved under it.
func (c *Checkpointer) ReadLatest(dst []byte) (uint64, int64, error) {
	if c.sb.deltaKeyframe > 0 {
		return c.readLatestDelta(dst)
	}
	for attempt := 0; attempt < 1000; attempt++ {
		m := c.checkAddr.Load()
		if m == nil {
			return 0, 0, ErrNoCheckpoint
		}
		if int64(len(dst)) < m.size {
			return 0, 0, fmt.Errorf("%w: buffer %d < checkpoint %d", ErrBufferTooSmall, len(dst), m.size)
		}
		s1 := c.slotSeq[m.slot].Load()
		if s1%2 == 1 {
			// The slot is being rewritten, so m is stale; a newer
			// publication exists — reload.
			runtime.Gosched()
			continue
		}
		err := readSlotPayload(c.dev, c.sb, *m, dst[:m.size])
		if c.slotSeq[m.slot].Load() != s1 {
			runtime.Gosched()
			continue // recycled mid-read; retry against the newer state
		}
		if err != nil {
			// The seqlock sample above happens after the checkAddr load, so
			// a full recycle of m's slot in that window leaves the seqlock
			// looking stable while the header holds a newer counter. If a
			// newer publication exists, m was simply stale — retry; with no
			// newer publication the mismatch is real on-device damage.
			if errors.Is(err, errSlotRecycled) && c.checkAddr.Load() != m {
				runtime.Gosched()
				continue
			}
			return 0, 0, err
		}
		return m.counter, m.size, nil
	}
	return 0, 0, fmt.Errorf("core: ReadLatest starved by concurrent checkpoint churn")
}

// ReadVersion reads the checkpoint with the given counter if one of the
// slots still holds it (see RecoverVersion). The per-slot seqlock rejects
// reads torn by a concurrent checkpoint recycling the slot.
func (c *Checkpointer) ReadVersion(counter uint64) ([]byte, error) {
	if c.sb.deltaKeyframe > 0 {
		c.deltaMu.Lock()
		defer c.deltaMu.Unlock()
		// Under deltaMu no save is mutating slots, so no seqlock dance: walk
		// the requested version's chain straight off the device.
		return recoverVersionDelta(c.dev, c.sb, counter)
	}
	for attempt := 0; attempt < 1000; attempt++ {
		seqs := make([]uint64, len(c.slotSeq))
		for i := range c.slotSeq {
			seqs[i] = c.slotSeq[i].Load()
		}
		payload, slot, err := recoverVersionSlot(c.dev, counter)
		if err != nil {
			return nil, err
		}
		if seqs[slot]%2 == 0 && c.slotSeq[slot].Load() == seqs[slot] {
			return payload, nil
		}
		runtime.Gosched()
	}
	return nil, fmt.Errorf("core: ReadVersion starved by concurrent checkpoint churn")
}
