package core

import (
	"hash/crc32"

	"pccheck/internal/storage"
)

// Inspection: a read-only, non-destructive dump of a checkpoint device's
// on-disk structures — superblock, both pointer records, every slot header,
// the recovery cursor — for operators debugging a device and for the
// pccheck-inspect command.

// RecordInfo describes one pointer record location.
type RecordInfo struct {
	// Valid reports whether the record decodes (magic + CRC + non-zero).
	Valid bool
	// Counter, Slot and Size are the record's contents when valid.
	Counter uint64
	Slot    int
	Size    int64
}

// SlotInfo describes one checkpoint slot.
type SlotInfo struct {
	// Index is the slot number.
	Index int
	// HeaderValid reports whether the slot header decodes.
	HeaderValid bool
	// Counter and Size are the header's contents when valid.
	Counter uint64
	Size    int64
	// Epoch is the format generation the header was written under;
	// EpochStale marks a header surviving from a previous format, whose
	// payload recovery will never serve.
	Epoch      uint64
	EpochStale bool
	// HasChecksum reports whether the payload carries a CRC.
	HasChecksum bool
	// PayloadOK is set only when verify was requested and a checksum
	// exists: true = the payload matches its CRC.
	PayloadOK *bool
	// Published marks the slot the recovered pointer references.
	Published bool
	// Kind is the payload kind (0 = full, 1 = delta record); BaseCounter
	// and FullSize carry the delta header's chain predecessor and logical
	// size when Kind is delta.
	Kind        uint8
	BaseCounter uint64
	FullSize    int64
	// InChain marks slots holding a link of the recoverable delta chain.
	InChain bool
	// Quarantined marks a slot the scrubber tombstoned: the copy was
	// damaged with no healthy source to repair from, and recovery skips it.
	Quarantined bool
}

// ChainLink is one link of the recoverable keyframe→delta chain.
type ChainLink struct {
	Counter uint64
	Slot    int
	// Kind is slot payload kind; the first link is always a keyframe (0).
	Kind uint8
	// Size is the stored record length (keyframe payload or delta record).
	Size int64
}

// CursorInfo describes a persisted recovery-iterator cursor.
type CursorInfo struct {
	// Counter is the checkpoint the interrupted restore was reading.
	Counter uint64
	// Position is how many bytes it had delivered.
	Position int64
}

// Report is the full inspection result.
type Report struct {
	// Slots is the slot count (N+1); SlotBytes the per-slot capacity m.
	Slots     int
	SlotBytes int64
	// Epoch is the device's current format generation.
	Epoch uint64
	// Records holds both pointer record locations (A then B).
	Records [2]RecordInfo
	// Latest is the checkpoint recovery would return; Recoverable reports
	// whether one exists.
	Latest      RecordInfo
	Recoverable bool
	// DeltaKeyframe is K when the device is delta-formatted, 0 otherwise.
	DeltaKeyframe int
	// LatestFullSize is the logical size of the recoverable checkpoint
	// (equals Latest.Size except for a delta tip).
	LatestFullSize int64
	// Chain is the recoverable keyframe→delta chain, keyframe first; on a
	// delta device with a recoverable full tip it holds that single link.
	Chain []ChainLink
	// SlotInfos describes each slot.
	SlotInfos []SlotInfo
	// Cursor is a pending recovery cursor, if any.
	Cursor *CursorInfo
}

// Healthy reports whether the device is in a state recovery can serve
// confidently: either a checkpoint is recoverable with its payload (and,
// for a delta tip, every chain link) intact, or the device is legitimately
// empty — no pointer record claims a checkpoint. A valid record that
// recovery nonetheless rejects (stale epoch, counter mismatch, broken
// chain) and a published or chain slot whose verified payload fails its
// CRC both make the report unhealthy; torn payloads in unpublished slots
// are normal crash debris and do not.
func (r Report) Healthy() bool {
	if !r.Recoverable && (r.Records[0].Valid || r.Records[1].Valid) {
		return false
	}
	for _, s := range r.SlotInfos {
		if (s.Published || s.InChain) && s.PayloadOK != nil && !*s.PayloadOK {
			return false
		}
	}
	return true
}

// Inspect reads a formatted device's structures. With verify set, slot
// payloads carrying checksums are read fully and validated (expensive for
// large slots).
func Inspect(dev storage.Device, verify bool) (Report, error) {
	head := make([]byte, 64)
	if err := dev.ReadAt(head, superOff); err != nil {
		return Report{}, err
	}
	sb, err := decodeSuperblock(head)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Slots: sb.slots, SlotBytes: sb.slotBytes, Epoch: sb.epoch, DeltaKeyframe: sb.deltaKeyframe}

	for i, off := range []int64{recordAOff, recordBOff} {
		buf := make([]byte, recordSize)
		if err := dev.ReadAt(buf, off); err != nil {
			return Report{}, err
		}
		if m, ok := decodeRecord(buf); ok {
			rep.Records[i] = RecordInfo{Valid: true, Counter: m.counter, Slot: m.slot, Size: m.size}
		}
	}

	latest, _, err := recoverPointer(dev, sb)
	chainSlots := make(map[int]bool)
	if err == nil {
		rep.Recoverable = true
		rep.Latest = RecordInfo{Valid: true, Counter: latest.counter, Slot: latest.slot, Size: latest.size}
		rep.LatestFullSize = latest.logicalSize()
		if sb.deltaKeyframe > 0 {
			// recoverPointer validated the chain, so this walk succeeds.
			if chain, cerr := chainMetas(dev, sb, *latest); cerr == nil {
				for _, m := range chain {
					rep.Chain = append(rep.Chain, ChainLink{Counter: m.counter, Slot: m.slot, Kind: m.kind, Size: m.size})
					chainSlots[m.slot] = true
				}
			}
		}
	} else if err != ErrNoCheckpoint {
		return Report{}, err
	}

	for i := 0; i < sb.slots; i++ {
		info := SlotInfo{Index: i}
		buf := make([]byte, slotHeaderSize)
		if err := dev.ReadAt(buf, slotBase(sb, i)); err != nil {
			return Report{}, err
		}
		if hdr, ok := decodeSlotHeader(buf); ok {
			info.HeaderValid = true
			info.Counter = hdr.counter
			info.Size = hdr.size
			info.HasChecksum = hdr.hasCRC
			info.Epoch = hdr.epoch
			info.EpochStale = hdr.epoch != sb.epoch
			info.Kind = hdr.kind
			info.Quarantined = hdr.quarantined()
			if hdr.kind == slotKindDelta {
				info.BaseCounter = hdr.base
				info.FullSize = hdr.fullSize
			}
			if verify && hdr.hasCRC && hdr.size >= 0 && hdr.size <= sb.slotBytes {
				payload := make([]byte, hdr.size)
				if err := dev.ReadAt(payload, payloadBase(sb, i)); err == nil {
					ok := crc32.ChecksumIEEE(payload) == hdr.payloadCRC
					info.PayloadOK = &ok
				}
			}
		}
		if rep.Recoverable && i == rep.Latest.Slot {
			info.Published = true
		}
		info.InChain = chainSlots[i]
		rep.SlotInfos = append(rep.SlotInfos, info)
	}

	cbuf := make([]byte, 24)
	if err := dev.ReadAt(cbuf, cursorOff); err == nil {
		if c, ok := decodeCursor(cbuf); ok && c.counter != 0 {
			rep.Cursor = &CursorInfo{Counter: c.counter, Position: c.position}
		}
	}
	return rep, nil
}
