package core

import (
	"hash/crc32"

	"pccheck/internal/storage"
)

// Inspection: a read-only, non-destructive dump of a checkpoint device's
// on-disk structures — superblock, both pointer records, every slot header,
// the recovery cursor — for operators debugging a device and for the
// pccheck-inspect command.

// RecordInfo describes one pointer record location.
type RecordInfo struct {
	// Valid reports whether the record decodes (magic + CRC + non-zero).
	Valid bool
	// Counter, Slot and Size are the record's contents when valid.
	Counter uint64
	Slot    int
	Size    int64
}

// SlotInfo describes one checkpoint slot.
type SlotInfo struct {
	// Index is the slot number.
	Index int
	// HeaderValid reports whether the slot header decodes.
	HeaderValid bool
	// Counter and Size are the header's contents when valid.
	Counter uint64
	Size    int64
	// Epoch is the format generation the header was written under;
	// EpochStale marks a header surviving from a previous format, whose
	// payload recovery will never serve.
	Epoch      uint64
	EpochStale bool
	// HasChecksum reports whether the payload carries a CRC.
	HasChecksum bool
	// PayloadOK is set only when verify was requested and a checksum
	// exists: true = the payload matches its CRC.
	PayloadOK *bool
	// Published marks the slot the recovered pointer references.
	Published bool
}

// CursorInfo describes a persisted recovery-iterator cursor.
type CursorInfo struct {
	// Counter is the checkpoint the interrupted restore was reading.
	Counter uint64
	// Position is how many bytes it had delivered.
	Position int64
}

// Report is the full inspection result.
type Report struct {
	// Slots is the slot count (N+1); SlotBytes the per-slot capacity m.
	Slots     int
	SlotBytes int64
	// Epoch is the device's current format generation.
	Epoch uint64
	// Records holds both pointer record locations (A then B).
	Records [2]RecordInfo
	// Latest is the checkpoint recovery would return; Recoverable reports
	// whether one exists.
	Latest      RecordInfo
	Recoverable bool
	// SlotInfos describes each slot.
	SlotInfos []SlotInfo
	// Cursor is a pending recovery cursor, if any.
	Cursor *CursorInfo
}

// Inspect reads a formatted device's structures. With verify set, slot
// payloads carrying checksums are read fully and validated (expensive for
// large slots).
func Inspect(dev storage.Device, verify bool) (Report, error) {
	head := make([]byte, 64)
	if err := dev.ReadAt(head, superOff); err != nil {
		return Report{}, err
	}
	sb, err := decodeSuperblock(head)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Slots: sb.slots, SlotBytes: sb.slotBytes, Epoch: sb.epoch}

	for i, off := range []int64{recordAOff, recordBOff} {
		buf := make([]byte, recordSize)
		if err := dev.ReadAt(buf, off); err != nil {
			return Report{}, err
		}
		if m, ok := decodeRecord(buf); ok {
			rep.Records[i] = RecordInfo{Valid: true, Counter: m.counter, Slot: m.slot, Size: m.size}
		}
	}

	latest, _, err := recoverPointer(dev, sb)
	if err == nil {
		rep.Recoverable = true
		rep.Latest = RecordInfo{Valid: true, Counter: latest.counter, Slot: latest.slot, Size: latest.size}
	} else if err != ErrNoCheckpoint {
		return Report{}, err
	}

	for i := 0; i < sb.slots; i++ {
		info := SlotInfo{Index: i}
		buf := make([]byte, slotHeaderSize)
		if err := dev.ReadAt(buf, slotBase(sb, i)); err != nil {
			return Report{}, err
		}
		if hdr, ok := decodeSlotHeader(buf); ok {
			info.HeaderValid = true
			info.Counter = hdr.counter
			info.Size = hdr.size
			info.HasChecksum = hdr.hasCRC
			info.Epoch = hdr.epoch
			info.EpochStale = hdr.epoch != sb.epoch
			if verify && hdr.hasCRC && hdr.size >= 0 && hdr.size <= sb.slotBytes {
				payload := make([]byte, hdr.size)
				if err := dev.ReadAt(payload, payloadBase(sb, i)); err == nil {
					ok := crc32.ChecksumIEEE(payload) == hdr.payloadCRC
					info.PayloadOK = &ok
				}
			}
		}
		if rep.Recoverable && i == rep.Latest.Slot {
			info.Published = true
		}
		rep.SlotInfos = append(rep.SlotInfos, info)
	}

	cbuf := make([]byte, 24)
	if err := dev.ReadAt(cbuf, cursorOff); err == nil {
		if c, ok := decodeCursor(cbuf); ok && c.counter != 0 {
			rep.Cursor = &CursorInfo{Counter: c.counter, Position: c.position}
		}
	}
	return rep, nil
}
