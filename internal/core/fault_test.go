package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"pccheck/internal/storage"
)

// Injected device failures must surface as errors, never corrupt the
// engine's bookkeeping, and never compromise an already-published
// checkpoint.

func faultEngine(t *testing.T, cfg Config) (*Checkpointer, *storage.FaultDevice) {
	t.Helper()
	dev := storage.NewFaultDevice(storage.NewRAM(DeviceBytes(cfg.Concurrent, cfg.SlotBytes)))
	c, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, dev
}

func TestWriteFaultDuringPayload(t *testing.T) {
	c, dev := faultEngine(t, Config{Concurrent: 2, SlotBytes: 4096, Writers: 2, ChunkBytes: 1024, VerifyPayload: true})
	good := payload(1, 3000)
	if _, err := c.Checkpoint(context.Background(), BytesSource(good)); err != nil {
		t.Fatal(err)
	}

	dev.FailAfter(storage.OpWrite, 2, nil) // fail mid-payload of the next checkpoint
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(2, 3000))); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	// The published checkpoint is untouched…
	got := make([]byte, 3000)
	counter, _, err := c.ReadLatest(got)
	if err != nil || counter != 1 {
		t.Fatalf("latest after fault: %d, %v", counter, err)
	}
	if !bytes.Equal(got, good) {
		t.Fatal("published payload corrupted by failed checkpoint")
	}
	// …and the slot was recycled: new checkpoints work.
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(3, 3000))); err != nil {
		t.Fatalf("post-fault checkpoint: %v", err)
	}
	if free := c.freeSpace.Len(); free != c.sb.slots-1 {
		t.Fatalf("slot leaked after fault: free = %d", free)
	}
}

func TestSyncFaultDuringPayload(t *testing.T) {
	c, dev := faultEngine(t, Config{Concurrent: 1, SlotBytes: 2048, Writers: 1})
	dev.FailAfter(storage.OpSync, 1, nil)
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 1500))); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	// Recoverable afterwards.
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(2, 1500))); err != nil {
		t.Fatal(err)
	}
}

func TestPersistFaultOnSlotHeader(t *testing.T) {
	c, dev := faultEngine(t, Config{Concurrent: 1, SlotBytes: 1024})
	// First Persist call inside Checkpoint is the slot header.
	dev.FailAfter(storage.OpPersist, 1, nil)
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 512))); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if _, _, ok := c.Latest(); ok {
		t.Fatal("failed checkpoint got published")
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(2, 512))); err != nil {
		t.Fatal(err)
	}
}

func TestTornSlotWriteNotRecovered(t *testing.T) {
	// A checkpoint whose payload write tears must fail; recovery from the
	// device must return the previous checkpoint.
	ram := storage.NewRAM(DeviceBytes(1, 4096))
	dev := storage.NewFaultDevice(ram)
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: 4096, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	first := payload(7, 4000)
	if _, err := c.Checkpoint(context.Background(), BytesSource(first)); err != nil {
		t.Fatal(err)
	}
	dev.TearNextWrite(0.4)
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(8, 4000))); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	got, counter, err := Recover(ram)
	if err != nil {
		t.Fatal(err)
	}
	if counter != 1 || !bytes.Equal(got, first) {
		t.Fatalf("recovered %d after torn write", counter)
	}
}

func TestReadFaultSurfacesInReadLatest(t *testing.T) {
	c, dev := faultEngine(t, Config{Concurrent: 1, SlotBytes: 1024})
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 512))); err != nil {
		t.Fatal(err)
	}
	dev.FailAfter(storage.OpRead, 1, nil)
	if _, _, err := c.ReadLatest(make([]byte, 512)); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	// Transient: a later read succeeds.
	if _, _, err := c.ReadLatest(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
}

func TestFormatFaultFailsNew(t *testing.T) {
	dev := storage.NewFaultDevice(storage.NewRAM(DeviceBytes(1, 1024)))
	dev.FailAfter(storage.OpPersist, 1, nil)
	if _, err := New(dev, Config{Concurrent: 1, SlotBytes: 1024}); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
}

// Faults interleaved with concurrent checkpoints: the engine keeps its
// invariants — every acknowledged checkpoint readable, slots conserved.
func TestConcurrentCheckpointsWithSporadicFaults(t *testing.T) {
	c, dev := faultEngine(t, Config{Concurrent: 3, SlotBytes: 2048, Writers: 2, ChunkBytes: 512, VerifyPayload: true})
	ok, failed := 0, 0
	for i := 0; i < 60; i++ {
		if i%7 == 3 {
			dev.FailAfter(storage.OpWrite, int64(1+i%3), nil)
		}
		_, err := c.Checkpoint(context.Background(), BytesSource(payload(int64(i), 1024+i)))
		if err != nil {
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("round %d: unexpected error %v", i, err)
			}
			failed++
			dev.Clear()
			continue
		}
		ok++
		// Every acknowledged checkpoint must be immediately readable.
		buf := make([]byte, 2048)
		if _, _, err := c.ReadLatest(buf); err != nil {
			t.Fatalf("round %d: latest unreadable: %v", i, err)
		}
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("test degenerate: ok=%d failed=%d", ok, failed)
	}
	if free := c.freeSpace.Len(); free != c.sb.slots-1 {
		t.Fatalf("slots leaked: free = %d, want %d", free, c.sb.slots-1)
	}
}
