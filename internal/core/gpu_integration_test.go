package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"pccheck/internal/device"
	"pccheck/internal/storage"
)

// End-to-end data path of Figure 5: training state in emulated device
// memory → paced D2H copies into DRAM chunks → parallel writers persist to
// the storage device. Content must survive intact and the PCIe pacing must
// actually gate the copy phase.

func TestGPUSourceRoundTrip(t *testing.T) {
	gpu := device.New(device.Config{})
	buf, err := gpu.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	want := payload(42, 64<<10)
	copy(buf.HostView(), want)

	src, err := device.NewCheckpointSource(gpu, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	dev := storage.NewRAM(DeviceBytes(2, 64<<10))
	eng, err := New(dev, Config{Concurrent: 2, SlotBytes: 64 << 10, Writers: 3, ChunkBytes: 8 << 10, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	counter, err := eng.Checkpoint(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64<<10)
	gc, _, err := eng.ReadLatest(got)
	if err != nil || gc != counter {
		t.Fatalf("latest %d, %v", gc, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("GPU-sourced payload mismatch")
	}
}

func TestGPUSourcePartialAndValidation(t *testing.T) {
	gpu := device.New(device.Config{})
	buf, _ := gpu.Alloc(1024)
	if _, err := device.NewCheckpointSource(nil, buf, 0); err == nil {
		t.Fatal("nil gpu accepted")
	}
	if _, err := device.NewCheckpointSource(gpu, nil, 0); err == nil {
		t.Fatal("nil buffer accepted")
	}
	if _, err := device.NewCheckpointSource(gpu, buf, 2048); err == nil {
		t.Fatal("oversize length accepted")
	}
	src, err := device.NewCheckpointSource(gpu, buf, 100)
	if err != nil {
		t.Fatal(err)
	}
	if src.Size() != 100 {
		t.Fatalf("Size = %d", src.Size())
	}
	if err := src.ReadInto(make([]byte, 50), 60); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestGPUSourcePacedByPCIe(t *testing.T) {
	// 1 MB over a 10 MB/s link ⇒ the checkpoint takes ≥ ~100 ms even on an
	// instant storage device: the copy engine is the bottleneck.
	gpu := device.New(device.Config{PCIeBytesPerSec: 10 << 20})
	buf, _ := gpu.Alloc(1 << 20)
	src, err := device.NewCheckpointSource(gpu, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	dev := storage.NewRAM(DeviceBytes(1, 1<<20))
	eng, err := New(dev, Config{Concurrent: 1, SlotBytes: 1 << 20, Writers: 2, ChunkBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := eng.Checkpoint(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("paced GPU checkpoint finished in %v", elapsed)
	}
}
