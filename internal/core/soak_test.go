package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pccheck/internal/pmem"
	"pccheck/internal/storage"
)

// Soak tests: long mixed workloads hammering the engine with concurrency,
// crashes and faults simultaneously. Skipped with -short.

// TestSoakCrashStorm runs rounds of: concurrent checkpointing → hard crash →
// recovery → reattach → continue. Every recovery must yield an intact
// checkpoint at least as new as everything acknowledged before the crash.
func TestSoakCrashStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		slotBytes = 4096
		rounds    = 30
		workers   = 4
	)
	rng := rand.New(rand.NewSource(7))
	region := pmem.NewRegion(int(DeviceBytes(3, slotBytes)))
	dev := storage.NewPMEM(region)
	eng, err := New(dev, Config{Concurrent: 3, SlotBytes: slotBytes, Writers: 2, ChunkBytes: 1024, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}

	var seq atomic.Uint64
	for round := 0; round < rounds; round++ {
		var acked atomic.Uint64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					p := selfPayload(seq.Add(1), 1024+wrng.Intn(2048))
					counter, err := eng.Checkpoint(context.Background(), BytesSource(p))
					if err != nil && !errors.Is(err, ErrClosed) {
						t.Error(err)
						return
					}
					for {
						cur := acked.Load()
						if counter <= cur || acked.CompareAndSwap(cur, counter) {
							break
						}
					}
				}
			}(rng.Int63())
		}
		time.Sleep(time.Duration(1+rng.Intn(5)) * time.Millisecond)
		ackedBefore := acked.Load()
		// Fork the crash state while workers still run, then stop them.
		crashed := region.CloneDurable()
		close(stop)
		wg.Wait()

		p, counter, err := Recover(storage.NewPMEM(crashed))
		if err != nil {
			if errors.Is(err, ErrNoCheckpoint) && ackedBefore == 0 && round == 0 {
				continue
			}
			t.Fatalf("round %d: %v", round, err)
		}
		if counter < ackedBefore {
			t.Fatalf("round %d: recovered %d < acked %d", round, counter, ackedBefore)
		}
		checkSelfPayload(t, p)

		// "Reattach the disk to a new VM": continue on the crashed replica.
		region = crashed
		dev = storage.NewPMEM(region)
		eng, err = Open(dev, Config{Writers: 2, ChunkBytes: 1024, VerifyPayload: true})
		if err != nil {
			t.Fatalf("round %d reopen: %v", round, err)
		}
	}
}

// TestSoakMixedFaultsAndReaders interleaves checkpoint writers, latest
// readers and sporadic injected device faults for a sustained period.
func TestSoakMixedFaultsAndReaders(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const slotBytes = 8192
	inner := storage.NewRAM(DeviceBytes(4, slotBytes))
	dev := storage.NewFaultDevice(inner)
	eng, err := New(dev, Config{Concurrent: 4, SlotBytes: slotBytes, Writers: 3, ChunkBytes: 2048, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(1500 * time.Millisecond)
	var wg sync.WaitGroup
	var okSaves, failedSaves, reads atomic.Int64

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for time.Now().Before(deadline) {
				p := selfPayload(uint64(rng.Int63()), 2048+rng.Intn(4096))
				if _, err := eng.Checkpoint(context.Background(), BytesSource(p)); err != nil {
					if errors.Is(err, storage.ErrInjected) {
						failedSaves.Add(1)
						continue
					}
					t.Error(err)
					return
				}
				okSaves.Add(1)
			}
		}(w)
	}
	// Fault injector.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for time.Now().Before(deadline) {
			time.Sleep(time.Duration(5+rng.Intn(20)) * time.Millisecond)
			dev.FailAfter(storage.OpWrite, int64(1+rng.Intn(8)), nil)
		}
		dev.Clear()
	}()
	// Reader: the latest checkpoint must always be intact.
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, slotBytes)
		for time.Now().Before(deadline) {
			counter, size, ok := eng.Latest()
			if !ok {
				continue
			}
			gc, gs, err := eng.ReadLatest(buf)
			if err != nil {
				// A fault can hit the read-back too; only corruption is fatal.
				if errors.Is(err, storage.ErrInjected) {
					continue
				}
				t.Errorf("ReadLatest: %v", err)
				return
			}
			if gc < counter || gs <= 0 {
				t.Errorf("latest went backwards: %d -> %d (size %d)", counter, gc, size)
				return
			}
			if len(buf) >= 8 {
				seed := binary.LittleEndian.Uint64(buf)
				want := selfPayload(seed, int(gs))
				if !bytes.Equal(buf[:gs], want) {
					t.Errorf("latest checkpoint %d corrupt", gc)
					return
				}
			}
			reads.Add(1)
		}
	}()
	wg.Wait()
	if okSaves.Load() < 20 || failedSaves.Load() < 1 || reads.Load() < 20 {
		t.Fatalf("soak too weak: ok=%d failed=%d reads=%d", okSaves.Load(), failedSaves.Load(), reads.Load())
	}
	// No slots leaked across hundreds of mixed successes and failures.
	if free := eng.freeSpace.Len(); free != eng.sb.slots-1 {
		t.Fatalf("slots leaked: free=%d want %d", free, eng.sb.slots-1)
	}
}

// TestSoakTransientFaultStorm hammers a retry-enabled engine with concurrent
// checkpoint writers while an injector schedules bursts of transient faults
// across every device operation the persist path uses. Acknowledged saves
// must stay readable, transient bursts within the retry budget must be
// absorbed, and slot accounting must balance at the end — the invariant that
// matters most under -race.
func TestSoakTransientFaultStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const slotBytes = 8192
	inner := storage.NewRAM(DeviceBytes(4, slotBytes))
	dev := storage.NewFaultDevice(inner)
	eng, err := New(dev, Config{
		Concurrent: 4, SlotBytes: slotBytes, Writers: 3, ChunkBytes: 2048,
		VerifyPayload: true,
		Retry:         RetryPolicy{MaxAttempts: 4, BaseBackoff: 50 * time.Microsecond, MaxBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(1500 * time.Millisecond)
	var wg sync.WaitGroup
	var okSaves, failedSaves atomic.Int64

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for time.Now().Before(deadline) {
				p := selfPayload(uint64(rng.Int63()), 2048+rng.Intn(4096))
				if _, err := eng.Checkpoint(context.Background(), BytesSource(p)); err != nil {
					// Bursts longer than the budget may exhaust retries;
					// anything else is a bug.
					if !errors.Is(err, storage.ErrInjected) && !storage.IsTransient(err) {
						t.Errorf("unexpected error class: %v", err)
						return
					}
					failedSaves.Add(1)
					continue
				}
				okSaves.Add(1)
			}
		}(w)
	}
	// Injector: transient bursts on writes, syncs and persists, with the
	// occasional burst long enough to blow the attempt budget.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(4242))
		ops := []storage.Op{storage.OpWrite, storage.OpSync, storage.OpPersist}
		for time.Now().Before(deadline) {
			time.Sleep(time.Duration(2+rng.Intn(10)) * time.Millisecond)
			dev.FailTransient(ops[rng.Intn(len(ops))], int64(1+rng.Intn(8)), int64(1+rng.Intn(6)))
		}
		dev.Clear()
	}()
	wg.Wait()
	dev.Clear()

	s := eng.Stats()
	if okSaves.Load() < 20 || s.TransientFaults < 5 {
		t.Fatalf("soak too weak: ok=%d transient=%d", okSaves.Load(), s.TransientFaults)
	}
	if s.IORetries == 0 {
		t.Fatal("retry path never exercised")
	}
	// The latest acknowledged checkpoint must be intact.
	buf := make([]byte, slotBytes)
	if _, _, err := eng.ReadLatest(buf); err != nil {
		t.Fatalf("latest unreadable after storm: %v", err)
	}
	// Slot conservation: drive one clean save to flush any slot parked by a
	// record failure, then every slot but the published one must be free.
	if _, err := eng.Checkpoint(context.Background(), BytesSource(selfPayload(1, 2048))); err != nil {
		t.Fatalf("clean save after storm: %v", err)
	}
	if free := eng.FreeSlots(); free != eng.TotalSlots()-1 {
		t.Fatalf("slots leaked: free=%d want %d (ok=%d failed=%d)", free, eng.TotalSlots()-1, okSaves.Load(), failedSaves.Load())
	}
}
