package core

import (
	"pccheck/internal/storage"
)

// The checkpoint core owns the on-device format, so it registers the size
// probe ReopenSSD uses to validate a reopened file against its superblock:
// a recognised superblock pins the exact device size the geometry requires,
// and a truncated or grown file fails at open time with a classified
// Corrupt error instead of surfacing later as a range error mid-recovery.
func init() {
	storage.RegisterSizeProbe(func(header []byte) (int64, bool) {
		sb, err := decodeSuperblock(header)
		if err != nil {
			return 0, false
		}
		need := headerSize + int64(sb.slots)*slotStride(sb.slotBytes)
		if sb.blackBoxBytes > 0 {
			need = blackBoxBase(sb) + sb.blackBoxBytes
		}
		return need, true
	})
}

// TierReader is the optional interface tiered devices implement so recovery
// can walk their levels. storage.Tiered satisfies it.
type TierReader interface {
	Tiers() []storage.Device
}

// RecoverTiered reads the newest recoverable checkpoint across a set of
// durability tiers, fastest-first — the restart path when tier 0 may be
// gone. Every level is probed; unreachable or unformatted levels are
// skipped, and the payload with the highest checkpoint counter wins (on a
// tie, the faster tier serves the read). The cross-tier durability floor is
// therefore max over reachable tiers of each tier's drained watermark: as
// long as one tier the drainer acknowledged survives, its checkpoints do.
func RecoverTiered(levels ...storage.Device) (payload []byte, counter uint64, err error) {
	var (
		best     []byte
		bestCtr  uint64
		found    bool
		firstErr error
	)
	for _, dev := range levels {
		if dev == nil {
			continue
		}
		p, ctr, rerr := recoverDevice(dev)
		if rerr != nil {
			if firstErr == nil {
				firstErr = rerr
			}
			continue
		}
		if !found || ctr > bestCtr {
			best, bestCtr, found = p, ctr, true
		}
	}
	if found {
		return best, bestCtr, nil
	}
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return nil, 0, ErrNoCheckpoint
}
