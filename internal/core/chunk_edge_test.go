package core

import (
	"bytes"
	"context"
	"testing"

	"pccheck/internal/storage"
)

// Chunking edge cases at the delta boundary (the issue's satellite): payload
// sizes that are not a multiple of ChunkBytes, ChunkBytes larger than the
// snapshot, ChunkBytes = 0 (unpipelined), and payload sizes that change
// between saves. Each test checkpoints through the real engine and proves
// byte-exact recovery — these are the shapes where an off-by-one in the
// pipeline or in the delta boundary rule silently corrupts the tail.

// saveAndRecover checkpoints p and asserts both Recover and ReadLatest
// return exactly p.
func saveAndRecover(t *testing.T, c *Checkpointer, dev storage.Device, p []byte, tag string) {
	t.Helper()
	ctr, err := c.Checkpoint(context.Background(), BytesSource(p))
	if err != nil {
		t.Fatalf("%s: checkpoint: %v", tag, err)
	}
	got, rc, err := Recover(dev)
	if err != nil {
		t.Fatalf("%s: recover: %v", tag, err)
	}
	if rc != ctr || !bytes.Equal(got, p) {
		t.Fatalf("%s: recover returned counter %d (want %d), %d bytes (want %d), equal=%v",
			tag, rc, ctr, len(got), len(p), bytes.Equal(got, p))
	}
	dst := make([]byte, len(p)+16)
	_, n, err := c.ReadLatest(dst)
	if err != nil {
		t.Fatalf("%s: ReadLatest: %v", tag, err)
	}
	if n != int64(len(p)) || !bytes.Equal(dst[:n], p) {
		t.Fatalf("%s: ReadLatest returned %d bytes, want %d", tag, n, len(p))
	}
}

// TestDeltaTrackerFedSizeChange is the regression for the delta boundary
// rule: a tracker-fed trainer grows and shrinks its payload WITHOUT marking
// the resized tail (no mark can cover bytes the old image didn't have).
// Without the unconditional tail re-diff in computeDirty, the grown bytes
// would silently vanish from the delta and recovery would return garbage.
func TestDeltaTrackerFedSizeChange(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 8192, DeltaEvery: 1, DeltaKeyframe: 8}
	c, dev := deltaEngine(t, cfg)
	tr := c.DirtyTracker()

	p := payload(1, 3000)
	saveAndRecover(t, c, dev, p, "initial")

	// Grow: append 500 bytes; mark only a small interior range, as a real
	// trainer that resized a tensor but only "touched" one row would.
	grown := append(append([]byte(nil), p...), payload(2, 500)...)
	grown[100] ^= 0xff
	tr.MarkRange(100, 1)
	saveAndRecover(t, c, dev, grown, "grown")

	// Shrink below the original size. Feed only a one-byte mark so the
	// engine stays in trusted-marks mode: the boundary rule alone must
	// carry the reshaped final chunk.
	shrunk := append([]byte(nil), grown[:2017]...)
	shrunk[0] ^= 0x1
	tr.MarkRange(0, 1)
	saveAndRecover(t, c, dev, shrunk, "shrunk")

	// Grow again across a chunk boundary with an unmarked tail.
	regrown := append(append([]byte(nil), shrunk...), payload(3, 1111)...)
	tr.MarkRange(5, 2)
	regrown[5] ^= 0xff
	regrown[6] ^= 0xff
	saveAndRecover(t, c, dev, regrown, "regrown")

	if st := c.Stats(); st.DeltaSaves == 0 {
		t.Fatal("size-change sequence produced no delta saves — boundary rule untested")
	}
}

// TestChunkBytesLargerThanSnapshot: a pipeline chunk bigger than the whole
// payload must degrade to a single-chunk write, in both plain and delta
// mode, including payloads of 1 byte.
func TestChunkBytesLargerThanSnapshot(t *testing.T) {
	for _, delta := range []bool{false, true} {
		cfg := Config{Concurrent: 1, SlotBytes: 4096, ChunkBytes: 1 << 16}
		if delta {
			cfg.DeltaEvery = 1
			cfg.DeltaKeyframe = 3
		}
		c, dev := deltaEngine(t, cfg)
		for i, n := range []int{1, 63, 64, 65, 1000} {
			p := payload(int64(10+i), n)
			saveAndRecover(t, c, dev, p, "huge-chunk")
		}
	}
}

// TestChunkBytesNonMultiple: payload sizes that leave a short final
// pipeline chunk, crossed with delta mode (whose own 64-byte-multiple diff
// granularity never matches ChunkBytes here — the two chunkings must not
// interfere).
func TestChunkBytesNonMultiple(t *testing.T) {
	for _, delta := range []bool{false, true} {
		cfg := Config{Concurrent: 1, SlotBytes: 8192, ChunkBytes: 96}
		if delta {
			cfg.DeltaEvery = 1
			cfg.DeltaKeyframe = 4
		}
		c, dev := deltaEngine(t, cfg)
		p := sparsePayload(31, 0, 96*40+17) // 17-byte final pipeline chunk
		for i := 0; i < 6; i++ {
			if i > 0 {
				mutateSparse(p, 31, uint64(i))
			}
			saveAndRecover(t, c, dev, p, "non-multiple")
		}
		if st := c.Stats(); delta && st.DeltaSaves == 0 {
			t.Fatal("chunked delta run produced no delta saves")
		}
	}
}

// TestUnchunkedDelta: ChunkBytes = 0 writes each record in one unpipelined
// persist; the delta path must round-trip identically.
func TestUnchunkedDelta(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 8192, ChunkBytes: 0, DeltaEvery: 1, DeltaKeyframe: 4}
	c, dev := deltaEngine(t, cfg)
	p := sparsePayload(57, 0, 5000)
	for i := 0; i < 7; i++ {
		if i > 0 {
			mutateSparse(p, 57, uint64(i))
		}
		saveAndRecover(t, c, dev, p, "unchunked-delta")
	}
	st := c.Stats()
	if st.DeltaSaves == 0 || st.KeyframeSaves == 0 {
		t.Fatalf("want mixed save kinds, got deltas=%d keyframes=%d", st.DeltaSaves, st.KeyframeSaves)
	}
}
