package core

import (
	"bytes"
	"context"
	"testing"

	"pccheck/internal/storage"
)

// Fuzzing: arbitrary device contents must never panic the recovery path,
// and must never yield a "recovered" checkpoint that fails validation.

func FuzzRecoverArbitraryDevice(f *testing.F) {
	// Seed with a real formatted device image.
	dev := storage.NewRAM(DeviceBytes(1, 256))
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: 256, VerifyPayload: true})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 200))); err != nil {
		f.Fatal(err)
	}
	img := make([]byte, dev.Size())
	if err := dev.ReadAt(img, 0); err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 512))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		fuzzDev := storage.NewRAM(int64(len(data)))
		if err := fuzzDev.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		// Must not panic; errors are fine.
		payload, counter, err := Recover(fuzzDev)
		if err == nil {
			if counter == 0 {
				t.Fatal("recovered counter 0")
			}
			_ = payload
		}
		// Inspection must not panic either.
		if rep, err := Inspect(fuzzDev, true); err == nil {
			if rep.Slots < 2 {
				t.Fatalf("inspect accepted %d slots", rep.Slots)
			}
		}
		// Nor the version scan or iterator open.
		_, _ = RecoverVersion(fuzzDev, 1)
		if it, err := NewRecoveryIterator(fuzzDev, 64, 0); err == nil {
			buf := make([]byte, 128)
			for i := 0; i < 4 && !it.Done(); i++ {
				if _, err := it.Next(buf); err != nil {
					break
				}
			}
		}
	})
}

// FuzzRecoverCorruptedImage flips bytes of a valid image: recovery either
// fails cleanly or returns the original payload (checksums reject anything
// else).
func FuzzRecoverCorruptedImage(f *testing.F) {
	f.Add(uint32(0), byte(0xFF))
	f.Add(uint32(100), byte(0x01))
	f.Add(uint32(300), byte(0x80))

	want := payload(9, 200)
	dev := storage.NewRAM(DeviceBytes(1, 256))
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: 256, VerifyPayload: true})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(want)); err != nil {
		f.Fatal(err)
	}
	img := make([]byte, dev.Size())
	if err := dev.ReadAt(img, 0); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, off uint32, mask byte) {
		corrupted := append([]byte(nil), img...)
		corrupted[int(off)%len(corrupted)] ^= mask
		fuzzDev := storage.NewRAM(int64(len(corrupted)))
		if err := fuzzDev.WriteAt(corrupted, 0); err != nil {
			t.Fatal(err)
		}
		got, counter, err := Recover(fuzzDev)
		if err != nil {
			return // clean rejection
		}
		if counter != 1 || !bytes.Equal(got, want) {
			t.Fatalf("corruption at %d/%#x recovered counter %d with altered payload", off, mask, counter)
		}
	})
}
