package core

import (
	"pccheck/internal/obs/blackbox"
	"pccheck/internal/storage"
)

// PostMortem decodes the black-box telemetry region of a formatted
// device: the crash-surviving record of what the process was doing —
// flight-ring tail, goodput report, last policy decisions — as of the
// last completed flush. Torn frames and frames from a previous format
// epoch are silently skipped, mirroring recovery's slot-epoch rule; the
// surviving frames are CRC-valid and strictly sequence-monotonic.
//
// Devices formatted without a region (pre-forensics images, or BlackBox
// disabled) return blackbox.ErrNoRegion. Like Recover, a tiered device
// (TierReader) is dispatched to PostMortemTiered so a replica can answer
// forensics for a rank whose tier 0 vanished.
func PostMortem(dev storage.Device) (*blackbox.PostMortem, error) {
	if tr, ok := dev.(TierReader); ok {
		return PostMortemTiered(tr.Tiers()...)
	}
	return postMortemDevice(dev)
}

func postMortemDevice(dev storage.Device) (*blackbox.PostMortem, error) {
	head := make([]byte, 64)
	if err := dev.ReadAt(head, superOff); err != nil {
		return nil, err
	}
	sb, err := decodeSuperblock(head)
	if err != nil {
		return nil, err
	}
	if sb.blackBoxBytes == 0 {
		return nil, blackbox.ErrNoRegion
	}
	return blackbox.Decode(dev, blackBoxBase(sb), sb.blackBoxBytes, sb.epoch)
}

// PostMortemTiered decodes the black box across durability tiers,
// fastest-first, and returns the one holding the most recent telemetry
// (highest newest frame sequence). Unreachable or regionless tiers are
// skipped; when every tier lacks a region the first error (or
// blackbox.ErrNoRegion) is returned.
func PostMortemTiered(levels ...storage.Device) (*blackbox.PostMortem, error) {
	var (
		best     *blackbox.PostMortem
		firstErr error
	)
	for _, dev := range levels {
		if dev == nil {
			continue
		}
		pm, err := postMortemDevice(dev)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if best == nil || pm.LastSeq() > best.LastSeq() {
			best = pm
		}
	}
	if best != nil {
		return best, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return nil, blackbox.ErrNoRegion
}
