package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pccheck/internal/pmem"
	"pccheck/internal/storage"
)

// selfPayload builds a payload whose content is a pure function of an
// embedded seed, so recovery can verify integrity without knowing which
// checkpoint survived.
func selfPayload(seed uint64, n int) []byte {
	b := make([]byte, n)
	binary.LittleEndian.PutUint64(b, seed)
	rng := rand.New(rand.NewSource(int64(seed)))
	rng.Read(b[8:])
	return b
}

// checkSelfPayload verifies a recovered payload against its embedded seed.
func checkSelfPayload(t *testing.T, p []byte) {
	t.Helper()
	if len(p) < 8 {
		t.Fatalf("recovered payload too short: %d", len(p))
	}
	seed := binary.LittleEndian.Uint64(p)
	want := selfPayload(seed, len(p))
	if !bytes.Equal(p, want) {
		t.Fatalf("recovered payload for seed %d is corrupted", seed)
	}
}

// TestCrashAfterEveryCheckpoint crashes (pessimistic adversary) after each
// acknowledged checkpoint; recovery must return exactly that checkpoint.
func TestCrashAfterEveryCheckpoint(t *testing.T) {
	const slotBytes = 2048
	region := pmem.NewRegion(int(DeviceBytes(2, slotBytes)))
	dev := storage.NewPMEM(region)
	c, err := New(dev, Config{Concurrent: 2, SlotBytes: slotBytes, Writers: 2, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 8; i++ {
		want := selfPayload(i*77, 1500)
		counter, err := c.Checkpoint(context.Background(), BytesSource(want))
		if err != nil {
			t.Fatal(err)
		}
		crashed := region.CloneDurable()
		p, rc, err := Recover(storage.NewPMEM(crashed))
		if err != nil {
			t.Fatalf("after checkpoint %d: %v", i, err)
		}
		if rc != counter {
			t.Fatalf("recovered counter %d, want %d", rc, counter)
		}
		if !bytes.Equal(p, want) {
			t.Fatalf("recovered payload for checkpoint %d mismatches", i)
		}
	}
}

// TestCrashMidCheckpointKeepsPrevious interrupts a checkpoint before its
// pointer persists; recovery must return the previous checkpoint untouched.
func TestCrashMidCheckpointKeepsPrevious(t *testing.T) {
	const slotBytes = 4096
	region := pmem.NewRegion(int(DeviceBytes(1, slotBytes)))
	dev := storage.NewPMEM(region)
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: slotBytes, Writers: 1, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	first := selfPayload(1, 4000)
	if _, err := c.Checkpoint(context.Background(), BytesSource(first)); err != nil {
		t.Fatal(err)
	}

	// Second checkpoint: crash while its payload is mid-write, using a
	// source that forks the durable state halfway through.
	var forked *pmem.Region
	src := &hookSource{
		data: selfPayload(2, 4000),
		hook: func(off int64) {
			if off > 0 && forked == nil {
				forked = region.CloneDurable()
			}
		},
	}
	// Chunked write so the hook fires between chunks.
	c2, err := Open(dev, Config{Writers: 1, ChunkBytes: 1024, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Checkpoint(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	if forked == nil {
		t.Fatal("hook never fired")
	}
	p, rc, err := Recover(storage.NewPMEM(forked))
	if err != nil {
		t.Fatal(err)
	}
	if rc != 1 {
		t.Fatalf("mid-write crash recovered counter %d, want 1", rc)
	}
	if !bytes.Equal(p, first) {
		t.Fatal("previous checkpoint corrupted by in-flight writer")
	}
}

type hookSource struct {
	data []byte
	hook func(off int64)
}

func (s *hookSource) Size() int64 { return int64(len(s.data)) }
func (s *hookSource) ReadInto(p []byte, off int64) error {
	s.hook(off)
	copy(p, s.data[off:])
	return nil
}

// TestDurabilityInvariantUnderConcurrentCrashes is the headline property:
// while W goroutines checkpoint concurrently, fork the durable state at
// random instants. Every fork must recover (a) a payload that is internally
// consistent, and (b) a counter at least as new as every checkpoint that had
// been acknowledged when the fork was taken.
func TestDurabilityInvariantUnderConcurrentCrashes(t *testing.T) {
	const (
		workers   = 6
		rounds    = 80
		slotBytes = 2048
	)
	region := pmem.NewRegion(int(DeviceBytes(3, slotBytes)))
	dev := storage.NewPMEM(region)
	c, err := New(dev, Config{Concurrent: 3, SlotBytes: slotBytes, Writers: 2, ChunkBytes: 512, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}

	var acked atomic.Uint64 // highest acknowledged counter
	ackedPayloads := sync.Map{}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				seed := uint64(w*10_000 + r + 1)
				p := selfPayload(seed, 1024+(r%512))
				counter, err := c.Checkpoint(context.Background(), BytesSource(p))
				if err != nil {
					t.Error(err)
					return
				}
				ackedPayloads.Store(counter, p)
				for {
					cur := acked.Load()
					if counter <= cur || acked.CompareAndSwap(cur, counter) {
						break
					}
				}
			}
		}(w)
	}

	// Crash prober: fork the durable state at random instants.
	type fork struct {
		region   *pmem.Region
		ackedMin uint64
	}
	var forks []fork
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Sample acked BEFORE forking: everything acknowledged before
			// this instant must be durable in the fork.
			ackedMin := acked.Load()
			forks = append(forks, fork{region.CloneDurable(), ackedMin})
			time.Sleep(100 * time.Microsecond)
		}
	}()

	wg.Wait()
	close(stop)
	<-done

	if len(forks) < 5 {
		t.Fatalf("only %d crash forks taken; test too weak", len(forks))
	}
	for i, f := range forks {
		p, rc, err := Recover(storage.NewPMEM(f.region))
		if err != nil {
			if errors.Is(err, ErrNoCheckpoint) && f.ackedMin == 0 {
				continue // crashed before anything completed — legal
			}
			t.Fatalf("fork %d: %v (ackedMin=%d)", i, err, f.ackedMin)
		}
		if rc < f.ackedMin {
			t.Fatalf("fork %d: recovered counter %d older than acknowledged %d — durability violated",
				i, rc, f.ackedMin)
		}
		checkSelfPayload(t, p)
		// If the recovered counter was acknowledged, the payload must match
		// exactly what was acknowledged.
		if want, ok := ackedPayloads.Load(rc); ok {
			if !bytes.Equal(p, want.([]byte)) {
				t.Fatalf("fork %d: recovered checkpoint %d differs from acknowledged payload", i, rc)
			}
		}
	}
}

// TestTornPointerRecordFallsBack corrupts the newest pointer record;
// recovery must fall back to the older record rather than fail or return
// garbage.
func TestTornPointerRecordFallsBack(t *testing.T) {
	const slotBytes = 1024
	region := pmem.NewRegion(int(DeviceBytes(2, slotBytes)))
	dev := storage.NewPMEM(region)
	c, err := New(dev, Config{Concurrent: 2, SlotBytes: slotBytes, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	p1 := selfPayload(11, 800)
	if _, err := c.Checkpoint(context.Background(), BytesSource(p1)); err != nil {
		t.Fatal(err)
	}
	p2 := selfPayload(22, 800)
	if _, err := c.Checkpoint(context.Background(), BytesSource(p2)); err != nil {
		t.Fatal(err)
	}
	// Records alternate: checkpoint 1 → record A, checkpoint 2 → record B.
	// Tear record B (the newest).
	if err := dev.Persist([]byte{0xFF, 0xFF, 0xFF, 0xFF}, recordBOff+8); err != nil {
		t.Fatal(err)
	}
	p, rc, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if rc != 1 {
		t.Fatalf("fallback recovered counter %d, want 1", rc)
	}
	if !bytes.Equal(p, p1) {
		t.Fatal("fallback payload mismatch")
	}
}

// TestBothRecordsTorn: with no valid pointer record, recovery reports
// ErrNoCheckpoint rather than returning garbage.
func TestBothRecordsTorn(t *testing.T) {
	const slotBytes = 1024
	region := pmem.NewRegion(int(DeviceBytes(1, slotBytes)))
	dev := storage.NewPMEM(region)
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: slotBytes})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(selfPayload(5, 512))); err != nil {
		t.Fatal(err)
	}
	junk := []byte{1, 2, 3, 4}
	if err := dev.Persist(junk, recordAOff+20); err != nil {
		t.Fatal(err)
	}
	if err := dev.Persist(junk, recordBOff+20); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dev); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

// TestRecordPointingAtStaleSlot: a valid-looking record whose slot has been
// reused must be rejected by slot-header validation.
func TestRecordPointingAtStaleSlot(t *testing.T) {
	const slotBytes = 1024
	region := pmem.NewRegion(int(DeviceBytes(1, slotBytes)))
	dev := storage.NewPMEM(region)
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: slotBytes, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Checkpoint(context.Background(), BytesSource(selfPayload(uint64(i+1), 512))); err != nil {
			t.Fatal(err)
		}
	}
	// After 3 checkpoints the genuine latest record (counter 3) sits at
	// location A (records alternate A,B,A). Forge a record at location B
	// claiming counter 99 lives in slot 0 — slot 0's header says otherwise,
	// so recovery must reject the forgery and use the genuine record.
	forged := encodeRecord(checkMeta{slot: 0, counter: 99, size: 512})
	if err := dev.Persist(forged, recordBOff); err != nil {
		t.Fatal(err)
	}
	_, rc, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if rc == 99 {
		t.Fatal("forged record accepted")
	}
	if rc != 3 {
		t.Fatalf("recovered counter %d, want 3", rc)
	}
}

// TestCrashDuringRandomAdversary exercises recovery against a randomized
// line-level adversary (not just DropAll): run a few checkpoints, crash with
// random line fates, recover, and require a consistent result.
func TestCrashDuringRandomAdversary(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const slotBytes = 1024
		region := pmem.NewRegion(int(DeviceBytes(2, slotBytes)))
		dev := storage.NewPMEM(region)
		c, err := New(dev, Config{Concurrent: 2, SlotBytes: slotBytes, Writers: 2, VerifyPayload: true})
		if err != nil {
			t.Fatal(err)
		}
		completed := rng.Intn(4) + 1
		var lastAcked uint64
		for i := 0; i < completed; i++ {
			lastAcked, err = c.Checkpoint(context.Background(), BytesSource(selfPayload(uint64(seed*100+int64(i)+1), 700)))
			if err != nil {
				t.Fatal(err)
			}
		}
		region.Crash(func(int, bool) bool { return rng.Intn(2) == 0 })
		p, rc, err := Recover(dev)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rc < lastAcked {
			t.Fatalf("seed %d: recovered %d < acknowledged %d", seed, rc, lastAcked)
		}
		checkSelfPayload(t, p)
	}
}
