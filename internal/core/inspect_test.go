package core

import (
	"context"
	"testing"

	"pccheck/internal/storage"
)

func TestInspectEmptyFormatted(t *testing.T) {
	dev := storage.NewRAM(DeviceBytes(2, 1024))
	if _, err := New(dev, Config{Concurrent: 2, SlotBytes: 1024}); err != nil {
		t.Fatal(err)
	}
	rep, err := Inspect(dev, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slots != 3 || rep.SlotBytes != 1024 {
		t.Fatalf("geometry: %d × %d", rep.Slots, rep.SlotBytes)
	}
	if rep.Recoverable {
		t.Fatal("empty device reported recoverable")
	}
	if rep.Records[0].Valid || rep.Records[1].Valid {
		t.Fatal("empty device has valid records")
	}
	if len(rep.SlotInfos) != 3 {
		t.Fatalf("slot infos: %d", len(rep.SlotInfos))
	}
	if rep.Cursor != nil {
		t.Fatal("phantom cursor")
	}
}

func TestInspectAfterCheckpoints(t *testing.T) {
	dev := storage.NewRAM(DeviceBytes(1, 2048))
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: 2048, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Checkpoint(context.Background(), BytesSource(payload(int64(i), 1500))); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Inspect(dev, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recoverable || rep.Latest.Counter != 3 {
		t.Fatalf("latest: %+v", rep.Latest)
	}
	// Exactly one slot is marked published, and it matches the pointer.
	published := 0
	for _, s := range rep.SlotInfos {
		if s.Published {
			published++
			if s.Counter != 3 {
				t.Fatalf("published slot holds counter %d", s.Counter)
			}
			if s.PayloadOK == nil || !*s.PayloadOK {
				t.Fatal("published payload failed verification")
			}
		}
	}
	if published != 1 {
		t.Fatalf("published slots = %d", published)
	}
	// Both record locations are in use after 3 checkpoints.
	if !rep.Records[0].Valid || !rep.Records[1].Valid {
		t.Fatalf("records: %+v", rep.Records)
	}
}

func TestInspectDetectsCorruptPayload(t *testing.T) {
	dev := storage.NewRAM(DeviceBytes(1, 1024))
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: 1024, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 800))); err != nil {
		t.Fatal(err)
	}
	rep, err := Inspect(dev, true)
	if err != nil {
		t.Fatal(err)
	}
	slot := rep.Latest.Slot
	// Corrupt one payload byte behind the engine's back.
	if err := dev.WriteAt([]byte{0xEE}, payloadBase(superblock{slots: 2, slotBytes: 1024}, slot)+10); err != nil {
		t.Fatal(err)
	}
	rep2, err := Inspect(dev, true)
	if err != nil {
		t.Fatal(err)
	}
	info := rep2.SlotInfos[slot]
	if info.PayloadOK == nil || *info.PayloadOK {
		t.Fatal("corruption not flagged")
	}
}

func TestInspectReportsCursor(t *testing.T) {
	dev, _ := iteratorFixture(t, 4096)
	it, err := NewRecoveryIterator(dev, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	rep, err := Inspect(dev, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cursor == nil || rep.Cursor.Position != 1024 || rep.Cursor.Counter != 1 {
		t.Fatalf("cursor: %+v", rep.Cursor)
	}
}

func TestInspectUnformatted(t *testing.T) {
	if _, err := Inspect(storage.NewRAM(4096), false); err == nil {
		t.Fatal("unformatted device accepted")
	}
}
