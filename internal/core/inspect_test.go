package core

import (
	"context"
	"testing"

	"pccheck/internal/storage"
)

func TestInspectEmptyFormatted(t *testing.T) {
	dev := storage.NewRAM(DeviceBytes(2, 1024))
	if _, err := New(dev, Config{Concurrent: 2, SlotBytes: 1024}); err != nil {
		t.Fatal(err)
	}
	rep, err := Inspect(dev, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slots != 3 || rep.SlotBytes != 1024 {
		t.Fatalf("geometry: %d × %d", rep.Slots, rep.SlotBytes)
	}
	if rep.Recoverable {
		t.Fatal("empty device reported recoverable")
	}
	if rep.Records[0].Valid || rep.Records[1].Valid {
		t.Fatal("empty device has valid records")
	}
	if len(rep.SlotInfos) != 3 {
		t.Fatalf("slot infos: %d", len(rep.SlotInfos))
	}
	if rep.Cursor != nil {
		t.Fatal("phantom cursor")
	}
}

func TestInspectAfterCheckpoints(t *testing.T) {
	dev := storage.NewRAM(DeviceBytes(1, 2048))
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: 2048, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Checkpoint(context.Background(), BytesSource(payload(int64(i), 1500))); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Inspect(dev, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recoverable || rep.Latest.Counter != 3 {
		t.Fatalf("latest: %+v", rep.Latest)
	}
	// Exactly one slot is marked published, and it matches the pointer.
	published := 0
	for _, s := range rep.SlotInfos {
		if s.Published {
			published++
			if s.Counter != 3 {
				t.Fatalf("published slot holds counter %d", s.Counter)
			}
			if s.PayloadOK == nil || !*s.PayloadOK {
				t.Fatal("published payload failed verification")
			}
		}
	}
	if published != 1 {
		t.Fatalf("published slots = %d", published)
	}
	// Both record locations are in use after 3 checkpoints.
	if !rep.Records[0].Valid || !rep.Records[1].Valid {
		t.Fatalf("records: %+v", rep.Records)
	}
}

func TestInspectDetectsCorruptPayload(t *testing.T) {
	dev := storage.NewRAM(DeviceBytes(1, 1024))
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: 1024, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 800))); err != nil {
		t.Fatal(err)
	}
	rep, err := Inspect(dev, true)
	if err != nil {
		t.Fatal(err)
	}
	slot := rep.Latest.Slot
	// Corrupt one payload byte behind the engine's back.
	if err := dev.WriteAt([]byte{0xEE}, payloadBase(superblock{slots: 2, slotBytes: 1024}, slot)+10); err != nil {
		t.Fatal(err)
	}
	rep2, err := Inspect(dev, true)
	if err != nil {
		t.Fatal(err)
	}
	info := rep2.SlotInfos[slot]
	if info.PayloadOK == nil || *info.PayloadOK {
		t.Fatal("corruption not flagged")
	}
}

func TestInspectReportsCursor(t *testing.T) {
	dev, _ := iteratorFixture(t, 4096)
	it, err := NewRecoveryIterator(dev, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	rep, err := Inspect(dev, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cursor == nil || rep.Cursor.Position != 1024 || rep.Cursor.Counter != 1 {
		t.Fatalf("cursor: %+v", rep.Cursor)
	}
}

func TestInspectUnformatted(t *testing.T) {
	if _, err := Inspect(storage.NewRAM(4096), false); err == nil {
		t.Fatal("unformatted device accepted")
	}
}

func TestInspectDeltaChain(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 8192, DeltaEvery: 1, DeltaKeyframe: 4, VerifyPayload: true}
	c, dev := deltaEngine(t, cfg)
	p := sparsePayload(8, 0, 6000)
	for i := 0; i < 3; i++ { // keyframe + 2 deltas
		if i > 0 {
			mutateSparse(p, 8, uint64(i))
		}
		if _, err := c.Checkpoint(context.Background(), BytesSource(p)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Inspect(dev, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeltaKeyframe != 4 {
		t.Fatalf("DeltaKeyframe = %d, want 4", rep.DeltaKeyframe)
	}
	if !rep.Recoverable || rep.LatestFullSize != 6000 {
		t.Fatalf("latest: %+v full=%d", rep.Latest, rep.LatestFullSize)
	}
	if len(rep.Chain) != 3 || rep.Chain[0].Kind != 0 || rep.Chain[1].Kind != 1 || rep.Chain[2].Kind != 1 {
		t.Fatalf("chain: %+v", rep.Chain)
	}
	inChain := 0
	for _, s := range rep.SlotInfos {
		if s.InChain {
			inChain++
			if s.PayloadOK == nil || !*s.PayloadOK {
				t.Fatalf("chain slot %d payload not verified OK", s.Index)
			}
		}
		if s.HeaderValid && s.Kind == slotKindDelta && s.InChain && s.FullSize != 6000 {
			t.Fatalf("delta slot %d fullSize=%d", s.Index, s.FullSize)
		}
	}
	if inChain != 3 {
		t.Fatalf("%d slots in chain, want 3", inChain)
	}
	if !rep.Healthy() {
		t.Fatal("intact delta device reported unhealthy")
	}
}

// TestReportHealthy covers the exit-status contract pccheck-inspect builds
// on: intact devices are healthy, devices whose records exist but cannot
// serve recovery (or whose published payload is corrupt) are not.
func TestReportHealthy(t *testing.T) {
	// Intact device.
	dev := storage.NewRAM(DeviceBytes(1, 1024))
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: 1024, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 800))); err != nil {
		t.Fatal(err)
	}
	rep, err := Inspect(dev, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatal("intact device reported unhealthy")
	}
	// Corrupt the published payload: unhealthy (only when verified).
	if err := dev.WriteAt([]byte{0x5A}, payloadBase(superblock{slots: 2, slotBytes: 1024}, rep.Latest.Slot)+3); err != nil {
		t.Fatal(err)
	}
	if rep2, _ := Inspect(dev, true); rep2.Healthy() {
		t.Fatal("corrupt published payload reported healthy")
	}
	if rep2, _ := Inspect(dev, false); !rep2.Healthy() {
		t.Fatal("unverified inspect cannot see payload corruption, must stay healthy")
	}
	// Smash the published slot header instead: the pointer record is valid
	// but recovery rejects it → unhealthy even without -verify.
	if err := dev.WriteAt(make([]byte, slotHeaderSize), slotBase(superblock{slots: 2, slotBytes: 1024}, rep.Latest.Slot)); err != nil {
		t.Fatal(err)
	}
	if rep3, _ := Inspect(dev, false); rep3.Healthy() {
		t.Fatal("record pointing at a dead slot reported healthy")
	}
	// Empty-but-formatted is healthy: no record claims anything.
	dev2 := storage.NewRAM(DeviceBytes(1, 1024))
	if _, err := New(dev2, Config{Concurrent: 1, SlotBytes: 1024}); err != nil {
		t.Fatal(err)
	}
	if rep4, _ := Inspect(dev2, false); !rep4.Healthy() {
		t.Fatal("empty formatted device reported unhealthy")
	}
}
