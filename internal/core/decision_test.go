package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"pccheck/internal/obs"
	"pccheck/internal/obs/decision"
	"pccheck/internal/storage"
)

// The engine's decision-trace hooks: slot admissions and retry sequences
// are recorded with measured regret when a recorder is chained into the
// observer, and the uncontended save path pays nothing when it is not.

// decisionChain builds the production observer order for tests:
// Ledger → decision.Recorder → flight Recorder.
func decisionChain() (*obs.Ledger, *decision.Recorder) {
	dec := decision.New(decision.Config{}, obs.NewRecorder(1<<12))
	led := obs.NewLedger(obs.LedgerConfig{SlowdownBudget: 1.25}, dec)
	return led, dec
}

// TestDecisionRecorderAddsNoAllocations extends the zero-overhead-when-off
// gate to the decision layer: chaining a decision recorder into the
// observer must not add heap allocations to an uncontended, fault-free
// Checkpoint — decisions are only recorded on the slow paths.
func TestDecisionRecorderAddsNoAllocations(t *testing.T) {
	mk := func(o obs.Observer) *Checkpointer {
		cfg := Config{Concurrent: 1, SlotBytes: 1024, Writers: 1, Observer: o}
		dev := storage.NewRAM(DeviceBytes(cfg.Concurrent, cfg.SlotBytes))
		ck, err := New(dev, cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return ck
	}
	payload := make([]byte, 512)
	ctx := context.Background()

	run := func(ck *Checkpointer) float64 {
		src := BytesSource(payload)
		for i := 0; i < 3; i++ {
			if _, err := ck.Checkpoint(ctx, src); err != nil {
				t.Fatalf("warmup Checkpoint: %v", err)
			}
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := ck.Checkpoint(ctx, src); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		})
	}

	off := mk(nil)
	defer off.Close()
	baseline := run(off)

	led, dec := decisionChain()
	on := mk(led)
	defer on.Close()
	withDecisions := run(on)

	if withDecisions > baseline {
		t.Errorf("decision recorder added allocations: %v chained vs %v baseline",
			withDecisions, baseline)
	}
	if n := dec.Len(); n != 0 {
		t.Errorf("uncontended saves recorded %d decisions, want 0", n)
	}
}

// A contended admission must surface as one slot-admission decision whose
// regret is the measured wait.
func TestSlotWaitRecordsDecision(t *testing.T) {
	led, dec := decisionChain()
	cfg := Config{
		Concurrent: 1, SlotBytes: 64 << 10, Writers: 1,
		PerWriterBW: 4 << 20, // ~16 ms per save: overlap forces a wait
		Observer:    led,
	}
	dev := storage.NewRAM(DeviceBytes(cfg.Concurrent, cfg.SlotBytes))
	ck, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()

	body := payload(3, 64<<10)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ck.Checkpoint(context.Background(), BytesSource(body)); err != nil {
				t.Errorf("Checkpoint: %v", err)
			}
		}()
	}
	wg.Wait()

	if ck.Stats().SlotWaits == 0 {
		t.Skip("no slot contention materialised (scheduler served saves sequentially)")
	}
	var admissions []decision.Decision
	for _, d := range dec.Decisions() {
		if d.Kind == decision.KindSlotAdmission {
			admissions = append(admissions, d)
		}
	}
	if len(admissions) == 0 {
		t.Fatalf("%d slot waits recorded no slot-admission decision", ck.Stats().SlotWaits)
	}
	for _, d := range admissions {
		if !d.Scored || d.Outcome != "admitted" {
			t.Errorf("seq %d: scored %v outcome %q, want admitted", d.Seq, d.Scored, d.Outcome)
		}
		if d.Regret <= 0 || d.Regret != d.MeasuredCost {
			t.Errorf("seq %d: regret %v measured %v, want regret = measured wait > 0",
				d.Seq, d.Regret, d.MeasuredCost)
		}
		if d.Inputs.N != 1 || d.Inputs.SlotsBusy != ck.TotalSlots() {
			t.Errorf("seq %d: inputs %+v, want N=1 and the full %d-slot pool busy",
				d.Seq, d.Inputs, ck.TotalSlots())
		}
		if len(d.Rejected) != 2 {
			t.Errorf("seq %d: %d alternatives, want provision-slot + skip-save", d.Seq, len(d.Rejected))
		}
	}
}

// Retry sequences score by outcome: backoff that salvaged the save has
// zero regret; backoff exhausted on a save that failed anyway is pure
// regret.
func TestRetryRecordsDecisions(t *testing.T) {
	mk := func() (*Checkpointer, *storage.FaultDevice, *decision.Recorder) {
		led, dec := decisionChain()
		ram := storage.NewRAM(DeviceBytes(1, 4096))
		dev := storage.NewFaultDevice(ram)
		ck, err := New(dev, Config{
			Concurrent: 1, SlotBytes: 4096, Observer: led,
			Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Microsecond, MaxBackoff: time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ck, dev, dec
	}
	byKind := func(dec *decision.Recorder) []decision.Decision {
		var out []decision.Decision
		for _, d := range dec.Decisions() {
			if d.Kind == decision.KindRetry {
				out = append(out, d)
			}
		}
		return out
	}

	// Recovered: 2 transient faults under a 3-attempt budget.
	ck, dev, dec := mk()
	dev.FailTransient(storage.OpWrite, 1, 2)
	if _, err := ck.Checkpoint(context.Background(), BytesSource(payload(1, 2048))); err != nil {
		t.Fatalf("recoverable save failed: %v", err)
	}
	ck.Close()
	recovered := byKind(dec)
	if len(recovered) == 0 {
		t.Fatal("recovered retry sequence recorded no decision")
	}
	for _, d := range recovered {
		if d.Outcome != "recovered" || d.Regret != 0 {
			t.Errorf("seq %d: outcome %q regret %v, want recovered with 0 regret", d.Seq, d.Outcome, d.Regret)
		}
		if d.MeasuredCost <= 0 {
			t.Errorf("seq %d: measured backoff %v, want > 0", d.Seq, d.MeasuredCost)
		}
	}

	// Exhausted: a fault burst longer than the budget.
	ck, dev, dec = mk()
	dev.FailTransient(storage.OpWrite, 1, 10)
	if _, err := ck.Checkpoint(context.Background(), BytesSource(payload(2, 2048))); err == nil {
		t.Fatal("save survived more faults than the budget")
	}
	ck.Close()
	exhausted := byKind(dec)
	if len(exhausted) == 0 {
		t.Fatal("exhausted retry sequence recorded no decision")
	}
	found := false
	for _, d := range exhausted {
		if d.Outcome == "exhausted" {
			found = true
			if d.Regret <= 0 {
				t.Errorf("seq %d: exhausted with regret %v, want burned backoff > 0", d.Seq, d.Regret)
			}
		}
	}
	if !found {
		t.Errorf("no exhausted-outcome decision among %+v", exhausted)
	}

	// Fault-free saves record nothing: the hook fires only when a fault was
	// absorbed.
	ck, _, dec = mk()
	if _, err := ck.Checkpoint(context.Background(), BytesSource(payload(3, 2048))); err != nil {
		t.Fatal(err)
	}
	ck.Close()
	if ds := byKind(dec); len(ds) != 0 {
		t.Errorf("fault-free save recorded %d retry decisions", len(ds))
	}
}
