// ScrubSweep: the latent-fault counterpart of ExploreCrashes. Where the
// crash explorer proves the write protocol survives power loss at any
// instant, this harness proves the scrubber survives the other failure
// mode — bytes that went durable and then rotted.
//
// Each case builds a tiered engine over fault-injecting devices, commits a
// few self-verifying checkpoints, lets the drainer converge, then injects
// one seeded latent fault into a committed structure: a pointer record, the
// front copy of a published slot or chain link, a lower tier's copy, or —
// the unrepairable scenario — every copy of the newest checkpoint at once.
// Faults come in three flavors (bit flip, sector zeroing, unreadable
// sectors) crossed with full and delta/keyframe formats and 2- or 3-deep
// tier stacks.
//
// One scrub sweep must then detect every injected fault and heal it: repair
// from the newest healthy tier, schedule a resync, or quarantine when no
// healthy copy exists. The harness asserts detection, asserts nothing was
// left unrepaired, asserts a second sweep finds the device clean, and —
// the property everything else exists for — asserts that no read path ever
// returns corrupt bytes: ReadLatest and a post-shutdown RecoverTiered must
// produce a payload that validates against its embedded seed, or a
// classified error, never garbage.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"pccheck/internal/storage"
)

// ScrubSweepOptions configures a sweep.
type ScrubSweepOptions struct {
	// Seed makes the sweep reproducible.
	Seed int64
	// Cases is how many injection cases to run (one engine and at least
	// one injected fault each). Default 60 — one full pass over the
	// scenario × mode × format × depth matrix.
	Cases int
	// Log, when non-nil, receives per-case progress lines.
	Log func(format string, args ...any)
}

// ScrubSweepResult aggregates a sweep.
type ScrubSweepResult struct {
	// Cases is how many cases ran; Injected how many faults they planted.
	Cases    int
	Injected int
	// Detected / Repaired / Quarantined / Resynced total the scrubber's
	// findings across all cases.
	Detected    int
	Repaired    int
	Quarantined int
	Resynced    int
	// Violations lists every broken invariant, one line each.
	Violations []string
}

// Ok reports whether every case held every invariant.
func (r ScrubSweepResult) Ok() bool { return len(r.Violations) == 0 }

// Injection scenarios. The case index walks the full matrix so even short
// sweeps cover every combination.
const (
	scrubScenRecord    = iota // damage one pointer-record location
	scrubScenFrontSlot        // damage the front copy of a committed slot
	scrubScenTierSlot         // damage a lower tier's copy
	scrubScenDouble           // damage a record AND a front slot
	scrubScenTombstone        // damage every copy of the newest checkpoint
	scrubScenCount
)

func scrubScenName(s int) string {
	switch s {
	case scrubScenRecord:
		return "record"
	case scrubScenFrontSlot:
		return "front-slot"
	case scrubScenTierSlot:
		return "tier-slot"
	case scrubScenDouble:
		return "record+slot"
	case scrubScenTombstone:
		return "tombstone"
	default:
		return fmt.Sprintf("scen-%d", s)
	}
}

// ScrubSweep runs the latent-fault matrix and reports every violated
// invariant. A non-nil error means a case could not even be set up.
func ScrubSweep(opts ScrubSweepOptions) (ScrubSweepResult, error) {
	if opts.Cases <= 0 {
		opts.Cases = 60
	}
	res := ScrubSweepResult{Cases: opts.Cases}
	for ci := 0; ci < opts.Cases; ci++ {
		if err := runScrubCase(opts, ci, &res); err != nil {
			return res, fmt.Errorf("scrub sweep case %d: %w", ci, err)
		}
	}
	return res, nil
}

// scrubCaseShape is the deterministic part of one case, derived from the
// case index so the matrix is covered in order.
type scrubCaseShape struct {
	scen   int
	mode   int // 0 bit-flip, 1 sector-zero, 2 poison
	delta  bool
	nTiers int
}

func scrubShape(ci int) scrubCaseShape {
	return scrubCaseShape{
		scen:   ci % scrubScenCount,
		mode:   (ci / scrubScenCount) % 3,
		delta:  (ci/(scrubScenCount*3))%2 == 1,
		nTiers: 2 + (ci/(scrubScenCount*3*2))%2,
	}
}

func (sh scrubCaseShape) String() string {
	mode := [...]string{"bitflip", "sectorzero", "poison"}[sh.mode]
	format := "full"
	if sh.delta {
		format = "delta"
	}
	return fmt.Sprintf("%s/%s/%s/%d-tier", scrubScenName(sh.scen), mode, format, sh.nTiers)
}

func runScrubCase(opts ScrubSweepOptions, ci int, res *ScrubSweepResult) (err error) {
	sh := scrubShape(ci)
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations,
			fmt.Sprintf("case %d (%s): %s", ci, sh, fmt.Sprintf(format, args...)))
	}
	defer func() {
		if p := recover(); p != nil {
			violate("panic: %v", p)
			err = nil
		}
	}()
	rng := rand.New(rand.NewSource(opts.Seed*1_000_003 + int64(ci)))

	cfg := Config{Concurrent: 2, SlotBytes: 4096, VerifyPayload: true}
	if sh.delta {
		cfg.DeltaEvery = 1
		cfg.DeltaKeyframe = 3
	}
	need := DeviceBytesFor(cfg)
	fds := make([]*storage.FaultDevice, sh.nTiers)
	levels := make([]storage.Device, sh.nTiers)
	for i := range levels {
		fds[i] = storage.NewFaultDevice(storage.NewRAM(need))
		levels[i] = fds[i]
	}
	td, err := storage.NewTiered(levels, storage.WithDrainInterval(200*time.Microsecond))
	if err != nil {
		return err
	}
	defer td.Close()
	c, err := New(td, cfg)
	if err != nil {
		return err
	}
	defer c.Close()

	// Commit a handful of self-verifying checkpoints and let every tier
	// converge, so each has a copy the scrubber can repair from.
	saves := 4 + rng.Intn(3)
	n := 1536 + rng.Intn(2048)
	seed := uint64(rng.Int63n(1 << 40))
	var last, prev uint64
	ctx := context.Background()
	for k := 0; k < saves; k++ {
		var p []byte
		if sh.delta {
			p = sparsePayload(seed, uint64(k), n)
		} else {
			p = crashPayload(seed+uint64(k), n)
		}
		ctr, err := c.Checkpoint(ctx, BytesSource(p))
		if err != nil {
			return fmt.Errorf("save %d: %w", k, err)
		}
		prev, last = last, ctr
	}
	if !td.WaitDrained(10 * time.Second) {
		violate("tiers did not converge before injection")
		return nil
	}

	injected := sweepInject(c, td, fds, sh, rng, res)
	if injected == 0 {
		violate("no fault was injected")
		return nil
	}
	res.Injected += injected

	before := c.ScrubStatus()
	found, healed, err := c.ScrubNow()
	if err != nil {
		violate("ScrubNow: %v", err)
		return nil
	}
	after := c.ScrubStatus()
	res.Detected += found
	res.Repaired += int(after.Repairs - before.Repairs)
	res.Quarantined += int(after.Quarantines - before.Quarantines)
	res.Resynced += int(after.TierResyncs - before.TierResyncs)

	if found == 0 {
		violate("injected fault was not detected")
		return nil
	}
	if after.Unrepaired != before.Unrepaired {
		violate("%d finding(s) left unrepaired", after.Unrepaired-before.Unrepaired)
	}
	if healed != found {
		violate("found %d but healed only %d", found, healed)
	}
	if sh.scen == scrubScenTombstone && after.Quarantines == before.Quarantines {
		violate("tombstone scenario produced no quarantine")
	}

	// Let scheduled resyncs land, then a second sweep must find the device
	// clean — healing converges instead of re-reporting.
	if !td.WaitDrained(10 * time.Second) {
		violate("tiers did not converge after repair")
	}
	if found2, _, err := c.ScrubNow(); err != nil {
		violate("second ScrubNow: %v", err)
	} else if found2 != 0 {
		violate("second sweep still found %d finding(s)", found2)
	}

	// The core guarantee: no read path returns corrupt bytes. After a
	// repair the newest checkpoint must read back intact; after a
	// quarantine the read must fail classified (and recovery below must
	// fall back), never hand over garbage.
	buf := make([]byte, n)
	rctr, rn, rerr := c.ReadLatest(buf)
	switch sh.scen {
	case scrubScenTombstone:
		if rerr == nil {
			if cerr := checkAnyCrashPayload(buf[:rn]); cerr != nil {
				violate("ReadLatest served corrupt bytes after quarantine: %v", cerr)
			}
		}
	default:
		if rerr != nil {
			violate("ReadLatest after repair: %v", rerr)
		} else {
			if rctr != last {
				violate("ReadLatest counter = %d, want %d", rctr, last)
			}
			if cerr := checkAnyCrashPayload(buf[:rn]); cerr != nil {
				violate("ReadLatest served corrupt bytes after repair: %v", cerr)
			}
		}
	}

	// Post-shutdown recovery: shut the engine and the tier stack down and
	// recover from the raw devices, the way a restarted job would.
	if err := c.Close(); err != nil {
		violate("Close: %v", err)
	}
	if err := td.Close(); err != nil {
		violate("tiered Close: %v", err)
	}
	payload, ctr, rerr := RecoverTiered(levels...)
	if sh.scen == scrubScenTombstone {
		if rerr != nil {
			violate("RecoverTiered after quarantine: %v (floor lost)", rerr)
		} else {
			if ctr != prev {
				violate("RecoverTiered counter = %d after quarantine, want fallback %d", ctr, prev)
			}
			if cerr := checkAnyCrashPayload(payload); cerr != nil {
				violate("RecoverTiered served corrupt bytes after quarantine: %v", cerr)
			}
		}
	} else {
		if rerr != nil {
			violate("RecoverTiered after repair: %v", rerr)
		} else {
			if ctr != last {
				violate("RecoverTiered counter = %d, want %d", ctr, last)
			}
			if cerr := checkAnyCrashPayload(payload); cerr != nil {
				violate("RecoverTiered served corrupt bytes after repair: %v", cerr)
			}
		}
	}
	if opts.Log != nil {
		opts.Log("case %d (%s): injected %d, found %d, healed %d", ci, sh, injected, found, healed)
	}
	return nil
}

// sweepTarget picks the committed slot to damage: the published slot in
// full mode, a random chain link in delta mode (the newest link when tip
// is set, so the tombstone scenario quarantines the tip and recovery can
// still fall back to the previous record).
func sweepTarget(c *Checkpointer, delta, tip bool, rng *rand.Rand) checkMeta {
	if delta {
		c.deltaMu.Lock()
		chain := append([]checkMeta(nil), c.chain...)
		c.deltaMu.Unlock()
		if tip {
			return chain[len(chain)-1]
		}
		return chain[rng.Intn(len(chain))]
	}
	return *c.checkAddr.Load()
}

// damageSlot injects one fault into dev's copy of slot m. Sector-zero
// always lands fully inside the payload (collateral damage to a neighbor
// slot would make the case non-deterministic); bit flips and poison pick
// the header or the payload.
func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

func damageSlot(fd *storage.FaultDevice, sb superblock, m checkMeta, mode int, rng *rand.Rand) {
	hdrOff := slotBase(sb, m.slot)
	payOff := payloadBase(sb, m.slot)
	switch mode {
	case 1: // sector-zero, payload interior
		lo := ((payOff + storage.CrashSectorSize - 1) / storage.CrashSectorSize) * storage.CrashSectorSize
		sector := make([]byte, storage.CrashSectorSize)
		if lo+storage.CrashSectorSize <= payOff+m.size && fd.ReadAt(sector, lo) == nil && !allZero(sector) {
			fd.CorruptAt(lo, 1, storage.CorruptSectorZero) //nolint:errcheck
			return
		}
		// The covering sector lies past the stored payload (a short delta
		// record) or holds only zero bytes — zeroing it would damage
		// nothing the CRC covers. Flip the header instead so the case
		// still injects real, detectable damage.
		fd.CorruptAt(hdrOff, 8, storage.CorruptBitFlip) //nolint:errcheck
	case 2: // poison
		if rng.Intn(2) == 0 {
			fd.PoisonRead(hdrOff, slotHeaderSize)
		} else {
			fd.PoisonRead(payOff, m.size)
		}
	default: // bit-flip
		if rng.Intn(2) == 0 || m.size <= 8 {
			fd.CorruptAt(hdrOff, 8, storage.CorruptBitFlip) //nolint:errcheck
		} else {
			off := rng.Int63n(m.size - 8)
			fd.CorruptAt(payOff+off, 8, storage.CorruptBitFlip) //nolint:errcheck
		}
	}
}

// damageRecord injects one fault into a pointer-record location on the
// front device. Sector-zero takes the whole first sector with it —
// superblock, both records and the head of slot 0 — which is exactly the
// blast radius a real zeroing fault on sector 0 has.
func damageRecord(fd *storage.FaultDevice, mode int, rng *rand.Rand) {
	off := int64(recordAOff)
	if rng.Intn(2) == 1 {
		off = recordBOff
	}
	switch mode {
	case 1:
		fd.CorruptAt(off, recordSize, storage.CorruptSectorZero) //nolint:errcheck
	case 2:
		fd.PoisonRead(off, recordSize)
	default:
		fd.CorruptAt(off, 8, storage.CorruptBitFlip) //nolint:errcheck
	}
}

// sweepInject plants the case's faults and returns how many it planted.
func sweepInject(c *Checkpointer, td *storage.Tiered, fds []*storage.FaultDevice, sh scrubCaseShape, rng *rand.Rand, res *ScrubSweepResult) int {
	front := fds[td.Active()]
	switch sh.scen {
	case scrubScenRecord:
		damageRecord(front, sh.mode, rng)
		return 1
	case scrubScenFrontSlot:
		damageSlot(front, c.sb, sweepTarget(c, sh.delta, false, rng), sh.mode, rng)
		return 1
	case scrubScenTierSlot:
		tier := 1 + rng.Intn(len(fds)-1)
		damageSlot(fds[tier], c.sb, sweepTarget(c, sh.delta, false, rng), sh.mode, rng)
		return 1
	case scrubScenDouble:
		damageRecord(front, sh.mode, rng)
		damageSlot(front, c.sb, sweepTarget(c, sh.delta, false, rng), sh.mode, rng)
		return 2
	case scrubScenTombstone:
		// Every copy of the newest checkpoint dies. Sector-zero is excluded
		// here: its blast radius would take neighbor slots on every tier
		// with it, including the fallback the floor assertion relies on.
		mode := sh.mode
		if mode == 1 {
			mode = 0
		}
		m := sweepTarget(c, sh.delta, true, rng)
		for _, fd := range fds {
			if mode == 2 {
				fd.PoisonRead(payloadBase(c.sb, m.slot), m.size)
			} else {
				off := rng.Int63n(m.size - 8)
				fd.CorruptAt(payloadBase(c.sb, m.slot)+off, 8, storage.CorruptBitFlip) //nolint:errcheck
			}
		}
		return len(fds)
	}
	return 0
}
