package core

import (
	"fmt"
	"time"

	"pccheck/internal/obs/decision"
)

// Decision-trace hooks for the engine's two in-band policy points: slot
// admission (Listing 1's deq loop deciding to wait for a free slot rather
// than fail or widen the pool) and transient-fault retry (the RetryPolicy
// deciding to burn backoff rather than fail fast). Both fire only on the
// already-slow paths — a contended admission or a faulted I/O — so the
// uncontended persist pipeline never pays more than the recorder-nil
// branch, and nothing here allocates unless a decision is actually
// recorded.

// recordSlotWait logs a slot admission that blocked: every slot was busy
// and the engine chose to wait (the paper's deq loop) over failing the save
// or provisioning more slots. The measured wait is both the cost and the
// regret — one more slot (N+1, more device space) would have absorbed it,
// but is marked infeasible since the device is sized at attach time, so
// regret accrues against the feasible alternative of skipping the save.
func (c *Checkpointer) recordSlotWait(counter uint64, wait time.Duration) {
	waitSec := wait.Seconds()
	if waitSec < 0 {
		waitSec = 0
	}
	c.dec.RecordScored(decision.KindSlotAdmission, decision.Outcome{
		Inputs: decision.Inputs{
			N:            c.cfg.Concurrent,
			SlotsBusy:    c.sb.slots,
			PayloadBytes: c.sb.slotBytes,
		},
		Chosen: decision.Alternative{
			Action: "wait-for-slot", PredictedCost: waitSec, Feasible: true,
		},
		Rejected: []decision.Alternative{
			{Action: fmt.Sprintf("provision-slot(%d)", c.sb.slots+1), PredictedCost: 0, Feasible: false},
			{Action: "skip-save", PredictedCost: 0, Feasible: true},
		},
		Measured: waitSec,
		Regret:   waitSec,
		Outcome:  "admitted",
		Counter:  counter,
		Rank:     -1,
	})
}

// recordRetry logs a completed retry sequence — only sequences that
// actually absorbed at least one transient fault are decisions worth
// recording. Backoff that salvaged the operation has zero regret (fail-fast
// would have failed a save the policy saved); backoff burned on an
// operation that failed anyway is pure regret.
func (c *Checkpointer) recordRetry(attempts int, backoffNS int64, succeeded bool, outcome string) {
	b := float64(backoffNS) / 1e9
	regret := b
	if succeeded {
		regret = 0
	}
	c.dec.RecordScored(decision.KindRetry, decision.Outcome{
		Inputs: decision.Inputs{Attempts: attempts},
		Chosen: decision.Alternative{
			Action:        fmt.Sprintf("retry(max=%d)", c.cfg.Retry.MaxAttempts),
			PredictedCost: b, Feasible: true,
		},
		Rejected: []decision.Alternative{
			{Action: "fail-fast", PredictedCost: 0, Feasible: true},
			{Action: fmt.Sprintf("retry(max=%d)", 2*c.cfg.Retry.MaxAttempts), PredictedCost: 2 * b, Feasible: true},
		},
		Measured: b,
		Regret:   regret,
		Outcome:  outcome,
		Rank:     -1,
	})
}
