package core

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"pccheck/internal/obs"
	"pccheck/internal/obs/blackbox"
	"pccheck/internal/obs/decision"
	"pccheck/internal/storage"
)

func newObservedEngine(t *testing.T, rec *obs.Recorder) *Checkpointer {
	t.Helper()
	cfg := Config{
		Concurrent: 2,
		SlotBytes:  4096,
		Writers:    2,
		ChunkBytes: 1024,
		Observer:   rec,
	}
	dev := storage.NewRAM(DeviceBytes(cfg.Concurrent, cfg.SlotBytes))
	ck, err := New(dev, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return ck
}

// TestObservedCheckpointEvents drives a few saves through an instrumented
// engine and checks the flight recorder saw the full phase pipeline.
func TestObservedCheckpointEvents(t *testing.T) {
	rec := obs.NewRecorder(obs.DefaultCapacity)
	ck := newObservedEngine(t, rec)
	defer ck.Close()

	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < 5; i++ {
		if _, err := ck.Checkpoint(context.Background(), BytesSource(payload)); err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
	}

	snap := rec.Snapshot()
	if snap.Published == 0 {
		t.Fatalf("recorder saw no published checkpoints: %+v", snap)
	}
	if got := snap.Phase(obs.PhaseSave).Count; got != 5 {
		t.Errorf("save span count = %d, want 5", got)
	}
	if snap.Phase(obs.PhaseSlotWait).Count != 5 {
		t.Errorf("slot-wait span count = %d, want 5 (one per save)", snap.Phase(obs.PhaseSlotWait).Count)
	}
	// 3000-byte payload through 1024-byte chunks = 3 copy spans per save.
	if got := snap.Phase(obs.PhaseCopy).Count; got != 15 {
		t.Errorf("copy span count = %d, want 15", got)
	}
	if snap.Phase(obs.PhasePersist).Count != 15 {
		t.Errorf("persist span count = %d, want 15", snap.Phase(obs.PhasePersist).Count)
	}
	if snap.Phase(obs.PhaseBarrier).Count == 0 {
		t.Error("no barrier spans recorded")
	}
	if snap.Phase(obs.PhaseHeader).Count != 5 {
		t.Errorf("header span count = %d, want 5", snap.Phase(obs.PhaseHeader).Count)
	}

	events := rec.TakeEvents()
	var persistBytes int64
	for _, ev := range events {
		if ev.Phase == obs.PhasePersist {
			persistBytes += ev.Bytes
			if ev.Writer < 0 {
				t.Errorf("persist event missing writer index: %+v", ev)
			}
		}
	}
	if persistBytes != 5*3000 {
		t.Errorf("persist spans cover %d bytes, want %d", persistBytes, 5*3000)
	}
}

// TestObservedTraceExport checks the end-to-end path from engine events to
// parseable Chrome trace JSON with the expected span names.
func TestObservedTraceExport(t *testing.T) {
	rec := obs.NewRecorder(obs.DefaultCapacity)
	ck := newObservedEngine(t, rec)
	defer ck.Close()

	payload := make([]byte, 2048)
	if _, err := ck.Checkpoint(context.Background(), BytesSource(payload)); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	var sb strings.Builder
	if err := rec.WriteTrace(&sb); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	want := map[string]bool{
		"save": false, "slot-wait": false, "copy": false,
		"persist": false, "barrier": false, "publish": false,
	}
	for _, ev := range doc.TraceEvents {
		if _, ok := want[ev.Name]; ok {
			want[ev.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace missing %q events", name)
		}
	}
}

// TestObservedConcurrentSaves hammers an instrumented engine from many
// goroutines while a reader drains the ring and scrapes snapshots — the
// race detector is the real assertion here.
func TestObservedConcurrentSaves(t *testing.T) {
	rec := obs.NewRecorder(1 << 10)
	ck := newObservedEngine(t, rec)
	defer ck.Close()

	const goroutines = 4
	const saves = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			payload := make([]byte, 2500)
			for i := range payload {
				payload[i] = seed + byte(i)
			}
			for i := 0; i < saves; i++ {
				if _, err := ck.Checkpoint(context.Background(), BytesSource(payload)); err != nil {
					t.Errorf("Checkpoint: %v", err)
					return
				}
			}
		}(byte(g))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			rec.Snapshot()
			rec.TakeEvents()
		}
	}()
	wg.Wait()
	<-done

	snap := rec.Snapshot()
	if snap.Published+snap.Obsolete != goroutines*saves {
		t.Errorf("published %d + obsolete %d != %d total saves",
			snap.Published, snap.Obsolete, goroutines*saves)
	}
}

// TestNilObserverAddsNoAllocations is the zero-overhead-when-off regression
// gate, now a parity table: every observability attachment — recorder,
// recorder+ledger, the full chain with a black-box region formatted and a
// flusher attached — must not add heap allocations to Checkpoint relative
// to the nil-observer baseline. The black-box flusher only ever touches
// the ring from its own goroutine (manual-flush here so AllocsPerRun sees
// nothing of it); Emit stays branch + atomics into preallocated memory.
func TestNilObserverAddsNoAllocations(t *testing.T) {
	mk := func(o obs.Observer, bb blackbox.Config) *Checkpointer {
		cfg := Config{Concurrent: 1, SlotBytes: 1024, Writers: 1, Observer: o, BlackBox: bb}
		dev := storage.NewRAM(DeviceBytesFor(cfg))
		ck, err := New(dev, cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return ck
	}
	payload := make([]byte, 512)
	ctx := context.Background()

	run := func(ck *Checkpointer) float64 {
		src := BytesSource(payload)
		// Warm up chunk pool and slot cycling before measuring.
		for i := 0; i < 3; i++ {
			if _, err := ck.Checkpoint(ctx, src); err != nil {
				t.Fatalf("warmup Checkpoint: %v", err)
			}
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := ck.Checkpoint(ctx, src); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		})
	}

	off := mk(nil, blackbox.Config{})
	defer off.Close()
	baseline := run(off)

	cases := []struct {
		name     string
		observer func() obs.Observer
		bb       blackbox.Config
	}{
		{"recorder", func() obs.Observer { return obs.NewRecorder(1 << 12) }, blackbox.Config{}},
		{"recorder+ledger", func() obs.Observer {
			return obs.NewLedger(obs.LedgerConfig{SlowdownBudget: 1.05}, obs.NewRecorder(1<<12))
		}, blackbox.Config{}},
		{"recorder+ledger+blackbox", func() obs.Observer {
			return obs.NewLedger(obs.LedgerConfig{SlowdownBudget: 1.05},
				decision.New(decision.Config{}, obs.NewRecorder(1<<12)))
		}, blackbox.Config{
			Bytes:      blackbox.SectorBytes + 4*4096,
			FrameBytes: 4096,
			FlushEvery: -1, // manual: keep AllocsPerRun free of goroutine noise
		}},
	}
	for _, tc := range cases {
		ck := mk(tc.observer(), tc.bb)
		got := run(ck)
		if tc.bb.Enabled() && ck.BlackBox() == nil {
			t.Fatalf("%s: flusher did not attach", tc.name)
		}
		ck.Close()
		if got > baseline {
			t.Errorf("%s added allocations: %v vs %v baseline", tc.name, got, baseline)
		}
	}
}
