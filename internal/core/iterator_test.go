package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"pccheck/internal/pmem"
	"pccheck/internal/storage"
)

func iteratorFixture(t *testing.T, payloadLen int) (storage.Device, []byte) {
	t.Helper()
	dev := storage.NewPMEM(pmem.NewRegion(int(DeviceBytes(1, int64(payloadLen)))))
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: int64(payloadLen), VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	want := payload(99, payloadLen)
	if _, err := c.Checkpoint(context.Background(), BytesSource(want)); err != nil {
		t.Fatal(err)
	}
	return dev, want
}

func TestRecoveryIteratorStreamsWholePayload(t *testing.T) {
	dev, want := iteratorFixture(t, 10_000)
	it, err := NewRecoveryIterator(dev, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if it.Size() != 10_000 || it.Counter() != 1 || it.Position() != 0 {
		t.Fatalf("geometry: size=%d counter=%d pos=%d", it.Size(), it.Counter(), it.Position())
	}
	var got []byte
	buf := make([]byte, 4096)
	for !it.Done() {
		n, err := it.Next(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("streamed payload mismatch")
	}
	// Exhausted iterator returns 0, nil.
	if n, err := it.Next(buf); n != 0 || err != nil {
		t.Fatalf("post-done Next: %d, %v", n, err)
	}
	if err := it.ClearCursor(); err != nil {
		t.Fatal(err)
	}
}

// The headline feature: a crash mid-restore resumes from the logged cursor
// rather than byte zero.
func TestRecoveryIteratorResumesAfterCrash(t *testing.T) {
	dev, want := iteratorFixture(t, 20_000)
	it, err := NewRecoveryIterator(dev, 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	var restored []byte
	buf := make([]byte, 2048)
	for i := 0; i < 4; i++ { // deliver 8 KB, logging each chunk
		n, err := it.Next(buf)
		if err != nil {
			t.Fatal(err)
		}
		restored = append(restored, buf[:n]...)
	}
	// "Crash" of the recovering process: a fresh iterator over the same
	// device must pick up at the durable cursor.
	it2, err := NewRecoveryIterator(dev, 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	if it2.Position() != int64(len(restored)) {
		t.Fatalf("resumed at %d, want %d", it2.Position(), len(restored))
	}
	for !it2.Done() {
		n, err := it2.Next(buf)
		if err != nil {
			t.Fatal(err)
		}
		restored = append(restored, buf[:n]...)
	}
	if !bytes.Equal(restored, want) {
		t.Fatal("resumed restore produced wrong payload")
	}
}

// A cursor logged for an older checkpoint must be ignored once a newer one
// is published.
func TestRecoveryIteratorIgnoresStaleCursor(t *testing.T) {
	const size = 8_000
	dev := storage.NewPMEM(pmem.NewRegion(int(DeviceBytes(1, size))))
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: size})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, size))); err != nil {
		t.Fatal(err)
	}
	it, err := NewRecoveryIterator(dev, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	// New checkpoint supersedes the one being restored.
	want2 := payload(2, size)
	if _, err := c.Checkpoint(context.Background(), BytesSource(want2)); err != nil {
		t.Fatal(err)
	}
	it2, err := NewRecoveryIterator(dev, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if it2.Counter() != 2 || it2.Position() != 0 {
		t.Fatalf("stale cursor applied: counter=%d pos=%d", it2.Counter(), it2.Position())
	}
	got := make([]byte, 0, size)
	buf := make([]byte, 4096)
	for !it2.Done() {
		n, err := it2.Next(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, want2) {
		t.Fatal("payload mismatch after supersession")
	}
}

func TestRecoveryIteratorReset(t *testing.T) {
	dev, want := iteratorFixture(t, 5_000)
	it, err := NewRecoveryIterator(dev, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := 0; i < 3; i++ {
		if _, err := it.Next(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := it.Reset(); err != nil {
		t.Fatal(err)
	}
	if it.Position() != 0 {
		t.Fatalf("position after reset = %d", it.Position())
	}
	// And the durable cursor rewound too.
	it2, err := NewRecoveryIterator(dev, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if it2.Position() != 0 {
		t.Fatalf("durable cursor after reset = %d", it2.Position())
	}
	var got []byte
	for !it2.Done() {
		n, err := it2.Next(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload mismatch after reset")
	}
}

func TestRecoveryIteratorNoCheckpoint(t *testing.T) {
	dev := storage.NewRAM(DeviceBytes(1, 1024))
	if _, err := New(dev, Config{Concurrent: 1, SlotBytes: 1024}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRecoveryIterator(dev, 0, 0); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecoveryIteratorZeroBuffer(t *testing.T) {
	dev, _ := iteratorFixture(t, 1000)
	it, err := NewRecoveryIterator(dev, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
}

// The cursor survives a power failure mid-recovery (it is written with
// Persist): fork the durable state after some progress and resume there.
func TestRecoveryIteratorCursorDurable(t *testing.T) {
	const size = 12_000
	region := pmem.NewRegion(int(DeviceBytes(1, size)))
	dev := storage.NewPMEM(region)
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: size})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(5, size))); err != nil {
		t.Fatal(err)
	}
	it, err := NewRecoveryIterator(dev, 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3000)
	if _, err := it.Next(buf); err != nil {
		t.Fatal(err)
	}
	crashed := storage.NewPMEM(region.CloneDurable())
	it2, err := NewRecoveryIterator(crashed, 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if it2.Position() != 3000 {
		t.Fatalf("cursor lost in crash: position %d", it2.Position())
	}
}
