package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"pccheck/internal/obs"
	"pccheck/internal/obs/blackbox"
	"pccheck/internal/storage"
)

// scrubTestSave commits payload and returns its counter.
func scrubTestSave(t *testing.T, c *Checkpointer, payload []byte) uint64 {
	t.Helper()
	ctr, err := c.Checkpoint(context.Background(), BytesSource(payload))
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	return ctr
}

// --- pointer records --------------------------------------------------------

func TestScrubRepairsBitFlippedRecord(t *testing.T) {
	cfg := Config{Concurrent: 2, SlotBytes: 4096, VerifyPayload: true}
	fd := storage.NewFaultDevice(storage.NewRAM(DeviceBytesFor(cfg)))
	c, err := New(fd, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	var last uint64
	for k := 0; k < 3; k++ {
		last = scrubTestSave(t, c, crashPayload(uint64(100+k), 2048))
	}

	// Flip bits in both record locations: the durable pointer is gone from
	// the device, alive only in the engine's memory.
	for _, off := range []int64{recordAOff, recordBOff} {
		if err := fd.CorruptAt(off, 8, storage.CorruptBitFlip); err != nil {
			t.Fatalf("CorruptAt: %v", err)
		}
	}
	found, healed, err := c.ScrubNow()
	if err != nil {
		t.Fatalf("ScrubNow: %v", err)
	}
	if found != 2 || healed != 2 {
		t.Fatalf("ScrubNow found %d healed %d, want 2/2", found, healed)
	}
	st := c.ScrubStatus()
	if st.Repairs != 2 || st.Unrepaired != 0 {
		t.Errorf("status = %+v, want 2 repairs, 0 unrepaired", st)
	}
	if len(st.Findings) != 4 { // detected + repaired, twice
		t.Errorf("audit log holds %d findings, want 4", len(st.Findings))
	}

	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	payload, ctr, err := Recover(fd)
	if err != nil {
		t.Fatalf("Recover after record repair: %v", err)
	}
	if ctr != last {
		t.Errorf("recovered counter %d, want %d", ctr, last)
	}
	if err := checkCrashPayload(payload); err != nil {
		t.Errorf("recovered payload: %v", err)
	}
}

func TestScrubRepairsZeroedFirstSector(t *testing.T) {
	// A zeroing fault on sector 0 wipes the superblock AND both pointer
	// records at once. All three must be rebuilt from the engine's memory
	// (and any collateral slot damage repaired from the lower tier).
	cfg := Config{Concurrent: 2, SlotBytes: 4096, VerifyPayload: true}
	need := DeviceBytesFor(cfg)
	front := storage.NewFaultDevice(storage.NewRAM(need))
	levels := []storage.Device{front, storage.NewRAM(need)}
	td, err := storage.NewTiered(levels, storage.WithDrainInterval(200*time.Microsecond))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer td.Close()
	c, err := New(td, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	var last uint64
	for k := 0; k < 4; k++ {
		last = scrubTestSave(t, c, crashPayload(uint64(200+k), 2048))
	}
	if !td.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge")
	}

	if err := front.CorruptAt(recordAOff, recordSize, storage.CorruptSectorZero); err != nil {
		t.Fatalf("CorruptAt: %v", err)
	}
	found, healed, err := c.ScrubNow()
	if err != nil {
		t.Fatalf("ScrubNow: %v", err)
	}
	if found < 3 || healed != found {
		t.Fatalf("ScrubNow found %d healed %d, want >=3 findings all healed", found, healed)
	}

	// The repaired superblock must match the original bytes exactly.
	head := make([]byte, 64)
	if err := td.ReadAt(head, superOff); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(head, c.sb.encode()) {
		t.Error("superblock bytes differ after repair")
	}

	buf := make([]byte, 4096)
	ctr, n, err := c.ReadLatest(buf)
	if err != nil || ctr != last {
		t.Fatalf("ReadLatest = %d, %v, want %d", ctr, err, last)
	}
	if err := checkCrashPayload(buf[:n]); err != nil {
		t.Errorf("ReadLatest payload: %v", err)
	}
}

// --- published slot ---------------------------------------------------------

func TestScrubRepublishesDamagedSlotFromTier(t *testing.T) {
	cfg := Config{Concurrent: 2, SlotBytes: 4096, VerifyPayload: true}
	need := DeviceBytesFor(cfg)
	front := storage.NewFaultDevice(storage.NewRAM(need))
	td, err := storage.NewTiered([]storage.Device{front, storage.NewRAM(need)},
		storage.WithDrainInterval(200*time.Microsecond))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer td.Close()
	c, err := New(td, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	var last uint64
	for k := 0; k < 3; k++ {
		last = scrubTestSave(t, c, crashPayload(uint64(300+k), 2048))
	}
	if !td.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge")
	}
	oldSlot := c.checkAddr.Load().slot

	// Rot the front copy of the published payload; the lower tier still
	// holds an intact copy.
	if err := front.CorruptAt(payloadBase(c.sb, oldSlot)+100, 16, storage.CorruptBitFlip); err != nil {
		t.Fatalf("CorruptAt: %v", err)
	}
	found, healed, err := c.ScrubNow()
	if err != nil {
		t.Fatalf("ScrubNow: %v", err)
	}
	if found != 1 || healed != 1 {
		t.Fatalf("ScrubNow found %d healed %d, want 1/1", found, healed)
	}
	// Repair re-publishes into a fresh slot: writing into the damaged slot
	// in place could race a concurrent save recycling it.
	nm := c.checkAddr.Load()
	if nm.slot == oldSlot {
		t.Errorf("repair reused the damaged slot %d in place", oldSlot)
	}
	if nm.counter != last {
		t.Errorf("published counter changed across repair: %d, want %d", nm.counter, last)
	}
	buf := make([]byte, 4096)
	ctr, n, err := c.ReadLatest(buf)
	if err != nil || ctr != last {
		t.Fatalf("ReadLatest = %d, %v, want %d", ctr, err, last)
	}
	if err := checkCrashPayload(buf[:n]); err != nil {
		t.Errorf("ReadLatest payload after repair: %v", err)
	}
	if found2, _, _ := c.ScrubNow(); found2 != 0 {
		t.Errorf("second sweep found %d, want clean", found2)
	}
}

func TestScrubQuarantinesSlotWithoutHealthySource(t *testing.T) {
	// Single device: no tier holds a second copy, so a rotted published
	// payload cannot be repaired — it must be quarantined, live reads must
	// fail classified-corrupt, and recovery must fall back to the previous
	// checkpoint without disturbing the ack floor.
	cfg := Config{Concurrent: 2, SlotBytes: 4096, VerifyPayload: true}
	fd := storage.NewFaultDevice(storage.NewRAM(DeviceBytesFor(cfg)))
	c, err := New(fd, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	var last, prev uint64
	for k := 0; k < 3; k++ {
		prev = last
		last = scrubTestSave(t, c, crashPayload(uint64(400+k), 2048))
	}
	tip := *c.checkAddr.Load()
	if err := fd.CorruptAt(payloadBase(c.sb, tip.slot)+64, 32, storage.CorruptBitFlip); err != nil {
		t.Fatalf("CorruptAt: %v", err)
	}

	found, healed, err := c.ScrubNow()
	if err != nil {
		t.Fatalf("ScrubNow: %v", err)
	}
	if found != 1 || healed != 1 {
		t.Fatalf("ScrubNow found %d healed %d, want 1/1 (quarantine counts as contained)", found, healed)
	}
	st := c.ScrubStatus()
	if st.Quarantines != 1 || st.Repairs != 0 {
		t.Errorf("status = %+v, want exactly one quarantine", st)
	}

	// Live read: classified corrupt, never garbage.
	buf := make([]byte, 4096)
	if _, _, err := c.ReadLatest(buf); !storage.IsCorrupt(err) {
		t.Errorf("ReadLatest = %v, want a corrupt-classified error", err)
	}
	// Idempotence: the tombstone is not re-counted as fresh damage.
	if found2, _, _ := c.ScrubNow(); found2 != 0 {
		t.Errorf("second sweep found %d, want 0", found2)
	}

	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The on-device image: inspection renders the tombstone, recovery
	// skips it and serves the previous checkpoint.
	rep, err := Inspect(fd, true)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if !rep.SlotInfos[tip.slot].Quarantined {
		t.Errorf("slot %d not rendered as quarantined: %+v", tip.slot, rep.SlotInfos[tip.slot])
	}
	if !rep.Recoverable || rep.Latest.Counter != prev {
		t.Errorf("inspect: recoverable=%v latest=%d, want fallback to %d", rep.Recoverable, rep.Latest.Counter, prev)
	}
	payload, ctr, err := Recover(fd)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if ctr != prev {
		t.Errorf("recovered counter %d, want fallback %d", ctr, prev)
	}
	if err := checkCrashPayload(payload); err != nil {
		t.Errorf("recovered payload: %v", err)
	}

	// Reattach and keep training: the floor is the fallback, and the next
	// save reissues the lost counter with fresh data — the same semantic
	// as a crash before publication.
	c2, err := Open(fd, cfg)
	if err != nil {
		t.Fatalf("Open after quarantine: %v", err)
	}
	defer c2.Close()
	if ctr, _, ok := c2.Latest(); !ok || ctr != prev {
		t.Fatalf("reattached latest = %d/%v, want %d", ctr, ok, prev)
	}
	next := scrubTestSave(t, c2, crashPayload(999, 2048))
	if next <= prev {
		t.Errorf("post-quarantine save counter %d did not advance past the floor %d", next, prev)
	}
	ctr2, n2, err := c2.ReadLatest(buf)
	if err != nil || ctr2 != next {
		t.Fatalf("ReadLatest after reattach = %d, %v, want %d", ctr2, err, next)
	}
	if err := checkCrashPayload(buf[:n2]); err != nil {
		t.Errorf("post-quarantine payload: %v", err)
	}
}

// --- delta chains -----------------------------------------------------------

func TestScrubRepairsDeltaChainFromTier(t *testing.T) {
	cfg := Config{Concurrent: 2, SlotBytes: 4096, VerifyPayload: true, DeltaEvery: 1, DeltaKeyframe: 3}
	need := DeviceBytesFor(cfg)
	front := storage.NewFaultDevice(storage.NewRAM(need))
	td, err := storage.NewTiered([]storage.Device{front, storage.NewRAM(need)},
		storage.WithDrainInterval(200*time.Microsecond))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer td.Close()
	c, err := New(td, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	const n = 2048
	var last uint64
	// K=3 forces a keyframe on save 5 (kf,d,d,d,kf,d): six saves leave a
	// keyframe plus one delta pinned.
	for k := 0; k < 6; k++ {
		last = scrubTestSave(t, c, sparsePayload(77, uint64(k), n))
	}
	if !td.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge")
	}
	c.deltaMu.Lock()
	chain := append([]checkMeta(nil), c.chain...)
	c.deltaMu.Unlock()
	if len(chain) < 2 {
		t.Fatalf("expected a keyframe+delta chain, got %d link(s)", len(chain))
	}

	// Rot the keyframe AND a delta link on the front; both are repaired in
	// place from the lower tier, keyframe first (chain order).
	for _, m := range []checkMeta{chain[0], chain[len(chain)-1]} {
		if err := front.CorruptAt(payloadBase(c.sb, m.slot)+32, 8, storage.CorruptBitFlip); err != nil {
			t.Fatalf("CorruptAt: %v", err)
		}
	}
	found, healed, err := c.ScrubNow()
	if err != nil {
		t.Fatalf("ScrubNow: %v", err)
	}
	if found != 2 || healed != 2 {
		t.Fatalf("ScrubNow found %d healed %d, want 2/2", found, healed)
	}
	buf := make([]byte, n)
	ctr, rn, err := c.ReadLatest(buf)
	if err != nil || ctr != last {
		t.Fatalf("ReadLatest = %d, %v, want %d", ctr, err, last)
	}
	if err := checkSparsePayload(buf[:rn]); err != nil {
		t.Errorf("reconstructed payload after chain repair: %v", err)
	}
	if found2, _, _ := c.ScrubNow(); found2 != 0 {
		t.Errorf("second sweep found %d, want clean", found2)
	}
}

// --- lower tiers ------------------------------------------------------------

func TestScrubResyncsDamagedTier(t *testing.T) {
	cfg := Config{Concurrent: 2, SlotBytes: 4096, VerifyPayload: true}
	need := DeviceBytesFor(cfg)
	lower := storage.NewFaultDevice(storage.NewRAM(need))
	levels := []storage.Device{storage.NewRAM(need), lower}
	td, err := storage.NewTiered(levels, storage.WithDrainInterval(200*time.Microsecond))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer td.Close()
	c, err := New(td, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	var last uint64
	for k := 0; k < 3; k++ {
		last = scrubTestSave(t, c, crashPayload(uint64(500+k), 2048))
	}
	if !td.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge")
	}
	tip := *c.checkAddr.Load()

	// Rot the lower tier's copy of the published payload: its
	// self-contained image no longer recovers the durable watermark.
	if err := lower.CorruptAt(payloadBase(c.sb, tip.slot)+128, 64, storage.CorruptBitFlip); err != nil {
		t.Fatalf("CorruptAt: %v", err)
	}
	found, healed, err := c.ScrubNow()
	if err != nil {
		t.Fatalf("ScrubNow: %v", err)
	}
	if found != 1 || healed != 1 {
		t.Fatalf("ScrubNow found %d healed %d, want 1/1", found, healed)
	}
	if st := c.ScrubStatus(); st.TierResyncs != 1 {
		t.Errorf("status = %+v, want one tier resync", st)
	}
	if !td.WaitDrained(5 * time.Second) {
		t.Fatal("resync did not complete")
	}
	payload, ctr, err := recoverDevice(lower)
	if err != nil {
		t.Fatalf("tier recovery after resync: %v", err)
	}
	if ctr != last {
		t.Errorf("tier recovered %d, want %d", ctr, last)
	}
	if err := checkCrashPayload(payload); err != nil {
		t.Errorf("tier payload after resync: %v", err)
	}
	if found2, _, _ := c.ScrubNow(); found2 != 0 {
		t.Errorf("second sweep found %d, want clean", found2)
	}
}

// --- black box --------------------------------------------------------------

func TestScrubRepairsBlackBoxHeader(t *testing.T) {
	cfg := Config{
		Concurrent: 2, SlotBytes: 4096, VerifyPayload: true,
		Observer: obs.NewRecorder(256),
		BlackBox: blackbox.Config{Bytes: 64 << 10, FlushEvery: -1},
	}
	fd := storage.NewFaultDevice(storage.NewRAM(DeviceBytesFor(cfg)))
	c, err := New(fd, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	scrubTestSave(t, c, crashPayload(600, 2048))

	if err := fd.CorruptAt(blackBoxBase(c.sb), 16, storage.CorruptBitFlip); err != nil {
		t.Fatalf("CorruptAt: %v", err)
	}
	found, healed, err := c.ScrubNow()
	if err != nil {
		t.Fatalf("ScrubNow: %v", err)
	}
	if found != 1 || healed != 1 {
		t.Fatalf("ScrubNow found %d healed %d, want 1/1", found, healed)
	}
	if err := blackbox.CheckHeader(fd, blackBoxBase(c.sb), c.sb.blackBoxBytes, c.sb.epoch); err != nil {
		t.Errorf("black-box header still damaged after repair: %v", err)
	}
	if found2, _, _ := c.ScrubNow(); found2 != 0 {
		t.Errorf("second sweep found %d, want clean", found2)
	}
}

// --- background loop --------------------------------------------------------

func TestScrubBackgroundLoopHeals(t *testing.T) {
	cfg := Config{
		Concurrent: 2, SlotBytes: 4096, VerifyPayload: true,
		Scrub: ScrubConfig{Interval: time.Millisecond},
	}
	fd := storage.NewFaultDevice(storage.NewRAM(DeviceBytesFor(cfg)))
	c, err := New(fd, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	scrubTestSave(t, c, crashPayload(700, 2048))

	if err := fd.CorruptAt(recordAOff, 8, storage.CorruptBitFlip); err != nil {
		t.Fatalf("CorruptAt: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.ScrubStatus()
		if st.Repairs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background scrubber never repaired the record: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// --- write-path failover, end to end ----------------------------------------

// TestTier0FailoverMidRunDegraded drives a training-style save loop into a
// permanent tier-0 failure: the loop must ride through (a bounded number of
// failed saves while the failover threshold is consumed), demote tier 0,
// finish on the next tier, and keep the durable floor monotonic.
func TestTier0FailoverMidRunDegraded(t *testing.T) {
	cfg := Config{Concurrent: 2, SlotBytes: 4096, VerifyPayload: true}
	need := DeviceBytesFor(cfg)
	front := storage.NewFaultDevice(storage.NewRAM(need))
	levels := []storage.Device{front, storage.NewRAM(need), storage.NewRAM(need)}
	td, err := storage.NewTiered(levels,
		storage.WithDrainInterval(200*time.Microsecond),
		storage.WithFailoverThreshold(2))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer td.Close()
	c, err := New(td, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()

	var preFailure, last uint64
	failed := 0
	for k := 0; k < 20; k++ {
		if k == 8 {
			if !td.WaitDrained(5 * time.Second) {
				t.Fatal("tiers did not converge before the failure")
			}
			preFailure = last
			// Tier 0 dies for good: every durability op fails permanently
			// (buffered WriteAts may still "succeed" — they no longer reset
			// the failover budget).
			front.SetSchedule(storage.OpPersist, storage.Schedule{After: 1, Count: 1 << 30})
			front.SetSchedule(storage.OpSync, storage.Schedule{After: 1, Count: 1 << 30})
		}
		ctr, err := c.Checkpoint(context.Background(), BytesSource(crashPayload(uint64(800+k), 2048)))
		if err != nil {
			failed++
			continue
		}
		last = ctr
	}
	if failed == 0 {
		t.Fatal("no save ever hit the failing tier — the failure was not exercised")
	}
	if failed > 10 {
		t.Errorf("%d of 12 post-failure saves failed; failover did not restore the write path", failed)
	}
	if last <= preFailure {
		t.Fatalf("no save succeeded after the tier-0 failure (last %d, pre-failure %d)", last, preFailure)
	}

	st := td.Status()
	if td.Active() == 0 || !st[0].Failed || st[0].Active {
		t.Errorf("tier 0 not demoted: active=%d status=%+v", td.Active(), st[0])
	}
	if st[0].Failovers != 1 {
		t.Errorf("tier 0 failovers = %d, want 1", st[0].Failovers)
	}

	// The degraded stack still reads and still scrubs clean.
	buf := make([]byte, 4096)
	ctr, n, err := c.ReadLatest(buf)
	if err != nil || ctr != last {
		t.Fatalf("ReadLatest degraded = %d, %v, want %d", ctr, err, last)
	}
	if err := checkCrashPayload(buf[:n]); err != nil {
		t.Errorf("degraded payload: %v", err)
	}
	if found, _, err := c.ScrubNow(); err != nil || found != 0 {
		t.Errorf("degraded sweep found %d, err %v, want clean", found, err)
	}

	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := td.Close(); err != nil {
		t.Fatalf("tiered Close: %v", err)
	}
	payload, rctr, err := RecoverTiered(levels...)
	if err != nil {
		t.Fatalf("RecoverTiered: %v", err)
	}
	if rctr != last {
		t.Errorf("recovered %d, want the degraded-mode floor %d", rctr, last)
	}
	if err := checkCrashPayload(payload); err != nil {
		t.Errorf("recovered payload: %v", err)
	}
	if rctr < preFailure {
		t.Errorf("durable floor regressed across failover: %d < %d", rctr, preFailure)
	}
}

// --- the sweep harness ------------------------------------------------------

// TestScrubSweepMatrix runs one full pass over the scenario × mode ×
// format × depth matrix. PCCHECK_SCRUB_SWEEP=<cases> scales it up (CI runs
// 720 cases ≈ 1080 injected corruptions).
func TestScrubSweepMatrix(t *testing.T) {
	cases := 60
	if v := os.Getenv("PCCHECK_SCRUB_SWEEP"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("PCCHECK_SCRUB_SWEEP=%q: %v", v, err)
		}
		cases = n
	} else if testing.Short() {
		cases = 15
	}
	res, err := ScrubSweep(ScrubSweepOptions{Seed: 0xC0FFEE, Cases: cases})
	if err != nil {
		t.Fatalf("ScrubSweep: %v", err)
	}
	t.Logf("sweep: %d cases, %d injected, %d detected, %d repaired, %d quarantined, %d resynced",
		res.Cases, res.Injected, res.Detected, res.Repaired, res.Quarantined, res.Resynced)
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.Detected == 0 || res.Repaired == 0 || res.Quarantined == 0 || res.Resynced == 0 {
		t.Errorf("sweep did not exercise every healing path: %+v", res)
	}
}

// --- the audit-record codec -------------------------------------------------

func TestScrubRecordCodecRoundTrip(t *testing.T) {
	recs := []ScrubRecord{
		{TS: 1234, Counter: 42, Tier: -1, Slot: 3, Action: ScrubRepaired, Region: RegionSlot},
		{TS: -7, Counter: 0, Tier: 2, Slot: -1, Action: ScrubResynced, Region: RegionTier},
		{Action: ScrubQuarantined, Region: RegionRecord},
		{Action: ScrubDetected, Region: RegionSuperblock, Tier: -1, Slot: -1},
	}
	for _, want := range recs {
		got, err := DecodeScrubRecord(want.Encode())
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
	if _, err := DecodeScrubRecord(make([]byte, 10)); err == nil {
		t.Error("truncated record decoded")
	}
	bad := recs[0].Encode()
	bad[5] ^= 0xFF
	if _, err := DecodeScrubRecord(bad); err == nil {
		t.Error("bit-flipped record decoded")
	}
}

func FuzzScrubRecord(f *testing.F) {
	f.Add(ScrubRecord{TS: 1, Counter: 2, Tier: -1, Slot: 0, Action: ScrubDetected, Region: RegionSlot}.Encode())
	f.Add(ScrubRecord{Tier: 3, Slot: -1, Action: ScrubResynced, Region: RegionTier}.Encode())
	f.Add(make([]byte, scrubRecordSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeScrubRecord(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to something that decodes to
		// the same record, and must render without panicking.
		got, err := DecodeScrubRecord(rec.Encode())
		if err != nil {
			t.Fatalf("re-decode of valid record failed: %v", err)
		}
		if got != rec {
			t.Fatalf("unstable round trip: %+v vs %+v", got, rec)
		}
		_ = rec.String()
		_ = fmt.Sprintf("%v %v", rec.Action, rec.Region)
	})
}
