package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"pccheck/internal/obs"
	"pccheck/internal/storage"
)

// RetryPolicy governs how the engine reacts to transient device faults
// (storage.ClassTransient): each persist-path I/O is attempted up to
// MaxAttempts times with exponential backoff and jitter between attempts.
// Permanent and corrupt errors are never retried — they fail the operation
// on the first occurrence.
//
// The zero value retries nothing (MaxAttempts 1), which is the engine's
// historical behavior.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per I/O operation,
	// including the first. Values < 1 behave as 1 (no retry).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 1ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 100ms).
	MaxBackoff time.Duration
	// Multiplier grows the backoff between attempts (default 2).
	Multiplier float64
	// Jitter randomizes each backoff by ±Jitter fraction so concurrent
	// writers hitting the same fault don't retry in lockstep. 0 defaults
	// to 0.2; negative disables jitter.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// backoff returns the sleep before retry number n (1-based), jittered.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := float64(p.BaseBackoff)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rand.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// retryIO runs op, absorbing transient device faults per the engine's
// RetryPolicy. Every absorbed fault increments Stats.TransientFaults; every
// retry taken increments Stats.IORetries. Permanent and corrupt errors
// return immediately, as does ctx cancellation during backoff. When the
// attempt budget is exhausted the last (still transient-classified) error is
// returned wrapped with the attempt count.
func (c *Checkpointer) retryIO(ctx context.Context, op func() error) error {
	pol := c.cfg.Retry
	// backoffNS accumulates the sleep the policy spent absorbing transient
	// faults; a sequence that saw at least one fault is recorded as a retry
	// decision (regret = backoff burned iff the operation failed anyway).
	var backoffNS int64
	faulted := false
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil {
			if faulted && c.dec != nil {
				c.recordRetry(attempt, backoffNS, true, "recovered")
			}
			return nil
		}
		if storage.Classify(err) != storage.ClassTransient {
			if faulted && c.dec != nil {
				c.recordRetry(attempt, backoffNS, false, "permanent")
			}
			return err
		}
		faulted = true
		c.stats.TransientFaults.Add(1)
		c.instant(obs.PhaseFault, 0, -1, 0, 0)
		if attempt >= pol.MaxAttempts {
			if c.dec != nil {
				c.recordRetry(attempt, backoffNS, false, "exhausted")
			}
			if pol.MaxAttempts == 1 {
				return err
			}
			return fmt.Errorf("core: %d attempts exhausted: %w", attempt, err)
		}
		c.stats.IORetries.Add(1)
		backoff := pol.backoff(attempt)
		backoffStart := c.obsNow()
		select {
		case <-ctx.Done():
			if c.dec != nil {
				c.recordRetry(attempt, backoffNS, false, "cancelled")
			}
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoffNS += int64(backoff)
		if c.obsv != nil {
			c.obsv.Emit(obs.Event{
				TS: backoffStart, Dur: time.Now().UnixNano() - backoffStart,
				Phase: obs.PhaseIORetry, Slot: -1, Writer: -1, Rank: -1,
				Attempt: int32(attempt),
			})
		}
	}
}
