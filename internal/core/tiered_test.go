package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pccheck/internal/obs"
	"pccheck/internal/storage"
)

// TestReopenSSDValidatesSizeAgainstSuperblock pins the ReopenSSD bugfix:
// before it, ReopenSSD trusted st.Size() and a truncated (or grown) device
// file surfaced later as range errors mid-recovery instead of a classified
// Corrupt error at open. The size probe is registered by this package's
// init, so the regression lives here.
func TestReopenSSDValidatesSizeAgainstSuperblock(t *testing.T) {
	cfg := Config{Concurrent: 2, SlotBytes: 2048, VerifyPayload: true}
	path := filepath.Join(t.TempDir(), "dev.img")
	size := DeviceBytesFor(cfg)

	dev, err := storage.OpenSSD(path, size)
	if err != nil {
		t.Fatalf("OpenSSD: %v", err)
	}
	c, err := New(dev, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 1024))); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	c.Close()
	if err := dev.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Intact file reopens cleanly.
	re, err := storage.ReopenSSD(path)
	if err != nil {
		t.Fatalf("ReopenSSD on intact file: %v", err)
	}
	re.Close()

	// Truncated file must fail Corrupt at open.
	if err := os.Truncate(path, size-512); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, err := storage.ReopenSSD(path); !storage.IsCorrupt(err) {
		t.Fatalf("ReopenSSD on truncated file = %v, want a Corrupt-classified error", err)
	}

	// Grown file likewise: the superblock pins the exact geometry.
	if err := os.Truncate(path, size+4096); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if _, err := storage.ReopenSSD(path); !storage.IsCorrupt(err) {
		t.Fatalf("ReopenSSD on grown file = %v, want a Corrupt-classified error", err)
	}
}

// tieredEngine builds an engine over a Tiered device, returning the raw
// levels for direct inspection.
func tieredEngine(t *testing.T, cfg Config, lower []storage.Device, opts ...storage.TieredOption) (*Checkpointer, *storage.Tiered, *storage.RAM) {
	t.Helper()
	size := DeviceBytesFor(cfg)
	tier0 := storage.NewRAM(size)
	levels := append([]storage.Device{tier0}, lower...)
	opts = append([]storage.TieredOption{storage.WithDrainInterval(200 * time.Microsecond)}, opts...)
	tiered, err := storage.NewTiered(levels, opts...)
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	c, err := New(tiered, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, tiered, tier0
}

func TestRecoverTieredPrefersNewestCounter(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 1024, VerifyPayload: true}
	mkdev := func(saves int) (storage.Device, []byte) {
		dev := storage.NewRAM(DeviceBytesFor(cfg))
		c, err := New(dev, cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var last []byte
		for i := 0; i < saves; i++ {
			last = payload(int64(saves*100+i), 512)
			if _, err := c.Checkpoint(context.Background(), BytesSource(last)); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
		return dev, last
	}
	older, _ := mkdev(3)
	newer, wantPayload := mkdev(5)

	p, ctr, err := RecoverTiered(older, newer)
	if err != nil {
		t.Fatalf("RecoverTiered: %v", err)
	}
	if ctr != 5 {
		t.Fatalf("recovered counter %d, want the newest across tiers (5)", ctr)
	}
	if !bytes.Equal(p, wantPayload) {
		t.Fatal("recovered payload is not the newest tier's")
	}

	// Unformatted and nil levels are skipped, not fatal.
	p, ctr, err = RecoverTiered(nil, storage.NewRAM(DeviceBytesFor(cfg)), older)
	if err != nil {
		t.Fatalf("RecoverTiered with dead levels: %v", err)
	}
	if ctr != 3 || p == nil {
		t.Fatalf("recovered counter %d, want 3 from the only live tier", ctr)
	}

	// No recoverable tier at all.
	if _, _, err := RecoverTiered(storage.NewRAM(DeviceBytesFor(cfg))); err == nil {
		t.Fatal("RecoverTiered over only unformatted tiers succeeded")
	}
}

// TestRecoverWalksTiersAfterTier0Loss: core.Recover on a Tiered device must
// fall back to lower tiers when tier 0's contents are gone — the restart
// path after losing the fast tier.
func TestRecoverWalksTiersAfterTier0Loss(t *testing.T) {
	cfg := Config{Concurrent: 2, SlotBytes: 2048, VerifyPayload: true}
	ram1 := storage.NewRAM(DeviceBytesFor(cfg))
	c, tiered, tier0 := tieredEngine(t, cfg, []storage.Device{ram1})
	defer tiered.Close()

	var want []byte
	for i := 1; i <= 4; i++ {
		want = payload(int64(i), 1500)
		if _, err := c.Checkpoint(context.Background(), BytesSource(want)); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge")
	}
	c.Close()

	// Lose tier 0: zero it *directly* (not through the tiered device, which
	// would replicate the wipe).
	zero := make([]byte, tier0.Size())
	if err := tier0.WriteAt(zero, 0); err != nil {
		t.Fatalf("wipe tier 0: %v", err)
	}

	p, ctr, err := Recover(tiered)
	if err != nil {
		t.Fatalf("Recover after tier-0 loss: %v", err)
	}
	if ctr != 4 {
		t.Fatalf("recovered counter %d from tier 1, want 4", ctr)
	}
	if !bytes.Equal(p, want) {
		t.Fatal("tier-1 payload mismatch after tier-0 loss")
	}
}

// TestTieredCrashSweep is the acceptance test: with tier 0 lost at an
// arbitrary point (every prefix of tier 1's crash journal, under both the
// pessimistic and optimistic sector adversaries plus seeded mixes),
// recovery from the surviving tier restores at least the newest checkpoint
// the drainer acknowledged there — the ack floor carried by the drainer's
// marks in the crash journal.
func TestTieredCrashSweep(t *testing.T) {
	cfg := Config{Concurrent: 2, SlotBytes: 4096, VerifyPayload: true}
	size := DeviceBytesFor(cfg)
	crash := storage.NewCrashDevice(size, storage.KindSSD)
	ledger := obs.NewLedger(obs.LedgerConfig{}, nil)
	cfg.Observer = ledger

	tier0 := storage.NewRAM(size)
	tiered, err := storage.NewTiered([]storage.Device{tier0, crash},
		storage.WithDrainInterval(200*time.Microsecond),
		storage.WithTierObserver(ledger))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	c, err := New(tiered, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const saves = 12
	payloads := map[uint64][]byte{}
	for i := 1; i <= saves; i++ {
		p := payload(int64(i), 2048+i*17)
		ctr, err := c.Checkpoint(context.Background(), BytesSource(p))
		if err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
		payloads[ctr] = p
		if i%3 == 0 {
			// Let the drainer make progress at some commit boundaries so the
			// sweep sees a spread of ack floors, not just 0 and saves.
			time.Sleep(2 * time.Millisecond)
		}
	}
	c.Close()

	// --- the sweep: tier 0 is gone; only a crash image of tier 1 survives.
	ops := crash.Ops()
	if ops == 0 {
		t.Fatal("drainer never wrote to tier 1")
	}
	stride := ops / 48
	if stride < 1 {
		stride = 1
	}
	choosers := map[string]storage.CrashChooser{
		"drop-unsynced": storage.DropAllWrites,
		"keep-unsynced": storage.KeepAllWrites,
		"seed-1":        storage.SeededChooser(1),
		"seed-42":       storage.SeededChooser(42),
	}
	floors := map[uint64]bool{}
	checked := 0
	for prefix := 0; prefix <= ops; prefix += stride {
		floor := crash.HighestMark(prefix)
		floors[floor] = true
		for name, choose := range choosers {
			img, err := crash.CrashImage(prefix, choose)
			if err != nil {
				t.Fatalf("CrashImage(%d, %s): %v", prefix, name, err)
			}
			p, ctr, err := Recover(storage.NewRAMFromBytes(img))
			if err != nil {
				if floor > 0 {
					t.Fatalf("prefix %d/%s: drainer acked counter %d to tier 1 but recovery failed: %v",
						prefix, name, floor, err)
				}
				continue
			}
			if ctr < floor {
				t.Fatalf("prefix %d/%s: recovered counter %d below the acked floor %d",
					prefix, name, ctr, floor)
			}
			want, okPayload := payloads[ctr]
			if !okPayload {
				t.Fatalf("prefix %d/%s: recovered unknown counter %d", prefix, name, ctr)
			}
			if !bytes.Equal(p, want) {
				t.Fatalf("prefix %d/%s: counter %d payload corrupt", prefix, name, ctr)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("sweep recovered nothing anywhere — drainer never made a checkpoint durable at tier 1")
	}
	if len(floors) < 2 {
		t.Logf("sweep saw only floors %v; timing collapsed the drain spread this run", floors)
	}

	// --- ledger consistency: after quiescing, the per-tier ledger row must
	// agree with the device's own drain accounting.
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge post-run")
	}
	st := tiered.Status()
	if st[1].DurableCounter != saves {
		t.Fatalf("tier 1 durable counter %d after full drain, want %d", st[1].DurableCounter, saves)
	}
	rep := ledger.Report()
	if rep.LastPublishedCounter != saves {
		t.Fatalf("ledger published counter %d, want %d", rep.LastPublishedCounter, saves)
	}
	var row *obs.TierDurability
	for i := range rep.Tiers {
		if rep.Tiers[i].Tier == 1 {
			row = &rep.Tiers[i]
		}
	}
	if row == nil {
		t.Fatalf("ledger report has no tier-1 row: %+v", rep.Tiers)
	}
	if row.DurableCounter != st[1].DurableCounter {
		t.Fatalf("ledger tier row durable=%d, device status durable=%d — drain lag accounting diverged",
			row.DurableCounter, st[1].DurableCounter)
	}
	if row.DrainLagCheckpoints != 0 {
		t.Fatalf("ledger reports drain lag %d after full drain, want 0", row.DrainLagCheckpoints)
	}
	if row.Drains == 0 || row.DrainedBytes == 0 {
		t.Fatalf("ledger tier row has empty drain accounting: %+v", row)
	}
	tiered.Close()
}

// TestTieredLedgerTracksStaleTier: a torn-down tier must show up in the
// ledger as drain lag equal to its distance behind the published counter —
// matching the device's own status, not a guess.
func TestTieredLedgerTracksStaleTier(t *testing.T) {
	cfg := Config{Concurrent: 2, SlotBytes: 2048, VerifyPayload: true}
	broken := storage.NewFaultDevice(storage.NewRAM(DeviceBytesFor(cfg)))
	broken.SetSchedule(storage.OpWrite, storage.Schedule{After: 1, Count: 1 << 30})
	ledger := obs.NewLedger(obs.LedgerConfig{}, nil)
	cfg.Observer = ledger

	c, tiered, _ := tieredEngine(t, cfg, []storage.Device{broken},
		storage.WithTierObserver(ledger),
		storage.WithTierRetry(2, 50*time.Microsecond, time.Millisecond))
	defer tiered.Close()

	const saves = 5
	for i := 1; i <= saves; i++ {
		if _, err := c.Checkpoint(context.Background(), BytesSource(payload(int64(i), 1024))); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}
	c.Close()

	// Wait until the drainer has tried (and failed) against the dead tier.
	deadline := time.Now().Add(5 * time.Second)
	for tiered.Status()[1].Errors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("drainer never attempted the dead tier")
		}
		time.Sleep(time.Millisecond)
	}

	st := tiered.Status()
	rep := ledger.Report()
	var row *obs.TierDurability
	for i := range rep.Tiers {
		if rep.Tiers[i].Tier == 1 {
			row = &rep.Tiers[i]
		}
	}
	if row == nil {
		t.Fatalf("no tier-1 ledger row despite drain errors: %+v", rep.Tiers)
	}
	if st[1].DurableCounter != 0 || row.DurableCounter != 0 {
		t.Fatalf("dead tier advanced: status=%d ledger=%d", st[1].DurableCounter, row.DurableCounter)
	}
	if row.DrainLagCheckpoints != saves {
		t.Fatalf("ledger drain lag %d, want %d (published %d, tier durable 0)",
			row.DrainLagCheckpoints, saves, rep.LastPublishedCounter)
	}
	if row.Errors == 0 {
		t.Fatalf("ledger tier row shows no errors for the dead tier: %+v", row)
	}
	if row.StalenessSeconds <= 0 {
		t.Fatalf("ledger staleness %.3fs for a tier that never became durable, want > 0", row.StalenessSeconds)
	}
}
