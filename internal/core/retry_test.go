package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"pccheck/internal/storage"
)

// The fault-tolerant persist path: transient device faults are absorbed by
// bounded retry with backoff, permanent faults fail fast, and slot
// accounting balances on every outcome.

func retryEngine(t *testing.T, cfg Config) (*Checkpointer, *storage.FaultDevice, *storage.RAM) {
	t.Helper()
	ram := storage.NewRAM(DeviceBytes(cfg.Concurrent, cfg.SlotBytes))
	dev := storage.NewFaultDevice(ram)
	c, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, dev, ram
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
	}
}

// The acceptance scenario: k transient faults with k < MaxAttempts must not
// fail the Save, must count exactly k retries and k transient faults, and
// the recovered checkpoint must be byte-identical.
func TestCheckpointSurvivesScheduledTransientFaults(t *testing.T) {
	const k = 3
	c, dev, ram := retryEngine(t, Config{
		Concurrent: 2, SlotBytes: 8192, Writers: 2, ChunkBytes: 2048,
		VerifyPayload: true, Retry: fastRetry(k + 2),
	})
	want := payload(42, 6000)
	dev.FailTransient(storage.OpWrite, 2, k)
	if _, err := c.Checkpoint(context.Background(), BytesSource(want)); err != nil {
		t.Fatalf("checkpoint died on transient faults: %v", err)
	}
	s := c.Stats()
	if s.IORetries != k {
		t.Fatalf("IORetries = %d, want %d", s.IORetries, k)
	}
	if s.TransientFaults != k {
		t.Fatalf("TransientFaults = %d, want %d", s.TransientFaults, k)
	}
	if s.FailedSaves != 0 {
		t.Fatalf("FailedSaves = %d, want 0", s.FailedSaves)
	}
	got, counter, err := Recover(ram)
	if err != nil {
		t.Fatal(err)
	}
	if counter != 1 || !bytes.Equal(got, want) {
		t.Fatalf("recovered checkpoint %d not byte-identical", counter)
	}
	if free := c.FreeSlots(); free != c.TotalSlots()-1 {
		t.Fatalf("free slots = %d, want %d", free, c.TotalSlots()-1)
	}
}

// Permanent faults must fail the Save without a single retry, leak no slot,
// and leave the previously published checkpoint recoverable.
func TestPermanentFaultFailsFastWithoutRetry(t *testing.T) {
	c, dev, ram := retryEngine(t, Config{
		Concurrent: 1, SlotBytes: 4096, VerifyPayload: true, Retry: fastRetry(5),
	})
	want := payload(7, 3000)
	if _, err := c.Checkpoint(context.Background(), BytesSource(want)); err != nil {
		t.Fatal(err)
	}
	dev.FailAfter(storage.OpWrite, 1, nil) // ErrInjected classifies permanent
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(8, 3000))); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	s := c.Stats()
	if s.IORetries != 0 || s.TransientFaults != 0 {
		t.Fatalf("permanent fault retried: retries=%d transient=%d", s.IORetries, s.TransientFaults)
	}
	if s.FailedSaves != 1 {
		t.Fatalf("FailedSaves = %d, want 1", s.FailedSaves)
	}
	if free := c.FreeSlots(); free != c.TotalSlots()-1 {
		t.Fatalf("slot leaked: free = %d, want %d", free, c.TotalSlots()-1)
	}
	got, counter, err := Recover(ram)
	if err != nil || counter != 1 || !bytes.Equal(got, want) {
		t.Fatalf("previous checkpoint lost: counter=%d err=%v", counter, err)
	}
}

// A burst longer than the attempt budget exhausts the retries: the Save
// fails with a transient-classified error and the slot comes back.
func TestRetryBudgetExhaustion(t *testing.T) {
	c, dev, _ := retryEngine(t, Config{
		Concurrent: 1, SlotBytes: 2048, Retry: fastRetry(3),
	})
	dev.FailTransient(storage.OpWrite, 1, 10)
	_, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 1000)))
	if err == nil {
		t.Fatal("checkpoint survived more faults than the attempt budget")
	}
	if !storage.IsTransient(err) {
		t.Fatalf("exhaustion error lost its class: %v", err)
	}
	s := c.Stats()
	if s.TransientFaults != 3 || s.IORetries != 2 {
		t.Fatalf("transient=%d retries=%d, want 3/2", s.TransientFaults, s.IORetries)
	}
	if s.FailedSaves != 1 {
		t.Fatalf("FailedSaves = %d", s.FailedSaves)
	}
	dev.Clear()
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(2, 1000))); err != nil {
		t.Fatalf("engine wedged after exhaustion: %v", err)
	}
	if free := c.FreeSlots(); free != c.TotalSlots()-1 {
		t.Fatalf("slot leaked: free = %d", free)
	}
}

// Transient faults on the slot-header and pointer-record Persist calls are
// absorbed too — the retry loop covers the whole persist path, not just the
// payload writers.
func TestTransientFaultOnHeaderAndRecordPersist(t *testing.T) {
	c, dev, ram := retryEngine(t, Config{
		Concurrent: 1, SlotBytes: 2048, VerifyPayload: true, Retry: fastRetry(4),
	})
	// Within one Checkpoint the Persist order is: slot header, then pointer
	// record. Fault both.
	dev.FailTransient(storage.OpPersist, 1, 1)
	want := payload(3, 1500)
	if _, err := c.Checkpoint(context.Background(), BytesSource(want)); err != nil {
		t.Fatalf("header persist fault not absorbed: %v", err)
	}
	dev.FailTransient(storage.OpPersist, 2, 1) // next: header ok, record faults
	want2 := payload(4, 1500)
	if _, err := c.Checkpoint(context.Background(), BytesSource(want2)); err != nil {
		t.Fatalf("record persist fault not absorbed: %v", err)
	}
	got, counter, err := Recover(ram)
	if err != nil || counter != 2 || !bytes.Equal(got, want2) {
		t.Fatalf("recovered %d err=%v", counter, err)
	}
	if s := c.Stats(); s.IORetries != 2 || s.TransientFaults != 2 {
		t.Fatalf("retries=%d transient=%d, want 2/2", s.IORetries, s.TransientFaults)
	}
}

// A permanent pointer-record failure after a won CAS must not recycle the
// slot the durable record still references — it is parked and released only
// once a newer record lands, keeping recovery safe throughout.
func TestRecordPersistFailureDefersSlotFree(t *testing.T) {
	c, dev, ram := retryEngine(t, Config{
		Concurrent: 1, SlotBytes: 4096, VerifyPayload: true, Retry: fastRetry(2),
	})
	first := payload(11, 3500)
	if _, err := c.Checkpoint(context.Background(), BytesSource(first)); err != nil {
		t.Fatal(err)
	}
	// Next Checkpoint: Persist #1 is the slot header, #2 the pointer record.
	dev.FailAfter(storage.OpPersist, 2, nil)
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(12, 3500))); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	// The durable record still references checkpoint 1's slot; it must be
	// parked (not free) so nothing can overwrite it...
	if free := c.FreeSlots(); free != c.TotalSlots()-2 {
		t.Fatalf("free slots = %d, want %d (referenced slot must stay parked)", free, c.TotalSlots()-2)
	}
	// ...which keeps the crash image recoverable to checkpoint 1.
	got, counter, err := Recover(ram)
	if err != nil || counter != 1 || !bytes.Equal(got, first) {
		t.Fatalf("recovery broken after record failure: counter=%d err=%v", counter, err)
	}
	// A later successful publication supersedes the stale reference and
	// returns the parked slot to the free queue: no leak.
	third := payload(13, 3500)
	if _, err := c.Checkpoint(context.Background(), BytesSource(third)); err != nil {
		t.Fatal(err)
	}
	if free := c.FreeSlots(); free != c.TotalSlots()-1 {
		t.Fatalf("parked slot leaked: free = %d, want %d", free, c.TotalSlots()-1)
	}
	got, counter, err = Recover(ram)
	if err != nil || !bytes.Equal(got, third) {
		t.Fatalf("recovery after requited record: counter=%d err=%v", counter, err)
	}
}

// Context cancellation during backoff aborts the retry loop promptly and
// releases the slot.
func TestRetryBackoffHonorsContext(t *testing.T) {
	c, dev, _ := retryEngine(t, Config{
		Concurrent: 1, SlotBytes: 2048,
		Retry: RetryPolicy{MaxAttempts: 100, BaseBackoff: time.Hour, MaxBackoff: time.Hour},
	})
	dev.FailTransient(storage.OpWrite, 1, 1000)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Checkpoint(ctx, BytesSource(payload(1, 1000)))
	if err == nil {
		t.Fatal("checkpoint succeeded through an hour-long backoff?")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	dev.Clear()
	// Nothing was ever published, so every slot must be back in the queue.
	if free := c.FreeSlots(); free != c.TotalSlots() {
		t.Fatalf("slot leaked on cancellation: free = %d, want %d", free, c.TotalSlots())
	}
}

// Corrupt payloads classify as such so callers can tell "retry later" from
// "restore from an older checkpoint".
func TestCorruptPayloadClassified(t *testing.T) {
	ram := storage.NewRAM(DeviceBytes(1, 4096))
	c, err := New(ram, Config{Concurrent: 1, SlotBytes: 4096, VerifyPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(5, 2000))); err != nil {
		t.Fatal(err)
	}
	// Flip payload bytes behind the engine's back.
	if err := ram.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, payloadBase(c.sb, c.checkAddr.Load().slot)+100); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.ReadLatest(make([]byte, 2000))
	if err == nil {
		t.Fatal("corruption not detected")
	}
	if !storage.IsCorrupt(err) {
		t.Fatalf("corruption misclassified: %v (class %v)", err, storage.Classify(err))
	}
}

// The buffer-too-small condition is a typed sentinel so LoadLatest-style
// callers can re-size and retry instead of surfacing a race to the user.
func TestReadLatestBufferTooSmallSentinel(t *testing.T) {
	c, _, _ := retryEngine(t, Config{Concurrent: 1, SlotBytes: 4096})
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 3000))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadLatest(make([]byte, 10)); !errors.Is(err, ErrBufferTooSmall) {
		t.Fatalf("err = %v, want ErrBufferTooSmall", err)
	}
}
