package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"pccheck/internal/storage"
)

func ramEngine(t *testing.T, cfg Config) *Checkpointer {
	t.Helper()
	dev := storage.NewRAM(DeviceBytes(cfg.Concurrent, cfg.SlotBytes))
	c, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func payload(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestConfigValidation(t *testing.T) {
	dev := storage.NewRAM(1 << 20)
	if _, err := New(dev, Config{Concurrent: 0, SlotBytes: 100}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := New(dev, Config{Concurrent: 1, SlotBytes: 0}); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := New(dev, Config{Concurrent: 100, SlotBytes: 1 << 20}); err == nil {
		t.Fatal("undersized device accepted")
	}
}

func TestCheckpointReadLatestRoundTrip(t *testing.T) {
	c := ramEngine(t, Config{Concurrent: 2, SlotBytes: 4096, Writers: 2, VerifyPayload: true})
	want := payload(1, 3000)
	counter, err := c.Checkpoint(context.Background(), BytesSource(want))
	if err != nil {
		t.Fatal(err)
	}
	if counter != 1 {
		t.Fatalf("first counter = %d, want 1", counter)
	}
	got := make([]byte, 4096)
	gotCounter, size, err := c.ReadLatest(got)
	if err != nil {
		t.Fatal(err)
	}
	if gotCounter != 1 || size != 3000 {
		t.Fatalf("ReadLatest meta = %d/%d", gotCounter, size)
	}
	if !bytes.Equal(got[:size], want) {
		t.Fatal("payload mismatch")
	}
}

func TestSequentialCheckpointsAdvance(t *testing.T) {
	c := ramEngine(t, Config{Concurrent: 1, SlotBytes: 1024, VerifyPayload: true})
	for i := 1; i <= 10; i++ {
		want := payload(int64(i), 512+i)
		counter, err := c.Checkpoint(context.Background(), BytesSource(want))
		if err != nil {
			t.Fatal(err)
		}
		if counter != uint64(i) {
			t.Fatalf("counter = %d, want %d", counter, i)
		}
		got := make([]byte, 1024)
		gc, size, err := c.ReadLatest(got)
		if err != nil {
			t.Fatal(err)
		}
		if gc != uint64(i) || !bytes.Equal(got[:size], want) {
			t.Fatalf("latest after %d checkpoints is %d", i, gc)
		}
	}
	st := c.Stats()
	if st.Checkpoints != 10 || st.Obsolete != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTooLarge(t *testing.T) {
	c := ramEngine(t, Config{Concurrent: 1, SlotBytes: 100})
	if _, err := c.Checkpoint(context.Background(), BytesSource(make([]byte, 101))); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	c := ramEngine(t, Config{Concurrent: 1, SlotBytes: 100, VerifyPayload: true})
	if _, err := c.Checkpoint(context.Background(), BytesSource(nil)); err != nil {
		t.Fatalf("empty checkpoint: %v", err)
	}
	got := make([]byte, 0)
	counter, size, err := c.ReadLatest(got)
	if err != nil || counter != 1 || size != 0 {
		t.Fatalf("empty latest: %d/%d/%v", counter, size, err)
	}
}

func TestClosedEngine(t *testing.T) {
	c := ramEngine(t, Config{Concurrent: 1, SlotBytes: 100})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource([]byte("x"))); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestNoCheckpointYet(t *testing.T) {
	c := ramEngine(t, Config{Concurrent: 1, SlotBytes: 100})
	if _, _, ok := c.Latest(); ok {
		t.Fatal("Latest on empty engine reported ok")
	}
	if _, _, err := c.ReadLatest(make([]byte, 100)); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestPipelinedChunks(t *testing.T) {
	// 64 KB payload through 4 KB chunks with a 16 KB DRAM budget: the
	// producer must block on the pool and recycle chunks.
	c := ramEngine(t, Config{
		Concurrent: 2, SlotBytes: 64 << 10,
		Writers: 3, ChunkBytes: 4 << 10, DRAMBudget: 16 << 10,
		VerifyPayload: true,
	})
	want := payload(7, 64<<10)
	if _, err := c.Checkpoint(context.Background(), BytesSource(want)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64<<10)
	if _, _, err := c.ReadLatest(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("pipelined payload mismatch")
	}
}

func TestUnalignedPayloadAndChunks(t *testing.T) {
	// Payload not a multiple of the chunk size exercises the short final
	// chunk.
	c := ramEngine(t, Config{
		Concurrent: 1, SlotBytes: 10_000,
		Writers: 2, ChunkBytes: 3000, DRAMBudget: 6000,
		VerifyPayload: true,
	})
	want := payload(9, 9999)
	if _, err := c.Checkpoint(context.Background(), BytesSource(want)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 9999)
	if _, _, err := c.ReadLatest(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("unaligned payload mismatch")
	}
}

// TestConcurrentCheckpointers is the core concurrency test: many goroutines
// checkpoint simultaneously; afterwards the latest checkpoint must be intact
// and every slot accounted for.
func TestConcurrentCheckpointers(t *testing.T) {
	const workers, rounds = 8, 30
	c := ramEngine(t, Config{Concurrent: 3, SlotBytes: 8192, Writers: 2, VerifyPayload: true})
	payloads := make(map[uint64][]byte)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				p := payload(int64(w*1000+r), 4096)
				// Stamp the payload with something recoverable for checking.
				counter, err := c.Checkpoint(context.Background(), BytesSource(p))
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				payloads[counter] = p
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if st.Checkpoints+st.Obsolete != workers*rounds {
		t.Fatalf("checkpoints %d + obsolete %d != %d", st.Checkpoints, st.Obsolete, workers*rounds)
	}
	got := make([]byte, 8192)
	counter, size, err := c.ReadLatest(got)
	if err != nil {
		t.Fatal(err)
	}
	want, ok := payloads[counter]
	if !ok {
		t.Fatalf("latest counter %d unknown", counter)
	}
	if !bytes.Equal(got[:size], want) {
		t.Fatalf("latest checkpoint %d corrupted", counter)
	}
	// All slots except the published one must be back in the free queue.
	if free := c.freeSpace.Len(); free != c.sb.slots-1 {
		t.Fatalf("free slots = %d, want %d", free, c.sb.slots-1)
	}
}

// Monotonicity: the published counter never decreases, even under heavy
// concurrency.
func TestPublishedCounterMonotone(t *testing.T) {
	c := ramEngine(t, Config{Concurrent: 4, SlotBytes: 1024, Writers: 1})
	stop := make(chan struct{})
	var maxSeen uint64
	var monErr error
	var monWg sync.WaitGroup
	monWg.Add(1)
	go func() {
		defer monWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if counter, _, ok := c.Latest(); ok {
				if counter < maxSeen {
					monErr = fmt.Errorf("counter went backwards: %d after %d", counter, maxSeen)
					return
				}
				maxSeen = counter
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				if _, err := c.Checkpoint(context.Background(), BytesSource(payload(int64(w), 512))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	monWg.Wait()
	if monErr != nil {
		t.Fatal(monErr)
	}
}

func TestOpenRecoversLatest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dev")
	cfg := Config{Concurrent: 2, SlotBytes: 4096, Writers: 2, VerifyPayload: true}
	dev, err := storage.OpenSSD(path, DeviceBytes(cfg.Concurrent, cfg.SlotBytes))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	var lastCounter uint64
	for i := 0; i < 5; i++ {
		want = payload(int64(i), 2000)
		lastCounter, err = c.Checkpoint(context.Background(), BytesSource(want))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	// "Process restart": reopen the device file and the engine.
	dev2, err := storage.ReopenSSD(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	c2, err := Open(dev2, Config{Writers: 2})
	if err != nil {
		t.Fatal(err)
	}
	counter, size, ok := c2.Latest()
	if !ok || counter != lastCounter {
		t.Fatalf("recovered counter %d, want %d", counter, lastCounter)
	}
	got := make([]byte, size)
	if _, _, err := c2.ReadLatest(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered payload mismatch")
	}
	// The engine must continue the counter sequence…
	next, err := c2.Checkpoint(context.Background(), BytesSource(payload(99, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if next != lastCounter+1 {
		t.Fatalf("next counter = %d, want %d", next, lastCounter+1)
	}
	// …and the standalone Recover must now see the new checkpoint.
	p, rc, err := Recover(dev2)
	if err != nil {
		t.Fatal(err)
	}
	if rc != next || int64(len(p)) != 100 {
		t.Fatalf("Recover got counter %d, %d bytes", rc, len(p))
	}
}

func TestOpenUnformatted(t *testing.T) {
	dev := storage.NewRAM(1 << 16)
	if _, err := Open(dev, Config{}); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("err = %v, want ErrNotFormatted", err)
	}
	if _, _, err := Recover(dev); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("Recover err = %v, want ErrNotFormatted", err)
	}
}

func TestRecoverEmptyFormattedDevice(t *testing.T) {
	dev := storage.NewRAM(DeviceBytes(1, 1024))
	if _, err := New(dev, Config{Concurrent: 1, SlotBytes: 1024}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dev); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestReformatDestroysOldCheckpoints(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 1024}
	dev := storage.NewRAM(DeviceBytes(cfg.Concurrent, cfg.SlotBytes))
	c, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 100))); err != nil {
		t.Fatal(err)
	}
	if _, err := New(dev, cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dev); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("reformat left a recoverable checkpoint: %v", err)
	}
}

func TestContextCancelDuringSlotWait(t *testing.T) {
	c := ramEngine(t, Config{Concurrent: 1, SlotBytes: 1024})
	// Drain both slots so the next checkpoint must wait.
	s1, _ := c.freeSpace.Deq()
	s2, _ := c.freeSpace.Deq()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Checkpoint(ctx, BytesSource(payload(1, 100))); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	c.freeSpace.Enq(s1)
	c.freeSpace.Enq(s2)
}

func TestDeviceBytesFootprint(t *testing.T) {
	// Table 1: PCcheck needs (N+1)·m storage (plus fixed headers).
	n, m := 3, int64(1<<20)
	got := DeviceBytes(n, m)
	min := int64(n+1) * m
	if got < min || got > min+int64(n+2)*4096 {
		t.Fatalf("DeviceBytes(%d, %d) = %d, want ≈ %d", n, m, got, min)
	}
}

func TestSourceErrorsPropagate(t *testing.T) {
	c := ramEngine(t, Config{Concurrent: 1, SlotBytes: 1024})
	src := failingSource{size: 512}
	if _, err := c.Checkpoint(context.Background(), src); err == nil {
		t.Fatal("failing source accepted")
	}
	// The slot must have been returned: next checkpoint succeeds.
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 100))); err != nil {
		t.Fatal(err)
	}
}

type failingSource struct{ size int64 }

func (s failingSource) Size() int64 { return s.size }
func (s failingSource) ReadInto(p []byte, off int64) error {
	return errors.New("injected source failure")
}

func TestReadVersionRetained(t *testing.T) {
	// With N=3 (4 slots), the last few checkpoints stay resident.
	c := ramEngine(t, Config{Concurrent: 3, SlotBytes: 1024, VerifyPayload: true})
	var wants [][]byte
	for i := 1; i <= 4; i++ {
		p := payload(int64(i), 700+i)
		wants = append(wants, p)
		if _, err := c.Checkpoint(context.Background(), BytesSource(p)); err != nil {
			t.Fatal(err)
		}
	}
	// All four published sequentially; 4 slots hold counters 1..4.
	for counter := uint64(1); counter <= 4; counter++ {
		got, err := c.ReadVersion(counter)
		if err != nil {
			t.Fatalf("version %d: %v", counter, err)
		}
		if !bytes.Equal(got, wants[counter-1]) {
			t.Fatalf("version %d payload mismatch", counter)
		}
	}
	// A fifth checkpoint recycles checkpoint 1's slot.
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(5, 700))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadVersion(1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("overwritten version still readable: %v", err)
	}
	if _, err := c.ReadVersion(99); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("phantom version: %v", err)
	}
}

func TestRecoverVersionStandalone(t *testing.T) {
	dev := storage.NewRAM(DeviceBytes(2, 512))
	c, err := New(dev, Config{Concurrent: 2, SlotBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	want := payload(3, 400)
	if _, err := c.Checkpoint(context.Background(), BytesSource(want)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(4, 400))); err != nil {
		t.Fatal(err)
	}
	got, err := RecoverVersion(dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("RecoverVersion payload mismatch")
	}
	if _, err := RecoverVersion(storage.NewRAM(1024), 1); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("unformatted device: %v", err)
	}
}

// Property: for any small configuration and any sequence of payload sizes,
// sequential checkpoints always leave the engine recoverable at exactly the
// last payload.
func TestQuickSequentialCheckpointRecovery(t *testing.T) {
	f := func(nRaw, writersRaw uint8, sizesRaw []uint16, verify bool) bool {
		n := int(nRaw%3) + 1
		writers := int(writersRaw%4) + 1
		if len(sizesRaw) == 0 {
			return true
		}
		if len(sizesRaw) > 8 {
			sizesRaw = sizesRaw[:8]
		}
		const slotBytes = 4096
		dev := storage.NewRAM(DeviceBytes(n, slotBytes))
		c, err := New(dev, Config{
			Concurrent: n, SlotBytes: slotBytes,
			Writers: writers, ChunkBytes: 1024,
			VerifyPayload: verify,
		})
		if err != nil {
			return false
		}
		var last []byte
		var lastCounter uint64
		for i, raw := range sizesRaw {
			size := int(raw) % (slotBytes + 1)
			p := payload(int64(i), size)
			counter, err := c.Checkpoint(context.Background(), BytesSource(p))
			if err != nil {
				return false
			}
			last = p
			lastCounter = counter
		}
		got, counter, err := Recover(dev)
		if err != nil {
			return false
		}
		return counter == lastCounter && bytes.Equal(got, last)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigAccessorAndPacing(t *testing.T) {
	c := ramEngine(t, Config{Concurrent: 2, SlotBytes: 1024, Writers: 3})
	cfg := c.Config()
	if cfg.Concurrent != 2 || cfg.Writers != 3 || cfg.SlotBytes != 1024 {
		t.Fatalf("Config() = %+v", cfg)
	}
	// Runtime pacing applies to subsequent checkpoints.
	c.SetPerWriterBW(float64(64 << 20)) // 64 MB/s: 512 KB ⇒ ~8 ms per writer share
	p := payload(1, 1024)
	if _, err := c.Checkpoint(context.Background(), BytesSource(p)); err != nil {
		t.Fatal(err)
	}
	c.SetPerWriterBW(-1) // negative clamps to unpaced
	if _, err := c.Checkpoint(context.Background(), BytesSource(p)); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSuperblockRejects(t *testing.T) {
	// Valid magic + CRC but implausible geometry.
	sb := superblock{slots: 1, slotBytes: 64} // slots < 2
	if _, err := decodeSuperblock(sb.encode()); err == nil {
		t.Fatal("slots=1 accepted")
	}
	sb2 := superblock{slots: 3, slotBytes: 0}
	if _, err := decodeSuperblock(sb2.encode()); err == nil {
		t.Fatal("slotBytes=0 accepted")
	}
	// Wrong version.
	buf := superblock{slots: 2, slotBytes: 64}.encode()
	buf[4] = 99
	// CRC covers the version, so this reads as a checksum failure.
	if _, err := decodeSuperblock(buf); err == nil {
		t.Fatal("tampered version accepted")
	}
	if _, err := decodeSuperblock(make([]byte, 10)); err == nil {
		t.Fatal("short superblock accepted")
	}
}

func TestDecodeRecordRejects(t *testing.T) {
	if _, ok := decodeRecord(make([]byte, 4)); ok {
		t.Fatal("short record accepted")
	}
	// Counter 0 means "never written" even if the CRC matches.
	zero := encodeRecord(checkMeta{counter: 0, slot: 1, size: 10})
	if _, ok := decodeRecord(zero); ok {
		t.Fatal("counter-0 record accepted")
	}
}

func TestValidateSlotRejects(t *testing.T) {
	dev := storage.NewRAM(DeviceBytes(1, 256))
	c, err := New(dev, Config{Concurrent: 1, SlotBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 100))); err != nil {
		t.Fatal(err)
	}
	sb := superblock{slots: 2, slotBytes: 256}
	if _, err := validateSlot(dev, sb, checkMeta{slot: 5, counter: 1, size: 100}); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, err := validateSlot(dev, sb, checkMeta{slot: 0, counter: 1, size: 999}); err == nil {
		t.Fatal("oversized record accepted")
	}
	if _, err := validateSlot(dev, sb, checkMeta{slot: 0, counter: 77, size: 100}); err == nil {
		t.Fatal("mismatched counter accepted")
	}
}

func TestBytesSourceBounds(t *testing.T) {
	src := BytesSource([]byte("abcdef"))
	if err := src.ReadInto(make([]byte, 4), 4); err == nil {
		t.Fatal("read past end accepted")
	}
	if err := src.ReadInto(make([]byte, 2), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestReadLatestSmallBuffer(t *testing.T) {
	c := ramEngine(t, Config{Concurrent: 1, SlotBytes: 1024})
	if _, err := c.Checkpoint(context.Background(), BytesSource(payload(1, 500))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadLatest(make([]byte, 100)); err == nil {
		t.Fatal("undersized buffer accepted")
	}
}
