// Delta checkpointing (ROADMAP: "incremental + delta checkpoints").
//
// Most of a training checkpoint is unchanged between adjacent iterations
// (GoCkpt, FastPersist make the same observation): the bytes pushed to the
// device per save, not the snapshot, gate the achievable frequency f* in
// the §3.4 model. When Config.DeltaKeyframe is set, the engine divides the
// payload into fixed-size chunks and persists only the chunks that changed
// since the previous checkpoint, as a self-describing delta record:
//
//	0   magic "PCDL" u32
//	4   version u32
//	8   baseCounter u64  — chain predecessor (must match the slot header)
//	16  fullSize u64     — logical payload length after applying the chain
//	24  granularity u32  — chunk size this record was diffed at
//	28  nchunk u32       — ceil(fullSize/granularity)
//	32  ndirty u32       — population count of the bitmap
//	36  hdrCRC u32       — CRC32 over bytes [0,36) + the bitmap
//	40  bitmap, ceil(nchunk/8) bytes, chunk i at byte i/8 bit i%8
//	..  dirty chunk payloads, ascending chunk index, each
//	    min(granularity, fullSize − i·granularity) bytes
//
// The header CRC is always present (independent of Config.VerifyPayload):
// a delta record that cannot be decoded poisons every later link of its
// chain, so decode failures must be detectable, not just torn-payload
// detectable. Chunk data is additionally covered by the slot payload CRC
// when VerifyPayload is on, and by the protocol ordering (payload persists
// before the header, the header before the pointer record) otherwise.
//
// Every K-th save is forced to be a full keyframe, bounding recovery to
// one keyframe read plus at most K delta applications, and bounding the
// pinned slot set to K+1.
package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"
	"sync"
	"time"

	"pccheck/internal/obs"
)

const (
	deltaMagic   = 0x4c444350 // "PCDL" little-endian
	deltaVersion = 1
	deltaHdrSize = 40

	// deltaMaxGran bounds the stored granularity field so a corrupt record
	// cannot make decode allocate absurd chunk geometry.
	deltaMaxGran = 1 << 30
)

// deltaGranularity picks the diff chunk size for a slot capacity: about
// 1/1024th of the slot, rounded up to a 64-byte multiple and clamped to
// [64 B, 64 KiB]. Small enough that scattered sparse updates (embedding
// rows, adapter blocks) don't dirty megabyte chunks, large enough that the
// bitmap and per-chunk hash state stay negligible (≤ 1024 chunks ⇒ 128 B
// bitmap, 8 KiB of hashes).
func deltaGranularity(slotBytes int64) int {
	g := slotBytes / 1024
	if rem := g % 64; rem != 0 {
		g += 64 - rem
	}
	if g < 64 {
		g = 64
	}
	if g > 64<<10 {
		g = 64 << 10
	}
	return int(g)
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a int64, b int) int {
	return int((a + int64(b) - 1) / int64(b))
}

// chunkHashes returns the FNV-1a 64 hash of each granularity-sized chunk
// of p (the last chunk may be short). FNV is not collision-proof; a silent
// collision would drop a changed chunk from a delta. The crash sweep's
// byte-equality oracle bounds that risk in testing, and trainers that
// cannot tolerate it feed the DirtyTracker instead (explicit marks never
// consult hashes).
func chunkHashes(p []byte, gran int) []uint64 {
	n := ceilDiv(int64(len(p)), gran)
	hs := make([]uint64, n)
	for i := 0; i < n; i++ {
		lo := i * gran
		hi := lo + gran
		if hi > len(p) {
			hi = len(p)
		}
		hs[i] = fnv64a(p[lo:hi])
	}
	return hs
}

func fnv64a(p []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// DirtyTracker accumulates the byte ranges a trainer touched since the
// last checkpoint, so delta encoding can skip hashing entirely. The
// checkpointer consumes the accumulated marks at each save.
//
// Coherence contract: marks are trusted. Between two Checkpoint calls the
// trainer must MarkRange every byte it mutated, and must feed marks from
// the same serialization domain that mutates the state and captures the
// snapshot (e.g. the training goroutine marking before it hands the
// snapshot to Save). Saves against a fed tracker must themselves be
// serialized by the caller: marks taken by save n describe the diff from
// save n−1, which is only true when saves complete in mutation order. An
// unmarked mutated range silently disappears from the delta; an over-wide
// or stale mark merely persists extra chunks. When in doubt, don't feed
// the tracker — the engine then falls back to content hashes, which need
// no contract. Size changes need no marks either way: any save whose
// payload length differs from the previous one has its tail re-diffed
// unconditionally.
type DirtyTracker struct {
	mu     sync.Mutex
	ranges [][2]int64 // {offset, length}, unmerged
	all    bool
	fed    bool
}

// trackerMaxRanges caps the unmerged mark list; past it the tracker
// degrades to MarkAll (correct, just no longer sparse).
const trackerMaxRanges = 4096

// MarkRange records that [off, off+n) was mutated. Out-of-payload offsets
// are harmless (clamped at encode time).
func (t *DirtyTracker) MarkRange(off, n int64) {
	if n <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fed = true
	if t.all {
		return
	}
	if len(t.ranges) >= trackerMaxRanges {
		t.all = true
		t.ranges = nil
		return
	}
	t.ranges = append(t.ranges, [2]int64{off, n})
}

// MarkAll records that the whole payload may have changed — the next save
// diffs nothing and persists a keyframe-equivalent delta or a keyframe.
func (t *DirtyTracker) MarkAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fed = true
	t.all = true
	t.ranges = nil
}

// take drains the accumulated marks. fed reports whether the trainer said
// anything at all since the last take — false means "fall back to hashes".
func (t *DirtyTracker) take() (ranges [][2]int64, all, fed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ranges, all, fed = t.ranges, t.all, t.fed
	t.ranges, t.all, t.fed = nil, false, false
	return ranges, all, fed
}

// restore re-merges marks a failed save took, so the retry still knows
// what was dirty. Marks fed concurrently since the take are kept too.
func (t *DirtyTracker) restore(ranges [][2]int64, all, fed bool) {
	if !fed {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fed = true
	if all || t.all || len(t.ranges)+len(ranges) > trackerMaxRanges {
		t.all = true
		t.ranges = nil
		return
	}
	t.ranges = append(t.ranges, ranges...)
}

// dirtySet is one save's diff decision: which chunks to persist and the
// refreshed per-chunk hash state.
type dirtySet struct {
	dirty  []bool
	hashes []uint64
	ndirty int
}

// computeDirty decides which chunks of buf changed since the previous
// checkpoint (whose size was lastSize and whose chunk hashes are
// oldHashes). With a fed tracker the marks are trusted and only marked
// chunks are rehashed; otherwise every chunk is hashed and diffed.
//
// Boundary rule: when the payload length changed, every chunk from
// min(size, lastSize)/gran onward is dirty regardless of marks or hashes.
// Growth appends bytes no mark covers (the old image simply ended), and
// shrinkage re-shapes the final partial chunk; both tails must travel with
// the delta for apply to reconstruct the exact new length.
func computeDirty(buf []byte, gran int, lastSize int64, oldHashes []uint64, marks [][2]int64, all, fed bool) dirtySet {
	size := int64(len(buf))
	nchunk := ceilDiv(size, gran)
	dirty := make([]bool, nchunk)

	if size != lastSize {
		from := min(size, lastSize) / int64(gran)
		for i := int(from); i < nchunk; i++ {
			dirty[i] = true
		}
	}

	var hashes []uint64
	if fed && !all {
		for _, r := range marks {
			off, n := r[0], r[1]
			if off < 0 {
				n += off
				off = 0
			}
			if n <= 0 || off >= size {
				continue
			}
			end := off + n
			if end > size {
				end = size
			}
			for i := int(off / int64(gran)); i < nchunk && int64(i)*int64(gran) < end; i++ {
				dirty[i] = true
			}
		}
		// Refresh hash state only for the chunks being persisted; clean
		// chunks keep their prior hashes (trusted-marks mode is documented
		// as such on DirtyTracker).
		hashes = make([]uint64, nchunk)
		copy(hashes, oldHashes)
		for i, d := range dirty {
			if d {
				lo := i * gran
				hi := min(lo+gran, int(size))
				hashes[i] = fnv64a(buf[lo:hi])
			}
		}
	} else {
		hashes = chunkHashes(buf, gran)
		for i := range dirty {
			if all || i >= len(oldHashes) || hashes[i] != oldHashes[i] {
				dirty[i] = true
			}
		}
	}

	nd := 0
	for _, d := range dirty {
		if d {
			nd++
		}
	}
	return dirtySet{dirty: dirty, hashes: hashes, ndirty: nd}
}

// encodeDelta serializes a delta record for payload against the
// checkpoint baseCounter.
func encodeDelta(payload []byte, baseCounter uint64, gran int, ds dirtySet) []byte {
	nchunk := len(ds.dirty)
	bmLen := (nchunk + 7) / 8
	total := deltaHdrSize + bmLen
	for i, d := range ds.dirty {
		if d {
			total += chunkLen(int64(len(payload)), gran, i)
		}
	}
	rec := make([]byte, total)
	binary.LittleEndian.PutUint32(rec[0:], deltaMagic)
	binary.LittleEndian.PutUint32(rec[4:], deltaVersion)
	binary.LittleEndian.PutUint64(rec[8:], baseCounter)
	binary.LittleEndian.PutUint64(rec[16:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(rec[24:], uint32(gran))
	binary.LittleEndian.PutUint32(rec[28:], uint32(nchunk))
	binary.LittleEndian.PutUint32(rec[32:], uint32(ds.ndirty))
	bm := rec[deltaHdrSize : deltaHdrSize+bmLen]
	pos := deltaHdrSize + bmLen
	for i, d := range ds.dirty {
		if !d {
			continue
		}
		bm[i/8] |= 1 << (i % 8)
		lo := i * gran
		pos += copy(rec[pos:], payload[lo:min(lo+gran, len(payload))])
	}
	binary.LittleEndian.PutUint32(rec[36:], deltaCRC(rec))
	return rec
}

// deltaCRC covers the header (minus the CRC field itself) and the bitmap.
func deltaCRC(rec []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write(rec[:36])
	h.Write(rec[deltaHdrSize : deltaHdrSize+bitmapLen(rec)])
	return h.Sum32()
}

func bitmapLen(rec []byte) int {
	return (int(binary.LittleEndian.Uint32(rec[28:])) + 7) / 8
}

// chunkLen is the byte length of chunk i of a fullSize-byte payload.
func chunkLen(fullSize int64, gran, i int) int {
	l := fullSize - int64(i)*int64(gran)
	if l > int64(gran) {
		l = int64(gran)
	}
	if l < 0 {
		l = 0
	}
	return int(l)
}

// deltaRecord is a decoded, validated delta record. chunks[j] is the
// payload of the j-th set bit of the bitmap (ascending chunk index).
type deltaRecord struct {
	base     uint64
	fullSize int64
	gran     int
	nchunk   int
	bitmap   []byte
	chunks   [][]byte
}

// dirtyAt reports whether chunk i is present in the record.
func (d deltaRecord) dirtyAt(i int) bool {
	return d.bitmap[i/8]&(1<<(i%8)) != 0
}

// decodeDelta parses and fully validates a delta record; every length is
// cross-checked before any slice is taken, so arbitrary input cannot
// panic (FuzzDeltaDecode holds it to that).
func decodeDelta(rec []byte) (deltaRecord, error) {
	if len(rec) < deltaHdrSize {
		return deltaRecord{}, fmt.Errorf("core: delta record truncated: %d bytes", len(rec))
	}
	if m := binary.LittleEndian.Uint32(rec[0:]); m != deltaMagic {
		return deltaRecord{}, fmt.Errorf("core: bad delta magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(rec[4:]); v != deltaVersion {
		return deltaRecord{}, fmt.Errorf("core: unsupported delta version %d", v)
	}
	d := deltaRecord{
		base:     binary.LittleEndian.Uint64(rec[8:]),
		fullSize: int64(binary.LittleEndian.Uint64(rec[16:])),
		gran:     int(binary.LittleEndian.Uint32(rec[24:])),
		nchunk:   int(binary.LittleEndian.Uint32(rec[28:])),
	}
	ndirty := int(binary.LittleEndian.Uint32(rec[32:]))
	if d.gran < 1 || d.gran > deltaMaxGran {
		return deltaRecord{}, fmt.Errorf("core: implausible delta granularity %d", d.gran)
	}
	if d.fullSize < 0 || d.fullSize > math.MaxInt64-int64(d.gran) {
		return deltaRecord{}, fmt.Errorf("core: implausible delta size %d", d.fullSize)
	}
	if d.nchunk != ceilDiv(d.fullSize, d.gran) {
		return deltaRecord{}, fmt.Errorf("core: delta chunk count %d does not cover %d bytes at granularity %d", d.nchunk, d.fullSize, d.gran)
	}
	bmLen := (d.nchunk + 7) / 8
	if len(rec) < deltaHdrSize+bmLen {
		return deltaRecord{}, fmt.Errorf("core: delta bitmap truncated")
	}
	d.bitmap = rec[deltaHdrSize : deltaHdrSize+bmLen]
	if got, want := binary.LittleEndian.Uint32(rec[36:]), deltaCRC(rec); got != want {
		return deltaRecord{}, fmt.Errorf("core: delta header checksum mismatch")
	}
	pop := 0
	for _, b := range d.bitmap {
		pop += bits.OnesCount8(b)
	}
	if pop != ndirty {
		return deltaRecord{}, fmt.Errorf("core: delta bitmap population %d != recorded %d", pop, ndirty)
	}
	pos := deltaHdrSize + bmLen
	d.chunks = make([][]byte, 0, ndirty)
	for i := 0; i < d.nchunk; i++ {
		if !d.dirtyAt(i) {
			continue
		}
		l := chunkLen(d.fullSize, d.gran, i)
		if pos+l > len(rec) {
			return deltaRecord{}, fmt.Errorf("core: delta chunk %d truncated", i)
		}
		d.chunks = append(d.chunks, rec[pos:pos+l])
		pos += l
	}
	if pos != len(rec) {
		return deltaRecord{}, fmt.Errorf("core: delta record has %d trailing bytes", len(rec)-pos)
	}
	return d, nil
}

// DirtyTracker returns the engine's dirty-range tracker, or nil when the
// engine is not in delta mode. Feeding it is optional (see its contract);
// an unfed tracker leaves the engine on content-hash fallback.
func (c *Checkpointer) DirtyTracker() *DirtyTracker { return c.tracker }

// checkpointDelta is the delta-mode save path. Saves are serialized under
// deltaMu — each one is diffed against the previous — so the CAS machinery
// of the concurrent path collapses to a plain publish: the tip only ever
// moves forward, one save at a time. Concurrent Checkpoint callers queue
// on the mutex (the paper's slot-wait, one level up).
func (c *Checkpointer) checkpointDelta(ctx context.Context, src Source) (uint64, error) {
	c.deltaMu.Lock()
	defer c.deltaMu.Unlock()

	start := time.Now()
	obsStart := c.obsNow()
	size := src.Size()

	// Delta mode stages the whole payload in DRAM (bounded by SlotBytes):
	// diffing and encoding need random access to it.
	buf := make([]byte, size)
	if size > 0 {
		if err := src.ReadInto(buf, 0); err != nil {
			c.stats.FailedSaves.Add(1)
			c.instant(obs.PhaseSaveFailed, 0, -1, 0, 0)
			return 0, err
		}
	}
	marks, all, fed := c.tracker.take()
	restoreMarks := func() { c.tracker.restore(marks, all, fed) }

	counter := c.gCounter.Add(1)
	gran := deltaGranularity(c.sb.slotBytes)

	// Decide delta vs keyframe. A save is a delta candidate when there is
	// hash state to diff against, the chain has room under K, and the
	// DeltaEvery cadence selects it; it still falls back to a keyframe when
	// the encoded record wouldn't actually save bytes (e.g. a dense update,
	// or a payload so small the record overhead dominates).
	c.saveSeq++
	kind := uint8(slotKindFull)
	var (
		stored []byte // the bytes persisted to the slot
		base   uint64
		hashes []uint64
	)
	candidate := c.hashes != nil && c.deltasSince < c.cfg.DeltaKeyframe &&
		(c.cfg.DeltaEvery <= 1 || c.saveSeq%uint64(c.cfg.DeltaEvery) == 0)
	encStart := c.obsNow()
	if candidate {
		ds := computeDirty(buf, gran, c.lastSize, c.hashes, marks, all, fed)
		hashes = ds.hashes
		tip := c.chain[len(c.chain)-1]
		rec := encodeDelta(buf, tip.counter, gran, ds)
		if int64(len(rec)) < size && int64(len(rec)) <= c.sb.slotBytes {
			stored, kind, base = rec, slotKindDelta, tip.counter
		}
	} else {
		hashes = chunkHashes(buf, gran)
	}
	if kind == slotKindDelta {
		c.span(obs.PhaseDeltaEncode, encStart, counter, -1, int64(len(stored)), size)
	} else {
		stored = buf
	}

	slotWaitStart := c.obsNow()
	slot, waited, err := c.acquireSlot(ctx)
	if err != nil {
		restoreMarks()
		c.stats.FailedSaves.Add(1)
		c.instant(obs.PhaseSaveFailed, counter, -1, 0, 0)
		return 0, err
	}
	if waited {
		c.stats.SlotWaits.Add(1)
		if c.dec != nil && slotWaitStart != 0 {
			c.recordSlotWait(counter, time.Duration(time.Now().UnixNano()-slotWaitStart))
		}
	}
	var didWait int64
	if waited {
		didWait = 1
	}
	c.span(obs.PhaseSlotWait, slotWaitStart, counter, slot, 0, didWait)
	c.slotSeq[slot].Add(1) // odd: slot contents unstable

	payloadCRC, err := c.writePayload(ctx, slot, BytesSource(stored), counter)
	if err != nil {
		restoreMarks()
		c.failSlot(slot, counter)
		return 0, err
	}
	hdrStart := c.obsNow()
	hdr := slotHeader{
		counter: counter, size: int64(len(stored)), payloadCRC: payloadCRC,
		hasCRC: c.cfg.VerifyPayload, epoch: c.sb.epoch,
		kind: kind, base: base, fullSize: size,
	}
	if err := c.retryIO(ctx, func() error {
		return c.dev.Persist(encodeSlotHeader(hdr), slotBase(c.sb, slot))
	}); err != nil {
		restoreMarks()
		c.failSlot(slot, counter)
		return 0, err
	}
	c.span(obs.PhaseHeader, hdrStart, counter, slot, slotHeaderSize, 0)
	c.slotSeq[slot].Add(1) // even: slot stable until recycled

	// Publish. Serialized saves mean no CAS loop and no obsolete outcome:
	// the tip is ours by construction.
	cur := &checkMeta{slot: slot, counter: counter, size: int64(len(stored)), kind: kind, base: base, fullSize: size}
	oldChain := c.chain
	c.checkAddr.Store(cur)
	if kind == slotKindDelta {
		c.chain = append(c.chain, *cur)
		c.deltasSince++
	} else {
		c.chain = []checkMeta{*cur}
		c.deltasSince = 0
	}
	// The tip moved, so the diff state follows it even if the pointer
	// record below fails — the next save diffs against what is in the
	// slots, not against what is durably pointed at.
	c.hashes = hashes
	c.lastSize = size

	barrierStart := c.obsNow()
	rerr := c.persistRecord(ctx, *cur)
	c.span(obs.PhaseBarrier, barrierStart, counter, slot, 0, 0)
	if kind == slotKindFull {
		// A keyframe supersedes the whole previous chain. If the record
		// failed, the durable pointer may still reference the old chain —
		// park its slots until a newer record lands (same invariant as the
		// concurrent path's deferFree).
		for _, m := range oldChain {
			if rerr != nil {
				c.deferFree(m.slot)
			} else {
				c.freeSpace.Enq(m.slot)
			}
		}
	}
	if rerr != nil {
		// Delta case: nothing is freed — the old record points into a chain
		// prefix whose slots are all still pinned in c.chain.
		c.stats.FailedSaves.Add(1)
		c.instant(obs.PhaseSaveFailed, counter, slot, 0, 0)
		return 0, rerr
	}

	c.stats.Checkpoints.Add(1)
	c.stats.BytesWritten.Add(size)
	c.stats.BytesPersisted.Add(int64(len(stored)))
	c.stats.PersistNanos.Add(int64(time.Since(start)))
	if kind == slotKindDelta {
		c.stats.DeltaSaves.Add(1)
	} else {
		c.stats.KeyframeSaves.Add(1)
		c.instant(obs.PhaseKeyframe, counter, slot, size, 0)
	}
	c.instant(obs.PhasePublish, counter, slot, int64(len(stored)), size)
	c.span(obs.PhaseSave, obsStart, counter, slot, int64(len(stored)), 0)
	return counter, nil
}

// readLatestDelta reconstructs the current chain into dst. deltaMu keeps
// the chain slots stable for the duration (no seqlock needed).
func (c *Checkpointer) readLatestDelta(dst []byte) (uint64, int64, error) {
	c.deltaMu.Lock()
	defer c.deltaMu.Unlock()
	m := c.checkAddr.Load()
	if m == nil {
		return 0, 0, ErrNoCheckpoint
	}
	if int64(len(dst)) < m.logicalSize() {
		return 0, 0, fmt.Errorf("%w: buffer %d < checkpoint %d", ErrBufferTooSmall, len(dst), m.logicalSize())
	}
	payload, err := reconstructPayload(c.dev, c.sb, c.chain)
	if err != nil {
		return 0, 0, err
	}
	copy(dst, payload)
	return m.counter, int64(len(payload)), nil
}

// applyDelta reconstructs the new payload from its predecessor and a
// decoded record. A clean (absent) chunk that extends past the base
// payload means the chain is inconsistent — the encoder's boundary rule
// always marks grown tails dirty.
func applyDelta(base []byte, d deltaRecord) ([]byte, error) {
	out := make([]byte, d.fullSize)
	copy(out, base)
	j := 0
	for i := 0; i < d.nchunk; i++ {
		lo := i * d.gran
		hi := lo + chunkLen(d.fullSize, d.gran, i)
		if d.dirtyAt(i) {
			copy(out[lo:hi], d.chunks[j])
			j++
		} else if hi > len(base) {
			return nil, fmt.Errorf("core: delta leaves chunk %d (bytes %d–%d) undefined: base is only %d bytes", i, lo, hi, len(base))
		}
	}
	return out, nil
}
