package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"pccheck/internal/storage"
)

// Recovery iterator (§4.2): "PCcheck loads the checkpoint that corresponds
// to CHECK_ADDR from persistent storage into GPU memory with the help of a
// persistent iterator, which logs data read locations."
//
// For multi-gigabyte checkpoints the restore itself takes long enough that a
// second failure during recovery is a real possibility (spot clusters
// preempt in bulk). The iterator reads the payload in chunks and durably
// logs its cursor in a reserved header cell, so a restarted recovery resumes
// where the previous one stopped instead of re-reading from byte zero.
//
// Cursor record layout at cursorOff (64 bytes reserved after record B):
//
//	counter  u64   the checkpoint being restored
//	position u64   bytes already delivered to the consumer
//	crc      u32   over the first 16 bytes
const cursorOff = 192

// RecoveryIterator streams one checkpoint's payload with durable progress.
type RecoveryIterator struct {
	dev       storage.Device
	sb        superblock
	meta      checkMeta
	size      int64  // logical payload length
	mem       []byte // reconstructed payload when the tip is a delta chain
	pos       int64
	chunk     int
	logEveryN int64
	sinceLog  int64
}

// cursor is the persisted progress record.
type cursor struct {
	counter  uint64
	position int64
}

func encodeCursor(c cursor) []byte {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf[0:], c.counter)
	binary.LittleEndian.PutUint64(buf[8:], uint64(c.position))
	binary.LittleEndian.PutUint32(buf[16:], crc32.ChecksumIEEE(buf[:16]))
	return buf
}

func decodeCursor(buf []byte) (cursor, bool) {
	if len(buf) < 24 {
		return cursor{}, false
	}
	if binary.LittleEndian.Uint32(buf[16:]) != crc32.ChecksumIEEE(buf[:16]) {
		return cursor{}, false
	}
	return cursor{
		counter:  binary.LittleEndian.Uint64(buf[0:]),
		position: int64(binary.LittleEndian.Uint64(buf[8:])),
	}, true
}

// NewRecoveryIterator opens an iterator over the latest persisted
// checkpoint on dev. chunkBytes sets the read granularity (default 1 MiB);
// the cursor persists every logEvery bytes delivered (default: every
// chunk). If a previous recovery of the same checkpoint left a cursor, the
// iterator resumes from it.
func NewRecoveryIterator(dev storage.Device, chunkBytes int, logEvery int64) (*RecoveryIterator, error) {
	head := make([]byte, 64)
	if err := dev.ReadAt(head, superOff); err != nil {
		return nil, err
	}
	sb, err := decodeSuperblock(head)
	if err != nil {
		return nil, err
	}
	meta, _, err := recoverPointer(dev, sb)
	if err != nil {
		return nil, err
	}
	if chunkBytes <= 0 {
		chunkBytes = 1 << 20
	}
	if logEvery <= 0 {
		logEvery = int64(chunkBytes)
	}
	it := &RecoveryIterator{
		dev:       dev,
		sb:        sb,
		meta:      *meta,
		size:      meta.logicalSize(),
		chunk:     chunkBytes,
		logEveryN: logEvery,
	}
	if meta.kind == slotKindDelta {
		// A delta tip has no contiguous on-device payload: reconstruct the
		// chain once up front and serve chunks from memory. The cursor still
		// persists, so a re-crashed restore resumes its *delivery* position
		// (the re-read of the chain is device-sequential and cheap relative
		// to the consumer-side restore the cursor protects).
		chain, err := chainMetas(dev, sb, *meta)
		if err != nil {
			return nil, err
		}
		if it.mem, err = reconstructPayload(dev, sb, chain); err != nil {
			return nil, err
		}
	}
	// Resume a matching cursor; ignore cursors for other checkpoints.
	buf := make([]byte, 24)
	if err := dev.ReadAt(buf, cursorOff); err == nil {
		if c, ok := decodeCursor(buf); ok && c.counter == meta.counter &&
			c.position >= 0 && c.position <= it.size {
			it.pos = c.position
		}
	}
	return it, nil
}

// Counter returns the checkpoint being restored.
func (it *RecoveryIterator) Counter() uint64 { return it.meta.counter }

// Size returns the checkpoint's logical payload length (the reconstructed
// size when the latest checkpoint is a delta).
func (it *RecoveryIterator) Size() int64 { return it.size }

// Position returns the bytes delivered so far (including any resumed
// progress).
func (it *RecoveryIterator) Position() int64 { return it.pos }

// Done reports whether the payload is fully delivered.
func (it *RecoveryIterator) Done() bool { return it.pos >= it.size }

// Next delivers the next chunk into p and durably advances the cursor per
// the configured cadence. It returns the number of bytes delivered; n == 0
// with nil error means the payload is exhausted.
func (it *RecoveryIterator) Next(p []byte) (int, error) {
	if it.Done() {
		return 0, nil
	}
	n := it.chunk
	if n > len(p) {
		n = len(p)
	}
	if rem := it.size - it.pos; int64(n) > rem {
		n = int(rem)
	}
	if n == 0 {
		return 0, fmt.Errorf("core: zero-length destination buffer")
	}
	if it.mem != nil {
		copy(p[:n], it.mem[it.pos:])
	} else if err := it.dev.ReadAt(p[:n], payloadBase(it.sb, it.meta.slot)+it.pos); err != nil {
		return 0, err
	}
	it.pos += int64(n)
	it.sinceLog += int64(n)
	if it.sinceLog >= it.logEveryN || it.Done() {
		if err := it.persistCursor(); err != nil {
			return 0, err
		}
		it.sinceLog = 0
	}
	return n, nil
}

// persistCursor durably records the read position.
func (it *RecoveryIterator) persistCursor() error {
	return it.dev.Persist(encodeCursor(cursor{counter: it.meta.counter, position: it.pos}), cursorOff)
}

// Reset rewinds the iterator (and its durable cursor) to the beginning —
// used when the consumer's partial restore state was itself lost.
func (it *RecoveryIterator) Reset() error {
	it.pos = 0
	it.sinceLog = 0
	return it.persistCursor()
}

// ClearCursor invalidates the durable cursor after a completed restore so a
// future recovery of a *newer* checkpoint starts clean. (A stale cursor for
// an older counter is ignored anyway; clearing keeps the header tidy.)
func (it *RecoveryIterator) ClearCursor() error {
	zero := make([]byte, 24)
	return it.dev.Persist(zero, cursorOff)
}
