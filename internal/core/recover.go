package core

import (
	"errors"
	"fmt"
	"hash/crc32"

	"pccheck/internal/storage"
)

// errSlotRecycled reports that a slot's header no longer matches the
// metadata the caller resolved. Under live concurrency this means a newer
// checkpoint recycled the slot mid-read (retry against fresh metadata);
// during crash recovery it means the record and slot disagree.
var errSlotRecycled = errors.New("core: slot recycled during read")

// recoverPointer reads both pointer records and returns the newest valid,
// fully persisted checkpoint, plus which record location held it (0 = A,
// 1 = B) so the engine resumes alternating correctly. A record is accepted
// only if its slot header agrees (same counter and size) — defense in depth
// against device corruption beyond what the write protocol can cause.
func recoverPointer(dev storage.Device, sb superblock) (*checkMeta, int, error) {
	type candidate struct {
		meta checkMeta
		loc  int
	}
	var candidates []candidate
	for loc, off := range []int64{recordAOff, recordBOff} {
		buf := make([]byte, recordSize)
		if err := dev.ReadAt(buf, off); err != nil {
			return nil, 0, err
		}
		if m, ok := decodeRecord(buf); ok {
			candidates = append(candidates, candidate{m, loc})
		}
	}
	// Prefer the highest counter; fall back to the other record if the
	// winner fails slot validation.
	for len(candidates) > 0 {
		best := 0
		for i := range candidates {
			if candidates[i].meta.counter > candidates[best].meta.counter {
				best = i
			}
		}
		cand := candidates[best]
		if err := validateSlot(dev, sb, cand.meta); err == nil {
			m := cand.meta
			return &m, cand.loc, nil
		}
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return nil, 0, ErrNoCheckpoint
}

// validateSlot checks that the slot a pointer record references really holds
// the checkpoint the record describes.
func validateSlot(dev storage.Device, sb superblock, meta checkMeta) error {
	if meta.slot < 0 || meta.slot >= sb.slots {
		return fmt.Errorf("core: record references slot %d of %d", meta.slot, sb.slots)
	}
	if meta.size < 0 || meta.size > sb.slotBytes {
		return fmt.Errorf("core: record size %d outside slot capacity %d", meta.size, sb.slotBytes)
	}
	buf := make([]byte, slotHeaderSize)
	if err := dev.ReadAt(buf, slotBase(sb, meta.slot)); err != nil {
		return err
	}
	hdr, ok := decodeSlotHeader(buf)
	if !ok {
		return fmt.Errorf("core: slot %d header corrupt", meta.slot)
	}
	if hdr.epoch != sb.epoch {
		return fmt.Errorf("core: slot %d header from format epoch %d, device is epoch %d",
			meta.slot, hdr.epoch, sb.epoch)
	}
	if hdr.counter != meta.counter || hdr.size != meta.size {
		return fmt.Errorf("core: slot %d holds counter %d/size %d, record says %d/%d",
			meta.slot, hdr.counter, hdr.size, meta.counter, meta.size)
	}
	return nil
}

// readSlotPayload copies a checkpoint payload out of its slot, verifying the
// payload CRC when the checkpoint was written with verification enabled.
func readSlotPayload(dev storage.Device, sb superblock, meta checkMeta, dst []byte) error {
	buf := make([]byte, slotHeaderSize)
	if err := dev.ReadAt(buf, slotBase(sb, meta.slot)); err != nil {
		return err
	}
	hdr, ok := decodeSlotHeader(buf)
	if !ok || hdr.counter != meta.counter || hdr.epoch != sb.epoch {
		return fmt.Errorf("%w: slot %d no longer holds checkpoint %d", errSlotRecycled, meta.slot, meta.counter)
	}
	if err := dev.ReadAt(dst, payloadBase(sb, meta.slot)); err != nil {
		return err
	}
	if hdr.hasCRC {
		if got := crc32.ChecksumIEEE(dst); got != hdr.payloadCRC {
			// Classified corrupt (not transient): re-reading the same bytes
			// will not heal a bad payload, and callers must know the data
			// cannot be trusted.
			return storage.Corrupt(fmt.Errorf("core: checkpoint %d payload checksum mismatch", meta.counter))
		}
	}
	return nil
}

// Recover reads the latest fully persisted checkpoint from a formatted
// device without constructing an engine — the restart path (§4.2): the
// persistent pointer identifies the checkpoint, the payload is loaded, and
// the caller hands it to the training job to resume.
func Recover(dev storage.Device) (payload []byte, counter uint64, err error) {
	head := make([]byte, 64)
	if err := dev.ReadAt(head, superOff); err != nil {
		return nil, 0, err
	}
	sb, err := decodeSuperblock(head)
	if err != nil {
		return nil, 0, err
	}
	meta, _, err := recoverPointer(dev, sb)
	if err != nil {
		return nil, 0, err
	}
	payload = make([]byte, meta.size)
	if err := readSlotPayload(dev, sb, *meta, payload); err != nil {
		return nil, 0, err
	}
	return payload, meta.counter, nil
}

// RecoverVersion reads the checkpoint with the given counter if a slot still
// holds it intact. The engine only *guarantees* the newest published
// checkpoint, but the N+1 slots usually retain several predecessors, which
// distributed restores exploit when a worker's local latest has advanced
// past the group's agreed checkpoint (§3.1). ErrNoCheckpoint means the
// version is no longer resident.
func RecoverVersion(dev storage.Device, counter uint64) ([]byte, error) {
	payload, _, err := recoverVersionSlot(dev, counter)
	return payload, err
}

// recoverVersionSlot also reports which slot held the version, so live
// readers can validate it against the slot seqlock.
func recoverVersionSlot(dev storage.Device, counter uint64) ([]byte, int, error) {
	head := make([]byte, 64)
	if err := dev.ReadAt(head, superOff); err != nil {
		return nil, 0, err
	}
	sb, err := decodeSuperblock(head)
	if err != nil {
		return nil, 0, err
	}
	for slot := 0; slot < sb.slots; slot++ {
		buf := make([]byte, slotHeaderSize)
		if err := dev.ReadAt(buf, slotBase(sb, slot)); err != nil {
			return nil, 0, err
		}
		hdr, ok := decodeSlotHeader(buf)
		if !ok || hdr.counter != counter {
			continue
		}
		if hdr.epoch != sb.epoch {
			// Header from a previous format generation: the payload it
			// describes belongs to a dead image and must never be served.
			continue
		}
		if hdr.size < 0 || hdr.size > sb.slotBytes {
			continue
		}
		payload := make([]byte, hdr.size)
		meta := checkMeta{slot: slot, counter: counter, size: hdr.size}
		if err := readSlotPayload(dev, sb, meta, payload); err != nil {
			continue // e.g. an in-flight overwrite tore it; keep looking
		}
		return payload, slot, nil
	}
	return nil, 0, ErrNoCheckpoint
}
