package core

import (
	"errors"
	"fmt"
	"hash/crc32"

	"pccheck/internal/storage"
)

// errSlotRecycled reports that a slot's header no longer matches the
// metadata the caller resolved. Under live concurrency this means a newer
// checkpoint recycled the slot mid-read (retry against fresh metadata);
// during crash recovery it means the record and slot disagree.
var errSlotRecycled = errors.New("core: slot recycled during read")

// recoverPointer reads both pointer records and returns the newest valid,
// fully persisted checkpoint, plus which record location held it (0 = A,
// 1 = B) so the engine resumes alternating correctly. A record is accepted
// only if its slot header agrees (same counter and size) — defense in depth
// against device corruption beyond what the write protocol can cause.
func recoverPointer(dev storage.Device, sb superblock) (*checkMeta, int, error) {
	type candidate struct {
		meta checkMeta
		loc  int
	}
	var candidates []candidate
	for loc, off := range []int64{recordAOff, recordBOff} {
		buf := make([]byte, recordSize)
		if err := dev.ReadAt(buf, off); err != nil {
			return nil, 0, err
		}
		if m, ok := decodeRecord(buf); ok {
			candidates = append(candidates, candidate{m, loc})
		}
	}
	// Prefer the highest counter; fall back to the other record if the
	// winner fails slot validation — including, for a delta tip, validation
	// of its whole keyframe→delta chain. A record is only durable after
	// every link of its chain is (headers persist before the record, and
	// chain slots are never recycled while a durable record references
	// them), so a broken chain means this record is the torn/stale one and
	// the other record identifies the newest *complete* chain.
	for len(candidates) > 0 {
		best := 0
		for i := range candidates {
			if candidates[i].meta.counter > candidates[best].meta.counter {
				best = i
			}
		}
		cand := candidates[best]
		if hdr, err := validateSlot(dev, sb, cand.meta); err == nil {
			m := cand.meta
			m.kind, m.base, m.fullSize = hdr.kind, hdr.base, hdr.fullSize
			if m.kind != slotKindDelta {
				return &m, cand.loc, nil
			}
			if _, err := chainMetas(dev, sb, m); err == nil {
				return &m, cand.loc, nil
			}
		}
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return nil, 0, ErrNoCheckpoint
}

// validateSlot checks that the slot a pointer record references really holds
// the checkpoint the record describes, and returns the slot header so
// callers can pick up the delta fields the record itself does not carry.
func validateSlot(dev storage.Device, sb superblock, meta checkMeta) (slotHeader, error) {
	if meta.slot < 0 || meta.slot >= sb.slots {
		return slotHeader{}, fmt.Errorf("core: record references slot %d of %d", meta.slot, sb.slots)
	}
	if meta.size < 0 || meta.size > sb.slotBytes {
		return slotHeader{}, fmt.Errorf("core: record size %d outside slot capacity %d", meta.size, sb.slotBytes)
	}
	buf := make([]byte, slotHeaderSize)
	if err := dev.ReadAt(buf, slotBase(sb, meta.slot)); err != nil {
		return slotHeader{}, err
	}
	hdr, ok := decodeSlotHeader(buf)
	if !ok {
		return slotHeader{}, fmt.Errorf("core: slot %d header corrupt", meta.slot)
	}
	if hdr.quarantined() {
		// A scrubber tombstone: the copy is known-bad with no healthy source.
		// Rejecting it here makes recoverPointer fall back to the other
		// record without ever touching the payload.
		return slotHeader{}, fmt.Errorf("core: slot %d is quarantined", meta.slot)
	}
	if hdr.epoch != sb.epoch {
		return slotHeader{}, fmt.Errorf("core: slot %d header from format epoch %d, device is epoch %d",
			meta.slot, hdr.epoch, sb.epoch)
	}
	if hdr.counter != meta.counter || hdr.size != meta.size {
		return slotHeader{}, fmt.Errorf("core: slot %d holds counter %d/size %d, record says %d/%d",
			meta.slot, hdr.counter, hdr.size, meta.counter, meta.size)
	}
	if hdr.kind > slotKindDelta {
		return slotHeader{}, fmt.Errorf("core: slot %d has unknown payload kind %d", meta.slot, hdr.kind)
	}
	return hdr, nil
}

// findChainHeader resolves a chain predecessor's counter to the slot
// currently holding it: the header must decode, carry the live epoch and a
// plausible size, and match the counter exactly.
func findChainHeader(dev storage.Device, sb superblock, counter uint64) (slotHeader, int, error) {
	buf := make([]byte, slotHeaderSize)
	for slot := 0; slot < sb.slots; slot++ {
		if err := dev.ReadAt(buf, slotBase(sb, slot)); err != nil {
			return slotHeader{}, 0, err
		}
		hdr, ok := decodeSlotHeader(buf)
		if !ok || hdr.counter != counter || hdr.epoch != sb.epoch || hdr.quarantined() {
			continue
		}
		if hdr.size < 0 || hdr.size > sb.slotBytes || hdr.kind > slotKindDelta {
			continue
		}
		return hdr, slot, nil
	}
	return slotHeader{}, 0, fmt.Errorf("core: no slot holds chain link %d", counter)
}

// chainMetas walks a delta tip back to its keyframe and returns the chain
// in application order (keyframe first, tip last). The walk enforces
// strictly decreasing counters and a depth bound of the slot count, so a
// corrupted base pointer cannot loop.
func chainMetas(dev storage.Device, sb superblock, tip checkMeta) ([]checkMeta, error) {
	chain := []checkMeta{tip}
	cur := tip
	for cur.kind == slotKindDelta {
		if len(chain) > sb.slots {
			return nil, fmt.Errorf("core: delta chain at counter %d exceeds %d slots", tip.counter, sb.slots)
		}
		if cur.base == 0 || cur.base >= cur.counter {
			return nil, fmt.Errorf("core: delta %d has implausible base %d", cur.counter, cur.base)
		}
		hdr, slot, err := findChainHeader(dev, sb, cur.base)
		if err != nil {
			return nil, err
		}
		cur = checkMeta{slot: slot, counter: hdr.counter, size: hdr.size, kind: hdr.kind, base: hdr.base, fullSize: hdr.fullSize}
		chain = append(chain, cur)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, nil
}

// reconstructPayload reads a keyframe→delta chain off the device and
// applies it, returning the tip's logical payload.
func reconstructPayload(dev storage.Device, sb superblock, chain []checkMeta) ([]byte, error) {
	if len(chain) == 0 || chain[0].kind != slotKindFull {
		return nil, fmt.Errorf("core: delta chain does not start at a keyframe")
	}
	cur := make([]byte, chain[0].size)
	if err := readSlotPayload(dev, sb, chain[0], cur); err != nil {
		return nil, err
	}
	prev := chain[0].counter
	for _, link := range chain[1:] {
		rec := make([]byte, link.size)
		if err := readSlotPayload(dev, sb, link, rec); err != nil {
			return nil, err
		}
		d, err := decodeDelta(rec)
		if err != nil {
			return nil, storage.Corrupt(err)
		}
		if d.base != prev {
			return nil, storage.Corrupt(fmt.Errorf("core: delta %d encodes base %d, chain expects %d", link.counter, d.base, prev))
		}
		if d.fullSize != link.fullSize {
			return nil, storage.Corrupt(fmt.Errorf("core: delta %d record says %d logical bytes, header says %d", link.counter, d.fullSize, link.fullSize))
		}
		if cur, err = applyDelta(cur, d); err != nil {
			return nil, storage.Corrupt(err)
		}
		prev = link.counter
	}
	return cur, nil
}

// readSlotPayload copies a checkpoint payload out of its slot, verifying the
// payload CRC when the checkpoint was written with verification enabled.
func readSlotPayload(dev storage.Device, sb superblock, meta checkMeta, dst []byte) error {
	buf := make([]byte, slotHeaderSize)
	if err := dev.ReadAt(buf, slotBase(sb, meta.slot)); err != nil {
		return err
	}
	hdr, ok := decodeSlotHeader(buf)
	if !ok || hdr.counter != meta.counter || hdr.epoch != sb.epoch {
		return fmt.Errorf("%w: slot %d no longer holds checkpoint %d", errSlotRecycled, meta.slot, meta.counter)
	}
	if hdr.quarantined() {
		// Tombstoned under a live reader: the data is known-bad and must not
		// be served. Classified corrupt, not recycled — a retry reads the
		// same tombstone.
		return storage.Corrupt(fmt.Errorf("core: checkpoint %d in slot %d is quarantined", meta.counter, meta.slot))
	}
	if err := dev.ReadAt(dst, payloadBase(sb, meta.slot)); err != nil {
		return err
	}
	if hdr.hasCRC {
		if got := crc32.ChecksumIEEE(dst); got != hdr.payloadCRC {
			// Classified corrupt (not transient): re-reading the same bytes
			// will not heal a bad payload, and callers must know the data
			// cannot be trusted.
			return storage.Corrupt(fmt.Errorf("core: checkpoint %d payload checksum mismatch", meta.counter))
		}
	}
	return nil
}

// Recover reads the latest fully persisted checkpoint from a formatted
// device without constructing an engine — the restart path (§4.2): the
// persistent pointer identifies the checkpoint, the payload is loaded, and
// the caller hands it to the training job to resume.
//
// A tiered device (anything implementing TierReader, e.g. storage.Tiered)
// is walked newest-reachable-first: every level is probed and the highest
// recoverable counter wins, so losing the fast tier falls back to whatever
// the drainer last acknowledged below it.
func Recover(dev storage.Device) (payload []byte, counter uint64, err error) {
	if tr, ok := dev.(TierReader); ok {
		return RecoverTiered(tr.Tiers()...)
	}
	return recoverDevice(dev)
}

// recoverDevice is single-level Recover.
func recoverDevice(dev storage.Device) (payload []byte, counter uint64, err error) {
	head := make([]byte, 64)
	if err := dev.ReadAt(head, superOff); err != nil {
		return nil, 0, err
	}
	sb, err := decodeSuperblock(head)
	if err != nil {
		return nil, 0, err
	}
	meta, _, err := recoverPointer(dev, sb)
	if err != nil {
		return nil, 0, err
	}
	if meta.kind == slotKindDelta {
		chain, err := chainMetas(dev, sb, *meta)
		if err != nil {
			return nil, 0, err
		}
		payload, err = reconstructPayload(dev, sb, chain)
		if err != nil {
			return nil, 0, err
		}
		return payload, meta.counter, nil
	}
	payload = make([]byte, meta.size)
	if err := readSlotPayload(dev, sb, *meta, payload); err != nil {
		return nil, 0, err
	}
	return payload, meta.counter, nil
}

// RecoverVersion reads the checkpoint with the given counter if a slot still
// holds it intact. The engine only *guarantees* the newest published
// checkpoint, but the N+1 slots usually retain several predecessors, which
// distributed restores exploit when a worker's local latest has advanced
// past the group's agreed checkpoint (§3.1). ErrNoCheckpoint means the
// version is no longer resident.
func RecoverVersion(dev storage.Device, counter uint64) ([]byte, error) {
	head := make([]byte, 64)
	if err := dev.ReadAt(head, superOff); err != nil {
		return nil, err
	}
	sb, err := decodeSuperblock(head)
	if err != nil {
		return nil, err
	}
	if sb.deltaKeyframe > 0 {
		return recoverVersionDelta(dev, sb, counter)
	}
	payload, _, err := recoverVersionSlotSB(dev, sb, counter)
	return payload, err
}

// recoverVersionDelta serves a by-counter read on a delta-formatted device:
// the version is resident only while its whole chain still is.
func recoverVersionDelta(dev storage.Device, sb superblock, counter uint64) ([]byte, error) {
	hdr, slot, err := findChainHeader(dev, sb, counter)
	if err != nil {
		return nil, ErrNoCheckpoint
	}
	tip := checkMeta{slot: slot, counter: hdr.counter, size: hdr.size, kind: hdr.kind, base: hdr.base, fullSize: hdr.fullSize}
	if tip.kind != slotKindDelta {
		payload := make([]byte, tip.size)
		if err := readSlotPayload(dev, sb, tip, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	chain, err := chainMetas(dev, sb, tip)
	if err != nil {
		return nil, ErrNoCheckpoint // a link was recycled; the version is gone
	}
	return reconstructPayload(dev, sb, chain)
}

// recoverVersionSlot also reports which slot held the version, so live
// readers can validate it against the slot seqlock.
func recoverVersionSlot(dev storage.Device, counter uint64) ([]byte, int, error) {
	head := make([]byte, 64)
	if err := dev.ReadAt(head, superOff); err != nil {
		return nil, 0, err
	}
	sb, err := decodeSuperblock(head)
	if err != nil {
		return nil, 0, err
	}
	return recoverVersionSlotSB(dev, sb, counter)
}

func recoverVersionSlotSB(dev storage.Device, sb superblock, counter uint64) ([]byte, int, error) {
	for slot := 0; slot < sb.slots; slot++ {
		buf := make([]byte, slotHeaderSize)
		if err := dev.ReadAt(buf, slotBase(sb, slot)); err != nil {
			return nil, 0, err
		}
		hdr, ok := decodeSlotHeader(buf)
		if !ok || hdr.counter != counter || hdr.quarantined() {
			continue
		}
		if hdr.epoch != sb.epoch {
			// Header from a previous format generation: the payload it
			// describes belongs to a dead image and must never be served.
			continue
		}
		if hdr.size < 0 || hdr.size > sb.slotBytes {
			continue
		}
		payload := make([]byte, hdr.size)
		meta := checkMeta{slot: slot, counter: counter, size: hdr.size}
		if err := readSlotPayload(dev, sb, meta, payload); err != nil {
			continue // e.g. an in-flight overwrite tore it; keep looking
		}
		return payload, slot, nil
	}
	return nil, 0, ErrNoCheckpoint
}
