package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"pccheck/internal/storage"
)

func deltaEngine(t *testing.T, cfg Config) (*Checkpointer, storage.Device) {
	t.Helper()
	dev := storage.NewRAM(DeviceBytesFor(cfg))
	c, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, dev
}

func TestDeltaGranularityBounds(t *testing.T) {
	cases := []struct {
		slotBytes int64
		want      int
	}{
		{64, 64},              // floor
		{4096, 64},            // 4 rounds up to 64
		{1 << 20, 1024},       // exactly 1/1024th
		{100 << 20, 64 << 10}, // ceiling (102400 clamps)
		{1 << 16, 64},
	}
	for _, c := range cases {
		if got := deltaGranularity(c.slotBytes); got != c.want {
			t.Errorf("deltaGranularity(%d) = %d, want %d", c.slotBytes, got, c.want)
		}
		if g := deltaGranularity(c.slotBytes); g%64 != 0 {
			t.Errorf("deltaGranularity(%d) = %d, not a 64-byte multiple", c.slotBytes, g)
		}
	}
}

func TestDeltaEncodeDecodeApply(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		gran := 64 * (1 + rng.Intn(4))
		n := 1 + rng.Intn(4000)
		base := payload(int64(trial), n)
		next := append([]byte(nil), base...)
		// Mutate a few scattered ranges.
		for r := 0; r < 1+rng.Intn(5); r++ {
			off := rng.Intn(n)
			span := 1 + rng.Intn(min(64, n-off))
			rng.Read(next[off : off+span])
		}
		ds := computeDirty(next, gran, int64(n), chunkHashes(base, gran), nil, false, false)
		rec := encodeDelta(next, 7, gran, ds)
		d, err := decodeDelta(rec)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if d.base != 7 || d.fullSize != int64(n) || d.gran != gran {
			t.Fatalf("trial %d: decoded header %+v", trial, d)
		}
		got, err := applyDelta(base, d)
		if err != nil {
			t.Fatalf("trial %d: apply: %v", trial, err)
		}
		if !bytes.Equal(got, next) {
			t.Fatalf("trial %d: apply did not reconstruct the mutated payload", trial)
		}
	}
}

func TestDeltaApplyAcrossSizeChange(t *testing.T) {
	const gran = 64
	for _, sizes := range [][2]int{{1000, 1500}, {1500, 1000}, {64, 65}, {65, 64}, {1, 4000}, {4000, 1}} {
		base := payload(1, sizes[0])
		next := payload(2, sizes[1])
		ds := computeDirty(next, gran, int64(len(base)), chunkHashes(base, gran), nil, false, false)
		d, err := decodeDelta(encodeDelta(next, 3, gran, ds))
		if err != nil {
			t.Fatalf("%v: decode: %v", sizes, err)
		}
		got, err := applyDelta(base, d)
		if err != nil {
			t.Fatalf("%v: apply: %v", sizes, err)
		}
		if !bytes.Equal(got, next) {
			t.Fatalf("%v: reconstruction mismatch", sizes)
		}
	}
}

func TestDeltaDecodeRejectsCorruption(t *testing.T) {
	p := payload(9, 1000)
	ds := computeDirty(p, 64, 0, nil, nil, true, false)
	rec := encodeDelta(p, 1, 64, ds)
	if _, err := decodeDelta(rec); err != nil {
		t.Fatalf("pristine record rejected: %v", err)
	}
	for _, off := range []int{0, 4, 8, 16, 24, 28, 32, 40} {
		mut := append([]byte(nil), rec...)
		mut[off] ^= 0xff
		if _, err := decodeDelta(mut); err == nil {
			t.Errorf("corruption at byte %d not detected", off)
		}
	}
	if _, err := decodeDelta(rec[:len(rec)-1]); err == nil {
		t.Error("truncated record not detected")
	}
	if _, err := decodeDelta(append(append([]byte(nil), rec...), 0)); err == nil {
		t.Error("trailing byte not detected")
	}
}

// TestDeltaCheckpointRecoverSequence drives the engine save path across
// several keyframe cycles, checking Recover and ReadLatest after every save.
func TestDeltaCheckpointRecoverSequence(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 8192, DeltaEvery: 1, DeltaKeyframe: 3}
	c, dev := deltaEngine(t, cfg)
	ctx := context.Background()

	p := sparsePayload(77, 0, 6000)
	var lastCtr uint64
	for i := 0; i < 10; i++ {
		if i > 0 {
			mutateSparse(p, 77, uint64(i))
		}
		ctr, err := c.Checkpoint(ctx, BytesSource(p))
		if err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
		if ctr <= lastCtr {
			t.Fatalf("save %d: counter %d did not advance past %d", i, ctr, lastCtr)
		}
		lastCtr = ctr

		got, rc, err := Recover(dev)
		if err != nil {
			t.Fatalf("save %d: recover: %v", i, err)
		}
		if rc != ctr || !bytes.Equal(got, p) {
			t.Fatalf("save %d: recover returned counter %d (want %d), equal=%v", i, rc, ctr, bytes.Equal(got, p))
		}
		dst := make([]byte, len(p))
		rctr, n, err := c.ReadLatest(dst)
		if err != nil {
			t.Fatalf("save %d: ReadLatest: %v", i, err)
		}
		if rctr != ctr || n != int64(len(p)) || !bytes.Equal(dst[:n], p) {
			t.Fatalf("save %d: ReadLatest mismatch", i)
		}
	}
	st := c.Stats()
	if st.DeltaSaves == 0 || st.KeyframeSaves < 2 {
		t.Fatalf("expected mixed delta/keyframe saves, got deltas=%d keyframes=%d", st.DeltaSaves, st.KeyframeSaves)
	}
	if st.BytesPersisted >= st.BytesWritten {
		t.Fatalf("sparse workload persisted %d bytes for %d logical — no reduction", st.BytesPersisted, st.BytesWritten)
	}
}

// TestDeltaTrackerFed exercises trusted-marks mode: the trainer feeds exact
// mutated ranges and the engine skips hashing entirely.
func TestDeltaTrackerFed(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 8192, DeltaEvery: 1, DeltaKeyframe: 4}
	c, dev := deltaEngine(t, cfg)
	ctx := context.Background()
	tr := c.DirtyTracker()
	if tr == nil {
		t.Fatal("delta engine has no tracker")
	}

	p := sparsePayload(5, 0, 5000)
	for i := 0; i < 9; i++ {
		if i > 0 {
			for _, r := range mutateSparse(p, 5, uint64(i)) {
				tr.MarkRange(r[0], r[1])
			}
		}
		if _, err := c.Checkpoint(ctx, BytesSource(p)); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
		got, _, err := Recover(dev)
		if err != nil {
			t.Fatalf("save %d: recover: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("save %d: tracked delta recovery mismatch", i)
		}
	}
	if st := c.Stats(); st.DeltaSaves == 0 {
		t.Fatal("tracked workload produced no delta saves")
	}
}

// TestDeltaOpenReattach crashes (drops) the engine after a mid-chain save
// and re-attaches with Open: the chain must be rebuilt and pinned, saving
// must continue, and the pre-crash checkpoint must stay recoverable.
func TestDeltaOpenReattach(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 8192, DeltaEvery: 1, DeltaKeyframe: 3}
	c, dev := deltaEngine(t, cfg)
	ctx := context.Background()

	p := sparsePayload(11, 0, 4000)
	var last uint64
	for i := 0; i < 5; i++ { // 5 saves: keyframe + 3 deltas + keyframe
		if i > 0 {
			mutateSparse(p, 11, uint64(i))
		}
		ctr, err := c.Checkpoint(ctx, BytesSource(p))
		if err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
		last = ctr
	}

	c2, err := Open(dev, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := c2.Config().DeltaKeyframe; got != 3 {
		t.Fatalf("Open recovered DeltaKeyframe %d, want 3", got)
	}
	if free, want := c2.FreeSlots(), c2.TotalSlots()-c2.PinnedSlots(); free != want {
		t.Fatalf("after reattach: %d free slots, want %d", free, want)
	}
	dst := make([]byte, 4000)
	rctr, _, err := c2.ReadLatest(dst)
	if err != nil || rctr != last || !bytes.Equal(dst, p) {
		t.Fatalf("reattach ReadLatest: ctr=%d want=%d err=%v", rctr, last, err)
	}
	for i := 5; i < 9; i++ {
		mutateSparse(p, 11, uint64(i))
		ctr, err := c2.Checkpoint(ctx, BytesSource(p))
		if err != nil {
			t.Fatalf("post-reattach save %d: %v", i, err)
		}
		if ctr <= last {
			t.Fatalf("post-reattach counter %d did not advance past %d", ctr, last)
		}
		last = ctr
	}
	got, rc, err := Recover(dev)
	if err != nil || rc != last || !bytes.Equal(got, p) {
		t.Fatalf("recover after reattach saves: rc=%d want=%d err=%v", rc, last, err)
	}
}

// TestDeltaRecoveryIterator streams a delta-tip checkpoint through the
// persistent iterator.
func TestDeltaRecoveryIterator(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 8192, DeltaEvery: 1, DeltaKeyframe: 4}
	c, dev := deltaEngine(t, cfg)
	ctx := context.Background()

	p := sparsePayload(21, 0, 6500)
	for i := 0; i < 3; i++ { // keyframe + 2 deltas: tip is a delta
		if i > 0 {
			mutateSparse(p, 21, uint64(i))
		}
		if _, err := c.Checkpoint(ctx, BytesSource(p)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := NewRecoveryIterator(dev, 1000, 0)
	if err != nil {
		t.Fatalf("NewRecoveryIterator: %v", err)
	}
	if it.Size() != int64(len(p)) {
		t.Fatalf("iterator size %d, want logical %d", it.Size(), len(p))
	}
	var out []byte
	buf := make([]byte, 1000)
	for !it.Done() {
		n, err := it.Next(buf)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, buf[:n]...)
	}
	if !bytes.Equal(out, p) {
		t.Fatal("iterator did not reconstruct the delta chain")
	}
}

// TestDeltaBytesPersistedReduction is the issue's acceptance bar: on a
// sparse workload, delta mode must cut bytes persisted per iteration by at
// least 5× versus full checkpoints.
func TestDeltaBytesPersistedReduction(t *testing.T) {
	const (
		size  = 32 << 10
		iters = 40
	)
	run := func(cfg Config) StatsSnapshot {
		c, _ := deltaEngine(t, cfg)
		ctx := context.Background()
		p := sparsePayload(99, 0, size)
		for i := 0; i < iters; i++ {
			if i > 0 {
				mutateSparse(p, 99, uint64(i))
			}
			if _, err := c.Checkpoint(ctx, BytesSource(p)); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	full := run(Config{Concurrent: 1, SlotBytes: size + 64})
	delta := run(Config{Concurrent: 1, SlotBytes: size + 64, DeltaEvery: 1, DeltaKeyframe: 10})
	if full.BytesPersisted != full.BytesWritten {
		t.Fatalf("baseline persisted %d != logical %d", full.BytesPersisted, full.BytesWritten)
	}
	ratio := float64(full.BytesPersisted) / float64(delta.BytesPersisted)
	t.Logf("bytes persisted: full=%d delta=%d reduction=%.1fx (deltas=%d keyframes=%d)",
		full.BytesPersisted, delta.BytesPersisted, ratio, delta.DeltaSaves, delta.KeyframeSaves)
	if ratio < 5 {
		t.Fatalf("delta reduction %.2fx < required 5x", ratio)
	}
}

// TestDeltaCrashSweep runs the delta workloads of the sweep matrix under
// simulated power cuts: the durable floor must never regress past the last
// acknowledged checkpoint — which for a delta tip means the last complete
// keyframe+chain — and recovery must reproduce acknowledged bytes exactly.
func TestDeltaCrashSweep(t *testing.T) {
	stride := 3
	samples := 24
	if testing.Short() {
		stride, samples = 7, 8
	}
	for _, w := range CrashSweepConfigs(3) {
		if w.DeltaKeyframe == 0 {
			continue
		}
		w := w
		t.Run(w.String(), func(t *testing.T) {
			t.Parallel()
			res, err := ExploreCrashes(CrashExploreOptions{
				Workload: w,
				Stride:   stride,
				Samples:  samples,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
			if res.Acked != w.Checkpoints {
				t.Errorf("acked %d checkpoints, want %d", res.Acked, w.Checkpoints)
			}
			if res.Recovered == 0 {
				t.Error("no case recovered a checkpoint")
			}
		})
	}
}

func FuzzDeltaDecode(f *testing.F) {
	p := payload(1, 700)
	ds := computeDirty(p, 64, 0, nil, nil, true, false)
	f.Add(encodeDelta(p, 3, 64, ds))
	base := payload(2, 700)
	next := append([]byte(nil), base...)
	copy(next[100:], payload(3, 80))
	f.Add(encodeDelta(next, 9, 64, computeDirty(next, 64, 700, chunkHashes(base, 64), nil, false, false)))
	f.Add([]byte{})
	f.Add(make([]byte, deltaHdrSize))
	f.Fuzz(func(t *testing.T, rec []byte) {
		d, err := decodeDelta(rec)
		if err != nil {
			return
		}
		// A record that decodes must also apply without panicking (bounded
		// to keep the fuzzer from allocating multi-GiB reconstructions).
		if d.fullSize <= 1<<20 {
			if out, err := applyDelta(base, d); err == nil && int64(len(out)) != d.fullSize {
				t.Fatalf("apply returned %d bytes, record claims %d", len(out), d.fullSize)
			}
		}
	})
}
