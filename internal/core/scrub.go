// Background integrity scrubbing and cross-tier self-healing.
//
// The write protocol makes checkpoints durable; it does not keep them that
// way. Media retention errors, firmware bugs and misdirected writes damage
// already-synced bytes silently, and a checkpoint is read exactly once — at
// restart, when every other copy of the training state is gone. A latent
// fault discovered then is discovered too late.
//
// The scrubber closes that window. On a configurable cadence (or on demand
// via ScrubNow) it re-reads every committed structure and CRC-verifies it:
// both pointer records, the published slot (full mode) or the whole pinned
// keyframe→delta chain (delta mode, verified keyframe-first), the black-box
// region header, and — on a tiered device — each lower tier's self-contained
// image against that tier's durable watermark. Read faults are classified
// with the storage error taxonomy: transient faults are retried in place,
// while permanent faults and CRC mismatches mark the copy damaged.
//
// A damaged copy is repaired from the newest healthy source:
//
//   - a damaged pointer record is rewritten from the engine's published
//     metadata (whose slot header is always durable before publication);
//   - a damaged chain link is rewritten in place from a lower tier's copy
//     (chain slots are pinned and saves serialize on deltaMu, so an
//     in-place rewrite races nobody);
//   - a damaged published slot in concurrent mode is re-published: the
//     healthy payload is written to a fresh free slot and the pointer
//     record is forced to the new location — never in place, because the
//     damaged slot could be recycled by a concurrent save mid-rewrite;
//   - a damaged lower tier is scheduled for a full resync from the front
//     (targeted in-place writes would interleave with the drainer's
//     journal replay; the resync path is ordered by construction).
//
// When no healthy source exists the slot is quarantined: its header is
// rewritten with the quarantine flag so recovery skips it and falls back to
// the other pointer record — corrupt bytes are never served, at worst the
// durable floor steps back one published checkpoint. Every detection,
// repair and quarantine is emitted as an obs event (landing in the black
// box), recorded in the decision trace with its rejected alternatives, and
// appended to the scrubber's bounded audit log as a ScrubRecord.
package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"pccheck/internal/obs"
	"pccheck/internal/obs/blackbox"
	"pccheck/internal/obs/decision"
	"pccheck/internal/storage"
)

// ScrubConfig tunes the background integrity scrubber. The zero value
// disables the periodic goroutine; ScrubNow still sweeps on demand.
type ScrubConfig struct {
	// Interval is the background sweep cadence; 0 disables the goroutine.
	Interval time.Duration
	// ReadRetry is how many additional attempts a transiently failing read
	// gets before the copy counts as unreadable. Default 3.
	ReadRetry int
	// HistoryCap bounds the retained ScrubRecord audit tail. Default 256.
	HistoryCap int
}

func (s ScrubConfig) withDefaults() ScrubConfig {
	if s.ReadRetry <= 0 {
		s.ReadRetry = 3
	}
	if s.HistoryCap <= 0 {
		s.HistoryCap = 256
	}
	return s
}

// ScrubAction is what the scrubber did about one finding.
type ScrubAction uint8

const (
	// ScrubDetected: damage found; repair still pending (or impossible and
	// quarantine declined, e.g. a report-only offline scan).
	ScrubDetected ScrubAction = iota + 1
	// ScrubRepaired: the copy was rewritten from a healthy source.
	ScrubRepaired
	// ScrubQuarantined: no healthy source; the slot was tombstoned.
	ScrubQuarantined
	// ScrubResynced: a lower tier was scheduled for a full resync.
	ScrubResynced
)

func (a ScrubAction) String() string {
	switch a {
	case ScrubDetected:
		return "detected"
	case ScrubRepaired:
		return "repaired"
	case ScrubQuarantined:
		return "quarantined"
	case ScrubResynced:
		return "resynced"
	default:
		return fmt.Sprintf("ScrubAction(%d)", uint8(a))
	}
}

// ScrubRegion is which on-device structure a finding concerns.
type ScrubRegion uint8

const (
	// RegionSlot is a checkpoint slot (header or payload).
	RegionSlot ScrubRegion = iota + 1
	// RegionRecord is one of the two pointer-record locations.
	RegionRecord
	// RegionBlackBox is the telemetry region header.
	RegionBlackBox
	// RegionTier is a lower tier's whole image.
	RegionTier
	// RegionSuperblock is the device superblock.
	RegionSuperblock
)

func (r ScrubRegion) String() string {
	switch r {
	case RegionSlot:
		return "slot"
	case RegionRecord:
		return "record"
	case RegionBlackBox:
		return "blackbox"
	case RegionTier:
		return "tier"
	case RegionSuperblock:
		return "superblock"
	default:
		return fmt.Sprintf("ScrubRegion(%d)", uint8(r))
	}
}

// ScrubRecord is one finding in the scrubber's audit log: what was damaged,
// where, and what was done about it. The fixed-width encoding is the
// forensic interchange format (pccheck-inspect renders it; FuzzScrubRecord
// holds the decoder to arbitrary input).
type ScrubRecord struct {
	// TS is when the finding was made, nanoseconds since the Unix epoch.
	TS int64
	// Counter is the checkpoint involved (0 when not slot-scoped).
	Counter uint64
	// Tier is the storage level (-1 for the front/active device).
	Tier int32
	// Slot is the slot index (-1 when not slot-scoped).
	Slot int32
	// Action is the outcome; Region the structure.
	Action ScrubAction
	Region ScrubRegion
}

func (r ScrubRecord) String() string {
	where := r.Region.String()
	if r.Slot >= 0 {
		where = fmt.Sprintf("%s %d", where, r.Slot)
	}
	if r.Tier >= 0 {
		where += fmt.Sprintf(" tier %d", r.Tier)
	}
	if r.Counter > 0 {
		where += fmt.Sprintf(" (checkpoint %d)", r.Counter)
	}
	return fmt.Sprintf("%s: %s", where, r.Action)
}

// scrubRecordSize is the encoded length: TS u64, counter u64, tier i32,
// slot i32, action u8, region u8, pad, CRC u32.
const scrubRecordSize = 32

// Encode serializes the record with a covering CRC.
func (r ScrubRecord) Encode() []byte {
	buf := make([]byte, scrubRecordSize)
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.TS))
	binary.LittleEndian.PutUint64(buf[8:], r.Counter)
	binary.LittleEndian.PutUint32(buf[16:], uint32(r.Tier))
	binary.LittleEndian.PutUint32(buf[20:], uint32(r.Slot))
	buf[24] = uint8(r.Action)
	buf[25] = uint8(r.Region)
	binary.LittleEndian.PutUint32(buf[28:], crc32.ChecksumIEEE(buf[:28]))
	return buf
}

// DecodeScrubRecord parses an encoded record, rejecting truncation, CRC
// mismatches and out-of-range enums. Arbitrary input never panics.
func DecodeScrubRecord(buf []byte) (ScrubRecord, error) {
	if len(buf) < scrubRecordSize {
		return ScrubRecord{}, fmt.Errorf("core: scrub record truncated: %d bytes", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[28:]) != crc32.ChecksumIEEE(buf[:28]) {
		return ScrubRecord{}, errors.New("core: scrub record checksum mismatch")
	}
	r := ScrubRecord{
		TS:      int64(binary.LittleEndian.Uint64(buf[0:])),
		Counter: binary.LittleEndian.Uint64(buf[8:]),
		Tier:    int32(binary.LittleEndian.Uint32(buf[16:])),
		Slot:    int32(binary.LittleEndian.Uint32(buf[20:])),
		Action:  ScrubAction(buf[24]),
		Region:  ScrubRegion(buf[25]),
	}
	if r.Action < ScrubDetected || r.Action > ScrubResynced {
		return ScrubRecord{}, fmt.Errorf("core: scrub record has unknown action %d", buf[24])
	}
	if r.Region < RegionSlot || r.Region > RegionSuperblock {
		return ScrubRecord{}, fmt.Errorf("core: scrub record has unknown region %d", buf[25])
	}
	return r, nil
}

// ScrubStatus is a point-in-time snapshot of the scrubber's counters.
type ScrubStatus struct {
	// Sweeps is how many sweeps have completed; LastSweep when the most
	// recent one finished (zero before the first).
	Sweeps    uint64
	LastSweep time.Time
	// LastFindings is the damage count of the most recent sweep.
	LastFindings int
	// BytesVerified is the cumulative bytes re-read and checked.
	BytesVerified uint64
	// Corruptions / Repairs / Quarantines / TierResyncs are cumulative
	// findings by outcome. Unrepaired counts findings that could be
	// neither repaired nor quarantined (retried next sweep).
	Corruptions uint64
	Repairs     uint64
	Quarantines uint64
	TierResyncs uint64
	Unrepaired  uint64
	// Findings is the bounded audit tail, oldest first.
	Findings []ScrubRecord
}

// errSlotQuarantined distinguishes "already tombstoned" from fresh damage,
// so repeated sweeps do not re-count a quarantined slot as a new finding.
var errSlotQuarantined = errors.New("core: slot is quarantined")

// tieredScrub is what the scrubber needs from a tiered device: the levels,
// the active front, the durable watermark, and the repair lever. It is
// satisfied by *storage.Tiered; a plain device simply has no tier pass.
type tieredScrub interface {
	TierReader
	Active() int
	Watermark() uint64
	ScheduleResync(level int) bool
	Status() []storage.TierStatus
}

// scrubber runs integrity sweeps over one engine. All sweeps — background
// and on-demand — serialize on mu, which also guards the status snapshot.
type scrubber struct {
	c   *Checkpointer
	cfg ScrubConfig

	stop chan struct{}
	done chan struct{}

	mu sync.Mutex
	st ScrubStatus
}

func newScrubber(c *Checkpointer, cfg ScrubConfig) *scrubber {
	return &scrubber{c: c, cfg: cfg.withDefaults()}
}

// start launches the background loop when an interval is configured.
func (s *scrubber) start() {
	if s.cfg.Interval <= 0 {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop()
}

func (s *scrubber) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.sweep()
		}
	}
}

// stopWait stops the background loop and waits for an in-flight sweep.
func (s *scrubber) stopWait() {
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop = nil
}

// ScrubNow runs one synchronous integrity sweep and returns how many
// damaged copies it found and how many it healed (repairs, quarantines and
// scheduled resyncs all count as healed — the damage is contained).
func (c *Checkpointer) ScrubNow() (found, healed int, err error) {
	if c.closed.Load() {
		return 0, 0, ErrClosed
	}
	t := c.scrub.sweep()
	return t.found, t.repaired + t.quarantined + t.resyncs, nil
}

// ScrubStatus returns a snapshot of the scrubber's counters and its recent
// findings.
func (c *Checkpointer) ScrubStatus() ScrubStatus {
	s := c.scrub
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st
	st.Findings = append([]ScrubRecord(nil), s.st.Findings...)
	return st
}

// sweepTally accumulates one sweep's outcomes.
type sweepTally struct {
	bytes                                 int64
	found, repaired, quarantined, resyncs int
	unrepaired                            int
}

// sweep runs one full pass: pointer records, committed slots, black-box
// header, lower tiers. Sweeps serialize on s.mu.
func (s *scrubber) sweep() sweepTally {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.c
	start := c.obsNow()
	var t sweepTally
	s.scrubRecords(&t)
	if c.sb.deltaKeyframe > 0 {
		s.scrubChain(&t)
	} else {
		s.scrubPublished(&t)
	}
	s.scrubBlackBox(&t)
	s.scrubTiers(&t)

	s.st.Sweeps++
	s.st.LastSweep = time.Now()
	s.st.LastFindings = t.found
	s.st.BytesVerified += uint64(t.bytes)
	s.st.Corruptions += uint64(t.found)
	s.st.Repairs += uint64(t.repaired)
	s.st.Quarantines += uint64(t.quarantined)
	s.st.TierResyncs += uint64(t.resyncs)
	s.st.Unrepaired += uint64(t.unrepaired)
	c.span(obs.PhaseScrub, start, 0, -1, t.bytes, int64(t.found))
	if t.found > 0 && c.bbox != nil {
		// Eventful sweeps flush immediately: the finding and repair events
		// must survive a crash that follows the damage they describe.
		c.bbox.Flush() //nolint:errcheck // best-effort telemetry
	}
	return t
}

// note appends a finding to the bounded audit tail and mirrors it as an
// obs event.
func (s *scrubber) note(rec ScrubRecord) {
	rec.TS = time.Now().UnixNano()
	s.st.Findings = append(s.st.Findings, rec)
	if over := len(s.st.Findings) - s.cfg.HistoryCap; over > 0 {
		s.st.Findings = append(s.st.Findings[:0], s.st.Findings[over:]...)
	}
	var phase obs.Phase
	switch rec.Action {
	case ScrubRepaired, ScrubResynced:
		phase = obs.PhaseScrubRepair
	case ScrubQuarantined:
		phase = obs.PhaseQuarantine
	default:
		phase = obs.PhaseScrubCorrupt
	}
	s.c.instant(phase, rec.Counter, int(rec.Slot), 0, int64(rec.Tier))
}

// provenance records a repair decision with its rejected alternatives.
func (s *scrubber) provenance(chosen string, rejected []string, counter uint64, dur time.Duration, outcome string) {
	if s.c.dec == nil {
		return
	}
	alts := make([]decision.Alternative, 0, len(rejected))
	for _, a := range rejected {
		alts = append(alts, decision.Alternative{Action: a, Feasible: true})
	}
	s.c.dec.RecordScored(decision.KindRepair, decision.Outcome{
		Chosen:   decision.Alternative{Action: chosen, Feasible: true},
		Rejected: alts,
		Measured: dur.Seconds(),
		Outcome:  outcome,
		Counter:  counter,
		Rank:     -1,
	})
}

// read is a classified read: transient faults retry up to cfg.ReadRetry
// times, permanent faults and corruption return immediately.
func (s *scrubber) read(dev storage.Device, p []byte, off int64) error {
	var err error
	for i := 0; i <= s.cfg.ReadRetry; i++ {
		if err = dev.ReadAt(p, off); err == nil {
			return nil
		}
		if storage.Classify(err) != storage.ClassTransient {
			return err
		}
	}
	return err
}

// --- pointer records --------------------------------------------------------

// scrubRecords verifies both pointer-record locations under recordMu and
// rewrites damaged ones from the engine's published metadata. A location is
// damaged when it is unreadable, or holds bytes that neither decode nor are
// all-zero, or when no location decodes to the durable high-water counter
// (a zeroing fault wiped the current record — all-zero is only "legitimately
// empty" while it does not regress the durable floor).
func (s *scrubber) scrubRecords(t *sweepTally) {
	c := s.c
	c.recordMu.Lock()
	defer c.recordMu.Unlock()
	// The superblock first: it is immutable after format and the engine
	// holds the authoritative copy in memory, so damage (a zeroing fault on
	// sector 0 takes the superblock AND both records with it) is repaired
	// by simply re-persisting it.
	head := make([]byte, 64)
	t.bytes += 64
	herr := s.read(c.dev, head, superOff)
	var onDev superblock
	if herr == nil {
		onDev, herr = decodeSuperblock(head)
	}
	if herr != nil || onDev != c.sb {
		t.found++
		s.note(ScrubRecord{Tier: -1, Slot: -1, Region: RegionSuperblock, Action: ScrubDetected})
		repStart := time.Now()
		if err := c.dev.Persist(c.sb.encode(), superOff); err != nil {
			t.unrepaired++
			s.provenance("rewrite-superblock", []string{"ignore"}, 0, time.Since(repStart), "failed")
		} else {
			t.repaired++
			s.note(ScrubRecord{Tier: -1, Slot: -1, Region: RegionSuperblock, Action: ScrubRepaired})
			s.provenance("rewrite-superblock", []string{"ignore"}, 0, time.Since(repStart), "repaired")
		}
	}

	m := c.checkAddr.Load()
	if m == nil || c.recordHighest == 0 {
		return
	}
	zero := make([]byte, recordSize)
	var bestCtr uint64
	type locState struct {
		off     int64
		damaged bool
		zeroed  bool
	}
	locs := [2]locState{{off: recordAOff}, {off: recordBOff}}
	for i := range locs {
		buf := make([]byte, recordSize)
		t.bytes += recordSize
		if err := s.read(c.dev, buf, locs[i].off); err != nil {
			locs[i].damaged = true
			continue
		}
		if rec, ok := decodeRecord(buf); ok {
			if rec.counter > bestCtr {
				bestCtr = rec.counter
			}
			continue
		}
		if bytes.Equal(buf, zero) {
			locs[i].zeroed = true
		} else {
			locs[i].damaged = true
		}
	}
	floorLost := bestCtr < c.recordHighest
	for _, loc := range locs {
		if !loc.damaged && !(loc.zeroed && floorLost) {
			continue
		}
		t.found++
		s.note(ScrubRecord{Tier: -1, Slot: -1, Region: RegionRecord, Action: ScrubDetected, Counter: c.recordHighest})
		// Repair: the published meta's slot header is always durable before
		// checkAddr stores it, so a record naming it is always legal — and
		// m.counter >= recordHighest, so the floor never regresses.
		repStart := time.Now()
		if err := c.dev.Persist(encodeRecord(*m), loc.off); err != nil {
			t.unrepaired++
			s.provenance("rewrite-record", []string{"ignore"}, m.counter, time.Since(repStart), "failed")
			continue
		}
		t.repaired++
		s.note(ScrubRecord{Tier: -1, Slot: -1, Region: RegionRecord, Action: ScrubRepaired, Counter: m.counter})
		s.provenance("rewrite-record", []string{"ignore"}, m.counter, time.Since(repStart), "repaired")
	}
}

// --- committed slots --------------------------------------------------------

// readVerifiedSlot reads slot m from dev and verifies it well enough to
// trust: the header decodes, is not quarantined, carries the live epoch and
// m's counter/size, the payload CRC holds when present, and a delta record
// decodes. It returns the header and payload.
func readVerifiedSlot(dev storage.Device, sb superblock, m checkMeta, read func(storage.Device, []byte, int64) error) (slotHeader, []byte, error) {
	buf := make([]byte, slotHeaderSize)
	if err := read(dev, buf, slotBase(sb, m.slot)); err != nil {
		return slotHeader{}, nil, err
	}
	hdr, ok := decodeSlotHeader(buf)
	if !ok {
		return slotHeader{}, nil, fmt.Errorf("core: slot %d header corrupt", m.slot)
	}
	if hdr.quarantined() {
		return slotHeader{}, nil, errSlotQuarantined
	}
	if hdr.counter != m.counter || hdr.epoch != sb.epoch || hdr.size != m.size {
		return slotHeader{}, nil, fmt.Errorf("core: slot %d holds counter %d/epoch %d/size %d, expected %d/%d/%d",
			m.slot, hdr.counter, hdr.epoch, hdr.size, m.counter, sb.epoch, m.size)
	}
	payload := make([]byte, m.size)
	if m.size > 0 {
		if err := read(dev, payload, payloadBase(sb, m.slot)); err != nil {
			return slotHeader{}, nil, err
		}
	}
	if hdr.hasCRC {
		if crc32.ChecksumIEEE(payload) != hdr.payloadCRC {
			return slotHeader{}, nil, storage.Corrupt(fmt.Errorf("core: checkpoint %d payload checksum mismatch", m.counter))
		}
	}
	if hdr.kind == slotKindDelta {
		if _, err := decodeDelta(payload); err != nil {
			return slotHeader{}, nil, storage.Corrupt(err)
		}
	}
	return hdr, payload, nil
}

// healthyCopy searches the lower tiers of a tiered device for an intact
// copy of checkpoint m: same slot index (the drainer replays the front
// image verbatim), matching header, verifying payload. Tiers are probed
// nearest-first, so the newest healthy copy wins.
func (s *scrubber) healthyCopy(m checkMeta) (slotHeader, []byte, int, bool) {
	td, ok := s.c.dev.(tieredScrub)
	if !ok {
		return slotHeader{}, nil, 0, false
	}
	levels := td.Tiers()
	active := td.Active()
	for i, dev := range levels {
		if i <= active || dev == nil {
			continue
		}
		hdr, payload, err := readVerifiedSlot(dev, s.c.sb, m, s.read)
		if err == nil {
			return hdr, payload, i, true
		}
	}
	return slotHeader{}, nil, 0, false
}

// quarantineSlot tombstones slot m on dev: a reconstructed header with the
// quarantine flag set replaces whatever is there, so recovery skips the
// slot. The header is rebuilt from the engine's metadata (the on-device one
// may be unreadable).
func quarantineSlot(dev storage.Device, sb superblock, m checkMeta) error {
	hdr := slotHeader{
		counter: m.counter, size: m.size, epoch: sb.epoch,
		kind: m.kind, base: m.base, fullSize: m.fullSize,
		flags: slotFlagQuarantined,
	}
	return dev.Persist(encodeSlotHeader(hdr), slotBase(sb, m.slot))
}

// scrubChain verifies the pinned keyframe→delta chain in delta mode,
// keyframe first. deltaMu is held throughout: chain slots are pinned and
// saves serialize on the same mutex, so damaged links can be rewritten in
// place without racing a writer.
func (s *scrubber) scrubChain(t *sweepTally) {
	c := s.c
	c.deltaMu.Lock()
	defer c.deltaMu.Unlock()
	for _, m := range c.chain {
		_, _, verr := readVerifiedSlot(c.dev, c.sb, m, s.read)
		t.bytes += slotHeaderSize + m.size
		if verr == nil || errors.Is(verr, errSlotQuarantined) {
			continue // healthy, or already tombstoned in an earlier sweep
		}
		t.found++
		s.note(ScrubRecord{Tier: -1, Slot: int32(m.slot), Counter: m.counter, Region: RegionSlot, Action: ScrubDetected})
		repStart := time.Now()
		if hdr, payload, srcTier, ok := s.healthyCopy(m); ok {
			// Payload before header, matching the write protocol: a crash
			// mid-repair leaves a header that fails its CRC against the old
			// payload at worst, which is the state we started from.
			err := c.dev.Persist(payload, payloadBase(c.sb, m.slot))
			if err == nil {
				err = c.dev.Persist(encodeSlotHeader(hdr), slotBase(c.sb, m.slot))
			}
			if err == nil {
				t.repaired++
				s.note(ScrubRecord{Tier: int32(srcTier), Slot: int32(m.slot), Counter: m.counter, Region: RegionSlot, Action: ScrubRepaired})
				s.provenance("rewrite-from-tier", []string{"quarantine", "resync-tier"}, m.counter, time.Since(repStart), "repaired")
				continue
			}
			t.unrepaired++
			s.provenance("rewrite-from-tier", []string{"quarantine"}, m.counter, time.Since(repStart), "failed")
			continue
		}
		// No healthy source anywhere: tombstone the link so recovery falls
		// back past this chain, and force the next save to open a fresh
		// chain with a keyframe — extending a dead chain would pin more
		// saves to unrecoverable state.
		if err := quarantineSlot(c.dev, c.sb, m); err != nil {
			t.unrepaired++
			s.provenance("quarantine", []string{"ignore"}, m.counter, time.Since(repStart), "failed")
			continue
		}
		c.hashes = nil
		t.quarantined++
		s.note(ScrubRecord{Tier: -1, Slot: int32(m.slot), Counter: m.counter, Region: RegionSlot, Action: ScrubQuarantined})
		s.provenance("quarantine", []string{"rewrite-from-tier"}, m.counter, time.Since(repStart), "quarantined")
	}
}

// scrubPublished verifies the published slot in concurrent (non-delta)
// mode. The slot seqlock and checkAddr are sampled around the read so a
// concurrent recycle reads as "stale", never as damage.
func (s *scrubber) scrubPublished(t *sweepTally) {
	c := s.c
	m := c.checkAddr.Load()
	if m == nil {
		return
	}
	s1 := c.slotSeq[m.slot].Load()
	if s1%2 == 1 {
		return // slot being rewritten: m is already superseded
	}
	_, _, verr := readVerifiedSlot(c.dev, c.sb, *m, s.read)
	if c.slotSeq[m.slot].Load() != s1 || c.checkAddr.Load() != m {
		return // recycled or superseded mid-verify: stale, not damage
	}
	t.bytes += slotHeaderSize + m.size
	if verr == nil || errors.Is(verr, errSlotQuarantined) {
		return
	}
	t.found++
	s.note(ScrubRecord{Tier: -1, Slot: int32(m.slot), Counter: m.counter, Region: RegionSlot, Action: ScrubDetected})
	repStart := time.Now()
	if hdr, payload, srcTier, ok := s.healthyCopy(*m); ok {
		switch err := s.republish(m, hdr, payload); {
		case err == nil:
			t.repaired++
			s.note(ScrubRecord{Tier: int32(srcTier), Slot: int32(m.slot), Counter: m.counter, Region: RegionSlot, Action: ScrubRepaired})
			s.provenance("republish-from-tier", []string{"quarantine", "rewrite-in-place"}, m.counter, time.Since(repStart), "repaired")
		case errors.Is(err, errRepairSuperseded):
			// A newer checkpoint published while we repaired: the damaged
			// slot is no longer referenced and rejoins the pool through the
			// normal supersede path. Damage contained, nothing to count.
			t.repaired++
			s.provenance("republish-from-tier", nil, m.counter, time.Since(repStart), "superseded")
		default:
			t.unrepaired++
			s.provenance("republish-from-tier", []string{"quarantine"}, m.counter, time.Since(repStart), "failed")
		}
		return
	}
	// No healthy source: tombstone in place. The seqlock goes odd around
	// the header write so concurrent readers retry instead of tearing, then
	// read the tombstone and fail classified-corrupt — never garbage.
	c.slotSeq[m.slot].Add(1)
	err := quarantineSlot(c.dev, c.sb, *m)
	c.slotSeq[m.slot].Add(1)
	if err != nil {
		t.unrepaired++
		s.provenance("quarantine", []string{"ignore"}, m.counter, time.Since(repStart), "failed")
		return
	}
	t.quarantined++
	s.note(ScrubRecord{Tier: -1, Slot: int32(m.slot), Counter: m.counter, Region: RegionSlot, Action: ScrubQuarantined})
	s.provenance("quarantine", []string{"republish-from-tier"}, m.counter, time.Since(repStart), "quarantined")
}

// errRepairSuperseded reports that a newer publication landed while a
// repair was in flight; the damage is moot.
var errRepairSuperseded = errors.New("core: repair superseded by a newer checkpoint")

// republish moves the damaged published checkpoint into a fresh slot
// rewritten from a healthy copy, then forces the pointer record to the new
// location. In-place repair is deliberately not attempted in concurrent
// mode: the damaged slot can be recycled by a racing save the instant a
// newer checkpoint publishes, and a scrubber write would then corrupt the
// new occupant.
func (s *scrubber) republish(old *checkMeta, hdr slotHeader, payload []byte) error {
	c := s.c
	slot, ok := c.freeSpace.Deq()
	if !ok {
		return errors.New("core: no free slot for repair")
	}
	c.slotSeq[slot].Add(1)
	nh := hdr
	nh.flags = 0
	err := c.dev.Persist(payload, payloadBase(c.sb, slot))
	if err == nil {
		err = c.dev.Persist(encodeSlotHeader(nh), slotBase(c.sb, slot))
	}
	c.slotSeq[slot].Add(1)
	if err != nil {
		c.freeSpace.Enq(slot)
		return err
	}
	nm := &checkMeta{slot: slot, counter: old.counter, size: old.size, kind: old.kind, base: old.base, fullSize: old.fullSize}
	if !c.checkAddr.CompareAndSwap(old, nm) {
		c.freeSpace.Enq(slot)
		return errRepairSuperseded
	}
	if err := c.forceRecord(context.Background(), *nm); err != nil {
		// The durable record may still name the damaged slot; park it until
		// a newer record lands. The in-memory publish stands — readers are
		// already served from the healthy copy.
		c.deferFree(old.slot)
		return err
	}
	c.freeSpace.Enq(old.slot)
	return nil
}

// --- black box --------------------------------------------------------------

// scrubBlackBox verifies the telemetry region header. Frames are left to
// the flusher (it overwrites them in sequence anyway, and verifying a slot
// mid-append would read torn frames as damage).
func (s *scrubber) scrubBlackBox(t *sweepTally) {
	c := s.c
	if c.sb.blackBoxBytes <= 0 {
		return
	}
	t.bytes += blackbox.SectorBytes
	if err := blackbox.CheckHeader(c.dev, blackBoxBase(c.sb), c.sb.blackBoxBytes, c.sb.epoch); err == nil {
		return
	}
	t.found++
	s.note(ScrubRecord{Tier: -1, Slot: -1, Region: RegionBlackBox, Action: ScrubDetected})
	repStart := time.Now()
	if c.bbox == nil {
		t.unrepaired++ // no journal open: nothing holds the true layout
		return
	}
	if err := c.bbox.RepairHeader(); err != nil {
		t.unrepaired++
		s.provenance("rewrite-blackbox-header", []string{"ignore"}, 0, time.Since(repStart), "failed")
		return
	}
	t.repaired++
	s.note(ScrubRecord{Tier: -1, Slot: -1, Region: RegionBlackBox, Action: ScrubRepaired})
	s.provenance("rewrite-blackbox-header", []string{"ignore"}, 0, time.Since(repStart), "repaired")
}

// --- lower tiers ------------------------------------------------------------

// scrubTiers verifies each lower tier's self-contained image against its
// durable watermark: the tier must recover a checkpoint at least as new as
// what the drainer acknowledged to it, with every CRC intact. Damage is
// healed by scheduling a full resync from the front — targeted writes into
// a lower tier would interleave with the drainer's journal replay, while
// the resync path is ordered by construction. Tiers mid-drain or mid-resync
// are skipped (their images are legitimately in flux).
func (s *scrubber) scrubTiers(t *sweepTally) {
	td, ok := s.c.dev.(tieredScrub)
	if !ok {
		return
	}
	levels := td.Tiers()
	sts := td.Status()
	active := td.Active()
	// A tier is measured against what the front can actually provide, not
	// the raw watermark: after a quarantine the front's best recoverable
	// checkpoint legitimately trails the watermark, and a tier matching the
	// front needs no resync. And when the front itself cannot recover
	// anything, no tier is resynced at all — a lower tier may then be the
	// last good copy, and a resync would replicate the broken image over it.
	var frontCtr uint64
	if active >= 0 && active < len(levels) && levels[active] != nil {
		if _, fc, err := recoverDevice(levels[active]); err == nil {
			frontCtr = fc
		}
	}
	for i, dev := range levels {
		if i <= active || dev == nil || i >= len(sts) {
			continue
		}
		st := sts[i]
		if st.Failed || st.Resyncing || st.PendingOps > 0 {
			continue
		}
		want := st.DurableCounter
		if frontCtr < want {
			want = frontCtr
		}
		if want == 0 {
			continue // nothing acknowledged here, or no healthy repair source
		}
		payload, ctr, err := recoverDevice(dev)
		t.bytes += int64(len(payload)) // what the verification actually read
		if err == nil && ctr >= want {
			continue
		}
		t.found++
		s.note(ScrubRecord{Tier: int32(i), Slot: -1, Counter: st.DurableCounter, Region: RegionTier, Action: ScrubDetected})
		repStart := time.Now()
		if td.ScheduleResync(i) {
			t.resyncs++
			s.note(ScrubRecord{Tier: int32(i), Slot: -1, Counter: st.DurableCounter, Region: RegionTier, Action: ScrubResynced})
			s.provenance("resync-tier", []string{"rewrite-slot-in-place", "quarantine"}, st.DurableCounter, time.Since(repStart), "resynced")
		} else {
			t.unrepaired++
			s.provenance("resync-tier", []string{"ignore"}, st.DurableCounter, time.Since(repStart), "failed")
		}
	}
}
