// Package core implements PCcheck's concurrent checkpointing engine — the
// paper's primary contribution (§4).
//
// The engine keeps N+1 checkpoint slots on a persistent device. Up to N
// checkpoints may be in flight concurrently; the (N+1)-th slot always holds
// the latest fully persisted checkpoint, which is never in the free queue
// and therefore can never be overwritten. Coordination follows Listing 1 of
// the paper:
//
//   - a global atomic counter orders checkpoint attempts;
//   - a lock-free queue (internal/lfqueue) hands out free slots;
//   - each checkpoint writes its payload with p parallel writer goroutines,
//     optionally pipelined through bounded DRAM chunks
//     (internal/chunkpool);
//   - after payload and per-slot metadata are durable, the checkpointer
//     CASes the in-memory CHECK_ADDR from the value it sampled *before*
//     taking its counter, persists the new pointer, and only then releases
//     the previous checkpoint's slot.
//
// A failed CAS means a concurrent checkpoint won the race: if the winner is
// newer, this checkpoint is obsolete — its slot is recycled without ever
// being published; if the winner is older, the CAS retries with the fresher
// expected value. Either way the persistent pointer always moves to strictly
// increasing counters, which is the durability invariant the crash-injection
// tests verify.
//
// Device layout (all offsets in bytes):
//
//	0    superblock: magic, version, slot count, slot capacity
//	64   pointer record A ┐ dual records; the valid one with the highest
//	128  pointer record B ┘ counter identifies the latest checkpoint
//	256  slot 0: 64-byte slot header (counter, size, CRCs) + payload
//	...  slot i at 256 + i·(64+slotCap)
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"pccheck/internal/obs"
	"pccheck/internal/obs/blackbox"
)

const (
	superMagic    = 0x5043434b // "PCCK"
	formatVersion = 1

	superOff   = 0
	recordAOff = 64
	recordBOff = 128
	headerSize = 256

	slotHeaderSize = 64
	recordSize     = 28 // counter u64 + slot u32 + size u64 + crc u32 + pad
)

// Errors returned by the engine.
var (
	// ErrNoCheckpoint means the device holds no fully persisted checkpoint.
	ErrNoCheckpoint = errors.New("core: no persisted checkpoint")
	// ErrTooLarge means a payload exceeds the slot capacity.
	ErrTooLarge = errors.New("core: payload exceeds slot capacity")
	// ErrNotFormatted means the device does not carry a PCcheck superblock.
	ErrNotFormatted = errors.New("core: device not formatted")
	// ErrClosed means the checkpointer has been closed.
	ErrClosed = errors.New("core: checkpointer closed")
	// ErrBufferTooSmall means a caller-supplied buffer cannot hold the
	// checkpoint — retry with a buffer sized from a fresh Latest().
	ErrBufferTooSmall = errors.New("core: buffer too small for checkpoint")
)

// Config sizes the engine. The zero value is not usable; see New.
type Config struct {
	// Concurrent is N, the number of checkpoints that may be in flight at
	// once. The device must hold N+1 slots (§3.2).
	Concurrent int
	// SlotBytes is the slot capacity m — the maximum checkpoint payload.
	SlotBytes int64
	// Writers is p, the number of parallel writer goroutines per
	// checkpoint. Defaults to 1.
	Writers int
	// ChunkBytes is b, the DRAM staging chunk size for the pipelined path.
	// Zero disables pipelining: each checkpoint stages through a single
	// slot-sized buffer.
	ChunkBytes int
	// DRAMBudget is M, the total staging DRAM. The pool holds
	// DRAMBudget/ChunkBytes chunks (at least one). Zero defaults to
	// 2×SlotBytes, the paper's default (§5.2.1).
	DRAMBudget int64
	// VerifyPayload adds a CRC32 over each payload, checked on read.
	VerifyPayload bool
	// PerWriterBW paces each writer goroutine to this many bytes/sec
	// (0 = unpaced). Device-level pacing belongs to the Device itself.
	PerWriterBW float64
	// Retry governs how transient device faults are retried on the
	// persist path. The zero value retries nothing.
	Retry RetryPolicy
	// Observer, when non-nil, receives a structured lifecycle event for
	// every phase of every checkpoint: slot wait, per-chunk staging copy,
	// per-writer persist span, sync, pointer-record barrier, CAS publish
	// or obsolete outcome, and retry/backoff. Emit is called from the
	// persist hot path (writer goroutines, the publish loop), so
	// implementations must be concurrency-safe and non-blocking —
	// obs.Recorder is. A nil Observer costs one predictable branch per
	// probe and zero allocations.
	Observer obs.Observer
	// Scrub configures the background integrity scrubber (see scrub.go):
	// periodic CRC verification of the committed slots, pointer records,
	// black-box header and lower-tier copies, with cross-tier self-healing.
	// The zero value disables the background goroutine; ScrubNow still
	// sweeps on demand.
	Scrub ScrubConfig
	// DeltaEvery enables incremental checkpointing: every DeltaEvery-th
	// save is encoded as a delta against the previous checkpoint (1 =
	// every save, 0 = deltas disabled). Setting it without DeltaKeyframe
	// selects a keyframe cadence of 8.
	DeltaEvery int
	// DeltaKeyframe is K, the maximum run of consecutive deltas before a
	// full keyframe is forced, bounding recovery to one keyframe plus at
	// most K delta applications. A positive value formats the device with
	// K extra slots (the keyframe→delta chain stays pinned on top of the
	// N+1 working set). Setting it without DeltaEvery selects DeltaEvery=1.
	DeltaKeyframe int
	// BlackBox, when enabled (Bytes > 0), reserves a crash-surviving
	// telemetry region after the slot area and runs a background flusher
	// that snapshots the flight ring, the goodput report, and the
	// decision-trace tail into CRC-framed, epoch-stamped frames (see
	// internal/obs/blackbox). The flusher only starts when Observer
	// carries a flight recorder; it never touches the Emit hot path.
	BlackBox blackbox.Config
}

func (c Config) withDefaults() Config {
	if c.Writers < 1 {
		c.Writers = 1
	}
	if c.ChunkBytes <= 0 || int64(c.ChunkBytes) > c.SlotBytes {
		c.ChunkBytes = int(c.SlotBytes)
	}
	if c.DRAMBudget <= 0 {
		c.DRAMBudget = 2 * c.SlotBytes
	}
	c = c.deltaDefaults()
	c.Retry = c.Retry.withDefaults()
	return c
}

// deltaDefaults normalizes the delta pair: either knob implies the other.
func (c Config) deltaDefaults() Config {
	if c.DeltaEvery > 0 && c.DeltaKeyframe <= 0 {
		c.DeltaKeyframe = 8
	}
	if c.DeltaKeyframe > 0 && c.DeltaEvery <= 0 {
		c.DeltaEvery = 1
	}
	return c
}

func (c Config) validate() error {
	if c.Concurrent < 1 {
		return fmt.Errorf("core: need at least 1 concurrent checkpoint, got %d", c.Concurrent)
	}
	if c.SlotBytes <= 0 {
		return fmt.Errorf("core: slot capacity must be positive, got %d", c.SlotBytes)
	}
	if c.DeltaEvery < 0 || c.DeltaKeyframe < 0 {
		return fmt.Errorf("core: delta knobs must be non-negative, got every=%d keyframe=%d", c.DeltaEvery, c.DeltaKeyframe)
	}
	return nil
}

// slotStride is the device footprint of one slot.
func slotStride(slotBytes int64) int64 {
	s := slotHeaderSize + slotBytes
	if rem := s % 64; rem != 0 {
		s += 64 - rem
	}
	return s
}

// DeviceBytes returns the device capacity required for a configuration —
// (N+1)·(header+m) plus the engine header — matching the paper's
// (N+1)×m storage footprint (Table 1).
func DeviceBytes(concurrent int, slotBytes int64) int64 {
	return headerSize + int64(concurrent+1)*slotStride(slotBytes)
}

// DeviceBytesFor returns the device capacity a full Config requires. Delta
// mode adds K slots on top of the N+1 working set so the pinned
// keyframe→delta chain never starves concurrent checkpoints of free slots;
// an enabled BlackBox appends its sector-aligned telemetry region after
// the slot area.
func DeviceBytesFor(cfg Config) int64 {
	cfg = cfg.deltaDefaults()
	n := headerSize + int64(cfg.Concurrent+1+cfg.DeltaKeyframe)*slotStride(cfg.SlotBytes)
	if cfg.BlackBox.Enabled() {
		n = alignSector(n) + cfg.BlackBox.Layout().RegionBytes()
	}
	return n
}

// alignSector rounds n up to the black-box sector size, so the telemetry
// region never shares a sector with the last slot.
func alignSector(n int64) int64 {
	if rem := n % blackbox.SectorBytes; rem != 0 {
		n += blackbox.SectorBytes - rem
	}
	return n
}

// Slot payload kinds. A delta slot's payload is a delta record (see
// delta.go) against the checkpoint identified by the header's baseCounter.
const (
	slotKindFull  = 0
	slotKindDelta = 1
)

// Slot header flag bits. A quarantined slot is a tombstone the scrubber
// leaves when a committed copy is damaged beyond repair (no healthy tier or
// replica to rewrite it from): recovery skips the slot entirely and falls
// back to the other pointer record, so corrupt bytes are never served. The
// flag lives in the CRC-covered header, and a writer reusing the slot
// clears it implicitly — every fresh header is written with flags 0.
const slotFlagQuarantined uint8 = 1 << 0

// checkMeta mirrors the paper's Check_meta class: which slot holds the data
// and the checkpoint's global order. For delta checkpoints, size is the
// stored record length; fullSize is the logical payload length after
// applying the chain.
type checkMeta struct {
	slot     int
	counter  uint64
	size     int64
	kind     uint8
	base     uint64 // counter of the chain predecessor (delta only)
	fullSize int64  // logical payload size (delta only)
}

// logicalSize is the payload length a reader sees: the reconstructed size
// for deltas, the stored size otherwise.
func (m checkMeta) logicalSize() int64 {
	if m.kind == slotKindDelta {
		return m.fullSize
	}
	return m.size
}

// --- superblock -----------------------------------------------------------

type superblock struct {
	slots     int // N+1
	slotBytes int64
	// epoch identifies one format generation: New stamps a fresh value into
	// the superblock and every slot header written under it. Recovery rejects
	// slot headers whose epoch differs from the superblock's, so a reformat
	// can never resurrect payloads persisted under a previous image — slot
	// headers left intact by the old image carry the old epoch. Epoch 0 is
	// the legacy value of pre-epoch images (headers and superblock agree at
	// 0, so they keep recovering).
	epoch uint64
	// deltaKeyframe is K when the device was formatted for delta
	// checkpointing (K of the slots are reserved for the pinned chain), 0
	// for a plain device. Pre-delta images decode as 0, so the format
	// version is unchanged.
	deltaKeyframe int
	// blackBoxBytes is the size of the crash-surviving telemetry region
	// reserved after the slot area, 0 when the device was formatted
	// without one. Pre-forensics images decode as 0, so the format
	// version is unchanged.
	blackBoxBytes int64
}

func (sb superblock) encode() []byte {
	buf := make([]byte, 64)
	binary.LittleEndian.PutUint32(buf[0:], superMagic)
	binary.LittleEndian.PutUint32(buf[4:], formatVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(sb.slots))
	binary.LittleEndian.PutUint64(buf[16:], uint64(sb.slotBytes))
	binary.LittleEndian.PutUint64(buf[24:], sb.epoch)
	binary.LittleEndian.PutUint32(buf[32:], uint32(sb.deltaKeyframe))
	binary.LittleEndian.PutUint64(buf[40:], uint64(sb.blackBoxBytes))
	binary.LittleEndian.PutUint32(buf[60:], crc32.ChecksumIEEE(buf[:60]))
	return buf
}

func decodeSuperblock(buf []byte) (superblock, error) {
	if len(buf) < 64 {
		return superblock{}, ErrNotFormatted
	}
	if binary.LittleEndian.Uint32(buf[0:]) != superMagic {
		return superblock{}, ErrNotFormatted
	}
	if binary.LittleEndian.Uint32(buf[60:]) != crc32.ChecksumIEEE(buf[:60]) {
		return superblock{}, fmt.Errorf("core: superblock checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != formatVersion {
		return superblock{}, fmt.Errorf("core: unsupported format version %d", v)
	}
	sb := superblock{
		slots:         int(binary.LittleEndian.Uint32(buf[8:])),
		slotBytes:     int64(binary.LittleEndian.Uint64(buf[16:])),
		epoch:         binary.LittleEndian.Uint64(buf[24:]),
		deltaKeyframe: int(binary.LittleEndian.Uint32(buf[32:])),
		blackBoxBytes: int64(binary.LittleEndian.Uint64(buf[40:])),
	}
	if sb.slots < 2 || sb.slotBytes <= 0 {
		return superblock{}, fmt.Errorf("core: implausible superblock: %d slots of %d bytes", sb.slots, sb.slotBytes)
	}
	if sb.deltaKeyframe < 0 || sb.slots-1-sb.deltaKeyframe < 1 {
		return superblock{}, fmt.Errorf("core: implausible superblock: %d slots with keyframe cadence %d", sb.slots, sb.deltaKeyframe)
	}
	if sb.blackBoxBytes < 0 {
		return superblock{}, fmt.Errorf("core: implausible superblock: black box region of %d bytes", sb.blackBoxBytes)
	}
	return sb, nil
}

// --- pointer records --------------------------------------------------------

// encodeRecord serializes a pointer record. A record is self-validating
// (CRC) so recovery can detect torn writes and fall back to the other copy.
func encodeRecord(meta checkMeta) []byte {
	buf := make([]byte, recordSize)
	binary.LittleEndian.PutUint64(buf[0:], meta.counter)
	binary.LittleEndian.PutUint32(buf[8:], uint32(meta.slot))
	binary.LittleEndian.PutUint64(buf[12:], uint64(meta.size))
	binary.LittleEndian.PutUint32(buf[24:], crc32.ChecksumIEEE(buf[:24]))
	return buf
}

func decodeRecord(buf []byte) (checkMeta, bool) {
	if len(buf) < recordSize {
		return checkMeta{}, false
	}
	if binary.LittleEndian.Uint32(buf[24:]) != crc32.ChecksumIEEE(buf[:24]) {
		return checkMeta{}, false
	}
	m := checkMeta{
		counter: binary.LittleEndian.Uint64(buf[0:]),
		slot:    int(binary.LittleEndian.Uint32(buf[8:])),
		size:    int64(binary.LittleEndian.Uint64(buf[12:])),
	}
	if m.counter == 0 {
		return checkMeta{}, false // counter 0 is "never written"
	}
	return m, true
}

// --- slot headers -----------------------------------------------------------

type slotHeader struct {
	counter    uint64
	size       int64
	payloadCRC uint32
	hasCRC     bool
	// epoch is the format generation the header was written under; recovery
	// only trusts headers whose epoch matches the superblock's.
	epoch uint64
	// kind distinguishes full payloads from delta records. Delta headers
	// also carry the chain predecessor's counter and the logical payload
	// size. Pre-delta headers decode with zeros, i.e. as full payloads.
	kind     uint8
	base     uint64
	fullSize int64
	// flags carries slot state bits (slotFlagQuarantined). Pre-scrub
	// headers decode with zero flags, so old images are unaffected.
	flags uint8
}

// quarantined reports whether the header is a scrubber tombstone.
func (h slotHeader) quarantined() bool { return h.flags&slotFlagQuarantined != 0 }

func encodeSlotHeader(h slotHeader) []byte {
	buf := make([]byte, slotHeaderSize)
	binary.LittleEndian.PutUint64(buf[0:], h.counter)
	binary.LittleEndian.PutUint64(buf[8:], uint64(h.size))
	binary.LittleEndian.PutUint32(buf[16:], h.payloadCRC)
	if h.hasCRC {
		buf[20] = 1
	}
	buf[21] = h.kind
	buf[22] = h.flags
	binary.LittleEndian.PutUint64(buf[24:], h.epoch)
	binary.LittleEndian.PutUint64(buf[32:], h.base)
	binary.LittleEndian.PutUint64(buf[40:], uint64(h.fullSize))
	binary.LittleEndian.PutUint32(buf[60:], crc32.ChecksumIEEE(buf[:60]))
	return buf
}

func decodeSlotHeader(buf []byte) (slotHeader, bool) {
	if len(buf) < slotHeaderSize {
		return slotHeader{}, false
	}
	if binary.LittleEndian.Uint32(buf[60:]) != crc32.ChecksumIEEE(buf[:60]) {
		return slotHeader{}, false
	}
	return slotHeader{
		counter:    binary.LittleEndian.Uint64(buf[0:]),
		size:       int64(binary.LittleEndian.Uint64(buf[8:])),
		payloadCRC: binary.LittleEndian.Uint32(buf[16:]),
		hasCRC:     buf[20] == 1,
		kind:       buf[21],
		flags:      buf[22],
		epoch:      binary.LittleEndian.Uint64(buf[24:]),
		base:       binary.LittleEndian.Uint64(buf[32:]),
		fullSize:   int64(binary.LittleEndian.Uint64(buf[40:])),
	}, true
}

// slotBase returns the device offset of slot i's header.
func slotBase(sb superblock, i int) int64 {
	return headerSize + int64(i)*slotStride(sb.slotBytes)
}

// payloadBase returns the device offset of slot i's payload.
func payloadBase(sb superblock, i int) int64 {
	return slotBase(sb, i) + slotHeaderSize
}

// blackBoxBase returns the device offset of the black-box telemetry
// region: sector-aligned, after the last slot.
func blackBoxBase(sb superblock) int64 {
	return alignSector(headerSize + int64(sb.slots)*slotStride(sb.slotBytes))
}
