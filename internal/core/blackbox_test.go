package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"pccheck/internal/obs"
	"pccheck/internal/obs/blackbox"
	"pccheck/internal/obs/decision"
	"pccheck/internal/storage"
)

// TestBlackBoxCrashSweep is the forensic acceptance test: crash cuts at
// every op boundary (plus sampled torn/reordered schedules) of black-box
// workloads, each asserting — on top of the §4.1 durability invariant —
// that the telemetry region decodes to a CRC-valid, strictly monotonic
// frame tail whose newest frame belongs to a flush started before the
// cut, non-empty whenever a flush fully completed. The full matrix runs
// as `pccheck-bench -crash` and in the forensics-matrix CI job.
func TestBlackBoxCrashSweep(t *testing.T) {
	workloads := []CrashWorkload{
		{Kind: storage.KindPMEM, Concurrent: 1, BlackBox: true, Seed: 11},
		{Kind: storage.KindSSD, Concurrent: 2, ChunkBytes: 1024, VerifyPayload: true, BlackBox: true, Seed: 12},
		{Kind: storage.KindPMEM, Concurrent: 1, DeltaEvery: 1, DeltaKeyframe: 2, Checkpoints: 6, BlackBox: true, Seed: 13},
	}
	samples := 200
	if testing.Short() {
		samples = 40
	}
	for _, w := range workloads {
		w := w
		t.Run(strings.ReplaceAll(w.String(), " ", "_"), func(t *testing.T) {
			t.Parallel()
			res, err := ExploreCrashes(CrashExploreOptions{Workload: w, Samples: samples})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
			if res.CrashPoints < 20 {
				t.Fatalf("only %d crash points — workload too small to mean anything", res.CrashPoints)
			}
			if res.Recovered == 0 {
				t.Fatal("no case recovered a checkpoint — assertions never engaged")
			}
		})
	}
}

// bbChain builds the production observer chain the black box feeds on.
func bbChain() obs.Observer {
	return obs.NewLedger(obs.LedgerConfig{SlowdownBudget: 1.05},
		decision.New(decision.Config{}, obs.NewRecorder(1<<10)))
}

var bbTestConfig = blackbox.Config{
	Bytes:      blackbox.SectorBytes + 8*4096,
	FrameBytes: 4096,
	FlushEvery: -1, // explicit flushes: deterministic tests
}

// TestPostMortemRoundTrip: checkpoints + an explicit flush leave a black
// box whose newest frame carries the flight-ring tail, the goodput
// report, and decisions; PostMortem surfaces them after "recovery" (the
// engine is gone, only the device remains).
func TestPostMortemRoundTrip(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 2048, Observer: bbChain(), BlackBox: bbTestConfig}
	dev := storage.NewRAM(DeviceBytesFor(cfg))
	eng, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Checkpoint(context.Background(), BytesSource(payload(int64(i+1), 1024))); err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
	}
	seq, err := eng.FlushBlackBox()
	if err != nil {
		t.Fatalf("FlushBlackBox: %v", err)
	}
	if seq != 1 {
		t.Fatalf("first flush seq = %d, want 1", seq)
	}

	pm, err := PostMortem(dev)
	if err != nil {
		t.Fatalf("PostMortem: %v", err)
	}
	if pm.LastSeq() != 1 || len(pm.Frames) != 1 {
		t.Fatalf("post mortem has %d frames last seq %d, want 1/1", len(pm.Frames), pm.LastSeq())
	}
	newest := pm.Newest()
	if len(newest.Events) == 0 {
		t.Fatal("newest frame captured no events")
	}
	var sawPublish bool
	for _, ev := range newest.Events {
		if ev.Phase == obs.PhasePublish {
			sawPublish = true
		}
	}
	if !sawPublish {
		t.Fatal("newest frame's event tail has no publish event")
	}
	if rep, ok := pm.LastReport(); !ok {
		t.Fatal("no goodput report survived")
	} else if rep.LastPublishedCounter != 3 {
		t.Fatalf("report's last published counter = %d, want 3", rep.LastPublishedCounter)
	}
}

// TestPostMortemLegacyDevice: a device formatted without a black box
// (the pre-forensics layout) still checkpoints, recovers, and reports
// ErrNoRegion — never an I/O or decode error — from PostMortem.
func TestPostMortemLegacyDevice(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 1024}
	dev := storage.NewRAM(DeviceBytesFor(cfg))
	eng, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(context.Background(), BytesSource(payload(7, 512))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dev); err != nil {
		t.Fatalf("legacy device must still recover: %v", err)
	}
	if _, err := PostMortem(dev); !errors.Is(err, blackbox.ErrNoRegion) {
		t.Fatalf("PostMortem on legacy device = %v, want ErrNoRegion", err)
	}
}

// TestFlushBlackBoxWithoutRegion: FlushBlackBox on an engine without a
// black box is a no-op, not an error.
func TestFlushBlackBoxWithoutRegion(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 1024}
	dev := storage.NewRAM(DeviceBytesFor(cfg))
	eng, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := eng.FlushBlackBox(); seq != 0 || err != nil {
		t.Fatalf("FlushBlackBox without region = (%d, %v), want (0, nil)", seq, err)
	}
	if eng.BlackBox() != nil {
		t.Fatal("BlackBox() non-nil without a region")
	}
}

// TestPostMortemJournalResumesAcrossReopen: after a restart (Open), new
// flushes extend the pre-crash sequence instead of overwriting it, so a
// merged forensic timeline stays monotonic across the crash boundary.
func TestPostMortemJournalResumesAcrossReopen(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 2048, Observer: bbChain(), BlackBox: bbTestConfig}
	dev := storage.NewRAM(DeviceBytesFor(cfg))
	eng, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(context.Background(), BytesSource(payload(1, 800))); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.FlushBlackBox(); err != nil {
		t.Fatal(err)
	}
	// "Crash": drop the engine without Close, re-open the device.
	eng2, err := Open(dev, Config{Observer: bbChain(), BlackBox: bbTestConfig})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := eng2.Checkpoint(context.Background(), BytesSource(payload(2, 800))); err != nil {
		t.Fatal(err)
	}
	seq, err := eng2.FlushBlackBox()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("post-reopen flush seq = %d, want 2 (resume after pre-crash tail)", seq)
	}
	pm, err := PostMortem(dev)
	if err != nil {
		t.Fatal(err)
	}
	if pm.LastSeq() != 2 || len(pm.Frames) != 2 {
		t.Fatalf("merged tail has %d frames last seq %d, want 2/2", len(pm.Frames), pm.LastSeq())
	}
}

// TestCheckCrashBlackBoxDetects: the sweep's telemetry checker is not
// vacuous — it flags a wiped region after a completed flush, and flags
// telemetry "from the future" (a frame no flush before the cut wrote).
func TestCheckCrashBlackBoxDetects(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 2048, Observer: bbChain(), BlackBox: bbTestConfig}
	dev := storage.NewRAM(DeviceBytesFor(cfg))
	eng, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(context.Background(), BytesSource(payload(1, 900))); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.FlushBlackBox(); err != nil {
		t.Fatal(err)
	}

	// The real frame is durable but the bookkeeping says no flush started
	// before the cut: the checker must call it fabricated.
	if msg := checkCrashBlackBox(dev, nil, 10); !strings.Contains(msg, "fabricated") {
		t.Fatalf("future telemetry not flagged, got %q", msg)
	}

	// Bookkeeping says flush 1 completed at op 5 but the region is wiped:
	// the checker must call it lost.
	wiped := storage.NewRAM(dev.Size())
	buf := make([]byte, dev.Size())
	if err := dev.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := wiped.WriteAt(buf[:256], 0); err != nil { // superblock survives, region does not
		t.Fatal(err)
	}
	marks := []bbFlushMark{{seq: 1, startOp: 3, endOp: 5}}
	if msg := checkCrashBlackBox(wiped, marks, 10); msg == "" {
		t.Fatal("lost durable telemetry not flagged")
	}
}

// TestPostMortemFromReplicaAfterTier0Loss: the black box rides the
// tiered drainer like any other region, so when tier 0 vanishes the
// replica answers forensics.
func TestPostMortemFromReplicaAfterTier0Loss(t *testing.T) {
	cfg := Config{Concurrent: 1, SlotBytes: 2048, Observer: bbChain(), BlackBox: bbTestConfig}
	size := DeviceBytesFor(cfg)
	tier0 := storage.NewRAM(size)
	tier1 := storage.NewRAM(size)
	tiered, err := storage.NewTiered([]storage.Device{tier0, tier1},
		storage.WithDrainInterval(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()
	eng, err := New(tiered, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := eng.Checkpoint(context.Background(), BytesSource(payload(int64(i+1), 1024))); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.FlushBlackBox(); err != nil {
			t.Fatal(err)
		}
	}
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge")
	}
	eng.Close()

	// Lose tier 0 directly (bypassing the tiered device, which would
	// replicate the wipe).
	zero := make([]byte, tier0.Size())
	if err := tier0.WriteAt(zero, 0); err != nil {
		t.Fatal(err)
	}

	pm, err := PostMortem(tiered) // TierReader dispatch, like Recover
	if err != nil {
		t.Fatalf("PostMortem after tier-0 loss: %v", err)
	}
	// Close wrote one final frame after the two explicit flushes.
	if pm.LastSeq() < 2 {
		t.Fatalf("replica's black box last seq = %d, want >= 2", pm.LastSeq())
	}
	if len(pm.Newest().Events) == 0 {
		t.Fatal("replica's newest frame has no events")
	}
}
