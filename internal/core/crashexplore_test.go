package core

import (
	"strings"
	"testing"

	"pccheck/internal/storage"
)

// TestCrashExplorerFastMode is the bounded in-tree slice of the crash sweep:
// a representative corner of the kind × N × chunking × verify matrix, every
// op boundary of each workload, plus enough sampled torn/reordered
// cache-loss schedules to exceed the sweep's 1000-variant floor. The full
// matrix runs as `pccheck-bench -crash` and in the crash-matrix CI job.
func TestCrashExplorerFastMode(t *testing.T) {
	workloads := []CrashWorkload{
		{Kind: storage.KindPMEM, Concurrent: 2, ChunkBytes: 1024, VerifyPayload: true, Seed: 1},
		{Kind: storage.KindSSD, Concurrent: 2, ChunkBytes: 1024, VerifyPayload: true, Seed: 2},
		{Kind: storage.KindSSD, Concurrent: 1, VerifyPayload: false, Seed: 3},
		{Kind: storage.KindPMEM, Concurrent: 4, VerifyPayload: false, ChunkBytes: 512, Seed: 4},
	}
	samples := 300
	if testing.Short() {
		samples = 50
	}
	totalSamples := 0
	for _, w := range workloads {
		w := w
		t.Run(strings.ReplaceAll(w.String(), " ", "_"), func(t *testing.T) {
			t.Parallel()
			res, err := ExploreCrashes(CrashExploreOptions{Workload: w, Samples: samples})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
			if res.CrashPoints < 20 {
				t.Fatalf("only %d crash points — workload too small to mean anything", res.CrashPoints)
			}
			if res.Recovered == 0 {
				t.Fatal("no case recovered a checkpoint — assertions never engaged")
			}
			if res.Reattached == 0 {
				t.Fatal("re-attach probe never ran")
			}
			if res.Acked != w.withDefaults().Goroutines*w.withDefaults().Checkpoints {
				t.Fatalf("workload acked %d checkpoints, want %d", res.Acked,
					w.withDefaults().Goroutines*w.withDefaults().Checkpoints)
			}
		})
		totalSamples += samples
	}
	if !testing.Short() && totalSamples < 1000 {
		t.Fatalf("fast mode samples %d < 1000 floor", totalSamples)
	}
}

// TestCrashExplorerStride: a strided sweep still visits the final boundary
// region and stays within its budget — the knob the race-detector job uses.
func TestCrashExplorerStride(t *testing.T) {
	res, err := ExploreCrashes(CrashExploreOptions{
		Workload: CrashWorkload{Kind: storage.KindSSD, Concurrent: 1, VerifyPayload: true, Seed: 9},
		Stride:   5,
		Samples:  20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatal(res.Violations[0])
	}
	if res.CrashPoints > res.Ops/5+2 {
		t.Fatalf("stride not applied: %d crash points for %d ops", res.CrashPoints, res.Ops)
	}
}

// TestCrashSweepConfigsCoverMatrix: the sweep matrix spans both device
// kinds, N ∈ {1,2,4}, chunked and unchunked, verify on and off, plus delta
// workloads (tracked and hash-fallback) and black-box telemetry workloads
// per kind.
func TestCrashSweepConfigsCoverMatrix(t *testing.T) {
	cfgs := CrashSweepConfigs(1)
	if len(cfgs) != 36 {
		t.Fatalf("sweep has %d configs, want 36", len(cfgs))
	}
	kinds := map[storage.Kind]bool{}
	ns := map[int]bool{}
	chunked := map[bool]bool{}
	verify := map[bool]bool{}
	deltaKinds := map[storage.Kind]bool{}
	tracked := map[bool]bool{}
	bbKinds := map[storage.Kind]bool{}
	for _, c := range cfgs {
		kinds[c.Kind] = true
		ns[c.Concurrent] = true
		chunked[c.ChunkBytes > 0] = true
		verify[c.VerifyPayload] = true
		if c.DeltaKeyframe > 0 {
			deltaKinds[c.Kind] = true
			tracked[c.Tracker] = true
			if c.Checkpoints <= c.DeltaKeyframe {
				t.Errorf("%s: %d checkpoints never cross a keyframe boundary", c, c.Checkpoints)
			}
		}
		if c.BlackBox {
			bbKinds[c.Kind] = true
		}
	}
	if !kinds[storage.KindPMEM] || !kinds[storage.KindSSD] {
		t.Fatal("sweep misses a device kind")
	}
	if !ns[1] || !ns[2] || !ns[4] {
		t.Fatal("sweep misses an N")
	}
	if len(chunked) != 2 || len(verify) != 2 {
		t.Fatal("sweep misses a chunking or verify variant")
	}
	if !deltaKinds[storage.KindPMEM] || !deltaKinds[storage.KindSSD] {
		t.Fatal("sweep misses delta workloads on a device kind")
	}
	if len(tracked) != 2 {
		t.Fatal("sweep misses a tracked or hash-fallback delta variant")
	}
	if !bbKinds[storage.KindPMEM] || !bbKinds[storage.KindSSD] {
		t.Fatal("sweep misses black-box workloads on a device kind")
	}
}

// FuzzCrashImage feeds arbitrary crash points and cache-loss schedules from
// the fuzzer through recovery: whatever the adversary does to the un-synced
// writes, Recover must return a valid checkpoint or a clean error — never
// panic, never garbage.
func FuzzCrashImage(f *testing.F) {
	dev := storage.NewCrashDevice(DeviceBytes(2, 2048), storage.KindSSD)
	eng, err := New(dev, Config{Concurrent: 2, SlotBytes: 2048, Writers: 2, ChunkBytes: 512, VerifyPayload: true})
	if err != nil {
		f.Fatal(err)
	}
	recordCrashWorkload(f, dev, eng, 6)
	ops := dev.Ops()

	f.Add(uint16(0), int64(0), uint64(0))
	f.Add(uint16(ops), int64(1), uint64(^uint64(0)))
	f.Add(uint16(ops/2), int64(42), uint64(0xAAAA_AAAA_AAAA_AAAA))

	f.Fuzz(func(t *testing.T, cut uint16, seed int64, fateBits uint64) {
		// Two adversaries per input: a seeded drop/keep/tear mix and a raw
		// bitmask schedule, so the fuzzer controls fates directly too.
		choosers := []storage.CrashChooser{
			storage.SeededChooser(seed),
			func(writeIdx, sector int) bool {
				return fateBits&(1<<uint((writeIdx*7+sector)%64)) != 0
			},
		}
		for _, choose := range choosers {
			img, err := dev.CrashImage(int(cut)%(ops+1), choose)
			if err != nil {
				t.Fatal(err)
			}
			p, rc, err := Recover(storage.NewRAMFromBytes(img))
			if err != nil {
				continue // clean rejection is always legal for the fuzzer's cuts
			}
			if rc == 0 {
				t.Fatal("recovered counter 0")
			}
			if err := checkCrashPayload(p); err != nil {
				t.Fatalf("recovered garbage for counter %d: %v", rc, err)
			}
		}
	})
}

// recordCrashWorkload runs a small checkpoint workload against dev so the
// fuzz target has a realistic journal to cut.
func recordCrashWorkload(f *testing.F, dev *storage.CrashDevice, eng *Checkpointer, n int) {
	f.Helper()
	for i := 0; i < n; i++ {
		p := crashPayload(uint64(i)+1, 200+137*i)
		ctr, err := eng.Checkpoint(f.Context(), BytesSource(p))
		if err != nil {
			f.Fatal(err)
		}
		dev.Mark(ctr)
	}
}
