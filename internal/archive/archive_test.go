package archive

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func tmpArchive(t *testing.T) (*Archive, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "history.pcar")
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a, path
}

func blob(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestAppendListLoad(t *testing.T) {
	a, _ := tmpArchive(t)
	payloads := map[uint64][]byte{}
	for c := uint64(1); c <= 5; c++ {
		p := blob(int64(c), 100*int(c))
		payloads[c] = p
		if err := a.Append(c, p); err != nil {
			t.Fatal(err)
		}
	}
	if a.Len() != 5 {
		t.Fatalf("Len = %d", a.Len())
	}
	entries := a.List()
	for i, e := range entries {
		if e.Counter != uint64(i+1) {
			t.Fatalf("entry %d counter %d", i, e.Counter)
		}
		got, err := a.Load(e.Counter)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payloads[e.Counter]) {
			t.Fatalf("payload %d mismatch", e.Counter)
		}
	}
	latest, ok := a.Latest()
	if !ok || latest.Counter != 5 {
		t.Fatalf("Latest = %+v, %v", latest, ok)
	}
}

func TestLoadMissing(t *testing.T) {
	a, _ := tmpArchive(t)
	if err := a.Append(2, blob(1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Load(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := a.Load(3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppendOutOfOrderRejected(t *testing.T) {
	a, _ := tmpArchive(t)
	if err := a.Append(5, blob(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(5, blob(2, 10)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := a.Append(3, blob(3, 10)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("regression: %v", err)
	}
}

func TestReopenPreservesHistory(t *testing.T) {
	a, path := tmpArchive(t)
	for c := uint64(1); c <= 3; c++ {
		if err := a.Append(c*10, blob(int64(c), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if a2.Len() != 3 {
		t.Fatalf("reopened Len = %d", a2.Len())
	}
	got, err := a2.Load(20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob(2, 64)) {
		t.Fatal("reopened payload mismatch")
	}
	// And appends continue after the scan.
	if err := a2.Append(40, blob(4, 64)); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	a, path := tmpArchive(t)
	if err := a.Append(1, blob(1, 200)); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(2, blob(2, 200)); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the second entry: chop 50 bytes off the file.
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-50); err != nil {
		t.Fatal(err)
	}
	a2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if a2.Len() != 1 {
		t.Fatalf("Len after torn tail = %d, want 1", a2.Len())
	}
	if _, err := a2.Load(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn entry still loadable: %v", err)
	}
	// The torn region was reclaimed: appending works and survives reopen.
	if err := a2.Append(2, blob(9, 100)); err != nil {
		t.Fatal(err)
	}
	if err := a2.Close(); err != nil {
		t.Fatal(err)
	}
	a3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a3.Close()
	if a3.Len() != 2 {
		t.Fatalf("Len after re-append = %d", a3.Len())
	}
	got, err := a3.Load(2)
	if err != nil || !bytes.Equal(got, blob(9, 100)) {
		t.Fatalf("re-appended payload: %v", err)
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	a, path := tmpArchive(t)
	if err := a.Append(1, blob(1, 500)); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte on disk.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 100); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Open truncates the corrupt entry away entirely (it is the tail).
	a2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if a2.Len() != 0 {
		t.Fatalf("corrupt entry survived: Len = %d", a2.Len())
	}
}

func TestCompactKeepsNewest(t *testing.T) {
	a, path := tmpArchive(t)
	for c := uint64(1); c <= 10; c++ {
		if err := a.Append(c, blob(int64(c), 300)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := os.Stat(path)
	if err := a.Compact(3); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink: %d -> %d", before.Size(), after.Size())
	}
	if a.Len() != 3 {
		t.Fatalf("Len after compact = %d", a.Len())
	}
	for c := uint64(8); c <= 10; c++ {
		got, err := a.Load(c)
		if err != nil || !bytes.Equal(got, blob(int64(c), 300)) {
			t.Fatalf("survivor %d: %v", c, err)
		}
	}
	if _, err := a.Load(7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("compacted entry still loadable: %v", err)
	}
	// Compacted archive survives reopen and further appends.
	if err := a.Append(11, blob(11, 300)); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if a2.Len() != 4 {
		t.Fatalf("Len after reopen = %d", a2.Len())
	}
}

func TestCompactNoOpWhenSmall(t *testing.T) {
	a, _ := tmpArchive(t)
	if err := a.Append(1, blob(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := a.Compact(5); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 {
		t.Fatal("no-op compact changed the archive")
	}
	if err := a.Compact(-1); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 0 {
		t.Fatal("Compact(-1) should keep nothing")
	}
}

func TestReadTo(t *testing.T) {
	a, _ := tmpArchive(t)
	p := blob(4, 1000)
	if err := a.Append(7, p); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := a.ReadTo(&buf, 7)
	if err != nil || n != 1000 {
		t.Fatalf("ReadTo: %d, %v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), p) {
		t.Fatal("streamed payload mismatch")
	}
}

func TestEmptyArchive(t *testing.T) {
	a, _ := tmpArchive(t)
	if a.Len() != 0 {
		t.Fatal("fresh archive non-empty")
	}
	if _, ok := a.Latest(); ok {
		t.Fatal("empty Latest reported ok")
	}
	if len(a.List()) != 0 {
		t.Fatal("empty List non-empty")
	}
}

// Property: whatever prefix of the file survives a crash (arbitrary
// truncation), Open yields a prefix of the appended history — never
// reordered, corrupted or invented entries.
func TestQuickTruncationYieldsPrefix(t *testing.T) {
	f := func(seed int64, cutRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		path := filepath.Join(dir, "a.pcar")
		a, err := Open(path)
		if err != nil {
			return false
		}
		type rec struct {
			counter uint64
			payload []byte
		}
		var recs []rec
		n := 1 + rng.Intn(6)
		counter := uint64(0)
		for i := 0; i < n; i++ {
			counter += uint64(1 + rng.Intn(3))
			p := blob(rng.Int63(), 1+rng.Intn(300))
			if err := a.Append(counter, p); err != nil {
				return false
			}
			recs = append(recs, rec{counter, p})
		}
		a.Close()
		st, err := os.Stat(path)
		if err != nil {
			return false
		}
		cut := int64(cutRaw) % (st.Size() + 1)
		if err := os.Truncate(path, cut); err != nil {
			return false
		}
		a2, err := Open(path)
		if err != nil {
			return false
		}
		defer a2.Close()
		got := a2.List()
		if len(got) > len(recs) {
			return false
		}
		for i, e := range got {
			if e.Counter != recs[i].counter {
				return false
			}
			p, err := a2.Load(e.Counter)
			if err != nil || !bytes.Equal(p, recs[i].payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
