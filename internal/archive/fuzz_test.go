package archive

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenArbitraryFile: Open over arbitrary file contents must never panic
// and must yield a loadable, internally consistent archive (every listed
// entry loads and its size matches).
func FuzzOpenArbitraryFile(f *testing.F) {
	// Seed with a genuine 2-entry archive image.
	dir, err := os.MkdirTemp("", "fuzz-archive")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, "seed.pcar")
	a, err := Open(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	_ = a.Append(1, []byte("first"))
	_ = a.Append(3, []byte("third-entry"))
	a.Close()
	img, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add([]byte{})
	f.Add([]byte("PCAR garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		path := filepath.Join(t.TempDir(), "f.pcar")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		arch, err := Open(path)
		if err != nil {
			return
		}
		defer arch.Close()
		var last uint64
		for _, e := range arch.List() {
			if e.Counter <= last {
				t.Fatalf("entries out of order: %d after %d", e.Counter, last)
			}
			last = e.Counter
			p, err := arch.Load(e.Counter)
			if err != nil {
				t.Fatalf("listed entry %d unloadable: %v", e.Counter, err)
			}
			if int64(len(p)) != e.Size {
				t.Fatalf("entry %d size %d vs payload %d", e.Counter, e.Size, len(p))
			}
		}
		// Appending after a scan must keep the archive valid.
		next := last + 1
		if err := arch.Append(next, []byte("post-fuzz")); err != nil {
			t.Fatalf("append after scan: %v", err)
		}
		if _, err := arch.Load(next); err != nil {
			t.Fatalf("post-fuzz entry unloadable: %v", err)
		}
	})
}
