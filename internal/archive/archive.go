// Package archive keeps a durable history of checkpoints — the monitoring
// and debugging use case of §2.1: tools like SageMaker Debugger, Cockpit and
// Pythia retain *every* captured training state for post-mortem analysis,
// not just the newest one the fault-tolerance engine guarantees.
//
// The format is a single append-only file of self-delimiting entries:
//
//	magic    u32  "PCAR"
//	counter  u64  the checkpoint's engine counter (strictly increasing)
//	size     u64  payload length
//	hdrCRC   u32  over the 20 bytes above
//	payload  size bytes
//	payCRC   u32  over the payload
//
// Appends write the entry then sync. Opening scans entries until the first
// invalid one — a torn tail from a crash mid-append is truncated away, so
// the archive is always a prefix of what was written, in order.
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

const (
	entryMagic  = 0x50434152 // "PCAR"
	entryHeader = 4 + 8 + 8 + 4
)

// Errors.
var (
	// ErrNotFound means no entry carries the requested counter.
	ErrNotFound = errors.New("archive: checkpoint not found")
	// ErrOutOfOrder means an append's counter does not exceed the last
	// entry's.
	ErrOutOfOrder = errors.New("archive: counters must be strictly increasing")
)

// Entry describes one archived checkpoint.
type Entry struct {
	// Counter is the checkpoint's engine counter.
	Counter uint64
	// Size is the payload length in bytes.
	Size int64

	offset int64 // payload position in the file
}

// Archive is a durable, append-only checkpoint history. Safe for concurrent
// use; appends are serialized.
type Archive struct {
	mu      sync.Mutex
	f       *os.File
	entries []Entry
	tail    int64
}

// Open opens (or creates) an archive file, scanning existing entries and
// truncating a torn tail if the last append crashed midway.
func Open(path string) (*Archive, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	a := &Archive{f: f}
	if err := a.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return a, nil
}

// scan walks entries from the start, keeping the valid prefix.
func (a *Archive) scan() error {
	st, err := a.f.Stat()
	if err != nil {
		return err
	}
	fileSize := st.Size()
	var off int64
	var last uint64
	hdr := make([]byte, entryHeader)
	for off+entryHeader <= fileSize {
		if _, err := a.f.ReadAt(hdr, off); err != nil {
			break
		}
		if binary.LittleEndian.Uint32(hdr[0:]) != entryMagic {
			break
		}
		if binary.LittleEndian.Uint32(hdr[20:]) != crc32.ChecksumIEEE(hdr[:20]) {
			break
		}
		counter := binary.LittleEndian.Uint64(hdr[4:])
		size := int64(binary.LittleEndian.Uint64(hdr[12:]))
		if size < 0 || counter <= last {
			break
		}
		payloadOff := off + entryHeader
		if payloadOff+size+4 > fileSize {
			break // torn payload
		}
		// Validate payload CRC so a torn-but-size-plausible tail is caught.
		payload := make([]byte, size)
		if _, err := a.f.ReadAt(payload, payloadOff); err != nil {
			break
		}
		var crcBuf [4]byte
		if _, err := a.f.ReadAt(crcBuf[:], payloadOff+size); err != nil {
			break
		}
		if binary.LittleEndian.Uint32(crcBuf[:]) != crc32.ChecksumIEEE(payload) {
			break
		}
		a.entries = append(a.entries, Entry{Counter: counter, Size: size, offset: payloadOff})
		last = counter
		off = payloadOff + size + 4
	}
	a.tail = off
	// Drop any torn tail so the next append starts clean.
	return a.f.Truncate(off)
}

// Append archives a checkpoint. Counters must be strictly increasing (they
// are the engine's global order). The entry is durable when Append returns.
func (a *Archive) Append(counter uint64, payload []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.entries); n > 0 && counter <= a.entries[n-1].Counter {
		return fmt.Errorf("%w: %d after %d", ErrOutOfOrder, counter, a.entries[n-1].Counter)
	}
	buf := make([]byte, entryHeader+len(payload)+4)
	binary.LittleEndian.PutUint32(buf[0:], entryMagic)
	binary.LittleEndian.PutUint64(buf[4:], counter)
	binary.LittleEndian.PutUint64(buf[12:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(buf[:20]))
	copy(buf[entryHeader:], payload)
	binary.LittleEndian.PutUint32(buf[entryHeader+len(payload):], crc32.ChecksumIEEE(payload))
	if _, err := a.f.WriteAt(buf, a.tail); err != nil {
		return err
	}
	if err := a.f.Sync(); err != nil {
		return err
	}
	a.entries = append(a.entries, Entry{
		Counter: counter,
		Size:    int64(len(payload)),
		offset:  a.tail + entryHeader,
	})
	a.tail += int64(len(buf))
	return nil
}

// Len returns the number of archived checkpoints.
func (a *Archive) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.entries)
}

// List returns the archived entries in counter order.
func (a *Archive) List() []Entry {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Entry, len(a.entries))
	copy(out, a.entries)
	return out
}

// Load returns the payload archived under counter.
func (a *Archive) Load(counter uint64) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	i := sort.Search(len(a.entries), func(i int) bool { return a.entries[i].Counter >= counter })
	if i >= len(a.entries) || a.entries[i].Counter != counter {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, counter)
	}
	e := a.entries[i]
	payload := make([]byte, e.Size)
	if _, err := a.f.ReadAt(payload, e.offset); err != nil {
		return nil, err
	}
	var crcBuf [4]byte
	if _, err := a.f.ReadAt(crcBuf[:], e.offset+e.Size); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("archive: checkpoint %d payload corrupt", counter)
	}
	return payload, nil
}

// Latest returns the newest archived entry.
func (a *Archive) Latest() (Entry, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.entries) == 0 {
		return Entry{}, false
	}
	return a.entries[len(a.entries)-1], true
}

// Compact rewrites the archive keeping only the newest keep entries —
// retention for long runs whose full history would outgrow the disk.
func (a *Archive) Compact(keep int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if keep < 0 {
		keep = 0
	}
	if len(a.entries) <= keep {
		return nil
	}
	kept := a.entries[len(a.entries)-keep:]
	// Copy surviving payloads into a contiguous prefix. Entries only move
	// toward lower offsets, so in-place forward copying is safe.
	var newTail int64
	newEntries := make([]Entry, 0, keep)
	buf := make([]byte, 1<<20)
	for _, e := range kept {
		total := entryHeader + e.Size + 4
		src := e.offset - entryHeader
		dst := newTail
		for moved := int64(0); moved < total; {
			n := int64(len(buf))
			if n > total-moved {
				n = total - moved
			}
			if _, err := a.f.ReadAt(buf[:n], src+moved); err != nil {
				return err
			}
			if _, err := a.f.WriteAt(buf[:n], dst+moved); err != nil {
				return err
			}
			moved += n
		}
		newEntries = append(newEntries, Entry{Counter: e.Counter, Size: e.Size, offset: dst + entryHeader})
		newTail += total
	}
	if err := a.f.Sync(); err != nil {
		return err
	}
	if err := a.f.Truncate(newTail); err != nil {
		return err
	}
	a.entries = newEntries
	a.tail = newTail
	return nil
}

// ReadTo streams an archived payload into w without materializing it.
func (a *Archive) ReadTo(w io.Writer, counter uint64) (int64, error) {
	payload, err := a.Load(counter)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(payload)
	return int64(n), err
}

// Close closes the archive file.
func (a *Archive) Close() error { return a.f.Close() }
