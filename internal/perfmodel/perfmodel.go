// Package perfmodel implements the paper's analytic performance model:
// the runtime equations of §3.4, the optimal checkpoint interval f* (Eq. 3),
// the recovery-time bounds of §4.2 (Eq. 4), and the memory/storage footprint
// comparison of Table 1.
//
// The simulator (internal/sim) and the analytic model are developed
// independently and cross-validated in tests: where the model makes a
// prediction (training stalls iff Tw > N·f·t; slowdown ≈ Tw/(N·f·t)), the
// simulator must agree.
package perfmodel

import (
	"fmt"
	"math"
	"time"
)

// Algorithm identifies a checkpointing mechanism under study.
type Algorithm int

const (
	// Ideal checkpoints with zero overhead (upper bound).
	Ideal Algorithm = iota
	// Traditional stalls training through copy and persist (Figure 3).
	Traditional
	// CheckFreq overlaps the persist with training but admits only one
	// in-flight checkpoint (Figure 4).
	CheckFreq
	// GPM stalls training while persisting directly from the GPU (no DRAM
	// staging).
	GPM
	// Gemini checkpoints to a remote machine's DRAM over the network, one
	// in flight.
	Gemini
	// PCcheck runs up to N concurrent checkpoints with p writers each.
	PCcheck
)

var algoNames = map[Algorithm]string{
	Ideal:       "ideal",
	Traditional: "traditional",
	CheckFreq:   "checkfreq",
	GPM:         "gpm",
	Gemini:      "gemini",
	PCcheck:     "pccheck",
}

func (a Algorithm) String() string {
	if s, ok := algoNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Params carries the model's inputs using the paper's symbols (Table 2).
type Params struct {
	// IterTime is t, the no-checkpoint iteration time.
	IterTime time.Duration
	// CheckpointBytes is m.
	CheckpointBytes int64
	// StorageBW is T_S, the device's aggregate write bandwidth (bytes/s).
	StorageBW float64
	// PerThreadBW is the bandwidth one writer thread sustains.
	PerThreadBW float64
	// ReadBW is the recovery-path read bandwidth.
	ReadBW float64
	// N is the number of concurrent checkpoints (1 for the baselines).
	N int
	// P is the number of parallel writer threads per checkpoint.
	P int
	// Interval is f, the checkpoint interval in iterations.
	Interval int
}

func (p Params) validate() error {
	if p.IterTime <= 0 {
		return fmt.Errorf("perfmodel: non-positive iteration time %v", p.IterTime)
	}
	if p.CheckpointBytes <= 0 {
		return fmt.Errorf("perfmodel: non-positive checkpoint size %d", p.CheckpointBytes)
	}
	if p.StorageBW <= 0 {
		return fmt.Errorf("perfmodel: non-positive storage bandwidth %v", p.StorageBW)
	}
	if p.N < 1 || p.P < 1 || p.Interval < 1 {
		return fmt.Errorf("perfmodel: N=%d, P=%d, f=%d must all be ≥ 1", p.N, p.P, p.Interval)
	}
	return nil
}

// EffectiveWriteBW is the bandwidth one checkpoint's p writers achieve: p
// per-thread lanes, capped by the device and by contention with the other
// N−1 in-flight checkpoints (which get an equal share).
func (p Params) EffectiveWriteBW() float64 {
	bw := p.StorageBW
	if p.PerThreadBW > 0 {
		lane := float64(p.P) * p.PerThreadBW
		if lane < bw {
			bw = lane
		}
	}
	return bw
}

// Tw is the worst-case time to write one checkpoint when all N checkpoints
// are in flight and contending (§3.4): the device bandwidth divides N ways,
// but no checkpoint can exceed its own p-thread lane.
func (p Params) Tw() time.Duration {
	share := p.StorageBW / float64(p.N)
	bw := p.EffectiveWriteBW()
	if share < bw {
		bw = share
	}
	return time.Duration(float64(p.CheckpointBytes) / bw * float64(time.Second))
}

// Runtime0 is the no-checkpoint runtime for A iterations: A·t.
func (p Params) Runtime0(a int) time.Duration {
	return time.Duration(a) * p.IterTime
}

// RuntimeN is the paper's runtime₂ (its runtime₁ is the N=1 special case):
//
//	N·f·t + max(Tw, N·f·t) · (A/(f·N) − 1) + Tw
//
// assuming for simplicity that N·f divides A, as the paper does. The paper
// writes the leading term as f·t; we use N·f·t so that the estimate counts
// all A iterations for N > 1 and never falls below the no-checkpoint
// runtime (for N = 1 the two agree exactly).
func (p Params) RuntimeN(a int) (time.Duration, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	ft := time.Duration(p.Interval) * p.IterTime
	nft := time.Duration(p.N) * ft
	tw := p.Tw()
	period := nft
	if tw > period {
		period = tw
	}
	groups := float64(a) / float64(p.Interval*p.N)
	if groups < 1 {
		groups = 1
	}
	return nft + time.Duration(float64(period)*(groups-1)) + tw, nil
}

// Slowdown is the asymptotic (A→∞) runtime inflation over no checkpointing:
// max(Tw, N·f·t)/(N·f·t). 1.0 means checkpointing is fully hidden.
func (p Params) Slowdown() (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	nft := float64(p.N*p.Interval) * p.IterTime.Seconds()
	tw := p.Tw().Seconds()
	if tw <= nft {
		return 1, nil
	}
	return tw / nft, nil
}

// FStar is Eq. (3): the minimum checkpoint interval keeping the asymptotic
// slowdown within q: f* = ceil(Tw / (N·q·t)). q must exceed 1; at q = 1
// checkpointing must be entirely free, which no finite interval guarantees
// when Tw > 0, so FStar returns an error.
func (p Params) FStar(q float64) (int, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if q <= 1 {
		return 0, fmt.Errorf("perfmodel: overhead budget q must be > 1, got %v", q)
	}
	f := math.Ceil(p.Tw().Seconds() / (float64(p.N) * q * p.IterTime.Seconds()))
	if f < 1 {
		f = 1
	}
	return int(f), nil
}

// LoadTime is l, the time to read one checkpoint back during recovery.
func (p Params) LoadTime() time.Duration {
	bw := p.ReadBW
	if bw <= 0 {
		bw = p.StorageBW
	}
	return time.Duration(float64(p.CheckpointBytes) / bw * float64(time.Second))
}

// MaxRecovery bounds the recovery time (load + lost work) per §4.2:
//
//	PCcheck:             l + f·t + t·min(N·f, Tw/t)   (Eq. 4)
//	CheckFreq, Gemini:   l + 2·f·t
//	GPM, Traditional:    l + f·t
//	Ideal:               l
func (p Params) MaxRecovery(algo Algorithm) (time.Duration, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	l := p.LoadTime()
	ft := time.Duration(p.Interval) * p.IterTime
	switch algo {
	case Ideal:
		return l, nil
	case Traditional, GPM:
		return l + ft, nil
	case CheckFreq, Gemini:
		return l + 2*ft, nil
	case PCcheck:
		nft := time.Duration(p.N) * ft
		tw := p.Tw()
		extra := nft
		if tw < extra {
			extra = tw
		}
		return l + ft + extra, nil
	default:
		return 0, fmt.Errorf("perfmodel: unknown algorithm %v", algo)
	}
}

// MeanRecovery is the expected recovery time assuming the failure instant is
// uniform within the checkpoint cycle: load time plus half the maximum lost
// work. The paper's goodput replay (§5.2.3) uses this average.
func (p Params) MeanRecovery(algo Algorithm) (time.Duration, error) {
	max, err := p.MaxRecovery(algo)
	if err != nil {
		return 0, err
	}
	l := p.LoadTime()
	return l + (max-l)/2, nil
}

// Footprint is one row of Table 1, in units of the checkpoint size m.
type Footprint struct {
	GPUMem     float64 // device memory beyond training state
	DRAMLow    float64 // minimum staging DRAM
	DRAMHigh   float64 // staging DRAM the system can exploit
	Storage    float64 // persistent storage
	NetBuffers float64 // remote-side DRAM (Gemini)
}

// FootprintOf reproduces Table 1. n is the number of concurrent checkpoints
// (only meaningful for PCcheck).
func FootprintOf(algo Algorithm, n int) (Footprint, error) {
	switch algo {
	case CheckFreq:
		return Footprint{GPUMem: 1, DRAMLow: 1, DRAMHigh: 1, Storage: 2}, nil
	case GPM:
		return Footprint{GPUMem: 1, DRAMLow: 0, DRAMHigh: 0, Storage: 2}, nil
	case Gemini:
		// "m + buffer" on the GPU (32 MB ≈ 0 in units of m), m of remote DRAM.
		return Footprint{GPUMem: 1, DRAMLow: 1, DRAMHigh: 1, Storage: 0, NetBuffers: 1}, nil
	case PCcheck:
		if n < 1 {
			return Footprint{}, fmt.Errorf("perfmodel: PCcheck needs n ≥ 1, got %d", n)
		}
		return Footprint{GPUMem: 1, DRAMLow: 1, DRAMHigh: 2, Storage: float64(n + 1)}, nil
	case Traditional:
		return Footprint{GPUMem: 1, DRAMLow: 1, DRAMHigh: 1, Storage: 2}, nil
	default:
		return Footprint{}, fmt.Errorf("perfmodel: no footprint for %v", algo)
	}
}

// MaxConcurrent is the storage-budget cap on N: N ≤ S/m − 1, keeping one
// slot for the protected latest checkpoint (§3.2).
func MaxConcurrent(storageBytes, checkpointBytes int64) int {
	if checkpointBytes <= 0 {
		return 0
	}
	n := int(storageBytes/checkpointBytes) - 1
	if n < 0 {
		n = 0
	}
	return n
}

// GoodputAt estimates training goodput (useful iterations per second) for
// PCcheck at checkpoint interval f under a failure regime with the given
// mean time between failures: the failure-free throughput 1/(t·slowdown)
// discounted by the fraction of wall time spent recovering,
// (mean recovery + attach)/mtbf per failure cycle — the analytic form of
// the §5.2.3 trace replay.
func (p Params) GoodputAt(algo Algorithm, mtbf, attach time.Duration) (float64, error) {
	if mtbf <= 0 {
		return 0, fmt.Errorf("perfmodel: non-positive MTBF %v", mtbf)
	}
	s, err := p.Slowdown()
	if err != nil {
		return 0, err
	}
	rec, err := p.MeanRecovery(algo)
	if err != nil {
		return 0, err
	}
	thr := 1 / (p.IterTime.Seconds() * s)
	lost := (rec + attach).Seconds() / mtbf.Seconds()
	if lost >= 1 {
		return 0, nil
	}
	return thr * (1 - lost), nil
}

// OptimalInterval searches checkpoint intervals 1..maxF for the one
// maximising PCcheck's analytic goodput — the inverted-U of Figure 2:
// frequent checkpoints waste throughput, infrequent ones waste recovery.
func (p Params) OptimalInterval(algo Algorithm, mtbf, attach time.Duration, maxF int) (bestF int, bestGoodput float64, err error) {
	if maxF < 1 {
		return 0, 0, fmt.Errorf("perfmodel: maxF must be ≥ 1, got %d", maxF)
	}
	for f := 1; f <= maxF; f++ {
		q := p
		q.Interval = f
		g, err := q.GoodputAt(algo, mtbf, attach)
		if err != nil {
			return 0, 0, err
		}
		if g > bestGoodput {
			bestGoodput = g
			bestF = f
		}
	}
	if bestF == 0 {
		return 0, 0, fmt.Errorf("perfmodel: no interval yields positive goodput (mtbf %v too short)", mtbf)
	}
	return bestF, bestGoodput, nil
}
