package perfmodel

import (
	"testing"
	"testing/quick"
	"time"

	"pccheck/internal/workload"
)

func opt13bParams(n, p, f int) Params {
	m, _ := workload.ByName("OPT-1.3B")
	return Params{
		IterTime:        m.IterTime,
		CheckpointBytes: m.CheckpointBytes,
		StorageBW:       workload.A100GCP.StorageWriteBW,
		PerThreadBW:     workload.A100GCP.PerThreadWriteBW,
		ReadBW:          workload.A100GCP.StorageReadBW,
		N:               n, P: p, Interval: f,
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{},
		{IterTime: time.Second},
		{IterTime: time.Second, CheckpointBytes: 1},
		{IterTime: time.Second, CheckpointBytes: 1, StorageBW: 1}, // N=P=f=0
	}
	for i, p := range bad {
		if _, err := p.RuntimeN(100); err == nil {
			t.Fatalf("case %d: invalid params accepted", i)
		}
	}
}

func TestTwSingleCheckpointIsMOverTs(t *testing.T) {
	// §3.4: "if N = 1, Tw = m/Ts" (with enough threads to saturate).
	p := opt13bParams(1, 4, 10)
	want := 16_200_000_000 / workload.A100GCP.StorageWriteBW
	got := p.Tw().Seconds()
	if diff := got/want - 1; diff < -0.01 || diff > 0.01 {
		t.Fatalf("Tw = %vs, want %vs", got, want)
	}
}

func TestTwSingleThreadIsSlower(t *testing.T) {
	p1 := opt13bParams(1, 1, 10)
	p4 := opt13bParams(1, 4, 10)
	if p1.Tw() <= p4.Tw() {
		t.Fatalf("1-thread Tw %v should exceed 4-thread Tw %v", p1.Tw(), p4.Tw())
	}
}

func TestTwContentionGrowsWithN(t *testing.T) {
	// With the device saturated, N concurrent checkpoints each see 1/N of
	// the bandwidth, so Tw grows with N while Tw/N stays flat.
	t2, t4 := opt13bParams(2, 4, 10).Tw(), opt13bParams(4, 4, 10).Tw()
	if t4 <= t2 {
		t.Fatalf("Tw should grow with N: N=2 %v, N=4 %v", t2, t4)
	}
	ratio := float64(t4) / float64(t2)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("Tw(4)/Tw(2) = %v, want ≈2 under full contention", ratio)
	}
}

func TestRuntimeNReducesToRuntime0WhenHidden(t *testing.T) {
	// Long interval ⇒ checkpointing fully hidden ⇒ runtime ≈ A·t (up to the
	// trailing Tw term).
	p := opt13bParams(2, 4, 200)
	const iters = 12000
	rn, err := p.RuntimeN(iters)
	if err != nil {
		t.Fatal(err)
	}
	r0 := p.Runtime0(iters)
	if rn < r0 {
		t.Fatalf("runtime with checkpointing %v below ideal %v", rn, r0)
	}
	if overhead := rn.Seconds()/r0.Seconds() - 1; overhead > 0.02 {
		t.Fatalf("hidden checkpointing cost %.1f%%, want <2%%", overhead*100)
	}
}

func TestSlowdownRegimes(t *testing.T) {
	// f=1, N=1, p=3 (a 3-thread lane cannot saturate the device alone, so
	// extra concurrent checkpoints add aggregate bandwidth): Tw ≫ t ⇒ large
	// slowdown.
	s1, err := opt13bParams(1, 3, 1).Slowdown()
	if err != nil {
		t.Fatal(err)
	}
	if s1 < 10 {
		t.Fatalf("checkpoint-every-iteration slowdown = %v, want ≫ 1", s1)
	}
	// Same f with N=4: the stall amortizes over N intervals.
	s4, _ := opt13bParams(4, 3, 1).Slowdown()
	if s4 >= s1 {
		t.Fatalf("more concurrency should cut slowdown: N=1 %v, N=4 %v", s1, s4)
	}
	// f=100: hidden.
	s100, _ := opt13bParams(2, 4, 100).Slowdown()
	if s100 != 1 {
		t.Fatalf("f=100 slowdown = %v, want 1", s100)
	}
}

func TestFStarMatchesEquation3(t *testing.T) {
	p := opt13bParams(2, 4, 1)
	f, err := p.FStar(1.05)
	if err != nil {
		t.Fatal(err)
	}
	// Hand evaluation: bw = min(4·0.22, 0.8/2) = 0.4 GB/s ⇒ Tw =
	// 16.2e9/0.4e9 = 40.5s; N·q·t = 2·1.05·0.65 = 1.365 ⇒ f* =
	// ceil(29.67) = 30.
	if f != 30 {
		t.Fatalf("f* = %d, want 30", f)
	}
	// A checkpoint interval of f* must indeed keep slowdown ≤ q…
	p.Interval = f
	s, _ := p.Slowdown()
	if s > 1.05 {
		t.Fatalf("slowdown at f* = %v, exceeds q", s)
	}
	// …and f*−1 must violate it (minimality).
	p.Interval = f - 1
	s2, _ := p.Slowdown()
	if s2 <= 1.05 {
		t.Fatalf("f*−1 also satisfies q (s=%v); f* not minimal", s2)
	}
}

func TestFStarRejectsImpossibleBudget(t *testing.T) {
	if _, err := opt13bParams(1, 4, 1).FStar(1.0); err == nil {
		t.Fatal("q=1 accepted")
	}
}

// Property: f* is monotone — a looser overhead budget never requires MORE
// frequent checkpointing, and more concurrency never increases f*.
func TestQuickFStarMonotonicity(t *testing.T) {
	f := func(nRaw, qRaw uint8) bool {
		n := int(nRaw%6) + 1
		q := 1.01 + float64(qRaw)/100.0
		base := opt13bParams(n, 4, 1)
		f1, err := base.FStar(q)
		if err != nil {
			return false
		}
		f2, err := base.FStar(q + 0.5)
		if err != nil {
			return false
		}
		if f2 > f1 {
			return false
		}
		wider := opt13bParams(n+1, 4, 1)
		f3, err := wider.FStar(q)
		if err != nil {
			return false
		}
		return f3 <= f1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryBoundsOrdering(t *testing.T) {
	p := opt13bParams(2, 4, 10)
	ideal, _ := p.MaxRecovery(Ideal)
	gpm, _ := p.MaxRecovery(GPM)
	cf, _ := p.MaxRecovery(CheckFreq)
	pc, _ := p.MaxRecovery(PCcheck)
	gem, _ := p.MaxRecovery(Gemini)
	if !(ideal < gpm && gpm < cf) {
		t.Fatalf("bound ordering broken: ideal %v, gpm %v, checkfreq %v", ideal, gpm, cf)
	}
	if cf != gem {
		t.Fatalf("CheckFreq and Gemini share the bound; got %v vs %v", cf, gem)
	}
	// PCcheck's bound: l + f·t + min(N·f·t, Tw).
	l := p.LoadTime()
	ft := 10 * p.IterTime
	tw := p.Tw()
	extra := 2 * ft
	if tw < extra {
		extra = tw
	}
	if want := l + ft + extra; pc != want {
		t.Fatalf("PCcheck bound = %v, want %v", pc, want)
	}
}

func TestMeanRecoveryIsBetweenLoadAndMax(t *testing.T) {
	p := opt13bParams(2, 4, 25)
	for _, a := range []Algorithm{Ideal, Traditional, CheckFreq, GPM, Gemini, PCcheck} {
		mean, err := p.MeanRecovery(a)
		if err != nil {
			t.Fatal(err)
		}
		max, _ := p.MaxRecovery(a)
		if mean < p.LoadTime() || mean > max {
			t.Fatalf("%v: mean %v outside [load %v, max %v]", a, mean, p.LoadTime(), max)
		}
	}
}

func TestRecoveryMatchesPaperNumbers(t *testing.T) {
	// §5.2.2: OPT-1.3B, CheckFreq at f=100 recovers in ≈80 s; PCcheck at
	// f=50 recovers in ≈50 s. Allow ±30% — these pin the calibration.
	cf := opt13bParams(1, 4, 100)
	got, _ := cf.MeanRecovery(CheckFreq)
	if got.Seconds() < 56 || got.Seconds() > 104 {
		t.Fatalf("CheckFreq f=100 mean recovery = %v, paper ≈80s", got)
	}
	pc := opt13bParams(2, 4, 50)
	got2, _ := pc.MeanRecovery(PCcheck)
	if got2.Seconds() < 35 || got2.Seconds() > 78 {
		t.Fatalf("PCcheck f=50 mean recovery = %v, paper ≈50s", got2)
	}
}

func TestFootprintTable1(t *testing.T) {
	cf, err := FootprintOf(CheckFreq, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cf.DRAMHigh != 1 || cf.Storage != 2 {
		t.Fatalf("CheckFreq footprint %+v", cf)
	}
	gpm, _ := FootprintOf(GPM, 0)
	if gpm.DRAMHigh != 0 || gpm.Storage != 2 {
		t.Fatalf("GPM footprint %+v", gpm)
	}
	gem, _ := FootprintOf(Gemini, 0)
	if gem.Storage != 0 || gem.NetBuffers != 1 {
		t.Fatalf("Gemini footprint %+v", gem)
	}
	pc, _ := FootprintOf(PCcheck, 3)
	if pc.Storage != 4 || pc.DRAMLow != 1 || pc.DRAMHigh != 2 {
		t.Fatalf("PCcheck footprint %+v", pc)
	}
	if _, err := FootprintOf(PCcheck, 0); err == nil {
		t.Fatal("PCcheck footprint with n=0 accepted")
	}
	if _, err := FootprintOf(Ideal, 0); err == nil {
		t.Fatal("Ideal has no footprint row")
	}
}

func TestMaxConcurrent(t *testing.T) {
	// 1 TB SSD, 16.2 GB checkpoints ⇒ 61 slots ⇒ N ≤ 60.
	if got := MaxConcurrent(1_000_000_000_000, 16_200_000_000); got != 60 {
		t.Fatalf("MaxConcurrent = %d, want 60", got)
	}
	if got := MaxConcurrent(10, 16); got != 0 {
		t.Fatalf("tiny storage should give 0, got %d", got)
	}
	if got := MaxConcurrent(100, 0); got != 0 {
		t.Fatalf("zero checkpoint size should give 0, got %d", got)
	}
}

func TestAlgorithmString(t *testing.T) {
	if PCcheck.String() != "pccheck" || CheckFreq.String() != "checkfreq" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(99).String() != "Algorithm(99)" {
		t.Fatal("unknown algorithm name wrong")
	}
}

func TestGoodputInvertedU(t *testing.T) {
	// André et al. regime: 26 failures / 3.5 h ⇒ MTBF ≈ 485 s.
	mtbf := 485 * time.Second
	attach := 5500 * time.Millisecond
	g := func(f int) float64 {
		p := opt13bParams(2, 4, f)
		v, err := p.GoodputAt(PCcheck, mtbf, attach)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !(g(25) > g(1)) {
		t.Fatalf("overhead should dominate at f=1: g(1)=%v g(25)=%v", g(1), g(25))
	}
	if !(g(25) > g(2000)) {
		t.Fatalf("rollback should dominate at f=2000: g(25)=%v g(2000)=%v", g(25), g(2000))
	}
}

func TestOptimalIntervalFindsTheKnee(t *testing.T) {
	mtbf := 485 * time.Second
	attach := 5500 * time.Millisecond
	p := opt13bParams(2, 4, 1)
	f, goodput, err := p.OptimalInterval(PCcheck, mtbf, attach, 500)
	if err != nil {
		t.Fatal(err)
	}
	if goodput <= 0 {
		t.Fatalf("optimal goodput %v", goodput)
	}
	// The paper's optimum for spot clusters sits at small intervals
	// (10–50 iterations for OPT-1.3B-class workloads).
	if f < 5 || f > 120 {
		t.Fatalf("optimal interval %d outside the expected regime", f)
	}
	// Optimality: neighbours do not beat it.
	for _, alt := range []int{f / 2, f * 2} {
		if alt < 1 {
			continue
		}
		q := opt13bParams(2, 4, alt)
		g, err := q.GoodputAt(PCcheck, mtbf, attach)
		if err != nil {
			t.Fatal(err)
		}
		if g > goodput {
			t.Fatalf("f=%d beats the reported optimum f=%d", alt, f)
		}
	}
}

func TestGoodputDegenerateRegimes(t *testing.T) {
	p := opt13bParams(2, 4, 10)
	if _, err := p.GoodputAt(PCcheck, 0, 0); err == nil {
		t.Fatal("zero MTBF accepted")
	}
	// MTBF shorter than recovery ⇒ zero goodput, not negative.
	g, err := p.GoodputAt(PCcheck, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g != 0 {
		t.Fatalf("goodput %v, want 0 when recovery swamps MTBF", g)
	}
	if _, _, err := p.OptimalInterval(PCcheck, time.Hour, 0, 0); err == nil {
		t.Fatal("maxF=0 accepted")
	}
}
