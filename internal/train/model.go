// Package train is the training substrate that gives the checkpoint engine
// something real to checkpoint.
//
// The paper trains PyTorch models on GPUs; here a small, fully deterministic
// pure-Go training stack stands in: multi-layer perceptrons with ReLU
// activations, SGD-with-momentum and Adam optimizers (so that optimizer
// state — the bulk of a real checkpoint — exists and must round-trip), and
// synthetic but learnable classification datasets. Determinism is the point:
// resuming from a checkpoint must reproduce the uninterrupted run
// bit-for-bit, which is the strongest end-to-end correctness check a
// checkpointing system can have.
package train

import (
	"fmt"
	"math/rand"

	"pccheck/internal/tensor"
)

// Linear is a fully connected layer: y = x·W + b.
type Linear struct {
	W, B   *tensor.Tensor // parameters
	GW, GB *tensor.Tensor // gradients

	in  *tensor.Tensor // cached input for backward
	out *tensor.Tensor // cached activation for ReLU backward
}

// NewLinear initializes a layer with scaled-normal weights.
func NewLinear(rng *rand.Rand, inDim, outDim int) *Linear {
	std := 1.0 / float64(inDim)
	return &Linear{
		W:  tensor.Randn(rng, std, inDim, outDim),
		B:  tensor.New(outDim),
		GW: tensor.New(inDim, outDim),
		GB: tensor.New(outDim),
	}
}

// MLP is a multi-layer perceptron with ReLU between hidden layers and raw
// logits at the output.
type MLP struct {
	Layers []*Linear
	dims   []int
}

// NewMLP builds an MLP with the given layer dimensions, e.g.
// dims = [784, 256, 10] is a 2-layer network. Initialization is fully
// determined by seed.
func NewMLP(seed int64, dims []int) (*MLP, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("train: MLP needs at least input and output dims, got %v", dims)
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{dims: append([]int(nil), dims...)}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers, NewLinear(rng, dims[i], dims[i+1]))
	}
	return m, nil
}

// Dims returns the layer dimensions the network was built with.
func (m *MLP) Dims() []int { return m.dims }

// Forward runs the network on a (batch×inDim) input, returning logits.
func (m *MLP) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	h := x
	for i, l := range m.Layers {
		l.in = h
		out, err := tensor.MatMul(h, l.W)
		if err != nil {
			return nil, fmt.Errorf("train: layer %d forward: %w", i, err)
		}
		if err := out.AddRowInPlace(l.B); err != nil {
			return nil, err
		}
		if i+1 < len(m.Layers) {
			out.ReLUInPlace()
		}
		l.out = out
		h = out
	}
	return h, nil
}

// Backward propagates dLogits (gradient of the loss w.r.t. the output
// logits) and accumulates parameter gradients into GW/GB. Forward must have
// been called first on the same batch.
func (m *MLP) Backward(dLogits *tensor.Tensor) error {
	grad := dLogits
	for i := len(m.Layers) - 1; i >= 0; i-- {
		l := m.Layers[i]
		if l.in == nil {
			return fmt.Errorf("train: Backward before Forward on layer %d", i)
		}
		// dW = inᵀ · grad ; dB = Σ_rows grad
		gw, err := tensor.MatMulTransA(l.in, grad)
		if err != nil {
			return fmt.Errorf("train: layer %d backward dW: %w", i, err)
		}
		if err := l.GW.CopyFrom(gw); err != nil {
			return err
		}
		gb, err := tensor.SumRows(grad)
		if err != nil {
			return err
		}
		if err := l.GB.CopyFrom(gb); err != nil {
			return err
		}
		if i > 0 {
			// dIn = grad · Wᵀ, masked by the previous layer's ReLU.
			din, err := tensor.MatMulTransB(grad, l.W)
			if err != nil {
				return fmt.Errorf("train: layer %d backward dIn: %w", i, err)
			}
			if err := tensor.ReLUBackwardInPlace(din, m.Layers[i-1].out); err != nil {
				return err
			}
			grad = din
		}
	}
	return nil
}

// Params returns the parameter tensors in a stable order.
func (m *MLP) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range m.Layers {
		out = append(out, l.W, l.B)
	}
	return out
}

// Grads returns the gradient tensors in the same order as Params.
func (m *MLP) Grads() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range m.Layers {
		out = append(out, l.GW, l.GB)
	}
	return out
}

// ParamBytes returns the total parameter payload size in bytes.
func (m *MLP) ParamBytes() int {
	n := 0
	for _, p := range m.Params() {
		n += p.Bytes()
	}
	return n
}
