package train

import (
	"fmt"
	"math"

	"pccheck/internal/tensor"
)

// Optimizer updates parameters from gradients and owns per-parameter state
// tensors that a checkpoint must capture (momentum buffers, Adam moments).
type Optimizer interface {
	// Step applies one update. params and grads are parallel slices.
	Step(params, grads []*tensor.Tensor) error
	// State returns the optimizer's state tensors in a stable order.
	// Restoring a checkpoint copies data back into exactly these tensors.
	State() []*tensor.Tensor
	// Name identifies the optimizer for checkpoint manifests.
	Name() string
}

// SGD implements stochastic gradient descent with classical momentum:
// v ← μ·v + g ; p ← p − lr·v.
type SGD struct {
	LR       float32
	Momentum float32
	velocity []*tensor.Tensor
}

// NewSGD returns an SGD optimizer sized for the given parameters.
func NewSGD(params []*tensor.Tensor, lr, momentum float32) *SGD {
	s := &SGD{LR: lr, Momentum: momentum}
	for _, p := range params {
		s.velocity = append(s.velocity, tensor.New(p.Shape()...))
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Tensor) error {
	if len(params) != len(grads) || len(params) != len(s.velocity) {
		return fmt.Errorf("train: SGD got %d params, %d grads, %d velocity buffers",
			len(params), len(grads), len(s.velocity))
	}
	for i, p := range params {
		v := s.velocity[i]
		g := grads[i]
		if v.Len() != p.Len() || g.Len() != p.Len() {
			return fmt.Errorf("train: SGD size mismatch at tensor %d", i)
		}
		vd, gd, pd := v.Data(), g.Data(), p.Data()
		for j := range pd {
			vd[j] = s.Momentum*vd[j] + gd[j]
			pd[j] -= s.LR * vd[j]
		}
	}
	return nil
}

// State implements Optimizer.
func (s *SGD) State() []*tensor.Tensor { return s.velocity }

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Adam implements the Adam optimizer. Its state (two moments per parameter
// plus the step count) roughly triples the checkpoint size relative to bare
// parameters — the reason the paper's checkpoints include optimizer state.
type Adam struct {
	LR           float32
	Beta1, Beta2 float32
	Eps          float32

	m, v []*tensor.Tensor
	t    *tensor.Tensor // step count, kept as a tensor so it checkpoints uniformly
}

// NewAdam returns an Adam optimizer sized for the given parameters.
func NewAdam(params []*tensor.Tensor, lr float32) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, t: tensor.New(1)}
	for _, p := range params {
		a.m = append(a.m, tensor.New(p.Shape()...))
		a.v = append(a.v, tensor.New(p.Shape()...))
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step(params, grads []*tensor.Tensor) error {
	if len(params) != len(grads) || len(params) != len(a.m) {
		return fmt.Errorf("train: Adam got %d params, %d grads, %d moment buffers",
			len(params), len(grads), len(a.m))
	}
	a.t.Data()[0]++
	t := float64(a.t.Data()[0])
	c1 := 1 - math.Pow(float64(a.Beta1), t)
	c2 := 1 - math.Pow(float64(a.Beta2), t)
	for i, p := range params {
		g := grads[i]
		if a.m[i].Len() != p.Len() || g.Len() != p.Len() {
			return fmt.Errorf("train: Adam size mismatch at tensor %d", i)
		}
		md, vd, gd, pd := a.m[i].Data(), a.v[i].Data(), g.Data(), p.Data()
		for j := range pd {
			md[j] = a.Beta1*md[j] + (1-a.Beta1)*gd[j]
			vd[j] = a.Beta2*vd[j] + (1-a.Beta2)*gd[j]*gd[j]
			mhat := float64(md[j]) / c1
			vhat := float64(vd[j]) / c2
			pd[j] -= a.LR * float32(mhat/(math.Sqrt(vhat)+float64(a.Eps)))
		}
	}
	return nil
}

// State implements Optimizer. The step-count tensor comes last.
func (a *Adam) State() []*tensor.Tensor {
	out := make([]*tensor.Tensor, 0, 2*len(a.m)+1)
	out = append(out, a.m...)
	out = append(out, a.v...)
	out = append(out, a.t)
	return out
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }
