package train

import (
	"math"
	"testing"

	"pccheck/internal/tensor"
)

func newSmallTrainer(t *testing.T, opt string) *Trainer {
	t.Helper()
	m, err := NewMLP(42, []int{8, 16, 4})
	if err != nil {
		t.Fatal(err)
	}
	data, err := NewSynthetic(7, 8, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	var o Optimizer
	switch opt {
	case "sgd":
		o = NewSGD(m.Params(), 0.05, 0.9)
	case "adam":
		o = NewAdam(m.Params(), 0.005)
	default:
		t.Fatalf("unknown optimizer %q", opt)
	}
	tr, err := NewTrainer(m, o, data)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewMLPValidation(t *testing.T) {
	if _, err := NewMLP(1, []int{5}); err == nil {
		t.Fatal("single-dim MLP accepted")
	}
}

func TestNewTrainerValidation(t *testing.T) {
	m, _ := NewMLP(1, []int{8, 4})
	data, _ := NewSynthetic(1, 9, 4, 4)
	if _, err := NewTrainer(m, NewSGD(m.Params(), 0.1, 0), data); err == nil {
		t.Fatal("feature mismatch accepted")
	}
	data2, _ := NewSynthetic(1, 8, 3, 4)
	if _, err := NewTrainer(m, NewSGD(m.Params(), 0.1, 0), data2); err == nil {
		t.Fatal("class mismatch accepted")
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := NewSynthetic(1, 0, 4, 4); err == nil {
		t.Fatal("zero features accepted")
	}
	if _, err := NewSynthetic(1, 4, 1, 4); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := NewSynthetic(1, 4, 2, 0); err == nil {
		t.Fatal("zero batch accepted")
	}
}

func TestBatchIsPureFunctionOfIteration(t *testing.T) {
	data, _ := NewSynthetic(3, 8, 4, 16)
	x1, l1 := data.Batch(7)
	x2, l2 := data.Batch(7)
	if !x1.Equal(x2) {
		t.Fatal("Batch(7) differs between calls")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("labels differ between calls")
		}
	}
	x3, _ := data.Batch(8)
	if x1.Equal(x3) {
		t.Fatal("consecutive iterations produced identical batches")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	for _, opt := range []string{"sgd", "adam"} {
		tr := newSmallTrainer(t, opt)
		first, err := tr.Step()
		if err != nil {
			t.Fatal(err)
		}
		var last float64
		for i := 0; i < 200; i++ {
			last, err = tr.Step()
			if err != nil {
				t.Fatal(err)
			}
		}
		if math.IsNaN(last) || last >= first {
			t.Fatalf("%s: loss did not decrease: %v -> %v", opt, first, last)
		}
		if tr.Iteration() != 201 {
			t.Fatalf("%s: Iteration = %d, want 201", opt, tr.Iteration())
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	a := newSmallTrainer(t, "adam")
	b := newSmallTrainer(t, "adam")
	for i := 0; i < 50; i++ {
		la, err := a.Step()
		if err != nil {
			t.Fatal(err)
		}
		lb, err := b.Step()
		if err != nil {
			t.Fatal(err)
		}
		if la != lb {
			t.Fatalf("losses diverged at step %d: %v vs %v", i, la, lb)
		}
	}
	pa, pb := a.Model.Params(), b.Model.Params()
	for i := range pa {
		if !pa[i].Equal(pb[i]) {
			t.Fatalf("parameters diverged at tensor %d", i)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, opt := range []string{"sgd", "adam"} {
		tr := newSmallTrainer(t, opt)
		for i := 0; i < 30; i++ {
			if _, err := tr.Step(); err != nil {
				t.Fatal(err)
			}
		}
		buf := make([]byte, tr.StateSize())
		n, err := tr.Snapshot(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != tr.StateSize() {
			t.Fatalf("%s: Snapshot wrote %d, StateSize %d", opt, n, tr.StateSize())
		}
		if it, err := SnapshotIteration(buf); err != nil || it != 30 {
			t.Fatalf("%s: SnapshotIteration = %d, %v", opt, it, err)
		}

		fresh := newSmallTrainer(t, opt)
		if err := fresh.Restore(buf); err != nil {
			t.Fatal(err)
		}
		if fresh.Iteration() != 30 {
			t.Fatalf("%s: restored iteration %d", opt, fresh.Iteration())
		}
		pa, pb := tr.Model.Params(), fresh.Model.Params()
		for i := range pa {
			if !pa[i].Equal(pb[i]) {
				t.Fatalf("%s: restored params differ at tensor %d", opt, i)
			}
		}
		sa, sb := tr.Opt.State(), fresh.Opt.State()
		for i := range sa {
			if !sa[i].Equal(sb[i]) {
				t.Fatalf("%s: restored optimizer state differs at tensor %d", opt, i)
			}
		}
	}
}

// The strongest end-to-end property: resume-from-snapshot is bit-identical
// to never having stopped.
func TestResumeExactness(t *testing.T) {
	const snapshotAt, total = 20, 60
	uninterrupted := newSmallTrainer(t, "adam")
	for i := 0; i < total; i++ {
		if _, err := uninterrupted.Step(); err != nil {
			t.Fatal(err)
		}
	}

	crashed := newSmallTrainer(t, "adam")
	for i := 0; i < snapshotAt; i++ {
		if _, err := crashed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, crashed.StateSize())
	if _, err := crashed.Snapshot(buf); err != nil {
		t.Fatal(err)
	}
	// Simulate losing progress after the snapshot…
	for i := 0; i < 10; i++ {
		if _, err := crashed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// …and a restart in a fresh process.
	resumed := newSmallTrainer(t, "adam")
	if err := resumed.Restore(buf); err != nil {
		t.Fatal(err)
	}
	for resumed.Iteration() < total {
		if _, err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}

	pa, pb := uninterrupted.Model.Params(), resumed.Model.Params()
	for i := range pa {
		if !pa[i].Equal(pb[i]) {
			t.Fatalf("resumed run diverged from uninterrupted run at tensor %d", i)
		}
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	tr := newSmallTrainer(t, "sgd")
	if err := tr.Restore(make([]byte, 8)); err == nil {
		t.Fatal("short snapshot accepted")
	}
	buf := make([]byte, tr.StateSize())
	if _, err := tr.Snapshot(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if err := tr.Restore(buf); err == nil {
		t.Fatal("bad magic accepted")
	}
	buf[0] ^= 0xFF
	buf[40] ^= 0x01 // corrupt a tensor payload
	if err := tr.Restore(buf); err == nil {
		t.Fatal("corrupted tensor accepted")
	}
}

func TestRestoreRejectsWrongShape(t *testing.T) {
	tr := newSmallTrainer(t, "sgd")
	buf := make([]byte, tr.StateSize())
	if _, err := tr.Snapshot(buf); err != nil {
		t.Fatal(err)
	}
	other, _ := NewMLP(1, []int{8, 8, 4})
	data, _ := NewSynthetic(7, 8, 4, 16)
	otherTr, err := NewTrainer(other, NewSGD(other.Params(), 0.1, 0.9), data)
	if err != nil {
		t.Fatal(err)
	}
	if err := otherTr.Restore(buf); err == nil {
		t.Fatal("snapshot restored into mismatched architecture")
	}
}

func TestSnapshotBufferTooSmall(t *testing.T) {
	tr := newSmallTrainer(t, "sgd")
	if _, err := tr.Snapshot(make([]byte, 10)); err == nil {
		t.Fatal("tiny buffer accepted")
	}
}

func TestAdamStateIncludesStepCount(t *testing.T) {
	m, _ := NewMLP(1, []int{4, 2})
	a := NewAdam(m.Params(), 0.01)
	state := a.State()
	// 2 params ⇒ 2 m + 2 v + 1 step count.
	if len(state) != 5 {
		t.Fatalf("Adam state tensors = %d, want 5", len(state))
	}
	grads := []*tensor.Tensor{tensor.New(4, 2), tensor.New(2)}
	if err := a.Step(m.Params(), grads); err != nil {
		t.Fatal(err)
	}
	if got := state[4].Data()[0]; got != 1 {
		t.Fatalf("step count = %v, want 1", got)
	}
}

func TestOptimizerSizeMismatch(t *testing.T) {
	m, _ := NewMLP(1, []int{4, 2})
	s := NewSGD(m.Params(), 0.1, 0.9)
	if err := s.Step(m.Params(), nil); err == nil {
		t.Fatal("SGD accepted missing grads")
	}
	a := NewAdam(m.Params(), 0.01)
	if err := a.Step(m.Params()[:1], m.Grads()[:1]); err == nil {
		t.Fatal("Adam accepted short params")
	}
}

func TestBackwardBeforeForwardFails(t *testing.T) {
	m, _ := NewMLP(1, []int{4, 2})
	if err := m.Backward(tensor.New(1, 2)); err == nil {
		t.Fatal("Backward before Forward accepted")
	}
}

func TestParamBytes(t *testing.T) {
	m, _ := NewMLP(1, []int{4, 3, 2})
	// (4·3 + 3) + (3·2 + 2) = 23 floats = 92 bytes.
	if got := m.ParamBytes(); got != 92 {
		t.Fatalf("ParamBytes = %d, want 92", got)
	}
}
