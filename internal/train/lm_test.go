package train

import (
	"math"
	"testing"

	"pccheck/internal/tensor"
)

func newLMTrainer(t *testing.T) *LMTrainer {
	t.Helper()
	m, err := NewTransformerLM(21, 12, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	data, err := NewTextData(22, 12, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewLMTrainer(m, NewAdam(m.Params(), 0.01), data)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestLMValidation(t *testing.T) {
	if _, err := NewTransformerLM(1, 1, 8, 16); err == nil {
		t.Fatal("vocab 1 accepted")
	}
	if _, err := NewTextData(1, 1, 10); err == nil {
		t.Fatal("text vocab 1 accepted")
	}
	if _, err := NewTextData(1, 4, 1); err == nil {
		t.Fatal("seq 1 accepted")
	}
	m, _ := NewTransformerLM(1, 8, 4, 8)
	data, _ := NewTextData(1, 9, 10)
	if _, err := NewLMTrainer(m, NewAdam(m.Params(), 0.01), data); err == nil {
		t.Fatal("vocab mismatch accepted")
	}
}

func TestTextDataDeterministicAndMarkov(t *testing.T) {
	d, err := NewTextData(5, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	a, b := d.Sequence(3), d.Sequence(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sequence(3) nondeterministic")
		}
	}
	// Sequences have Markov structure: successor agreement well above the
	// 1/vocab chance level.
	matches, total := 0, 0
	for it := 0; it < 50; it++ {
		seq := d.Sequence(it)
		for i := 1; i < len(seq); i++ {
			total++
			if seq[i] == d.next[seq[i-1]] {
				matches++
			}
		}
	}
	if frac := float64(matches) / float64(total); frac < 0.5 {
		t.Fatalf("successor agreement %.2f; Markov structure missing", frac)
	}
}

func TestLMForwardShapes(t *testing.T) {
	m, err := NewTransformerLM(1, 12, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	logits, err := m.Forward([]int{1, 5, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s := logits.Shape(); s[0] != 4 || s[1] != 12 {
		t.Fatalf("logits shape %v", s)
	}
	if err := m.Backward(tensor.New(4, 12)); err != nil {
		t.Fatal(err)
	}
	fresh, _ := NewTransformerLM(1, 12, 8, 16)
	if err := fresh.Backward(tensor.New(4, 12)); err == nil {
		t.Fatal("Backward before Forward accepted")
	}
}

func TestLMParamsGradsAligned(t *testing.T) {
	m, _ := NewTransformerLM(1, 12, 8, 16)
	params, grads := m.Params(), m.Grads()
	if len(params) != len(grads) {
		t.Fatalf("params %d vs grads %d", len(params), len(grads))
	}
	for i := range params {
		if params[i].Len() != grads[i].Len() {
			t.Fatalf("tensor %d: param %d elems vs grad %d", i, params[i].Len(), grads[i].Len())
		}
	}
	// Embedding + 2 norms + attention + 2 FF linears + head = 1·1+2·2+3+3·2 = 14.
	if len(params) != 14 {
		t.Fatalf("param tensors = %d, want 14", len(params))
	}
}

// Full-model gradient check: every parameter of the assembled Transformer,
// against numerical differentiation of the actual training loss.
func TestLMGradCheck(t *testing.T) {
	m, err := NewTransformerLM(31, 6, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []int{2, 5, 1}
	targets := []int{5, 1, 0}
	loss := func() float64 {
		logits, err := m.Forward(inputs)
		if err != nil {
			t.Fatal(err)
		}
		grad := tensor.New(logits.Shape()...)
		l, err := tensor.SoftmaxCrossEntropy(logits, targets, grad)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	// Analytic gradients.
	logits, err := m.Forward(inputs)
	if err != nil {
		t.Fatal(err)
	}
	grad := tensor.New(logits.Shape()...)
	if _, err := tensor.SoftmaxCrossEntropy(logits, targets, grad); err != nil {
		t.Fatal(err)
	}
	if err := m.Backward(grad); err != nil {
		t.Fatal(err)
	}
	params, grads := m.Params(), m.Grads()
	const eps = 1e-2
	for pi, p := range params {
		analytic := append([]float32(nil), grads[pi].Data()...)
		// Spot-check a few entries per tensor (full sweep is slow).
		stride := p.Len()/3 + 1
		for i := 0; i < p.Len(); i += stride {
			orig := p.Data()[i]
			p.Data()[i] = orig + eps
			up := loss()
			p.Data()[i] = orig - eps
			down := loss()
			p.Data()[i] = orig
			numeric := (up - down) / (2 * eps)
			got := float64(analytic[i])
			scale := math.Max(math.Abs(numeric), math.Max(math.Abs(got), 0.1))
			if diff := math.Abs(numeric - got); diff/scale > 6e-2 {
				t.Fatalf("param %d entry %d: analytic %.5f vs numeric %.5f", pi, i, got, numeric)
			}
		}
	}
}

func TestLMTrainingReducesLoss(t *testing.T) {
	tr := newLMTrainer(t)
	var first, last float64
	for i := 0; i < 300; i++ {
		l, err := tr.Step()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = l
		}
		last = l
	}
	if math.IsNaN(last) || last >= first*0.8 {
		t.Fatalf("LM loss did not improve: %.4f -> %.4f", first, last)
	}
}

func TestLMSnapshotResumeExactness(t *testing.T) {
	const snapshotAt, total = 40, 120
	ref := newLMTrainer(t)
	for i := 0; i < total; i++ {
		if _, err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}
	crashed := newLMTrainer(t)
	for i := 0; i < snapshotAt; i++ {
		if _, err := crashed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, crashed.StateSize())
	if n, err := crashed.Snapshot(buf); err != nil || n != crashed.StateSize() {
		t.Fatalf("snapshot: %d, %v", n, err)
	}
	resumed := newLMTrainer(t)
	if err := resumed.Restore(buf); err != nil {
		t.Fatal(err)
	}
	if resumed.Iteration() != snapshotAt {
		t.Fatalf("resumed at %d", resumed.Iteration())
	}
	for resumed.Iteration() < total {
		if _, err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	pa, pb := ref.Model.Params(), resumed.Model.Params()
	for i := range pa {
		if !pa[i].Equal(pb[i]) {
			t.Fatalf("LM resume diverged at tensor %d", i)
		}
	}
}

func TestLMRestoreRejectsWrongArchitecture(t *testing.T) {
	tr := newLMTrainer(t)
	buf := make([]byte, tr.StateSize())
	if _, err := tr.Snapshot(buf); err != nil {
		t.Fatal(err)
	}
	other, _ := NewTransformerLM(21, 12, 6, 16) // different width
	data, _ := NewTextData(22, 12, 10)
	otherTr, err := NewLMTrainer(other, NewAdam(other.Params(), 0.01), data)
	if err != nil {
		t.Fatal(err)
	}
	if err := otherTr.Restore(buf); err == nil {
		t.Fatal("snapshot restored into mismatched architecture")
	}
}
