package train

import (
	"encoding/binary"
	"fmt"
	"io"

	"pccheck/internal/tensor"
)

// Trainer couples a model, optimizer and dataset into a deterministic
// training loop whose complete state can be serialized and restored.
type Trainer struct {
	Model *MLP
	Opt   Optimizer
	Data  Dataset

	iter int
}

// NewTrainer wires up a training loop starting at iteration 0.
func NewTrainer(m *MLP, opt Optimizer, data Dataset) (*Trainer, error) {
	dims := m.Dims()
	if data.Features() != dims[0] {
		return nil, fmt.Errorf("train: dataset features %d != model input %d", data.Features(), dims[0])
	}
	if data.Classes() != dims[len(dims)-1] {
		return nil, fmt.Errorf("train: dataset classes %d != model output %d", data.Classes(), dims[len(dims)-1])
	}
	return &Trainer{Model: m, Opt: opt, Data: data}, nil
}

// Iteration returns the number of completed steps.
func (t *Trainer) Iteration() int { return t.iter }

// Step runs one forward/backward/update cycle and returns the batch loss.
func (t *Trainer) Step() (float64, error) {
	x, labels := t.Data.Batch(t.iter)
	logits, err := t.Model.Forward(x)
	if err != nil {
		return 0, err
	}
	grad := tensor.New(logits.Shape()...)
	loss, err := tensor.SoftmaxCrossEntropy(logits, labels, grad)
	if err != nil {
		return 0, err
	}
	if err := t.Model.Backward(grad); err != nil {
		return 0, err
	}
	if err := t.Opt.Step(t.Model.Params(), t.Model.Grads()); err != nil {
		return 0, err
	}
	t.iter++
	return loss, nil
}

// stateTensors returns every tensor a checkpoint must capture, in a stable
// order: model parameters first, optimizer state after.
func (t *Trainer) stateTensors() []*tensor.Tensor {
	return append(append([]*tensor.Tensor(nil), t.Model.Params()...), t.Opt.State()...)
}

// State serialization framing (shared by every trainer in this package):
//
//	magic    uint32 "PCST"
//	version  uint32
//	iter     uint64
//	ntensors uint32
//	tensors  ntensors × tensor codec frames
const stateMagic = 0x50435354 // "PCST"
const stateVersion = 1

// stateSize returns the serialized length of (iter, tensors).
func stateSize(tensors []*tensor.Tensor) int {
	n := 4 + 4 + 8 + 4
	for _, ts := range tensors {
		n += ts.EncodedSize()
	}
	return n
}

// encodeState serializes (iter, tensors) into dst.
func encodeState(dst []byte, iter int, tensors []*tensor.Tensor) (int, error) {
	need := stateSize(tensors)
	if len(dst) < need {
		return 0, fmt.Errorf("train: snapshot buffer %d < %d", len(dst), need)
	}
	off := 0
	binary.LittleEndian.PutUint32(dst[off:], stateMagic)
	off += 4
	binary.LittleEndian.PutUint32(dst[off:], stateVersion)
	off += 4
	binary.LittleEndian.PutUint64(dst[off:], uint64(iter))
	off += 8
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(tensors)))
	off += 4
	for i, ts := range tensors {
		n, err := ts.Encode(dst[off:])
		if err != nil {
			return 0, fmt.Errorf("train: snapshot tensor %d: %w", i, err)
		}
		off += n
	}
	return off, nil
}

// decodeState restores a snapshot into the target tensors and returns the
// recorded iteration.
func decodeState(src []byte, targets []*tensor.Tensor) (int, error) {
	if len(src) < 20 {
		return 0, io.ErrUnexpectedEOF
	}
	off := 0
	if binary.LittleEndian.Uint32(src[off:]) != stateMagic {
		return 0, fmt.Errorf("train: bad snapshot magic")
	}
	off += 4
	if v := binary.LittleEndian.Uint32(src[off:]); v != stateVersion {
		return 0, fmt.Errorf("train: unsupported snapshot version %d", v)
	}
	off += 4
	iter := binary.LittleEndian.Uint64(src[off:])
	off += 8
	count := int(binary.LittleEndian.Uint32(src[off:]))
	off += 4
	if count != len(targets) {
		return 0, fmt.Errorf("train: snapshot has %d tensors, trainer needs %d", count, len(targets))
	}
	for i, target := range targets {
		ts, n, err := tensor.Decode(src[off:])
		if err != nil {
			return 0, fmt.Errorf("train: restore tensor %d: %w", i, err)
		}
		if err := target.CopyFrom(ts); err != nil {
			return 0, fmt.Errorf("train: restore tensor %d: %w", i, err)
		}
		off += n
	}
	return int(iter), nil
}

// StateSize returns the exact byte length Snapshot will produce. It is
// constant for a given model/optimizer, which lets the checkpoint engine
// size its slots and DRAM chunks up front (checkpoint size m in the paper).
func (t *Trainer) StateSize() int { return stateSize(t.stateTensors()) }

// Snapshot serializes the complete training state into dst and returns the
// bytes written. dst must be at least StateSize() long. This is the
// "update step finished, capture the state" moment (C in the paper's
// timelines); the caller owns making the bytes durable.
func (t *Trainer) Snapshot(dst []byte) (int, error) {
	return encodeState(dst, t.iter, t.stateTensors())
}

// Restore loads a snapshot produced by Snapshot into the trainer, replacing
// parameters, optimizer state and the iteration counter.
func (t *Trainer) Restore(src []byte) error {
	iter, err := decodeState(src, t.stateTensors())
	if err != nil {
		return err
	}
	t.iter = iter
	return nil
}

// SnapshotIteration peeks at the iteration number of a serialized snapshot
// without restoring it.
func SnapshotIteration(src []byte) (int, error) {
	if len(src) < 16 {
		return 0, io.ErrUnexpectedEOF
	}
	if binary.LittleEndian.Uint32(src) != stateMagic {
		return 0, fmt.Errorf("train: bad snapshot magic")
	}
	return int(binary.LittleEndian.Uint64(src[8:])), nil
}
