package train

import (
	"fmt"
	"math/rand"

	"pccheck/internal/tensor"
)

// Dataset produces the batch for a given iteration. Batches must be a pure
// function of the iteration index so that a resumed run replays exactly the
// same data as an uninterrupted one.
type Dataset interface {
	// Batch returns the inputs (batch×features) and labels for iteration it.
	Batch(it int) (*tensor.Tensor, []int)
	// Features returns the input dimensionality.
	Features() int
	// Classes returns the number of target classes.
	Classes() int
}

// Synthetic is a learnable Gaussian-clusters classification task: each class
// has a fixed random center; samples are center + noise. Loss decreases
// under training, so tests can assert learning actually happens across a
// crash/restore boundary.
type Synthetic struct {
	seed      int64
	features  int
	classes   int
	batchSize int
	noise     float64
	centers   []*tensor.Tensor
}

// NewSynthetic builds the task. All randomness derives from seed.
func NewSynthetic(seed int64, features, classes, batchSize int) (*Synthetic, error) {
	if features <= 0 || classes <= 1 || batchSize <= 0 {
		return nil, fmt.Errorf("train: bad synthetic task geometry: features=%d classes=%d batch=%d",
			features, classes, batchSize)
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Synthetic{
		seed:      seed,
		features:  features,
		classes:   classes,
		batchSize: batchSize,
		noise:     0.3,
	}
	for c := 0; c < classes; c++ {
		s.centers = append(s.centers, tensor.Randn(rng, 1.0, features))
	}
	return s, nil
}

// Batch implements Dataset. The batch for iteration it is derived from a
// per-iteration RNG, so Batch(7) is identical no matter how many times or in
// which process it is called.
func (s *Synthetic) Batch(it int) (*tensor.Tensor, []int) {
	const mix = int64(-0x61c8864680b583eb) // golden-ratio mixing constant (0x9E3779B97F4A7C15)
	rng := rand.New(rand.NewSource(s.seed ^ (int64(it)+1)*mix))
	x := tensor.New(s.batchSize, s.features)
	labels := make([]int, s.batchSize)
	for i := 0; i < s.batchSize; i++ {
		c := rng.Intn(s.classes)
		labels[i] = c
		center := s.centers[c].Data()
		row := x.Data()[i*s.features : (i+1)*s.features]
		for j := range row {
			row[j] = center[j] + float32(rng.NormFloat64()*s.noise)
		}
	}
	return x, labels
}

// Features implements Dataset.
func (s *Synthetic) Features() int { return s.features }

// Classes implements Dataset.
func (s *Synthetic) Classes() int { return s.classes }
