package train

import (
	"fmt"
	"math/rand"

	"pccheck/internal/tensor"
)

// TransformerLM is a small next-token language model assembled from the
// package's layers — the pure-Go stand-in for the paper's NLP workloads
// (TransformerXL, OPT, BLOOM on WikiText): token embedding → layer norm →
// single-head self-attention (with residual) → layer norm → 2-layer MLP
// (with residual) → vocabulary head. Its complete state (parameters +
// optimizer moments) checkpoints and restores through the same codec as
// the MLP trainer.
type TransformerLM struct {
	Embed *Embedding
	Norm1 *LayerNorm
	Attn  *SelfAttention
	Norm2 *LayerNorm
	FF1   *Linear
	FF2   *Linear
	Head  *Linear

	vocab, dim int

	// forward caches for the backward pass
	h0, n1out, attnOut, h1, n2out, ff1out, h2 *tensor.Tensor
}

// NewTransformerLM builds the model. All initialization derives from seed.
func NewTransformerLM(seed int64, vocab, dim, ffDim int) (*TransformerLM, error) {
	if vocab < 2 || dim < 1 || ffDim < 1 {
		return nil, fmt.Errorf("train: bad LM geometry: vocab=%d dim=%d ff=%d", vocab, dim, ffDim)
	}
	rng := rand.New(rand.NewSource(seed))
	return &TransformerLM{
		Embed: NewEmbedding(rng, vocab, dim),
		Norm1: NewLayerNorm(dim),
		Attn:  NewSelfAttention(rng, dim),
		Norm2: NewLayerNorm(dim),
		FF1:   NewLinear(rng, dim, ffDim),
		FF2:   NewLinear(rng, ffDim, dim),
		Head:  NewLinear(rng, dim, vocab),
		vocab: vocab,
		dim:   dim,
	}, nil
}

// Vocab returns the vocabulary size.
func (m *TransformerLM) Vocab() int { return m.vocab }

// Forward maps a token sequence to per-position next-token logits
// (seq × vocab).
func (m *TransformerLM) Forward(ids []int) (*tensor.Tensor, error) {
	h0, err := m.Embed.Forward(ids)
	if err != nil {
		return nil, err
	}
	n1, err := m.Norm1.Forward(h0)
	if err != nil {
		return nil, err
	}
	attn, err := m.Attn.Forward(n1)
	if err != nil {
		return nil, err
	}
	h1 := h0.Clone()
	if err := h1.AddInPlace(attn); err != nil { // residual
		return nil, err
	}
	n2, err := m.Norm2.Forward(h1)
	if err != nil {
		return nil, err
	}
	ff1, err := tensor.MatMul(n2, m.FF1.W)
	if err != nil {
		return nil, err
	}
	if err := ff1.AddRowInPlace(m.FF1.B); err != nil {
		return nil, err
	}
	ff1.ReLUInPlace()
	ff2, err := tensor.MatMul(ff1, m.FF2.W)
	if err != nil {
		return nil, err
	}
	if err := ff2.AddRowInPlace(m.FF2.B); err != nil {
		return nil, err
	}
	h2 := h1.Clone()
	if err := h2.AddInPlace(ff2); err != nil { // residual
		return nil, err
	}
	logits, err := tensor.MatMul(h2, m.Head.W)
	if err != nil {
		return nil, err
	}
	if err := logits.AddRowInPlace(m.Head.B); err != nil {
		return nil, err
	}
	m.h0, m.n1out, m.attnOut, m.h1, m.n2out, m.ff1out, m.h2 = h0, n1, attn, h1, n2, ff1, h2
	return logits, nil
}

// Backward propagates dLogits and fills every layer's gradients.
func (m *TransformerLM) Backward(dLogits *tensor.Tensor) error {
	if m.h2 == nil {
		return fmt.Errorf("train: TransformerLM.Backward before Forward")
	}
	// Head: logits = h2·Wh + bh
	gw, err := tensor.MatMulTransA(m.h2, dLogits)
	if err != nil {
		return err
	}
	if err := m.Head.GW.CopyFrom(gw); err != nil {
		return err
	}
	gb, err := tensor.SumRows(dLogits)
	if err != nil {
		return err
	}
	if err := m.Head.GB.CopyFrom(gb); err != nil {
		return err
	}
	dh2, err := tensor.MatMulTransB(dLogits, m.Head.W)
	if err != nil {
		return err
	}

	// h2 = h1 + ff2 ⇒ dh1 += dh2, dff2 = dh2.
	dff2 := dh2
	// ff2 = relu(ff1)·W2 + b2
	gw2, err := tensor.MatMulTransA(m.ff1out, dff2)
	if err != nil {
		return err
	}
	if err := m.FF2.GW.CopyFrom(gw2); err != nil {
		return err
	}
	gb2, err := tensor.SumRows(dff2)
	if err != nil {
		return err
	}
	if err := m.FF2.GB.CopyFrom(gb2); err != nil {
		return err
	}
	dff1, err := tensor.MatMulTransB(dff2, m.FF2.W)
	if err != nil {
		return err
	}
	if err := tensor.ReLUBackwardInPlace(dff1, m.ff1out); err != nil {
		return err
	}
	gw1, err := tensor.MatMulTransA(m.n2out, dff1)
	if err != nil {
		return err
	}
	if err := m.FF1.GW.CopyFrom(gw1); err != nil {
		return err
	}
	gb1, err := tensor.SumRows(dff1)
	if err != nil {
		return err
	}
	if err := m.FF1.GB.CopyFrom(gb1); err != nil {
		return err
	}
	dn2, err := tensor.MatMulTransB(dff1, m.FF1.W)
	if err != nil {
		return err
	}
	dh1FromNorm, err := m.Norm2.Backward(dn2)
	if err != nil {
		return err
	}
	dh1 := dh2.Clone() // residual path
	if err := dh1.AddInPlace(dh1FromNorm); err != nil {
		return err
	}

	// h1 = h0 + attn(n1(h0)) ⇒ dh0 += dh1; through attention and norm1.
	dattn := dh1
	dn1, err := m.Attn.Backward(dattn)
	if err != nil {
		return err
	}
	dh0FromNorm, err := m.Norm1.Backward(dn1)
	if err != nil {
		return err
	}
	dh0 := dh1.Clone()
	if err := dh0.AddInPlace(dh0FromNorm); err != nil {
		return err
	}
	return m.Embed.Backward(dh0)
}

// Params returns all parameter tensors in a stable order.
func (m *TransformerLM) Params() []*tensor.Tensor {
	out := m.Embed.Params()
	out = append(out, m.Norm1.Params()...)
	out = append(out, m.Attn.Params()...)
	out = append(out, m.Norm2.Params()...)
	out = append(out, m.FF1.W, m.FF1.B, m.FF2.W, m.FF2.B, m.Head.W, m.Head.B)
	return out
}

// Grads returns the matching gradient tensors.
func (m *TransformerLM) Grads() []*tensor.Tensor {
	out := m.Embed.Grads()
	out = append(out, m.Norm1.Grads()...)
	out = append(out, m.Attn.Grads()...)
	out = append(out, m.Norm2.Grads()...)
	out = append(out, m.FF1.GW, m.FF1.GB, m.FF2.GW, m.FF2.GB, m.Head.GW, m.Head.GB)
	return out
}

// TextData generates deterministic synthetic token sequences from a
// first-order Markov chain (a learnable WikiText stand-in): each token has a
// preferred successor, plus noise. Sequences are a pure function of the
// iteration index.
type TextData struct {
	seed   int64
	vocab  int
	seqLen int
	next   []int // preferred successor per token
}

// NewTextData builds the task.
func NewTextData(seed int64, vocab, seqLen int) (*TextData, error) {
	if vocab < 2 || seqLen < 2 {
		return nil, fmt.Errorf("train: bad text geometry: vocab=%d seq=%d", vocab, seqLen)
	}
	rng := rand.New(rand.NewSource(seed))
	next := make([]int, vocab)
	for i := range next {
		next[i] = rng.Intn(vocab)
	}
	return &TextData{seed: seed, vocab: vocab, seqLen: seqLen, next: next}, nil
}

// Sequence returns iteration it's token sequence.
func (d *TextData) Sequence(it int) []int {
	const mix = int64(-0x61c8864680b583eb)
	rng := rand.New(rand.NewSource(d.seed ^ (int64(it)+1)*mix))
	seq := make([]int, d.seqLen)
	seq[0] = rng.Intn(d.vocab)
	for i := 1; i < d.seqLen; i++ {
		if rng.Float64() < 0.85 {
			seq[i] = d.next[seq[i-1]]
		} else {
			seq[i] = rng.Intn(d.vocab)
		}
	}
	return seq
}

// LMTrainer drives next-token training of a TransformerLM with the same
// deterministic, snapshot/restore-able contract as Trainer.
type LMTrainer struct {
	Model *TransformerLM
	Opt   Optimizer
	Data  *TextData

	iter int
}

// NewLMTrainer wires up the loop.
func NewLMTrainer(m *TransformerLM, opt Optimizer, data *TextData) (*LMTrainer, error) {
	if data.vocab != m.vocab {
		return nil, fmt.Errorf("train: data vocab %d != model vocab %d", data.vocab, m.vocab)
	}
	return &LMTrainer{Model: m, Opt: opt, Data: data}, nil
}

// Iteration returns completed steps.
func (t *LMTrainer) Iteration() int { return t.iter }

// Step trains on one sequence (predict token i+1 from prefix i) and returns
// the mean loss.
func (t *LMTrainer) Step() (float64, error) {
	seq := t.Data.Sequence(t.iter)
	inputs := seq[:len(seq)-1]
	targets := seq[1:]
	logits, err := t.Model.Forward(inputs)
	if err != nil {
		return 0, err
	}
	grad := tensor.New(logits.Shape()...)
	loss, err := tensor.SoftmaxCrossEntropy(logits, targets, grad)
	if err != nil {
		return 0, err
	}
	if err := t.Model.Backward(grad); err != nil {
		return 0, err
	}
	if err := t.Opt.Step(t.Model.Params(), t.Model.Grads()); err != nil {
		return 0, err
	}
	t.iter++
	return loss, nil
}

func (t *LMTrainer) stateTensors() []*tensor.Tensor {
	return append(append([]*tensor.Tensor(nil), t.Model.Params()...), t.Opt.State()...)
}

// StateSize returns the exact snapshot length.
func (t *LMTrainer) StateSize() int { return stateSize(t.stateTensors()) }

// Snapshot serializes the complete training state into dst.
func (t *LMTrainer) Snapshot(dst []byte) (int, error) {
	return encodeState(dst, t.iter, t.stateTensors())
}

// Restore loads a snapshot produced by Snapshot.
func (t *LMTrainer) Restore(src []byte) error {
	iter, err := decodeState(src, t.stateTensors())
	if err != nil {
		return err
	}
	t.iter = iter
	return nil
}
