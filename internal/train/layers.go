package train

import (
	"fmt"
	"math"
	"math/rand"

	"pccheck/internal/tensor"
)

// Additional layers that make the training substrate representative of the
// paper's NLP workloads (Transformer-XL, BERT, OPT, BLOOM): token
// embeddings, layer normalization and single-head self-attention. Each
// implements forward and backward passes over the tensor package, with
// gradients validated against numerical differentiation in layers_test.go.

// Embedding maps integer token ids to dense rows of a learned table.
type Embedding struct {
	W  *tensor.Tensor // (vocab × dim)
	GW *tensor.Tensor

	lastIDs []int
}

// NewEmbedding initializes a (vocab × dim) embedding table.
func NewEmbedding(rng *rand.Rand, vocab, dim int) *Embedding {
	return &Embedding{
		W:  tensor.Randn(rng, 0.1, vocab, dim),
		GW: tensor.New(vocab, dim),
	}
}

// Forward gathers rows for ids, producing a (len(ids) × dim) tensor.
func (e *Embedding) Forward(ids []int) (*tensor.Tensor, error) {
	vocab, dim := e.W.Shape()[0], e.W.Shape()[1]
	out := tensor.New(len(ids), dim)
	for i, id := range ids {
		if id < 0 || id >= vocab {
			return nil, fmt.Errorf("train: token id %d outside vocab %d", id, vocab)
		}
		copy(out.Data()[i*dim:(i+1)*dim], e.W.Data()[id*dim:(id+1)*dim])
	}
	e.lastIDs = append(e.lastIDs[:0], ids...)
	return out, nil
}

// Backward scatters the output gradient into the table gradient.
func (e *Embedding) Backward(grad *tensor.Tensor) error {
	if e.lastIDs == nil {
		return fmt.Errorf("train: Embedding.Backward before Forward")
	}
	dim := e.W.Shape()[1]
	if grad.Len() != len(e.lastIDs)*dim {
		return fmt.Errorf("train: embedding grad volume %d != %d", grad.Len(), len(e.lastIDs)*dim)
	}
	e.GW.Zero()
	for i, id := range e.lastIDs {
		dst := e.GW.Data()[id*dim : (id+1)*dim]
		src := grad.Data()[i*dim : (i+1)*dim]
		for j := range dst {
			dst[j] += src[j]
		}
	}
	return nil
}

// Params returns the embedding's parameter tensors.
func (e *Embedding) Params() []*tensor.Tensor { return []*tensor.Tensor{e.W} }

// Grads returns the matching gradient tensors.
func (e *Embedding) Grads() []*tensor.Tensor { return []*tensor.Tensor{e.GW} }

// LayerNorm normalizes each row to zero mean and unit variance, then applies
// a learned scale and shift.
type LayerNorm struct {
	Gamma, Beta *tensor.Tensor
	GG, GB      *tensor.Tensor
	Eps         float32

	lastIn   *tensor.Tensor
	lastMean []float32
	lastIstd []float32
}

// NewLayerNorm builds a LayerNorm over rows of width dim.
func NewLayerNorm(dim int) *LayerNorm {
	g := tensor.New(dim)
	for i := range g.Data() {
		g.Data()[i] = 1
	}
	return &LayerNorm{
		Gamma: g, Beta: tensor.New(dim),
		GG: tensor.New(dim), GB: tensor.New(dim),
		Eps: 1e-5,
	}
}

// Forward normalizes a (batch × dim) input.
func (l *LayerNorm) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape()) != 2 || x.Shape()[1] != l.Gamma.Len() {
		return nil, fmt.Errorf("train: LayerNorm input %v, want (batch × %d)", x.Shape(), l.Gamma.Len())
	}
	batch, dim := x.Shape()[0], x.Shape()[1]
	out := tensor.New(batch, dim)
	l.lastIn = x
	l.lastMean = make([]float32, batch)
	l.lastIstd = make([]float32, batch)
	for i := 0; i < batch; i++ {
		row := x.Data()[i*dim : (i+1)*dim]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(dim)
		var varsum float64
		for _, v := range row {
			d := float64(v) - mean
			varsum += d * d
		}
		istd := 1 / math.Sqrt(varsum/float64(dim)+float64(l.Eps))
		l.lastMean[i] = float32(mean)
		l.lastIstd[i] = float32(istd)
		o := out.Data()[i*dim : (i+1)*dim]
		for j, v := range row {
			norm := (float64(v) - mean) * istd
			o[j] = float32(norm)*l.Gamma.Data()[j] + l.Beta.Data()[j]
		}
	}
	return out, nil
}

// Backward computes dX and accumulates dGamma/dBeta, given dOut.
func (l *LayerNorm) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if l.lastIn == nil {
		return nil, fmt.Errorf("train: LayerNorm.Backward before Forward")
	}
	batch, dim := l.lastIn.Shape()[0], l.lastIn.Shape()[1]
	if grad.Len() != batch*dim {
		return nil, fmt.Errorf("train: LayerNorm grad volume %d != %d", grad.Len(), batch*dim)
	}
	dx := tensor.New(batch, dim)
	l.GG.Zero()
	l.GB.Zero()
	for i := 0; i < batch; i++ {
		x := l.lastIn.Data()[i*dim : (i+1)*dim]
		g := grad.Data()[i*dim : (i+1)*dim]
		out := dx.Data()[i*dim : (i+1)*dim]
		mean, istd := float64(l.lastMean[i]), float64(l.lastIstd[i])
		// xhat_j = (x_j − mean)·istd ; y_j = γ_j·xhat_j + β_j
		var sumDy, sumDyXhat float64
		xhat := make([]float64, dim)
		dy := make([]float64, dim)
		for j := range x {
			xhat[j] = (float64(x[j]) - mean) * istd
			dy[j] = float64(g[j]) * float64(l.Gamma.Data()[j])
			sumDy += dy[j]
			sumDyXhat += dy[j] * xhat[j]
			l.GG.Data()[j] += g[j] * float32(xhat[j])
			l.GB.Data()[j] += g[j]
		}
		n := float64(dim)
		for j := range x {
			out[j] = float32(istd * (dy[j] - sumDy/n - xhat[j]*sumDyXhat/n))
		}
	}
	return dx, nil
}

// Params returns the scale and shift parameters.
func (l *LayerNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{l.Gamma, l.Beta} }

// Grads returns the matching gradient tensors.
func (l *LayerNorm) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.GG, l.GB} }

// SelfAttention is single-head scaled dot-product self-attention over a
// sequence: Q = X·Wq, K = X·Wk, V = X·Wv, A = softmax(QKᵀ/√d), Y = A·V.
type SelfAttention struct {
	Wq, Wk, Wv    *tensor.Tensor
	GWq, GWk, GWv *tensor.Tensor

	lastX       *tensor.Tensor
	lastQ       *tensor.Tensor
	lastK       *tensor.Tensor
	lastV       *tensor.Tensor
	lastWeights *tensor.Tensor // softmax rows
}

// NewSelfAttention builds an attention layer over width dim.
func NewSelfAttention(rng *rand.Rand, dim int) *SelfAttention {
	std := 1 / math.Sqrt(float64(dim))
	return &SelfAttention{
		Wq: tensor.Randn(rng, std, dim, dim), GWq: tensor.New(dim, dim),
		Wk: tensor.Randn(rng, std, dim, dim), GWk: tensor.New(dim, dim),
		Wv: tensor.Randn(rng, std, dim, dim), GWv: tensor.New(dim, dim),
	}
}

// Forward runs attention over a (seq × dim) input.
func (a *SelfAttention) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape()) != 2 || x.Shape()[1] != a.Wq.Shape()[0] {
		return nil, fmt.Errorf("train: attention input %v, want (seq × %d)", x.Shape(), a.Wq.Shape()[0])
	}
	q, err := tensor.MatMul(x, a.Wq)
	if err != nil {
		return nil, err
	}
	k, err := tensor.MatMul(x, a.Wk)
	if err != nil {
		return nil, err
	}
	v, err := tensor.MatMul(x, a.Wv)
	if err != nil {
		return nil, err
	}
	scores, err := tensor.MatMulTransB(q, k) // (seq × seq)
	if err != nil {
		return nil, err
	}
	scale := float32(1 / math.Sqrt(float64(x.Shape()[1])))
	scores.ScaleInPlace(scale)
	weights := softmaxRows(scores)
	y, err := tensor.MatMul(weights, v)
	if err != nil {
		return nil, err
	}
	a.lastX, a.lastQ, a.lastK, a.lastV, a.lastWeights = x, q, k, v, weights
	return y, nil
}

// Backward propagates dY, accumulating weight gradients, and returns dX.
func (a *SelfAttention) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if a.lastX == nil {
		return nil, fmt.Errorf("train: SelfAttention.Backward before Forward")
	}
	x, q, k, v, w := a.lastX, a.lastQ, a.lastK, a.lastV, a.lastWeights
	dim := x.Shape()[1]
	scale := float32(1 / math.Sqrt(float64(dim)))

	// Y = W·V ⇒ dW = dY·Vᵀ ; dV = Wᵀ·dY
	dW, err := tensor.MatMulTransB(grad, v)
	if err != nil {
		return nil, err
	}
	dV, err := tensor.MatMulTransA(w, grad)
	if err != nil {
		return nil, err
	}
	// softmax backward per row: dS_j = w_j (dW_j − Σ_k dW_k w_k)
	dS := softmaxBackwardRows(w, dW)
	dS.ScaleInPlace(scale)
	// S = Q·Kᵀ ⇒ dQ = dS·K ; dK = dSᵀ·Q
	dQ, err := tensor.MatMul(dS, k)
	if err != nil {
		return nil, err
	}
	dK, err := tensor.MatMulTransA(dS, q)
	if err != nil {
		return nil, err
	}
	// Q = X·Wq ⇒ dWq = Xᵀ·dQ, dXq = dQ·Wqᵀ (likewise for K, V).
	for _, t := range []struct {
		d, gw *tensor.Tensor
		wmat  *tensor.Tensor
	}{{dQ, a.GWq, a.Wq}, {dK, a.GWk, a.Wk}, {dV, a.GWv, a.Wv}} {
		gw, err := tensor.MatMulTransA(x, t.d)
		if err != nil {
			return nil, err
		}
		if err := t.gw.CopyFrom(gw); err != nil {
			return nil, err
		}
	}
	dx := tensor.New(x.Shape()...)
	for _, t := range []struct {
		d, wmat *tensor.Tensor
	}{{dQ, a.Wq}, {dK, a.Wk}, {dV, a.Wv}} {
		part, err := tensor.MatMulTransB(t.d, t.wmat)
		if err != nil {
			return nil, err
		}
		if err := dx.AddInPlace(part); err != nil {
			return nil, err
		}
	}
	return dx, nil
}

// Params returns the projection matrices.
func (a *SelfAttention) Params() []*tensor.Tensor { return []*tensor.Tensor{a.Wq, a.Wk, a.Wv} }

// Grads returns the matching gradient tensors.
func (a *SelfAttention) Grads() []*tensor.Tensor { return []*tensor.Tensor{a.GWq, a.GWk, a.GWv} }

// softmaxRows applies a numerically stable softmax to each row.
func softmaxRows(t *tensor.Tensor) *tensor.Tensor {
	rows, cols := t.Shape()[0], t.Shape()[1]
	out := tensor.New(rows, cols)
	for i := 0; i < rows; i++ {
		row := t.Data()[i*cols : (i+1)*cols]
		o := out.Data()[i*cols : (i+1)*cols]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			o[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range o {
			o[j] *= inv
		}
	}
	return out
}

// softmaxBackwardRows computes dScores from dWeights for row-wise softmax.
func softmaxBackwardRows(weights, grad *tensor.Tensor) *tensor.Tensor {
	rows, cols := weights.Shape()[0], weights.Shape()[1]
	out := tensor.New(rows, cols)
	for i := 0; i < rows; i++ {
		w := weights.Data()[i*cols : (i+1)*cols]
		g := grad.Data()[i*cols : (i+1)*cols]
		o := out.Data()[i*cols : (i+1)*cols]
		var dot float64
		for j := range w {
			dot += float64(w[j]) * float64(g[j])
		}
		for j := range w {
			o[j] = w[j] * (g[j] - float32(dot))
		}
	}
	return out
}
