package train

import (
	"math"
	"math/rand"
	"testing"

	"pccheck/internal/tensor"
)

// Numerical gradient checking: for each layer, perturb every parameter (and
// input) entry and compare the analytic gradient against the central
// difference of a scalar loss. This is the strongest correctness test a
// hand-written backward pass can get.

// scalarLoss reduces a tensor to ½Σy², whose gradient w.r.t. y is simply y.
func scalarLoss(y *tensor.Tensor) float64 {
	var s float64
	for _, v := range y.Data() {
		s += 0.5 * float64(v) * float64(v)
	}
	return s
}

func lossGrad(y *tensor.Tensor) *tensor.Tensor {
	g := tensor.New(y.Shape()...)
	copy(g.Data(), y.Data())
	return g
}

// checkGrad compares analytic vs numeric gradients of loss(forward())
// w.r.t. every entry of each (param, grad) pair.
func checkGrad(t *testing.T, name string, forward func() *tensor.Tensor,
	backward func(dY *tensor.Tensor), params, grads []*tensor.Tensor) {
	t.Helper()
	const eps = 1e-3
	y := forward()
	backward(lossGrad(y))
	for pi, p := range params {
		analytic := append([]float32(nil), grads[pi].Data()...)
		for i := range p.Data() {
			orig := p.Data()[i]
			p.Data()[i] = orig + eps
			up := scalarLoss(forward())
			p.Data()[i] = orig - eps
			down := scalarLoss(forward())
			p.Data()[i] = orig
			numeric := (up - down) / (2 * eps)
			got := float64(analytic[i])
			scale := math.Max(math.Abs(numeric), math.Max(math.Abs(got), 1))
			if diff := math.Abs(numeric - got); diff/scale > 2e-2 {
				t.Fatalf("%s: param %d entry %d: analytic %.5f vs numeric %.5f", name, pi, i, got, numeric)
			}
		}
	}
}

func TestEmbeddingForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := NewEmbedding(rng, 10, 4)
	out, err := e.Forward([]int{3, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if s := out.Shape(); s[0] != 3 || s[1] != 4 {
		t.Fatalf("shape %v", s)
	}
	// Rows 0 and 1 must be identical (same token).
	for j := 0; j < 4; j++ {
		if out.At(0, j) != out.At(1, j) {
			t.Fatal("same token produced different embeddings")
		}
	}
	if _, err := e.Forward([]int{11}); err == nil {
		t.Fatal("out-of-vocab id accepted")
	}
	if _, err := e.Forward([]int{-1}); err == nil {
		t.Fatal("negative id accepted")
	}
}

func TestEmbeddingGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEmbedding(rng, 6, 3)
	ids := []int{1, 4, 1} // repeated token: gradients must accumulate
	checkGrad(t, "embedding",
		func() *tensor.Tensor {
			out, err := e.Forward(ids)
			if err != nil {
				t.Fatal(err)
			}
			return out
		},
		func(dY *tensor.Tensor) {
			if err := e.Backward(dY); err != nil {
				t.Fatal(err)
			}
		},
		e.Params(), e.Grads())
}

func TestEmbeddingBackwardBeforeForward(t *testing.T) {
	e := NewEmbedding(rand.New(rand.NewSource(1)), 4, 2)
	if err := e.Backward(tensor.New(1, 2)); err == nil {
		t.Fatal("Backward before Forward accepted")
	}
}

func TestLayerNormForwardNormalizes(t *testing.T) {
	l := NewLayerNorm(8)
	x := tensor.Randn(rand.New(rand.NewSource(3)), 5.0, 4, 8)
	out, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	// With γ=1, β=0 every row has ≈0 mean and ≈1 variance.
	for i := 0; i < 4; i++ {
		var mean, varsum float64
		for j := 0; j < 8; j++ {
			mean += float64(out.At(i, j))
		}
		mean /= 8
		for j := 0; j < 8; j++ {
			d := float64(out.At(i, j)) - mean
			varsum += d * d
		}
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("row %d mean %v", i, mean)
		}
		if v := varsum / 8; v < 0.95 || v > 1.05 {
			t.Fatalf("row %d variance %v", i, v)
		}
	}
	if _, err := l.Forward(tensor.New(4, 9)); err == nil {
		t.Fatal("wrong width accepted")
	}
}

func TestLayerNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLayerNorm(5)
	// Non-trivial γ/β so their gradients are exercised.
	for i := range l.Gamma.Data() {
		l.Gamma.Data()[i] = 1 + 0.3*float32(i)
		l.Beta.Data()[i] = 0.1 * float32(i)
	}
	x := tensor.Randn(rng, 1.0, 3, 5)
	checkGrad(t, "layernorm-params",
		func() *tensor.Tensor {
			out, err := l.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			return out
		},
		func(dY *tensor.Tensor) {
			if _, err := l.Backward(dY); err != nil {
				t.Fatal(err)
			}
		},
		l.Params(), l.Grads())
}

func TestLayerNormInputGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLayerNorm(4)
	x := tensor.Randn(rng, 1.0, 2, 4)
	y, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := l.Backward(lossGrad(y))
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-3
	for idx := 0; idx < x.Len(); idx++ {
		orig := x.Data()[idx]
		x.Data()[idx] = orig + eps
		up, _ := l.Forward(x)
		lUp := scalarLoss(up)
		x.Data()[idx] = orig - eps
		down, _ := l.Forward(x)
		lDown := scalarLoss(down)
		x.Data()[idx] = orig
		numeric := (lUp - lDown) / (2 * eps)
		got := float64(dx.Data()[idx])
		scale := math.Max(math.Abs(numeric), math.Max(math.Abs(got), 1))
		if diff := math.Abs(numeric - got); diff/scale > 2e-2 {
			t.Fatalf("dX[%d]: analytic %.5f vs numeric %.5f", idx, got, numeric)
		}
	}
}

func TestSelfAttentionShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewSelfAttention(rng, 6)
	x := tensor.Randn(rng, 1.0, 4, 6)
	y, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if s := y.Shape(); s[0] != 4 || s[1] != 6 {
		t.Fatalf("shape %v", s)
	}
	// Attention rows are a softmax: weights sum to 1.
	for i := 0; i < 4; i++ {
		var sum float64
		for j := 0; j < 4; j++ {
			w := a.lastWeights.At(i, j)
			if w < 0 {
				t.Fatal("negative attention weight")
			}
			sum += float64(w)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d weights sum %v", i, sum)
		}
	}
	if _, err := a.Forward(tensor.New(4, 7)); err == nil {
		t.Fatal("wrong width accepted")
	}
	fresh := NewSelfAttention(rng, 6)
	if _, err := fresh.Backward(tensor.New(4, 6)); err == nil {
		t.Fatal("Backward before Forward accepted")
	}
}

func TestSelfAttentionGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewSelfAttention(rng, 4)
	x := tensor.Randn(rng, 0.8, 3, 4)
	checkGrad(t, "attention",
		func() *tensor.Tensor {
			out, err := a.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			return out
		},
		func(dY *tensor.Tensor) {
			if _, err := a.Backward(dY); err != nil {
				t.Fatal(err)
			}
		},
		a.Params(), a.Grads())
}

func TestSelfAttentionInputGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := NewSelfAttention(rng, 4)
	x := tensor.Randn(rng, 0.8, 3, 4)
	y, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := a.Backward(lossGrad(y))
	if err != nil {
		t.Fatal(err)
	}
	// Numeric check of a few input entries.
	const eps = 1e-3
	for _, idx := range []int{0, 5, 11} {
		orig := x.Data()[idx]
		x.Data()[idx] = orig + eps
		up, _ := a.Forward(x)
		lUp := scalarLoss(up)
		x.Data()[idx] = orig - eps
		down, _ := a.Forward(x)
		lDown := scalarLoss(down)
		x.Data()[idx] = orig
		numeric := (lUp - lDown) / (2 * eps)
		got := float64(dx.Data()[idx])
		scale := math.Max(math.Abs(numeric), math.Max(math.Abs(got), 1))
		if diff := math.Abs(numeric - got); diff/scale > 2e-2 {
			t.Fatalf("dX[%d]: analytic %.5f vs numeric %.5f", idx, got, numeric)
		}
	}
}
