package train

import "testing"

func BenchmarkMLPStep(b *testing.B) {
	m, err := NewMLP(1, []int{64, 128, 10})
	if err != nil {
		b.Fatal(err)
	}
	data, err := NewSynthetic(2, 64, 10, 32)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := NewTrainer(m, NewAdam(m.Params(), 0.001), data)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransformerLMStep(b *testing.B) {
	m, err := NewTransformerLM(1, 128, 64, 128)
	if err != nil {
		b.Fatal(err)
	}
	data, err := NewTextData(2, 128, 32)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := NewLMTrainer(m, NewAdam(m.Params(), 0.001), data)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshot(b *testing.B) {
	m, _ := NewMLP(1, []int{128, 256, 10})
	data, _ := NewSynthetic(2, 128, 10, 32)
	tr, err := NewTrainer(m, NewAdam(m.Params(), 0.001), data)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, tr.StateSize())
	b.SetBytes(int64(tr.StateSize()))
	for i := 0; i < b.N; i++ {
		if _, err := tr.Snapshot(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRestore(b *testing.B) {
	m, _ := NewMLP(1, []int{128, 256, 10})
	data, _ := NewSynthetic(2, 128, 10, 32)
	tr, err := NewTrainer(m, NewAdam(m.Params(), 0.001), data)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, tr.StateSize())
	if _, err := tr.Snapshot(buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(tr.StateSize()))
	for i := 0; i < b.N; i++ {
		if err := tr.Restore(buf); err != nil {
			b.Fatal(err)
		}
	}
}
