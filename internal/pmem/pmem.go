// Package pmem emulates byte-addressable persistent memory with the x86
// persistence semantics PCcheck depends on (§2.3, §3.3 of the paper).
//
// On real Optane PMEM, the order in which cache lines reach the media can
// differ from program order: a regular store lands in the cache and persists
// only when the line is written back (clwb) or evicted; a non-temporal store
// bypasses the cache but still sits in write-pending queues until a fence.
// A crash therefore exposes an *arbitrary subset* of un-fenced lines.
//
// Region models exactly that, at cache-line (64 B) granularity:
//
//   - Store:     cached store — may or may not survive a crash.
//   - NTStore:   non-temporal store — pending until Fence; may or may not
//     survive a crash that happens before the fence.
//   - WriteBack: clwb — snapshots the line's current value as pending.
//   - Fence:     sfence — everything pending becomes durable.
//   - Crash:     adversarially decides the fate of every non-durable line
//     using a caller-provided choice function, then returns the
//     surviving contents.
//
// This adversarial model is what makes the crash-injection tests of the
// checkpoint engine meaningful: an algorithm that forgets a barrier will
// actually lose data here.
package pmem

import (
	"fmt"
	"sync"
)

// LineSize is the persistence granularity in bytes, matching x86 cache lines.
const LineSize = 64

// Region is an emulated persistent memory region. All methods are safe for
// concurrent use; writers to overlapping ranges must synchronize among
// themselves exactly as they would on real hardware.
type Region struct {
	mu        sync.Mutex
	size      int
	volatile  []byte           // current program-visible contents
	persisted []byte           // contents guaranteed to survive a crash
	pending   map[int][]byte   // line index → snapshot awaiting a fence
	dirty     map[int]struct{} // lines stored but never written back
}

// NewRegion allocates a zeroed region of the given size. Zero contents are
// considered durable (as if the device was freshly zeroed).
func NewRegion(size int) *Region {
	if size < 0 {
		panic("pmem: negative region size")
	}
	return &Region{
		size:      size,
		volatile:  make([]byte, size),
		persisted: make([]byte, size),
		pending:   make(map[int][]byte),
		dirty:     make(map[int]struct{}),
	}
}

// Size returns the region capacity in bytes.
func (r *Region) Size() int { return r.size }

func (r *Region) checkRange(off, n int) error {
	// off+n can wrap negative for adversarial offsets near MaxInt, so compare
	// against size without forming the sum.
	if off < 0 || n < 0 || n > r.size || off > r.size-n {
		return fmt.Errorf("pmem: range [%d,+%d) outside region of %d bytes", off, n, r.size)
	}
	return nil
}

// Store performs regular cached stores of data at off. The data is visible
// to readers immediately but is not durable until a WriteBack+Fence covers
// it (or the crash adversary happens to evict it).
func (r *Region) Store(off int, data []byte) error {
	if err := r.checkRange(off, len(data)); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	copy(r.volatile[off:], data)
	for line := off / LineSize; line <= (off+len(data)-1)/LineSize && len(data) > 0; line++ {
		r.dirty[line] = struct{}{}
		delete(r.pending, line) // newer store invalidates an older snapshot
	}
	return nil
}

// NTStore performs non-temporal stores: the data is visible immediately and
// queued for persistence; it becomes durable at the next Fence.
func (r *Region) NTStore(off int, data []byte) error {
	if err := r.checkRange(off, len(data)); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	copy(r.volatile[off:], data)
	if len(data) == 0 {
		return nil
	}
	first, last := off/LineSize, (off+len(data)-1)/LineSize
	for line := first; line <= last; line++ {
		r.snapshotLineLocked(line)
		delete(r.dirty, line)
	}
	return nil
}

// WriteBack emulates clwb over [off, off+n): the current contents of every
// covered line are queued for persistence at the next Fence.
func (r *Region) WriteBack(off, n int) error {
	if err := r.checkRange(off, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	first, last := off/LineSize, (off+n-1)/LineSize
	for line := first; line <= last; line++ {
		r.snapshotLineLocked(line)
		delete(r.dirty, line)
	}
	return nil
}

// snapshotLineLocked records the line's current volatile contents as the
// value that a future Fence will persist. Callers hold r.mu.
func (r *Region) snapshotLineLocked(line int) {
	start := line * LineSize
	end := start + LineSize
	if end > r.size {
		end = r.size
	}
	snap := make([]byte, end-start)
	copy(snap, r.volatile[start:end])
	r.pending[line] = snap
}

// Fence emulates sfence: every pending line becomes durable.
func (r *Region) Fence() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for line, snap := range r.pending {
		copy(r.persisted[line*LineSize:], snap)
	}
	r.pending = make(map[int][]byte)
}

// Persist is the convenience PCcheck's PMEM path uses: non-temporal store
// followed by a fence covering only this write. It is equivalent to
// NTStore+Fence but does not force other writers' pending lines to persist,
// mirroring the per-CPU nature of the store buffers (§4.1: "the fence is
// internal to each CPU").
func (r *Region) Persist(off int, data []byte) error {
	if err := r.checkRange(off, len(data)); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	copy(r.volatile[off:], data)
	copy(r.persisted[off:], data)
	if len(data) == 0 {
		return nil
	}
	first, last := off/LineSize, (off+len(data)-1)/LineSize
	for line := first; line <= last; line++ {
		delete(r.pending, line)
		delete(r.dirty, line)
	}
	return nil
}

// ReadAt copies the current program-visible contents at off into p.
func (r *Region) ReadAt(p []byte, off int) error {
	if err := r.checkRange(off, len(p)); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	copy(p, r.volatile[off:])
	return nil
}

// CrashChoice decides the fate of a single non-durable line during a crash.
// line is the line index; pending reports whether the line had been flushed
// (true) or was merely dirty in the cache (false). Returning true persists
// the line's last snapshot (pending) or current value (dirty).
type CrashChoice func(line int, pending bool) bool

// DropAll is the pessimistic adversary: nothing un-fenced survives.
func DropAll(int, bool) bool { return false }

// KeepAll is the optimistic adversary: every un-fenced write survives (as if
// all caches drained just in time).
func KeepAll(int, bool) bool { return true }

// Crash simulates a power failure. Every line that was made durable by a
// Fence (or Persist) survives; the fate of each pending or dirty line is
// decided by choose. The region's contents are reset to the surviving state
// and all pending/dirty bookkeeping is cleared — exactly what a post-reboot
// mmap of the device would observe.
func (r *Region) Crash(choose CrashChoice) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for line, snap := range r.pending {
		if choose(line, true) {
			copy(r.persisted[line*LineSize:], snap)
		}
	}
	for line := range r.dirty {
		if choose(line, false) {
			start := line * LineSize
			end := start + LineSize
			if end > r.size {
				end = r.size
			}
			copy(r.persisted[start:end], r.volatile[start:end])
		}
	}
	copy(r.volatile, r.persisted)
	r.pending = make(map[int][]byte)
	r.dirty = make(map[int]struct{})
}

// CloneDurable returns a fresh Region holding exactly the contents that
// would survive a crash under the DropAll adversary right now — i.e. what a
// post-reboot remap of the device would observe. Unlike Crash it does not
// disturb the live region, so tests can fork a "crashed replica" at an
// arbitrary instant while writers keep running, which is how the checkpoint
// engine's durability invariant is probed under real concurrency.
func (r *Region) CloneDurable() *Region {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := NewRegion(r.size)
	copy(c.volatile, r.persisted)
	copy(c.persisted, r.persisted)
	return c
}

// DurableSnapshot returns a copy of the contents that would survive a crash
// under the DropAll adversary right now. Used by tests to assert durability
// without destroying the region.
func (r *Region) DurableSnapshot() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]byte, r.size)
	copy(out, r.persisted)
	return out
}
