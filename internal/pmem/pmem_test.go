package pmem

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestStoreVisibleButNotDurable(t *testing.T) {
	r := NewRegion(256)
	if err := r.Store(10, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := r.ReadAt(got, 10); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("volatile read = %q", got)
	}
	r.Crash(DropAll)
	if err := r.ReadAt(got, 10); err != nil {
		t.Fatal(err)
	}
	if string(got) == "hello" {
		t.Fatal("un-fenced store survived a DropAll crash")
	}
}

func TestNTStoreNeedsFence(t *testing.T) {
	r := NewRegion(256)
	if err := r.NTStore(0, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	r.Crash(DropAll)
	got := make([]byte, 4)
	_ = r.ReadAt(got, 0)
	if string(got) == "abcd" {
		t.Fatal("NT store without fence survived DropAll crash")
	}

	r2 := NewRegion(256)
	_ = r2.NTStore(0, []byte("abcd"))
	r2.Fence()
	r2.Crash(DropAll)
	_ = r2.ReadAt(got, 0)
	if string(got) != "abcd" {
		t.Fatal("NT store + fence did not survive crash")
	}
}

func TestWriteBackPlusFenceDurable(t *testing.T) {
	r := NewRegion(256)
	_ = r.Store(64, []byte("wxyz"))
	if err := r.WriteBack(64, 4); err != nil {
		t.Fatal(err)
	}
	r.Fence()
	r.Crash(DropAll)
	got := make([]byte, 4)
	_ = r.ReadAt(got, 64)
	if string(got) != "wxyz" {
		t.Fatal("clwb+fence data lost")
	}
}

func TestStoreAfterWriteBackInvalidatesSnapshot(t *testing.T) {
	// A store to a line after its clwb but before the fence means the
	// *snapshot* value is what persists at the fence — not the newer store.
	r := NewRegion(256)
	_ = r.Store(0, []byte("old!"))
	_ = r.WriteBack(0, 4)
	_ = r.Store(0, []byte("new!")) // re-dirties the line, drops the snapshot
	r.Fence()
	r.Crash(DropAll)
	got := make([]byte, 4)
	_ = r.ReadAt(got, 0)
	if string(got) == "new!" {
		t.Fatal("newer un-flushed store must not be durable")
	}
	if string(got) == "old!" {
		t.Fatal("stale snapshot persisted after the line was re-dirtied")
	}
}

func TestPersistIsImmediatelyDurable(t *testing.T) {
	r := NewRegion(256)
	if err := r.Persist(100, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	r.Crash(DropAll)
	got := make([]byte, 7)
	_ = r.ReadAt(got, 100)
	if string(got) != "durable" {
		t.Fatalf("Persist data lost: %q", got)
	}
}

func TestCrashKeepAll(t *testing.T) {
	r := NewRegion(256)
	_ = r.Store(0, []byte("keep"))
	r.Crash(KeepAll)
	got := make([]byte, 4)
	_ = r.ReadAt(got, 0)
	if string(got) != "keep" {
		t.Fatal("KeepAll adversary should retain dirty lines")
	}
}

func TestCrashClearsBookkeeping(t *testing.T) {
	r := NewRegion(256)
	_ = r.Store(0, []byte("a"))
	_ = r.NTStore(64, []byte("b"))
	r.Crash(DropAll)
	// After the crash, a fence must not resurrect anything.
	r.Fence()
	snap := r.DurableSnapshot()
	if snap[0] == 'a' || snap[64] == 'b' {
		t.Fatal("fence after crash resurrected lost writes")
	}
}

func TestRangeChecks(t *testing.T) {
	r := NewRegion(128)
	if err := r.Store(120, make([]byte, 16)); err == nil {
		t.Fatal("out-of-range Store should error")
	}
	if err := r.NTStore(-1, []byte("x")); err == nil {
		t.Fatal("negative offset should error")
	}
	if err := r.WriteBack(0, 129); err == nil {
		t.Fatal("oversized WriteBack should error")
	}
	if err := r.ReadAt(make([]byte, 1), 128); err == nil {
		t.Fatal("read past end should error")
	}
	if err := r.Persist(127, []byte("ab")); err == nil {
		t.Fatal("Persist past end should error")
	}
}

func TestZeroLengthOps(t *testing.T) {
	r := NewRegion(64)
	if err := r.Store(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.NTStore(64, nil); err != nil {
		t.Fatal(err) // off==size with n==0 is a legal empty range
	}
	if err := r.WriteBack(0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPartialLineAtRegionEnd(t *testing.T) {
	r := NewRegion(100) // not a multiple of LineSize
	data := []byte("tail-data")
	if err := r.NTStore(96, data[:4]); err != nil {
		t.Fatal(err)
	}
	r.Fence()
	r.Crash(DropAll)
	got := make([]byte, 4)
	_ = r.ReadAt(got, 96)
	if string(got) != "tail" {
		t.Fatalf("partial final line lost: %q", got)
	}
}

// Property: under a random adversary, the surviving value of each line is
// either the last fenced value or the last written value — never anything
// else (no corruption, no interleaving at sub-line granularity from a
// single writer).
func TestQuickCrashAdversaryOnlyYieldsRealValues(t *testing.T) {
	f := func(seed int64, fence bool) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRegion(LineSize)
		v1 := bytes.Repeat([]byte{1}, LineSize)
		v2 := bytes.Repeat([]byte{2}, LineSize)
		_ = r.NTStore(0, v1)
		r.Fence() // v1 is durable
		_ = r.NTStore(0, v2)
		if fence {
			r.Fence()
		}
		r.Crash(func(int, bool) bool { return rng.Intn(2) == 0 })
		got := make([]byte, LineSize)
		_ = r.ReadAt(got, 0)
		if fence {
			return bytes.Equal(got, v2)
		}
		return bytes.Equal(got, v1) || bytes.Equal(got, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent writers on disjoint ranges must not corrupt each other.
func TestConcurrentDisjointWriters(t *testing.T) {
	const writers = 8
	const per = 1024
	r := NewRegion(writers * per)
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			block := bytes.Repeat([]byte{byte(w + 1)}, per)
			for i := 0; i < 50; i++ {
				if err := r.NTStore(w*per, block); err != nil {
					t.Error(err)
					return
				}
				r.Fence()
			}
		}(w)
	}
	wg.Wait()
	r.Crash(DropAll)
	for w := 0; w < writers; w++ {
		got := make([]byte, per)
		_ = r.ReadAt(got, w*per)
		for _, b := range got {
			if b != byte(w+1) {
				t.Fatalf("writer %d range corrupted: found byte %d", w, b)
			}
		}
	}
}

func TestDurableSnapshotDoesNotMutate(t *testing.T) {
	r := NewRegion(64)
	_ = r.NTStore(0, []byte("live"))
	snap := r.DurableSnapshot()
	if string(snap[:4]) == "live" {
		t.Fatal("un-fenced write in durable snapshot")
	}
	r.Fence()
	snap2 := r.DurableSnapshot()
	if string(snap2[:4]) != "live" {
		t.Fatal("fenced write missing from durable snapshot")
	}
	// Mutating the returned slice must not touch the region.
	snap2[0] = 'X'
	r.Crash(DropAll)
	got := make([]byte, 4)
	_ = r.ReadAt(got, 0)
	if string(got) != "live" {
		t.Fatal("DurableSnapshot aliases internal state")
	}
}
