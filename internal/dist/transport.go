// Package dist implements PCcheck's multi-node coordination (§3.1, §4.1):
// one orchestrator per node checkpoints its model partition independently,
// and after each successful local publish the peers agree — through rank 0 —
// on the latest *globally consistent* checkpoint, i.e. the newest ID that
// every worker has durably persisted. Restores then load the same iteration
// on every pipeline stage.
//
// Two transports are provided: an in-process one (channels) for tests and
// single-binary simulations, and a TCP one (net) for real multi-process
// deployments. Both carry the same small fixed-format messages. A third,
// ChaosTransport, wraps either with deterministic network-fault injection
// (see chaos.go).
package dist

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// MsgKind discriminates coordination messages.
type MsgKind uint8

const (
	// KindReport carries a worker's freshly persisted checkpoint ID to
	// rank 0. Seq is the worker's own 1-based round counter, so rank 0
	// places the report in the right round even when frames are
	// duplicated or reordered.
	KindReport MsgKind = iota + 1
	// KindCommit is rank 0's broadcast that an ID is globally consistent.
	// Seq is the committed round index; workers drop stale (Seq ≤ last
	// seen) commit frames.
	KindCommit
	// KindPing is a liveness probe. Rank 0 pings workers on the heartbeat
	// interval (Seq = probe sequence); a worker pings rank 0 as a hello
	// when (re)joining the group.
	KindPing
	// KindPong answers a rank-0 ping, echoing its Seq.
	KindPong
	// KindResync is rank 0's out-of-band "the globally consistent ID is
	// CheckpointID as of round Seq" — sent to a (re)joining worker so it
	// can resume from the agreed checkpoint. Unlike KindCommit it never
	// answers a pending Commit call.
	KindResync

	// kindMax bounds the known kinds; frames with a kind beyond it are
	// skipped by the version-tolerant read loop rather than killing the
	// connection, so a newer peer can speak extra kinds to an older one.
	kindMax = KindResync
)

// Message is one coordination datagram.
type Message struct {
	From         int
	Kind         MsgKind
	CheckpointID uint64
	// Seq is a per-kind sequence number: the sender's round counter on
	// reports, the committed round on commits/resyncs, the probe number
	// on pings/pongs. It is what makes the protocol tolerate duplicated
	// and reordered frames.
	Seq uint64
}

const wireSize = 1 + 4 + 8 + 8

// errUnknownKind marks a frame whose kind this build does not know. The
// frame is well-formed (fixed size), so readers skip it instead of tearing
// the connection down — the version tolerance that lets mixed builds limp
// along during a rolling restart.
var errUnknownKind = errors.New("dist: unknown message kind")

func (m Message) encode() []byte {
	buf := make([]byte, wireSize)
	buf[0] = byte(m.Kind)
	binary.LittleEndian.PutUint32(buf[1:], uint32(m.From))
	binary.LittleEndian.PutUint64(buf[5:], m.CheckpointID)
	binary.LittleEndian.PutUint64(buf[13:], m.Seq)
	return buf
}

func decodeMessage(buf []byte) (Message, error) {
	if len(buf) < wireSize {
		return Message{}, io.ErrUnexpectedEOF
	}
	k := MsgKind(buf[0])
	if k == 0 || k > kindMax {
		return Message{}, fmt.Errorf("%w %d", errUnknownKind, k)
	}
	return Message{
		Kind:         k,
		From:         int(binary.LittleEndian.Uint32(buf[1:])),
		CheckpointID: binary.LittleEndian.Uint64(buf[5:]),
		Seq:          binary.LittleEndian.Uint64(buf[13:]),
	}, nil
}

// Transport moves Messages between ranks. Implementations must allow
// concurrent Send and Recv.
type Transport interface {
	// Rank is this worker's index; rank 0 coordinates.
	Rank() int
	// WorldSize is the number of workers.
	WorldSize() int
	// Send delivers msg to the given rank.
	Send(ctx context.Context, to int, msg Message) error
	// Recv blocks for the next message addressed to this rank.
	Recv(ctx context.Context) (Message, error)
	// Close releases the transport.
	Close() error
}

// PeerEvents is implemented by transports that observe peer connectivity
// (rank 0's TCP side). The hook fires with up=true when a worker
// (re)attaches with a fresh session epoch and up=false when its connection
// dies. The Coordinator registers itself here to drive instant failure
// detection and rejoin, ahead of what heartbeats alone would notice.
type PeerEvents interface {
	SetPeerHook(func(rank int, up bool))
}

// RetryPolicy bounds DialTCP's reconnect loop — the same shape as the
// engine's persist-path retry (Config.Retry): MaxAttempts tries with
// exponential backoff and jitter. The zero value selects the dial
// defaults (10 attempts, 50ms base, 1s cap), NOT a single attempt —
// workers and rank 0 race to start in every real deployment, so one-shot
// dialing is almost never what a caller wants.
type RetryPolicy struct {
	// MaxAttempts is the total number of dial attempts (0 → 10; 1 = no
	// retry).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
	// Multiplier grows the backoff between attempts (default 2).
	Multiplier float64
	// Jitter randomizes each backoff by ±Jitter fraction (0 → 0.2,
	// negative disables) so a restarted fleet does not redial in lockstep.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 10
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// backoff returns the jittered sleep before retry n (1-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := float64(p.BaseBackoff)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rand.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// --- in-process transport ----------------------------------------------------

// Local is a channel-backed Transport for same-process worker groups.
type Local struct {
	rank  int
	world int
	inbox chan Message
	peers []*Local
	once  sync.Once
	done  chan struct{}
}

// NewLocalGroup wires up n in-process transports.
func NewLocalGroup(n int) []*Local {
	group := make([]*Local, n)
	for i := range group {
		group[i] = &Local{
			rank:  i,
			world: n,
			inbox: make(chan Message, 8*n),
			done:  make(chan struct{}),
		}
	}
	for i := range group {
		group[i].peers = group
	}
	return group
}

// Rank implements Transport.
func (l *Local) Rank() int { return l.rank }

// WorldSize implements Transport.
func (l *Local) WorldSize() int { return l.world }

// Send implements Transport.
func (l *Local) Send(ctx context.Context, to int, msg Message) error {
	if to < 0 || to >= l.world {
		return fmt.Errorf("dist: rank %d outside world of %d", to, l.world)
	}
	msg.From = l.rank
	peer := l.peers[to]
	select {
	case peer.inbox <- msg:
		return nil
	case <-l.done:
		// Our own Close must unblock an in-flight Send even when the peer's
		// inbox is full and the peer never drains it — otherwise a worker
		// shutting down mid-round hangs forever on a dead neighbour.
		return fmt.Errorf("dist: rank %d is closed", l.rank)
	case <-peer.done:
		return fmt.Errorf("dist: rank %d is closed", to)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Recv implements Transport. Messages already delivered are drained before
// a close is honoured, so a commit that raced with shutdown is not lost.
func (l *Local) Recv(ctx context.Context) (Message, error) {
	select {
	case m := <-l.inbox:
		return m, nil
	default:
	}
	select {
	case m := <-l.inbox:
		return m, nil
	case <-l.done:
		return Message{}, fmt.Errorf("dist: transport closed")
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// Close implements Transport.
func (l *Local) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// --- TCP transport -------------------------------------------------------------

// helloMagic opens every handshake frame, so rank 0 can reject strays and
// old-format peers with a clear error instead of misparsing their bytes.
const helloMagic = 0x50434332 // "PCC2"

const helloSize = 4 + 4 + 4 // magic, rank, epoch

// TCP is a Transport over real sockets: rank 0 accepts one connection per
// peer; other ranks hold a single connection to rank 0. PCcheck's protocol
// is a star (everything flows through rank 0), so no peer-to-peer links are
// needed.
//
// Each dialing worker introduces itself with a hello frame carrying its
// rank and a session epoch. After the group assembles, rank 0 keeps
// accepting: a new connection for an already-known rank with a *different*
// epoch is a restarted worker and replaces the old connection (the peer
// hook fires with up=true); the same epoch is a duplicate and is refused.
// Rank 0 also closes the listener when the transport closes — it owns the
// accept loop for the lifetime of the group.
type TCP struct {
	rank  int
	world int

	mu     sync.Mutex
	conns  map[int]net.Conn // rank → connection (rank 0: all peers; others: {0: conn})
	epochs map[int]uint32   // rank 0: session epoch per peer
	hook   func(rank int, up bool)

	ln      net.Listener // rank 0 only: owned once ListenTCP returns
	inbox   chan Message
	readers sync.WaitGroup
	once    sync.Once
	done    chan struct{}
}

// handshakeTimeout bounds how long rank 0 waits for a freshly accepted
// connection to send its hello frame. Without it a peer that connects and
// then stalls (or a port scanner) wedges the whole group's setup forever.
// A variable so tests can shrink it.
var handshakeTimeout = 10 * time.Second

// readHello reads and validates one handshake frame.
func readHello(conn net.Conn, world int) (rank int, epoch uint32, err error) {
	var hello [helloSize]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return 0, 0, fmt.Errorf("dist: peer handshake: %w", err)
	}
	if binary.LittleEndian.Uint32(hello[:]) != helloMagic {
		return 0, 0, fmt.Errorf("dist: peer handshake: bad magic (old client or stray connection)")
	}
	rank = int(binary.LittleEndian.Uint32(hello[4:]))
	epoch = binary.LittleEndian.Uint32(hello[8:])
	if rank <= 0 || rank >= world {
		return 0, 0, fmt.Errorf("dist: peer announced invalid rank %d", rank)
	}
	return rank, epoch, nil
}

// ListenTCP starts rank 0: it accepts world−1 peers on ln, each of which
// must introduce itself with a hello frame carrying its rank and session
// epoch. The handshake is bounded: each accepted connection has
// handshakeTimeout to send its hello, and cancelling ctx closes ln to
// unblock Accept — so a caller can always abandon a group that never fully
// assembles. After assembly, rank 0 keeps accepting so restarted workers
// can rejoin (see TCP); the transport then owns ln and closes it on Close.
func ListenTCP(ctx context.Context, ln net.Listener, world int) (*TCP, error) {
	t := &TCP{
		rank:   0,
		world:  world,
		conns:  make(map[int]net.Conn),
		epochs: make(map[int]uint32),
		inbox:  make(chan Message, 8*world),
		done:   make(chan struct{}),
	}
	// Accept has no context parameter; closing the listener is the only
	// portable way to honour cancellation promptly (same pattern as
	// net/http.Server shutdown). stop() reports whether it won the race.
	stop := context.AfterFunc(ctx, func() { _ = ln.Close() })
	defer stop()
	for len(t.conns) < world-1 {
		if dl, ok := ctx.Deadline(); ok {
			type deadliner interface{ SetDeadline(time.Time) error }
			if d, ok := ln.(deadliner); ok {
				_ = d.SetDeadline(dl)
			}
		}
		conn, err := ln.Accept()
		if err != nil {
			t.Close()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
		hsDeadline := time.Now().Add(handshakeTimeout)
		if dl, ok := ctx.Deadline(); ok && dl.Before(hsDeadline) {
			hsDeadline = dl
		}
		_ = conn.SetReadDeadline(hsDeadline)
		peer, epoch, err := readHello(conn, world)
		if err != nil {
			conn.Close()
			t.Close()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
		_ = conn.SetReadDeadline(time.Time{})
		t.mu.Lock()
		if _, dup := t.conns[peer]; dup {
			t.mu.Unlock()
			conn.Close()
			t.Close()
			return nil, fmt.Errorf("dist: duplicate rank %d", peer)
		}
		t.conns[peer] = conn
		t.epochs[peer] = epoch
		t.mu.Unlock()
		t.readers.Add(1)
		go t.readLoop(peer, conn)
	}
	// Clear any listener deadline set for the assembly phase, then keep
	// accepting for rejoins until the transport closes.
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		_ = d.SetDeadline(time.Time{})
	}
	t.ln = ln
	t.readers.Add(1)
	go t.acceptLoop(ln)
	return t, nil
}

// acceptLoop lets restarted workers re-attach after the initial assembly:
// a hello for a known rank with a new session epoch replaces the old
// connection and fires the peer hook; the same epoch is a duplicate
// connection from a still-live worker and is refused.
func (t *TCP) acceptLoop(ln net.Listener) {
	defer t.readers.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (transport Close) or fatal accept error
		}
		_ = conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
		peer, epoch, err := readHello(conn, t.world)
		if err != nil {
			conn.Close()
			continue
		}
		_ = conn.SetReadDeadline(time.Time{})
		t.mu.Lock()
		if old, ok := t.conns[peer]; ok && t.epochs[peer] == epoch {
			t.mu.Unlock()
			conn.Close() // duplicate connection from the live session
			continue
		} else if ok {
			old.Close() // superseded session: tear the stale conn down
		}
		t.conns[peer] = conn
		t.epochs[peer] = epoch
		hook := t.hook
		t.mu.Unlock()
		t.readers.Add(1)
		go t.readLoop(peer, conn)
		if hook != nil {
			hook(peer, true)
		}
	}
}

// DialOptions tunes DialTCP.
type DialOptions struct {
	// Epoch identifies this worker session to rank 0. A restarted worker
	// must present a different epoch than its previous incarnation so
	// rank 0 treats the new connection as a rejoin rather than a
	// duplicate. 0 derives one from the wall clock.
	Epoch uint32
	// Retry bounds the dial attempts (zero value = dial defaults).
	Retry RetryPolicy
}

// DialTCP connects a non-zero rank to rank 0 at addr. The dial is retried
// with backoff and jitter (the RetryPolicy dial defaults) until ctx
// expires or the attempts run out, so workers may start before rank 0's
// listener is up.
func DialTCP(ctx context.Context, addr string, rank, world int) (*TCP, error) {
	return DialTCPWith(ctx, addr, rank, world, DialOptions{})
}

// DialTCPWith is DialTCP with an explicit session epoch and retry policy.
func DialTCPWith(ctx context.Context, addr string, rank, world int, opts DialOptions) (*TCP, error) {
	if rank <= 0 || rank >= world {
		return nil, fmt.Errorf("dist: DialTCP is for ranks 1..world-1, got %d", rank)
	}
	epoch := opts.Epoch
	if epoch == 0 {
		// Distinct across restarts is all that matters; wall-clock nanos
		// truncated to 32 bits differ between any two real process starts.
		epoch = uint32(time.Now().UnixNano())
		if epoch == 0 {
			epoch = 1
		}
	}
	pol := opts.Retry.withDefaults()
	var lastErr error
	for attempt := 1; ; attempt++ {
		conn, err := dialOnce(ctx, addr, rank, epoch)
		if err == nil {
			t := &TCP{
				rank:  rank,
				world: world,
				conns: map[int]net.Conn{0: conn},
				inbox: make(chan Message, 16),
				done:  make(chan struct{}),
			}
			t.readers.Add(1)
			go t.readLoop(0, conn)
			return t, nil
		}
		lastErr = err
		if attempt >= pol.MaxAttempts {
			return nil, fmt.Errorf("dist: dial rank 0 at %s: %d attempts exhausted: %w", addr, attempt, lastErr)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("dist: dial rank 0 at %s: %w (last error: %v)", addr, ctx.Err(), lastErr)
		case <-time.After(pol.backoff(attempt)):
		}
	}
}

// dialOnce makes one connection + hello attempt.
func dialOnce(ctx context.Context, addr string, rank int, epoch uint32) (net.Conn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	var hello [helloSize]byte
	binary.LittleEndian.PutUint32(hello[:], helloMagic)
	binary.LittleEndian.PutUint32(hello[4:], uint32(rank))
	binary.LittleEndian.PutUint32(hello[8:], epoch)
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetWriteDeadline(dl)
	}
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetWriteDeadline(time.Time{})
	return conn, nil
}

// SetPeerHook implements PeerEvents: the hook observes workers rejoining
// (acceptLoop) and peer connections dying (readLoop exit) on rank 0.
func (t *TCP) SetPeerHook(h func(rank int, up bool)) {
	t.mu.Lock()
	t.hook = h
	t.mu.Unlock()
}

func (t *TCP) readLoop(peer int, conn net.Conn) {
	defer t.readers.Done()
	// A non-leader rank has exactly one connection — to rank 0. When it
	// dies, every pending and future Recv must fail promptly rather than
	// block forever (the elastic framework then restarts the worker, §5.2.3).
	if t.rank != 0 {
		defer t.signalClosed()
	} else {
		defer func() {
			// Rank 0: this peer's conn died. Drop it from the table (unless a
			// rejoin already replaced it) and tell the hook.
			t.mu.Lock()
			stale := t.conns[peer] == conn
			if stale {
				delete(t.conns, peer)
			}
			hook := t.hook
			closed := false
			select {
			case <-t.done:
				closed = true
			default:
			}
			t.mu.Unlock()
			if stale && !closed && hook != nil {
				hook(peer, false)
			}
		}()
	}
	buf := make([]byte, wireSize)
	for {
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		m, err := decodeMessage(buf)
		if err != nil {
			if errors.Is(err, errUnknownKind) {
				continue // version tolerance: skip frames from newer builds
			}
			return
		}
		if t.rank == 0 {
			// Never trust the wire's From on rank 0: the handshake already
			// authenticated which rank owns this connection.
			m.From = peer
		}
		select {
		case t.inbox <- m:
		case <-t.done:
			return
		}
	}
}

// signalClosed marks the transport dead without waiting for readers (which
// would deadlock when called from a reader itself).
func (t *TCP) signalClosed() {
	t.once.Do(func() {
		close(t.done)
		t.mu.Lock()
		for _, c := range t.conns {
			c.Close()
		}
		ln := t.ln
		t.mu.Unlock()
		if ln != nil {
			ln.Close()
		}
	})
}

// Rank implements Transport.
func (t *TCP) Rank() int { return t.rank }

// WorldSize implements Transport.
func (t *TCP) WorldSize() int { return t.world }

// Send implements Transport.
func (t *TCP) Send(ctx context.Context, to int, msg Message) error {
	msg.From = t.rank
	t.mu.Lock()
	conn := t.conns[to]
	t.mu.Unlock()
	if conn == nil {
		if t.rank == 0 && to > 0 && to < t.world {
			return fmt.Errorf("dist: rank %d is not connected", to)
		}
		return fmt.Errorf("dist: rank %d has no connection to %d (star topology: talk to rank 0)", t.rank, to)
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetWriteDeadline(dl)
	} else {
		// A previous Send's deadline sticks to the connection otherwise:
		// one deadline-bearing call would make every later deadline-free
		// Send fail with a timeout once that old instant passes.
		_ = conn.SetWriteDeadline(time.Time{})
	}
	_, err := conn.Write(msg.encode())
	return err
}

// Recv implements Transport. Messages already delivered are drained before
// a close is honoured, so a commit that raced with a peer's shutdown is not
// lost.
func (t *TCP) Recv(ctx context.Context) (Message, error) {
	select {
	case m := <-t.inbox:
		return m, nil
	default:
	}
	select {
	case m := <-t.inbox:
		return m, nil
	case <-t.done:
		return Message{}, fmt.Errorf("dist: transport closed")
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.signalClosed()
	t.readers.Wait()
	return nil
}

// PartitionRange splits a pipeline-parallel model state of total bytes into
// per-worker shards: worker rank owns [off, off+n). The remainder goes to
// the last worker.
func PartitionRange(total int64, rank, world int) (off, n int64, err error) {
	if world <= 0 || rank < 0 || rank >= world {
		return 0, 0, fmt.Errorf("dist: rank %d outside world of %d", rank, world)
	}
	if total < 0 {
		return 0, 0, fmt.Errorf("dist: negative total %d", total)
	}
	share := total / int64(world)
	off = share * int64(rank)
	n = share
	if rank == world-1 {
		n = total - off
	}
	return off, n, nil
}

// HybridPartitionRange implements §3.1's combined data + pipeline
// parallelism: the model is first split across pipeline stages; each stage's
// partition is then split again among that stage's data-parallel replicas,
// "reducing the overall checkpointing overhead" because every replica
// persists only stageBytes/replicas. The returned range is an absolute
// offset into the full model state.
func HybridPartitionRange(total int64, stage, stages, replica, replicas int) (off, n int64, err error) {
	stageOff, stageBytes, err := PartitionRange(total, stage, stages)
	if err != nil {
		return 0, 0, fmt.Errorf("dist: pipeline split: %w", err)
	}
	repOff, repBytes, err := PartitionRange(stageBytes, replica, replicas)
	if err != nil {
		return 0, 0, fmt.Errorf("dist: data-parallel split: %w", err)
	}
	return stageOff + repOff, repBytes, nil
}
