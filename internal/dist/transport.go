// Package dist implements PCcheck's multi-node coordination (§3.1, §4.1):
// one orchestrator per node checkpoints its model partition independently,
// and after each successful local publish the peers agree — through rank 0 —
// on the latest *globally consistent* checkpoint, i.e. the newest ID that
// every worker has durably persisted. Restores then load the same iteration
// on every pipeline stage.
//
// Two transports are provided: an in-process one (channels) for tests and
// single-binary simulations, and a TCP one (net) for real multi-process
// deployments. Both carry the same small fixed-format messages.
package dist

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MsgKind discriminates coordination messages.
type MsgKind uint8

const (
	// KindReport carries a worker's freshly persisted checkpoint ID to
	// rank 0.
	KindReport MsgKind = iota + 1
	// KindCommit is rank 0's broadcast that an ID is globally consistent.
	KindCommit
)

// Message is one coordination datagram.
type Message struct {
	From         int
	Kind         MsgKind
	CheckpointID uint64
}

const wireSize = 1 + 4 + 8

func (m Message) encode() []byte {
	buf := make([]byte, wireSize)
	buf[0] = byte(m.Kind)
	binary.LittleEndian.PutUint32(buf[1:], uint32(m.From))
	binary.LittleEndian.PutUint64(buf[5:], m.CheckpointID)
	return buf
}

func decodeMessage(buf []byte) (Message, error) {
	if len(buf) < wireSize {
		return Message{}, io.ErrUnexpectedEOF
	}
	k := MsgKind(buf[0])
	if k != KindReport && k != KindCommit {
		return Message{}, fmt.Errorf("dist: unknown message kind %d", k)
	}
	return Message{
		Kind:         k,
		From:         int(binary.LittleEndian.Uint32(buf[1:])),
		CheckpointID: binary.LittleEndian.Uint64(buf[5:]),
	}, nil
}

// Transport moves Messages between ranks. Implementations must allow
// concurrent Send and Recv.
type Transport interface {
	// Rank is this worker's index; rank 0 coordinates.
	Rank() int
	// WorldSize is the number of workers.
	WorldSize() int
	// Send delivers msg to the given rank.
	Send(ctx context.Context, to int, msg Message) error
	// Recv blocks for the next message addressed to this rank.
	Recv(ctx context.Context) (Message, error)
	// Close releases the transport.
	Close() error
}

// --- in-process transport ----------------------------------------------------

// Local is a channel-backed Transport for same-process worker groups.
type Local struct {
	rank  int
	world int
	inbox chan Message
	peers []*Local
	once  sync.Once
	done  chan struct{}
}

// NewLocalGroup wires up n in-process transports.
func NewLocalGroup(n int) []*Local {
	group := make([]*Local, n)
	for i := range group {
		group[i] = &Local{
			rank:  i,
			world: n,
			inbox: make(chan Message, 4*n),
			done:  make(chan struct{}),
		}
	}
	for i := range group {
		group[i].peers = group
	}
	return group
}

// Rank implements Transport.
func (l *Local) Rank() int { return l.rank }

// WorldSize implements Transport.
func (l *Local) WorldSize() int { return l.world }

// Send implements Transport.
func (l *Local) Send(ctx context.Context, to int, msg Message) error {
	if to < 0 || to >= l.world {
		return fmt.Errorf("dist: rank %d outside world of %d", to, l.world)
	}
	msg.From = l.rank
	peer := l.peers[to]
	select {
	case peer.inbox <- msg:
		return nil
	case <-l.done:
		// Our own Close must unblock an in-flight Send even when the peer's
		// inbox is full and the peer never drains it — otherwise a worker
		// shutting down mid-round hangs forever on a dead neighbour.
		return fmt.Errorf("dist: rank %d is closed", l.rank)
	case <-peer.done:
		return fmt.Errorf("dist: rank %d is closed", to)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Recv implements Transport. Messages already delivered are drained before
// a close is honoured, so a commit that raced with shutdown is not lost.
func (l *Local) Recv(ctx context.Context) (Message, error) {
	select {
	case m := <-l.inbox:
		return m, nil
	default:
	}
	select {
	case m := <-l.inbox:
		return m, nil
	case <-l.done:
		return Message{}, fmt.Errorf("dist: transport closed")
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// Close implements Transport.
func (l *Local) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// --- TCP transport -------------------------------------------------------------

// TCP is a Transport over real sockets: rank 0 accepts one connection per
// peer; other ranks hold a single connection to rank 0. PCcheck's protocol
// is a star (everything flows through rank 0), so no peer-to-peer links are
// needed.
type TCP struct {
	rank  int
	world int

	mu    sync.Mutex
	conns map[int]net.Conn // rank → connection (rank 0: all peers; others: {0: conn})

	inbox   chan Message
	readers sync.WaitGroup
	once    sync.Once
	done    chan struct{}
}

// handshakeTimeout bounds how long rank 0 waits for a freshly accepted
// connection to send its hello frame. Without it a peer that connects and
// then stalls (or a port scanner) wedges the whole group's setup forever.
// A variable so tests can shrink it.
var handshakeTimeout = 10 * time.Second

// ListenTCP starts rank 0: it accepts world−1 peers on ln, each of which
// must introduce itself with a hello byte frame carrying its rank. The
// handshake is bounded: each accepted connection has handshakeTimeout to
// send its hello, and cancelling ctx closes ln to unblock Accept — so a
// caller can always abandon a group that never fully assembles.
func ListenTCP(ctx context.Context, ln net.Listener, world int) (*TCP, error) {
	t := &TCP{
		rank:  0,
		world: world,
		conns: make(map[int]net.Conn),
		inbox: make(chan Message, 4*world),
		done:  make(chan struct{}),
	}
	// Accept has no context parameter; closing the listener is the only
	// portable way to honour cancellation promptly (same pattern as
	// net/http.Server shutdown). stop() reports whether it won the race.
	stop := context.AfterFunc(ctx, func() { _ = ln.Close() })
	defer stop()
	for len(t.conns) < world-1 {
		if dl, ok := ctx.Deadline(); ok {
			type deadliner interface{ SetDeadline(time.Time) error }
			if d, ok := ln.(deadliner); ok {
				_ = d.SetDeadline(dl)
			}
		}
		conn, err := ln.Accept()
		if err != nil {
			t.Close()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
		hsDeadline := time.Now().Add(handshakeTimeout)
		if dl, ok := ctx.Deadline(); ok && dl.Before(hsDeadline) {
			hsDeadline = dl
		}
		_ = conn.SetReadDeadline(hsDeadline)
		var hello [4]byte
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			conn.Close()
			t.Close()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("dist: peer handshake: %w", err)
		}
		_ = conn.SetReadDeadline(time.Time{})
		peer := int(binary.LittleEndian.Uint32(hello[:]))
		if peer <= 0 || peer >= world {
			conn.Close()
			t.Close()
			return nil, fmt.Errorf("dist: peer announced invalid rank %d", peer)
		}
		t.mu.Lock()
		if _, dup := t.conns[peer]; dup {
			t.mu.Unlock()
			conn.Close()
			t.Close()
			return nil, fmt.Errorf("dist: duplicate rank %d", peer)
		}
		t.conns[peer] = conn
		t.mu.Unlock()
		t.readers.Add(1)
		go t.readLoop(conn)
	}
	return t, nil
}

// DialTCP connects a non-zero rank to rank 0 at addr.
func DialTCP(ctx context.Context, addr string, rank, world int) (*TCP, error) {
	if rank <= 0 || rank >= world {
		return nil, fmt.Errorf("dist: DialTCP is for ranks 1..world-1, got %d", rank)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(rank))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	t := &TCP{
		rank:  rank,
		world: world,
		conns: map[int]net.Conn{0: conn},
		inbox: make(chan Message, 8),
		done:  make(chan struct{}),
	}
	t.readers.Add(1)
	go t.readLoop(conn)
	return t, nil
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.readers.Done()
	// A non-leader rank has exactly one connection — to rank 0. When it
	// dies, every pending and future Recv must fail promptly rather than
	// block forever (the elastic framework then restarts the worker, §5.2.3).
	if t.rank != 0 {
		defer t.signalClosed()
	}
	buf := make([]byte, wireSize)
	for {
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		m, err := decodeMessage(buf)
		if err != nil {
			return
		}
		select {
		case t.inbox <- m:
		case <-t.done:
			return
		}
	}
}

// signalClosed marks the transport dead without waiting for readers (which
// would deadlock when called from a reader itself).
func (t *TCP) signalClosed() {
	t.once.Do(func() {
		close(t.done)
		t.mu.Lock()
		for _, c := range t.conns {
			c.Close()
		}
		t.mu.Unlock()
	})
}

// Rank implements Transport.
func (t *TCP) Rank() int { return t.rank }

// WorldSize implements Transport.
func (t *TCP) WorldSize() int { return t.world }

// Send implements Transport.
func (t *TCP) Send(ctx context.Context, to int, msg Message) error {
	msg.From = t.rank
	t.mu.Lock()
	conn := t.conns[to]
	t.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("dist: rank %d has no connection to %d (star topology: talk to rank 0)", t.rank, to)
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetWriteDeadline(dl)
	} else {
		// A previous Send's deadline sticks to the connection otherwise:
		// one deadline-bearing call would make every later deadline-free
		// Send fail with a timeout once that old instant passes.
		_ = conn.SetWriteDeadline(time.Time{})
	}
	_, err := conn.Write(msg.encode())
	return err
}

// Recv implements Transport. Messages already delivered are drained before
// a close is honoured, so a commit that raced with a peer's shutdown is not
// lost.
func (t *TCP) Recv(ctx context.Context) (Message, error) {
	select {
	case m := <-t.inbox:
		return m, nil
	default:
	}
	select {
	case m := <-t.inbox:
		return m, nil
	case <-t.done:
		return Message{}, fmt.Errorf("dist: transport closed")
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.signalClosed()
	t.readers.Wait()
	return nil
}

// PartitionRange splits a pipeline-parallel model state of total bytes into
// per-worker shards: worker rank owns [off, off+n). The remainder goes to
// the last worker.
func PartitionRange(total int64, rank, world int) (off, n int64, err error) {
	if world <= 0 || rank < 0 || rank >= world {
		return 0, 0, fmt.Errorf("dist: rank %d outside world of %d", rank, world)
	}
	if total < 0 {
		return 0, 0, fmt.Errorf("dist: negative total %d", total)
	}
	share := total / int64(world)
	off = share * int64(rank)
	n = share
	if rank == world-1 {
		n = total - off
	}
	return off, n, nil
}

// HybridPartitionRange implements §3.1's combined data + pipeline
// parallelism: the model is first split across pipeline stages; each stage's
// partition is then split again among that stage's data-parallel replicas,
// "reducing the overall checkpointing overhead" because every replica
// persists only stageBytes/replicas. The returned range is an absolute
// offset into the full model state.
func HybridPartitionRange(total int64, stage, stages, replica, replicas int) (off, n int64, err error) {
	stageOff, stageBytes, err := PartitionRange(total, stage, stages)
	if err != nil {
		return 0, 0, fmt.Errorf("dist: pipeline split: %w", err)
	}
	repOff, repBytes, err := PartitionRange(stageBytes, replica, replicas)
	if err != nil {
		return 0, 0, fmt.Errorf("dist: data-parallel split: %w", err)
	}
	return stageOff + repOff, repBytes, nil
}
