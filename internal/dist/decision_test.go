package dist

import (
	"context"
	"errors"
	"testing"
	"time"

	"pccheck/internal/obs"
	"pccheck/internal/obs/decision"
)

// The coordinator's Stall-vs-ExcludeDead choice must surface in the
// decision trace: exclusions as immediate zero-regret records documenting
// the trade, stalls as pending decisions scored by the measured wait.

func decisionObserver() *decision.Recorder {
	return decision.New(decision.Config{}, obs.NewRecorder(256))
}

// An ExcludeDead commit that skipped a dead rank records one
// degraded-commit decision with zero regret and the rejected stall priced
// at the heartbeat timeout.
func TestExcludeDeadRecordsDecision(t *testing.T) {
	group := NewLocalGroup(2)
	defer group[0].Close()
	defer group[1].Close()
	dec := decisionObserver()
	leader := NewCoordinatorWith(group[0], fastDetect(ExcludeDead))
	defer leader.Close()
	leader.SetObserver(dec)
	hung := NewCoordinator(group[1])
	hung.Close() // transport stays open, pump is gone: dead by silence

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := leader.Commit(ctx, 11); err != nil {
		t.Fatalf("leader commit with a hung peer: %v", err)
	}

	var degraded []decision.Decision
	for _, d := range dec.Decisions() {
		if d.Kind == decision.KindDegraded {
			degraded = append(degraded, d)
		}
	}
	if len(degraded) == 0 {
		t.Fatal("exclusion commit recorded no degraded-commit decision")
	}
	d := degraded[0]
	if !d.Scored || d.Outcome != "excluded-1" || d.Regret != 0 {
		t.Errorf("scored %v outcome %q regret %v, want a zero-regret excluded-1", d.Scored, d.Outcome, d.Regret)
	}
	if d.Chosen.Action != "exclude-dead" {
		t.Errorf("chosen %q, want exclude-dead", d.Chosen.Action)
	}
	if d.Inputs.DeadRanks != 1 || d.Inputs.N != 2 {
		t.Errorf("inputs %+v, want 1 dead rank of world 2", d.Inputs)
	}
	if len(d.Rejected) != 1 || d.Rejected[0].Action != "stall" ||
		d.Rejected[0].PredictedCost != fastDetect(ExcludeDead).HeartbeatTimeout.Seconds() {
		t.Errorf("rejected %+v, want stall priced at the heartbeat timeout", d.Rejected)
	}
}

// Under the Stall policy a round blocked solely by dead ranks opens a
// pending decision; when the round never commits, Finalize closes it
// unresolved rather than dropping it.
func TestStallOpensPendingDecision(t *testing.T) {
	group := NewLocalGroup(2)
	defer group[0].Close()
	defer group[1].Close()
	dec := decisionObserver()
	leader := NewCoordinatorWith(group[0], fastDetect(Stall))
	defer leader.Close()
	leader.SetObserver(dec)
	hung := NewCoordinator(group[1])
	hung.Close()

	// Long enough for the 60 ms silence timeout to declare rank 1 dead and
	// the commit loop to re-evaluate; the round still cannot complete.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := leader.Commit(ctx, 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled commit returned %v, want DeadlineExceeded", err)
	}
	if got := dec.Summary().Pending; got != 1 {
		t.Fatalf("pending decisions = %d, want the open stall", got)
	}
	dec.Finalize()
	ds := dec.Decisions()
	if len(ds) != 1 {
		t.Fatalf("decisions = %d, want 1", len(ds))
	}
	d := ds[0]
	if d.Kind != decision.KindDegraded || d.Scored || d.Outcome != "unresolved" {
		t.Errorf("kind %v scored %v outcome %q, want an unresolved degraded stall", d.Kind, d.Scored, d.Outcome)
	}
	if d.Chosen.Action != "stall" || d.Counter != 1 {
		t.Errorf("chosen %q round %d, want stall on the first round", d.Chosen.Action, d.Counter)
	}
}
