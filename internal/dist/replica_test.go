package dist

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"pccheck/internal/core"
	"pccheck/internal/storage"
)

func replicaPair(t *testing.T, size int64) (*ReplicaDevice, *ReplicaServer, storage.Device) {
	t.Helper()
	backing := storage.NewRAM(size)
	cc, sc := net.Pipe()
	srv := ServeReplica(sc, backing)
	dev, err := DialReplica(cc, size, nil)
	if err != nil {
		t.Fatalf("DialReplica: %v", err)
	}
	t.Cleanup(func() { dev.Close() })
	return dev, srv, backing
}

func TestReplicaDeviceRoundTrip(t *testing.T) {
	dev, srv, backing := replicaPair(t, 4096)

	want := bytes.Repeat([]byte{0x5c}, 1024)
	if err := dev.Persist(want, 512); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	got := make([]byte, len(want))
	if err := dev.ReadAt(got, 512); err != nil {
		t.Fatalf("ReadAt over the wire: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read-back over the wire mismatch")
	}
	direct := make([]byte, len(want))
	if err := backing.ReadAt(direct, 512); err != nil {
		t.Fatalf("backing ReadAt: %v", err)
	}
	if !bytes.Equal(direct, want) {
		t.Fatal("peer backing does not hold the replicated bytes")
	}

	// Out-of-range ops are rejected by the peer, not silently applied.
	if err := dev.WriteAt([]byte{1}, 4096); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if err := dev.ReadAt(make([]byte, 1), 4096); err == nil {
		t.Fatal("out-of-range read accepted")
	}

	dev.Mark(9)
	if got := srv.Floor(); got != 9 {
		t.Fatalf("server floor = %d, want 9", got)
	}
}

func TestReplicaWireErrorsAreTransient(t *testing.T) {
	backing := storage.NewRAM(1024)
	cc, sc := net.Pipe()
	ServeReplica(sc, backing)
	dev, err := DialReplica(cc, 1024, nil)
	if err != nil {
		t.Fatalf("DialReplica: %v", err)
	}
	sc.Close() // partition the peer
	werr := dev.WriteAt([]byte{1}, 0)
	if werr == nil {
		t.Fatal("write to partitioned peer succeeded")
	}
	if !storage.IsTransient(werr) {
		t.Fatalf("wire error %v not classified transient — the tiered drainer would not retry", werr)
	}
}

// TestReplicaAsTier runs the full stack: engine → Tiered(RAM, replica over
// net.Pipe) → drainer replays across the wire → a second node recovers the
// newest checkpoint from the peer after total local loss.
func TestReplicaAsTier(t *testing.T) {
	cfg := core.Config{Concurrent: 2, SlotBytes: 4096, VerifyPayload: true}
	size := core.DeviceBytesFor(cfg)
	dev, srv, backing := replicaPair(t, size)

	tiered, err := storage.NewTiered([]storage.Device{storage.NewRAM(size), dev},
		storage.WithDrainInterval(200*time.Microsecond))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	c, err := core.New(tiered, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var want []byte
	const saves = 6
	for i := 1; i <= saves; i++ {
		want = bytes.Repeat([]byte{byte(i)}, 2048+i)
		if _, err := c.Checkpoint(context.Background(), core.BytesSource(want)); err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
	}
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("replica tier did not converge")
	}
	c.Close()

	// The drainer's floor mark reaches the peer (it is sent just after the
	// cursor advances, so poll briefly).
	deadline := time.Now().Add(2 * time.Second)
	for srv.Floor() != saves {
		if time.Now().After(deadline) {
			t.Fatalf("peer floor = %d, want %d", srv.Floor(), saves)
		}
		time.Sleep(time.Millisecond)
	}
	tiered.Close()

	// Total local loss: only the peer's backing device survives. A fresh
	// node dials the peer and recovers over the wire.
	cc2, sc2 := net.Pipe()
	ServeReplica(sc2, backing)
	redev, err := DialReplica(cc2, size, nil)
	if err != nil {
		t.Fatalf("DialReplica (recovery): %v", err)
	}
	defer redev.Close()
	p, ctr, err := core.Recover(redev)
	if err != nil {
		t.Fatalf("Recover over the wire: %v", err)
	}
	if ctr != saves {
		t.Fatalf("recovered counter %d, want %d", ctr, saves)
	}
	if !bytes.Equal(p, want) {
		t.Fatal("recovered payload mismatch")
	}
}
