package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pccheck/internal/core"
	"pccheck/internal/storage"
)

// Chaos exploration: the network-layer sibling of core.ExploreCrashes. A
// real multi-rank training loop — every rank running a genuine checkpoint
// engine on its own (RAM-backed, persistent-across-restart) device — is
// driven through seeded network faults, rank kills with restart+rejoin,
// and one-way partitions, while the harness checks the §4.1 global
// invariants:
//
//  1. Monotonicity: the agreed consistent ID a rank observes never
//     regresses — not per round, and not across a kill/restart (the
//     rejoin resync must hand back at least what the rank last saw).
//  2. Durable floor: when a rank dies, real recovery (core.Recover) on
//     its surviving device must find every checkpoint the rank locally
//     acknowledged, and — when the rank was current — at least the
//     group's agreed floor. At the end of the run the final agreed ID
//     must be durably recoverable on every current rank.
//  3. Convergence: after faults heal and killed ranks rejoin, every rank
//     finishes the same final round with the same agreed ID, and the
//     group made progress (the final ID is nonzero).
//  4. Liveness: no live rank's Commit stalls past the case budget —
//     retransmission plus (under ExcludeDead) failure detection must
//     always un-stick the protocol once the network allows it.
//
// Faults are seeded, so a failing case replays; goroutine interleaving
// still varies, which is why the checks are invariants, not traces.

// ChaosCase is one seeded fault schedule over a training loop.
type ChaosCase struct {
	// Name labels the case in reports.
	Name string
	// World is the rank count (default 3; rank 0 is never faulted — the
	// harness does not implement leader election, matching the paper's
	// fixed-coordinator design).
	World int
	// Rounds is how many agreement rounds every rank completes
	// (default 10; raised automatically to fit the fault schedule).
	Rounds int
	// Policy selects the degraded-mode commit behaviour. Kill schedules
	// require ExcludeDead: under Stall a dead rank halts the group by
	// design, so there is nothing to explore.
	Policy DegradedPolicy
	// Seed drives every probabilistic decision (payloads and chaos).
	Seed int64
	// Chaos is applied to every non-zero rank's transport (each with a
	// rank-distinct sub-seed).
	Chaos ChaosConfig

	// KillRank, if nonzero, is killed when it reaches KillRound: its
	// transport goes silent, its coordinator dies, and its engine is
	// abandoned — but its device survives, as PMEM does. When the group
	// reaches RestartRound the rank comes back: re-opens the device,
	// rejoins, adopts the agreed ID, and catches its local floor up
	// (simulating the peer state fetch of recovery-oriented designs).
	KillRank     int
	KillRound    int
	RestartRound int

	// PartRank, if nonzero, loses its path TO rank 0 (reports and pongs
	// vanish; inbound commits still arrive — a one-way partition) from
	// when it reaches PartRound until PartDur elapses (default 150ms).
	PartRank  int
	PartRound int
	PartDur   time.Duration
}

func (cs ChaosCase) withDefaults() ChaosCase {
	if cs.World < 2 {
		cs.World = 3
	}
	if cs.Rounds < 1 {
		cs.Rounds = 10
	}
	if cs.KillRank > 0 {
		if cs.KillRound < 2 {
			cs.KillRound = 2
		}
		if cs.RestartRound <= cs.KillRound {
			cs.RestartRound = cs.KillRound + 2
		}
		// The rejoined rank needs live rounds left to converge in.
		if cs.Rounds < cs.RestartRound+4 {
			cs.Rounds = cs.RestartRound + 4
		}
	}
	if cs.PartRank > 0 {
		if cs.PartRound < 2 {
			cs.PartRound = 2
		}
		if cs.PartDur <= 0 {
			cs.PartDur = 150 * time.Millisecond
		}
		if cs.Rounds < cs.PartRound+6 {
			cs.Rounds = cs.PartRound + 6
		}
	}
	if cs.Seed == 0 {
		cs.Seed = 1
	}
	return cs
}

// String names the case in reports.
func (cs ChaosCase) String() string {
	if cs.Name != "" {
		return cs.Name
	}
	return fmt.Sprintf("world=%d rounds=%d policy=%s seed=%d", cs.World, cs.Rounds, cs.Policy, cs.Seed)
}

func (cs ChaosCase) validate() error {
	if cs.KillRank != 0 && (cs.KillRank <= 0 || cs.KillRank >= cs.World) {
		return fmt.Errorf("dist: chaos case %q kills rank %d outside 1..%d", cs, cs.KillRank, cs.World-1)
	}
	if cs.KillRank != 0 && cs.Policy != ExcludeDead {
		return fmt.Errorf("dist: chaos case %q kills rank %d under Stall — the group halts by design; use ExcludeDead", cs, cs.KillRank)
	}
	if cs.PartRank != 0 && (cs.PartRank <= 0 || cs.PartRank >= cs.World) {
		return fmt.Errorf("dist: chaos case %q partitions rank %d outside 1..%d", cs, cs.PartRank, cs.World-1)
	}
	if cs.PartRank != 0 && cs.Policy != ExcludeDead {
		return fmt.Errorf("dist: chaos case %q partitions rank %d under Stall — use ExcludeDead so the survivors keep committing", cs, cs.PartRank)
	}
	return nil
}

// ChaosExploreOptions bounds one exploration.
type ChaosExploreOptions struct {
	Case ChaosCase
	// CommitTimeout is the liveness budget per Commit call on a live rank
	// (default 15s — generous against ~100ms detection settings, so a
	// timeout means a real stall, not slowness).
	CommitTimeout time.Duration
	// Detect overrides the failure-detection config; the zero value uses
	// fast settings (15ms heartbeat, 90ms timeout, 80ms commit deadline)
	// sized for in-process transports.
	Detect CoordConfig
}

// ChaosExploreResult summarizes one exploration.
type ChaosExploreResult struct {
	Case       ChaosCase
	Rounds     int    // final round every rank converged on
	Commits    int    // Commit calls that returned an agreed ID
	Kills      int    // rank kills executed
	Rejoins    int    // successful rejoins
	Behind     int    // ranks that legally ended behind the agreement (degraded mode)
	FinalID    uint64 // the converged consistent ID
	Violations []string
}

// Ok reports whether every invariant held.
func (r ChaosExploreResult) Ok() bool { return len(r.Violations) == 0 }

// ErrChaosInvariantViolated is returned by callers that surface a failed
// exploration as a single error.
var ErrChaosInvariantViolated = errors.New("dist: distributed consistency invariant violated")

// chaosPayload builds a self-verifying payload (seed and length embedded,
// the rest a pure function of them), so anything recovered from a crashed
// rank's device can be validated in isolation.
func chaosPayload(seed uint64, n int) []byte {
	if n < 16 {
		n = 16
	}
	b := make([]byte, n)
	binary.LittleEndian.PutUint64(b, seed)
	binary.LittleEndian.PutUint64(b[8:], uint64(n))
	rng := rand.New(rand.NewSource(int64(seed)))
	rng.Read(b[16:])
	return b
}

func checkChaosPayload(p []byte) error {
	if len(p) < 16 {
		return fmt.Errorf("payload too short: %d bytes", len(p))
	}
	seed := binary.LittleEndian.Uint64(p)
	n := binary.LittleEndian.Uint64(p[8:])
	if n != uint64(len(p)) {
		return fmt.Errorf("payload claims %d bytes, has %d", n, len(p))
	}
	if want := chaosPayload(seed, len(p)); !bytes.Equal(p, want) {
		return fmt.Errorf("payload for seed %d is corrupted", seed)
	}
	return nil
}

const chaosSlotBytes = 512

// ExploreChaos runs one seeded chaos case over a real training loop and
// checks the global-consistency invariants. A non-empty Violations list
// (or a non-nil error for setup/config failures) means the distributed
// protocol does not hold up under that fault schedule.
func ExploreChaos(opts ChaosExploreOptions) (ChaosExploreResult, error) {
	cs := opts.Case.withDefaults()
	res := ChaosExploreResult{Case: cs, Rounds: cs.Rounds}
	if err := cs.validate(); err != nil {
		return res, err
	}
	if opts.CommitTimeout <= 0 {
		opts.CommitTimeout = 15 * time.Second
	}
	detect := opts.Detect
	if detect.Heartbeat == 0 {
		detect = CoordConfig{
			Heartbeat:        15 * time.Millisecond,
			HeartbeatTimeout: 90 * time.Millisecond,
			CommitDeadline:   80 * time.Millisecond,
			SendTimeout:      time.Second,
		}
	}
	detect.Degraded = cs.Policy

	world := cs.World
	locals := NewLocalGroup(world)
	trs := make([]Transport, world)
	chaosTr := make([]*ChaosTransport, world)
	trs[0] = locals[0] // rank 0 is never faulted (no leader election)
	for r := 1; r < world; r++ {
		ccfg := cs.Chaos
		ccfg.Seed = cs.Seed + int64(r)*7919
		chaosTr[r] = NewChaos(locals[r], ccfg)
		trs[r] = chaosTr[r]
	}

	var (
		mu         sync.Mutex
		violations []string
		commits    atomic.Int64
		kills      atomic.Int64
		rejoins    atomic.Int64
	)
	violate := func(format string, args ...any) {
		mu.Lock()
		violations = append(violations, fmt.Sprintf("%s: ", cs)+fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	devs := make([]*storage.RAM, world)
	coords := make([]*Coordinator, world)   // current coordinator per rank (owner-written)
	finalAgreed := make([]uint64, world)    // lastAgreed at driver exit
	finalCtr := make([]uint64, world)       // last locally acked counter at exit
	roundNow := make([]atomic.Int64, world) // latest completed round per rank

	total := uint64(cs.Rounds)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		devs[r] = storage.NewRAM(core.DeviceBytes(1, chaosSlotBytes))
		eng, err := core.New(devs[r], core.Config{Concurrent: 1, SlotBytes: chaosSlotBytes})
		if err != nil {
			return res, fmt.Errorf("dist: chaos case %q: rank %d engine: %w", cs, r, err)
		}
		coords[r] = NewCoordinatorWith(trs[r], detect)
		wg.Add(1)
		go func(r int, eng *core.Checkpointer) {
			defer wg.Done()
			coord := coords[r]
			var lastAgreed, lastCtr uint64
			killed, parted := false, false
			for {
				round := coord.NextRound()
				if round > total {
					break
				}

				if cs.KillRank > 0 && r == cs.KillRank && !killed && round >= uint64(cs.KillRound) {
					killed = true
					kills.Add(1)
					// The process dies: transport silent, coordinator gone.
					chaosTr[r].Kill()
					coord.Close()
					// Its device survives the crash. Real recovery must find
					// every locally acked checkpoint — and the agreed floor,
					// since this rank was current when it died.
					p, rctr, err := core.Recover(devs[r])
					if err != nil {
						violate("rank %d killed at round %d: recovery failed: %v", r, round, err)
						return
					}
					if err := checkChaosPayload(p); err != nil {
						violate("rank %d killed at round %d: recovered garbage: %v", r, round, err)
						return
					}
					if rctr < lastCtr {
						violate("rank %d killed at round %d: recovered counter %d < locally acked %d", r, round, rctr, lastCtr)
						return
					}
					if lastAgreed <= lastCtr && rctr < lastAgreed {
						violate("rank %d killed at round %d: recovered counter %d < agreed floor %d", r, round, rctr, lastAgreed)
						return
					}
					// Stay down until the survivors pass RestartRound.
					deadline := time.Now().Add(opts.CommitTimeout)
					for roundNow[0].Load() < int64(cs.RestartRound) {
						if time.Now().After(deadline) {
							violate("rank %d: survivors never reached restart round %d (leader at %d) — degraded commit stalled", r, cs.RestartRound, roundNow[0].Load())
							return
						}
						time.Sleep(2 * time.Millisecond)
					}
					// Restart: same device, fresh engine + coordinator + session.
					chaosTr[r].Restart()
					eng, err = core.Open(devs[r], core.Config{})
					if err != nil {
						violate("rank %d restart: re-open device: %v", r, err)
						return
					}
					coord = NewCoordinatorWith(trs[r], detect)
					coords[r] = coord
					rctx, cancel := context.WithTimeout(context.Background(), opts.CommitTimeout)
					rid, err := coord.Rejoin(rctx)
					cancel()
					if err != nil {
						violate("rank %d rejoin: %v", r, err)
						return
					}
					if rid < lastAgreed {
						violate("rank %d rejoin resynced to %d, below the %d it had already observed — agreement regressed across restart", r, rid, lastAgreed)
						return
					}
					lastAgreed = rid
					rejoins.Add(1)
					// Catch up: fetch the agreed state from peers (simulated)
					// and persist it locally until this rank's durable floor
					// reaches the agreement it adopted.
					for lastCtr < rid {
						p := chaosPayload(uint64(cs.Seed)<<20+uint64(r)<<12+lastCtr+1, 64)
						ctr, err := eng.Checkpoint(context.Background(), core.BytesSource(p))
						if err != nil {
							violate("rank %d catch-up checkpoint: %v", r, err)
							return
						}
						lastCtr = ctr
					}
					continue // NextRound has jumped past the missed rounds
				}

				if cs.PartRank > 0 && r == cs.PartRank && !parted && round >= uint64(cs.PartRound) {
					parted = true
					chaosTr[r].PartitionTo(0)
					time.AfterFunc(cs.PartDur, chaosTr[r].Heal)
				}

				p := chaosPayload(uint64(cs.Seed)<<20+uint64(r)<<12+round, 64+int((uint64(cs.Seed)+round)%128))
				ctr, err := eng.Checkpoint(context.Background(), core.BytesSource(p))
				if err != nil {
					violate("rank %d round %d: local checkpoint: %v", r, round, err)
					return
				}
				lastCtr = ctr
				cctx, cancel := context.WithTimeout(context.Background(), opts.CommitTimeout)
				agreed, err := coord.Commit(cctx, ctr)
				cancel()
				if err != nil {
					violate("rank %d round %d: commit stalled past the liveness budget: %v", r, round, err)
					return
				}
				if agreed < lastAgreed {
					violate("rank %d round %d: agreed ID regressed %d → %d", r, round, lastAgreed, agreed)
					return
				}
				lastAgreed = agreed
				commits.Add(1)
				roundNow[r].Store(int64(round))
			}
			finalAgreed[r] = lastAgreed
			finalCtr[r] = lastCtr
		}(r, eng)
	}
	wg.Wait()

	res.Commits = int(commits.Load())
	res.Kills = int(kills.Load())
	res.Rejoins = int(rejoins.Load())
	res.Violations = violations
	if len(violations) > 0 {
		closeChaos(coords, trs)
		return res, nil
	}

	// Convergence: every rank finished the same final round with the same
	// agreed ID, and the group made progress.
	res.FinalID = finalAgreed[0]
	for r := 1; r < world; r++ {
		if finalAgreed[r] != res.FinalID {
			res.Violations = append(res.Violations,
				fmt.Sprintf("%s: no convergence: rank %d finished agreed on %d, rank 0 on %d", cs, r, finalAgreed[r], res.FinalID))
		}
	}
	if res.FinalID == 0 {
		res.Violations = append(res.Violations, fmt.Sprintf("%s: the group never agreed on anything", cs))
	}

	// Durable floor at the end: the converged ID must be recoverable on
	// every current rank's device. A rank may legally end behind under
	// ExcludeDead if it was the faulted one (degraded mode: it must
	// peer-resync, and LoadConsistent refuses to serve it stale state).
	for r := 0; r < world; r++ {
		p, ctr, err := core.Recover(devs[r])
		if err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("%s: rank %d final recovery failed: %v", cs, r, err))
			continue
		}
		if err := checkChaosPayload(p); err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("%s: rank %d final recovery returned garbage: %v", cs, r, err))
			continue
		}
		if ctr < finalCtr[r] {
			res.Violations = append(res.Violations,
				fmt.Sprintf("%s: rank %d device recovered counter %d < locally acked %d", cs, r, ctr, finalCtr[r]))
			continue
		}
		if ctr < res.FinalID {
			faulted := cs.Policy == ExcludeDead && (r == cs.KillRank || r == cs.PartRank)
			if faulted {
				res.Behind++
			} else {
				res.Violations = append(res.Violations,
					fmt.Sprintf("%s: agreed ID %d exceeds rank %d's durable floor %d — the agreement is not globally durable", cs, res.FinalID, r, ctr))
			}
		}
	}
	closeChaos(coords, trs)
	return res, nil
}

func closeChaos(coords []*Coordinator, trs []Transport) {
	for _, c := range coords {
		if c != nil {
			c.Close()
		}
	}
	for _, t := range trs {
		if t != nil {
			t.Close()
		}
	}
}

// ChaosSweepCases is the seeded case matrix of the chaos sweep: message
// faults under both policies, kill/restart, a one-way partition, and the
// combined worst case.
func ChaosSweepCases(seed int64) []ChaosCase {
	return []ChaosCase{
		{
			Name: "stall-lossless", World: 3, Rounds: 12, Policy: Stall, Seed: seed,
			Chaos: ChaosConfig{DupProb: 0.2, ReorderProb: 0.2, DelayProb: 0.2},
		},
		{
			Name: "stall-lossy", World: 3, Rounds: 10, Policy: Stall, Seed: seed + 1,
			// Drops are recoverable under Stall because workers retransmit
			// reports and the leader re-echoes commits.
			Chaos: ChaosConfig{DropProb: 0.15, DupProb: 0.1, ReorderProb: 0.15},
		},
		{
			Name: "excludedead-lossy", World: 4, Rounds: 12, Policy: ExcludeDead, Seed: seed + 2,
			Chaos: ChaosConfig{DropProb: 0.25, DupProb: 0.1, ReorderProb: 0.1, DelayProb: 0.1},
		},
		{
			Name: "kill-restart", World: 3, Rounds: 14, Policy: ExcludeDead, Seed: seed + 3,
			KillRank: 2, KillRound: 3, RestartRound: 6,
			Chaos: ChaosConfig{DupProb: 0.1, ReorderProb: 0.1},
		},
		{
			Name: "kill-late-lossy", World: 4, Rounds: 16, Policy: ExcludeDead, Seed: seed + 4,
			KillRank: 1, KillRound: 6, RestartRound: 9,
			Chaos: ChaosConfig{DropProb: 0.1, DupProb: 0.1, ReorderProb: 0.1},
		},
		{
			Name: "oneway-partition", World: 3, Rounds: 14, Policy: ExcludeDead, Seed: seed + 5,
			PartRank: 1, PartRound: 4,
		},
		{
			Name: "kill-plus-partition", World: 4, Rounds: 18, Policy: ExcludeDead, Seed: seed + 6,
			KillRank: 3, KillRound: 4, RestartRound: 7,
			PartRank: 1, PartRound: 9,
			Chaos: ChaosConfig{DropProb: 0.05, DupProb: 0.1, ReorderProb: 0.1},
		},
	}
}
