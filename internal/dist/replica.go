package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"pccheck/internal/storage"
)

// Peer replication tier: a storage.Device whose backing bytes live on
// another machine, reached over any net.Conn (the training cluster's
// interconnect in production, net.Pipe or loopback TCP in tests). Plugged
// into storage.Tiered as a lower level it gives checkpoints a survives-the-
// whole-node durability tier: the drainer replays tier 0's journal across
// the wire, the peer applies it to its local device, and recovery can read
// the replica back if every local tier is gone.
//
// The protocol is a length-prefixed op stream with one-byte acks, the same
// shape as the Gemini baseline's transfer framing (the dist.Transport
// carries only fixed 21-byte control messages, so bulk replication gets its
// own connection). Every wire failure is classified Transient so the tiered
// drainer retries with backoff and then lets the tier go stale rather than
// wrong — a partitioned peer degrades staleness, never correctness.

// Replica wire op codes.
const (
	replicaOpWrite byte = 1 + iota
	replicaOpSync
	replicaOpRead
	replicaOpMark
)

// replicaMaxFrame bounds a single payload so a corrupt length prefix cannot
// make either side allocate unbounded memory.
const replicaMaxFrame = 1 << 30

// ReplicaDevice is the client side: a storage.Device forwarding every
// operation to a ReplicaServer over conn. Operations are serialized on the
// connection; each waits for the peer's ack, so Sync returning nil means
// the peer's device accepted the barrier.
type ReplicaDevice struct {
	mu   sync.Mutex
	conn net.Conn
	size int64
	bw   *storage.Throttle
}

// DialReplica wraps an established connection to a peer serving a device of
// the given size. bw, when non-nil, paces payload transfer like a NIC cap.
func DialReplica(conn net.Conn, size int64, bw *storage.Throttle) (*ReplicaDevice, error) {
	if size <= 0 {
		return nil, fmt.Errorf("dist: replica device size %d", size)
	}
	return &ReplicaDevice{conn: conn, size: size, bw: bw}, nil
}

func replicaErr(op string, err error) error {
	return storage.Transient(fmt.Errorf("dist: replica %s: %w", op, err))
}

// roundTrip sends header (+payload) and waits for the peer's one-byte ack.
// Callers hold d.mu.
func (d *ReplicaDevice) roundTrip(op string, hdr []byte, payload []byte) error {
	if _, err := d.conn.Write(hdr); err != nil {
		return replicaErr(op, err)
	}
	// Stream in 1 MB pieces so a throttle paces the transfer like a real
	// NIC rather than admitting one giant burst.
	const piece = 1 << 20
	for off := 0; off < len(payload); off += piece {
		end := off + piece
		if end > len(payload) {
			end = len(payload)
		}
		d.bw.Acquire(end - off)
		if _, err := d.conn.Write(payload[off:end]); err != nil {
			return replicaErr(op, err)
		}
	}
	var ack [1]byte
	if _, err := io.ReadFull(d.conn, ack[:]); err != nil {
		return replicaErr(op, err)
	}
	if ack[0] != 1 {
		return fmt.Errorf("dist: peer rejected %s", op)
	}
	return nil
}

// WriteAt implements storage.Device.
func (d *ReplicaDevice) WriteAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var hdr [17]byte
	hdr[0] = replicaOpWrite
	binary.LittleEndian.PutUint64(hdr[1:], uint64(off))
	binary.LittleEndian.PutUint64(hdr[9:], uint64(len(p)))
	return d.roundTrip("write", hdr[:], p)
}

// Sync implements storage.Device: the ack means the peer's device accepted
// the barrier, so the replicated bytes are durable with the peer's own
// persistence semantics.
func (d *ReplicaDevice) Sync(off, n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var hdr [17]byte
	hdr[0] = replicaOpSync
	binary.LittleEndian.PutUint64(hdr[1:], uint64(off))
	binary.LittleEndian.PutUint64(hdr[9:], uint64(n))
	return d.roundTrip("sync", hdr[:], nil)
}

// Persist implements storage.Device: write + barrier in one exchange pair.
func (d *ReplicaDevice) Persist(p []byte, off int64) error {
	if err := d.WriteAt(p, off); err != nil {
		return err
	}
	return d.Sync(off, int64(len(p)))
}

// ReadAt implements storage.Device — the recovery path: a restarted node
// reads the replica back when its local tiers are gone.
func (d *ReplicaDevice) ReadAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var hdr [17]byte
	hdr[0] = replicaOpRead
	binary.LittleEndian.PutUint64(hdr[1:], uint64(off))
	binary.LittleEndian.PutUint64(hdr[9:], uint64(len(p)))
	if _, err := d.conn.Write(hdr[:]); err != nil {
		return replicaErr("read", err)
	}
	var status [1]byte
	if _, err := io.ReadFull(d.conn, status[:]); err != nil {
		return replicaErr("read", err)
	}
	if status[0] != 1 {
		return fmt.Errorf("dist: peer rejected read [%d,+%d)", off, len(p))
	}
	if _, err := io.ReadFull(d.conn, p); err != nil {
		return replicaErr("read", err)
	}
	return nil
}

// Mark implements storage.Marker: the tiered drainer stamps the peer with
// the checkpoint counter it just made durable there, so the peer knows its
// own ack floor (and a crash-journaling backing device records it).
func (d *ReplicaDevice) Mark(value uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var hdr [9]byte
	hdr[0] = replicaOpMark
	binary.LittleEndian.PutUint64(hdr[1:], value)
	_ = d.roundTrip("mark", hdr[:], nil)
}

// Size implements storage.Device.
func (d *ReplicaDevice) Size() int64 { return d.size }

// Kind implements storage.Device.
func (d *ReplicaDevice) Kind() storage.Kind { return storage.KindRemote }

// Close implements io.Closer.
func (d *ReplicaDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.conn.Close()
}

// ReplicaServer is the peer side: it applies the op stream to a local
// backing device. One server serves one client connection.
type ReplicaServer struct {
	backing storage.Device

	mu    sync.Mutex
	floor uint64
	done  chan struct{}
	err   error
}

// ServeReplica starts applying ops from conn onto backing in the
// background. The caller keeps ownership of backing (it is not closed) —
// after the client is gone, recovery can open it directly.
func ServeReplica(conn net.Conn, backing storage.Device) *ReplicaServer {
	s := &ReplicaServer{backing: backing, done: make(chan struct{})}
	go s.serve(conn)
	return s
}

// Floor returns the highest checkpoint counter the drainer has marked
// durable on this replica.
func (s *ReplicaServer) Floor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floor
}

// Wait blocks until the client connection ends and returns the terminal
// error, if any (nil on clean EOF).
func (s *ReplicaServer) Wait() error {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *ReplicaServer) fail(err error) {
	s.mu.Lock()
	if s.err == nil && err != io.EOF {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *ReplicaServer) serve(conn net.Conn) {
	defer close(s.done)
	defer conn.Close()
	ack := func(ok bool) bool {
		b := []byte{0}
		if ok {
			b[0] = 1
		}
		_, err := conn.Write(b)
		return err == nil
	}
	var op [1]byte
	for {
		if _, err := io.ReadFull(conn, op[:]); err != nil {
			s.fail(err)
			return
		}
		switch op[0] {
		case replicaOpWrite, replicaOpSync, replicaOpRead:
			var hdr [16]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				s.fail(err)
				return
			}
			off := int64(binary.LittleEndian.Uint64(hdr[0:]))
			n := int64(binary.LittleEndian.Uint64(hdr[8:]))
			if n < 0 || n > replicaMaxFrame {
				s.fail(fmt.Errorf("dist: implausible replica frame of %d bytes", n))
				return
			}
			switch op[0] {
			case replicaOpWrite:
				p := make([]byte, n)
				if _, err := io.ReadFull(conn, p); err != nil {
					s.fail(err)
					return
				}
				if !ack(s.backing.WriteAt(p, off) == nil) {
					return
				}
			case replicaOpSync:
				if !ack(s.backing.Sync(off, n) == nil) {
					return
				}
			case replicaOpRead:
				p := make([]byte, n)
				if err := s.backing.ReadAt(p, off); err != nil {
					if !ack(false) {
						return
					}
					continue
				}
				if !ack(true) {
					return
				}
				// A zero-length net.Pipe write blocks for a reader the
				// client never starts; io.ReadFull on an empty buffer
				// performs no read either, so skip the empty frame.
				if len(p) > 0 {
					if _, err := conn.Write(p); err != nil {
						s.fail(err)
						return
					}
				}
			}
		case replicaOpMark:
			var hdr [8]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				s.fail(err)
				return
			}
			v := binary.LittleEndian.Uint64(hdr[:])
			s.mu.Lock()
			if v > s.floor {
				s.floor = v
			}
			s.mu.Unlock()
			if m, ok := s.backing.(storage.Marker); ok {
				m.Mark(v)
			}
			if !ack(true) {
				return
			}
		default:
			s.fail(fmt.Errorf("dist: unknown replica op %d", op[0]))
			return
		}
	}
}

var (
	_ storage.Device = (*ReplicaDevice)(nil)
	_ storage.Marker = (*ReplicaDevice)(nil)
)
