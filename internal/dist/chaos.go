package dist

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ChaosVerb is what a chaos decision does to a frame.
type ChaosVerb int

const (
	// VerbDrop discards the frame; the sender sees success.
	VerbDrop ChaosVerb = iota + 1
	// VerbDup delivers the frame now and again shortly after.
	VerbDup
	// VerbDelay holds the frame for a random interval in
	// [DelayMin, DelayMax] before delivery; frames sent meanwhile overtake
	// it, so delay doubles as reordering.
	VerbDelay
	// VerbReorder is VerbDelay under its intent-revealing name: the frame
	// arrives after its successors.
	VerbReorder
)

func (v ChaosVerb) String() string {
	switch v {
	case VerbDrop:
		return "drop"
	case VerbDup:
		return "dup"
	case VerbDelay:
		return "delay"
	case VerbReorder:
		return "reorder"
	default:
		return fmt.Sprintf("ChaosVerb(%d)", int(v))
	}
}

// ChaosSchedule fires a verb deterministically by send count, mirroring the
// storage FaultDevice's Schedule{After, Count} style: let After sends pass
// untouched, then apply Verb to the next Count sends (Count 0 = 1).
type ChaosSchedule struct {
	After int64
	Count int64
	Verb  ChaosVerb
}

// ChaosConfig tunes a ChaosTransport. The zero value is a lossless
// passthrough; probabilities are per-send and independent (drop is checked
// first, then duplicate, then delay/reorder).
type ChaosConfig struct {
	// Seed makes every probabilistic decision reproducible (0 → 1).
	Seed int64
	// DropProb is the chance a sent frame silently vanishes.
	DropProb float64
	// DupProb is the chance a frame is delivered twice (the copy delayed,
	// so the pair also arrives out of order).
	DupProb float64
	// ReorderProb is the chance a frame is held back so later frames
	// overtake it.
	ReorderProb float64
	// DelayProb is the chance a frame is delayed without reordering
	// intent (same mechanism, smaller verbs budget).
	DelayProb float64
	// DelayMin/DelayMax bound the hold applied by dup/delay/reorder.
	// Defaults 2ms/15ms — long enough to scramble order against the
	// protocol's round trips, short enough not to starve it.
	DelayMin, DelayMax time.Duration
}

func (cfg ChaosConfig) withDefaults() ChaosConfig {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.DelayMin <= 0 {
		cfg.DelayMin = 2 * time.Millisecond
	}
	if cfg.DelayMax < cfg.DelayMin {
		cfg.DelayMax = cfg.DelayMin + 13*time.Millisecond
	}
	return cfg
}

// ChaosTransport wraps any Transport (Local or TCP alike) with
// deterministic seeded network-fault injection — the network-layer sibling
// of storage's FaultDevice. It perturbs the SENDING side: frames can be
// dropped, duplicated, delayed, or reordered, per-rank one-way partitions
// can be raised, and the whole endpoint can be "killed" (its sends vanish,
// its receives block) and later restarted — a frozen-then-resumed or
// crashed-then-restarted process as seen by its peers.
//
// All randomness flows from ChaosConfig.Seed, so a failing schedule replays
// exactly; goroutine interleaving still varies, which is why ExploreChaos
// asserts invariants rather than traces.
type ChaosTransport struct {
	inner Transport
	cfg   ChaosConfig

	mu        sync.Mutex
	rng       *rand.Rand
	sent      int64
	schedules []ChaosSchedule
	killed    bool
	blockTo   map[int]bool
	blockFrom map[int]bool

	closeOnce sync.Once
	done      chan struct{}
	delayed   sync.WaitGroup
}

// NewChaos wraps inner with fault injection.
func NewChaos(inner Transport, cfg ChaosConfig) *ChaosTransport {
	cfg = cfg.withDefaults()
	return &ChaosTransport{
		inner:     inner,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		blockTo:   make(map[int]bool),
		blockFrom: make(map[int]bool),
		done:      make(chan struct{}),
	}
}

// SetSchedule arms deterministic count-based verbs (replacing any previous
// schedule). Probabilistic faults from ChaosConfig still apply to sends no
// schedule claims.
func (c *ChaosTransport) SetSchedule(s ...ChaosSchedule) {
	c.mu.Lock()
	c.schedules = append([]ChaosSchedule(nil), s...)
	c.mu.Unlock()
}

// Kill freezes the endpoint: subsequent sends are swallowed (the sender
// keeps "succeeding", as a process whose packets die with it would) and
// receives block until Restart. Peers see silence, not a closed connection.
func (c *ChaosTransport) Kill() {
	c.mu.Lock()
	c.killed = true
	c.mu.Unlock()
}

// Restart revives a killed endpoint. Frames that arrived at the inner
// transport while killed were discarded, like packets to a dead process.
func (c *ChaosTransport) Restart() {
	c.mu.Lock()
	c.killed = false
	c.mu.Unlock()
}

// Killed reports whether the endpoint is currently killed.
func (c *ChaosTransport) Killed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// PartitionTo raises a one-way partition: sends to the given ranks vanish.
func (c *ChaosTransport) PartitionTo(ranks ...int) {
	c.mu.Lock()
	for _, r := range ranks {
		c.blockTo[r] = true
	}
	c.mu.Unlock()
}

// PartitionFrom raises the other one-way partition: frames from the given
// ranks are discarded on receive.
func (c *ChaosTransport) PartitionFrom(ranks ...int) {
	c.mu.Lock()
	for _, r := range ranks {
		c.blockFrom[r] = true
	}
	c.mu.Unlock()
}

// Heal drops all partitions (both directions).
func (c *ChaosTransport) Heal() {
	c.mu.Lock()
	c.blockTo = make(map[int]bool)
	c.blockFrom = make(map[int]bool)
	c.mu.Unlock()
}

// Rank implements Transport.
func (c *ChaosTransport) Rank() int { return c.inner.Rank() }

// WorldSize implements Transport.
func (c *ChaosTransport) WorldSize() int { return c.inner.WorldSize() }

// SetPeerHook forwards to the inner transport when it observes peers
// (rank 0 over TCP), so a Coordinator above a ChaosTransport keeps its
// connectivity-driven failure detection.
func (c *ChaosTransport) SetPeerHook(h func(rank int, up bool)) {
	if pe, ok := c.inner.(PeerEvents); ok {
		pe.SetPeerHook(h)
	}
}

// decide picks the verb for this send: an armed schedule wins; otherwise
// the seeded probabilistic config. 0 means deliver untouched.
func (c *ChaosTransport) decide() ChaosVerb {
	n := c.sent
	c.sent++
	for _, s := range c.schedules {
		count := s.Count
		if count <= 0 {
			count = 1
		}
		if n >= s.After && n < s.After+count {
			return s.Verb
		}
	}
	p := c.rng.Float64()
	switch {
	case p < c.cfg.DropProb:
		return VerbDrop
	case p < c.cfg.DropProb+c.cfg.DupProb:
		return VerbDup
	case p < c.cfg.DropProb+c.cfg.DupProb+c.cfg.ReorderProb:
		return VerbReorder
	case p < c.cfg.DropProb+c.cfg.DupProb+c.cfg.ReorderProb+c.cfg.DelayProb:
		return VerbDelay
	default:
		return 0
	}
}

// Send implements Transport.
func (c *ChaosTransport) Send(ctx context.Context, to int, msg Message) error {
	c.mu.Lock()
	if c.killed || c.blockTo[to] {
		c.mu.Unlock()
		return nil // the frame dies silently; the sender cannot tell
	}
	verb := c.decide()
	hold := c.cfg.DelayMin
	if span := c.cfg.DelayMax - c.cfg.DelayMin; span > 0 {
		hold += time.Duration(c.rng.Int63n(int64(span) + 1))
	}
	c.mu.Unlock()

	switch verb {
	case VerbDrop:
		return nil
	case VerbDup:
		c.sendLater(to, msg, hold)
		return c.inner.Send(ctx, to, msg)
	case VerbDelay, VerbReorder:
		c.sendLater(to, msg, hold)
		return nil
	default:
		return c.inner.Send(ctx, to, msg)
	}
}

// sendLater delivers msg to rank `to` after the hold, letting later sends
// overtake it. The hold is bounded (DelayMax), so a held frame can slow the
// flow-controlled protocol but never starve it.
func (c *ChaosTransport) sendLater(to int, msg Message, hold time.Duration) {
	c.delayed.Add(1)
	go func() {
		defer c.delayed.Done()
		t := time.NewTimer(hold)
		defer t.Stop()
		select {
		case <-t.C:
		case <-c.done:
			return
		}
		c.mu.Lock()
		blocked := c.killed || c.blockTo[to]
		c.mu.Unlock()
		if blocked {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = c.inner.Send(ctx, to, msg)
		cancel()
	}()
}

// Recv implements Transport. While killed it returns nothing (a dead
// process reads nothing) but keeps draining and discarding the inner
// transport's deliveries — as the kernel discards packets to a dead
// process — so peers sending to this rank are never back-pressured by its
// death. Frames from partitioned-out ranks are discarded too.
func (c *ChaosTransport) Recv(ctx context.Context) (Message, error) {
	for {
		c.mu.Lock()
		killed := c.killed
		c.mu.Unlock()
		if killed {
			select {
			case <-c.done:
				return Message{}, fmt.Errorf("dist: chaos transport closed")
			case <-ctx.Done():
				return Message{}, ctx.Err()
			default:
			}
			dctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
			m, err := c.inner.Recv(dctx)
			cancel()
			if err != nil {
				if dctx.Err() == nil {
					return Message{}, err // inner transport actually failed
				}
				continue // poll timeout: nothing arrived
			}
			// A frame arrived during the poll. If Restart raced the poll,
			// the endpoint is alive again and the frame is deliverable;
			// otherwise it dies with the process.
			c.mu.Lock()
			deliver := !c.killed && !c.blockFrom[m.From]
			c.mu.Unlock()
			if deliver {
				return m, nil
			}
			continue
		}
		m, err := c.inner.Recv(ctx)
		if err != nil {
			return Message{}, err
		}
		c.mu.Lock()
		discard := c.killed || c.blockFrom[m.From]
		c.mu.Unlock()
		if discard {
			continue
		}
		return m, nil
	}
}

// Close implements Transport: it stops pending delayed deliveries and
// closes the inner transport.
func (c *ChaosTransport) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.done)
		c.delayed.Wait()
		err = c.inner.Close()
	})
	return err
}
