package dist

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"pccheck/internal/obs"
)

// fastDetect is a detection config sized for in-process tests: a hung rank
// is declared dead within ~60ms.
func fastDetect(p DegradedPolicy) CoordConfig {
	return CoordConfig{
		Heartbeat:        10 * time.Millisecond,
		HeartbeatTimeout: 60 * time.Millisecond,
		CommitDeadline:   50 * time.Millisecond,
		SendTimeout:      200 * time.Millisecond,
		Degraded:         p,
	}
}

// TestDialTCPRetriesBeforeListener: workers must be able to start before
// rank 0's listener is up. Before the fix DialTCP made exactly one attempt,
// forcing a strict startup order across the whole cluster.
func TestDialTCPRetriesBeforeListener(t *testing.T) {
	// Reserve a port, then free it so the first dial attempts fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	type dialRes struct {
		tr  *TCP
		err error
	}
	dialCh := make(chan dialRes, 1)
	go func() {
		tr, err := DialTCPWith(ctx, addr, 1, 2, DialOptions{
			Retry: RetryPolicy{MaxAttempts: 100, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 30 * time.Millisecond},
		})
		dialCh <- dialRes{tr, err}
	}()

	time.Sleep(120 * time.Millisecond) // let several attempts fail
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind reserved port %s: %v", addr, err)
	}
	defer ln2.Close()
	leader, err := ListenTCP(ctx, ln2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()

	res := <-dialCh
	if res.err != nil {
		t.Fatalf("dialer that started before the listener: %v", res.err)
	}
	defer res.tr.Close()

	// The connection works end to end: run one commit round over it.
	cl := NewCoordinator(leader)
	cw := NewCoordinator(res.tr)
	defer cl.Close()
	defer cw.Close()
	var wg sync.WaitGroup
	agreed := make([]uint64, 2)
	for i, c := range []*Coordinator{cl, cw} {
		wg.Add(1)
		go func(i int, c *Coordinator) {
			defer wg.Done()
			got, err := c.Commit(ctx, 9)
			if err != nil {
				t.Errorf("rank %d: %v", i, err)
				return
			}
			agreed[i] = got
		}(i, c)
	}
	wg.Wait()
	if agreed[0] != 9 || agreed[1] != 9 {
		t.Fatalf("agreed %v, want [9 9]", agreed)
	}
}

// TestDialTCPExhaustsRetries: with no listener ever, the bounded retry
// returns (quickly, with the attempt count in the error) instead of
// spinning forever.
func TestDialTCPExhaustsRetries(t *testing.T) {
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	addr := ln.Addr().String()
	ln.Close()
	_, err := DialTCPWith(context.Background(), addr, 1, 2, DialOptions{
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	if err == nil {
		t.Fatal("dial to a dead address succeeded")
	}
}

// TestLeaderDropsBadFromFrames: a report with an out-of-range sender rank
// must be dropped (with an observer instant), not corrupt the round maps.
// Before the fix, commitAsLeader trusted m.From, so rank 99 grew a
// phantom entry in rankRound and its report could complete a round.
func TestLeaderDropsBadFromFrames(t *testing.T) {
	group := NewLocalGroup(2)
	defer group[0].Close()
	defer group[1].Close()
	rec := obs.NewRecorder(16)
	leader := NewCoordinator(group[0])
	defer leader.Close()
	leader.SetObserver(rec)
	worker := NewCoordinator(group[1])
	defer worker.Close()

	// Forge frames straight into rank 0's inbox: a rank outside the world
	// and a report claiming to be from rank 0 itself.
	group[0].inbox <- Message{From: 99, Kind: KindReport, CheckpointID: 1, Seq: 1}
	group[0].inbox <- Message{From: -1, Kind: KindReport, CheckpointID: 1, Seq: 1}
	group[0].inbox <- Message{From: 0, Kind: KindReport, CheckpointID: 1, Seq: 1}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	agreed := make([]uint64, 2)
	for i, c := range []*Coordinator{leader, worker} {
		wg.Add(1)
		go func(i int, c *Coordinator) {
			defer wg.Done()
			got, err := c.Commit(ctx, 7)
			if err != nil {
				t.Errorf("rank %d: %v", i, err)
				return
			}
			agreed[i] = got
		}(i, c)
	}
	wg.Wait()
	if agreed[0] != 7 || agreed[1] != 7 {
		t.Fatalf("agreed %v, want [7 7] — forged frames leaked into the round", agreed)
	}
	if got := rec.Snapshot().DroppedFrames; got < 3 {
		t.Fatalf("dropped-frame counter = %d, want ≥ 3", got)
	}
}

// TestTCPStampsFromWithHandshakeRank: over TCP, rank 0 must believe the
// handshake, not the frame: a peer that authenticated as rank 1 cannot
// speak as anyone else.
func TestTCPStampsFromWithHandshakeRank(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	leaderCh := make(chan *TCP, 1)
	errCh := make(chan error, 1)
	go func() {
		tr, err := ListenTCP(ctx, ln, 2)
		if err != nil {
			errCh <- err
			return
		}
		leaderCh <- tr
	}()

	// A raw client that handshakes as rank 1 but writes frames claiming to
	// be from rank 0.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := make([]byte, helloSize)
	putHello(hello, 1, 7)
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}

	var leader *TCP
	select {
	case leader = <-leaderCh:
	case err := <-errCh:
		t.Fatal(err)
	}
	defer leader.Close()

	forged := Message{From: 0, Kind: KindReport, CheckpointID: 42, Seq: 1}
	if _, err := conn.Write(forged.encode()); err != nil {
		t.Fatal(err)
	}
	m, err := leader.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 1 {
		t.Fatalf("frame delivered with From=%d, want the handshake rank 1", m.From)
	}
}

// TestWorkerIgnoresStaleCommits: a duplicated or reordered commit frame
// must not answer a later round's Commit call. Before the fix, the worker
// consumed whatever KindCommit arrived next, so a duplicate of round 1's
// commit became round 2's "agreement", silently regressing it.
func TestWorkerIgnoresStaleCommits(t *testing.T) {
	group := NewLocalGroup(2)
	defer group[0].Close()
	defer group[1].Close()
	leader := NewCoordinator(group[0])
	worker := NewCoordinator(group[1])
	defer leader.Close()
	defer worker.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	round := func(id uint64) [2]uint64 {
		var wg sync.WaitGroup
		var out [2]uint64
		for i, c := range []*Coordinator{leader, worker} {
			wg.Add(1)
			go func(i int, c *Coordinator) {
				defer wg.Done()
				got, err := c.Commit(ctx, id)
				if err != nil {
					t.Errorf("rank %d: %v", i, err)
				}
				out[i] = got
			}(i, c)
		}
		wg.Wait()
		return out
	}

	if got := round(5); got != [2]uint64{5, 5} {
		t.Fatalf("round 1 agreed %v", got)
	}
	// Replay round 1's commit into the worker's inbox (a duplicated frame).
	group[1].inbox <- Message{From: 0, Kind: KindCommit, CheckpointID: 5, Seq: 1}
	time.Sleep(20 * time.Millisecond) // let the pump process (and drop) it
	if got := round(6); got != [2]uint64{6, 6} {
		t.Fatalf("round 2 agreed %v — a stale commit frame leaked in", got)
	}
	if lc := worker.LatestConsistent(); lc != 6 {
		t.Fatalf("worker LatestConsistent = %d, want 6", lc)
	}
}

// TestCommitMonotoneUnderDupReorder drives multiple rounds through
// ChaosTransports that duplicate, reorder, and delay frames in both
// directions, and checks agreement stays monotone and converges.
func TestCommitMonotoneUnderDupReorder(t *testing.T) {
	const world, rounds = 3, 8
	locals := NewLocalGroup(world)
	coords := make([]*Coordinator, world)
	for r := 0; r < world; r++ {
		ch := NewChaos(locals[r], ChaosConfig{
			Seed: int64(100 + r), DupProb: 0.3, ReorderProb: 0.2, DelayProb: 0.2,
			DelayMin: time.Millisecond, DelayMax: 8 * time.Millisecond,
		})
		defer ch.Close()
		coords[r] = NewCoordinatorWith(ch, fastDetect(Stall))
		defer coords[r].Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	final := make([]uint64, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var last uint64
			for i := uint64(1); i <= rounds; i++ {
				got, err := coords[r].Commit(ctx, i)
				if err != nil {
					t.Errorf("rank %d round %d: %v", r, i, err)
					return
				}
				if got < last {
					t.Errorf("rank %d round %d: agreed regressed %d → %d", r, i, last, got)
					return
				}
				last = got
			}
			final[r] = last
		}(r)
	}
	wg.Wait()
	for r := 0; r < world; r++ {
		if final[r] != rounds {
			t.Fatalf("rank %d converged on %d, want %d", r, final[r], rounds)
		}
	}
}

// TestCommitHonorsContextDeadline: the pre-existing escape hatch — when a
// peer never reports, Commit returns the caller's context error instead of
// blocking forever.
func TestCommitHonorsContextDeadline(t *testing.T) {
	group := NewLocalGroup(2)
	defer group[0].Close()
	defer group[1].Close()
	leader := NewCoordinator(group[0])
	defer leader.Close()
	// Rank 1 exists but never commits (and has no pump: it never even
	// answers pings — yet default policy is Stall, so no exclusion).
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := leader.Commit(ctx, 3)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Commit with an absent peer returned %v, want DeadlineExceeded", err)
	}
}

// TestHeartbeatDeclaresHungRankDead: a rank whose transport stays open but
// whose process is hung (its pump never answers pings) must be declared
// dead by silence — and under ExcludeDead the survivors keep committing.
func TestHeartbeatDeclaresHungRankDead(t *testing.T) {
	group := NewLocalGroup(2)
	defer group[0].Close()
	defer group[1].Close()
	rec := obs.NewRecorder(64)
	leader := NewCoordinatorWith(group[0], fastDetect(ExcludeDead))
	defer leader.Close()
	leader.SetObserver(rec)
	// Rank 1 "hangs": its coordinator dies but its transport stays open —
	// the connection-death path can never fire; only silence can.
	hung := NewCoordinator(group[1])
	hung.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	agreed, err := leader.Commit(ctx, 11)
	if err != nil {
		t.Fatalf("leader commit with a hung peer: %v", err)
	}
	if agreed != 11 {
		t.Fatalf("agreed %d, want 11 (the hung rank is excluded)", agreed)
	}
	dead := leader.DeadRanks()
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadRanks = %v, want [1]", dead)
	}
	if got := rec.Snapshot().RankDeaths; got < 1 {
		t.Fatalf("rank-death counter = %d, want ≥ 1", got)
	}
}

// TestExcludeDeadThenRejoin: the full degraded-mode arc — a rank dies, the
// survivors keep committing, the rank comes back with a fresh session,
// resyncs to the group's consistent ID, and rejoins live rounds.
func TestExcludeDeadThenRejoin(t *testing.T) {
	const world = 3
	group := NewLocalGroup(world)
	for _, g := range group {
		defer g.Close()
	}
	rec := obs.NewRecorder(64)
	cfg := fastDetect(ExcludeDead)
	coords := make([]*Coordinator, world)
	for r := 0; r < world; r++ {
		coords[r] = NewCoordinatorWith(group[r], cfg)
	}
	coords[0].SetObserver(rec)
	defer func() {
		for _, c := range coords {
			c.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	commitAll := func(ranks []int, id uint64) map[int]uint64 {
		var wg sync.WaitGroup
		var mu sync.Mutex
		out := make(map[int]uint64)
		for _, r := range ranks {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				got, err := coords[r].Commit(ctx, id)
				if err != nil {
					t.Errorf("rank %d id %d: %v", r, id, err)
					return
				}
				mu.Lock()
				out[r] = got
				mu.Unlock()
			}(r)
		}
		wg.Wait()
		return out
	}

	// Round 1: everyone.
	if got := commitAll([]int{0, 1, 2}, 1); got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("round 1 agreed %v", got)
	}
	// Rank 2 dies.
	coords[2].Close()
	// Rounds 2 and 3: survivors only; commits proceed once rank 2 is
	// declared dead.
	if got := commitAll([]int{0, 1}, 2); got[0] != 2 || got[1] != 2 {
		t.Fatalf("degraded round 2 agreed %v", got)
	}
	if got := commitAll([]int{0, 1}, 3); got[0] != 3 || got[1] != 3 {
		t.Fatalf("degraded round 3 agreed %v", got)
	}

	// Rank 2 restarts: fresh coordinator, explicit rejoin.
	coords[2] = NewCoordinatorWith(group[2], cfg)
	rid, err := coords[2].Rejoin(ctx)
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if rid != 3 {
		t.Fatalf("rejoin resynced to %d, want the group's consistent 3", rid)
	}
	// Round 4: everyone again — the rejoined rank's rounds line up.
	got := commitAll([]int{0, 1, 2}, 4)
	if got[0] != 4 || got[1] != 4 || got[2] != 4 {
		t.Fatalf("post-rejoin round agreed %v", got)
	}
	s := rec.Snapshot()
	if s.RankDeaths < 1 || s.RankRejoins < 1 {
		t.Fatalf("observer saw %d deaths / %d rejoins, want ≥ 1 each", s.RankDeaths, s.RankRejoins)
	}
}

// TestChaosScheduleDrop: the FaultDevice-style deterministic schedule —
// let After sends pass, then apply the verb.
func TestChaosScheduleDrop(t *testing.T) {
	group := NewLocalGroup(2)
	defer group[1].Close()
	ch := NewChaos(group[0], ChaosConfig{})
	defer ch.Close()
	ch.SetSchedule(ChaosSchedule{After: 1, Count: 1, Verb: VerbDrop})

	ctx := context.Background()
	for id := uint64(1); id <= 3; id++ {
		if err := ch.Send(ctx, 1, Message{Kind: KindReport, CheckpointID: id, Seq: id}); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	for i := 0; i < 2; i++ {
		m, err := group[1].Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m.CheckpointID)
	}
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("received %v, want [1 3] (send 2 dropped by schedule)", got)
	}
	rctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if m, err := group[1].Recv(rctx); err == nil {
		t.Fatalf("dropped frame %d was delivered", m.CheckpointID)
	}
}

// TestChaosKillRestart: a killed endpoint's traffic vanishes in both
// directions; after Restart it communicates again.
func TestChaosKillRestart(t *testing.T) {
	group := NewLocalGroup(2)
	defer group[0].Close()
	ch := NewChaos(group[1], ChaosConfig{})
	defer ch.Close()
	ctx := context.Background()

	ch.Kill()
	// Sends from the killed rank vanish without error.
	if err := ch.Send(ctx, 0, Message{Kind: KindReport, CheckpointID: 1, Seq: 1}); err != nil {
		t.Fatalf("send while killed: %v", err)
	}
	rctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	if m, err := group[0].Recv(rctx); err == nil {
		t.Fatalf("killed rank's frame %d was delivered", m.CheckpointID)
	}
	cancel()

	// Frames sent TO the killed rank are discarded by its pending Recv.
	recvCh := make(chan Message, 1)
	go func() {
		m, err := ch.Recv(ctx)
		if err == nil {
			recvCh <- m
		}
	}()
	if err := group[0].Send(ctx, 1, Message{Kind: KindCommit, CheckpointID: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // the killed Recv drains and discards it

	ch.Restart()
	if err := group[0].Send(ctx, 1, Message{Kind: KindCommit, CheckpointID: 2, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-recvCh:
		if m.CheckpointID != 2 {
			t.Fatalf("after restart received %d, want 2 (1 died with the process)", m.CheckpointID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("restarted endpoint never received")
	}
}

// TestExploreChaosFast runs representative sweep cases in-process: a lossy
// Stall case (retransmission must heal it) and the kill/restart arc under
// ExcludeDead.
func TestExploreChaosFast(t *testing.T) {
	cases := []ChaosCase{
		{
			Name: "stall-lossy", World: 3, Rounds: 6, Policy: Stall, Seed: 42,
			Chaos: ChaosConfig{DropProb: 0.15, DupProb: 0.15, ReorderProb: 0.15},
		},
		{
			Name: "kill-restart", World: 3, Rounds: 12, Policy: ExcludeDead, Seed: 43,
			KillRank: 2, KillRound: 3, RestartRound: 5,
			Chaos: ChaosConfig{DupProb: 0.1, ReorderProb: 0.1},
		},
		{
			Name: "oneway-partition", World: 3, Rounds: 12, Policy: ExcludeDead, Seed: 44,
			PartRank: 1, PartRound: 3, PartDur: 100 * time.Millisecond,
		},
	}
	for _, cs := range cases {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			res, err := ExploreChaos(ChaosExploreOptions{Case: cs})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
			if res.Commits == 0 || res.FinalID == 0 {
				t.Fatalf("no progress: %+v", res)
			}
			if cs.KillRank > 0 && (res.Kills != 1 || res.Rejoins != 1) {
				t.Fatalf("kill case ran %d kills / %d rejoins", res.Kills, res.Rejoins)
			}
		})
	}
}

// putHello writes a handshake frame (test helper for raw clients).
func putHello(b []byte, rank int, epoch uint32) {
	le := func(off int, v uint32) {
		b[off] = byte(v)
		b[off+1] = byte(v >> 8)
		b[off+2] = byte(v >> 16)
		b[off+3] = byte(v >> 24)
	}
	le(0, helloMagic)
	le(4, uint32(rank))
	le(8, epoch)
}

// TestChaosSweep runs the full seeded sweep matrix — the same cases
// `pccheck-disttrain -chaos` runs.
func TestChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos sweep skipped in -short mode")
	}
	for _, cs := range ChaosSweepCases(7) {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			res, err := ExploreChaos(ChaosExploreOptions{Case: cs})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
			if res.Commits == 0 || res.FinalID == 0 {
				t.Fatalf("no progress: %+v", res)
			}
		})
	}
}
