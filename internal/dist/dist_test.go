package dist

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"
)

func TestPartitionRange(t *testing.T) {
	// BLOOM-7B style: 108 GB over 6 workers → 18 GB each.
	total := int64(108_000_000_000)
	var covered int64
	for rank := 0; rank < 6; rank++ {
		off, n, err := PartitionRange(total, rank, 6)
		if err != nil {
			t.Fatal(err)
		}
		if off != covered {
			t.Fatalf("rank %d starts at %d, want %d", rank, off, covered)
		}
		covered += n
	}
	if covered != total {
		t.Fatalf("partitions cover %d of %d", covered, total)
	}
	// Remainder goes to the last rank.
	_, n, _ := PartitionRange(10, 2, 3)
	if n != 4 {
		t.Fatalf("last shard = %d, want 4", n)
	}
	if _, _, err := PartitionRange(10, 3, 3); err == nil {
		t.Fatal("rank out of range accepted")
	}
	if _, _, err := PartitionRange(-1, 0, 1); err == nil {
		t.Fatal("negative total accepted")
	}
}

func TestLocalTransportBasics(t *testing.T) {
	group := NewLocalGroup(2)
	defer group[0].Close()
	defer group[1].Close()
	ctx := context.Background()
	if err := group[0].Send(ctx, 1, Message{Kind: KindReport, CheckpointID: 42}); err != nil {
		t.Fatal(err)
	}
	m, err := group[1].Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || m.CheckpointID != 42 || m.Kind != KindReport {
		t.Fatalf("got %+v", m)
	}
	if err := group[0].Send(ctx, 5, Message{}); err == nil {
		t.Fatal("send to invalid rank accepted")
	}
}

func TestLocalTransportContextCancel(t *testing.T) {
	group := NewLocalGroup(1)
	defer group[0].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := group[0].Recv(ctx); err == nil {
		t.Fatal("Recv on empty inbox returned without error")
	}
}

// runCommitRound has every worker commit the given IDs (one per round) and
// returns the agreed IDs per worker per round.
func runCommitRound(t *testing.T, coords []*Coordinator, ids [][]uint64) [][]uint64 {
	t.Helper()
	world := len(coords)
	agreed := make([][]uint64, world)
	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for _, id := range ids[rank] {
				got, err := coords[rank].Commit(context.Background(), id)
				if err != nil {
					t.Errorf("rank %d: %v", rank, err)
					return
				}
				agreed[rank] = append(agreed[rank], got)
			}
		}(rank)
	}
	wg.Wait()
	return agreed
}

func TestCommitAllEqual(t *testing.T) {
	group := NewLocalGroup(4)
	coords := make([]*Coordinator, 4)
	for i, tr := range group {
		coords[i] = NewCoordinator(tr)
		defer tr.Close()
	}
	ids := [][]uint64{{7}, {7}, {7}, {7}}
	agreed := runCommitRound(t, coords, ids)
	for rank, a := range agreed {
		if len(a) != 1 || a[0] != 7 {
			t.Fatalf("rank %d agreed %v, want [7]", rank, a)
		}
		if coords[rank].LatestConsistent() != 7 {
			t.Fatalf("rank %d peerCheck = %d", rank, coords[rank].LatestConsistent())
		}
	}
}

func TestCommitTakesMinimum(t *testing.T) {
	group := NewLocalGroup(3)
	coords := make([]*Coordinator, 3)
	for i, tr := range group {
		coords[i] = NewCoordinator(tr)
		defer tr.Close()
	}
	// Worker 2 lags: its persisted checkpoint is older.
	agreed := runCommitRound(t, coords, [][]uint64{{10}, {10}, {9}})
	for rank, a := range agreed {
		if a[0] != 9 {
			t.Fatalf("rank %d agreed %d, want the minimum 9", rank, a[0])
		}
	}
}

func TestCommitMultipleRoundsInOrder(t *testing.T) {
	group := NewLocalGroup(3)
	coords := make([]*Coordinator, 3)
	for i, tr := range group {
		coords[i] = NewCoordinator(tr)
		defer tr.Close()
	}
	ids := [][]uint64{{1, 2, 3, 4}, {1, 2, 3, 4}, {1, 2, 3, 4}}
	agreed := runCommitRound(t, coords, ids)
	for rank, a := range agreed {
		for i, got := range a {
			if got != uint64(i+1) {
				t.Fatalf("rank %d round %d agreed %d", rank, i, got)
			}
		}
	}
	for _, c := range coords {
		if c.LatestConsistent() != 4 {
			t.Fatalf("peerCheck = %d, want 4", c.LatestConsistent())
		}
	}
}

func TestCommitSingleWorker(t *testing.T) {
	group := NewLocalGroup(1)
	defer group[0].Close()
	c := NewCoordinator(group[0])
	agreed, err := c.Commit(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if agreed != 5 || c.LatestConsistent() != 5 {
		t.Fatalf("single-worker commit: %d / %d", agreed, c.LatestConsistent())
	}
}

func TestCommitStaggeredWorkers(t *testing.T) {
	// A fast worker reports round 2 while a slow worker is still in round 1;
	// the protocol must not mix rounds.
	group := NewLocalGroup(2)
	coords := []*Coordinator{NewCoordinator(group[0]), NewCoordinator(group[1])}
	defer group[0].Close()
	defer group[1].Close()

	results := make(chan [2]uint64, 4)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // rank 1: fast, fires both rounds back to back
		defer wg.Done()
		for _, id := range []uint64{100, 200} {
			got, err := coords[1].Commit(context.Background(), id)
			if err != nil {
				t.Error(err)
				return
			}
			results <- [2]uint64{id, got}
		}
	}()
	go func() { // rank 0: slow
		defer wg.Done()
		for _, id := range []uint64{100, 200} {
			time.Sleep(20 * time.Millisecond)
			got, err := coords[0].Commit(context.Background(), id)
			if err != nil {
				t.Error(err)
				return
			}
			results <- [2]uint64{id, got}
		}
	}()
	wg.Wait()
	close(results)
	for r := range results {
		if r[0] != r[1] {
			t.Fatalf("round with id %d agreed %d", r[0], r[1])
		}
	}
}

func TestTCPTransportGroup(t *testing.T) {
	const world = 3
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	leaderCh := make(chan *TCP, 1)
	errCh := make(chan error, 1)
	go func() {
		leader, err := ListenTCP(ctx, ln, world)
		if err != nil {
			errCh <- err
			return
		}
		leaderCh <- leader
	}()
	var workers []*TCP
	for rank := 1; rank < world; rank++ {
		w, err := DialTCP(ctx, ln.Addr().String(), rank, world)
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	var leader *TCP
	select {
	case leader = <-leaderCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-ctx.Done():
		t.Fatal("leader never came up")
	}
	defer leader.Close()
	for _, w := range workers {
		defer w.Close()
	}

	coords := []*Coordinator{NewCoordinator(leader), NewCoordinator(workers[0]), NewCoordinator(workers[1])}
	var wg sync.WaitGroup
	agreed := make([]uint64, world)
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			got, err := coords[rank].Commit(ctx, 33)
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			agreed[rank] = got
		}(rank)
	}
	wg.Wait()
	for rank, a := range agreed {
		if a != 33 {
			t.Fatalf("rank %d agreed %d over TCP", rank, a)
		}
	}
}

func TestDialTCPValidatesRank(t *testing.T) {
	if _, err := DialTCP(context.Background(), "127.0.0.1:1", 0, 3); err == nil {
		t.Fatal("rank 0 dialing accepted")
	}
	if _, err := DialTCP(context.Background(), "127.0.0.1:1", 3, 3); err == nil {
		t.Fatal("out-of-world rank accepted")
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	orig := Message{From: 5, Kind: KindCommit, CheckpointID: 12345}
	got, err := decodeMessage(orig.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip: %+v vs %+v", got, orig)
	}
	if _, err := decodeMessage([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad kind accepted")
	}
	if _, err := decodeMessage([]byte{1, 2}); err == nil {
		t.Fatal("short message accepted")
	}
}

func TestHybridPartitionRange(t *testing.T) {
	// BLOOM-7B-style: 108 GB over 6 pipeline stages × 4 data-parallel
	// replicas ⇒ 24 shards of 4.5 GB covering the state exactly once.
	total := int64(108_000_000_000)
	const stages, replicas = 6, 4
	covered := make(map[int64]int64) // off → len
	for s := 0; s < stages; s++ {
		for r := 0; r < replicas; r++ {
			off, n, err := HybridPartitionRange(total, s, stages, r, replicas)
			if err != nil {
				t.Fatal(err)
			}
			if n != 4_500_000_000 {
				t.Fatalf("stage %d replica %d shard = %d", s, r, n)
			}
			covered[off] = n
		}
	}
	if len(covered) != stages*replicas {
		t.Fatalf("shards overlap: %d distinct offsets", len(covered))
	}
	var sum int64
	next := int64(0)
	for len(covered) > 0 {
		n, ok := covered[next]
		if !ok {
			t.Fatalf("gap at offset %d", next)
		}
		delete(covered, next)
		sum += n
		next += n
	}
	if sum != total {
		t.Fatalf("shards cover %d of %d", sum, total)
	}
	// Remainders flow to the last replica of the last stage.
	off, n, err := HybridPartitionRange(100, 2, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if off+n != 100 {
		t.Fatalf("tail shard [%d,%d) does not end at total", off, off+n)
	}
	if _, _, err := HybridPartitionRange(100, 3, 3, 0, 2); err == nil {
		t.Fatal("stage out of range accepted")
	}
	if _, _, err := HybridPartitionRange(100, 0, 3, 2, 2); err == nil {
		t.Fatal("replica out of range accepted")
	}
}
