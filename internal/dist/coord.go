package dist

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pccheck/internal/obs"
	"pccheck/internal/obs/decision"
)

// DegradedPolicy selects what rank 0 does when a worker is declared dead
// mid-protocol.
type DegradedPolicy int

const (
	// Stall is the paper's behaviour (§4.1): every rank must report before
	// a round commits, so a dead rank halts global agreement until the
	// training framework restarts it. Failure detection still runs and
	// emits rank-dead events — the operator sees the stall's cause — but
	// commits never exclude anyone.
	Stall DegradedPolicy = iota
	// ExcludeDead lets the survivors make progress: once a rank is
	// declared dead, rounds commit over the live ranks' reports (plus any
	// report the dead rank banked before dying — it is durably persisted,
	// so including it only tightens the minimum). The agreed ID stays
	// globally consistent for every LIVE rank; the dead rank re-enters
	// through Rejoin and adopts the group's LatestConsistent.
	ExcludeDead
)

func (p DegradedPolicy) String() string {
	switch p {
	case Stall:
		return "stall"
	case ExcludeDead:
		return "exclude-dead"
	default:
		return fmt.Sprintf("DegradedPolicy(%d)", int(p))
	}
}

// Causes recorded as the Value of a PhaseRankDead event.
const (
	// DeadCauseTimeout: the rank went silent past HeartbeatTimeout — it
	// answered no pings even though its connection may still be open
	// (hung process, one-way partition).
	DeadCauseTimeout = 1
	// DeadCauseConn: rank 0's connection to the rank died.
	DeadCauseConn = 2
	// DeadCauseDeadline: the oldest open round exceeded CommitDeadline and
	// this rank was among the missing reporters (ExcludeDead only).
	DeadCauseDeadline = 3
)

// Reasons recorded as the Value of a PhaseFrameDropped event.
const (
	// DropBadFrom: the frame's sender rank is outside [0, world) or
	// mismatches the handshake-registered rank for its connection.
	DropBadFrom = 1
	// DropBadSeq: a report carried sequence number 0 (the wire's "unset").
	DropBadSeq = 2
	// DropStaleCommit: a duplicated or reordered commit frame for a round
	// the worker already passed.
	DropStaleCommit = 3
	// DropUnexpectedKind: a structurally valid frame whose kind this side
	// never accepts (e.g. a report arriving at a worker).
	DropUnexpectedKind = 4
	// DropStaleResync: a resync frame arriving outside a Rejoin, or
	// carrying an older base than the worker already adopted.
	DropStaleResync = 5
)

// CoordConfig tunes failure detection and degraded-mode commit. The zero
// value reproduces the paper's protocol with conservative detection
// defaults: heartbeats every second, a rank declared dead after 5s of
// silence, Stall policy (detection is then observability only).
type CoordConfig struct {
	// Heartbeat is rank 0's ping interval. 0 selects the 1s default; a
	// negative value disables liveness detection entirely (no pings, no
	// timeouts, no deadline exclusion — PR≤4 behaviour).
	Heartbeat time.Duration
	// HeartbeatTimeout is how long a rank may stay silent — no report, no
	// pong, no hello — before rank 0 declares it dead. This is what
	// catches hung-but-connected ranks whose TCP connection never closes.
	// 0 selects 5×Heartbeat.
	HeartbeatTimeout time.Duration
	// CommitDeadline bounds how long the oldest uncommitted round may stay
	// open before the ranks still missing from it are declared dead
	// (ExcludeDead only; 0 disables, leaving detection to heartbeats).
	// It is the fast path for "the rank is answering pings but its
	// reports never arrive" — a one-way partition.
	CommitDeadline time.Duration
	// SendTimeout bounds every protocol-internal send (broadcasts, pings,
	// pongs, resyncs) so one dead peer cannot wedge the message pump.
	// 0 selects 2s.
	SendTimeout time.Duration
	// Degraded selects the dead-rank commit policy. Default Stall.
	Degraded DegradedPolicy
}

func (cfg CoordConfig) withDefaults() CoordConfig {
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		hb := cfg.Heartbeat
		if hb < 0 {
			hb = time.Second
		}
		cfg.HeartbeatTimeout = 5 * hb
	}
	if cfg.SendTimeout <= 0 {
		cfg.SendTimeout = 2 * time.Second
	}
	return cfg
}

// Coordinator runs the global-consistency protocol of §4.1: after a worker's
// local checkpoint publish (the successful CAS of Listing 1), it calls
// Commit with its checkpoint ID. Rank 0 gathers one ID per rank for the
// round, declares the round's minimum ID globally consistent (every worker
// has durably persisted at least that far), and broadcasts it. Every
// worker's peerCheck then advances to the agreed ID.
//
// Each Coordinator owns a background pump goroutine that demultiplexes
// incoming frames: reports and hellos feed rank 0's round logic, pings are
// answered with pongs, commits wake the blocked Commit call, resyncs serve
// Rejoin. Frames are placed by explicit sequence number — the i-th report
// of a rank belongs to round baseRound+i — so duplicated or reordered
// frames land in the right round (or are dropped as stale) instead of
// corrupting the bookkeeping. Commit calls on one worker are serialized;
// rounds commit strictly in order.
//
// Call Close when done with the Coordinator (closing the Transport also
// stops the pump, which is how pre-existing callers that only close the
// transport keep working).
type Coordinator struct {
	tr  Transport
	cfg CoordConfig

	// commitMu serializes Commit (and Rejoin) on this worker.
	commitMu sync.Mutex

	mu        sync.Mutex
	peerCheck uint64

	// Worker-side protocol state. base is the round offset adopted from
	// the last resync (0 for the initial session); seq counts this
	// session's Commit calls, so the current report belongs to round
	// base+seq. lastCommitRound is the newest committed round observed,
	// the monotonicity gate that drops duplicated/reordered commit frames.
	base            uint64
	seq             uint64
	lastCommitRound uint64
	helloing        bool // inside Rejoin: resync frames may adjust base
	resynced        bool

	// Rank-0 state: reports per round; baseRound is the per-rank round
	// offset (reset when a rank rejoins with a fresh session, so its
	// restarted sequence numbers keep landing in current rounds); next is
	// the next round index to commit. dead/lastHeard/probe drive failure
	// detection.
	rounds    map[uint64]map[int]report
	baseRound map[int]uint64
	next      uint64
	dead      map[int]bool
	lastHeard map[int]int64
	probe     uint64

	// obsv, when set on rank 0, receives one PhaseAgreeGate event per
	// committed round plus the failure-detection instants (PhaseRankDead,
	// PhaseRankRejoined, PhaseFrameDropped); see SetObserver.
	obsv obs.Observer
	// dec is the decision recorder found in the observer chain (nil when
	// none): rank 0 records each degraded-commit policy action — a Stall
	// round blocked solely by dead ranks opens a pending decision scored
	// by the measured stall when the round finally commits; an ExcludeDead
	// commit that skipped dead ranks is recorded immediately.
	// degradedOpen tracks the open Stall decisions (round → opened, ns).
	dec          *decision.Recorder
	degradedOpen map[uint64]int64

	notify     chan struct{} // capacity 1; wakes the (single) blocked Commit/Rejoin
	pumpCancel context.CancelFunc
	pumpDone   chan struct{}
	pumpErrV   error
	tickDone   chan struct{}
	closeOnce  sync.Once
}

// report is one rank's contribution to a round: the checkpoint ID it
// published and when the report reached rank 0.
type report struct {
	id uint64
	at int64 // arrival, UnixNano
}

// NewCoordinator wraps a transport with the default config. All workers of
// the group must create exactly one Coordinator each and call Commit once
// per local checkpoint.
func NewCoordinator(tr Transport) *Coordinator {
	return NewCoordinatorWith(tr, CoordConfig{})
}

// NewCoordinatorWith wraps a transport with explicit failure-detection and
// degraded-mode settings. It starts the message pump immediately (and, on
// rank 0, the liveness ticker unless Heartbeat < 0).
func NewCoordinatorWith(tr Transport, cfg CoordConfig) *Coordinator {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		tr:         tr,
		cfg:        cfg.withDefaults(),
		rounds:     make(map[uint64]map[int]report),
		baseRound:  make(map[int]uint64),
		next:       1,
		dead:       make(map[int]bool),
		lastHeard:  make(map[int]int64),
		notify:     make(chan struct{}, 1),
		pumpCancel: cancel,
		pumpDone:   make(chan struct{}),
	}
	now := time.Now().UnixNano()
	for r := 1; r < tr.WorldSize(); r++ {
		c.lastHeard[r] = now // grace period: silence counts from startup
	}
	if tr.Rank() == 0 {
		if pe, ok := tr.(PeerEvents); ok {
			pe.SetPeerHook(c.peerEvent)
		}
		if c.cfg.Heartbeat > 0 && tr.WorldSize() > 1 {
			c.tickDone = make(chan struct{})
			go c.liveness()
		}
	}
	go c.pump(ctx)
	return c
}

// Close stops the pump and liveness goroutines. It does not close the
// Transport (its creator owns it). Idempotent.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		c.pumpCancel()
		<-c.pumpDone
		if c.tickDone != nil {
			<-c.tickDone
		}
	})
	return nil
}

// SetObserver attaches an observer to the coordinator. On rank 0 it emits
// one PhaseAgreeGate event per committed round: Rank is the rank whose
// report gated the round (the unique oldest checkpoint ID, or the last
// report to arrive when IDs tie), TS the first report's arrival, Dur the
// first→last arrival spread, Counter the agreed ID, and Value the ID gap
// between the freshest and oldest reports. It additionally emits the
// failure-detection instants: PhaseRankDead (Value: DeadCause*),
// PhaseRankRejoined (Counter: the consistent ID the rank resynced to) and
// PhaseFrameDropped (Value: Drop*). Call before the first Commit.
func (c *Coordinator) SetObserver(o obs.Observer) {
	c.mu.Lock()
	c.obsv = o
	c.dec = decision.Find(o)
	c.mu.Unlock()
}

// LatestConsistent returns the newest globally consistent checkpoint ID
// (0 = none yet). On restart, every worker restores this checkpoint even if
// its own device holds a newer, not-yet-agreed one.
func (c *Coordinator) LatestConsistent() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peerCheck
}

// NextRound returns the global round index this worker's next Commit will
// join (after a Rejoin the anchor moves forward past the rounds the group
// committed while this rank was away). Harnesses use it to schedule
// round-aligned faults and to know when every rank has reached a common
// final round.
func (c *Coordinator) NextRound() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base + c.seq + 1
}

// DeadRanks returns the ranks rank 0 currently considers dead (nil
// elsewhere, and when everyone is live).
func (c *Coordinator) DeadRanks() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for r, d := range c.dead {
		if d {
			out = append(out, r)
		}
	}
	return out
}

// Commit reports a locally persisted checkpoint ID and blocks until this
// worker's round commits, returning the group's consistent checkpoint ID as
// of that commit (monotone: never below a previously returned value). The
// context's deadline is the caller's escape hatch when the group cannot
// make progress — a missing peer under Stall policy stalls Commit by
// design.
func (c *Coordinator) Commit(ctx context.Context, checkpointID uint64) (uint64, error) {
	c.commitMu.Lock()
	defer c.commitMu.Unlock()

	c.mu.Lock()
	c.seq++
	seq := c.seq
	target := c.base + seq
	c.mu.Unlock()

	if c.tr.Rank() == 0 {
		c.mu.Lock()
		c.addReportLocked(0, checkpointID, seq)
		bcasts := c.tryCommitLocked()
		c.mu.Unlock()
		c.sendAll(bcasts)
		// Rank 0's round (base always 0) has committed once next passes it.
		return c.waitFor(ctx, func() bool { return c.next > seq })
	}

	rep := Message{Kind: KindReport, CheckpointID: checkpointID, Seq: seq}
	if err := c.tr.Send(ctx, 0, rep); err != nil {
		return 0, err
	}
	// Retransmit the report while waiting: a dropped report (or a dropped
	// commit broadcast) would otherwise stall this call forever even after
	// the network heals. The leader deduplicates by sequence number, and
	// answers a report for an already-committed round by re-sending the
	// commit — so retransmission recovers from loss in either direction.
	resend := c.cfg.Heartbeat
	if resend <= 0 {
		resend = 500 * time.Millisecond
	}
	tick := time.NewTicker(resend)
	defer tick.Stop()
	for {
		c.mu.Lock()
		if c.lastCommitRound >= target {
			id := c.peerCheck
			c.mu.Unlock()
			return id, nil
		}
		c.mu.Unlock()
		select {
		case <-c.notify:
		case <-tick.C:
			_ = c.tr.Send(ctx, 0, rep)
		case <-c.pumpDone:
			return 0, c.pumpErr()
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// waitFor blocks until cond (evaluated under c.mu) holds, then returns the
// consistent ID. The pump wakes it via notify; commitMu guarantees a single
// waiter, so the capacity-1 notify channel cannot lose a wakeup.
func (c *Coordinator) waitFor(ctx context.Context, cond func() bool) (uint64, error) {
	for {
		c.mu.Lock()
		if cond() {
			id := c.peerCheck
			c.mu.Unlock()
			return id, nil
		}
		c.mu.Unlock()
		select {
		case <-c.notify:
		case <-c.pumpDone:
			return 0, c.pumpErr()
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// Rejoin re-attaches this worker to the group after a restart (or after
// its rank was declared dead): it sends hello frames to rank 0 until a
// resync reply arrives, adopts the group's current round offset so its
// restarted sequence numbers land in live rounds, and returns the globally
// consistent checkpoint ID the caller should restore (via LoadLatest)
// before resuming training. On rank 0 it is a no-op returning the current
// consistent ID.
func (c *Coordinator) Rejoin(ctx context.Context) (uint64, error) {
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	if c.tr.Rank() == 0 {
		return c.LatestConsistent(), nil
	}

	c.mu.Lock()
	c.helloing = true
	c.resynced = false
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.helloing = false
		c.mu.Unlock()
	}()

	resend := c.cfg.Heartbeat
	if resend <= 0 {
		resend = 200 * time.Millisecond
	}
	for {
		if err := c.tr.Send(ctx, 0, Message{Kind: KindPing}); err != nil {
			return 0, fmt.Errorf("dist: rejoin hello: %w", err)
		}
		deadline := time.NewTimer(resend)
	wait:
		for {
			c.mu.Lock()
			if c.resynced {
				id := c.peerCheck
				c.mu.Unlock()
				deadline.Stop()
				return id, nil
			}
			c.mu.Unlock()
			select {
			case <-c.notify:
			case <-deadline.C:
				break wait // resend the hello
			case <-c.pumpDone:
				deadline.Stop()
				return 0, c.pumpErr()
			case <-ctx.Done():
				deadline.Stop()
				return 0, ctx.Err()
			}
		}
	}
}

// pump is the per-Coordinator receive loop: it demultiplexes every inbound
// frame so protocol progress (pong replies, round bookkeeping, liveness
// evidence) continues even while no Commit call is in flight.
func (c *Coordinator) pump(ctx context.Context) {
	defer close(c.pumpDone)
	leader := c.tr.Rank() == 0
	for {
		m, err := c.tr.Recv(ctx)
		if err != nil {
			c.mu.Lock()
			c.pumpErrV = err
			c.mu.Unlock()
			return
		}
		if leader {
			c.leaderFrame(m)
		} else {
			c.workerFrame(m)
		}
	}
}

func (c *Coordinator) pumpErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pumpErrV != nil {
		return fmt.Errorf("dist: coordinator stopped: %w", c.pumpErrV)
	}
	return fmt.Errorf("dist: coordinator stopped")
}

// leaderFrame handles one frame on rank 0.
func (c *Coordinator) leaderFrame(m Message) {
	// Never trust a frame's claimed sender blindly: the TCP transport
	// stamps From with the handshake-registered rank of the connection the
	// frame arrived on, so a mismatch (or an out-of-range rank over any
	// transport) is either corruption or spoofing — drop it, with an
	// observer instant, rather than let it corrupt the round maps.
	if m.From <= 0 || m.From >= c.tr.WorldSize() {
		c.emitDropped(m, DropBadFrom)
		return
	}
	switch m.Kind {
	case KindReport:
		if m.Seq == 0 {
			c.emitDropped(m, DropBadSeq)
			return
		}
		c.mu.Lock()
		c.touchLocked(m.From)
		fresh := c.addReportLocked(m.From, m.CheckpointID, m.Seq)
		var echo Message
		if !fresh {
			// A report for an already-committed round is a retransmission
			// from a worker that never saw the round's commit — re-send it
			// (the current consistent ID is ≥ that round's) so the worker
			// unblocks.
			echo = Message{Kind: KindCommit, CheckpointID: c.peerCheck, Seq: c.next - 1}
		}
		bcasts := c.tryCommitLocked()
		c.mu.Unlock()
		if !fresh {
			c.sendOne(m.From, echo)
		}
		c.sendAll(bcasts)
		c.wake()
	case KindPong:
		c.mu.Lock()
		c.touchLocked(m.From)
		c.mu.Unlock()
	case KindPing:
		// A worker pinging rank 0 is a hello: a fresh or restarted session
		// asking to (re)join. Re-anchor its round offset at the current
		// round, discard any reports banked by its previous incarnation
		// (their durability died with it), and tell it where the group is.
		c.mu.Lock()
		c.touchLocked(m.From)
		c.baseRound[m.From] = c.next - 1
		for round, reps := range c.rounds {
			delete(reps, m.From)
			if len(reps) == 0 {
				delete(c.rounds, round)
			}
		}
		resync := Message{Kind: KindResync, CheckpointID: c.peerCheck, Seq: c.next - 1}
		c.mu.Unlock()
		c.sendOne(m.From, resync)
		c.wake()
	default:
		c.emitDropped(m, DropUnexpectedKind)
	}
}

// workerFrame handles one frame on a non-zero rank.
func (c *Coordinator) workerFrame(m Message) {
	switch m.Kind {
	case KindPing:
		c.sendOne(0, Message{Kind: KindPong, Seq: m.Seq})
	case KindCommit:
		c.mu.Lock()
		if m.Seq <= c.lastCommitRound {
			c.mu.Unlock()
			// Duplicated or reordered commit frame: without this gate it
			// would answer a LATER round's Commit call with a stale agreed
			// ID, regressing what the caller believes is consistent.
			c.emitDropped(m, DropStaleCommit)
			return
		}
		c.lastCommitRound = m.Seq
		c.advanceLocked(m.CheckpointID)
		c.mu.Unlock()
		c.wake()
	case KindResync:
		c.mu.Lock()
		c.advanceLocked(m.CheckpointID)
		ok := c.helloing && m.Seq >= c.base
		if ok {
			// Adopt rank 0's round anchor; our next report (seq 1) lands in
			// the group's current round. Monotone accept: a delayed resync
			// from an earlier hello must not roll the anchor back.
			c.base = m.Seq
			c.seq = 0
			c.lastCommitRound = m.Seq
			c.resynced = true
		}
		c.mu.Unlock()
		if !ok {
			c.emitDropped(m, DropStaleResync)
		}
		c.wake()
	default:
		c.emitDropped(m, DropUnexpectedKind)
	}
}

// liveness is rank 0's detection ticker: it pings every peer each
// Heartbeat, declares ranks dead after HeartbeatTimeout of silence, and —
// under ExcludeDead with a CommitDeadline — excludes the ranks holding the
// oldest round open too long.
func (c *Coordinator) liveness() {
	defer close(c.tickDone)
	t := time.NewTicker(c.cfg.Heartbeat)
	defer t.Stop()
	world := c.tr.WorldSize()
	for {
		select {
		case <-c.pumpDone:
			return
		case <-t.C:
		}
		now := time.Now().UnixNano()
		c.mu.Lock()
		c.probe++
		probe := c.probe
		for r := 1; r < world; r++ {
			if !c.dead[r] && now-c.lastHeard[r] > int64(c.cfg.HeartbeatTimeout) {
				c.markDeadLocked(r, DeadCauseTimeout)
			}
		}
		if c.cfg.Degraded == ExcludeDead && c.cfg.CommitDeadline > 0 {
			if reps := c.rounds[c.next]; len(reps) > 0 {
				openSince := int64(0)
				for _, rep := range reps {
					if openSince == 0 || rep.at < openSince {
						openSince = rep.at
					}
				}
				if now-openSince > int64(c.cfg.CommitDeadline) {
					for r := 1; r < world; r++ {
						if _, in := reps[r]; !in && !c.dead[r] {
							c.markDeadLocked(r, DeadCauseDeadline)
						}
					}
				}
			}
		}
		bcasts := c.tryCommitLocked()
		c.mu.Unlock()
		c.sendAll(bcasts)
		c.wake()
		for r := 1; r < world; r++ {
			// Dead ranks are pinged too: a pong from one is how a hung (not
			// crashed) rank announces it recovered.
			c.sendOne(r, Message{Kind: KindPing, Seq: probe})
		}
	}
}

// peerEvent is the TCP transport's connectivity hook (rank 0 only).
func (c *Coordinator) peerEvent(rank int, up bool) {
	if rank <= 0 || rank >= c.tr.WorldSize() {
		return
	}
	c.mu.Lock()
	if up {
		// A fresh session attached; liveness resumes. Round bookkeeping is
		// re-anchored by the worker's hello, not here — the connection
		// alone says nothing about which rounds its reports belong to.
		c.lastHeard[rank] = time.Now().UnixNano()
		c.mu.Unlock()
		return
	}
	c.markDeadLocked(rank, DeadCauseConn)
	bcasts := c.tryCommitLocked()
	c.mu.Unlock()
	c.sendAll(bcasts)
	c.wake()
}

// touchLocked records liveness evidence from a rank. Any frame from a
// dead-marked rank revives it (its reports resume counting toward rounds);
// the round anchor is NOT reset here — only an explicit hello re-anchors,
// because a rank that was merely slow (not restarted) continues its old
// sequence numbering.
func (c *Coordinator) touchLocked(rank int) {
	c.lastHeard[rank] = time.Now().UnixNano()
	if c.dead[rank] {
		c.markLiveLocked(rank)
	}
}

func (c *Coordinator) markDeadLocked(rank int, cause int64) {
	if c.dead[rank] {
		return
	}
	c.dead[rank] = true
	if c.obsv != nil {
		c.obsv.Emit(obs.Event{
			TS: time.Now().UnixNano(), Phase: obs.PhaseRankDead,
			Counter: c.peerCheck, Value: cause,
			Slot: -1, Writer: -1, Rank: int32(rank),
		})
	}
}

func (c *Coordinator) markLiveLocked(rank int) {
	if !c.dead[rank] {
		return
	}
	c.dead[rank] = false
	if c.obsv != nil {
		c.obsv.Emit(obs.Event{
			TS: time.Now().UnixNano(), Phase: obs.PhaseRankRejoined,
			Counter: c.peerCheck,
			Slot:    -1, Writer: -1, Rank: int32(rank),
		})
	}
}

// addReportLocked banks a rank's report: its seq-th report of the current
// session belongs to round baseRound+seq. It returns false for a report
// whose round already committed (a slow or replayed frame); a duplicate
// for an open round overwrites harmlessly (same rank, same round, same
// ID) and counts as fresh.
func (c *Coordinator) addReportLocked(rank int, id uint64, seq uint64) bool {
	round := c.baseRound[rank] + seq
	if round < c.next {
		return false
	}
	if c.rounds[round] == nil {
		c.rounds[round] = make(map[int]report)
	}
	c.rounds[round][rank] = report{id: id, at: time.Now().UnixNano()}
	return true
}

// tryCommitLocked commits every completable round in order and returns the
// broadcast frames to send (after releasing c.mu — a slow peer connection
// must not stall the protocol under the lock). A round is completable when
// every rank has either reported or — under ExcludeDead — is dead. The
// broadcast ID is the post-advance consistent ID, which keeps the stream
// of commit IDs monotone even when a restarted rank reports an older
// checkpoint than a previous round agreed on.
func (c *Coordinator) tryCommitLocked() []Message {
	world := c.tr.WorldSize()
	var out []Message
	for {
		r := c.rounds[c.next]
		if len(r) == 0 {
			break
		}
		complete := true
		excluded := 0
		for rank := 0; rank < world; rank++ {
			if _, in := r[rank]; in {
				continue
			}
			if c.cfg.Degraded == ExcludeDead && rank != 0 && c.dead[rank] {
				excluded++
				continue
			}
			complete = false
			break
		}
		if !complete {
			if c.dec != nil {
				c.noteStallLocked(r, world)
			}
			break
		}
		agreed := ^uint64(0)
		for _, rep := range r {
			if rep.id < agreed {
				agreed = rep.id
			}
		}
		if c.dec != nil {
			c.recordDegradedLocked(excluded)
		}
		c.emitGateLocked(r, agreed)
		c.advanceLocked(agreed)
		for peer := 1; peer < world; peer++ {
			// Dead peers are broadcast to as well: over Local their inbox
			// may still drain after a hang, and a commit landing there is
			// exactly what un-stalls a worker whose report was lost.
			out = append(out, Message{Kind: KindCommit, CheckpointID: c.peerCheck, Seq: c.next})
		}
		delete(c.rounds, c.next)
		c.next++
	}
	return out
}

// deadCountLocked counts ranks currently considered dead.
func (c *Coordinator) deadCountLocked() int {
	n := 0
	for _, d := range c.dead {
		if d {
			n++
		}
	}
	return n
}

// noteStallLocked opens a pending degraded-commit decision when the
// current round is blocked *solely* by dead ranks under the Stall policy —
// the point where ExcludeDead would have committed and Stall chose to wait.
// The decision closes (with the measured stall as both cost and regret)
// when the round eventually commits, or stays "unresolved" at Finalize.
// Blocked rounds missing a live rank's report are ordinary coordination,
// not a policy decision, and are not recorded.
func (c *Coordinator) noteStallLocked(r map[int]report, world int) {
	if c.cfg.Degraded != Stall {
		return
	}
	for rank := 0; rank < world; rank++ {
		if _, in := r[rank]; in {
			continue
		}
		if rank == 0 || !c.dead[rank] {
			return
		}
	}
	if _, open := c.degradedOpen[c.next]; open {
		return
	}
	if c.degradedOpen == nil {
		c.degradedOpen = make(map[uint64]int64)
	}
	c.degradedOpen[c.next] = time.Now().UnixNano()
	dead := c.deadCountLocked()
	c.dec.OpenDegraded(c.next, decision.Inputs{N: world, DeadRanks: dead},
		decision.Alternative{Action: "stall", Feasible: true},
		[]decision.Alternative{
			// ExcludeDead would commit this round now at no stall cost;
			// it trades global completeness for liveness (§ degraded mode).
			{Action: "exclude-dead", PredictedCost: 0, Feasible: true},
		})
}

// recordDegradedLocked records an ExcludeDead commit that actually skipped
// dead ranks (excluded > 0), and resolves a pending Stall decision if this
// round had one. An ExcludeDead commit has zero regret by construction —
// the rejected Stall alternative could only have waited longer — so its
// decision documents the trade rather than scoring a loss; the predicted
// cost of the rejected stall is the heartbeat timeout, the minimum silence
// that declared the rank dead in the first place.
func (c *Coordinator) recordDegradedLocked(excluded int) {
	if ns, open := c.degradedOpen[c.next]; open {
		delete(c.degradedOpen, c.next)
		wait := float64(time.Now().UnixNano()-ns) / 1e9
		if wait < 0 {
			wait = 0
		}
		c.dec.ResolveDegraded(c.next, wait, "stalled-then-committed")
	}
	if excluded == 0 {
		return
	}
	c.dec.RecordScored(decision.KindDegraded, decision.Outcome{
		Inputs: decision.Inputs{N: c.tr.WorldSize(), DeadRanks: c.deadCountLocked()},
		Chosen: decision.Alternative{Action: "exclude-dead", Feasible: true},
		Rejected: []decision.Alternative{
			{Action: "stall", PredictedCost: c.cfg.HeartbeatTimeout.Seconds(), Feasible: true},
		},
		Measured: 0,
		Regret:   0,
		Outcome:  fmt.Sprintf("excluded-%d", excluded),
		Counter:  c.next,
		Rank:     -1,
	})
}

// sendAll delivers commit broadcasts, round-robining ranks 1..world-1 in
// the order tryCommitLocked emitted them (world-1 frames per round).
func (c *Coordinator) sendAll(msgs []Message) {
	world := c.tr.WorldSize()
	for i, m := range msgs {
		c.sendOne(1+i%(world-1), m)
	}
}

// sendOne is a bounded best-effort protocol send.
func (c *Coordinator) sendOne(to int, m Message) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.SendTimeout)
	_ = c.tr.Send(ctx, to, m)
	cancel()
}

// wake nudges the (single, commitMu-serialized) blocked waiter, if any.
func (c *Coordinator) wake() {
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

func (c *Coordinator) emitDropped(m Message, reason int64) {
	c.mu.Lock()
	o := c.obsv
	c.mu.Unlock()
	if o == nil {
		return
	}
	o.Emit(obs.Event{
		TS: time.Now().UnixNano(), Phase: obs.PhaseFrameDropped,
		Counter: m.CheckpointID, Value: reason,
		Slot: -1, Writer: -1, Rank: int32(m.From),
	})
}

// emitGateLocked records a committed round's straggler: the rank whose
// report gated the agreement. With distinct IDs that is the unique oldest
// reporter; when the oldest ID ties (the common case — every rank reports
// the same counter) the last report to arrive is what held the round
// open, so that rank gates instead.
func (c *Coordinator) emitGateLocked(r map[int]report, agreed uint64) {
	if c.obsv == nil || len(r) == 0 {
		return
	}
	var (
		first, last int64
		lastRank    int
		minRank     = -1
		minTied     bool
		maxID       uint64
	)
	for rank, rep := range r {
		if first == 0 || rep.at < first {
			first = rep.at
		}
		if rep.at > last {
			last, lastRank = rep.at, rank
		}
		if rep.id > maxID {
			maxID = rep.id
		}
		if rep.id == agreed {
			minTied = minRank >= 0
			if minRank < 0 {
				minRank = rank
			}
		}
	}
	gating := minRank
	if minTied {
		gating = lastRank
	}
	c.obsv.Emit(obs.Event{
		TS: first, Dur: last - first,
		Phase: obs.PhaseAgreeGate, Counter: agreed,
		Value: int64(maxID - agreed),
		Slot:  -1, Writer: -1, Rank: int32(gating),
	})
}

func (c *Coordinator) advanceLocked(id uint64) {
	if id > c.peerCheck {
		c.peerCheck = id
	}
}
