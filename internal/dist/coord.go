package dist

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pccheck/internal/obs"
)

// Coordinator runs the global-consistency protocol of §4.1: after a worker's
// local checkpoint publish (the successful CAS of Listing 1), it calls
// Commit with its checkpoint ID. Rank 0 gathers one ID per rank for the
// round, declares the round's minimum ID globally consistent (every worker
// has durably persisted at least that far), and broadcasts it. Every
// worker's peerCheck then advances to the agreed ID.
//
// Commit calls on one worker are serialized: each worker has at most one
// outstanding report, so the i-th report of every rank belongs to round i
// and rounds commit in order. (The paper notes its coordination is this
// simple rendezvous and that hardening it is future work; the serialization
// cost is microseconds against persists that take seconds.)
type Coordinator struct {
	tr Transport

	// commitMu serializes Commit on this worker.
	commitMu sync.Mutex

	mu        sync.Mutex
	peerCheck uint64

	// rank-0 state: reports per round, keyed by round index; rankRound
	// counts how many reports each rank has contributed so far.
	rounds    map[uint64]map[int]report
	rankRound map[int]uint64
	next      uint64 // next round index to commit (rounds commit in order)

	// obsv, when set on rank 0, receives one PhaseAgreeGate event per
	// committed round identifying the rank that gated it (see SetObserver).
	obsv obs.Observer
}

// report is one rank's contribution to a round: the checkpoint ID it
// published and when the report reached rank 0.
type report struct {
	id uint64
	at int64 // arrival, UnixNano
}

// NewCoordinator wraps a transport. All workers of the group must create
// exactly one Coordinator each and call Commit once per local checkpoint.
func NewCoordinator(tr Transport) *Coordinator {
	return &Coordinator{
		tr:        tr,
		rounds:    make(map[uint64]map[int]report),
		rankRound: make(map[int]uint64),
		next:      1,
	}
}

// SetObserver attaches an observer to the coordinator. It only matters on
// rank 0, which emits one PhaseAgreeGate event per committed round: Rank
// is the rank whose report gated the round (the unique oldest checkpoint
// ID, or the last report to arrive when IDs tie), TS the first report's
// arrival, Dur the first→last arrival spread, Counter the agreed ID, and
// Value the ID gap between the freshest and oldest reports. Call before
// the first Commit.
func (c *Coordinator) SetObserver(o obs.Observer) {
	c.mu.Lock()
	c.obsv = o
	c.mu.Unlock()
}

// LatestConsistent returns the newest globally consistent checkpoint ID
// (0 = none yet). On restart, every worker restores this checkpoint even if
// its own device holds a newer, not-yet-agreed one.
func (c *Coordinator) LatestConsistent() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peerCheck
}

// Commit reports a locally persisted checkpoint ID and blocks until rank 0
// declares this round's agreed ID, which it returns.
func (c *Coordinator) Commit(ctx context.Context, checkpointID uint64) (uint64, error) {
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	if c.tr.Rank() == 0 {
		return c.commitAsLeader(ctx, checkpointID)
	}
	if err := c.tr.Send(ctx, 0, Message{Kind: KindReport, CheckpointID: checkpointID}); err != nil {
		return 0, err
	}
	// Exactly one KindCommit arrives per round, and rounds commit in
	// order, so the next commit message answers this call.
	m, err := c.tr.Recv(ctx)
	if err != nil {
		return 0, err
	}
	if m.Kind != KindCommit {
		return 0, fmt.Errorf("dist: rank %d expected commit, got kind %d from %d", c.tr.Rank(), m.Kind, m.From)
	}
	c.advance(m.CheckpointID)
	return m.CheckpointID, nil
}

// commitAsLeader folds rank 0's own report in, then receives peer reports
// until this leader's round commits. Later rounds' reports arriving early
// are banked; commits are broadcast strictly in round order.
func (c *Coordinator) commitAsLeader(ctx context.Context, checkpointID uint64) (uint64, error) {
	if c.tr.WorldSize() == 1 {
		c.advance(checkpointID)
		return checkpointID, nil
	}
	myRound := c.addReport(0, checkpointID)
	for {
		if agreed, done := c.tryCommitThrough(ctx, myRound); done {
			return agreed, nil
		}
		m, err := c.tr.Recv(ctx)
		if err != nil {
			return 0, err
		}
		if m.Kind != KindReport {
			return 0, fmt.Errorf("dist: rank 0 expected report, got kind %d from %d", m.Kind, m.From)
		}
		c.addReport(m.From, m.CheckpointID)
	}
}

// addReport records a rank's next report and returns the round it belongs
// to (the i-th report of a rank is round i).
func (c *Coordinator) addReport(rank int, id uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rankRound[rank]++
	round := c.rankRound[rank]
	if c.rounds[round] == nil {
		c.rounds[round] = make(map[int]report)
	}
	c.rounds[round][rank] = report{id: id, at: time.Now().UnixNano()}
	return round
}

// tryCommitThrough commits every complete round in order; it reports done
// once target has committed, returning target's agreed ID.
func (c *Coordinator) tryCommitThrough(ctx context.Context, target uint64) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	world := c.tr.WorldSize()
	var targetAgreed uint64
	targetDone := false
	for {
		r := c.rounds[c.next]
		if len(r) < world {
			break
		}
		agreed := ^uint64(0)
		for _, rep := range r {
			if rep.id < agreed {
				agreed = rep.id
			}
		}
		c.emitGateLocked(r, agreed)
		c.advanceLocked(agreed)
		for peer := 1; peer < world; peer++ {
			// Best-effort: a dead peer is a failure the training framework
			// handles by restarting the job from the agreed checkpoint.
			_ = c.tr.Send(ctx, peer, Message{Kind: KindCommit, CheckpointID: agreed})
		}
		if c.next == target {
			targetAgreed = agreed
			targetDone = true
		}
		delete(c.rounds, c.next)
		c.next++
	}
	return targetAgreed, targetDone
}

// emitGateLocked records a committed round's straggler: the rank whose
// report gated the agreement. With distinct IDs that is the unique oldest
// reporter; when the oldest ID ties (the common case — every rank reports
// the same counter) the last report to arrive is what held the round
// open, so that rank gates instead.
func (c *Coordinator) emitGateLocked(r map[int]report, agreed uint64) {
	if c.obsv == nil || len(r) == 0 {
		return
	}
	var (
		first, last int64
		lastRank    int
		minRank     = -1
		minTied     bool
		maxID       uint64
	)
	for rank, rep := range r {
		if first == 0 || rep.at < first {
			first = rep.at
		}
		if rep.at > last {
			last, lastRank = rep.at, rank
		}
		if rep.id > maxID {
			maxID = rep.id
		}
		if rep.id == agreed {
			minTied = minRank >= 0
			if minRank < 0 {
				minRank = rank
			}
		}
	}
	gating := minRank
	if minTied {
		gating = lastRank
	}
	c.obsv.Emit(obs.Event{
		TS: first, Dur: last - first,
		Phase: obs.PhaseAgreeGate, Counter: agreed,
		Value: int64(maxID - agreed),
		Slot:  -1, Writer: -1, Rank: int32(gating),
	})
}

func (c *Coordinator) advance(id uint64) {
	c.mu.Lock()
	c.advanceLocked(id)
	c.mu.Unlock()
}

func (c *Coordinator) advanceLocked(id uint64) {
	if id > c.peerCheck {
		c.peerCheck = id
	}
}
