package dist

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTCPSendDeadlineNotSticky: a Send with a context deadline must not
// poison later deadline-free Sends. Before the fix, the write deadline from
// the first call stuck to the connection, so once that instant passed every
// subsequent Send failed with a timeout.
func TestTCPSendDeadlineNotSticky(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	tr := &TCP{
		rank:  1,
		world: 2,
		conns: map[int]net.Conn{0: client},
		inbox: make(chan Message, 8),
		done:  make(chan struct{}),
	}
	// Drain the server side so writes complete.
	go func() {
		buf := make([]byte, wireSize)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()

	dlCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := tr.Send(dlCtx, 0, Message{Kind: KindReport, CheckpointID: 1}); err != nil {
		t.Fatalf("deadline send: %v", err)
	}
	cancel()
	time.Sleep(80 * time.Millisecond) // let the old deadline expire

	if err := tr.Send(context.Background(), 0, Message{Kind: KindReport, CheckpointID: 2}); err != nil {
		t.Fatalf("deadline-free send after expired deadline: %v", err)
	}
}

// TestListenTCPHandshakeTimeout: a client that connects and never sends its
// hello frame must not wedge group setup forever.
func TestListenTCPHandshakeTimeout(t *testing.T) {
	old := handshakeTimeout
	handshakeTimeout = 100 * time.Millisecond
	defer func() { handshakeTimeout = old }()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := ListenTCP(context.Background(), ln, 2)
		errCh <- err
	}()

	// Connect but never speak — a stalled peer or a port scanner.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("ListenTCP succeeded without a handshake")
		}
		if !strings.Contains(err.Error(), "handshake") {
			t.Fatalf("error does not identify the handshake: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ListenTCP still blocked on a silent peer")
	}
}

// TestListenTCPHonorsContextCancel: cancelling the context unblocks a rank 0
// that is waiting for peers that will never arrive.
func TestListenTCPHonorsContextCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := ListenTCP(ctx, ln, 3)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let it block in Accept
	cancel()

	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ListenTCP returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ListenTCP ignored context cancellation")
	}
}

// TestLocalSendUnblocksOnOwnClose: Close on the sending side must unblock an
// in-flight Send stuck on a full peer inbox. Before the fix, Send selected
// only on the peer's done channel, so a worker shutting down while its dead
// neighbour's inbox was full hung forever.
func TestLocalSendUnblocksOnOwnClose(t *testing.T) {
	group := NewLocalGroup(2)
	// Fill rank 1's inbox to capacity; nothing ever drains it.
	for i := 0; i < cap(group[1].inbox); i++ {
		if err := group[0].Send(context.Background(), 1, Message{Kind: KindReport}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	sendErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		sendErr <- group[0].Send(context.Background(), 1, Message{Kind: KindReport})
	}()
	time.Sleep(50 * time.Millisecond) // let the Send block on the full inbox
	group[0].Close()

	select {
	case err := <-sendErr:
		if err == nil {
			t.Fatal("Send into a full inbox succeeded after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send still blocked after its own transport closed")
	}
	wg.Wait()
}
