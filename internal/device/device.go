// Package device emulates the accelerator-side hardware the checkpointing
// data path depends on: device memory holding training state, and DMA copy
// engines that move it to host DRAM over a shared, bandwidth-limited
// interconnect (PCIe in the paper's setups, §2.3).
//
// The emulation is intentionally literal where it matters: copies move real
// bytes (so checkpoint content equivalence is end-to-end testable) and are
// paced through a shared Throttle (so concurrent checkpoints genuinely
// contend for interconnect bandwidth, which is one of the effects PCcheck's
// configuration tool must balance, §3.4).
package device

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pccheck/internal/storage"
)

// Buffer is an allocation in emulated device memory.
type Buffer struct {
	gpu  *GPU
	data []byte
}

// Len returns the buffer size in bytes.
func (b *Buffer) Len() int { return len(b.data) }

// HostView returns the raw contents for device-side mutation by the training
// loop (standing in for CUDA kernels updating weights in place).
func (b *Buffer) HostView() []byte { return b.data }

// GPU is an emulated accelerator: a pool of device memory plus a D2H copy
// engine with a fixed interconnect bandwidth.
type GPU struct {
	pcie      *storage.Throttle
	memCap    int64
	allocated atomic.Int64

	mu      sync.Mutex
	buffers map[*Buffer]struct{}
}

// Config describes the emulated hardware.
type Config struct {
	// MemBytes is the device memory capacity (0 = unlimited).
	MemBytes int64
	// PCIeBytesPerSec is the D2H copy bandwidth (0 = unpaced).
	PCIeBytesPerSec float64
}

// New returns an emulated GPU.
func New(cfg Config) *GPU {
	return &GPU{
		pcie:    storage.NewThrottle(cfg.PCIeBytesPerSec),
		memCap:  cfg.MemBytes,
		buffers: make(map[*Buffer]struct{}),
	}
}

// Alloc reserves n bytes of device memory.
func (g *GPU) Alloc(n int) (*Buffer, error) {
	if n < 0 {
		return nil, fmt.Errorf("device: negative allocation %d", n)
	}
	if g.memCap > 0 {
		for {
			cur := g.allocated.Load()
			if cur+int64(n) > g.memCap {
				return nil, fmt.Errorf("device: out of memory: %d + %d > %d", cur, n, g.memCap)
			}
			if g.allocated.CompareAndSwap(cur, cur+int64(n)) {
				break
			}
		}
	} else {
		g.allocated.Add(int64(n))
	}
	b := &Buffer{gpu: g, data: make([]byte, n)}
	g.mu.Lock()
	g.buffers[b] = struct{}{}
	g.mu.Unlock()
	return b, nil
}

// Free releases a buffer's device memory.
func (g *GPU) Free(b *Buffer) {
	g.mu.Lock()
	if _, ok := g.buffers[b]; !ok {
		g.mu.Unlock()
		return
	}
	delete(g.buffers, b)
	g.mu.Unlock()
	g.allocated.Add(-int64(len(b.data)))
	b.data = nil
}

// Allocated returns the bytes currently allocated on the device.
func (g *GPU) Allocated() int64 { return g.allocated.Load() }

// D2H copies n bytes from src at srcOff into dst, paced at the interconnect
// bandwidth. It blocks until the copy completes, like a synchronous
// cudaMemcpy on a dedicated copy engine: the SMs (the caller's training
// goroutine) are free to run concurrently with other goroutines' copies.
func (g *GPU) D2H(dst []byte, src *Buffer, srcOff, n int) error {
	if src == nil || src.data == nil {
		return fmt.Errorf("device: copy from freed or nil buffer")
	}
	if srcOff < 0 || n < 0 || srcOff+n > len(src.data) {
		return fmt.Errorf("device: copy range [%d,%d) outside buffer of %d bytes", srcOff, srcOff+n, len(src.data))
	}
	if n > len(dst) {
		return fmt.Errorf("device: destination too small: %d < %d", len(dst), n)
	}
	g.pcie.Acquire(n)
	copy(dst, src.data[srcOff:srcOff+n])
	return nil
}

// H2D copies host data into a device buffer (checkpoint restore path).
func (g *GPU) H2D(dst *Buffer, dstOff int, src []byte) error {
	if dst == nil || dst.data == nil {
		return fmt.Errorf("device: copy to freed or nil buffer")
	}
	if dstOff < 0 || dstOff+len(src) > len(dst.data) {
		return fmt.Errorf("device: copy range [%d,%d) outside buffer of %d bytes", dstOff, dstOff+len(src), len(dst.data))
	}
	g.pcie.Acquire(len(src))
	copy(dst.data[dstOff:], src)
	return nil
}

// D2HAsync starts a D2H copy and returns a channel that receives the copy's
// error (nil on success) when it completes. This is how the orchestrator
// overlaps snapshotting with training.
func (g *GPU) D2HAsync(dst []byte, src *Buffer, srcOff, n int) <-chan error {
	done := make(chan error, 1)
	go func() { done <- g.D2H(dst, src, srcOff, n) }()
	return done
}

// PCIeRate returns the configured interconnect bandwidth in bytes/sec
// (0 when unpaced).
func (g *GPU) PCIeRate() float64 { return g.pcie.Rate() }
