package device

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestAllocFree(t *testing.T) {
	g := New(Config{MemBytes: 1024})
	b, err := g.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 512 {
		t.Fatalf("Len = %d", b.Len())
	}
	if g.Allocated() != 512 {
		t.Fatalf("Allocated = %d", g.Allocated())
	}
	if _, err := g.Alloc(600); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	g.Free(b)
	if g.Allocated() != 0 {
		t.Fatalf("Allocated after free = %d", g.Allocated())
	}
	// Double free is a no-op.
	g.Free(b)
	if g.Allocated() != 0 {
		t.Fatalf("double free changed accounting: %d", g.Allocated())
	}
	if _, err := g.Alloc(1024); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestAllocNegative(t *testing.T) {
	g := New(Config{})
	if _, err := g.Alloc(-1); err == nil {
		t.Fatal("negative alloc succeeded")
	}
}

func TestUnlimitedMemory(t *testing.T) {
	g := New(Config{MemBytes: 0})
	if _, err := g.Alloc(1 << 20); err != nil {
		t.Fatal(err)
	}
}

func TestD2HCopiesBytes(t *testing.T) {
	g := New(Config{})
	b, _ := g.Alloc(64)
	copy(b.HostView(), "device-resident-training-state")
	dst := make([]byte, 6)
	if err := g.D2H(dst, b, 7, 6); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "reside" {
		t.Fatalf("D2H got %q", dst)
	}
}

func TestD2HErrors(t *testing.T) {
	g := New(Config{})
	b, _ := g.Alloc(16)
	if err := g.D2H(make([]byte, 8), b, 10, 8); err == nil {
		t.Fatal("out-of-range copy succeeded")
	}
	if err := g.D2H(make([]byte, 4), b, 0, 8); err == nil {
		t.Fatal("copy into small destination succeeded")
	}
	if err := g.D2H(make([]byte, 8), nil, 0, 8); err == nil {
		t.Fatal("copy from nil buffer succeeded")
	}
	g.Free(b)
	if err := g.D2H(make([]byte, 8), b, 0, 8); err == nil {
		t.Fatal("copy from freed buffer succeeded")
	}
}

func TestH2DRoundTrip(t *testing.T) {
	g := New(Config{})
	b, _ := g.Alloc(32)
	src := []byte("restore-payload")
	if err := g.H2D(b, 3, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := g.D2H(dst, b, 3, len(src)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("round trip got %q", dst)
	}
	if err := g.H2D(b, 30, src); err == nil {
		t.Fatal("out-of-range H2D succeeded")
	}
	if err := g.H2D(nil, 0, src); err == nil {
		t.Fatal("H2D to nil buffer succeeded")
	}
}

func TestD2HAsyncCompletes(t *testing.T) {
	g := New(Config{})
	b, _ := g.Alloc(128)
	copy(b.HostView(), "async")
	dst := make([]byte, 5)
	if err := <-g.D2HAsync(dst, b, 0, 5); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "async" {
		t.Fatalf("async copy got %q", dst)
	}
	if err := <-g.D2HAsync(dst, b, 200, 5); err == nil {
		t.Fatal("async out-of-range copy reported success")
	}
}

func TestPCIePacing(t *testing.T) {
	// 10 MB/s; 1 MB copy ⇒ ~100 ms.
	g := New(Config{PCIeBytesPerSec: 10 << 20})
	b, _ := g.Alloc(1 << 20)
	dst := make([]byte, 1<<20)
	start := time.Now()
	if err := g.D2H(dst, b, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("paced copy finished in %v", elapsed)
	}
	if g.PCIeRate() != float64(10<<20) {
		t.Fatalf("PCIeRate = %v", g.PCIeRate())
	}
}

func TestConcurrentCopiesSharePCIe(t *testing.T) {
	// Two concurrent 512 KB copies on a 10 MB/s link must take ~100 ms
	// total, not ~50 ms: the interconnect is shared.
	g := New(Config{PCIeBytesPerSec: 10 << 20})
	b, _ := g.Alloc(1 << 20)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]byte, 512<<10)
			if err := g.D2H(dst, b, 0, 512<<10); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 70*time.Millisecond {
		t.Fatalf("concurrent copies finished in %v; PCIe not shared", elapsed)
	}
}

func TestConcurrentAllocators(t *testing.T) {
	g := New(Config{MemBytes: 8 << 20})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				b, err := g.Alloc(64 << 10)
				if err != nil {
					continue // pool exhaustion is fine; accounting must stay sane
				}
				g.Free(b)
			}
			errs <- nil
		}()
	}
	wg.Wait()
	if g.Allocated() != 0 {
		t.Fatalf("leaked accounting: %d", g.Allocated())
	}
}

func TestCheckpointSourceDirect(t *testing.T) {
	g := New(Config{})
	buf, _ := g.Alloc(256)
	copy(buf.HostView(), "checkpointable-device-state")
	src, err := NewCheckpointSource(g, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if src.Size() != 256 {
		t.Fatalf("Size = %d", src.Size())
	}
	out := make([]byte, 14)
	if err := src.ReadInto(out, 0); err != nil {
		t.Fatal(err)
	}
	if string(out) != "checkpointable" {
		t.Fatalf("read %q", out)
	}
	// Partial window.
	part, err := NewCheckpointSource(g, buf, 14)
	if err != nil {
		t.Fatal(err)
	}
	if err := part.ReadInto(make([]byte, 10), 10); err == nil {
		t.Fatal("read past window accepted")
	}
	if _, err := NewCheckpointSource(g, buf, -1); err == nil {
		t.Fatal("negative length accepted")
	}
}
