package device

import "fmt"

// CheckpointSource adapts a device-memory buffer to the checkpoint engine's
// Source interface (structurally; this package does not import the engine):
// every ReadInto is a D2H copy through the GPU's paced copy engine, so a
// checkpoint staged from device memory experiences real interconnect
// bandwidth and contention — the paper's step ③ (§3.1).
type CheckpointSource struct {
	gpu *GPU
	buf *Buffer
	n   int64
}

// NewCheckpointSource exposes the first n bytes of buf (n ≤ buf.Len();
// n = 0 means the whole buffer).
func NewCheckpointSource(gpu *GPU, buf *Buffer, n int64) (*CheckpointSource, error) {
	if gpu == nil || buf == nil {
		return nil, fmt.Errorf("device: nil gpu or buffer")
	}
	if n == 0 {
		n = int64(buf.Len())
	}
	if n < 0 || n > int64(buf.Len()) {
		return nil, fmt.Errorf("device: source length %d outside buffer of %d", n, buf.Len())
	}
	return &CheckpointSource{gpu: gpu, buf: buf, n: n}, nil
}

// Size implements the engine's Source contract.
func (s *CheckpointSource) Size() int64 { return s.n }

// ReadInto implements the engine's Source contract with a paced D2H copy.
func (s *CheckpointSource) ReadInto(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > s.n {
		return fmt.Errorf("device: source range [%d,%d) outside payload of %d", off, off+int64(len(p)), s.n)
	}
	return s.gpu.D2H(p, s.buf, int(off), len(p))
}
