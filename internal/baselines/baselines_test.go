package baselines

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"pccheck/internal/core"
	"pccheck/internal/storage"
)

func randomPayload(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestTraditionalRoundTrip(t *testing.T) {
	dev := storage.NewRAM(core.DeviceBytes(1, 4096))
	tr, err := NewTraditional(dev, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	want := randomPayload(1, 3000)
	if _, err := tr.Checkpoint(context.Background(), core.BytesSource(want)); err != nil {
		t.Fatal(err)
	}
	// Synchronous: durable immediately after return.
	got, counter, err := core.Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if counter != 1 || !bytes.Equal(got, want) {
		t.Fatalf("recovered %d bytes at counter %d", len(got), counter)
	}
}

func TestCheckFreqOverlapsPersist(t *testing.T) {
	// Throttle the device so the persist takes ≳100 ms; Checkpoint must
	// return much sooner (only the snapshot blocks).
	dev, err := storage.OpenSSD(t.TempDir()+"/dev", core.DeviceBytes(1, 1<<20),
		storage.WithSSDThrottle(storage.NewThrottle(10<<20))) // 10 MB/s
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	cf, err := NewCheckFreq(dev, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	want := randomPayload(2, 1<<20) // 1 MB ⇒ ~100 ms persist
	start := time.Now()
	if _, err := cf.Checkpoint(context.Background(), core.BytesSource(want)); err != nil {
		t.Fatal(err)
	}
	snapshotTime := time.Since(start)
	if snapshotTime > 50*time.Millisecond {
		t.Fatalf("CheckFreq.Checkpoint blocked %v; persist not overlapped", snapshotTime)
	}
	if err := cf.WaitIdle(context.Background()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 60*time.Millisecond {
		t.Fatal("persist finished implausibly fast; throttle not effective")
	}
	got, _, err := core.Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("CheckFreq payload mismatch")
	}
}

func TestCheckFreqSecondCheckpointStalls(t *testing.T) {
	// The defining CheckFreq behaviour (Figure 4): checkpoint k+1's snapshot
	// waits until checkpoint k persisted.
	dev, err := storage.OpenSSD(t.TempDir()+"/dev", core.DeviceBytes(1, 1<<20),
		storage.WithSSDThrottle(storage.NewThrottle(10<<20)))
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	cf, err := NewCheckFreq(dev, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	p := randomPayload(3, 1<<20)
	if _, err := cf.Checkpoint(context.Background(), core.BytesSource(p)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := cf.Checkpoint(context.Background(), core.BytesSource(p)); err != nil {
		t.Fatal(err)
	}
	if stall := time.Since(start); stall < 50*time.Millisecond {
		t.Fatalf("second Checkpoint returned in %v; it must stall on the in-flight persist", stall)
	}
}

func TestCheckFreqRejectsOversize(t *testing.T) {
	dev := storage.NewRAM(core.DeviceBytes(1, 1024))
	cf, err := NewCheckFreq(dev, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if _, err := cf.Checkpoint(context.Background(), core.BytesSource(make([]byte, 2048))); err == nil {
		t.Fatal("oversize accepted")
	}
}

func TestGPMSynchronousRoundTrip(t *testing.T) {
	dev := storage.NewRAM(core.DeviceBytes(1, 1<<20))
	g, err := NewGPM(dev, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	want := randomPayload(4, 700_000)
	if _, err := g.Checkpoint(context.Background(), core.BytesSource(want)); err != nil {
		t.Fatal(err)
	}
	got, _, err := core.Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("GPM payload mismatch")
	}
}

func TestGPMStallsThroughPersist(t *testing.T) {
	dev, err := storage.OpenSSD(t.TempDir()+"/dev", core.DeviceBytes(1, 1<<20),
		storage.WithSSDThrottle(storage.NewThrottle(10<<20)))
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	g, err := NewGPM(dev, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	start := time.Now()
	if _, err := g.Checkpoint(context.Background(), core.BytesSource(randomPayload(5, 1<<20))); err != nil {
		t.Fatal(err)
	}
	if blocked := time.Since(start); blocked < 60*time.Millisecond {
		t.Fatalf("GPM returned in %v; it must block through the persist", blocked)
	}
}

func TestGeminiRoundTripOverPipe(t *testing.T) {
	client, server := net.Pipe()
	peer := NewGeminiPeer(server)
	g := NewGemini(client, 1<<20, nil)
	defer g.Close()
	want := randomPayload(6, 500_000)
	counter, err := g.Checkpoint(context.Background(), core.BytesSource(want))
	if err != nil {
		t.Fatal(err)
	}
	if counter != 1 {
		t.Fatalf("counter = %d", counter)
	}
	if err := g.WaitIdle(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, gc, ok := peer.Latest()
	if !ok || gc != 1 {
		t.Fatalf("peer latest: ok=%v counter=%d", ok, gc)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("Gemini payload mismatch")
	}
}

func TestGeminiOverTCPWithSequence(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	peerReady := make(chan *GeminiPeer, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		peerReady <- NewGeminiPeer(conn)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	g := NewGemini(conn, 1<<16, nil)
	defer g.Close()
	peer := <-peerReady

	var last []byte
	for i := 0; i < 5; i++ {
		last = randomPayload(int64(10+i), 30_000+i)
		if _, err := g.Checkpoint(context.Background(), core.BytesSource(last)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.WaitIdle(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, counter, ok := peer.Latest()
	if !ok || counter != 5 {
		t.Fatalf("peer at counter %d", counter)
	}
	if !bytes.Equal(got, last) {
		t.Fatal("peer holds wrong checkpoint")
	}
}

func TestGeminiOneInFlight(t *testing.T) {
	// With a throttled "network", the second checkpoint must stall on the
	// first transfer.
	client, server := net.Pipe()
	NewGeminiPeer(server)
	g := NewGemini(client, 1<<20, storage.NewThrottle(10<<20)) // 10 MB/s
	defer g.Close()
	p := randomPayload(7, 1<<20) // ⇒ ~100 ms per transfer
	if _, err := g.Checkpoint(context.Background(), core.BytesSource(p)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := g.Checkpoint(context.Background(), core.BytesSource(p)); err != nil {
		t.Fatal(err)
	}
	if stall := time.Since(start); stall < 50*time.Millisecond {
		t.Fatalf("second Gemini checkpoint returned in %v; must wait for in-flight transfer", stall)
	}
}

func TestGeminiRejectsOversize(t *testing.T) {
	client, server := net.Pipe()
	NewGeminiPeer(server)
	g := NewGemini(client, 100, nil)
	defer g.Close()
	if _, err := g.Checkpoint(context.Background(), core.BytesSource(make([]byte, 200))); err == nil {
		t.Fatal("oversize accepted")
	}
}

func TestPeerLatestEmpty(t *testing.T) {
	_, server := net.Pipe()
	peer := NewGeminiPeer(server)
	if _, _, ok := peer.Latest(); ok {
		t.Fatal("empty peer reported a checkpoint")
	}
}

// Interface conformance.
var (
	_ Checkpointer = (*Traditional)(nil)
	_ Checkpointer = (*CheckFreq)(nil)
	_ Checkpointer = (*GPM)(nil)
	_ Checkpointer = (*Gemini)(nil)
)
