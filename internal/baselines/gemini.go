package baselines

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"pccheck/internal/core"
	"pccheck/internal/storage"
)

// Gemini (Wang et al., SOSP'23) checkpoints to a *remote machine's CPU
// memory* instead of persistent storage, exploiting that the network can be
// faster than disk. Like CheckFreq it admits one checkpoint at a time: the
// next snapshot waits for the previous transfer to be acknowledged. Nothing
// touches persistent storage, so recovery is only possible while the remote
// peer is alive — the availability trade-off §2.2 discusses.
//
// The transport is any net.Conn; production would be the training cluster's
// interconnect, tests use net.Pipe or loopback TCP, and microbenchmarks wrap
// the connection with a Throttle calibrated to the measured 15 Gbps (§5.2.1).
type Gemini struct {
	conn    net.Conn
	netBW   *storage.Throttle
	buf     []byte
	counter uint64

	mu      sync.Mutex
	pending chan error
}

// NewGemini returns a client that replicates checkpoints of up to slotBytes
// over conn. netBW may be nil for an unpaced transport.
func NewGemini(conn net.Conn, slotBytes int64, netBW *storage.Throttle) *Gemini {
	return &Gemini{conn: conn, netBW: netBW, buf: make([]byte, slotBytes)}
}

// Checkpoint implements Checkpointer: wait for the previous transfer's ack,
// snapshot into the local buffer, then stream to the peer asynchronously.
func (g *Gemini) Checkpoint(ctx context.Context, src core.Source) (uint64, error) {
	size := src.Size()
	if size > int64(len(g.buf)) {
		return 0, fmt.Errorf("baselines: checkpoint %d exceeds buffer %d", size, len(g.buf))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.pending != nil {
		select {
		case err := <-g.pending:
			g.pending = nil
			if err != nil {
				return 0, fmt.Errorf("baselines: previous transfer failed: %w", err)
			}
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	if err := src.ReadInto(g.buf[:size], 0); err != nil {
		return 0, err
	}
	g.counter++
	counter := g.counter
	done := make(chan error, 1)
	payload := g.buf[:size]
	go func() { done <- g.send(counter, payload) }()
	g.pending = done
	return counter, nil
}

func (g *Gemini) send(counter uint64, payload []byte) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], counter)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(payload)))
	if _, err := g.conn.Write(hdr[:]); err != nil {
		return err
	}
	// Stream in 1 MB pieces so the throttle paces the transfer like a
	// real NIC rather than admitting one giant burst.
	const piece = 1 << 20
	for off := 0; off < len(payload); off += piece {
		end := off + piece
		if end > len(payload) {
			end = len(payload)
		}
		g.netBW.Acquire(end - off)
		if _, err := g.conn.Write(payload[off:end]); err != nil {
			return err
		}
	}
	var ack [1]byte
	if _, err := io.ReadFull(g.conn, ack[:]); err != nil {
		return err
	}
	if ack[0] != 1 {
		return fmt.Errorf("baselines: peer rejected checkpoint %d", counter)
	}
	return nil
}

// WaitIdle implements Checkpointer.
func (g *Gemini) WaitIdle(ctx context.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.pending == nil {
		return nil
	}
	select {
	case err := <-g.pending:
		g.pending = nil
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close implements Checkpointer.
func (g *Gemini) Close() error {
	err := g.WaitIdle(context.Background())
	if cerr := g.conn.Close(); err == nil {
		err = cerr
	}
	return err
}

// GeminiPeer is the remote side: it keeps the latest received checkpoint in
// memory and acknowledges each transfer. One peer serves one client
// connection (Gemini pairs machines in its placement groups).
type GeminiPeer struct {
	mu      sync.Mutex
	latest  []byte
	counter uint64
	errs    chan error
}

// NewGeminiPeer starts serving conn in the background.
func NewGeminiPeer(conn net.Conn) *GeminiPeer {
	p := &GeminiPeer{errs: make(chan error, 1)}
	go p.serve(conn)
	return p
}

func (p *GeminiPeer) serve(conn net.Conn) {
	defer conn.Close()
	for {
		var hdr [16]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			if err != io.EOF {
				select {
				case p.errs <- err:
				default:
				}
			}
			return
		}
		counter := binary.LittleEndian.Uint64(hdr[0:])
		size := binary.LittleEndian.Uint64(hdr[8:])
		if size > 1<<40 {
			select {
			case p.errs <- fmt.Errorf("baselines: implausible checkpoint size %d", size):
			default:
			}
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			select {
			case p.errs <- err:
			default:
			}
			return
		}
		p.mu.Lock()
		if counter > p.counter {
			p.counter = counter
			p.latest = payload
		}
		p.mu.Unlock()
		if _, err := conn.Write([]byte{1}); err != nil {
			return
		}
	}
}

// Latest returns the newest fully received checkpoint, or ok=false if none
// arrived yet. This is Gemini's recovery path: the restarted worker fetches
// the state from its peer's memory.
func (p *GeminiPeer) Latest() (payload []byte, counter uint64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.latest == nil {
		return nil, 0, false
	}
	out := make([]byte, len(p.latest))
	copy(out, p.latest)
	return out, p.counter, true
}
