// Package baselines implements the checkpointing mechanisms PCcheck is
// evaluated against (§2.2, §5.1): Traditional (PyTorch-style synchronous
// save), CheckFreq (snapshot overlapped with training, one checkpoint in
// flight), GPM (stall-and-persist directly from device memory), and Gemini
// (checkpoint to a remote machine's DRAM over the network).
//
// All disk-based baselines share the core engine's on-device format with
// N = 1, so recovery is uniform (core.Recover) and microbenchmarks compare
// mechanisms rather than serialization formats. What differs — and what the
// paper measures — is the concurrency structure: who blocks, on what, and
// for how long.
package baselines

import (
	"context"
	"fmt"
	"sync"

	"pccheck/internal/core"
	"pccheck/internal/storage"
)

// Checkpointer is the behaviour shared by every mechanism: Checkpoint
// returns when training may resume (which, per mechanism, may be before the
// checkpoint is durable), and WaitIdle blocks until all background persists
// completed.
type Checkpointer interface {
	Checkpoint(ctx context.Context, src core.Source) (uint64, error)
	WaitIdle(ctx context.Context) error
	Close() error
}

// --- Traditional ------------------------------------------------------------

// Traditional is the PyTorch/TensorFlow-style save (Figure 3): training
// stalls through the full copy-and-persist. It is the core engine with one
// slot in flight, one writer, no pipelining, called synchronously.
type Traditional struct {
	engine *core.Checkpointer
}

// NewTraditional formats dev and returns a synchronous checkpointer.
func NewTraditional(dev storage.Device, slotBytes int64) (*Traditional, error) {
	engine, err := core.New(dev, core.Config{
		Concurrent: 1,
		SlotBytes:  slotBytes,
		Writers:    1,
		// Whole-checkpoint staging: copy completes before persisting starts.
		ChunkBytes: int(slotBytes),
		DRAMBudget: slotBytes,
	})
	if err != nil {
		return nil, err
	}
	return &Traditional{engine: engine}, nil
}

// Checkpoint implements Checkpointer; it blocks until durable.
func (t *Traditional) Checkpoint(ctx context.Context, src core.Source) (uint64, error) {
	return t.engine.Checkpoint(ctx, src)
}

// WaitIdle implements Checkpointer (a no-op: nothing runs in background).
func (t *Traditional) WaitIdle(context.Context) error { return nil }

// Close implements Checkpointer.
func (t *Traditional) Close() error { return t.engine.Close() }

// --- CheckFreq ---------------------------------------------------------------

// CheckFreq implements the snapshot/persist split of Mohan et al. (Figure 4):
// Checkpoint blocks only for the snapshot phase (copying the training state
// into a DRAM buffer) — but first it must wait for the previous checkpoint's
// persist to finish, because the mechanism owns a single snapshot buffer and
// admits a single in-flight checkpoint. That wait is exactly the stall
// PCcheck eliminates.
type CheckFreq struct {
	engine *core.Checkpointer
	buf    []byte

	mu      sync.Mutex
	pending chan error // non-nil while a persist is in flight
}

// NewCheckFreq formats dev and returns a CheckFreq checkpointer.
func NewCheckFreq(dev storage.Device, slotBytes int64, writers int) (*CheckFreq, error) {
	engine, err := core.New(dev, core.Config{
		Concurrent: 1,
		SlotBytes:  slotBytes,
		Writers:    writers,
		ChunkBytes: int(slotBytes),
		DRAMBudget: slotBytes,
	})
	if err != nil {
		return nil, err
	}
	return &CheckFreq{engine: engine, buf: make([]byte, slotBytes)}, nil
}

// Checkpoint implements Checkpointer: wait for the previous persist, copy
// the state into DRAM (the snapshot phase C), then persist asynchronously
// (phase P) and return so training resumes.
func (c *CheckFreq) Checkpoint(ctx context.Context, src core.Source) (uint64, error) {
	size := src.Size()
	if size > int64(len(c.buf)) {
		return 0, fmt.Errorf("baselines: checkpoint %d exceeds buffer %d", size, len(c.buf))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// One checkpoint at a time: stall until the previous persist finished.
	if c.pending != nil {
		select {
		case err := <-c.pending:
			c.pending = nil
			if err != nil {
				return 0, fmt.Errorf("baselines: previous persist failed: %w", err)
			}
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	// Snapshot phase: the training loop is blocked while state is copied
	// out of device memory.
	if err := src.ReadInto(c.buf[:size], 0); err != nil {
		return 0, err
	}
	// Persist phase: runs concurrently with training.
	done := make(chan error, 1)
	snapshot := c.buf[:size]
	go func() {
		_, err := c.engine.Checkpoint(context.Background(), core.BytesSource(snapshot))
		done <- err
	}()
	c.pending = done
	return 0, nil
}

// WaitIdle implements Checkpointer.
func (c *CheckFreq) WaitIdle(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending == nil {
		return nil
	}
	select {
	case err := <-c.pending:
		c.pending = nil
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close implements Checkpointer.
func (c *CheckFreq) Close() error {
	if err := c.WaitIdle(context.Background()); err != nil {
		return err
	}
	return c.engine.Close()
}

// --- GPM ---------------------------------------------------------------------

// GPM (Pandey et al.) persists directly from device memory to the
// persistent device with GPU copy kernels — no DRAM staging — and stalls
// training for the entire persist (§2.2). Copy kernels consume SMs and move
// data slower than dedicated copy engines; KernelBWFraction models that
// penalty on the source read.
type GPM struct {
	engine           *core.Checkpointer
	kernelBWFraction float64
}

// DefaultKernelBWFraction is the copy-kernel throughput relative to the
// DMA copy engines (GPM paper reports kernels roughly competitive but
// SM-consuming; the paper's Figure 11 shows GPM's direct path within ~2× of
// CheckFreq's engine path).
const DefaultKernelBWFraction = 0.7

// NewGPM formats dev and returns a GPM checkpointer.
func NewGPM(dev storage.Device, slotBytes int64) (*GPM, error) {
	engine, err := core.New(dev, core.Config{
		Concurrent: 1,
		SlotBytes:  slotBytes,
		Writers:    1,
		// Streaming in small pieces stands in for direct kernel stores into
		// the mapped device: no checkpoint-sized DRAM buffer exists.
		ChunkBytes: 1 << 20,
		DRAMBudget: 2 << 20,
	})
	if err != nil {
		return nil, err
	}
	return &GPM{engine: engine, kernelBWFraction: DefaultKernelBWFraction}, nil
}

// Checkpoint implements Checkpointer; it blocks until durable, like the real
// GPM which calls cudaDeviceSynchronize + msync before resuming training.
func (g *GPM) Checkpoint(ctx context.Context, src core.Source) (uint64, error) {
	return g.engine.Checkpoint(ctx, slowSource{src, g.kernelBWFraction})
}

// WaitIdle implements Checkpointer (synchronous mechanism).
func (g *GPM) WaitIdle(context.Context) error { return nil }

// Close implements Checkpointer.
func (g *GPM) Close() error { return g.engine.Close() }

// slowSource models the copy-kernel bandwidth penalty by inflating the
// effective read time. With unthrottled sources (unit tests) it is a
// pass-through; with a paced GPU source the pacing itself already reflects
// the interconnect, and the fraction models the kernel inefficiency.
type slowSource struct {
	inner    core.Source
	fraction float64
}

func (s slowSource) Size() int64 { return s.inner.Size() }
func (s slowSource) ReadInto(p []byte, off int64) error {
	if s.fraction > 0 && s.fraction < 1 {
		// Re-read a proportional share to burn the equivalent bandwidth:
		// reading n bytes at fraction f costs the same as n/f at full rate.
		extra := int(float64(len(p))*(1/s.fraction-1)) - 1
		if extra > 0 && int64(extra) <= s.inner.Size() {
			scratch := make([]byte, extra)
			if err := s.inner.ReadInto(scratch, 0); err != nil {
				return err
			}
		}
	}
	return s.inner.ReadInto(p, off)
}
