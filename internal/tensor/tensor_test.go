package tensor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tt := New(2, 3, 4)
	if got := tt.Len(); got != 24 {
		t.Fatalf("Len = %d, want 24", got)
	}
	if got := tt.Bytes(); got != 96 {
		t.Fatalf("Bytes = %d, want 96", got)
	}
	if s := tt.Shape(); len(s) != 3 || s[0] != 2 || s[1] != 3 || s[2] != 4 {
		t.Fatalf("Shape = %v", s)
	}
}

func TestScalar(t *testing.T) {
	s := New()
	if s.Len() != 1 {
		t.Fatalf("scalar Len = %d, want 1", s.Len())
	}
	s.Set(3.5)
	if s.At() != 3.5 {
		t.Fatalf("scalar At = %v", s.At())
	}
}

func TestZeroDim(t *testing.T) {
	z := New(0, 5)
	if z.Len() != 0 {
		t.Fatalf("Len = %d, want 0", z.Len())
	}
}

func TestNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	tt, err := FromSlice(d, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tt.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", tt.At(1, 2))
	}
	if _, err := FromSlice(d, 2, 2); err == nil {
		t.Fatal("FromSlice with wrong volume should error")
	}
	if _, err := FromSlice(d, -2, -3); err == nil {
		t.Fatal("FromSlice with negative dims should error")
	}
}

func TestAtSetRowMajor(t *testing.T) {
	tt := New(2, 3)
	tt.Set(42, 1, 2)
	if tt.Data()[5] != 42 {
		t.Fatalf("row-major offset wrong: %v", tt.Data())
	}
	if tt.At(1, 2) != 42 {
		t.Fatalf("At(1,2) = %v", tt.At(1, 2))
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	tt.At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	a := New(4)
	a.Set(1, 0)
	b := a.Clone()
	b.Set(9, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("Clone not Equal to original")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(2, 3).Equal(New(3, 2)) {
		t.Fatal("different shapes reported Equal")
	}
	if New(2).Equal(New(2, 1)) {
		t.Fatal("different ndim reported Equal")
	}
}

func TestEqualNaN(t *testing.T) {
	a := New(1)
	b := New(1)
	a.Set(float32(math.NaN()), 0)
	b.Set(float32(math.NaN()), 0)
	if !a.Equal(b) {
		t.Fatal("bit-identical NaNs should be Equal")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range [][]int{{}, {1}, {7}, {3, 5}, {2, 3, 4}} {
		orig := Randn(rng, 1.0, shape...)
		buf := make([]byte, orig.EncodedSize())
		n, err := orig.Encode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != orig.EncodedSize() {
			t.Fatalf("Encode wrote %d, EncodedSize says %d", n, orig.EncodedSize())
		}
		got, consumed, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%v): %v", shape, err)
		}
		if consumed != n {
			t.Fatalf("Decode consumed %d, want %d", consumed, n)
		}
		if !got.Equal(orig) {
			t.Fatalf("round trip mismatch for shape %v", shape)
		}
	}
}

func TestWriteToReadFromRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	orig := Randn(rng, 0.5, 17, 3)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig) {
		t.Fatal("stream round trip mismatch")
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	orig := Randn(rand.New(rand.NewSource(3)), 1.0, 16)
	buf := make([]byte, orig.EncodedSize())
	if _, err := orig.Encode(buf); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit.
	buf[12] ^= 0x10
	if _, _, err := Decode(buf); err != ErrChecksum {
		t.Fatalf("Decode of corrupted payload: err = %v, want ErrChecksum", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, _, err := Decode(make([]byte, 64)); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	orig := Randn(rand.New(rand.NewSource(4)), 1.0, 8)
	buf := make([]byte, orig.EncodedSize())
	if _, err := orig.Encode(buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 7, 9, len(buf) - 1} {
		if _, _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("Decode of %d-byte prefix succeeded", cut)
		}
	}
}

func TestEncodeBufferTooSmall(t *testing.T) {
	tt := New(8)
	if _, err := tt.Encode(make([]byte, 4)); err == nil {
		t.Fatal("Encode into tiny buffer should error")
	}
}

func TestMatMul(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, _ := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := MatMul(a, b); err == nil {
		t.Fatal("MatMul with mismatched inner dims should error")
	}
	if _, err := MatMul(New(6), b); err == nil {
		t.Fatal("MatMul with 1-d operand should error")
	}
}

func TestMatMulTransBMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Randn(rng, 1, 4, 6)
	b := Randn(rng, 1, 6, 3)
	want, _ := MatMul(a, b)
	// bT is (3×6); MatMulTransB(a, bT) should equal a·b.
	bT := New(3, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			bT.Set(b.At(i, j), j, i)
		}
	}
	got, err := MatMulTransB(a, bT)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data() {
		if diff := math.Abs(float64(want.Data()[i] - got.Data()[i])); diff > 1e-4 {
			t.Fatalf("TransB mismatch at %d: %v vs %v", i, want.Data()[i], got.Data()[i])
		}
	}
}

func TestMatMulTransAMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Randn(rng, 1, 4, 6)
	b := Randn(rng, 1, 4, 3)
	// aT is (6×4); MatMulTransA(a, b) = aᵀ·b, same as MatMul(aT, b).
	aT := New(6, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			aT.Set(a.At(i, j), j, i)
		}
	}
	want, _ := MatMul(aT, b)
	got, err := MatMulTransA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data() {
		if diff := math.Abs(float64(want.Data()[i] - got.Data()[i])); diff > 1e-4 {
			t.Fatalf("TransA mismatch at %d: %v vs %v", i, want.Data()[i], got.Data()[i])
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a, _ := FromSlice([]float32{1, -2, 3}, 3)
	b, _ := FromSlice([]float32{10, 20, 30}, 3)
	if err := a.AddInPlace(b); err != nil {
		t.Fatal(err)
	}
	if a.At(1) != 18 {
		t.Fatalf("AddInPlace: %v", a.Data())
	}
	a.ScaleInPlace(2)
	if a.At(0) != 22 {
		t.Fatalf("ScaleInPlace: %v", a.Data())
	}
	if err := a.AXPYInPlace(-1, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0) != 12 {
		t.Fatalf("AXPYInPlace: %v", a.Data())
	}
	a.Zero()
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestReLU(t *testing.T) {
	a, _ := FromSlice([]float32{-1, 0, 2}, 3)
	a.ReLUInPlace()
	want := []float32{0, 0, 2}
	for i, w := range want {
		if a.At(i) != w {
			t.Fatalf("ReLU: %v", a.Data())
		}
	}
	grad, _ := FromSlice([]float32{5, 5, 5}, 3)
	if err := ReLUBackwardInPlace(grad, a); err != nil {
		t.Fatal(err)
	}
	if grad.At(0) != 0 || grad.At(1) != 0 || grad.At(2) != 5 {
		t.Fatalf("ReLUBackward: %v", grad.Data())
	}
}

func TestSumRowsAndAddRow(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	s, err := SumRows(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{5, 7, 9}
	for i, w := range want {
		if s.At(i) != w {
			t.Fatalf("SumRows: %v", s.Data())
		}
	}
	row, _ := FromSlice([]float32{10, 20, 30}, 3)
	if err := a.AddRowInPlace(row); err != nil {
		t.Fatal(err)
	}
	if a.At(1, 2) != 36 {
		t.Fatalf("AddRowInPlace: %v", a.Data())
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits, _ := FromSlice([]float32{2, 0, 0, 0, 3, 0}, 2, 3)
	grad := New(2, 3)
	loss, err := SoftmaxCrossEntropy(logits, []int{0, 1}, grad)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || math.IsNaN(loss) {
		t.Fatalf("loss = %v", loss)
	}
	// Gradient rows must each sum to ~0 (softmax minus one-hot).
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 3; j++ {
			s += float64(grad.At(i, j))
		}
		if math.Abs(s) > 1e-5 {
			t.Fatalf("grad row %d sums to %v, want 0", i, s)
		}
	}
	// Confident correct logit ⇒ negative gradient on the label entry.
	if grad.At(0, 0) >= 0 {
		t.Fatalf("grad at label should be negative, got %v", grad.At(0, 0))
	}
}

func TestSoftmaxCrossEntropyErrors(t *testing.T) {
	logits := New(2, 3)
	grad := New(2, 3)
	if _, err := SoftmaxCrossEntropy(logits, []int{0}, grad); err == nil {
		t.Fatal("label count mismatch should error")
	}
	if _, err := SoftmaxCrossEntropy(logits, []int{0, 7}, grad); err == nil {
		t.Fatal("label out of range should error")
	}
}

// Property: encode→decode is the identity on arbitrary payloads.
func TestQuickEncodeDecodeIdentity(t *testing.T) {
	f := func(data []float32) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		orig, err := FromSlice(append([]float32(nil), data...), len(data))
		if err != nil {
			return false
		}
		buf := make([]byte, orig.EncodedSize())
		if _, err := orig.Encode(buf); err != nil {
			return false
		}
		got, _, err := Decode(buf)
		if err != nil {
			return false
		}
		return got.Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: L2Norm is non-negative and scales linearly.
func TestQuickL2NormScaling(t *testing.T) {
	f := func(data []float32) bool {
		if len(data) == 0 || len(data) > 1024 {
			return true
		}
		for _, v := range data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || math.Abs(float64(v)) > 1e15 {
				return true // outside a meaningful numeric regime
			}
		}
		tt, err := FromSlice(append([]float32(nil), data...), len(data))
		if err != nil {
			return false
		}
		n1 := tt.L2Norm()
		tt.ScaleInPlace(2)
		n2 := tt.L2Norm()
		if n1 == 0 {
			return n2 == 0
		}
		return n2 > n1 && math.Abs(n2/n1-2) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
