package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 64, 128)
	w := Randn(rng, 1, 128, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(x, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulTransA(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 1, 128, 64)
	g := Randn(rng, 1, 128, 64)
	for i := 0; i < b.N; i++ {
		if _, err := MatMulTransA(x, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	t := Randn(rand.New(rand.NewSource(3)), 1, 256, 256)
	buf := make([]byte, t.EncodedSize())
	b.SetBytes(int64(t.Bytes()))
	for i := 0; i < b.N; i++ {
		if _, err := t.Encode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	t := Randn(rand.New(rand.NewSource(4)), 1, 256, 256)
	buf := make([]byte, t.EncodedSize())
	if _, err := t.Encode(buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(t.Bytes()))
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
