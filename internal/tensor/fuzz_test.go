package tensor

import "testing"

// FuzzDecode: arbitrary bytes must never panic the codec, and anything it
// accepts must re-encode to an identical frame (decode∘encode = id on the
// accepted set).
func FuzzDecode(f *testing.F) {
	orig := New(3, 5)
	for i := range orig.Data() {
		orig.Data()[i] = float32(i)
	}
	buf := make([]byte, orig.EncodedSize())
	if _, err := orig.Encode(buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add([]byte{})
	f.Add([]byte{0x4e, 0x54, 0x43, 0x50})

	f.Fuzz(func(t *testing.T, data []byte) {
		tt, n, err := Decode(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := make([]byte, tt.EncodedSize())
		m, err := tt.Encode(re)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if m != n {
			t.Fatalf("re-encoded %d bytes, decoded %d", m, n)
		}
		for i := 0; i < n; i++ {
			if re[i] != data[i] {
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}
