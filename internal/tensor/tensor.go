// Package tensor provides dense float32 tensors and a compact binary codec.
//
// Tensors are the unit of training state in this repository: model
// parameters, gradients, and optimizer moments are all tensors. The codec is
// deliberately simple — a fixed header, raw little-endian payload, and a
// CRC32 checksum — because checkpoint serialization speed is on the critical
// path of everything the paper measures.
package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major float32 tensor.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero tensor with the given shape. A scalar has an empty
// shape. New panics on negative dimensions; a zero dimension yields an empty
// tensor.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly, not copied. It returns an error if len(data) does not match the
// shape volume.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("tensor: negative dimension %d", d)
		}
		n *= d
	}
	if len(data) != n {
		return nil, fmt.Errorf("tensor: data length %d does not match shape volume %d", len(data), n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}, nil
}

// Randn fills a new tensor with pseudo-normal values scaled by std, using the
// provided source for determinism.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Bytes returns the payload size in bytes when serialized (excluding the
// header).
func (t *Tensor) Bytes() int { return 4 * len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given row-major indices.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given row-major indices.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d)", x, t.shape[i]))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal volume.
func (t *Tensor) CopyFrom(src *Tensor) error {
	if len(t.data) != len(src.data) {
		return fmt.Errorf("tensor: copy volume mismatch %d != %d", len(t.data), len(src.data))
	}
	copy(t.data, src.data)
	return nil
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Equal reports whether u has the same shape and bit-identical contents.
func (t *Tensor) Equal(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	for i := range t.data {
		if math.Float32bits(t.data[i]) != math.Float32bits(u.data[i]) {
			return false
		}
	}
	return true
}

// String renders a short description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(%d elems)", t.shape, len(t.data))
}

// Codec framing:
//
//	magic   uint32  "PCTN"
//	ndim    uint32
//	dims    ndim × uint32
//	payload 4·volume bytes of little-endian float32
//	crc32   uint32 over payload
const magic = 0x5043544e // "PCTN"

var (
	// ErrBadMagic is returned when decoding data that is not a tensor.
	ErrBadMagic = errors.New("tensor: bad magic")
	// ErrChecksum is returned when the payload fails CRC validation —
	// typically a torn or corrupted checkpoint.
	ErrChecksum = errors.New("tensor: checksum mismatch")
)

// EncodedSize returns the total number of bytes WriteTo will produce.
func (t *Tensor) EncodedSize() int {
	return 4 + 4 + 4*len(t.shape) + 4*len(t.data) + 4
}

// WriteTo serializes the tensor to w in the codec framing above.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, t.EncodedSize())
	n, err := t.Encode(buf)
	if err != nil {
		return 0, err
	}
	written, err := w.Write(buf[:n])
	return int64(written), err
}

// Encode serializes the tensor into dst, returning the number of bytes
// written. dst must be at least EncodedSize() long.
func (t *Tensor) Encode(dst []byte) (int, error) {
	need := t.EncodedSize()
	if len(dst) < need {
		return 0, fmt.Errorf("tensor: encode buffer too small: %d < %d", len(dst), need)
	}
	off := 0
	binary.LittleEndian.PutUint32(dst[off:], magic)
	off += 4
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(t.shape)))
	off += 4
	for _, d := range t.shape {
		binary.LittleEndian.PutUint32(dst[off:], uint32(d))
		off += 4
	}
	payloadStart := off
	for _, v := range t.data {
		binary.LittleEndian.PutUint32(dst[off:], math.Float32bits(v))
		off += 4
	}
	sum := crc32.ChecksumIEEE(dst[payloadStart:off])
	binary.LittleEndian.PutUint32(dst[off:], sum)
	off += 4
	return off, nil
}

// Decode parses a tensor from src, returning the tensor and the number of
// bytes consumed.
func Decode(src []byte) (*Tensor, int, error) {
	if len(src) < 8 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	off := 0
	if binary.LittleEndian.Uint32(src[off:]) != magic {
		return nil, 0, ErrBadMagic
	}
	off += 4
	ndim := int(binary.LittleEndian.Uint32(src[off:]))
	off += 4
	if ndim > 8 {
		return nil, 0, fmt.Errorf("tensor: implausible ndim %d", ndim)
	}
	if len(src) < off+4*ndim {
		return nil, 0, io.ErrUnexpectedEOF
	}
	shape := make([]int, ndim)
	vol := 1
	// The payload must fit in src, so any dimension product beyond
	// len(src)/4 is invalid; rejecting oversized dimensions eagerly also
	// prevents integer overflow of the product.
	maxVol := len(src) / 4
	for i := range shape {
		d := int(binary.LittleEndian.Uint32(src[off:]))
		off += 4
		shape[i] = d
		if vol != 0 && d > 0 && d > maxVol/vol {
			return nil, 0, io.ErrUnexpectedEOF
		}
		vol *= d
	}
	if off+4*vol+4 > len(src) {
		return nil, 0, io.ErrUnexpectedEOF
	}
	payload := src[off : off+4*vol]
	sum := crc32.ChecksumIEEE(payload)
	data := make([]float32, vol)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	off += 4 * vol
	if binary.LittleEndian.Uint32(src[off:]) != sum {
		return nil, 0, ErrChecksum
	}
	off += 4
	return &Tensor{shape: shape, data: data}, off, nil
}

// ReadFrom deserializes a tensor previously written with WriteTo.
func ReadFrom(r io.Reader) (*Tensor, error) {
	head := make([]byte, 8)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(head) != magic {
		return nil, ErrBadMagic
	}
	ndim := int(binary.LittleEndian.Uint32(head[4:]))
	if ndim > 8 {
		return nil, fmt.Errorf("tensor: implausible ndim %d", ndim)
	}
	dims := make([]byte, 4*ndim)
	if _, err := io.ReadFull(r, dims); err != nil {
		return nil, err
	}
	shape := make([]int, ndim)
	vol := 1
	const maxStreamVol = 1 << 31 // refuse absurd allocations from bad input
	for i := range shape {
		d := int(binary.LittleEndian.Uint32(dims[4*i:]))
		shape[i] = d
		if d == 0 {
			vol = 0
			continue
		}
		if vol > maxStreamVol/d {
			return nil, fmt.Errorf("tensor: implausible volume")
		}
		vol *= d
	}
	rest := make([]byte, 4*vol+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, err
	}
	payload := rest[:4*vol]
	if binary.LittleEndian.Uint32(rest[4*vol:]) != crc32.ChecksumIEEE(payload) {
		return nil, ErrChecksum
	}
	data := make([]float32, vol)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return &Tensor{shape: shape, data: data}, nil
}
