package tensor

import (
	"fmt"
	"math"
)

// MatMul computes c = a·b for 2-D tensors, allocating the result.
// a is (m×k), b is (k×n), the result is (m×n).
func MatMul(a, b *Tensor) (*Tensor, error) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMul needs 2-d operands, got %v and %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMul inner dims %d != %d", k, k2)
	}
	c := New(m, n)
	// ikj loop order keeps the b row hot in cache.
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		ci := c.data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := ai[kk]
			if av == 0 {
				continue
			}
			bk := b.data[kk*n : (kk+1)*n]
			for j := range bk {
				ci[j] += av * bk[j]
			}
		}
	}
	return c, nil
}

// MatMulTransB computes c = a·bᵀ. a is (m×k), b is (n×k), result is (m×n).
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMulTransB needs 2-d operands, got %v and %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMulTransB inner dims %d != %d", k, k2)
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			var s float32
			for kk := range ai {
				s += ai[kk] * bj[kk]
			}
			c.data[i*n+j] = s
		}
	}
	return c, nil
}

// MatMulTransA computes c = aᵀ·b. a is (k×m), b is (k×n), result is (m×n).
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMulTransA needs 2-d operands, got %v and %v", a.shape, b.shape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMulTransA inner dims %d != %d", k, k2)
	}
	c := New(m, n)
	for kk := 0; kk < k; kk++ {
		ak := a.data[kk*m : (kk+1)*m]
		bk := b.data[kk*n : (kk+1)*n]
		for i, av := range ak {
			if av == 0 {
				continue
			}
			ci := c.data[i*n : (i+1)*n]
			for j, bv := range bk {
				ci[j] += av * bv
			}
		}
	}
	return c, nil
}

// AddInPlace computes t += u element-wise.
func (t *Tensor) AddInPlace(u *Tensor) error {
	if len(t.data) != len(u.data) {
		return fmt.Errorf("tensor: add volume mismatch %d != %d", len(t.data), len(u.data))
	}
	for i := range t.data {
		t.data[i] += u.data[i]
	}
	return nil
}

// AddRowInPlace adds row (length n) to every row of the (m×n) tensor t.
func (t *Tensor) AddRowInPlace(row *Tensor) error {
	if len(t.shape) != 2 {
		return fmt.Errorf("tensor: AddRowInPlace needs a 2-d receiver, got %v", t.shape)
	}
	n := t.shape[1]
	if len(row.data) != n {
		return fmt.Errorf("tensor: row length %d != %d", len(row.data), n)
	}
	for i := 0; i < t.shape[0]; i++ {
		ri := t.data[i*n : (i+1)*n]
		for j := range ri {
			ri[j] += row.data[j]
		}
	}
	return nil
}

// ScaleInPlace computes t *= s element-wise.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AXPYInPlace computes t += alpha·u element-wise.
func (t *Tensor) AXPYInPlace(alpha float32, u *Tensor) error {
	if len(t.data) != len(u.data) {
		return fmt.Errorf("tensor: axpy volume mismatch %d != %d", len(t.data), len(u.data))
	}
	for i := range t.data {
		t.data[i] += alpha * u.data[i]
	}
	return nil
}

// ReLUInPlace applies max(0, x) element-wise.
func (t *Tensor) ReLUInPlace() {
	for i, v := range t.data {
		if v < 0 {
			t.data[i] = 0
		}
	}
}

// ReLUBackwardInPlace zeroes grad where act ≤ 0 (act is the post-ReLU
// activation).
func ReLUBackwardInPlace(grad, act *Tensor) error {
	if len(grad.data) != len(act.data) {
		return fmt.Errorf("tensor: relu backward volume mismatch %d != %d", len(grad.data), len(act.data))
	}
	for i := range grad.data {
		if act.data[i] <= 0 {
			grad.data[i] = 0
		}
	}
	return nil
}

// SumRows reduces an (m×n) tensor to a length-n row by summing over rows.
func SumRows(t *Tensor) (*Tensor, error) {
	if len(t.shape) != 2 {
		return nil, fmt.Errorf("tensor: SumRows needs a 2-d operand, got %v", t.shape)
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		ri := t.data[i*n : (i+1)*n]
		for j := range ri {
			out.data[j] += ri[j]
		}
	}
	return out, nil
}

// SoftmaxCrossEntropy computes softmax + cross-entropy loss against integer
// labels and writes dLogits (softmax − onehot)/batch into grad. logits is
// (batch×classes); labels has batch entries. It returns the mean loss.
func SoftmaxCrossEntropy(logits *Tensor, labels []int, grad *Tensor) (float64, error) {
	if len(logits.shape) != 2 {
		return 0, fmt.Errorf("tensor: SoftmaxCrossEntropy needs 2-d logits, got %v", logits.shape)
	}
	batch, classes := logits.shape[0], logits.shape[1]
	if len(labels) != batch {
		return 0, fmt.Errorf("tensor: %d labels for batch %d", len(labels), batch)
	}
	if len(grad.data) != len(logits.data) {
		return 0, fmt.Errorf("tensor: grad volume mismatch")
	}
	var loss float64
	inv := 1 / float32(batch)
	for i := 0; i < batch; i++ {
		row := logits.data[i*classes : (i+1)*classes]
		grow := grad.data[i*classes : (i+1)*classes]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			grow[j] = float32(e)
			sum += e
		}
		label := labels[i]
		if label < 0 || label >= classes {
			return 0, fmt.Errorf("tensor: label %d out of range [0,%d)", label, classes)
		}
		for j := range grow {
			p := grow[j] / float32(sum)
			grow[j] = p * inv
			if j == label {
				grow[j] -= inv
				loss += -math.Log(math.Max(float64(p), 1e-12))
			}
		}
	}
	return loss / float64(batch), nil
}

// L2Norm returns the Euclidean norm of the tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}
