// Package lfqueue implements a lock-free multi-producer multi-consumer FIFO
// queue.
//
// PCcheck (§4.1) uses a lock-free queue of free checkpoint slots, citing the
// Morrison–Afek LCRQ [PPoPP'13]. LCRQ's performance advantage comes from
// x86 fetch-and-add ring buffers; the linearizable behaviour the PCcheck
// algorithm depends on — lock-free MPMC FIFO with the guarantee that the
// latest persisted checkpoint's slot is never dequeued because it is never
// enqueued — is identical in the classic Michael–Scott queue implemented
// here, which maps cleanly onto Go's atomic.Pointer.
package lfqueue

import "sync/atomic"

type node[T any] struct {
	value T
	next  atomic.Pointer[node[T]]
}

// Queue is a lock-free MPMC FIFO. The zero value is not usable; call New.
type Queue[T any] struct {
	head atomic.Pointer[node[T]] // sentinel; head.next is the front
	tail atomic.Pointer[node[T]]
	size atomic.Int64
}

// New returns an empty queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	sentinel := &node[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Enq appends v to the queue. It never blocks; under contention it retries
// but some operation always makes progress (lock freedom).
func (q *Queue[T]) Enq(v T) {
	n := &node[T]{value: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue // tail moved under us; re-read
		}
		if next != nil {
			// Tail is lagging; help advance it, then retry.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n) // ok if this fails: someone helped
			q.size.Add(1)
			return
		}
	}
}

// Deq removes and returns the front element. ok is false when the queue was
// observed empty.
func (q *Queue[T]) Deq() (v T, ok bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return v, false // empty
		}
		if head == tail {
			// Queue non-empty but tail lagging: help, retry.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			return next.value, true
		}
	}
}

// Len returns the approximate number of elements. It is exact when the queue
// is quiescent and is only used for diagnostics and tests.
func (q *Queue[T]) Len() int { return int(q.size.Load()) }
