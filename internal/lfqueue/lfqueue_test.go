package lfqueue

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyDeq(t *testing.T) {
	q := New[int]()
	if _, ok := q.Deq(); ok {
		t.Fatal("Deq on empty queue returned ok")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}

func TestFIFOOrderSingleThreaded(t *testing.T) {
	q := New[int]()
	for i := 0; i < 100; i++ {
		q.Enq(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Deq()
		if !ok {
			t.Fatalf("Deq %d: queue empty early", i)
		}
		if v != i {
			t.Fatalf("Deq %d: got %d (FIFO violated)", i, v)
		}
	}
	if _, ok := q.Deq(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestInterleavedEnqDeq(t *testing.T) {
	q := New[string]()
	q.Enq("a")
	q.Enq("b")
	if v, _ := q.Deq(); v != "a" {
		t.Fatalf("got %q, want a", v)
	}
	q.Enq("c")
	if v, _ := q.Deq(); v != "b" {
		t.Fatalf("got %q, want b", v)
	}
	if v, _ := q.Deq(); v != "c" {
		t.Fatalf("got %q, want c", v)
	}
}

// TestConcurrentNoLossNoDup is the core safety test: P producers push
// disjoint values, C consumers pop; every value must come out exactly once.
func TestConcurrentNoLossNoDup(t *testing.T) {
	const producers, consumers, perProducer = 8, 8, 2000
	q := New[int]()
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enq(p*perProducer + i)
			}
		}(p)
	}
	results := make(chan int, producers*perProducer)
	done := make(chan struct{})
	var cg sync.WaitGroup
	cg.Add(consumers)
	for c := 0; c < consumers; c++ {
		go func() {
			defer cg.Done()
			for {
				if v, ok := q.Deq(); ok {
					results <- v
					continue
				}
				select {
				case <-done:
					// Drain any stragglers enqueued before done closed.
					for {
						v, ok := q.Deq()
						if !ok {
							return
						}
						results <- v
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cg.Wait()
	close(results)

	seen := make(map[int]bool, producers*perProducer)
	for v := range results {
		if seen[v] {
			t.Fatalf("value %d dequeued twice", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("lost values: got %d, want %d", len(seen), producers*perProducer)
	}
}

// TestPerProducerFIFO checks that values from a single producer come out in
// that producer's order (FIFO is per-enqueuer under concurrency).
func TestPerProducerFIFO(t *testing.T) {
	const producers, perProducer = 4, 5000
	q := New[[2]int]() // [producer, seq]
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enq([2]int{p, i})
			}
		}(p)
	}
	wg.Wait()
	last := make([]int, producers)
	for i := range last {
		last[i] = -1
	}
	for {
		v, ok := q.Deq()
		if !ok {
			break
		}
		if v[1] <= last[v[0]] {
			t.Fatalf("producer %d: seq %d after %d", v[0], v[1], last[v[0]])
		}
		last[v[0]] = v[1]
	}
	for p, l := range last {
		if l != perProducer-1 {
			t.Fatalf("producer %d: last seq %d, want %d", p, l, perProducer-1)
		}
	}
}

// Property: for any sequence of enqueues then dequeues, output equals input.
func TestQuickSequentialBehaviour(t *testing.T) {
	f := func(vals []int) bool {
		q := New[int]()
		for _, v := range vals {
			q.Enq(v)
		}
		var out []int
		for {
			v, ok := q.Deq()
			if !ok {
				break
			}
			out = append(out, v)
		}
		if len(out) != len(vals) {
			return false
		}
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The free-slot usage pattern from PCcheck: a fixed set of slots cycles
// through the queue forever; no slot may ever be duplicated or lost.
func TestSlotRecyclingInvariant(t *testing.T) {
	const slots, workers, rounds = 6, 4, 3000
	q := New[int]()
	for s := 0; s < slots; s++ {
		q.Enq(s)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for {
					s, ok := q.Deq()
					if ok {
						q.Enq(s) // use the slot, then recycle it
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	var remaining []int
	for {
		s, ok := q.Deq()
		if !ok {
			break
		}
		remaining = append(remaining, s)
	}
	sort.Ints(remaining)
	if len(remaining) != slots {
		t.Fatalf("slot count drifted: %v", remaining)
	}
	for i, s := range remaining {
		if s != i {
			t.Fatalf("slot set corrupted: %v", remaining)
		}
	}
}

func BenchmarkEnqDeq(b *testing.B) {
	q := New[int]()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Enq(1)
			q.Deq()
		}
	})
}

// Differential test: the lock-free queue must behave exactly like a
// mutex-protected reference under randomized operation sequences.
func TestDifferentialAgainstReference(t *testing.T) {
	type ref struct {
		mu sync.Mutex
		q  []int
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		lf := New[int]()
		var model ref
		for op := 0; op < 2000; op++ {
			if rng.Intn(2) == 0 {
				v := rng.Intn(1000)
				lf.Enq(v)
				model.mu.Lock()
				model.q = append(model.q, v)
				model.mu.Unlock()
			} else {
				got, ok := lf.Deq()
				model.mu.Lock()
				if len(model.q) == 0 {
					if ok {
						t.Fatalf("seed %d op %d: Deq returned %d from empty queue", seed, op, got)
					}
				} else {
					want := model.q[0]
					model.q = model.q[1:]
					if !ok || got != want {
						t.Fatalf("seed %d op %d: Deq = %d,%v want %d", seed, op, got, ok, want)
					}
				}
				model.mu.Unlock()
			}
		}
		if lf.Len() != len(model.q) {
			t.Fatalf("seed %d: lengths diverged %d vs %d", seed, lf.Len(), len(model.q))
		}
	}
}
