package storage

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestRemoteStoreUnreachableIsTransient(t *testing.T) {
	r := NewRemoteStore(1024)
	defer r.Close()
	p := []byte{1, 2, 3, 4}
	if err := r.WriteAt(p, 0); err != nil {
		t.Fatalf("WriteAt while reachable: %v", err)
	}
	r.SetReachable(false)
	err := r.WriteAt(p, 0)
	if !errors.Is(err, ErrRemoteUnreachable) {
		t.Fatalf("WriteAt while down = %v, want ErrRemoteUnreachable", err)
	}
	if !IsTransient(err) {
		t.Fatal("unreachable-store error is not classified transient — the drainer would give up instead of retrying")
	}
	if err := r.Sync(0, 4); !IsTransient(err) {
		t.Fatalf("Sync while down = %v, want transient", err)
	}
	if r.Faults() == 0 {
		t.Error("fault counter did not advance")
	}
	r.SetReachable(true)
	got := make([]byte, 4)
	if err := r.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt after recovery: %v", err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("data written before the outage lost after recovery")
	}
}

func TestRemoteStoreRTTPacing(t *testing.T) {
	r := NewRemoteStore(1024, WithRemoteRTT(2*time.Millisecond))
	defer r.Close()
	start := time.Now()
	if err := r.Persist([]byte{1}, 0); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("Persist returned in %v, want >= the 2ms modelled round trip", elapsed)
	}
	if r.Ops() == 0 {
		t.Error("op counter did not advance")
	}
}
