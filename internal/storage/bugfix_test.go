package storage

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

// TestCheckRangeOverflow pins the off+n overflow guard: before the fix,
// off+int64(n) wrapped negative for offsets near MaxInt64 and the range
// check accepted an out-of-bounds access.
func TestCheckRangeOverflow(t *testing.T) {
	cases := []struct {
		name   string
		size   int64
		off    int64
		n      int
		wantOK bool
	}{
		{"zero at zero", 0, 0, 0, true},
		{"full device", 4096, 0, 4096, true},
		{"end boundary", 4096, 4096, 0, true},
		{"interior", 4096, 100, 200, true},
		{"negative off", 4096, -1, 1, false},
		{"negative n", 4096, 0, -1, false},
		{"off past end", 4096, 4097, 0, false},
		{"n past end", 4096, 4095, 2, false},
		{"max off wraps", 4096, math.MaxInt64, 16, false},
		{"near-max off wraps", 4096, math.MaxInt64 - 8, 16, false},
		{"exact wrap to negative", 4096, math.MaxInt64 - 15, 16, false},
		{"max off zero n", 4096, math.MaxInt64, 0, false},
	}
	for _, c := range cases {
		err := checkRange(c.size, c.off, c.n)
		if (err == nil) != c.wantOK {
			t.Errorf("%s: checkRange(%d, %d, %d) = %v, want ok=%v",
				c.name, c.size, c.off, c.n, err, c.wantOK)
		}
	}
}

// FuzzCheckRange checks checkRange against an overflow-free oracle computed
// in uint64 space. The seed corpus includes the adversarial offsets near
// MaxInt64 that wrapped the pre-fix off+int64(n) sum negative.
func FuzzCheckRange(f *testing.F) {
	f.Add(int64(4096), int64(0), 4096)
	f.Add(int64(4096), int64(math.MaxInt64-5), 10)
	f.Add(int64(4096), int64(math.MaxInt64), 1)
	f.Add(int64(4096), int64(-1), 1)
	f.Add(int64(0), int64(0), 0)
	f.Add(int64(1<<40), int64(1<<40), 0)
	f.Fuzz(func(t *testing.T, size, off int64, n int) {
		if size < 0 {
			size = -size
		}
		err := checkRange(size, off, n)
		wantOK := off >= 0 && n >= 0 && uint64(off)+uint64(n) <= uint64(size)
		if (err == nil) != wantOK {
			t.Fatalf("checkRange(%d, %d, %d) = %v, oracle ok=%v", size, off, n, err, wantOK)
		}
	})
}

// TestCrashDeviceCloseImpliesSync is the crash-model regression for the
// SSD sync-on-close fix: Close must journal a covering sync so that data
// written but never explicitly synced survives even the adversary that
// drops every unsynced write. Before the fix the post-Close crash image
// lost the write.
func TestCrashDeviceCloseImpliesSync(t *testing.T) {
	dev := NewCrashDevice(1024, KindSSD)
	want := bytes.Repeat([]byte{0xab}, 256)
	if err := dev.WriteAt(want, 128); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	// No explicit Sync: durability must come from Close alone.
	if err := dev.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	img, err := dev.CrashImage(dev.Ops(), DropAllWrites)
	if err != nil {
		t.Fatalf("CrashImage: %v", err)
	}
	if !bytes.Equal(img[128:128+256], want) {
		t.Fatal("write issued before Close was lost in the post-Close crash image: Close did not sync")
	}
}

// TestSSDCloseDurability is the real-file counterpart: data written to an
// SSD and never explicitly synced must be on disk after Close.
func TestSSDCloseDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	dev, err := OpenSSD(path, 1024)
	if err != nil {
		t.Fatalf("OpenSSD: %v", err)
	}
	want := bytes.Repeat([]byte{0xcd}, 512)
	if err := dev.WriteAt(want, 256); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := dev.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := ReopenSSD(path)
	if err != nil {
		t.Fatalf("ReopenSSD: %v", err)
	}
	defer re.Close()
	got := make([]byte, len(want))
	if err := re.ReadAt(got, 256); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data written before Close not present after reopen")
	}
}
