package storage

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
)

func TestClassifyDefaultsToPermanent(t *testing.T) {
	if got := Classify(errors.New("mystery")); got != ClassPermanent {
		t.Fatalf("Classify(unknown) = %v", got)
	}
	if got := Classify(ErrInjected); got != ClassPermanent {
		t.Fatalf("Classify(ErrInjected) = %v", got)
	}
}

func TestClassifyExplicitTags(t *testing.T) {
	base := errors.New("blip")
	cases := []struct {
		err  error
		want ErrClass
	}{
		{Transient(base), ClassTransient},
		{Permanent(base), ClassPermanent},
		{Corrupt(base), ClassCorrupt},
		{fmt.Errorf("writer 2: %w", Transient(base)), ClassTransient},
		{fmt.Errorf("load: %w", Corrupt(base)), ClassCorrupt},
	}
	for i, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Fatalf("case %d: Classify = %v, want %v", i, got, c.want)
		}
	}
	// Tagging preserves the chain.
	if !errors.Is(Transient(base), base) {
		t.Fatal("Transient broke errors.Is")
	}
}

func TestClassifyOSErrnos(t *testing.T) {
	for _, errno := range []syscall.Errno{syscall.EINTR, syscall.EAGAIN, syscall.ETIMEDOUT, syscall.EBUSY} {
		if got := Classify(fmt.Errorf("pwrite: %w", errno)); got != ClassTransient {
			t.Fatalf("Classify(%v) = %v, want transient", errno, got)
		}
	}
	for _, errno := range []syscall.Errno{syscall.ENOSPC, syscall.EIO, syscall.EBADF} {
		if got := Classify(fmt.Errorf("pwrite: %w", errno)); got != ClassPermanent {
			t.Fatalf("Classify(%v) = %v, want permanent", errno, got)
		}
	}
}

func TestClassHelpers(t *testing.T) {
	if !IsTransient(ErrInjectedTransient) {
		t.Fatal("ErrInjectedTransient not transient")
	}
	if IsTransient(nil) || IsCorrupt(nil) {
		t.Fatal("nil classified as a fault")
	}
	if !IsCorrupt(Corrupt(errors.New("crc"))) {
		t.Fatal("Corrupt not corrupt")
	}
	if IsTransient(ErrInjected) {
		t.Fatal("ErrInjected should be permanent")
	}
}

func TestTagNilReturnsNil(t *testing.T) {
	if Transient(nil) != nil || Permanent(nil) != nil || Corrupt(nil) != nil {
		t.Fatal("tagging nil must return nil")
	}
}

func TestErrClassString(t *testing.T) {
	if ClassTransient.String() != "transient" || ClassPermanent.String() != "permanent" || ClassCorrupt.String() != "corrupt" {
		t.Fatal("ErrClass strings wrong")
	}
}
