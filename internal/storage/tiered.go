package storage

import (
	"fmt"
	"sync"
	"time"

	"pccheck/internal/obs"
)

// Tiered composes backends into an N-level durability hierarchy — DRAM in
// front of an SSD in front of an object store, say. Every Device operation
// completes at the active front tier (tier 0 until it fails), so the
// engine's persist latency is the front tier's; a bounded asynchronous
// drainer then copies committed state downward, level by level, so slower
// tiers converge on the front tier's history with bounded staleness.
// Recovery prefers the newest reachable tier (core.Recover walks Tiers()).
//
// The drain model is deliberately the crash-explorer's: the front tier's
// mutations are journaled (write data, sync barriers, checkpoint-commit
// marks) and the drainer *replays the journal in order* into each lower tier
// before issuing one covering sync. A lower tier is therefore always a
// write-ordered point-in-time image of the front tier — exactly the
// "optimistic adversary" crash image the recovery protocol is already proven
// against — never a fuzzy byte-range copy that could pair a new pointer
// record with a recycled slot.
//
// The journal is bounded: when a lagging tier would force it past the
// pending limit, the journal is trimmed anyway and the laggard is scheduled
// for a full-image resync (counted, observable) instead of pinning memory.
//
// Per-tier drain failures use the storage error classification: transient
// faults retry in place with exponential backoff, permanent faults abort the
// cycle (the tier goes stale and the next cycle tries again), so a torn-down
// tier degrades staleness rather than correctness.
//
// Write-path failover: when the front tier itself returns permanent errors
// past the failover budget, the composite marks it failed, catches the next
// healthy lower tier up from the journal (the journal carries the data, so
// no reads from the dying tier are needed), promotes it to the front, and
// retries the failing operation there. The durable floor survives: every
// checkpoint the old front acknowledged rode the journal into the new one.
type Tiered struct {
	levels   []Device
	obsv     obs.Observer
	hasLower bool

	interval   time.Duration
	maxPending int64
	retryMax   int
	retryBase  time.Duration
	retryCap   time.Duration
	failAfter  int // consecutive permanent front-tier failures before failover

	// frontMu fences front-tier operations against failover: ops hold it
	// shared across apply-at-front + journal-append, failover holds it
	// exclusively, so the catch-up replay can never miss an op that
	// succeeded at the old front but had not reached the journal yet.
	// Lock order: frontMu before mu.
	frontMu sync.RWMutex

	mu        sync.Mutex
	journal   []tierOp
	base      int64 // absolute journal index of journal[0]
	pending   int64 // bytes retained by the journal (data + per-op overhead)
	watermark uint64
	states    []*tierState // one per level; accounting survives promotion/death
	tiers     []*tierState // current drain targets: live levels below the front
	active    int          // level currently serving the write path
	dead      []bool       // levels failed over away from (or lost mid-catch-up)
	frontErrs int          // consecutive permanent failures at the front

	stop      chan struct{}
	kick      chan struct{}
	drained   *sync.Cond
	wg        sync.WaitGroup
	opWg      sync.WaitGroup
	closed    bool
	closeDone chan struct{}
	closeErr  error
}

// tierState is the drainer's per-tier cursor and accounting.
type tierState struct {
	level       int
	cursor      int64 // absolute journal index: everything before it is replayed + synced
	needsResync bool
	busy        bool   // a drain/resync replay is in flight outside the lock
	durable     uint64 // highest checkpoint counter durable at this tier
	durableNS   int64  // when durable last advanced
	drains      uint64
	drainedB    int64
	errors      uint64
	resyncs     uint64
	failovers   uint64 // write-path failovers away from this level
	lastErr     error
}

type tierOpKind uint8

const (
	tierOpWrite tierOpKind = iota
	tierOpSync
	tierOpMark
)

type tierOp struct {
	kind tierOpKind
	off  int64
	data []byte
	n    int64
	mark uint64
}

// tierOpOverhead is charged against the pending limit per journal entry, so
// a stream of syncs/marks cannot grow the journal unbounded.
const tierOpOverhead = 48

// CheckpointCommitter is the optional interface through which the engine
// tells a device that a checkpoint counter is durably published at tier 0
// (the pointer record persisted). Tiered implements it by journaling a
// commit mark; the drainer advances each lower tier's durable counter past
// the marks its replayed prefix contains.
type CheckpointCommitter interface {
	CommitCheckpoint(counter uint64)
}

// Marker is the optional interface (CrashDevice implements it) through which
// the drainer stamps a tier's journal with the counter it just made durable
// there — so crash images of a lower tier carry the drainer's ack floor.
type Marker interface {
	Mark(value uint64)
}

// TieredOption configures a Tiered device.
type TieredOption func(*Tiered)

// WithDrainInterval sets the drainer's idle wake-up period (default 2ms).
func WithDrainInterval(d time.Duration) TieredOption {
	return func(t *Tiered) { t.interval = d }
}

// WithPendingLimit bounds the drain journal's retained bytes (default
// 64 MiB). Exceeding it trims the journal and schedules full-image resyncs
// for tiers that had not caught up.
func WithPendingLimit(bytes int64) TieredOption {
	return func(t *Tiered) { t.maxPending = bytes }
}

// WithTierObserver attaches a flight-recorder observer; the drainer emits
// PhaseTierDrain/PhaseTierError/PhaseTierResync events with Slot = tier
// index, and failover emits PhaseTierFailover.
func WithTierObserver(o obs.Observer) TieredOption {
	return func(t *Tiered) { t.obsv = o }
}

// WithTierRetry sets the per-operation drain retry budget for transient tier
// faults (defaults: 4 attempts, 200µs base backoff, 5ms cap).
func WithTierRetry(attempts int, base, cap time.Duration) TieredOption {
	return func(t *Tiered) {
		t.retryMax, t.retryBase, t.retryCap = attempts, base, cap
	}
}

// WithFailoverThreshold sets how many consecutive permanent front-tier
// failures the composite tolerates before failing the write path over to
// the next healthy lower tier (default 3). Transient faults never count.
func WithFailoverThreshold(n int) TieredOption {
	return func(t *Tiered) {
		if n > 0 {
			t.failAfter = n
		}
	}
}

// NewTiered builds a tiered device over levels (fastest first). All
// operations complete at the front level; the background drainer replicates
// to the rest. Every lower level must be at least as large as tier 0.
// Tiered owns the levels: Close closes them all.
func NewTiered(levels []Device, opts ...TieredOption) (*Tiered, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("storage: tiered device needs at least one level")
	}
	size := levels[0].Size()
	for i, l := range levels[1:] {
		if l.Size() < size {
			return nil, fmt.Errorf("storage: tier %d is %d bytes, smaller than tier 0's %d", i+1, l.Size(), size)
		}
	}
	t := &Tiered{
		levels:     append([]Device(nil), levels...),
		hasLower:   len(levels) > 1,
		interval:   2 * time.Millisecond,
		maxPending: 64 << 20,
		retryMax:   4,
		retryBase:  200 * time.Microsecond,
		retryCap:   5 * time.Millisecond,
		failAfter:  3,
		stop:       make(chan struct{}),
		kick:       make(chan struct{}, 1),
		dead:       make([]bool, len(levels)),
	}
	for _, o := range opts {
		o(t)
	}
	t.drained = sync.NewCond(&t.mu)
	for i := range t.levels {
		t.states = append(t.states, &tierState{level: i})
	}
	t.tiers = append([]*tierState(nil), t.states[1:]...)
	if t.hasLower {
		t.wg.Add(1)
		go t.drainLoop()
	}
	return t, nil
}

// Tiers returns the composed levels, fastest first. core.Recover uses this
// to walk tiers newest-reachable-first after tier 0 is lost.
func (t *Tiered) Tiers() []Device {
	return append([]Device(nil), t.levels...)
}

// Active returns the index of the level currently serving the write path
// (0 until a failover promotes a lower tier).
func (t *Tiered) Active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// Watermark returns the highest checkpoint counter committed at the front.
func (t *Tiered) Watermark() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.watermark
}

// ScheduleResync forces a full-image resync of the given lower tier on the
// next drain cycle — the scrubber's repair-by-resync hook for a tier whose
// copy failed verification. It reports whether the level is a live drain
// target (scheduling the front or a failed level is a no-op).
func (t *Tiered) ScheduleResync(level int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ts := range t.tiers {
		if ts.level == level {
			ts.needsResync = true
			t.Kick()
			return true
		}
	}
	return false
}

// --- Device: every operation completes at the active front tier -------------

// beginOp fences an operation against Close: once Close has flipped the
// closed bit, new operations are rejected, and Close's opWg.Wait() cannot
// return until every accepted operation has finished journaling.
func (t *Tiered) beginOp() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return Permanent(fmt.Errorf("storage: tiered device is closed"))
	}
	t.opWg.Add(1)
	return nil
}

// frontApply runs op against the active front tier, journaling via journal
// on success. Permanent front failures count toward the failover budget;
// when the budget is exhausted the composite promotes the next healthy
// lower tier and retries the op there. The shared frontMu is held across
// apply + journal so a concurrent failover's catch-up replay can never miss
// an op that succeeded at the old front but had not been journaled yet.
//
// Only a successful DURABILITY op (durable=true: Sync, Persist) resets the
// consecutive-failure budget. A dying device often keeps absorbing buffered
// WriteAts while every attempt to make them durable fails; if plain writes
// reset the count, a save loop interleaving writes and persists would
// starve the budget and never fail over.
func (t *Tiered) frontApply(durable bool, op func(Device) error, journal func()) error {
	for {
		t.frontMu.RLock()
		t.mu.Lock()
		dev := t.levels[t.active]
		t.mu.Unlock()
		err := op(dev)
		if err == nil {
			if journal != nil {
				journal()
			}
			t.frontMu.RUnlock()
			if durable {
				t.mu.Lock()
				if dev == t.levels[t.active] {
					t.frontErrs = 0
				}
				t.mu.Unlock()
			}
			return nil
		}
		t.frontMu.RUnlock()
		t.mu.Lock()
		if Classify(err) != ClassPermanent || dev != t.levels[t.active] {
			// Transient/corrupt faults are the caller's to retry; if a racing
			// failover already replaced the front, count nothing and let the
			// caller retry against the new one.
			t.mu.Unlock()
			return err
		}
		t.frontErrs++
		exhausted := t.frontErrs >= t.failAfter
		t.mu.Unlock()
		if !exhausted {
			return err
		}
		if !t.failover(dev) {
			return err
		}
		// A new front is in place and caught up; retry the op there.
	}
}

// journalAppend records successfully applied front-tier ops for the drainer.
// Appending *after* the front-tier forward means any journaled op is visible
// in the front tier's contents — the invariant the resync snapshot depends
// on. Commit marks advance the watermark even when no drain targets remain.
func (t *Tiered) journalAppend(ops ...tierOp) {
	t.mu.Lock()
	for _, op := range ops {
		if op.kind == tierOpMark && op.mark > t.watermark {
			t.watermark = op.mark
		}
	}
	if len(t.tiers) > 0 {
		for _, op := range ops {
			t.journal = append(t.journal, op)
			t.pending += int64(len(op.data)) + tierOpOverhead
		}
		if t.pending > t.maxPending {
			t.trimLocked(t.base + int64(len(t.journal)))
		}
	}
	t.mu.Unlock()
}

// trimLocked drops journal entries from the front until the pending bytes
// fit the limit again, but never past keepMax. Tiers whose cursor falls
// before the new base lose their incremental path and are scheduled for a
// full-image resync.
func (t *Tiered) trimLocked(keepMax int64) {
	newBase := t.base
	for t.pending > t.maxPending/2 && newBase < keepMax && len(t.journal) > int(newBase-t.base) {
		op := t.journal[newBase-t.base]
		t.pending -= int64(len(op.data)) + tierOpOverhead
		newBase++
	}
	if newBase == t.base {
		return
	}
	t.journal = append([]tierOp(nil), t.journal[newBase-t.base:]...)
	t.base = newBase
	for _, ts := range t.tiers {
		if ts.cursor < newBase && !ts.needsResync {
			ts.needsResync = true
			ts.cursor = newBase
		}
	}
}

// gcLocked releases journal entries every tier has replayed (resyncing tiers
// do not read the journal, so they do not hold it back).
func (t *Tiered) gcLocked() {
	min := t.base + int64(len(t.journal))
	for _, ts := range t.tiers {
		if !ts.needsResync && ts.cursor < min {
			min = ts.cursor
		}
	}
	if min <= t.base {
		return
	}
	for i := t.base; i < min; i++ {
		op := t.journal[i-t.base]
		t.pending -= int64(len(op.data)) + tierOpOverhead
	}
	t.journal = append([]tierOp(nil), t.journal[min-t.base:]...)
	t.base = min
}

// WriteAt implements Device: applied at the front, journaled for the drainer.
func (t *Tiered) WriteAt(p []byte, off int64) error {
	if err := t.beginOp(); err != nil {
		return err
	}
	defer t.opWg.Done()
	return t.frontApply(false,
		func(d Device) error { return d.WriteAt(p, off) },
		func() {
			if !t.hasLower {
				return
			}
			cp := append([]byte(nil), p...)
			t.journalAppend(tierOp{kind: tierOpWrite, off: off, data: cp})
		})
}

// ReadAt implements Device: served by the active front, the freshest level.
func (t *Tiered) ReadAt(p []byte, off int64) error {
	if err := t.beginOp(); err != nil {
		return err
	}
	defer t.opWg.Done()
	t.mu.Lock()
	dev := t.levels[t.active]
	t.mu.Unlock()
	return dev.ReadAt(p, off)
}

// Sync implements Device: a front-tier barrier. Lower tiers get their own
// covering sync from the drainer after replay.
func (t *Tiered) Sync(off, n int64) error {
	if err := t.beginOp(); err != nil {
		return err
	}
	defer t.opWg.Done()
	return t.frontApply(true,
		func(d Device) error { return d.Sync(off, n) },
		func() { t.journalAppend(tierOp{kind: tierOpSync, off: off, n: n}) })
}

// Persist implements Device: durable at the front tier when it returns — the
// tentpole contract. Journaled as write + covering sync, like the crash
// explorer models it.
func (t *Tiered) Persist(p []byte, off int64) error {
	if err := t.beginOp(); err != nil {
		return err
	}
	defer t.opWg.Done()
	return t.frontApply(true,
		func(d Device) error { return d.Persist(p, off) },
		func() {
			if !t.hasLower {
				return
			}
			cp := append([]byte(nil), p...)
			t.journalAppend(
				tierOp{kind: tierOpWrite, off: off, data: cp},
				tierOp{kind: tierOpSync, off: off, n: int64(len(p))})
		})
}

// CommitCheckpoint implements CheckpointCommitter: the engine calls it after
// the pointer record for counter is durable at the front. The mark rides the
// journal, so a tier's durable counter only advances once every op that made
// the checkpoint durable has been replayed and synced there.
func (t *Tiered) CommitCheckpoint(counter uint64) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.opWg.Add(1)
	t.mu.Unlock()
	defer t.opWg.Done()
	t.journalAppend(tierOp{kind: tierOpMark, mark: counter})
	t.Kick()
}

// Size implements Device.
func (t *Tiered) Size() int64 { return t.levels[0].Size() }

// Kind implements Device: the engine sees the active front's persistence
// semantics.
func (t *Tiered) Kind() Kind {
	t.mu.Lock()
	dev := t.levels[t.active]
	t.mu.Unlock()
	return dev.Kind()
}

// Close drains the journal into every reachable tier, stops the drainer and
// closes all levels. An orderly Close therefore leaves every healthy tier
// holding the front tier's final image. Concurrent and repeated Closes all
// block until that final drain has finished.
func (t *Tiered) Close() error {
	t.mu.Lock()
	if t.closed {
		done := t.closeDone
		t.mu.Unlock()
		<-done
		return t.closeErr
	}
	t.closed = true
	t.closeDone = make(chan struct{})
	t.mu.Unlock()

	// Wait out in-flight ops: anything accepted before the close fence is
	// journaled by the time Wait returns, so the final drain below cannot
	// sample a journal an accepted op has yet to reach.
	t.opWg.Wait()
	if t.hasLower {
		close(t.stop)
		t.wg.Wait()
		t.drainAll() // final pass: one full attempt per tier
	}
	var first error
	for _, l := range t.levels {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.closeErr = first
	close(t.closeDone)
	return first
}

// --- failover ---------------------------------------------------------------

// failover retires the front tier oldDev belongs to and promotes the next
// healthy lower tier, catching it up from the journal first. It reports
// whether a healthy front is in place afterwards (true also when a racing
// caller already completed the failover).
func (t *Tiered) failover(oldDev Device) bool {
	t.frontMu.Lock()
	defer t.frontMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.levels[t.active] != oldDev {
		return true // someone else already failed over; retry on the new front
	}
	from := t.active
	t.dead[from] = true
	t.states[from].failovers++
	t.frontErrs = 0
	began := time.Now()
	for {
		var cand *tierState
		for _, ts := range t.tiers {
			if ts.level > from && !t.dead[ts.level] && !ts.needsResync {
				cand = ts
				break
			}
		}
		if cand == nil {
			t.emitError(from, t.failAfter, Permanent(fmt.Errorf("storage: no healthy tier to fail over to from level %d", from)))
			return false
		}
		// Wait out an in-flight drain replay into the candidate so the
		// catch-up below cannot interleave with it.
		for cand.busy {
			t.drained.Wait()
		}
		if t.dead[cand.level] || cand.needsResync {
			continue
		}
		bytes, ok := t.catchUpLocked(cand)
		if !ok {
			t.dead[cand.level] = true
			continue
		}
		t.active = cand.level
		var keep []*tierState
		for _, ts := range t.tiers {
			if ts.level > cand.level && !t.dead[ts.level] {
				keep = append(keep, ts)
			}
		}
		t.tiers = keep
		t.emit(obs.Event{
			TS: began.UnixNano(), Dur: time.Since(began).Nanoseconds(),
			Phase: obs.PhaseTierFailover, Slot: int32(cand.level),
			Value: int64(from), Counter: t.watermark, Bytes: bytes,
		})
		return true
	}
}

// catchUpLocked synchronously replays the journal suffix ts has not seen
// into its level, with covering syncs at the journaled barriers. Called with
// frontMu and mu held: the journal is frozen and no new front op can land,
// so a successful replay makes the level an exact image of the front. One
// attempt only — a failover target that cannot absorb the replay is not a
// viable front.
func (t *Tiered) catchUpLocked(ts *tierState) (int64, bool) {
	dev := t.levels[ts.level]
	head := t.base + int64(len(t.journal))
	ops := t.journal[ts.cursor-t.base : head-t.base]
	var bytes int64
	dirty := false
	flush := func() bool {
		if !dirty {
			return true
		}
		if err := dev.Sync(0, dev.Size()); err != nil {
			ts.errors++
			ts.lastErr = err
			return false
		}
		dirty = false
		return true
	}
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case tierOpWrite:
			if err := dev.WriteAt(op.data, op.off); err != nil {
				ts.errors++
				ts.lastErr = err
				return bytes, false
			}
			bytes += int64(len(op.data))
			dirty = true
		case tierOpSync:
			if !flush() {
				return bytes, false
			}
		}
	}
	if !flush() {
		return bytes, false
	}
	ts.cursor = head
	ts.drains++
	ts.drainedB += bytes
	if t.watermark > ts.durable {
		ts.durable = t.watermark
		ts.durableNS = time.Now().UnixNano()
	}
	return bytes, true
}

// --- drainer ----------------------------------------------------------------

// Kick wakes the drainer immediately instead of waiting out the interval.
func (t *Tiered) Kick() {
	select {
	case t.kick <- struct{}{}:
	default:
	}
}

func (t *Tiered) drainLoop() {
	defer t.wg.Done()
	timer := time.NewTimer(t.interval)
	defer timer.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-t.kick:
		case <-timer.C:
		}
		t.drainAll()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(t.interval)
	}
}

// drainAll runs one drain cycle for every current lower tier, then
// garbage-collects the journal and signals waiters.
func (t *Tiered) drainAll() {
	t.mu.Lock()
	targets := append([]*tierState(nil), t.tiers...)
	t.mu.Unlock()
	for _, ts := range targets {
		t.drainTier(ts)
	}
	t.mu.Lock()
	t.gcLocked()
	t.drained.Broadcast()
	t.mu.Unlock()
}

// drainTier replays the journal suffix this tier has not seen (or the whole
// front-tier image when it lost its incremental path), then syncs the tier.
func (t *Tiered) drainTier(ts *tierState) {
	t.mu.Lock()
	if t.dead[ts.level] || ts.level <= t.active {
		t.mu.Unlock()
		return
	}
	ts.busy = true
	defer func() {
		t.mu.Lock()
		ts.busy = false
		t.drained.Broadcast()
		t.mu.Unlock()
	}()
	if ts.needsResync {
		t.resyncLocked(ts) // unlocks internally
		return
	}
	start := ts.cursor
	end := t.base + int64(len(t.journal))
	if start >= end {
		t.mu.Unlock()
		return
	}
	ops := t.journal[start-t.base : end-t.base]
	t.mu.Unlock()

	dev := t.levels[ts.level]
	began := time.Now()
	var bytes int64
	var hiMark uint64
	dirty := false
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case tierOpWrite:
			if err := t.retryTier(ts, func() error { return dev.WriteAt(op.data, op.off) }); err != nil {
				return
			}
			bytes += int64(len(op.data))
			dirty = true
		case tierOpSync:
			// Sync barriers replay *in order* (coalescing only runs of syncs
			// with no intervening write): a pointer-record write must never
			// reach this tier ahead of the payload sync the front tier
			// ordered before it, or a crash image here could pair a live
			// record with a torn payload — a state the front can never be in.
			if !dirty {
				continue
			}
			if err := t.retryTier(ts, func() error { return dev.Sync(0, dev.Size()) }); err != nil {
				return
			}
			dirty = false
		case tierOpMark:
			if op.mark > hiMark {
				hiMark = op.mark
			}
		}
	}
	if dirty {
		if err := t.retryTier(ts, func() error { return dev.Sync(0, dev.Size()) }); err != nil {
			return
		}
	}

	t.mu.Lock()
	advanced := false
	if !ts.needsResync && ts.cursor == start {
		ts.cursor = end
		advanced = true
		if hiMark > ts.durable {
			ts.durable = hiMark
			ts.durableNS = time.Now().UnixNano()
		}
		ts.drains++
		ts.drainedB += bytes
		durable := ts.durable
		t.mu.Unlock()
		if m, ok := dev.(Marker); ok && durable > 0 {
			m.Mark(durable)
		}
	} else {
		t.mu.Unlock()
	}
	if advanced {
		t.emit(obs.Event{
			TS: began.UnixNano(), Dur: time.Since(began).Nanoseconds(),
			Phase: obs.PhaseTierDrain, Slot: int32(ts.level),
			Counter: hiMark, Bytes: bytes,
		})
	}
}

// resyncLocked recopies the full front-tier image into ts's level. Called
// with t.mu held; the snapshot read happens under the lock so no new op can
// be journaled (and no commit mark can advance) while the image is taken —
// in-flight front-tier writes not yet journaled land at positions ≥ the cut
// and are replayed later, idempotently.
func (t *Tiered) resyncLocked(ts *tierState) {
	cut := t.base + int64(len(t.journal))
	wm := t.watermark
	front := t.levels[t.active]
	size := front.Size()
	img := make([]byte, size)
	if err := front.ReadAt(img, 0); err != nil {
		ts.errors++
		ts.lastErr = err
		t.mu.Unlock()
		t.emitError(ts.level, 1, err)
		return
	}
	t.mu.Unlock()

	dev := t.levels[ts.level]
	began := time.Now()
	const chunk = 1 << 20
	for off := int64(0); off < size; off += chunk {
		n := size - off
		if n > chunk {
			n = chunk
		}
		if err := t.retryTier(ts, func() error { return dev.WriteAt(img[off:off+n], off) }); err != nil {
			return
		}
	}
	if err := t.retryTier(ts, func() error { return dev.Sync(0, dev.Size()) }); err != nil {
		return
	}

	t.mu.Lock()
	ts.resyncs++
	ts.drains++
	ts.drainedB += size
	if wm > ts.durable {
		ts.durable = wm
		ts.durableNS = time.Now().UnixNano()
	}
	if t.base > cut {
		// The journal was force-trimmed past our snapshot while we copied:
		// ops in [cut, base) are gone, so this tier must resync again.
		ts.cursor = t.base
	} else {
		ts.needsResync = false
		ts.cursor = cut
	}
	durable := ts.durable
	t.mu.Unlock()
	if m, ok := dev.(Marker); ok && durable > 0 {
		m.Mark(durable)
	}
	t.emit(obs.Event{
		TS: began.UnixNano(), Phase: obs.PhaseTierResync,
		Slot: int32(ts.level), Bytes: size,
	})
	t.emit(obs.Event{
		TS: began.UnixNano(), Dur: time.Since(began).Nanoseconds(),
		Phase: obs.PhaseTierDrain, Slot: int32(ts.level),
		Counter: wm, Bytes: size,
	})
}

// retryTier runs op with the per-tier retry budget: transient faults back
// off exponentially and try again, anything else (or an exhausted budget)
// aborts the cycle and counts a tier error. A nil return means op succeeded.
func (t *Tiered) retryTier(ts *tierState, op func() error) error {
	backoff := t.retryBase
	var err error
	for attempt := 1; attempt <= t.retryMax; attempt++ {
		err = op()
		if err == nil {
			return nil
		}
		if !IsTransient(err) || attempt == t.retryMax {
			break
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > t.retryCap {
			backoff = t.retryCap
		}
	}
	t.mu.Lock()
	ts.errors++
	ts.lastErr = err
	t.mu.Unlock()
	t.emitError(ts.level, t.retryMax, err)
	return err
}

func (t *Tiered) emit(ev obs.Event) {
	if t.obsv == nil {
		return
	}
	ev.Writer, ev.Rank = -1, -1
	t.obsv.Emit(ev)
}

func (t *Tiered) emitError(level, attempt int, err error) {
	if t.obsv == nil {
		return
	}
	t.obsv.Emit(obs.Event{
		TS: time.Now().UnixNano(), Phase: obs.PhaseTierError,
		Slot: int32(level), Attempt: int32(attempt),
		Value: int64(Classify(err)), Writer: -1, Rank: -1,
	})
}

// WaitDrained blocks until every live lower tier has replayed and synced the
// whole journal (no pending ops, no outstanding resyncs), or until timeout.
// It reports whether the tiers converged.
func (t *Tiered) WaitDrained(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	t.Kick()
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		idle := true
		head := t.base + int64(len(t.journal))
		for _, ts := range t.tiers {
			if ts.needsResync || ts.cursor < head {
				idle = false
				break
			}
		}
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		// The drainer broadcasts after every cycle; poll with a timeout so a
		// permanently failing tier cannot park us forever.
		t.mu.Unlock()
		time.Sleep(200 * time.Microsecond)
		t.Kick()
		t.mu.Lock()
	}
}

// TierStatus is one level's durability standing.
type TierStatus struct {
	// Level is the tier index (0 = the fastest level).
	Level int
	// Kind is the level's persistence technology.
	Kind Kind
	// DurableCounter is the newest checkpoint counter durable at this
	// level; for the active front it is the engine's commit watermark.
	DurableCounter uint64
	// DurableAt is when DurableCounter last advanced (zero for a level that
	// never drained).
	DurableAt time.Time
	// Drains / DrainedBytes / Errors / Resyncs are cumulative drainer
	// accounting (zero for a level that was never a drain target).
	Drains       uint64
	DrainedBytes int64
	Errors       uint64
	Resyncs      uint64
	// Failovers counts write-path failovers away from this level.
	Failovers uint64
	// Active marks the level currently serving the write path; Failed marks
	// a level the write path has permanently abandoned.
	Active bool
	Failed bool
	// PendingOps is how many journaled ops this tier has not replayed;
	// Resyncing marks a tier that lost its incremental path.
	PendingOps int64
	Resyncing  bool
	// LastErr is the most recent drain error (nil when healthy).
	LastErr error
}

// Status reports every level's durability standing, tier 0 first.
func (t *Tiered) Status() []TierStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	head := t.base + int64(len(t.journal))
	draining := make(map[int]bool, len(t.tiers))
	for _, ts := range t.tiers {
		draining[ts.level] = true
	}
	out := make([]TierStatus, 0, len(t.levels))
	for i, ts := range t.states {
		st := TierStatus{
			Level: i, Kind: t.levels[i].Kind(),
			DurableCounter: ts.durable,
			Drains:         ts.drains, DrainedBytes: ts.drainedB,
			Errors: ts.errors, Resyncs: ts.resyncs,
			Failovers: ts.failovers,
			Active:    i == t.active && !t.dead[i],
			Failed:    t.dead[i],
			LastErr:   ts.lastErr,
		}
		if st.Active {
			st.DurableCounter = t.watermark
		}
		if ts.durableNS > 0 {
			st.DurableAt = time.Unix(0, ts.durableNS)
		}
		if draining[i] {
			st.PendingOps = head - ts.cursor
			st.Resyncing = ts.needsResync
			if ts.needsResync {
				st.PendingOps = head - t.base
			}
		}
		out = append(out, st)
	}
	return out
}

var (
	_ Device              = (*Tiered)(nil)
	_ CheckpointCommitter = (*Tiered)(nil)
)
