package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pccheck/internal/obs"
)

// Op identifies a Device operation for fault injection.
type Op int

// Device operations that can be made to fail.
const (
	OpWrite Op = iota
	OpRead
	OpSync
	OpPersist
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpSync:
		return "sync"
	case OpPersist:
		return "persist"
	default:
		return "op?"
	}
}

// ErrInjected is the default error returned by injected faults. It
// classifies as permanent (see Classify).
var ErrInjected = errors.New("storage: injected fault")

// ErrInjectedTransient is the default error of transient injected faults; it
// classifies as ClassTransient so retry loops treat it as a retryable blip.
var ErrInjectedTransient = Transient(errors.New("storage: injected transient fault"))

// Schedule programs a run of failures for one operation: starting at the
// After-th next invocation, the next Count calls fail with Err. It is the
// failure-count generalisation of the original one-shot FailAfter — a
// Count > 1 schedule models a device hiccup that spans several I/Os (a
// throttle spike, a controller reset) rather than a single bad call.
type Schedule struct {
	// After arms the schedule on the n-th next invocation (1 = the very
	// next call). Values < 1 behave as 1.
	After int64
	// Count is how many consecutive invocations fail once armed (0 → 1).
	Count int64
	// Err is the injected error; nil uses ErrInjected.
	Err error
	// TearFrac, for OpWrite only, persists this fraction of the payload
	// before failing (a torn write). 0 tears nothing.
	TearFrac float64
}

// FaultDevice wraps a Device and injects failures at programmed points —
// the disk-error half of failure testing (the pmem package covers power
// loss). Faults fire on the n-th subsequent call of the given operation and
// may repeat for a scheduled count; torn writes persist only a prefix of the
// payload before failing, the way a real device can fail mid-I/O.
type FaultDevice struct {
	inner Device

	mu       sync.Mutex
	obsv     obs.Observer // optional; emits PhaseFaultInjected when a plan fires
	arm      map[Op]*faultPlan
	opCounts map[Op]int64
	faults   map[Op]int64 // cumulative injected faults per op

	// Latent-fault state: seeded silent corruption of already-synced data
	// (the write path succeeds, the bytes rot afterwards) and poisoned
	// unreadable ranges (reads fail permanently until overwritten).
	corrupt    *corruptPlan
	durCount   int64 // successful Sync/Persist calls seen
	corruptLog []CorruptRecord
	poisoned   []poisonRange
}

// poisonRange is one unreadable byte range: [off, end).
type poisonRange struct{ off, end int64 }

type faultPlan struct {
	after    int64 // fire on calls whose count reaches this value
	count    int64 // how many consecutive calls fail once armed
	err      error
	tearFrac float64 // for OpWrite: fraction of the payload written before failing
	fired    int64   // how many times this plan has fired
}

// NewFaultDevice wraps inner.
func NewFaultDevice(inner Device) *FaultDevice {
	return &FaultDevice{
		inner:    inner,
		arm:      make(map[Op]*faultPlan),
		opCounts: make(map[Op]int64),
		faults:   make(map[Op]int64),
	}
}

// FailAfter arms op to fail with err on its n-th next invocation (n = 1
// fails the very next call). A nil err uses ErrInjected. Re-arming replaces
// the previous plan for that op.
func (d *FaultDevice) FailAfter(op Op, n int64, err error) {
	d.SetSchedule(op, Schedule{After: n, Count: 1, Err: err})
}

// FailTransient arms op to fail with ErrInjectedTransient on count
// consecutive invocations starting at the n-th next one — the transient
// device hiccup a retrying persist path must absorb.
func (d *FaultDevice) FailTransient(op Op, n, count int64) {
	d.SetSchedule(op, Schedule{After: n, Count: count, Err: ErrInjectedTransient})
}

// SetSchedule arms op with s, replacing any previous plan for that op.
func (d *FaultDevice) SetSchedule(op Op, s Schedule) {
	if s.Err == nil {
		s.Err = ErrInjected
	}
	if s.After < 1 {
		s.After = 1
	}
	if s.Count < 1 {
		s.Count = 1
	}
	if s.TearFrac < 0 {
		s.TearFrac = 0
	}
	if s.TearFrac > 1 {
		s.TearFrac = 1
	}
	d.mu.Lock()
	d.arm[op] = &faultPlan{
		after:    d.opCounts[op] + s.After,
		count:    s.Count,
		err:      s.Err,
		tearFrac: s.TearFrac,
	}
	d.mu.Unlock()
}

// TearNextWrite arms the next WriteAt to persist only frac of its payload
// and then fail — a torn write.
func (d *FaultDevice) TearNextWrite(frac float64) {
	d.SetSchedule(OpWrite, Schedule{After: 1, Count: 1, TearFrac: frac})
}

// Clear disarms every pending fault, including a corruption schedule and
// poisoned ranges. Cumulative fault counts and the corruption log are
// preserved.
func (d *FaultDevice) Clear() {
	d.mu.Lock()
	d.arm = make(map[Op]*faultPlan)
	d.corrupt = nil
	d.poisoned = nil
	d.mu.Unlock()
}

// CorruptMode selects how a latent fault damages already-durable bytes.
type CorruptMode int

const (
	// CorruptBitFlip flips a single seeded bit — classic silent bit rot:
	// the sector stays readable, the contents lie.
	CorruptBitFlip CorruptMode = iota
	// CorruptSectorZero zeroes the whole CrashSectorSize-aligned sector
	// around the seeded offset — a remapped-to-zero sector.
	CorruptSectorZero
)

func (m CorruptMode) String() string {
	switch m {
	case CorruptBitFlip:
		return "bit-flip"
	case CorruptSectorZero:
		return "sector-zero"
	default:
		return "corrupt?"
	}
}

// CorruptSchedule programs seeded silent corruption of already-durable
// data. Starting at the CorruptAfter-th next successful durability op
// (Sync or Persist), each of the next CorruptCount such ops is followed by
// damage injected into the range it just made durable: the op itself
// succeeds — the caller believes the bytes are safe — and the damage lands
// afterwards, the way latent sector errors and bit rot strike between a
// sync and the read that discovers it.
type CorruptSchedule struct {
	// CorruptAfter arms the schedule on the n-th next successful Sync or
	// Persist (1 = the very next one). Values < 1 behave as 1.
	CorruptAfter int64
	// CorruptCount is how many consecutive successful durability ops have
	// their range damaged once armed (0 → 1).
	CorruptCount int64
	// Mode selects bit-flip vs sector-zero damage.
	Mode CorruptMode
	// Seed drives the damaged offset within each synced range.
	Seed int64
}

// corruptPlan is an armed CorruptSchedule.
type corruptPlan struct {
	after int64
	count int64
	mode  CorruptMode
	rng   *rand.Rand
	fired int64
}

// CorruptRecord describes one injected latent fault, for harnesses that
// assert every injected corruption was later detected and repaired.
type CorruptRecord struct {
	Off  int64
	Len  int64
	Mode CorruptMode
}

// SetCorruptSchedule arms s, replacing any previous corruption schedule.
func (d *FaultDevice) SetCorruptSchedule(s CorruptSchedule) {
	if s.CorruptAfter < 1 {
		s.CorruptAfter = 1
	}
	if s.CorruptCount < 1 {
		s.CorruptCount = 1
	}
	d.mu.Lock()
	d.corrupt = &corruptPlan{
		after: d.durCount + s.CorruptAfter,
		count: s.CorruptCount,
		mode:  s.Mode,
		rng:   rand.New(rand.NewSource(s.Seed)),
	}
	d.mu.Unlock()
}

// CorruptLog returns every latent fault injected so far (scheduled and
// direct CorruptAt damage; poisoned ranges are not logged — they announce
// themselves as read errors).
func (d *FaultDevice) CorruptLog() []CorruptRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]CorruptRecord, len(d.corruptLog))
	copy(out, d.corruptLog)
	return out
}

// afterDurable runs the armed corruption schedule against the range a
// successful Sync/Persist just covered.
func (d *FaultDevice) afterDurable(off, n int64) {
	d.mu.Lock()
	d.durCount++
	p := d.corrupt
	if p == nil || n <= 0 || p.fired >= p.count || d.durCount < p.after {
		d.mu.Unlock()
		return
	}
	p.fired++
	target := off + p.rng.Int63n(n)
	d.mu.Unlock()
	d.CorruptAt(target, 1, p.mode) //nolint:errcheck // best-effort damage
}

// CorruptAt injects latent damage into [off, off+n) of the underlying
// device right now, bypassing the fault plans: bit-flip mode flips the top
// bit of every byte in the range, sector-zero mode zeroes the whole
// CrashSectorSize-aligned sectors covering it. The damage is written
// through the inner device directly (no Op counters advance) and logged
// for harness assertions.
func (d *FaultDevice) CorruptAt(off, n int64, mode CorruptMode) error {
	if n <= 0 {
		return nil
	}
	size := d.inner.Size()
	lo, hi := off, off+n
	if mode == CorruptSectorZero {
		lo = (lo / CrashSectorSize) * CrashSectorSize
		hi = ((hi + CrashSectorSize - 1) / CrashSectorSize) * CrashSectorSize
	}
	if lo < 0 {
		lo = 0
	}
	if hi > size {
		hi = size
	}
	if hi <= lo {
		return nil
	}
	buf := make([]byte, hi-lo)
	if mode == CorruptBitFlip {
		if err := d.inner.ReadAt(buf, lo); err != nil {
			return err
		}
		for i := range buf {
			buf[i] ^= 0x80
		}
	}
	if err := d.inner.WriteAt(buf, lo); err != nil {
		return err
	}
	d.mu.Lock()
	d.corruptLog = append(d.corruptLog, CorruptRecord{Off: lo, Len: hi - lo, Mode: mode})
	d.faults[OpWrite]++
	d.mu.Unlock()
	return nil
}

// PoisonRead marks [off, off+n) unreadable: every ReadAt overlapping it
// returns a Permanent error until a WriteAt or Persist overwrites the
// poisoned bytes (the sector-remap-on-write model of real disks). Unlike
// CorruptAt the stored bytes are untouched — the device just refuses to
// return them.
func (d *FaultDevice) PoisonRead(off, n int64) {
	if n <= 0 {
		return
	}
	d.mu.Lock()
	d.poisoned = append(d.poisoned, poisonRange{off: off, end: off + n})
	d.mu.Unlock()
}

// poisonErr returns the Permanent error for a read overlapping a poisoned
// range, or nil.
func (d *FaultDevice) poisonErr(off, n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.poisoned {
		if off < r.end && off+n > r.off {
			return Permanent(fmt.Errorf("storage: unreadable sector: injected media error in [%d,%d)", r.off, r.end))
		}
	}
	return nil
}

// healPoison removes the parts of poisoned ranges that [off, off+n) just
// overwrote — writing remaps the bad sectors.
func (d *FaultDevice) healPoison(off, n int64) {
	end := off + n
	d.mu.Lock()
	if len(d.poisoned) == 0 {
		d.mu.Unlock()
		return
	}
	var keep []poisonRange
	for _, r := range d.poisoned {
		if off >= r.end || end <= r.off { // no overlap
			keep = append(keep, r)
			continue
		}
		if r.off < off {
			keep = append(keep, poisonRange{off: r.off, end: off})
		}
		if r.end > end {
			keep = append(keep, poisonRange{off: end, end: r.end})
		}
	}
	d.poisoned = keep
	d.mu.Unlock()
}

// Fired reports whether the plan armed for op has triggered at least once.
func (d *FaultDevice) Fired(op Op) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.arm[op]
	return p != nil && p.fired > 0
}

// FaultCount returns how many faults have been injected for op over the
// device's lifetime (across all plans, surviving Clear).
func (d *FaultDevice) FaultCount(op Op) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults[op]
}

// SetObserver attaches an observer that receives a PhaseFaultInjected
// instant (Value = the Op code, Attempt = how many times the plan has
// fired) every time a programmed fault triggers. Injected faults get
// their own phase — distinct from PhaseFault, which the engine emits for
// every transient fault it observes — so a trace with both attached does
// not double count.
func (d *FaultDevice) SetObserver(o obs.Observer) {
	d.mu.Lock()
	d.obsv = o
	d.mu.Unlock()
}

// check advances op's counter and returns the armed plan if it fires now.
func (d *FaultDevice) check(op Op) *faultPlan {
	d.mu.Lock()
	d.opCounts[op]++
	p := d.arm[op]
	if p == nil || p.fired >= p.count || d.opCounts[op] < p.after {
		d.mu.Unlock()
		return nil
	}
	p.fired++
	d.faults[op]++
	obsv, fired := d.obsv, p.fired
	d.mu.Unlock()
	if obsv != nil {
		obsv.Emit(obs.Event{
			TS: time.Now().UnixNano(), Phase: obs.PhaseFaultInjected,
			Value: int64(op), Attempt: int32(fired),
			Slot: -1, Writer: -1, Rank: -1,
		})
	}
	return p
}

// WriteAt implements Device.
func (d *FaultDevice) WriteAt(p []byte, off int64) error {
	if plan := d.check(OpWrite); plan != nil {
		if plan.tearFrac > 0 {
			n := int(float64(len(p)) * plan.tearFrac)
			if n > 0 {
				// Best effort prefix write, then the failure.
				_ = d.inner.WriteAt(p[:n], off)
			}
		}
		return plan.err
	}
	if err := d.inner.WriteAt(p, off); err != nil {
		return err
	}
	d.healPoison(off, int64(len(p)))
	return nil
}

// ReadAt implements Device.
func (d *FaultDevice) ReadAt(p []byte, off int64) error {
	if plan := d.check(OpRead); plan != nil {
		return plan.err
	}
	if err := d.poisonErr(off, int64(len(p))); err != nil {
		return err
	}
	return d.inner.ReadAt(p, off)
}

// Sync implements Device.
func (d *FaultDevice) Sync(off, n int64) error {
	if plan := d.check(OpSync); plan != nil {
		return plan.err
	}
	if err := d.inner.Sync(off, n); err != nil {
		return err
	}
	d.afterDurable(off, n)
	return nil
}

// Persist implements Device.
func (d *FaultDevice) Persist(p []byte, off int64) error {
	if plan := d.check(OpPersist); plan != nil {
		return plan.err
	}
	if err := d.inner.Persist(p, off); err != nil {
		return err
	}
	d.healPoison(off, int64(len(p)))
	d.afterDurable(off, int64(len(p)))
	return nil
}

// Size implements Device.
func (d *FaultDevice) Size() int64 { return d.inner.Size() }

// Kind implements Device.
func (d *FaultDevice) Kind() Kind { return d.inner.Kind() }

// Close implements io.Closer.
func (d *FaultDevice) Close() error { return d.inner.Close() }

var _ Device = (*FaultDevice)(nil)
