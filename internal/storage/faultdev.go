package storage

import (
	"errors"
	"sync"
)

// Op identifies a Device operation for fault injection.
type Op int

// Device operations that can be made to fail.
const (
	OpWrite Op = iota
	OpRead
	OpSync
	OpPersist
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpSync:
		return "sync"
	case OpPersist:
		return "persist"
	default:
		return "op?"
	}
}

// ErrInjected is the default error returned by injected faults.
var ErrInjected = errors.New("storage: injected fault")

// FaultDevice wraps a Device and injects failures at programmed points —
// the disk-error half of failure testing (the pmem package covers power
// loss). Faults fire on the n-th subsequent call of the given operation;
// torn writes persist only a prefix of the payload before failing, the way
// a real device can fail mid-I/O.
type FaultDevice struct {
	inner Device

	mu       sync.Mutex
	arm      map[Op]*faultPlan
	opCounts map[Op]int64
}

type faultPlan struct {
	after    int64 // fire on the call when count reaches this value
	err      error
	tearFrac float64 // for OpWrite: fraction of the payload written before failing
	fired    bool
}

// NewFaultDevice wraps inner.
func NewFaultDevice(inner Device) *FaultDevice {
	return &FaultDevice{
		inner:    inner,
		arm:      make(map[Op]*faultPlan),
		opCounts: make(map[Op]int64),
	}
}

// FailAfter arms op to fail with err on its n-th next invocation (n = 1
// fails the very next call). A nil err uses ErrInjected. Re-arming replaces
// the previous plan for that op.
func (d *FaultDevice) FailAfter(op Op, n int64, err error) {
	if err == nil {
		err = ErrInjected
	}
	d.mu.Lock()
	d.arm[op] = &faultPlan{after: d.opCounts[op] + n, err: err}
	d.mu.Unlock()
}

// TearNextWrite arms the next WriteAt to persist only frac of its payload
// and then fail — a torn write.
func (d *FaultDevice) TearNextWrite(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	d.mu.Lock()
	d.arm[OpWrite] = &faultPlan{after: d.opCounts[OpWrite] + 1, err: ErrInjected, tearFrac: frac}
	d.mu.Unlock()
}

// Clear disarms every pending fault.
func (d *FaultDevice) Clear() {
	d.mu.Lock()
	d.arm = make(map[Op]*faultPlan)
	d.mu.Unlock()
}

// Fired reports whether the plan armed for op has triggered.
func (d *FaultDevice) Fired(op Op) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.arm[op]
	return p != nil && p.fired
}

// check advances op's counter and returns the armed plan if it fires now.
func (d *FaultDevice) check(op Op) *faultPlan {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.opCounts[op]++
	p := d.arm[op]
	if p == nil || p.fired || d.opCounts[op] < p.after {
		return nil
	}
	p.fired = true
	return p
}

// WriteAt implements Device.
func (d *FaultDevice) WriteAt(p []byte, off int64) error {
	if plan := d.check(OpWrite); plan != nil {
		if plan.tearFrac > 0 {
			n := int(float64(len(p)) * plan.tearFrac)
			if n > 0 {
				// Best effort prefix write, then the failure.
				_ = d.inner.WriteAt(p[:n], off)
			}
		}
		return plan.err
	}
	return d.inner.WriteAt(p, off)
}

// ReadAt implements Device.
func (d *FaultDevice) ReadAt(p []byte, off int64) error {
	if plan := d.check(OpRead); plan != nil {
		return plan.err
	}
	return d.inner.ReadAt(p, off)
}

// Sync implements Device.
func (d *FaultDevice) Sync(off, n int64) error {
	if plan := d.check(OpSync); plan != nil {
		return plan.err
	}
	return d.inner.Sync(off, n)
}

// Persist implements Device.
func (d *FaultDevice) Persist(p []byte, off int64) error {
	if plan := d.check(OpPersist); plan != nil {
		return plan.err
	}
	return d.inner.Persist(p, off)
}

// Size implements Device.
func (d *FaultDevice) Size() int64 { return d.inner.Size() }

// Kind implements Device.
func (d *FaultDevice) Kind() Kind { return d.inner.Kind() }

// Close implements io.Closer.
func (d *FaultDevice) Close() error { return d.inner.Close() }

var _ Device = (*FaultDevice)(nil)
