package storage

import (
	"bytes"
	"testing"
)

func TestCrashDeviceSyncedDataSurvivesDropAll(t *testing.T) {
	d := NewCrashDevice(4096, KindSSD)
	if err := d.WriteAt(bytes.Repeat([]byte{0xAA}, 1024), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(0, 1024); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(bytes.Repeat([]byte{0xBB}, 1024), 2048); err != nil {
		t.Fatal(err)
	}
	img, err := d.CrashImage(d.Ops(), DropAllWrites)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img[:1024], bytes.Repeat([]byte{0xAA}, 1024)) {
		t.Fatal("synced write lost at crash")
	}
	if !bytes.Equal(img[2048:3072], make([]byte, 1024)) {
		t.Fatal("un-synced write survived the DropAll adversary")
	}
}

func TestCrashDeviceUnsyncedSurvivesKeepAll(t *testing.T) {
	d := NewCrashDevice(4096, KindSSD)
	if err := d.WriteAt(bytes.Repeat([]byte{0xCC}, 512), 512); err != nil {
		t.Fatal(err)
	}
	img, err := d.CrashImage(d.Ops(), KeepAllWrites)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img[512:1024], bytes.Repeat([]byte{0xCC}, 512)) {
		t.Fatal("un-synced write lost under the KeepAll adversary")
	}
}

func TestCrashDevicePrefixCutsHistory(t *testing.T) {
	d := NewCrashDevice(1024, KindSSD)
	if err := d.Persist([]byte{1, 2, 3, 4}, 0); err != nil { // ops 0 (write) + 1 (sync)
		t.Fatal(err)
	}
	if err := d.Persist([]byte{9, 9, 9, 9}, 0); err != nil { // ops 2 + 3
		t.Fatal(err)
	}
	// Crash before the second persist's write: first value durable.
	img, err := d.CrashImage(2, DropAllWrites)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img[:4], []byte{1, 2, 3, 4}) {
		t.Fatalf("prefix 2 image = %v, want first persist", img[:4])
	}
	// Crash between the second persist's write and its sync: the write is
	// pending — DropAll keeps the old value, KeepAll lands the new one.
	img, err = d.CrashImage(3, DropAllWrites)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img[:4], []byte{1, 2, 3, 4}) {
		t.Fatalf("torn persist with DropAll = %v, want old value", img[:4])
	}
	img, err = d.CrashImage(3, KeepAllWrites)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img[:4], []byte{9, 9, 9, 9}) {
		t.Fatalf("torn persist with KeepAll = %v, want new value", img[:4])
	}
}

func TestCrashDeviceTornWriteSectorGranularity(t *testing.T) {
	d := NewCrashDevice(4*CrashSectorSize, KindSSD)
	w := bytes.Repeat([]byte{0xEE}, 2*CrashSectorSize)
	if err := d.WriteAt(w, 0); err != nil {
		t.Fatal(err)
	}
	// Keep only sector 1 of the pending write.
	img, err := d.CrashImage(d.Ops(), func(writeIdx, sector int) bool { return sector == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img[:CrashSectorSize], make([]byte, CrashSectorSize)) {
		t.Fatal("dropped sector 0 survived")
	}
	if !bytes.Equal(img[CrashSectorSize:2*CrashSectorSize], bytes.Repeat([]byte{0xEE}, CrashSectorSize)) {
		t.Fatal("kept sector 1 lost")
	}
}

func TestCrashDeviceReorderedOverlappingWrites(t *testing.T) {
	// Older write survives, newer overlapping write is dropped — the
	// reordering a write-back cache can expose.
	d := NewCrashDevice(1024, KindSSD)
	if err := d.WriteAt(bytes.Repeat([]byte{0x01}, 256), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(bytes.Repeat([]byte{0x02}, 256), 0); err != nil {
		t.Fatal(err)
	}
	img, err := d.CrashImage(d.Ops(), func(writeIdx, sector int) bool { return writeIdx == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img[:256], bytes.Repeat([]byte{0x01}, 256)) {
		t.Fatalf("expected the older write to win, got %#x...", img[0])
	}
}

func TestCrashDeviceRangedSyncOnlyFlushesOverlap(t *testing.T) {
	d := NewCrashDevice(4096, KindSSD)
	if err := d.WriteAt(bytes.Repeat([]byte{0x11}, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(bytes.Repeat([]byte{0x22}, 512), 2048); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(0, 512); err != nil {
		t.Fatal(err)
	}
	img, err := d.CrashImage(d.Ops(), DropAllWrites)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img[:512], bytes.Repeat([]byte{0x11}, 512)) {
		t.Fatal("write inside the sync range did not persist")
	}
	if !bytes.Equal(img[2048:2560], make([]byte, 512)) {
		t.Fatal("write outside the sync range persisted without a barrier")
	}
}

func TestCrashDeviceMarksAndHighestMark(t *testing.T) {
	d := NewCrashDevice(64, KindSSD)
	if err := d.Persist([]byte{1}, 0); err != nil { // ops 0,1
		t.Fatal(err)
	}
	d.Mark(7)                                       // op 2
	if err := d.Persist([]byte{2}, 0); err != nil { // ops 3,4
		t.Fatal(err)
	}
	d.Mark(9) // op 5
	if got := d.HighestMark(2); got != 0 {
		t.Fatalf("HighestMark(2) = %d, want 0", got)
	}
	if got := d.HighestMark(3); got != 7 {
		t.Fatalf("HighestMark(3) = %d, want 7", got)
	}
	if got := d.HighestMark(100); got != 9 {
		t.Fatalf("HighestMark(100) = %d, want 9", got)
	}
}

func TestCrashDeviceSeededChooserDeterministic(t *testing.T) {
	d := NewCrashDevice(8192, KindSSD)
	for i := 0; i < 8; i++ {
		if err := d.WriteAt(bytes.Repeat([]byte{byte(i + 1)}, 1024), int64(i)*1024); err != nil {
			t.Fatal(err)
		}
	}
	a, err := d.CrashImage(d.Ops(), SeededChooser(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.CrashImage(d.Ops(), SeededChooser(42))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different crash images")
	}
}

func TestCrashDeviceLiveReadsSeeAllWrites(t *testing.T) {
	d := NewCrashDevice(256, KindPMEM)
	if err := d.WriteAt([]byte{5, 6, 7}, 10); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := d.ReadAt(got, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{5, 6, 7}) {
		t.Fatal("live read does not see un-synced write")
	}
	if d.Kind() != KindPMEM {
		t.Fatal("kind not reported")
	}
}

func TestCrashDeviceInvalidPrefix(t *testing.T) {
	d := NewCrashDevice(64, KindSSD)
	if _, err := d.CrashImage(1, DropAllWrites); err == nil {
		t.Fatal("out-of-range prefix accepted")
	}
	if _, err := d.CrashImage(-1, DropAllWrites); err == nil {
		t.Fatal("negative prefix accepted")
	}
}
